// Reproduces Table 1 (paper §5): WFQ vs FIFO mean and 99.9th-percentile
// queueing delay for a sample flow on a single 83.5%-utilized link shared
// by 10 identical on/off sources.
//
//   paper:   scheduling   mean   99.9 %ile
//            WFQ          3.16   53.86
//            FIFO         3.17   34.72
//
// Expected shape: means nearly equal; FIFO tail well below WFQ tail —
// sharing beats isolation for homogeneous predicted traffic.

#include <cstdio>

#include "common.h"
#include "core/experiments.h"

int main() {
  using namespace ispn;
  const auto seconds = bench::run_seconds();

  bench::header("Table 1: single link, 10 on/off flows, WFQ vs FIFO");
  std::printf("simulated %.0f s per scheduler, A = 85 pkt/s, (A, 50) edge "
              "filters\n\n",
              seconds);

  std::printf("%-12s %10s %12s %10s %14s\n", "scheduling", "mean", "99.9 %ile",
              "paper mean", "paper 99.9 %ile");
  bench::rule();

  struct Row {
    core::SchedKind kind;
    double paper_mean;
    double paper_p999;
  };
  for (const Row row : {Row{core::SchedKind::kWfq, 3.16, 53.86},
                        Row{core::SchedKind::kFifo, 3.17, 34.72}}) {
    const auto result = core::run_single_link(row.kind, 10, seconds, 1);
    // The paper reports one sample flow ("the data from the various flows
    // are similar"); we report the cross-flow average of the per-flow
    // statistics, which is less noisy.
    double mean = 0, p999 = 0;
    for (int f = 0; f < 10; ++f) {
      mean += result.mean_pkt[static_cast<std::size_t>(f)] / 10.0;
      p999 += result.p999_pkt[static_cast<std::size_t>(f)] / 10.0;
    }
    std::printf("%-12s %10.2f %12.2f %10.2f %14.2f\n",
                core::to_string(row.kind), mean, p999, row.paper_mean,
                row.paper_p999);
    if (row.kind == core::SchedKind::kFifo) {
      std::printf("\nlink utilization: %.1f%% (paper: 83.5%%), source drop "
                  "rate: %.2f%% (paper: ~2%%)\n",
                  100.0 * result.utilization,
                  100.0 * result.source_drop_rate);
    }
  }
  return 0;
}
