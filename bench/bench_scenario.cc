// Scenario-fabric throughput: delivered packets per wall-clock second
// through whole generated fabrics driven by the ScenarioRunner.
//
// Where bench_e2e measures one hand-built dumbbell, these rows measure
// the scenario layer itself: a fan-in aggregation tree (one QoS hop per
// packet, the headline scale row), a deeper tree (two hops), and a
// multi-bottleneck parking lot with per-hop entry/exit cross traffic.
// The closing row runs the fan-in fabric with LIVE measurement-based
// admission over a guaranteed/predicted/datagram mix — the price of the
// full paper machinery (admission itself is per-flow, so the per-packet
// cost is the unified scheduler + measurement hooks).
//
// Offered load is pinned at 90% of each fabric's bottleneck tier.
// Results append to BENCH_scenario.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "common.h"
#include "scenario/runner.h"

namespace {

using namespace ispn;

constexpr double kLinkRate = 1e8;  ///< 100k pkt/s of 1000-bit packets
constexpr double kLoad = 0.9;

/// Baseline spec: batch workload (all flows at t=0), never departing,
/// datagram CBR — pure fabric forwarding cost.
scenario::ScenarioSpec base_spec() {
  scenario::ScenarioSpec spec;
  spec.link_rate = kLinkRate;
  spec.arrival_rate = 0;    // deterministic batch at t=0
  spec.mean_hold = 0;       // flows never depart
  spec.p_guaranteed = 0;
  spec.p_predicted = 0;     // all datagram
  spec.source = scenario::SourceKind::kCbr;
  spec.run_seconds = 1e9;   // the bench slices wall time, not sim time
  spec.seed = 7;
  return spec;
}

/// Sets per-flow CBR rate so the fabric's bottleneck tier runs at kLoad.
/// `bottleneck_links` = number of parallel links in the loaded tier,
/// `tier_rate` = rate of one such link.
void set_load(scenario::ScenarioSpec& spec, int flows, int bottleneck_links,
              double tier_rate) {
  spec.target_flows = flows;
  const double total_pps =
      kLoad * tier_rate * bottleneck_links / spec.packet_bits;
  spec.avg_rate_pps = total_pps / flows;
}

bench::MicroResult run_fabric(const scenario::ScenarioSpec& spec,
                              sim::Time warm = 0.5) {
  scenario::ScenarioRunner runner(spec);
  runner.prepare();

  // Warm the pipeline: fills queues, pools, slabs, measurement windows.
  // Batch-mode source starts stagger across ~one mean inter-packet gap
  // (flows/total_pps seconds), so large-flow rows pass a longer warm to
  // get every source emitting before the measured window.  advance()
  // dispatches to the sharded engine when spec.shards >= 1.
  sim::Time horizon = warm;
  runner.advance(horizon);

  using Clock = std::chrono::steady_clock;
  const double budget = bench::micro_seconds();
  const double total_pps =
      spec.avg_rate_pps * static_cast<double>(spec.target_flows);
  const sim::Duration slice = 20000.0 / total_pps;
  const std::uint64_t base = runner.delivered();
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    horizon += slice;
    runner.advance(horizon);
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < budget);
  return bench::MicroResult{runner.delivered() - base, elapsed};
}

}  // namespace

int main() {
  bench::header("scenario fabrics: delivered pkt/s end to end");
  bench::JsonReporter report("scenario");

  // Fan-in tree, depth 2: `width` leaf links feed the root, one QoS hop
  // per packet.  The headline scale row.
  for (int flows : {64, 1024}) {
    scenario::ScenarioSpec spec = base_spec();
    spec.fabric = scenario::FabricKind::kFanInTree;
    spec.tree_depth = 2;
    spec.tree_width = 4;
    set_load(spec, flows, /*bottleneck_links=*/4, kLinkRate);
    report.add("fan_in d2w4", "flows=" + std::to_string(flows),
               run_fabric(spec));
  }

  // Deeper tree: two QoS hops per packet (leaf tier at kLoad; the four
  // level-0 links each aggregate two leaf links, so they run hotter).
  {
    scenario::ScenarioSpec spec = base_spec();
    spec.fabric = scenario::FabricKind::kFanInTree;
    spec.tree_depth = 3;
    spec.tree_width = 2;  // 4 leaves over 2 mid switches
    set_load(spec, 256, /*bottleneck_links=*/4, 0.5 * kLinkRate);
    report.add("fan_in d3w2", "flows=256", run_fabric(spec));
  }

  // Parking lot: 4 bottlenecks, per-hop entry/exit cross traffic plus
  // long multi-bottleneck flows.
  {
    scenario::ScenarioSpec spec = base_spec();
    spec.fabric = scenario::FabricKind::kParkingLot;
    spec.parking_hops = 4;
    spec.long_flow_fraction = 0.35;
    set_load(spec, 256, /*bottleneck_links=*/4, kLinkRate);
    report.add("parking_lot h4", "flows=256", run_fabric(spec));
  }

  // The full machinery: live measurement-based admission over the paper's
  // service mix on the fan-in fabric (on/off sources, policed edges).
  {
    scenario::ScenarioSpec spec = base_spec();
    spec.fabric = scenario::FabricKind::kFanInTree;
    spec.tree_depth = 2;
    spec.tree_width = 4;
    spec.p_guaranteed = 0.2;
    spec.p_predicted = 0.5;
    spec.source = scenario::SourceKind::kOnOff;
    spec.target_delay = 0.05;
    set_load(spec, 256, /*bottleneck_links=*/4, kLinkRate);
    report.add("fan_in admission", "flows=256", run_fabric(spec));
  }

  // Responsive best-effort traffic: the reno/bbr/rack stacks round-robin
  // on the datagram class with DEC-TR-506 binary feedback marking at the
  // bottleneck, alongside guaranteed + predicted open-loop flows.  Prices
  // the transport layer (per-ACK bookkeeping, pacing/RTO/reorder timers,
  // bidirectional packet streams) on the two canonical CC fabrics.
  {
    scenario::ScenarioSpec spec = base_spec();
    spec.fabric = scenario::FabricKind::kChain;
    spec.chain_switches = 2;  // dumbbell: one shared bottleneck
    spec.p_guaranteed = 0.2;
    spec.p_predicted = 0.3;
    spec.source = scenario::SourceKind::kOnOff;
    spec.cc = scenario::CcKind::kMix;
    spec.binary_feedback = true;
    set_load(spec, 64, /*bottleneck_links=*/1, kLinkRate);
    report.add("cc-mix dumbbell", "flows=64", run_fabric(spec));
  }
  {
    scenario::ScenarioSpec spec = base_spec();
    spec.fabric = scenario::FabricKind::kParkingLot;
    spec.parking_hops = 4;
    spec.long_flow_fraction = 0.35;
    spec.p_guaranteed = 0.2;
    spec.p_predicted = 0.3;
    spec.source = scenario::SourceKind::kOnOff;
    spec.cc = scenario::CcKind::kMix;
    spec.binary_feedback = true;
    set_load(spec, 256, /*bottleneck_links=*/4, kLinkRate);
    report.add("cc-mix parking_lot h4", "flows=256", run_fabric(spec));
  }

  // Mesh under churn: link failures keep firing (capped per link), every
  // failure reroutes the batch datagram workload and flushes the dead
  // port — the price of topology churn on the forwarding path.
  {
    scenario::ScenarioSpec spec = base_spec();
    spec.fabric = scenario::FabricKind::kMesh;
    spec.mesh_rows = 3;
    spec.mesh_cols = 3;
    spec.long_flow_fraction = 0.5;
    // The bench only simulates a few seconds of a nominally endless run,
    // so churn must be fast to land inside the measured window; the
    // per-link schedule cap keeps the event list finite regardless.
    spec.link_failure_rate = 2.0;
    spec.link_repair_mean = 0.25;
    // 12 inter-switch duplex links; corner-to-corner traffic concentrates
    // on the interior, so load the tier conservatively.
    set_load(spec, 256, /*bottleneck_links=*/8, kLinkRate);
    report.add("mesh 3x3 failures", "flows=256", run_fabric(spec));
  }

  // Fault plane under constant churn: all four fault families — link
  // failures with flapping, switch crashes, capacity brown-outs and
  // transient per-link loss — firing across the measured window, on the
  // fan-in anchor fabric and on the mesh.  Each fabric runs with the
  // invariant monitor off and then auditing at 4 Hz sim time, so the
  // monitor-on deltas price the runtime self-checks (ledger sums plus
  // admission and scheduler audits); the bar is <= 5% on the fan-in row.
  // The per-target episode caps front-load every family's episodes, so
  // churn is dense early and the warm window already sees faults.
  auto set_fault_churn = [](scenario::ScenarioSpec& spec) {
    spec.link_failure_rate = 2.0;
    spec.link_repair_mean = 0.25;
    spec.flap_prob = 0.25;
    spec.node_crash_rate = 0.5;
    spec.node_repair_mean = 0.25;
    spec.brownout_rate = 1.0;
    spec.brownout_fraction = 0.5;
    spec.brownout_mean = 0.5;
    spec.loss_rate = 1.0;
    spec.loss_prob = 0.01;
    spec.loss_mean = 0.5;
  };
  for (const bool monitor : {false, true}) {
    scenario::ScenarioSpec spec = base_spec();
    spec.fabric = scenario::FabricKind::kFanInTree;
    spec.tree_depth = 2;
    spec.tree_width = 4;
    set_fault_churn(spec);
    spec.invariant_cadence = monitor ? 0.25 : 0.0;
    set_load(spec, 256, /*bottleneck_links=*/4, kLinkRate);
    report.add("fault-plane fan_in d2w4",
               std::string("flows=256 monitor=") + (monitor ? "on" : "off"),
               run_fabric(spec));
  }
  for (const bool monitor : {false, true}) {
    scenario::ScenarioSpec spec = base_spec();
    spec.fabric = scenario::FabricKind::kMesh;
    spec.mesh_rows = 3;
    spec.mesh_cols = 3;
    spec.long_flow_fraction = 0.5;
    set_fault_churn(spec);
    spec.invariant_cadence = monitor ? 0.25 : 0.0;
    set_load(spec, 256, /*bottleneck_links=*/8, kLinkRate);
    report.add("fault-plane mesh 3x3",
               std::string("flows=256 monitor=") + (monitor ? "on" : "off"),
               run_fabric(spec));
  }

  // Flow-state scale: the same fan-in fabric with the flow count swept
  // to a million — hierarchical (two-level aggregate) scheduling, so
  // per-link scheduler state stays bounded while host sinks, sources and
  // timers scale with the flow count (SlotMap + direct-mapped caches on
  // every per-packet lookup).  Offered load is the SAME 360k pkt/s as
  // the 1024-flow anchor row: the sweep isolates state-scale cost at
  // fixed work.  ISPN_BENCH_MAX_FLOWS caps the sweep for smoke runs.
  {
    long max_flows = 1048576;
    if (const char* cap = std::getenv("ISPN_BENCH_MAX_FLOWS")) {
      max_flows = std::strtol(cap, nullptr, 10);
    }
    for (int flows : {16384, 131072, 1048576}) {
      if (flows > max_flows) continue;
      scenario::ScenarioSpec spec = base_spec();
      spec.fabric = scenario::FabricKind::kFanInTree;
      spec.tree_depth = 2;
      spec.tree_width = 4;
      spec.hierarchical = true;
      set_load(spec, flows, /*bottleneck_links=*/4, kLinkRate);
      const double total_pps =
          spec.avg_rate_pps * static_cast<double>(flows);
      // Cover the batch-start stagger (flows/total_pps) before measuring.
      const sim::Time warm = 0.5 + static_cast<double>(flows) / total_pps;
      report.add("flow-scale fan_in d2w4", "flows=" + std::to_string(flows),
                 run_fabric(spec, warm));
    }
  }

  // Sharded parallel core (sim/shard.h): a depth-3 width-4 fan-in tree —
  // 21 switch domains — at 1024 flows, swept over worker counts.  The
  // shards=0 row is the classic single-clock baseline on the SAME spec;
  // the sharded rows add per-hop propagation latency and barrier rounds,
  // so shards=1 vs shards=0 is the synchronization overhead and
  // shards=4 vs shards=1 the parallel speedup (results across shards>=1
  // are byte-identical; only wall time may differ).
  for (int shards : {0, 1, 2, 4}) {
    scenario::ScenarioSpec spec = base_spec();
    spec.fabric = scenario::FabricKind::kFanInTree;
    spec.tree_depth = 3;
    spec.tree_width = 4;
    spec.shards = shards;
    // The 4 mid->root links are the bottleneck tier; the 16 leaf links
    // run at ~22% each.
    set_load(spec, 1024, /*bottleneck_links=*/4, kLinkRate);
    report.add("sharded fan_in d3w4", "shards=" + std::to_string(shards),
               run_fabric(spec));
  }

  const std::string path = report.write();
  std::printf("trajectory appended to %s\n", path.c_str());
  return 0;
}
