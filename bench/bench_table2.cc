// Reproduces Figure 1 (topology) and Table 2 (paper §6): WFQ vs FIFO vs
// FIFO+ mean and 99.9th-percentile queueing delay by path length on the
// 5-switch chain with 22 flows (10 per link, 83.5% utilization).
//
//   paper (99.9 %ile by path length 1/2/3/4):
//     WFQ    45.31  60.31  65.86  80.59
//     FIFO   30.49  41.22  52.36  58.13
//     FIFO+  33.59  38.15  43.30  45.25
//
// Expected shape: tails grow with hops everywhere, but far more slowly
// under FIFO+ (multi-hop sharing via the jitter-offset header field).

#include <cstdio>
#include <map>
#include <memory>

#include "common.h"
#include "core/experiments.h"
#include "net/topology.h"
#include "sched/fifo.h"

int main() {
  using namespace ispn;
  const auto seconds = bench::run_seconds();

  bench::header("Figure 1: network topology");
  {
    net::Network net;
    const auto topo = net::build_chain(net, 5, sim::paper::kLinkRate, [] {
      return std::make_unique<sched::FifoScheduler>(200);
    });
    std::printf("%s", net::chain_ascii(topo).c_str());
    std::printf("4 x 1 Mbit/s inter-switch links; hosts attach infinitely "
                "fast;\n22 one-way flows: 12 of length 1, 4 of length 2, "
                "4 of length 3, 2 of length 4;\n10 flows per link.\n");
  }

  bench::header("Table 2: queueing delay by path length (pkt times)");
  std::printf("simulated %.0f s per scheduler\n\n", seconds);

  struct PaperRow {
    double mean[4];
    double p999[4];
  };
  const std::map<core::SchedKind, PaperRow> paper = {
      {core::SchedKind::kWfq,
       {{2.65, 4.74, 7.51, 9.64}, {45.31, 60.31, 65.86, 80.59}}},
      {core::SchedKind::kFifo,
       {{2.54, 4.73, 7.97, 10.33}, {30.49, 41.22, 52.36, 58.13}}},
      {core::SchedKind::kFifoPlus,
       {{2.71, 4.69, 7.76, 10.11}, {33.59, 38.15, 43.30, 45.25}}},
  };

  std::printf("%-8s", "");
  for (int len = 1; len <= 4; ++len) {
    std::printf("   len %d: mean  99.9%%ile", len);
  }
  std::printf("\n");
  bench::rule();

  for (const auto kind : {core::SchedKind::kWfq, core::SchedKind::kFifo,
                          core::SchedKind::kFifoPlus}) {
    const auto result = core::run_chain(kind, seconds, 1);
    double mean[5] = {}, p999[5] = {};
    int n[5] = {};
    for (const auto& f : result.flows) {
      mean[f.path_len] += f.mean_pkt;
      p999[f.path_len] += f.p999_pkt;
      ++n[f.path_len];
    }
    std::printf("%-8s", core::to_string(kind));
    for (int len = 1; len <= 4; ++len) {
      std::printf("        %6.2f  %8.2f", mean[len] / n[len],
                  p999[len] / n[len]);
    }
    std::printf("\n%-8s", "(paper)");
    const auto& p = paper.at(kind);
    for (int len = 1; len <= 4; ++len) {
      std::printf("        %6.2f  %8.2f", p.mean[len - 1], p.p999[len - 1]);
    }
    std::printf("\n");
  }

  const auto fifo = core::run_chain(core::SchedKind::kFifo, seconds, 1);
  std::printf("\nlink utilization:");
  for (double u : fifo.link_utilization) std::printf(" %.1f%%", 100.0 * u);
  std::printf(" (paper: 83.5%% each)\n");
  return 0;
}
