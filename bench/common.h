// Shared helpers for the reproduction benches.

#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "sim/units.h"

namespace ispn::bench {

/// Run length: the paper's 600 s by default; override with
/// ISPN_BENCH_SECONDS for quick iterations.
inline sim::Duration run_seconds() {
  if (const char* env = std::getenv("ISPN_BENCH_SECONDS")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return sim::paper::kRunSeconds;
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

}  // namespace ispn::bench
