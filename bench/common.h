// Shared helpers for the reproduction benches.

#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/units.h"

namespace ispn::bench {

/// Run length: the paper's 600 s by default; override with
/// ISPN_BENCH_SECONDS for quick iterations.
inline sim::Duration run_seconds() {
  if (const char* env = std::getenv("ISPN_BENCH_SECONDS")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return sim::paper::kRunSeconds;
}

/// Wall-clock budget of one microbenchmark measurement; override with
/// ISPN_BENCH_MICRO_SECONDS (e.g. 0.05 for a smoke run).
inline double micro_seconds() {
  if (const char* env = std::getenv("ISPN_BENCH_MICRO_SECONDS")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 0.3;
}

inline void header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void rule() {
  std::printf("%s\n", std::string(78, '-').c_str());
}

// ---------------------------------------------------------------------------
// Microbenchmark timing loop.
//
// Runs `body()` (one steady-state work item, e.g. an enqueue+dequeue cycle)
// repeatedly for ~micro_seconds() of wall time after a short warmup, and
// returns the measured items/second.  The clock is sampled every `kBatch`
// iterations so the chrono call does not dominate short bodies.

struct MicroResult {
  std::uint64_t items = 0;
  double wall_s = 0;
  [[nodiscard]] double items_per_sec() const {
    return wall_s > 0 ? static_cast<double>(items) / wall_s : 0.0;
  }
};

template <typename Body>
MicroResult time_loop(Body&& body) {
  using Clock = std::chrono::steady_clock;
  constexpr std::uint64_t kBatch = 4096;
  constexpr std::uint64_t kWarmup = 20000;
  for (std::uint64_t i = 0; i < kWarmup; ++i) body();
  const double budget = micro_seconds();
  const auto start = Clock::now();
  std::uint64_t items = 0;
  double elapsed = 0;
  do {
    for (std::uint64_t i = 0; i < kBatch; ++i) body();
    items += kBatch;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < budget);
  return MicroResult{items, elapsed};
}

// ---------------------------------------------------------------------------
// JSON trajectory reporter.
//
// Each bench appends one "run" object to BENCH_<name>.json so the file
// accumulates a before/after perf trajectory across commits:
//
//   {
//     "bench": "sched_micro",
//     "runs": [
//       { "label": "seed-baseline", "utc": "...", "results": [
//           { "name": "fifo", "params": "flows=1",
//             "items": 1000000, "wall_s": 0.31, "items_per_sec": 3.2e6 } ] }
//     ]
//   }
//
// The label comes from ISPN_BENCH_LABEL (default "run"); the output
// directory from ISPN_BENCH_JSON_DIR (default cwd).

class JsonReporter {
 public:
  explicit JsonReporter(std::string bench_name)
      : bench_(std::move(bench_name)) {}

  void add(const std::string& name, const std::string& params,
           const MicroResult& r) {
    Row row{name, params, r};
    rows_.push_back(row);
    std::printf("  %-28s %-14s %12.0f items/s  (%llu items, %.3f s)\n",
                name.c_str(), params.c_str(), r.items_per_sec(),
                static_cast<unsigned long long>(r.items), r.wall_s);
  }

  /// Appends this run to BENCH_<bench>.json and returns the path written.
  /// The file is replaced atomically (temp + rename); an existing file the
  /// splicer does not recognise is preserved as <path>.bak rather than
  /// silently discarded, so a hand-edited trajectory is never lost.
  std::string write() const {
    const std::string path = json_dir() + "/BENCH_" + bench_ + ".json";
    const std::string run = run_json();
    const std::string existing = slurp(path);
    const std::string tail = "\n  ]\n}\n";
    const auto cut = existing.rfind(tail);
    const bool splice = cut != std::string::npos &&
                        existing.find("\"runs\": [") != std::string::npos;
    if (!existing.empty() && !splice) {
      std::ofstream bak(path + ".bak", std::ios::trunc);
      bak << existing;
      std::fprintf(stderr,
                   "warning: %s not in trajectory format; preserved as "
                   "%s.bak\n",
                   path.c_str(), path.c_str());
    }
    const std::string tmp = path + ".tmp";
    {
      std::ofstream out(tmp, std::ios::trunc);
      if (splice) {
        out << existing.substr(0, cut) << ",\n" << run << tail;
      } else {
        out << "{\n  \"bench\": \"" << bench_ << "\",\n  \"runs\": [\n"
            << run << tail;
      }
    }
    std::rename(tmp.c_str(), path.c_str());
    return path;
  }

 private:
  struct Row {
    std::string name;
    std::string params;
    MicroResult r;
  };

  static std::string json_dir() {
    if (const char* env = std::getenv("ISPN_BENCH_JSON_DIR")) return env;
    return ".";
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path);
    if (!in) return {};
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  [[nodiscard]] std::string run_json() const {
    const char* label_env = std::getenv("ISPN_BENCH_LABEL");
    const std::string label = label_env != nullptr ? label_env : "run";
    char utc[32] = "unknown";
    const std::time_t t = std::time(nullptr);
    std::tm tm_utc{};
    if (gmtime_r(&t, &tm_utc) != nullptr) {
      std::strftime(utc, sizeof utc, "%Y-%m-%dT%H:%M:%SZ", &tm_utc);
    }
    std::ostringstream ss;
    ss << "    {\n      \"label\": \"" << label << "\",\n      \"utc\": \""
       << utc << "\",\n      \"results\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& row = rows_[i];
      ss << "        { \"name\": \"" << row.name << "\", \"params\": \""
         << row.params << "\", \"items\": " << row.r.items
         << ", \"wall_s\": " << row.r.wall_s
         << ", \"items_per_sec\": " << row.r.items_per_sec() << " }"
         << (i + 1 < rows_.size() ? ",\n" : "\n");
    }
    ss << "      ]\n    }";
    return ss.str();
  }

  std::string bench_;
  std::vector<Row> rows_;
};

}  // namespace ispn::bench
