// The utilization argument (paper §4 and §7): if every real-time client
// requested guaranteed service at a clock rate giving reasonable delay
// bounds (= its peak rate), real-time utilization would sit near 50%; with
// predicted service the same link carries 10 flows at 83.5%, and datagram
// TCP fills it past 99%.
//
// Three single-link scenarios:
//   A. guaranteed-only, clock = peak: admission packs floor(0.9 mu / P)
//      = 5 flows -> ~42% real-time utilization.
//   B. predicted service: all 10 paper flows fit -> ~83.5%.
//   C. scenario B + one TCP connection -> >99% total.

#include <cstdio>

#include "common.h"
#include "core/builder.h"
#include "core/experiments.h"

namespace {

using namespace ispn;

struct Scenario {
  const char* name;
  int guaranteed_flows;
  int predicted_flows;
  bool tcp;
};

void run_scenario(const Scenario& s, double seconds) {
  core::IspnNetwork::Config config;
  config.class_targets = {0.016, 0.16};
  config.enforce_admission = false;  // we pack flows explicitly
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(2);
  const traffic::OnOffSource::Config source_config;

  net::FlowId next = 0;
  int realtime = 0;
  for (int g = 0; g < s.guaranteed_flows; ++g) {
    core::FlowSpec spec;
    spec.flow = next++;
    spec.src = topo.hosts[0];
    spec.dst = topo.hosts[1];
    spec.service = net::ServiceClass::kGuaranteed;
    spec.guaranteed = core::GuaranteedSpec{source_config.peak_bps()};
    auto handle = ispn.open_flow(spec);
    auto& source = ispn.attach_onoff_source(
        handle, source_config, static_cast<std::uint64_t>(spec.flow),
        source_config.paper_filter());
    ispn.attach_sink(handle);
    source.start(0);
    ++realtime;
  }
  for (int p = 0; p < s.predicted_flows; ++p) {
    core::FlowSpec spec;
    spec.flow = next++;
    spec.src = topo.hosts[0];
    spec.dst = topo.hosts[1];
    spec.service = net::ServiceClass::kPredicted;
    spec.predicted = core::PredictedSpec{source_config.paper_filter(),
                                         p < 3 ? 0.016 : 0.16, 0.01};
    auto handle = ispn.open_flow(spec);
    auto& source = ispn.attach_onoff_source(
        handle, source_config, static_cast<std::uint64_t>(spec.flow));
    ispn.attach_sink(handle);
    source.start(0);
    ++realtime;
  }
  if (s.tcp) {
    core::FlowSpec spec;
    spec.flow = next++;
    spec.src = topo.hosts[0];
    spec.dst = topo.hosts[1];
    spec.service = net::ServiceClass::kDatagram;
    auto handle = ispn.open_flow(spec);
    auto [tcp, sink] = ispn.attach_tcp(handle);
    (void)sink;
    tcp.start(0);
  }

  ispn.net().sim().run_until(seconds);

  const core::LinkId link{topo.switches[0], topo.switches[1]};
  std::printf("%-28s %10d %12.1f%% %12.1f%%\n", s.name, realtime,
              100.0 * ispn.realtime_utilization(link, seconds),
              100.0 * ispn.link_utilization(link, seconds));
}

}  // namespace

int main() {
  const auto seconds = ispn::bench::run_seconds();
  ispn::bench::header(
      "Utilization: guaranteed-only vs predicted vs predicted+TCP");
  std::printf("single 1 Mbit/s link, paper sources, %.0f s\n\n", seconds);
  std::printf("%-28s %10s %13s %13s\n", "scenario", "RT flows", "RT util",
              "total util");
  ispn::bench::rule();
  run_scenario({"A: guaranteed @ peak clock", 5, 0, false}, seconds);
  run_scenario({"B: predicted service", 0, 10, false}, seconds);
  run_scenario({"C: predicted + TCP", 0, 10, true}, seconds);
  std::printf("\nexpected: A ~42%% (5 peak-rate reservations fill the 90%%\n"
              "real-time quota), B ~83.5%%, C >99%% total.\n");
  return 0;
}
