// Ablation: FIFO+ class-average estimator gain (DESIGN.md §4).
//
// FIFO+ orders packets by "expected arrival under average service"; how
// the switch estimates that average matters.  A fast EWMA chases each
// burst — the baseline moves with the jitter it is supposed to cancel —
// and FIFO+ degenerates to FIFO.  A long-horizon average preserves the
// correction and reproduces the paper's Table 2 separation.

#include <cmath>
#include <cstdio>

#include "common.h"
#include "core/experiments.h"

int main() {
  using namespace ispn;
  const auto seconds = bench::run_seconds();

  bench::header("FIFO+ EWMA gain ablation (Figure-1 chain, 99.9 %ile)");
  std::printf("simulated %.0f s per row\n\n", seconds);
  std::printf("%-14s", "estimator");
  for (int len = 1; len <= 4; ++len) std::printf("   len %d", len);
  std::printf("\n");
  bench::rule();

  auto report = [&](const char* label, const core::ChainResult& result) {
    double p999[5] = {};
    int n[5] = {};
    for (const auto& f : result.flows) {
      p999[f.path_len] += f.p999_pkt;
      ++n[f.path_len];
    }
    std::printf("%-14s", label);
    for (int len = 1; len <= 4; ++len) {
      std::printf(" %7.2f", p999[len] / n[len]);
    }
    std::printf("\n");
  };

  report("FIFO", core::run_chain(core::SchedKind::kFifo, seconds, 1));
  for (const double gain :
       {1.0 / 8, 1.0 / 64, 1.0 / 512, 1.0 / 4096, 1.0 / 32768}) {
    char label[32];
    std::snprintf(label, sizeof label, "FIFO+ g=2^-%d",
                  static_cast<int>(std::log2(1.0 / gain) + 0.5));
    report(label, core::run_chain(core::SchedKind::kFifoPlus, seconds, 1,
                                  gain));
  }
  std::printf("\npaper Table 2: FIFO 30.49/41.22/52.36/58.13, "
              "FIFO+ 33.59/38.15/43.30/45.25\n"
              "expected: small gains (long averages) recover the paper's "
              "FIFO+ advantage.\n");
  return 0;
}
