// Per-packet scheduling cost (paper §1: the scheduling algorithm "must be
// executed for every packet [so] it must not be so complex as to effect
// overall network performance").  google-benchmark microbenchmarks of one
// enqueue+dequeue cycle under steady backlog for each discipline.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "sched/fifo.h"
#include "sched/fifo_plus.h"
#include "sched/priority.h"
#include "sched/unified.h"
#include "sched/wfq.h"

namespace {

using namespace ispn;

net::PacketPtr make(net::FlowId flow, std::uint64_t seq, double now,
                    net::ServiceClass service, std::uint8_t priority = 0) {
  auto p = net::make_packet(flow, seq, 0, 1, now);
  p->enqueued_at = now;
  p->service = service;
  p->priority = priority;
  return p;
}

/// Preloads `backlog` packets across `flows` flows, then measures one
/// enqueue + one dequeue per iteration at steady state.
template <typename MakeSched>
void run_cycle(benchmark::State& state, MakeSched make_sched, int flows,
               net::ServiceClass service) {
  auto sched = make_sched();
  const int backlog = 64;
  std::uint64_t seq = 0;
  double now = 0;
  for (int i = 0; i < backlog; ++i) {
    auto dropped = sched->enqueue(
        make(static_cast<net::FlowId>(i % flows), seq++, now, service,
             static_cast<std::uint8_t>(i % 2)),
        now);
    benchmark::DoNotOptimize(dropped);
  }
  for (auto _ : state) {
    now += 1e-3;
    auto dropped = sched->enqueue(
        make(static_cast<net::FlowId>(seq % static_cast<std::uint64_t>(flows)),
             seq, now, service, static_cast<std::uint8_t>(seq % 2)),
        now);
    ++seq;
    benchmark::DoNotOptimize(dropped);
    auto p = sched->dequeue(now);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

void BM_Fifo(benchmark::State& state) {
  run_cycle(
      state, [] { return std::make_unique<sched::FifoScheduler>(100000); },
      static_cast<int>(state.range(0)), net::ServiceClass::kPredicted);
}
BENCHMARK(BM_Fifo)->Arg(1)->Arg(10)->Arg(100);

void BM_FifoPlus(benchmark::State& state) {
  run_cycle(
      state,
      [] {
        return std::make_unique<sched::FifoPlusScheduler>(
            sched::FifoPlusScheduler::Config{100000, 1.0 / 4096.0, true});
      },
      static_cast<int>(state.range(0)), net::ServiceClass::kPredicted);
}
BENCHMARK(BM_FifoPlus)->Arg(1)->Arg(10)->Arg(100);

void BM_Wfq(benchmark::State& state) {
  run_cycle(
      state,
      [] {
        return std::make_unique<sched::WfqScheduler>(
            sched::WfqScheduler::Config{1e6, 100000, 1e4});
      },
      static_cast<int>(state.range(0)), net::ServiceClass::kPredicted);
}
BENCHMARK(BM_Wfq)->Arg(1)->Arg(10)->Arg(100);

void BM_PriorityOverFifo(benchmark::State& state) {
  run_cycle(
      state,
      [] {
        std::vector<std::unique_ptr<sched::Scheduler>> children;
        children.push_back(std::make_unique<sched::FifoScheduler>(100000));
        children.push_back(std::make_unique<sched::FifoScheduler>(100000));
        return std::make_unique<sched::PriorityScheduler>(std::move(children));
      },
      static_cast<int>(state.range(0)), net::ServiceClass::kPredicted);
}
BENCHMARK(BM_PriorityOverFifo)->Arg(10);

void BM_UnifiedPredicted(benchmark::State& state) {
  run_cycle(
      state,
      [] {
        auto s = std::make_unique<sched::UnifiedScheduler>(
            sched::UnifiedScheduler::Config{1e6, 100000, 2, 1.0 / 4096.0,
                                            true});
        return s;
      },
      static_cast<int>(state.range(0)), net::ServiceClass::kPredicted);
}
BENCHMARK(BM_UnifiedPredicted)->Arg(1)->Arg(10)->Arg(100);

void BM_UnifiedGuaranteed(benchmark::State& state) {
  const int flows = static_cast<int>(state.range(0));
  run_cycle(
      state,
      [flows] {
        auto s = std::make_unique<sched::UnifiedScheduler>(
            sched::UnifiedScheduler::Config{1e6, 100000, 2, 1.0 / 4096.0,
                                            true});
        for (int f = 0; f < flows; ++f) {
          s->add_guaranteed(f, 1e6 / (2.0 * flows));
        }
        return s;
      },
      flows, net::ServiceClass::kGuaranteed);
}
BENCHMARK(BM_UnifiedGuaranteed)->Arg(1)->Arg(10)->Arg(100);

void BM_UnifiedMixed(benchmark::State& state) {
  // Realistic Table-3 port mix: 3 guaranteed flows + 2 predicted classes
  // + datagram, alternating arrivals.
  auto sched = std::make_unique<sched::UnifiedScheduler>(
      sched::UnifiedScheduler::Config{1e6, 100000, 2, 1.0 / 4096.0, true});
  for (int f = 0; f < 3; ++f) sched->add_guaranteed(f, 1.7e5);
  for (int f = 3; f < 10; ++f) sched->set_predicted_priority(f, f % 2);
  std::uint64_t seq = 0;
  double now = 0;
  auto next = [&](std::uint64_t i) {
    const int f = static_cast<int>(i % 11);
    if (f < 3) return make(f, i, now, net::ServiceClass::kGuaranteed);
    if (f < 10) {
      return make(f, i, now, net::ServiceClass::kPredicted,
                  static_cast<std::uint8_t>(f % 2));
    }
    return make(f, i, now, net::ServiceClass::kDatagram);
  };
  for (int i = 0; i < 64; ++i) {
    auto dropped = sched->enqueue(next(seq), now);
    benchmark::DoNotOptimize(dropped);
    ++seq;
  }
  for (auto _ : state) {
    now += 1e-3;
    auto dropped = sched->enqueue(next(seq), now);
    ++seq;
    benchmark::DoNotOptimize(dropped);
    auto p = sched->dequeue(now);
    benchmark::DoNotOptimize(p);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_UnifiedMixed);

}  // namespace

BENCHMARK_MAIN();
