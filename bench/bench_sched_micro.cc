// Per-packet scheduling cost (paper §1: the scheduling algorithm "must be
// executed for every packet [so] it must not be so complex as to effect
// overall network performance").  Self-timed microbenchmarks of one
// enqueue+dequeue cycle under steady backlog for each discipline, appended
// as a run to BENCH_sched_micro.json (see bench/common.h).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "sched/fifo.h"
#include "sched/fifo_plus.h"
#include "sched/priority.h"
#include "sched/unified.h"
#include "sched/wfq.h"

namespace {

using namespace ispn;

net::PacketPtr make(net::FlowId flow, std::uint64_t seq, double now,
                    net::ServiceClass service, std::uint8_t priority = 0) {
  auto p = net::make_packet(flow, seq, 0, 1, now);
  p->enqueued_at = now;
  p->service = service;
  p->priority = priority;
  return p;
}

/// Preloads `backlog` packets across `flows` flows, then measures one
/// enqueue + one dequeue per cycle at steady state.
template <typename MakeSched>
void run_cycle(bench::JsonReporter& report, const std::string& name,
               MakeSched make_sched, int flows, net::ServiceClass service) {
  auto sched = make_sched();
  const int backlog = 64;
  std::uint64_t seq = 0;
  double now = 0;
  for (int i = 0; i < backlog; ++i) {
    sched->enqueue(make(static_cast<net::FlowId>(i % flows), seq++, now,
                        service, static_cast<std::uint8_t>(i % 2)),
                   now);
  }
  std::uint64_t live = 0;  // defeat whole-loop elision
  const auto r = bench::time_loop([&] {
    now += 1e-3;
    sched->enqueue(
        make(static_cast<net::FlowId>(seq % static_cast<std::uint64_t>(flows)),
             seq, now, service, static_cast<std::uint8_t>(seq % 2)),
        now);
    ++seq;
    auto p = sched->dequeue(now);
    if (p != nullptr) ++live;
  });
  if (live == 0) std::printf("(!) nothing dequeued in %s\n", name.c_str());
  report.add(name, "flows=" + std::to_string(flows), r);
}

void bench_mixed(bench::JsonReporter& report) {
  // Realistic Table-3 port mix: 3 guaranteed flows + 2 predicted classes
  // + datagram, alternating arrivals.
  auto sched = std::make_unique<sched::UnifiedScheduler>(
      sched::UnifiedScheduler::Config{1e6, 100000, 2, 1.0 / 4096.0, true});
  for (int f = 0; f < 3; ++f) sched->add_guaranteed(f, 1.7e5);
  for (int f = 3; f < 10; ++f) sched->set_predicted_priority(f, f % 2);
  std::uint64_t seq = 0;
  double now = 0;
  auto next = [&](std::uint64_t i) {
    const int f = static_cast<int>(i % 11);
    if (f < 3) return make(f, i, now, net::ServiceClass::kGuaranteed);
    if (f < 10) {
      return make(f, i, now, net::ServiceClass::kPredicted,
                  static_cast<std::uint8_t>(f % 2));
    }
    return make(f, i, now, net::ServiceClass::kDatagram);
  };
  for (int i = 0; i < 64; ++i) {
    sched->enqueue(next(seq), now);
    ++seq;
  }
  std::uint64_t live = 0;
  const auto r = bench::time_loop([&] {
    now += 1e-3;
    sched->enqueue(next(seq), now);
    ++seq;
    auto p = sched->dequeue(now);
    if (p != nullptr) ++live;
  });
  report.add("unified_mixed", "flows=11", r);
}

}  // namespace

int main() {
  bench::header("sched_micro: per-packet enqueue+dequeue cost");
  bench::JsonReporter report("sched_micro");

  for (int flows : {1, 10, 100}) {
    run_cycle(
        report, "fifo",
        [] { return std::make_unique<sched::FifoScheduler>(100000); }, flows,
        net::ServiceClass::kPredicted);
  }
  for (int flows : {1, 10, 100}) {
    run_cycle(
        report, "fifo_plus",
        [] {
          return std::make_unique<sched::FifoPlusScheduler>(
              sched::FifoPlusScheduler::Config{100000, 1.0 / 4096.0, true});
        },
        flows, net::ServiceClass::kPredicted);
  }
  for (int flows : {1, 10, 100}) {
    run_cycle(
        report, "wfq",
        [] {
          return std::make_unique<sched::WfqScheduler>(
              sched::WfqScheduler::Config{1e6, 100000, 1e4});
        },
        flows, net::ServiceClass::kPredicted);
  }
  // Pure ordering backends (the default above is kAuto): the heap rows are
  // the pre-calendar baseline, the calendar rows isolate the bucketed
  // structure — kept benched forever alongside the differential tests.
  for (const auto& [suffix, backend] :
       {std::pair{"_heap", sched::OrderBackend::kHeap},
        std::pair{"_cal", sched::OrderBackend::kCalendar}}) {
    for (int flows : {1, 100}) {
      run_cycle(
          report, std::string("wfq") + suffix,
          [backend] {
            return std::make_unique<sched::WfqScheduler>(
                sched::WfqScheduler::Config{1e6, 100000, 1e4, backend});
          },
          flows, net::ServiceClass::kPredicted);
    }
  }
  run_cycle(
      report, "priority_over_fifo",
      [] {
        std::vector<std::unique_ptr<sched::Scheduler>> children;
        children.push_back(std::make_unique<sched::FifoScheduler>(100000));
        children.push_back(std::make_unique<sched::FifoScheduler>(100000));
        return std::make_unique<sched::PriorityScheduler>(std::move(children));
      },
      10, net::ServiceClass::kPredicted);
  for (int flows : {1, 10, 100}) {
    run_cycle(
        report, "unified_predicted",
        [] {
          return std::make_unique<sched::UnifiedScheduler>(
              sched::UnifiedScheduler::Config{1e6, 100000, 2, 1.0 / 4096.0,
                                              true});
        },
        flows, net::ServiceClass::kPredicted);
  }
  for (int flows : {1, 10, 100}) {
    run_cycle(
        report, "unified_guaranteed",
        [flows] {
          auto s = std::make_unique<sched::UnifiedScheduler>(
              sched::UnifiedScheduler::Config{1e6, 100000, 2, 1.0 / 4096.0,
                                              true});
          for (int f = 0; f < flows; ++f) {
            s->add_guaranteed(f, 1e6 / (2.0 * flows));
          }
          return s;
        },
        flows, net::ServiceClass::kGuaranteed);
  }
  for (const auto& [suffix, backend] :
       {std::pair{"_heap", sched::OrderBackend::kHeap},
        std::pair{"_cal", sched::OrderBackend::kCalendar}}) {
    run_cycle(
        report, std::string("unified_guaranteed") + suffix,
        [backend] {
          auto s = std::make_unique<sched::UnifiedScheduler>(
              sched::UnifiedScheduler::Config{1e6, 100000, 2, 1.0 / 4096.0,
                                              true, sim::kTimeInfinity,
                                              backend});
          for (int f = 0; f < 100; ++f) s->add_guaranteed(f, 1e6 / 200.0);
          return s;
        },
        100, net::ServiceClass::kGuaranteed);
  }
  bench_mixed(report);

  const std::string path = report.write();
  std::printf("trajectory appended to %s\n", path.c_str());
  return 0;
}
