// Related mechanisms (paper §4 and §11): WFQ vs VirtualClock vs Delay-EDD
// vs FIFO on the guaranteed-service job — isolating a conforming flow from
// a misbehaving one — and on the sharing job (homogeneous bursty flows).
//
// Expected shape:
//   * isolation scenario: WFQ and VirtualClock protect the conforming
//     flow (tiny delay) and punish the flood; FIFO collapses for everyone;
//     EDD with per-flow bounds protects partially (deadlines reorder, but
//     nothing polices the flood's rate).
//   * sharing scenario: FIFO/EDD-single-class tails beat WFQ/VC tails —
//     Table 1's lesson again, from the other direction.

#include <cstdio>
#include <memory>

#include "common.h"
#include "net/topology.h"
#include "sched/edd.h"
#include "sched/fifo_plus.h"
#include "sched/jitter_edd.h"
#include "sched/fifo.h"
#include "sched/virtual_clock.h"
#include "sched/wfq.h"
#include "traffic/cbr_source.h"
#include "traffic/onoff_source.h"

namespace {

using namespace ispn;

enum class Kind { kFifo, kWfq, kVirtualClock, kEdd };

const char* name(Kind kind) {
  switch (kind) {
    case Kind::kFifo: return "FIFO";
    case Kind::kWfq: return "WFQ";
    case Kind::kVirtualClock: return "VirtualClock";
    case Kind::kEdd: return "Delay-EDD";
  }
  return "?";
}

/// Builds a dumbbell whose bottleneck runs `kind`, with per-flow
/// configuration applied through `configure`.
struct Rig {
  net::Network net;
  net::DumbbellTopology topo;
  sched::Scheduler* sched = nullptr;
};

std::unique_ptr<Rig> make_rig(Kind kind) {
  auto rig = std::make_unique<Rig>();
  rig->topo = net::build_dumbbell(rig->net, 1e6, [&]() -> std::unique_ptr<sched::Scheduler> {
    switch (kind) {
      case Kind::kFifo: {
        auto q = std::make_unique<sched::FifoScheduler>(200);
        rig->sched = q.get();
        return q;
      }
      case Kind::kWfq: {
        auto q = std::make_unique<sched::WfqScheduler>(
            sched::WfqScheduler::Config{1e6, 200, 1e5});
        rig->sched = q.get();
        return q;
      }
      case Kind::kVirtualClock: {
        auto q = std::make_unique<sched::VirtualClockScheduler>(
            sched::VirtualClockScheduler::Config{200, 1e5});
        rig->sched = q.get();
        return q;
      }
      case Kind::kEdd: {
        auto q = std::make_unique<sched::EddScheduler>(
            sched::EddScheduler::Config{200, 0.05});
        rig->sched = q.get();
        return q;
      }
    }
    return nullptr;
  });
  return rig;
}

void isolation_row(Kind kind, double seconds) {
  auto rig = make_rig(kind);
  // Reserve half the link for each flow where the discipline supports it.
  if (kind == Kind::kWfq) {
    static_cast<sched::WfqScheduler*>(rig->sched)->add_flow(1, 5e5);
    static_cast<sched::WfqScheduler*>(rig->sched)->add_flow(2, 5e5);
  } else if (kind == Kind::kVirtualClock) {
    static_cast<sched::VirtualClockScheduler*>(rig->sched)->add_flow(1, 5e5);
    static_cast<sched::VirtualClockScheduler*>(rig->sched)->add_flow(2, 5e5);
  } else if (kind == Kind::kEdd) {
    static_cast<sched::EddScheduler*>(rig->sched)->set_bound(1, 0.005);
    static_cast<sched::EddScheduler*>(rig->sched)->set_bound(2, 0.5);
  }
  net::Host& src = rig->net.host(rig->topo.left_host);
  auto emit = [&src](net::PacketPtr p) { src.inject(std::move(p)); };
  traffic::CbrSource good(rig->net.sim(),
                          {.rate_pps = 400.0, .packet_bits = 1000}, 1,
                          rig->topo.left_host, rig->topo.right_host, emit,
                          &rig->net.stats(1));
  traffic::CbrSource flood(rig->net.sim(),
                           {.rate_pps = 1500.0, .packet_bits = 1000}, 2,
                           rig->topo.left_host, rig->topo.right_host, emit,
                           &rig->net.stats(2));
  rig->net.attach_stats_sink(1, rig->topo.right_host);
  rig->net.attach_stats_sink(2, rig->topo.right_host);
  good.start(0);
  flood.start(0);
  rig->net.sim().run_until(seconds);

  const auto& s1 = rig->net.stats(1);
  const auto& s2 = rig->net.stats(2);
  std::printf("%-14s %12.2f %12.2f %11.2f%% %14.2f\n", name(kind),
              s1.mean_qdelay_pkt(), s1.max_qdelay_pkt(),
              100.0 * s1.net_loss_rate(), s2.max_qdelay_pkt());
}

void sharing_row(Kind kind, double seconds) {
  auto rig = make_rig(kind);
  net::Host& src = rig->net.host(rig->topo.left_host);
  std::vector<std::unique_ptr<traffic::OnOffSource>> sources;
  for (int f = 0; f < 10; ++f) {
    traffic::OnOffSource::Config config;
    auto source = std::make_unique<traffic::OnOffSource>(
        rig->net.sim(), config, sim::Rng(1, static_cast<std::uint64_t>(f)),
        f, rig->topo.left_host, rig->topo.right_host,
        [&src](net::PacketPtr p) { src.inject(std::move(p)); },
        &rig->net.stats(f), config.paper_filter());
    rig->net.attach_stats_sink(f, rig->topo.right_host);
    source->start(0);
    sources.push_back(std::move(source));
  }
  rig->net.sim().run_until(seconds);
  double mean = 0, p999 = 0;
  for (int f = 0; f < 10; ++f) {
    mean += rig->net.stats(f).mean_qdelay_pkt() / 10.0;
    p999 += rig->net.stats(f).p999_qdelay_pkt() / 10.0;
  }
  std::printf("%-14s %12.2f %12.2f\n", name(kind), mean, p999);
}

/// Delivery-jitter duel: FIFO vs FIFO+ vs Jitter-EDD on a 2-hop path with
/// independent cross traffic per hop.  Reported: playout spread after the
/// receiver holds by the stamped offset (Jitter-EDD) or plays immediately
/// (others), plus the mean playout delay — the work-conserving vs
/// non-work-conserving trade of §11.
struct PlayoutRecorder final : net::FlowSink {
  bool hold_by_offset;
  stats::SampleSeries playout;
  explicit PlayoutRecorder(bool hold) : hold_by_offset(hold) {}
  void on_packet(net::PacketPtr p, sim::Time now) override {
    const double extra = hold_by_offset ? std::max(0.0, p->jitter_offset) : 0;
    playout.add(now + extra - p->created_at);
  }
};

enum class JKind { kFifo, kFifoPlus, kJitterEdd };

void jitter_row(JKind kind, double seconds) {
  net::Network net;
  const auto topo = net::build_chain(
      net, 3, 1e6, [&]() -> std::unique_ptr<sched::Scheduler> {
        switch (kind) {
          case JKind::kFifo:
            return std::make_unique<sched::FifoScheduler>(200);
          case JKind::kFifoPlus:
            return std::make_unique<sched::FifoPlusScheduler>();
          case JKind::kJitterEdd:
            return std::make_unique<sched::JitterEddScheduler>(
                sched::JitterEddScheduler::Config{200, 0.12});
        }
        return nullptr;
      });
  std::vector<std::unique_ptr<traffic::OnOffSource>> sources;
  std::vector<std::unique_ptr<PlayoutRecorder>> recorders;
  net::FlowId next = 0;
  auto add = [&](int a, int b, bool probe) {
    const net::FlowId flow = next++;
    traffic::OnOffSource::Config config;
    const auto src = topo.hosts[static_cast<std::size_t>(a)];
    const auto dst = topo.hosts[static_cast<std::size_t>(b)];
    net::Host& host = net.host(src);
    auto source = std::make_unique<traffic::OnOffSource>(
        net.sim(), config, sim::Rng(11, static_cast<std::uint64_t>(flow)),
        flow, src, dst,
        [&host](net::PacketPtr p) { host.inject(std::move(p)); },
        &net.stats(flow), config.paper_filter());
    net::FlowSink* app = nullptr;
    if (probe) {
      recorders.push_back(
          std::make_unique<PlayoutRecorder>(kind == JKind::kJitterEdd));
      app = recorders.back().get();
    }
    net.attach_stats_sink(flow, dst, app);
    source->start(0);
    sources.push_back(std::move(source));
  };
  add(0, 2, true);
  add(0, 2, true);
  for (int k = 0; k < 8; ++k) add(0, 1, false);
  for (int k = 0; k < 8; ++k) add(1, 2, false);
  net.sim().run_until(seconds);

  double spread = 0, mean = 0;
  for (const auto& rec : recorders) {
    spread += (rec->playout.percentile(0.999) - rec->playout.min()) / 2.0;
    mean += rec->playout.mean() / 2.0;
  }
  const char* label = kind == JKind::kFifo
                          ? "FIFO"
                          : kind == JKind::kFifoPlus ? "FIFO+" : "Jitter-EDD";
  std::printf("%-14s %16.2f %16.2f\n", label, 1000.0 * mean,
              1000.0 * spread);
}

}  // namespace

int main() {
  const auto seconds = bench::run_seconds();
  const auto kinds = {Kind::kWfq, Kind::kVirtualClock, Kind::kEdd,
                      Kind::kFifo};

  bench::header("Isolation: 400 kb/s conforming flow vs 1.5 Mb/s flood");
  std::printf("(reservations 500/500 kb/s where supported; %.0f s)\n\n",
              seconds);
  std::printf("%-14s %12s %12s %12s %14s\n", "scheduler", "good mean",
              "good max", "good loss", "flood max");
  bench::rule();
  for (Kind kind : kinds) isolation_row(kind, seconds);

  bench::header("Sharing: 10 homogeneous paper sources (Table-1 workload)");
  std::printf("%-14s %12s %12s\n", "scheduler", "mean", "99.9 %ile");
  bench::rule();
  for (Kind kind : kinds) sharing_row(kind, seconds);

  bench::header(
      "Delivery jitter: 2-hop probes, independent cross traffic per hop");
  std::printf("%-14s %16s %16s\n", "scheduler", "playout mean(ms)",
              "playout spread(ms)");
  bench::rule();
  for (JKind kind : {JKind::kFifo, JKind::kFifoPlus, JKind::kJitterEdd}) {
    jitter_row(kind, seconds);
  }

  std::printf("\nexpected: WFQ/VirtualClock isolate (good flow unharmed); "
              "FIFO collapses;\nEDD reorders but cannot police. For "
              "sharing, FIFO/EDD tails beat WFQ/VC.\nJitter-EDD: near-zero "
              "playout spread at a higher (bound-sized) mean —\nthe "
              "non-work-conserving trade; FIFO+ narrows the spread for "
              "free.\n");
  return 0;
}
