// Event-core throughput: schedule/pop/cancel cost of the simulation kernel.
//
// The event loop runs under every statistic in the paper, so events/sec is
// the ceiling on scenario scale.  Steady-state "wheel" workloads keep a
// fixed number of pending events and measure one fire + one (re)schedule
// per cycle, across the capture sizes the simulator actually uses:
//
//   small   8-byte capture  — the dominant fixed-shape events (port
//                             transmit-complete, source next-arrival)
//   medium  32-byte capture — multi-pointer closures (tracer, measurement)
//   large   64-byte capture — cold-path escape hatch (heap-boxed)
//
// All wheel_* rows run the default EventBackend::kAuto (heap below 64
// pending, timing wheel above); event_heap / event_wheel pin the pure
// backends on the small shape so both stay measured across the
// trajectory, and timer_rearm measures the persistent-timer path that
// ports and sources use (one slab slot for life, re-arm = key insert).
//
// Results are appended to BENCH_event_core.json (see bench/common.h).

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common.h"
#include "sim/simulator.h"
#include "sim/timer.h"

namespace {

using namespace ispn;

/// Steady-state wheel: `pending` events in flight; each cycle fires the
/// earliest and schedules one more `horizon` seconds out.
template <typename MakeAction>
void wheel(bench::JsonReporter& report, const std::string& name, int pending,
           MakeAction make_action,
           sim::EventBackend backend = sim::EventBackend::kAuto) {
  sim::Simulator sim(backend);
  std::uint64_t fired = 0;
  const double horizon = 1e-3 * pending;
  for (int i = 0; i < pending; ++i) {
    sim.after(1e-3 * (i + 1), make_action(fired));
  }
  const auto r = bench::time_loop([&] {
    sim.step();
    sim.after(horizon, make_action(fired));
  });
  if (fired == 0) std::printf("(!) no events fired in %s\n", name.c_str());
  report.add(name, "pending=" + std::to_string(pending), r);
}

/// Persistent-timer wheel: the port/source hot path.  `pending` timers
/// each re-arm themselves `horizon` out when they fire — no slot churn,
/// no action reconstruction; one step() fires exactly one timer.
void timer_wheel(bench::JsonReporter& report, int pending) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  std::vector<sim::Timer> timers;
  timers.reserve(static_cast<std::size_t>(pending));
  const double horizon = 1e-3 * pending;
  for (int i = 0; i < pending; ++i) {
    timers.emplace_back(sim, [&timers, &fired, horizon, i] {
      ++fired;
      timers[static_cast<std::size_t>(i)].arm_after(horizon);
    });
    timers.back().arm_after(1e-3 * (i + 1));
  }
  const auto r = bench::time_loop([&] { sim.step(); });
  if (fired == 0) std::printf("(!) no timers fired\n");
  report.add("timer_rearm", "pending=" + std::to_string(pending), r);
}

/// Cancellation wheel: each cycle schedules two events, cancels one, fires
/// one — the port retry-timer pattern.
void cancel_wheel(bench::JsonReporter& report, int pending) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  const double horizon = 1e-3 * pending;
  for (int i = 0; i < pending; ++i) {
    sim.after(1e-3 * (i + 1), [&fired] { ++fired; });
  }
  const auto r = bench::time_loop([&] {
    const sim::EventId doomed =
        sim.after(horizon * 0.5, [&fired] { ++fired; });
    sim.after(horizon, [&fired] { ++fired; });
    sim.cancel(doomed);
    sim.step();
  });
  if (fired == 0) std::printf("(!) no events fired in cancel wheel\n");
  report.add("cancel_wheel", "pending=" + std::to_string(pending), r);
}

}  // namespace

int main() {
  bench::header("event_core: kernel schedule/pop/cancel throughput");
  bench::JsonReporter report("event_core");

  const auto small = [](std::uint64_t& fired) {
    return [&fired] { ++fired; };
  };
  for (int pending : {16, 256, 4096}) {
    wheel(report, "wheel_small", pending, small);
  }
  for (int pending : {16, 256, 4096}) {
    wheel(report, "wheel_medium", pending, [](std::uint64_t& fired) {
      struct Capture {
        std::uint64_t* a;
        std::uint64_t* b;
        std::uint64_t* c;
        std::uint64_t* d;
      } cap{&fired, &fired, &fired, &fired};
      return [cap] { ++*cap.a; };
    });
  }
  for (int pending : {16, 256, 4096}) {
    wheel(report, "wheel_large", pending, [](std::uint64_t& fired) {
      struct Capture {
        std::uint64_t* a;
        char pad[56];
      } cap{&fired, {}};
      return [cap] { ++*cap.a; };
    });
  }
  // Pure backends, kept measured so the trajectory shows both curves.
  for (int pending : {256, 4096}) {
    wheel(report, "event_heap", pending, small, sim::EventBackend::kHeap);
    wheel(report, "event_wheel", pending, small, sim::EventBackend::kWheel);
  }
  for (int pending : {256, 4096}) timer_wheel(report, pending);
  cancel_wheel(report, 256);
  cancel_wheel(report, 4096);

  const std::string path = report.write();
  std::printf("trajectory appended to %s\n", path.c_str());
  return 0;
}
