// §10 "Other Service Qualities" in action.
//
// 1. Importance tagging: every source marks alternate packets "less
//    important" (a layered codec's enhancement layer); under buffer
//    pressure the pushout policy sheds exactly those first, so the base
//    layer survives overload almost untouched.
// 2. Stale discard: a packet that has accumulated a huge FIFO+ offset has
//    already missed any playback point it could have met; discarding it
//    frees bandwidth for live packets.  We overload a chain and compare
//    the delay tail of *delivered* packets with and without discarding.

#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"
#include "core/builder.h"

namespace {

using namespace ispn;

void importance_experiment(double seconds) {
  core::IspnNetwork::Config config;
  config.class_targets = {0.016, 0.16};
  config.enforce_admission = false;
  config.buffer_pkts = 30;  // tight buffer: sustained pressure
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(2);
  const traffic::OnOffSource::Config src_cfg;

  // 13 flows oversubscribe the link (~110% offered); each marks odd
  // sequence numbers less important.
  for (int f = 0; f < 13; ++f) {
    core::FlowSpec spec;
    spec.flow = f;
    spec.src = topo.hosts[0];
    spec.dst = topo.hosts[1];
    spec.service = net::ServiceClass::kPredicted;
    spec.predicted = core::PredictedSpec{src_cfg.paper_filter(), 0.16, 0.01};
    auto handle = ispn.open_flow(spec);
    auto& source = ispn.attach_onoff_source(
        handle, src_cfg, static_cast<std::uint64_t>(f));
    source.set_importance_marker(
        [](std::uint64_t seq) { return seq % 2 == 1; });
    ispn.attach_sink(handle);
    source.start(0);
  }

  // Count drops and deliveries by importance, network-wide.
  std::uint64_t dropped_base = 0, dropped_enh = 0;
  ispn.net()
      .port(topo.switches[0], topo.switches[1])
      ->add_drop_hook([&](const net::Packet& p, sim::Time) {
        (p.less_important ? dropped_enh : dropped_base)++;
      });

  ispn.net().sim().run_until(seconds);

  std::printf("offered ~110%% of the link; buffer 30 packets; %.0f s\n",
              seconds);
  std::printf("base-layer packets dropped:        %8llu\n",
              (unsigned long long)dropped_base);
  std::printf("enhancement-layer packets dropped: %8llu\n",
              (unsigned long long)dropped_enh);
  std::printf("expected: overload losses land almost entirely on the "
              "enhancement layer.\n");
}

void stale_discard_experiment(double seconds, bool enable) {
  core::IspnNetwork::Config config;
  config.class_targets = {0.016, 0.16};
  config.enforce_admission = false;
  config.buffer_pkts = 200;
  if (enable) config.stale_offset_threshold = 0.05;
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(3);  // 2 hops
  const traffic::OnOffSource::Config src_cfg;

  // 12 flows end-to-end: ~102% offered load on both links — queues grow,
  // offsets climb, and without discarding the tail explodes.
  for (int f = 0; f < 12; ++f) {
    core::FlowSpec spec;
    spec.flow = f;
    spec.src = topo.hosts[0];
    spec.dst = topo.hosts[2];
    spec.service = net::ServiceClass::kPredicted;
    spec.predicted = core::PredictedSpec{src_cfg.paper_filter(), 0.32, 0.01};
    auto handle = ispn.open_flow(spec);
    auto& source = ispn.attach_onoff_source(
        handle, src_cfg, static_cast<std::uint64_t>(f));
    ispn.attach_sink(handle);
    source.start(0);
  }
  ispn.net().sim().run_until(seconds);

  // Under sustained overload the tail of *delivered* packets saturates at
  // the buffer limit either way; what discarding buys is useful goodput:
  // packets arriving within a playback-relevant deadline.
  const double deadline = 0.15;  // 150 ms end-to-end queueing budget
  double mean = 0;
  std::uint64_t received = 0, dropped = 0, on_time = 0;
  for (int f = 0; f < 12; ++f) {
    const auto& stats = ispn.net().stats(f);
    mean += stats.mean_qdelay_pkt() / 12.0;
    received += stats.received;
    dropped += stats.net_drops;
    for (double d : stats.queueing_delay.samples()) {
      if (d <= deadline) ++on_time;
    }
  }
  std::uint64_t discards = 0;
  for (int i = 0; i + 1 < 3; ++i) {
    discards += ispn.scheduler({topo.switches[i], topo.switches[i + 1]})
                    .stale_discards();
  }
  std::printf("%-22s  delivered %8llu  on-time(<150ms) %8llu  mean %6.1f "
              "pkt  (stale discards %6llu)\n",
              enable ? "discard @ offset>50ms" : "no discarding",
              (unsigned long long)received, (unsigned long long)on_time,
              mean, (unsigned long long)discards);
}

}  // namespace

int main() {
  const auto seconds = std::min(bench::run_seconds(), 300.0);
  bench::header("S10 service quality 1: importance-based shedding");
  importance_experiment(seconds);
  bench::header("S10 service quality 2: stale-packet discard under overload");
  stale_discard_experiment(seconds, /*enable=*/false);
  stale_discard_experiment(seconds, /*enable=*/true);
  std::printf("expected: discarding lowers the mean delay of delivered "
              "packets by not\ntransmitting doomed ones; an aggressive "
              "threshold also sheds packets that\nwould have met the "
              "deadline — the threshold is a policy knob, which is why\n"
              "the paper pairs it with the already-present FIFO+ offset "
              "rather than new state.\n");
  return 0;
}
