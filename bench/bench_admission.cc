// Admission control sweep (paper §9): predicted-service flows arrive at a
// single link over time; the admission controller decides.  We sweep the
// offered load and report admitted counts, achieved real-time utilization,
// and the worst per-class delay against the targets D_j.
//
// Clients declare a *conservative* token bucket (rate 2A) while actually
// sending at A — exactly the situation the paper argues measurement-based
// admission exploits: "since the sources will normally operate inside
// their limits, this will give a better characterization and better link
// utilization."  Expected shape: the parameter-based controller counts
// declarations and saturates early (~0.9 mu / 2A = 5 flows); the
// measurement-based controller sees actual usage and admits roughly twice
// as many, while the class delay targets D_j still hold.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common.h"
#include "core/builder.h"

namespace {

using namespace ispn;

struct SweepResult {
  int offered = 0;
  int admitted = 0;
  double rt_util = 0;
  double worst_class0_delay = 0;  // seconds
  double worst_class1_delay = 0;
};

SweepResult run(double offered_load, core::AdmissionController::Mode mode,
                double seconds,
                std::uint64_t seed) {
  core::IspnNetwork::Config config;
  config.class_targets = {0.064, 0.64};
  config.admission.mode = mode;
  config.enforce_admission = true;
  config.seed = seed;
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(2);
  const traffic::OnOffSource::Config source_config;

  // Offered load in flows: each flow averages 85 kb/s on a 1 Mb/s link.
  const double flow_rate = source_config.avg_bps();
  const int target_flows =
      static_cast<int>(offered_load * 1e6 / flow_rate + 0.5);

  SweepResult result;
  sim::Rng rng(seed, 999);
  std::vector<int> admitted_class;          // class of each admitted flow
  std::vector<net::FlowId> admitted_flows;

  // Flows arrive Poisson over the first half of the run and stay (holding
  // longer than the horizon), spreading admission decisions over measured
  // state rather than deciding everything at t=0.
  double t = 1.0;
  for (int i = 0; i < target_flows; ++i) {
    t += rng.exponential(seconds / 2.0 / target_flows);
    ++result.offered;
    core::FlowSpec spec;
    spec.flow = i;
    spec.src = topo.hosts[0];
    spec.dst = topo.hosts[1];
    spec.service = net::ServiceClass::kPredicted;
    // Conservative declaration: twice the true average rate.
    traffic::TokenBucketSpec declared = source_config.paper_filter();
    declared.rate *= 2.0;
    spec.predicted =
        core::PredictedSpec{declared, i % 3 == 0 ? 0.064 : 0.64, 0.01};
    const double at = t;
    ispn.net().sim().at(at, [&ispn, &result, spec, &source_config, i,
                             &admitted_class, &admitted_flows] {
      try {
        auto handle = ispn.open_flow(spec);
        auto& source = ispn.attach_onoff_source(
            handle, source_config, static_cast<std::uint64_t>(i));
        ispn.attach_sink(handle);
        source.start(ispn.net().sim().now());
        ++result.admitted;
        admitted_class.push_back(handle.commitment.priority_per_hop.at(0));
        admitted_flows.push_back(spec.flow);
      } catch (const std::runtime_error&) {
        // rejected by admission control
      }
    });
  }

  ispn.net().sim().run_until(seconds);

  const core::LinkId link{topo.switches[0], topo.switches[1]};
  result.rt_util = ispn.realtime_utilization(link, seconds) /
                   ((seconds - 1.0) / seconds);  // flows start after t=1
  // Worst per-class queueing delay over the whole run, from flow stats
  // (the link's WindowedMax only covers the trailing measurement window).
  for (std::size_t k = 0; k < admitted_flows.size(); ++k) {
    const double worst =
        ispn.net().stats(admitted_flows[k]).queueing_delay.max();
    if (admitted_class[k] == 0) {
      result.worst_class0_delay = std::max(result.worst_class0_delay, worst);
    } else {
      result.worst_class1_delay = std::max(result.worst_class1_delay, worst);
    }
  }
  return result;
}

}  // namespace

int main() {
  const auto seconds = ispn::bench::run_seconds();
  for (const auto mode : {core::AdmissionController::Mode::kMeasurementBased,
                          core::AdmissionController::Mode::kParameterBased}) {
    ispn::bench::header(std::string("Admission sweep, ") +
                        (mode == core::AdmissionController::Mode::kMeasurementBased
                             ? "measurement-based (paper)"
                             : "parameter-based (traditional)"));
    std::printf("%10s %10s %10s %10s %14s %14s\n", "offered", "admitted",
                "rejected", "RT util", "max d0 (ms)", "max d1 (ms)");
    ispn::bench::rule();
    for (const double load : {0.4, 0.7, 0.9, 1.2, 1.6}) {
      const auto r = run(load, mode, seconds, 7);
      std::printf("%9.1fx %10d %10d %9.1f%% %14.2f %14.2f\n", load,
                  r.admitted, r.offered - r.admitted, 100.0 * r.rt_util,
                  1000.0 * r.worst_class0_delay,
                  1000.0 * r.worst_class1_delay);
    }
    std::printf("targets: D0 = 64 ms, D1 = 640 ms per hop; declared rate 2A; "
                "datagram quota 10%%\n");
  }
  return 0;
}
