// End-to-end pipeline throughput: full source -> switch -> switch -> sink
// runs, in packets per wall-clock second.
//
// The sched and event microbenches measure the engine's inner loops in
// isolation; this bench measures what the paper's Table reproductions
// actually pay: every delivered packet crosses a source emission event, a
// host injection, a bottleneck queue (enqueue + dequeue under the chosen
// discipline), a transmit-complete event and the sink hand-off.  Rows
// sweep 3 disciplines x {16, 256, 4096} concurrently active flows — the
// flow count sets the simulator's pending-event population, which is the
// regime knob the event core's backend responds to.
//
// Offered load is pinned at 90% of the bottleneck so the pipeline stays
// busy end to end without drowning in drops; per-flow rate scales down as
// flows scale up, keeping total offered (and hence the per-row event
// budget) comparable across pending sizes.
//
// ISPN_E2E_BACKEND=heap|wheel|auto (default auto) forces the event
// backend, so before/after labels for the ordering structure can be
// recorded with the same binary.  Results append to BENCH_e2e.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common.h"
#include "net/network.h"
#include "net/topology.h"
#include "sched/fifo.h"
#include "sched/unified.h"
#include "sched/wfq.h"
#include "sim/shard.h"
#include "sim/simulator.h"
#include "traffic/cbr_source.h"

namespace {

using namespace ispn;

sim::EventBackend backend_from_env() {
  const char* env = std::getenv("ISPN_E2E_BACKEND");
  if (env == nullptr) return sim::EventBackend::kAuto;
  if (std::strcmp(env, "heap") == 0) return sim::EventBackend::kHeap;
  if (std::strcmp(env, "wheel") == 0) return sim::EventBackend::kWheel;
  return sim::EventBackend::kAuto;
}

/// Counts deliveries; packets return to their pool immediately.
class CountSink final : public net::FlowSink {
 public:
  void on_packet(net::PacketPtr, sim::Time) override { ++delivered; }
  std::uint64_t delivered = 0;
};

constexpr double kBottleneck = 1e8;  ///< bits/s: 100k pkt/s of 1000-bit pkts
constexpr double kLoad = 0.9;

/// One pipeline run: `flows` CBR sources inject at the left host, cross
/// the S1 -> S2 bottleneck under `make_scheduler`, and are counted at the
/// right host.  Returns delivered packets per wall second.
bench::MicroResult run_pipeline(int flows,
                                const net::SchedulerFactory& make_scheduler,
                                const std::function<void(sched::Scheduler&,
                                                         int)>& configure) {
  net::Network net(backend_from_env());
  const auto topo = net::build_dumbbell(net, kBottleneck, make_scheduler);
  net::Host& src_host = net.host(topo.left_host);

  sched::Scheduler& bottleneck =
      net.port(topo.left_switch, topo.right_switch)->scheduler();
  if (configure) configure(bottleneck, flows);

  const double total_pps = kLoad * kBottleneck / sim::paper::kPacketBits;
  const double per_flow_pps = total_pps / flows;
  CountSink sink;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  sources.reserve(static_cast<std::size_t>(flows));
  for (int f = 0; f < flows; ++f) {
    auto s = std::make_unique<traffic::CbrSource>(
        net.sim(), traffic::CbrSource::Config{per_flow_pps}, f,
        topo.left_host, topo.right_host,
        [&src_host](net::PacketPtr p) { src_host.inject(std::move(p)); });
    s->set_service(net::ServiceClass::kPredicted,
                   static_cast<std::uint8_t>(f % 2));
    // Stagger phases so emissions interleave instead of bursting.
    s->start(static_cast<double>(f) / total_pps);
    net.host(topo.right_host).register_sink(f, &sink);
    sources.push_back(std::move(s));
  }

  // Warm the pipeline (fills the queue, stabilises slab/pool capacities).
  sim::Time horizon = 0.5;
  net.sim().run_until(horizon);

  using Clock = std::chrono::steady_clock;
  const double budget = bench::micro_seconds();
  // Advance simulated time in slices big enough to amortise the clock
  // read: ~20k delivered packets each.
  const sim::Duration slice = 20000.0 / total_pps;
  const std::uint64_t base = sink.delivered;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    horizon += slice;
    net.sim().run_until(horizon);
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < budget);
  return bench::MicroResult{sink.delivered - base, elapsed};
}

/// Sharded variant of the dumbbell pipeline: two per-switch domains with
/// their own clocks and pools, the bottleneck link handing packets across
/// through a mailbox, driven by the ShardedEngine at `shards` workers
/// (clamped to the 2 domains — the dumbbell measures handoff + barrier
/// overhead; fabric-level scaling lives in bench_scenario's sharded rows).
bench::MicroResult run_pipeline_sharded(
    int flows, int shards, const net::SchedulerFactory& make_scheduler,
    const std::function<void(sched::Scheduler&, int)>& configure) {
  net::Network net(backend_from_env());
  net.enable_sharding(0.001);
  const auto topo = net::build_dumbbell(net, kBottleneck, make_scheduler);
  net::Host& src_host = net.host(topo.left_host);

  sched::Scheduler& bottleneck =
      net.port(topo.left_switch, topo.right_switch)->scheduler();
  if (configure) configure(bottleneck, flows);

  const double total_pps = kLoad * kBottleneck / sim::paper::kPacketBits;
  const double per_flow_pps = total_pps / flows;
  CountSink sink;
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  sources.reserve(static_cast<std::size_t>(flows));
  sim::Simulator& src_clock = net.sim_for(topo.left_host);
  net::PacketPool& src_pool = net.pool_for(topo.left_host);
  for (int f = 0; f < flows; ++f) {
    // Pre-create the stats entry: the packet path is find-only when
    // sharded (a map insert from a domain thread would race).
    static_cast<void>(net.stats(f));
    auto s = std::make_unique<traffic::CbrSource>(
        src_clock, traffic::CbrSource::Config{per_flow_pps}, f,
        topo.left_host, topo.right_host,
        [&src_host](net::PacketPtr p) { src_host.inject(std::move(p)); });
    s->set_pool(&src_pool);
    s->set_service(net::ServiceClass::kPredicted,
                   static_cast<std::uint8_t>(f % 2));
    s->start(static_cast<double>(f) / total_pps);
    net.host(topo.right_host).register_sink(f, &sink);
    sources.push_back(std::move(s));
  }

  sim::ShardedEngine engine(net.sim(), net.link_latency(), shards);
  for (std::size_t d = 0; d < net.num_domains(); ++d) {
    engine.add_domain(&net.domain_sim(d));
  }
  engine.set_exchange([&net] { net.exchange(); });

  sim::Time horizon = 0.5;
  engine.run_until(horizon);

  using Clock = std::chrono::steady_clock;
  const double budget = bench::micro_seconds();
  const sim::Duration slice = 20000.0 / total_pps;
  const std::uint64_t base = sink.delivered;
  const auto start = Clock::now();
  double elapsed = 0;
  do {
    horizon += slice;
    engine.run_until(horizon);
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < budget);
  return bench::MicroResult{sink.delivered - base, elapsed};
}

}  // namespace

int main() {
  bench::header(
      "e2e: source -> switch -> switch -> sink pipeline throughput");
  bench::JsonReporter report("e2e");

  const net::SchedulerFactory fifo = [] {
    return std::make_unique<sched::FifoScheduler>(200);
  };
  const net::SchedulerFactory wfq = [] {
    return std::make_unique<sched::WfqScheduler>(
        sched::WfqScheduler::Config{kBottleneck, 200, 1.0});
  };
  const net::SchedulerFactory unified = [] {
    sched::UnifiedScheduler::Config cfg;
    cfg.link_rate = kBottleneck;
    cfg.capacity_pkts = 200;
    return std::make_unique<sched::UnifiedScheduler>(cfg);
  };
  const auto configure_unified = [](sched::Scheduler& s, int flows) {
    auto& u = static_cast<sched::UnifiedScheduler&>(s);
    for (int f = 0; f < flows; ++f) u.set_predicted_priority(f, f % 2);
  };

  for (int flows : {16, 256, 4096}) {
    report.add("fifo", "flows=" + std::to_string(flows),
               run_pipeline(flows, fifo, {}));
  }
  for (int flows : {16, 256, 4096}) {
    report.add("wfq", "flows=" + std::to_string(flows),
               run_pipeline(flows, wfq, {}));
  }
  for (int flows : {16, 256, 4096}) {
    report.add("unified", "flows=" + std::to_string(flows),
               run_pipeline(flows, unified, configure_unified));
  }
  // Sharded core on the dumbbell: per-worker-count rows isolate the
  // window-barrier + mailbox handoff cost at a fixed 1024-flow load.
  for (int shards : {1, 2, 4}) {
    report.add("unified sharded", "shards=" + std::to_string(shards),
               run_pipeline_sharded(1024, shards, unified,
                                    configure_unified));
  }

  const std::string path = report.write();
  std::printf("trajectory appended to %s\n", path.c_str());
  return 0;
}
