// Ablation: priority classes as jitter shifters (paper §5/§7).
//
// The paper argues (a) priority shifts the jitter of the high class onto
// the low class, and (b) if class targets are order-of-magnitude spaced,
// the exported jitter from above is small relative to the lower class's
// intrinsic jitter, so classes operate quasi-independently.
//
// Experiment: single link, unified scheduler, 7 paper sources in the low
// class; sweep how many additional sources sit in the high class (0..3).
// Report both classes' 99.9th-percentile delays.  Expected: the high class
// keeps tiny tails regardless; the low class's tail inflates only mildly
// as high-class load grows (jitter flows strictly downward).

#include <cstdio>

#include "common.h"
#include "core/builder.h"

namespace {

using namespace ispn;

struct Row {
  int high_flows;
  double high_p999 = 0;
  double low_p999 = 0;
};

Row run(int high_flows, int low_flows, double seconds) {
  core::IspnNetwork::Config config;
  config.class_targets = {0.016, 0.16};
  config.enforce_admission = false;
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(2);
  const traffic::OnOffSource::Config source_config;

  Row row{high_flows};
  net::FlowId next = 0;
  auto add = [&](bool high) {
    core::FlowSpec spec;
    spec.flow = next++;
    spec.src = topo.hosts[0];
    spec.dst = topo.hosts[1];
    spec.service = net::ServiceClass::kPredicted;
    spec.predicted = core::PredictedSpec{source_config.paper_filter(),
                                         high ? 0.016 : 0.16, 0.01};
    auto handle = ispn.open_flow(spec);
    auto& source = ispn.attach_onoff_source(
        handle, source_config, static_cast<std::uint64_t>(spec.flow));
    ispn.attach_sink(handle);
    source.start(0);
    return spec.flow;
  };

  std::vector<net::FlowId> high, low;
  for (int i = 0; i < high_flows; ++i) high.push_back(add(true));
  for (int i = 0; i < low_flows; ++i) low.push_back(add(false));
  ispn.net().sim().run_until(seconds);

  for (net::FlowId f : high) {
    row.high_p999 = std::max(row.high_p999,
                             ispn.net().stats(f).p999_qdelay_pkt());
  }
  for (net::FlowId f : low) {
    row.low_p999 =
        std::max(row.low_p999, ispn.net().stats(f).p999_qdelay_pkt());
  }
  return row;
}

}  // namespace

int main() {
  const auto seconds = ispn::bench::run_seconds();
  ispn::bench::header("Priority spacing ablation: jitter shifts downward");
  std::printf("single link, 7 low-class paper sources; sweep high-class "
              "sources; %.0f s each\n\n",
              seconds);
  std::printf("%12s %16s %16s\n", "high flows", "high p999 (pkt)",
              "low p999 (pkt)");
  ispn::bench::rule();
  for (int high = 0; high <= 3; ++high) {
    const auto row = run(high, 7, seconds);
    if (high == 0) {
      std::printf("%12d %16s %16.2f\n", high, "-", row.low_p999);
    } else {
      std::printf("%12d %16.2f %16.2f\n", high, row.high_p999, row.low_p999);
    }
  }
  std::printf("\nexpected: high-class tails stay small and flat; low-class "
              "tails grow\nwith total load but absorb all of the high "
              "class's jitter.\n");
  return 0;
}
