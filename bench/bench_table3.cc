// Reproduces Table 3 (paper §7): the unified scheduling algorithm on the
// Figure-1 chain with 22 real-time flows (3 Guaranteed-Peak, 2 Guaranteed-
// Average, 7 Predicted-High, 10 Predicted-Low) plus 2 datagram TCP
// connections; every link >99% utilized, 83.5% of it real-time.
//
//   paper (sample rows, pkt times):
//     type     len   mean    99.9%ile  max     P-G bound
//     Peak      4    8.07    14.41     15.99   23.53
//     Peak      2    2.91     8.12      8.79   11.76
//     Average   3   56.44   270.13    296.23  611.76
//     Average   1   36.27   206.75    247.24  588.24
//     High      4    3.06     8.20     11.13     -
//     High      2    1.60     5.83      7.48     -
//     Low       3   19.22   104.83    148.70     -
//     Low       1    7.43    79.57    108.56     -
//
// Expected shape: guaranteed max delays within P-G bounds; peak-clocked
// ≪ average-clocked; high-priority predicted ≪ low-priority; datagram
// drop rate ~0.1%; >99% total utilization.

#include <cstdio>

#include "common.h"
#include "core/experiments.h"

int main() {
  using namespace ispn;
  core::Table3Options options;
  options.seconds = bench::run_seconds();

  bench::header("Table 3: unified scheduler (guaranteed + predicted + TCP)");
  std::printf("simulated %.0f s; 22 real-time flows + 2 TCP connections\n\n",
              options.seconds);

  const auto result = core::run_table3(options);

  std::printf("%-20s %4s %9s %10s %9s %10s\n", "type", "len", "mean",
              "99.9 %ile", "max", "P-G bound");
  bench::rule();
  // Print one sample flow per (role, path length) combination, mirroring
  // the paper's sample rows, then aggregate statistics.
  std::map<std::pair<core::Table3Role, int>, bool> printed;
  for (const auto& f : result.flows) {
    const auto key = std::make_pair(f.role, f.path_len);
    if (printed[key]) continue;
    printed[key] = true;
    if (f.pg_bound_pkt > 0) {
      std::printf("%-20s %4d %9.2f %10.2f %9.2f %10.2f\n",
                  core::to_string(f.role), f.path_len, f.mean_pkt, f.p999_pkt,
                  f.max_pkt, f.pg_bound_pkt);
    } else {
      std::printf("%-20s %4d %9.2f %10.2f %9.2f %10s\n",
                  core::to_string(f.role), f.path_len, f.mean_pkt, f.p999_pkt,
                  f.max_pkt, "-");
    }
  }

  bench::rule();
  bool bounds_hold = true;
  for (const auto& f : result.flows) {
    if (f.pg_bound_pkt > 0 && f.max_pkt >= f.pg_bound_pkt) bounds_hold = false;
  }
  std::printf("all guaranteed flows within P-G bounds: %s\n",
              bounds_hold ? "YES" : "NO (violation!)");

  std::printf("total link utilization:");
  for (double u : result.link_utilization) std::printf(" %.1f%%", 100.0 * u);
  std::printf("  (paper: >99%%)\n");
  std::printf("real-time utilization: ");
  for (double u : result.realtime_utilization) {
    std::printf(" %.1f%%", 100.0 * u);
  }
  std::printf("  (paper: 83.5%%)\n");
  std::printf("datagram (TCP) drop rate: %.3f%%  (paper: ~0.1%%); "
              "TCP segments delivered: %llu\n",
              100.0 * result.datagram_drop_rate,
              static_cast<unsigned long long>(result.tcp_delivered));
  return 0;
}
