// Adaptive vs rigid playback applications (paper §2-3): the core argument
// for predicted service is that adaptive clients set their playback point
// near the *post facto* delay bound rather than the a-priori bound, gaining
// latency at the cost of rare losses.
//
// Experiment: a predicted flow crosses the Figure-1 chain (4 hops) under
// full paper load.  Two receivers consume identical packet streams:
//   * rigid: playback point fixed at the advertised a-priori bound,
//   * adaptive: playback point tracks the 99th percentile of recent delays.
// Report playback points (the application's effective latency) and loss.

#include <cstdio>

#include "app/playback.h"
#include "common.h"
#include "core/experiments.h"

namespace {

using namespace ispn;

/// Duplicates each delivered packet into two playback apps.
class Tee final : public net::FlowSink {
 public:
  Tee(app::PlaybackApp& a, app::PlaybackApp& b) : a_(a), b_(b) {}
  void on_packet(net::PacketPtr p, sim::Time now) override {
    a_.on_packet(net::clone_packet(*p), now);
    b_.on_packet(std::move(p), now);
  }

 private:
  app::PlaybackApp& a_;
  app::PlaybackApp& b_;
};

}  // namespace

int main() {
  const auto seconds = bench::run_seconds();
  bench::header("Adaptive vs rigid playback on the loaded Figure-1 chain");

  core::IspnNetwork::Config config;
  config.class_targets = {0.016, 0.16};
  config.enforce_admission = false;
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(5);
  const traffic::OnOffSource::Config source_config;

  // Background: the paper's full 22-flow layout.
  const auto layout = core::paper_flow_layout();
  net::FlowId probe_flow = -1;
  sim::Duration advertised = 0;
  for (std::size_t f = 0; f < layout.size(); ++f) {
    const auto& lf = layout[f];
    core::FlowSpec spec;
    spec.flow = static_cast<net::FlowId>(f);
    spec.src = topo.hosts[static_cast<std::size_t>(lf.src_sw)];
    spec.dst = topo.hosts[static_cast<std::size_t>(lf.dst_sw)];
    spec.service = net::ServiceClass::kPredicted;
    const bool high = lf.role == core::Table3Role::kPredictedHigh ||
                      lf.role == core::Table3Role::kGuaranteedPeak;
    spec.predicted = core::PredictedSpec{
        source_config.paper_filter(),
        (high ? 0.016 : 0.16) * lf.path_len(), 0.01};
    auto handle = ispn.open_flow(spec);
    auto& source = ispn.attach_onoff_source(handle, source_config, f);
    source.start(0);
    // The probe: the first 4-hop high-priority flow.
    if (probe_flow < 0 && high && lf.path_len() == 4) {
      probe_flow = spec.flow;
      advertised = handle.commitment.advertised_bound.value_or(0.064);
      continue;  // sink attached below with the playback tee
    }
    ispn.attach_sink(handle);
  }

  app::PlaybackApp rigid({.mode = app::PlaybackApp::Mode::kRigid,
                          .initial_point = advertised});
  app::PlaybackApp adaptive({.mode = app::PlaybackApp::Mode::kAdaptive,
                             .initial_point = advertised,
                             .quantile = 0.99,
                             .margin = 0.002,
                             .adapt_interval = 64,
                             .window = 512});
  Tee tee(rigid, adaptive);
  // Re-open the probe's sink with the tee attached.
  const auto& lf = layout[static_cast<std::size_t>(probe_flow)];
  ispn.net().attach_stats_sink(probe_flow,
                               topo.hosts[static_cast<std::size_t>(lf.dst_sw)],
                               &tee);

  ispn.net().sim().run_until(seconds);

  const auto& stats = ispn.net().stats(probe_flow);
  std::printf("probe: 4-hop Predicted-High flow, %llu packets delivered\n",
              static_cast<unsigned long long>(stats.received));
  std::printf("advertised a-priori bound: %.1f ms (sum of per-hop D_i)\n\n",
              1000.0 * advertised);
  std::printf("%-10s %20s %14s %12s\n", "client", "playback point (ms)",
              "mean slack(ms)", "loss rate");
  bench::rule();
  std::printf("%-10s %20.2f %14.2f %11.4f%%\n", "rigid",
              1000.0 * rigid.playback_point(), 1000.0 * rigid.mean_slack(),
              100.0 * rigid.loss_rate());
  std::printf("%-10s %20.2f %14.2f %11.4f%%\n", "adaptive",
              1000.0 * adaptive.playback_point(),
              1000.0 * adaptive.mean_slack(), 100.0 * adaptive.loss_rate());
  std::printf("\nadaptive max point over run: %.2f ms; point changes: %zu\n",
              1000.0 * adaptive.max_point(), adaptive.history().size());
  std::printf("expected: adaptive point (~p99 of actual delay) well below "
              "the a-priori bound,\nwith small but nonzero loss; rigid "
              "wastes the difference as buffering slack.\n");
  return 0;
}
