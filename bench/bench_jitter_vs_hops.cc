// Figure-style series (paper §6 claim): 99.9th-percentile queueing delay
// versus path length, extended beyond the paper's 4 hops to 7, for FIFO,
// FIFO+ and WFQ.
//
// Construction: an 8-switch chain; probe flows of every length 1..7 start
// at switch 1; each link is filled to 10 flows with local one-hop traffic.
// Expected shape: all series grow with hops; FIFO+'s grows most slowly
// (its whole point is correlating the sharing across hops); WFQ's tail is
// the largest throughout.

#include <cstdio>
#include <memory>
#include <vector>

#include "common.h"
#include "core/experiments.h"
#include "net/topology.h"
#include "sched/fifo.h"
#include "sched/fifo_plus.h"
#include "sched/wfq.h"

namespace {

using namespace ispn;

net::SchedulerFactory factory_for(core::SchedKind kind) {
  switch (kind) {
    case core::SchedKind::kFifo:
      return [] { return std::make_unique<sched::FifoScheduler>(200); };
    case core::SchedKind::kWfq:
      return [] {
        return std::make_unique<sched::WfqScheduler>(
            sched::WfqScheduler::Config{1e6, 200, 1e5});
      };
    case core::SchedKind::kFifoPlus:
      return [] { return std::make_unique<sched::FifoPlusScheduler>(); };
  }
  return {};
}

std::vector<double> run(core::SchedKind kind, int num_switches,
                        double seconds) {
  net::Network net;
  const auto topo =
      net::build_chain(net, num_switches, 1e6, factory_for(kind));
  const int links = num_switches - 1;

  std::vector<std::unique_ptr<traffic::OnOffSource>> sources;
  net::FlowId next_flow = 0;
  auto add_flow = [&](int src_sw, int dst_sw) {
    const net::FlowId flow = next_flow++;
    const auto src = topo.hosts[static_cast<std::size_t>(src_sw)];
    const auto dst = topo.hosts[static_cast<std::size_t>(dst_sw)];
    traffic::OnOffSource::Config config;
    net::Host& host = net.host(src);
    auto source = std::make_unique<traffic::OnOffSource>(
        net.sim(), config, sim::Rng(1, static_cast<std::uint64_t>(flow)),
        flow, src, dst,
        [&host](net::PacketPtr p) { host.inject(std::move(p)); },
        &net.stats(flow), config.paper_filter());
    net.attach_stats_sink(flow, dst);
    source->start(0);
    sources.push_back(std::move(source));
    return flow;
  };

  // Probe flows: one of each length 1..links, starting at switch 0.
  std::vector<net::FlowId> probes;
  for (int len = 1; len <= links; ++len) probes.push_back(add_flow(0, len));
  // Fill link j (0-based) to 10 flows: it already carries the probes with
  // length > j, i.e. links - j of them.
  for (int j = 0; j < links; ++j) {
    const int fill = 10 - (links - j);
    for (int k = 0; k < fill; ++k) add_flow(j, j + 1);
  }

  net.sim().run_until(seconds);

  std::vector<double> p999_by_len;
  for (const net::FlowId probe : probes) {
    p999_by_len.push_back(net.stats(probe).p999_qdelay_pkt());
  }
  return p999_by_len;
}

}  // namespace

int main() {
  const auto seconds = bench::run_seconds();
  const int kSwitches = 8;

  bench::header("Jitter growth vs path length (8-switch chain, 10 flows/link)");
  std::printf("simulated %.0f s per scheduler; probe flow 99.9%%ile "
              "queueing delay (pkt times)\n\n",
              seconds);

  std::printf("%-8s", "hops:");
  for (int len = 1; len < kSwitches; ++len) std::printf(" %8d", len);
  std::printf("\n");
  bench::rule();
  for (const auto kind :
       {core::SchedKind::kFifo, core::SchedKind::kFifoPlus,
        core::SchedKind::kWfq}) {
    const auto series = run(kind, kSwitches, seconds);
    std::printf("%-8s", core::to_string(kind));
    for (double v : series) std::printf(" %8.2f", v);
    std::printf("\n");
  }
  std::printf("\nexpected: all grow with hops; FIFO+ grows most slowly; "
              "WFQ highest throughout.\n");
  return 0;
}
