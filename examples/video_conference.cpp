// Guaranteed vs predicted service for the same video source (paper §2.3's
// taxonomy): the remote-surgery conference is intolerant and rigid — it
// buys guaranteed service and lives with the worst-case bound; the family
// reunion is tolerant and adaptive — it takes predicted service, a lower
// playback point, and the (small) risk of disruption.
//
// Two identical bursty video sources cross the same loaded 3-hop path,
// one under each commitment.  We print what each client experiences and
// what it was promised.

#include <cstdio>

#include "app/playback.h"
#include "core/builder.h"

int main() {
  using namespace ispn;

  core::IspnNetwork::Config config;
  config.class_targets = {0.016, 0.16};
  config.enforce_admission = false;
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(4);  // 3 inter-switch hops

  traffic::OnOffSource::Config video;  // paper source doubles as "video"
  const auto filter = video.paper_filter();

  // Surgery feed: guaranteed service at the average clock rate.  Its
  // a-priori bound comes from Parekh-Gallager with the (A, 50) bucket.
  core::FlowSpec surgery;
  surgery.flow = 0;
  surgery.src = topo.hosts[0];
  surgery.dst = topo.hosts[3];
  surgery.service = net::ServiceClass::kGuaranteed;
  surgery.guaranteed = core::GuaranteedSpec{filter.rate};
  auto surgery_handle = ispn.open_flow(surgery);
  const double surgery_bound = ispn.guaranteed_bound(surgery_handle, filter);

  app::PlaybackApp surgery_app({.mode = app::PlaybackApp::Mode::kRigid,
                                .initial_point = surgery_bound});
  auto& surgery_source =
      ispn.attach_onoff_source(surgery_handle, video, 0, filter);
  ispn.attach_sink(surgery_handle, &surgery_app);
  surgery_source.start(0);

  // Family reunion: predicted service, adaptive playback.
  core::FlowSpec reunion;
  reunion.flow = 1;
  reunion.src = topo.hosts[0];
  reunion.dst = topo.hosts[3];
  reunion.service = net::ServiceClass::kPredicted;
  reunion.predicted = core::PredictedSpec{filter, 0.048, 0.01};
  auto reunion_handle = ispn.open_flow(reunion);
  const double reunion_bound =
      reunion_handle.commitment.advertised_bound.value_or(0.048);

  app::PlaybackApp reunion_app({.mode = app::PlaybackApp::Mode::kAdaptive,
                                .initial_point = reunion_bound,
                                .quantile = 0.99,
                                .margin = 0.002,
                                .adapt_interval = 64,
                                .window = 512});
  auto& reunion_source = ispn.attach_onoff_source(reunion_handle, video, 1);
  ispn.attach_sink(reunion_handle, &reunion_app);
  reunion_source.start(0);

  // Shared background load: 8 more paper flows per link.
  net::FlowId next = 2;
  for (int link = 0; link < 3; ++link) {
    for (int k = 0; k < 8; ++k) {
      core::FlowSpec spec;
      spec.flow = next++;
      spec.src = topo.hosts[static_cast<std::size_t>(link)];
      spec.dst = topo.hosts[static_cast<std::size_t>(link + 1)];
      spec.service = net::ServiceClass::kPredicted;
      spec.predicted = core::PredictedSpec{filter, 0.16, 0.01};
      auto handle = ispn.open_flow(spec);
      auto& source = ispn.attach_onoff_source(
          handle, video, static_cast<std::uint64_t>(spec.flow));
      ispn.attach_sink(handle);
      source.start(0);
    }
  }

  ispn.net().sim().run_until(300.0);

  auto report = [&](const char* who, net::FlowId flow,
                    const app::PlaybackApp& app, double bound) {
    const auto& stats = ispn.net().stats(flow);
    std::printf("%s\n", who);
    std::printf("  promised bound     : %7.2f ms\n", 1000.0 * bound);
    std::printf("  measured max delay : %7.2f ms (99.9%%ile %.2f ms)\n",
                stats.e2e_delay.max() * 1000.0,
                stats.e2e_delay.p999() * 1000.0);
    std::printf("  playback point     : %7.2f ms (%s)\n",
                1000.0 * app.playback_point(),
                app.history().empty() ? "fixed" : "adaptive");
    std::printf("  packets late       : %llu of %llu (%.4f%%)\n\n",
                static_cast<unsigned long long>(app.late()),
                static_cast<unsigned long long>(app.received()),
                100.0 * app.loss_rate());
  };

  std::printf("video conference on a shared 3-hop ISPN path\n\n");
  report("SURGERY (intolerant+rigid, guaranteed @ clock = A):", 0,
         surgery_app, surgery_bound);
  report("REUNION (tolerant+adaptive, predicted):", 1, reunion_app,
         reunion_bound);
  std::printf("the guaranteed client never misses its (large) bound; the "
              "adaptive client\nenjoys a playback point an order of "
              "magnitude earlier, with rare losses.\n");
  return 0;
}
