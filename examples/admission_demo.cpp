// Admission control in action (paper §9): a sequence of service requests
// hits a single link; the controller explains each decision.
//
// Shows criterion 1 (the 10% datagram quota) and criterion 2 (burst vs
// per-class delay slack) rejecting exactly the requests that would break
// existing commitments.

#include <cstdio>
#include <stdexcept>

#include "core/builder.h"

namespace {

using namespace ispn;

void try_flow(core::IspnNetwork& ispn, const core::FlowSpec& spec,
              const char* what) {
  std::printf("request: %-52s -> ", what);
  try {
    const auto handle = ispn.open_flow(spec);
    if (handle.spec.service == net::ServiceClass::kPredicted) {
      std::printf("ADMITTED (class %d, bound %.0f ms)\n",
                  handle.commitment.priority_per_hop.at(0),
                  1000.0 * handle.commitment.advertised_bound.value_or(0));
    } else {
      std::printf("ADMITTED\n");
    }
  } catch (const std::runtime_error& e) {
    const std::string why = e.what();
    const auto colon = why.rfind(": ");
    std::printf("REJECTED (%s)\n",
                colon == std::string::npos ? why.c_str()
                                           : why.c_str() + colon + 2);
  }
}

core::FlowSpec guaranteed(net::FlowId id, net::NodeId src, net::NodeId dst,
                          sim::Rate r) {
  core::FlowSpec s;
  s.flow = id;
  s.src = src;
  s.dst = dst;
  s.service = net::ServiceClass::kGuaranteed;
  s.guaranteed = core::GuaranteedSpec{r};
  return s;
}

core::FlowSpec predicted(net::FlowId id, net::NodeId src, net::NodeId dst,
                         sim::Rate r, sim::Bits b, sim::Duration target) {
  core::FlowSpec s;
  s.flow = id;
  s.src = src;
  s.dst = dst;
  s.service = net::ServiceClass::kPredicted;
  s.predicted = core::PredictedSpec{{r, b}, target, 0.01};
  return s;
}

}  // namespace

int main() {
  core::IspnNetwork::Config config;
  config.class_targets = {0.064, 0.64};  // 64 / 640 ms per hop
  config.admission.mode = core::AdmissionController::Mode::kParameterBased;
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(2);
  const auto h1 = topo.hosts[0];
  const auto h2 = topo.hosts[1];
  net::FlowId id = 0;

  std::printf("1 Mbit/s link; class targets 64 ms / 640 ms; 10%% datagram "
              "quota\n\n");

  try_flow(ispn, guaranteed(id++, h1, h2, 300000.0),
           "guaranteed, clock 300 kb/s");
  try_flow(ispn, guaranteed(id++, h1, h2, 300000.0),
           "guaranteed, another 300 kb/s");
  try_flow(ispn, guaranteed(id++, h1, h2, 350000.0),
           "guaranteed, 350 kb/s (would breach the 90% quota)");
  try_flow(ispn, predicted(id++, h1, h2, 50000.0, 5000.0, 0.64),
           "predicted, 50 kb/s, 5 kb burst, loose target");
  try_flow(ispn, predicted(id++, h1, h2, 50000.0, 50000.0, 0.064),
           "predicted, 50 kb burst, tight 64 ms target (criterion 2)");
  try_flow(ispn, predicted(id++, h1, h2, 50000.0, 50000.0, 0.64),
           "same 50 kb burst, loose 640 ms target");
  try_flow(ispn, predicted(id++, h1, h2, 200000.0, 1000.0, 0.64),
           "predicted, 200 kb/s (no room left under the quota)");

  core::FlowSpec dg;
  dg.flow = id++;
  dg.src = h1;
  dg.dst = h2;
  dg.service = net::ServiceClass::kDatagram;
  try_flow(ispn, dg, "datagram (never refused)");

  std::printf("\ncommitted: guaranteed %.0f kb/s, predicted %.0f kb/s of "
              "900 kb/s real-time quota\n",
              ispn.admission().guaranteed_rate(
                  {topo.switches[0], topo.switches[1]}) / 1000.0,
              ispn.admission().predicted_rate(
                  {topo.switches[0], topo.switches[1]}) / 1000.0);
  return 0;
}
