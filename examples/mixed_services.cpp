// All three service classes sharing one ISPN (paper §7's unified
// scheduler in miniature): a guaranteed flow, two predicted classes and a
// TCP bulk transfer on one bottleneck.  Demonstrates the paper's central
// design split — isolation for the guaranteed flow, sharing (with jitter
// shifted downward) for everything else — in one runnable program.

#include <cstdio>

#include "core/builder.h"

int main() {
  using namespace ispn;

  core::IspnNetwork::Config config;
  config.class_targets = {0.016, 0.16};
  config.enforce_admission = false;  // fixed demo mix
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(2);
  const auto h1 = topo.hosts[0];
  const auto h2 = topo.hosts[1];
  const traffic::OnOffSource::Config src_cfg;
  const auto filter = src_cfg.paper_filter();

  struct Entry {
    const char* name;
    net::FlowId flow;
  };
  std::vector<Entry> entries;
  net::FlowId id = 0;

  // One guaranteed flow at its peak clock rate.
  {
    core::FlowSpec spec;
    spec.flow = id++;
    spec.src = h1;
    spec.dst = h2;
    spec.service = net::ServiceClass::kGuaranteed;
    spec.guaranteed = core::GuaranteedSpec{src_cfg.peak_bps()};
    auto handle = ispn.open_flow(spec);
    auto& source = ispn.attach_onoff_source(handle, src_cfg, 0, filter);
    ispn.attach_sink(handle);
    source.start(0);
    entries.push_back({"guaranteed (clock = peak)", spec.flow});
  }
  // Three high-priority + four low-priority predicted flows.
  for (int i = 0; i < 7; ++i) {
    core::FlowSpec spec;
    spec.flow = id++;
    spec.src = h1;
    spec.dst = h2;
    spec.service = net::ServiceClass::kPredicted;
    spec.predicted = core::PredictedSpec{filter, i < 3 ? 0.016 : 0.16, 0.01};
    auto handle = ispn.open_flow(spec);
    auto& source = ispn.attach_onoff_source(
        handle, src_cfg, static_cast<std::uint64_t>(spec.flow));
    ispn.attach_sink(handle);
    source.start(0);
    entries.push_back(
        {i < 3 ? "predicted-high" : "predicted-low", spec.flow});
  }
  // A TCP bulk transfer soaks up the rest.
  net::FlowId tcp_flow;
  {
    core::FlowSpec spec;
    spec.flow = tcp_flow = id++;
    spec.src = h1;
    spec.dst = h2;
    spec.service = net::ServiceClass::kDatagram;
    auto handle = ispn.open_flow(spec);
    auto [tcp, sink] = ispn.attach_tcp(handle);
    (void)sink;
    tcp.start(0);
  }

  const double seconds = 120.0;
  ispn.net().sim().run_until(seconds);

  std::printf("one 1 Mbit/s link, 120 s: 1 guaranteed + 7 predicted + TCP\n\n");
  std::printf("%-28s %10s %10s %10s %9s\n", "flow", "mean", "99.9%ile",
              "max (pkt)", "loss");
  for (const auto& e : entries) {
    const auto& s = ispn.net().stats(e.flow);
    std::printf("%-28s %10.2f %10.2f %10.2f %8.3f%%\n", e.name,
                s.mean_qdelay_pkt(), s.p999_qdelay_pkt(), s.max_qdelay_pkt(),
                100.0 * s.net_loss_rate());
  }
  const auto& tcp_stats = ispn.net().stats(tcp_flow);
  std::printf("%-28s %10s %10s %10s %8.3f%%  (%llu segments)\n",
              "datagram TCP", "-", "-", "-",
              100.0 * tcp_stats.net_loss_rate(),
              static_cast<unsigned long long>(tcp_stats.received));

  const core::LinkId link{topo.switches[0], topo.switches[1]};
  std::printf("\nlink utilization %.1f%% total, %.1f%% real-time\n",
              100.0 * ispn.link_utilization(link, seconds),
              100.0 * ispn.realtime_utilization(link, seconds));
  std::printf("note the layering: guaranteed tiny and bounded; predicted-"
              "high small;\npredicted-low absorbs the jitter from above; "
              "TCP takes what is left.\n");
  return 0;
}
