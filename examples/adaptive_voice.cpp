// Adaptive packet voice (paper §2): a VAT-style conversation whose
// receiver moves its playback point with measured network delay.
//
// A voice call crosses a congested 4-hop path under predicted service.
// Midway through the call, a burst of extra traffic joins, delays rise,
// and the adaptive receiver re-adjusts — exactly the "gamble that the
// recent past predicts the near future" the paper describes.  We print
// the playback-point timeline and the loss taken during re-adaptation.

#include <cstdio>
#include <vector>

#include "app/playback.h"
#include "core/builder.h"
#include "core/experiments.h"

int main() {
  using namespace ispn;

  core::IspnNetwork::Config config;
  config.class_targets = {0.016, 0.16};
  config.enforce_admission = false;  // we deliberately overload mid-call
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(5);
  const traffic::OnOffSource::Config voice;  // the paper's A = 85 pkt/s

  // The call: Host-1 -> Host-5, high-priority predicted service.
  core::FlowSpec call;
  call.flow = 0;
  call.src = topo.hosts[0];
  call.dst = topo.hosts[4];
  call.service = net::ServiceClass::kPredicted;
  call.predicted = core::PredictedSpec{voice.paper_filter(), 0.064, 0.01};
  auto call_handle = ispn.open_flow(call);
  auto& call_source = ispn.attach_onoff_source(call_handle, voice, 0);

  app::PlaybackApp receiver({.mode = app::PlaybackApp::Mode::kAdaptive,
                             .initial_point =
                                 call_handle.commitment.advertised_bound
                                     .value_or(0.064),
                             .quantile = 0.99,
                             .margin = 0.002,
                             .adapt_interval = 64,
                             .window = 512});
  ispn.attach_sink(call_handle, &receiver);
  call_source.start(0);

  // Background: 6 low-priority flows per link from the start...
  net::FlowId next = 1;
  auto add_background = [&](int src_sw, int dst_sw, sim::Time at) {
    core::FlowSpec spec;
    spec.flow = next++;
    spec.src = topo.hosts[static_cast<std::size_t>(src_sw)];
    spec.dst = topo.hosts[static_cast<std::size_t>(dst_sw)];
    spec.service = net::ServiceClass::kPredicted;
    spec.predicted = core::PredictedSpec{
        voice.paper_filter(), 0.16 * (dst_sw - src_sw), 0.01};
    auto handle = ispn.open_flow(spec);
    auto& source = ispn.attach_onoff_source(
        handle, voice, static_cast<std::uint64_t>(spec.flow));
    ispn.attach_sink(handle);
    source.start(at);
  };
  for (int link = 0; link < 4; ++link) {
    for (int k = 0; k < 6; ++k) add_background(link, link + 1, 0.0);
  }
  // ...and at t = 120 s three more flows pile onto every link: network
  // conditions change, delays jump.
  for (int link = 0; link < 4; ++link) {
    for (int k = 0; k < 3; ++k) add_background(link, link + 1, 120.0);
  }

  ispn.net().sim().run_until(240.0);

  std::printf("adaptive packet voice, 4-hop path, load step at t = 120 s\n");
  std::printf("a-priori bound: %.0f ms; call delivered %llu packets\n\n",
              1000.0 * call_handle.commitment.advertised_bound.value_or(0.064),
              static_cast<unsigned long long>(receiver.received()));

  std::printf("playback-point timeline (sampled changes):\n");
  const auto& history = receiver.history();
  const std::size_t step = history.size() > 16 ? history.size() / 16 : 1;
  for (std::size_t i = 0; i < history.size(); i += step) {
    std::printf("  t=%7.1f s   point = %6.2f ms\n", history[i].at,
                1000.0 * history[i].point);
  }
  if (!history.empty()) {
    std::printf("  t=%7.1f s   point = %6.2f ms (final)\n",
                history.back().at, 1000.0 * history.back().point);
  }
  std::printf("\nlate packets (missed playback point): %llu (%.3f%%)\n",
              static_cast<unsigned long long>(receiver.late()),
              100.0 * receiver.loss_rate());
  std::printf("final playback point %.2f ms vs a-priori bound %.0f ms — the "
              "adaptive client\nconverses with far less mouth-to-ear delay "
              "than a rigid one would.\n",
              1000.0 * receiver.playback_point(),
              1000.0 * call_handle.commitment.advertised_bound.value_or(0.064));
  return 0;
}
