// Quickstart: build an ISPN, request predicted service, send traffic,
// read the statistics.
//
//   $ ./quickstart
//
// Walks through the whole public API in ~40 lines: topology, service
// interface, admission, the paper's on/off source, and per-flow stats.

#include <cstdio>

#include "core/builder.h"

int main() {
  using namespace ispn;

  // 1. An ISPN with two predicted-service classes: 16 ms and 160 ms
  //    per-hop delay targets (order-of-magnitude spaced, per the paper).
  core::IspnNetwork::Config config;
  config.class_targets = {0.016, 0.16};
  core::IspnNetwork ispn(config);

  // 2. The paper's Figure-1 topology: five switches in a chain, one host
  //    each, 1 Mbit/s inter-switch links running the unified scheduler.
  const auto topo = ispn.build_chain(5);

  // 3. Request predicted service from Host-1 to Host-5: declare an
  //    (r, b) token bucket and the delay/loss targets.
  core::FlowSpec spec;
  spec.flow = 1;
  spec.src = topo.hosts[0];
  spec.dst = topo.hosts[4];
  spec.service = net::ServiceClass::kPredicted;
  spec.predicted = core::PredictedSpec{
      /*bucket=*/{85000.0, 50000.0},  // 85 kb/s rate, 50-packet depth
      /*target_delay=*/0.64,          // end-to-end target over 4 hops
      /*target_loss=*/0.01};
  const auto flow = ispn.open_flow(spec);  // admission control runs here
  std::printf("admitted: %s, advertised bound: %.0f ms, priority: %d\n",
              flow.commitment.admitted ? "yes" : "no",
              1000.0 * flow.commitment.advertised_bound.value_or(0),
              flow.commitment.priority_per_hop.at(0));

  // 4. Attach the paper's two-state Markov source (A = 85 pkt/s) and the
  //    statistics sink.
  auto& source = ispn.attach_onoff_source(flow, {}, /*stream=*/0);
  ispn.attach_sink(flow);
  source.start(0);

  // 5. Give it company: nine identical one-hop flows share the first link,
  //    so the flow actually queues (an empty network shows zero delay).
  for (int i = 0; i < 9; ++i) {
    core::FlowSpec bg;
    bg.flow = 100 + i;
    bg.src = topo.hosts[0];
    bg.dst = topo.hosts[1];
    bg.service = net::ServiceClass::kPredicted;
    bg.predicted = core::PredictedSpec{{85000.0, 50000.0}, 0.16, 0.01};
    auto handle = ispn.open_flow(bg);
    auto& bg_source = ispn.attach_onoff_source(
        handle, {}, /*stream=*/static_cast<std::uint64_t>(10 + i));
    ispn.attach_sink(handle);
    bg_source.start(0);
  }
  ispn.net().sim().run_until(60.0);

  // 6. Read the results.
  const auto& stats = ispn.net().stats(spec.flow);
  std::printf("delivered %llu packets (%llu dropped at the edge filter)\n",
              static_cast<unsigned long long>(stats.received),
              static_cast<unsigned long long>(stats.source_drops));
  std::printf("queueing delay: mean %.2f, 99.9%%ile %.2f, max %.2f packet "
              "times\n",
              stats.mean_qdelay_pkt(), stats.p999_qdelay_pkt(),
              stats.max_qdelay_pkt());
  std::printf("end-to-end delay: mean %.2f ms (4 store-and-forward hops = "
              "4 ms floor)\n",
              1000.0 * stats.e2e_delay.mean());
  return 0;
}
