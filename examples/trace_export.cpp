// Packet-level trace export: run a loaded link for a few seconds and dump
// every transmit/drop/delivery event as CSV (stdout), ready for plotting
// delay scatter or burst anatomy.
//
//   $ ./trace_export > trace.csv

#include <cstdio>
#include <iostream>

#include "core/builder.h"
#include "net/tracer.h"

int main() {
  using namespace ispn;

  core::IspnNetwork::Config config;
  config.class_targets = {0.016, 0.16};
  config.enforce_admission = false;
  core::IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(2);
  const traffic::OnOffSource::Config src_cfg;

  net::PacketTracer tracer(/*max_records=*/200000);
  tracer.attach(ispn.net());

  // Ten paper flows across one link; deliveries traced for flow 0 only
  // (the wrap_sink chains in front of the stats recorder).
  for (int f = 0; f < 10; ++f) {
    core::FlowSpec spec;
    spec.flow = f;
    spec.src = topo.hosts[0];
    spec.dst = topo.hosts[1];
    spec.service = net::ServiceClass::kPredicted;
    spec.predicted = core::PredictedSpec{src_cfg.paper_filter(),
                                         f < 3 ? 0.016 : 0.16, 0.01};
    auto handle = ispn.open_flow(spec);
    auto& source = ispn.attach_onoff_source(
        handle, src_cfg, static_cast<std::uint64_t>(f));
    ispn.attach_sink(handle, f == 0 ? tracer.wrap_sink() : nullptr);
    source.start(0);
  }

  ispn.net().sim().run_until(10.0);
  tracer.to_csv(std::cout);

  std::fprintf(stderr,
               "wrote %zu events (%llu tx, %llu drop, %llu deliver)%s\n",
               tracer.records().size(),
               static_cast<unsigned long long>(
                   tracer.count(net::PacketTracer::Event::kTransmit)),
               static_cast<unsigned long long>(
                   tracer.count(net::PacketTracer::Event::kDrop)),
               static_cast<unsigned long long>(
                   tracer.count(net::PacketTracer::Event::kDeliver)),
               tracer.truncated() ? " [truncated]" : "");
  return 0;
}
