file(REMOVE_RECURSE
  "CMakeFiles/example_mixed_services.dir/examples/mixed_services.cpp.o"
  "CMakeFiles/example_mixed_services.dir/examples/mixed_services.cpp.o.d"
  "example_mixed_services"
  "example_mixed_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mixed_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
