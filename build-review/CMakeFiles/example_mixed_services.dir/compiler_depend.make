# Empty compiler generated dependencies file for example_mixed_services.
# This may be replaced when dependencies are built.
