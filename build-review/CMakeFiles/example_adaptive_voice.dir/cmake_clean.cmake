file(REMOVE_RECURSE
  "CMakeFiles/example_adaptive_voice.dir/examples/adaptive_voice.cpp.o"
  "CMakeFiles/example_adaptive_voice.dir/examples/adaptive_voice.cpp.o.d"
  "example_adaptive_voice"
  "example_adaptive_voice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_adaptive_voice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
