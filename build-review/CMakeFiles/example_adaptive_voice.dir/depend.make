# Empty dependencies file for example_adaptive_voice.
# This may be replaced when dependencies are built.
