file(REMOVE_RECURSE
  "CMakeFiles/test_close_flow.dir/tests/test_close_flow.cc.o"
  "CMakeFiles/test_close_flow.dir/tests/test_close_flow.cc.o.d"
  "test_close_flow"
  "test_close_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_close_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
