# Empty dependencies file for test_close_flow.
# This may be replaced when dependencies are built.
