file(REMOVE_RECURSE
  "CMakeFiles/test_integration_tables.dir/tests/test_integration_tables.cc.o"
  "CMakeFiles/test_integration_tables.dir/tests/test_integration_tables.cc.o.d"
  "test_integration_tables"
  "test_integration_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
