# Empty compiler generated dependencies file for test_integration_tables.
# This may be replaced when dependencies are built.
