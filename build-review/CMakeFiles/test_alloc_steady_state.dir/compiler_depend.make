# Empty compiler generated dependencies file for test_alloc_steady_state.
# This may be replaced when dependencies are built.
