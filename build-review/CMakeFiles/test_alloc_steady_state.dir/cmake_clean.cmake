file(REMOVE_RECURSE
  "CMakeFiles/test_alloc_steady_state.dir/tests/alloc_hook.cc.o"
  "CMakeFiles/test_alloc_steady_state.dir/tests/alloc_hook.cc.o.d"
  "CMakeFiles/test_alloc_steady_state.dir/tests/test_alloc_steady_state.cc.o"
  "CMakeFiles/test_alloc_steady_state.dir/tests/test_alloc_steady_state.cc.o.d"
  "test_alloc_steady_state"
  "test_alloc_steady_state.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_alloc_steady_state.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
