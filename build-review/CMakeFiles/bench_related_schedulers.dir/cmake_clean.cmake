file(REMOVE_RECURSE
  "CMakeFiles/bench_related_schedulers.dir/bench/bench_related_schedulers.cc.o"
  "CMakeFiles/bench_related_schedulers.dir/bench/bench_related_schedulers.cc.o.d"
  "bench_related_schedulers"
  "bench_related_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
