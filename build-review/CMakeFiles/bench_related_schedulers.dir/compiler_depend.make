# Empty compiler generated dependencies file for bench_related_schedulers.
# This may be replaced when dependencies are built.
