file(REMOVE_RECURSE
  "CMakeFiles/test_edd.dir/tests/test_edd.cc.o"
  "CMakeFiles/test_edd.dir/tests/test_edd.cc.o.d"
  "test_edd"
  "test_edd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_edd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
