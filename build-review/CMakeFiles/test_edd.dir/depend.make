# Empty dependencies file for test_edd.
# This may be replaced when dependencies are built.
