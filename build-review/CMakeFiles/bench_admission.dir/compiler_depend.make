# Empty compiler generated dependencies file for bench_admission.
# This may be replaced when dependencies are built.
