file(REMOVE_RECURSE
  "CMakeFiles/test_wfq.dir/tests/test_wfq.cc.o"
  "CMakeFiles/test_wfq.dir/tests/test_wfq.cc.o.d"
  "test_wfq"
  "test_wfq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wfq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
