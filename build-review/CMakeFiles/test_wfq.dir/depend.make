# Empty dependencies file for test_wfq.
# This may be replaced when dependencies are built.
