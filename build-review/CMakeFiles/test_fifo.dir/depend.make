# Empty dependencies file for test_fifo.
# This may be replaced when dependencies are built.
