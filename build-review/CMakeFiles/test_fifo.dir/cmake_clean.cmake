file(REMOVE_RECURSE
  "CMakeFiles/test_fifo.dir/tests/test_fifo.cc.o"
  "CMakeFiles/test_fifo.dir/tests/test_fifo.cc.o.d"
  "test_fifo"
  "test_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
