# Empty dependencies file for test_virtual_clock.
# This may be replaced when dependencies are built.
