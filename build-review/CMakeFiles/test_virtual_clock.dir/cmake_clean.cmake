file(REMOVE_RECURSE
  "CMakeFiles/test_virtual_clock.dir/tests/test_virtual_clock.cc.o"
  "CMakeFiles/test_virtual_clock.dir/tests/test_virtual_clock.cc.o.d"
  "test_virtual_clock"
  "test_virtual_clock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtual_clock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
