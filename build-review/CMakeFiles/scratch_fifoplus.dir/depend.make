# Empty dependencies file for scratch_fifoplus.
# This may be replaced when dependencies are built.
