file(REMOVE_RECURSE
  "CMakeFiles/scratch_fifoplus.dir/tests/scratch_fifoplus.cc.o"
  "CMakeFiles/scratch_fifoplus.dir/tests/scratch_fifoplus.cc.o.d"
  "scratch_fifoplus"
  "scratch_fifoplus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scratch_fifoplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
