file(REMOVE_RECURSE
  "CMakeFiles/test_jitter_edd.dir/tests/test_jitter_edd.cc.o"
  "CMakeFiles/test_jitter_edd.dir/tests/test_jitter_edd.cc.o.d"
  "test_jitter_edd"
  "test_jitter_edd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_jitter_edd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
