# Empty compiler generated dependencies file for test_jitter_edd.
# This may be replaced when dependencies are built.
