file(REMOVE_RECURSE
  "CMakeFiles/test_batch_means.dir/tests/test_batch_means.cc.o"
  "CMakeFiles/test_batch_means.dir/tests/test_batch_means.cc.o.d"
  "test_batch_means"
  "test_batch_means.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_batch_means.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
