file(REMOVE_RECURSE
  "CMakeFiles/test_flowspec.dir/tests/test_flowspec.cc.o"
  "CMakeFiles/test_flowspec.dir/tests/test_flowspec.cc.o.d"
  "test_flowspec"
  "test_flowspec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_flowspec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
