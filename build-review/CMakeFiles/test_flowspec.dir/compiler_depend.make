# Empty compiler generated dependencies file for test_flowspec.
# This may be replaced when dependencies are built.
