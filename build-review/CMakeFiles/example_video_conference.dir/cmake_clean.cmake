file(REMOVE_RECURSE
  "CMakeFiles/example_video_conference.dir/examples/video_conference.cpp.o"
  "CMakeFiles/example_video_conference.dir/examples/video_conference.cpp.o.d"
  "example_video_conference"
  "example_video_conference.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_video_conference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
