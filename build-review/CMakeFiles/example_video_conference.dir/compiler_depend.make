# Empty compiler generated dependencies file for example_video_conference.
# This may be replaced when dependencies are built.
