# Empty dependencies file for test_util_structures.
# This may be replaced when dependencies are built.
