file(REMOVE_RECURSE
  "CMakeFiles/test_util_structures.dir/tests/test_util_structures.cc.o"
  "CMakeFiles/test_util_structures.dir/tests/test_util_structures.cc.o.d"
  "test_util_structures"
  "test_util_structures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_util_structures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
