file(REMOVE_RECURSE
  "CMakeFiles/test_playback.dir/tests/test_playback.cc.o"
  "CMakeFiles/test_playback.dir/tests/test_playback.cc.o.d"
  "test_playback"
  "test_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
