file(REMOVE_RECURSE
  "CMakeFiles/bench_sched_micro.dir/bench/bench_sched_micro.cc.o"
  "CMakeFiles/bench_sched_micro.dir/bench/bench_sched_micro.cc.o.d"
  "bench_sched_micro"
  "bench_sched_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sched_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
