file(REMOVE_RECURSE
  "CMakeFiles/test_p2_quantile.dir/tests/test_p2_quantile.cc.o"
  "CMakeFiles/test_p2_quantile.dir/tests/test_p2_quantile.cc.o.d"
  "test_p2_quantile"
  "test_p2_quantile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_p2_quantile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
