file(REMOVE_RECURSE
  "CMakeFiles/bench_event_core.dir/bench/bench_event_core.cc.o"
  "CMakeFiles/bench_event_core.dir/bench/bench_event_core.cc.o.d"
  "bench_event_core"
  "bench_event_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
