# Empty dependencies file for test_pg_bound.
# This may be replaced when dependencies are built.
