file(REMOVE_RECURSE
  "CMakeFiles/test_pg_bound.dir/tests/test_pg_bound.cc.o"
  "CMakeFiles/test_pg_bound.dir/tests/test_pg_bound.cc.o.d"
  "test_pg_bound"
  "test_pg_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pg_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
