# Empty dependencies file for test_sources.
# This may be replaced when dependencies are built.
