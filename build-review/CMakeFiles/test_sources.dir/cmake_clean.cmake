file(REMOVE_RECURSE
  "CMakeFiles/test_sources.dir/tests/test_sources.cc.o"
  "CMakeFiles/test_sources.dir/tests/test_sources.cc.o.d"
  "test_sources"
  "test_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
