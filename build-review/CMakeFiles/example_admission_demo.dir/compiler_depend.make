# Empty compiler generated dependencies file for example_admission_demo.
# This may be replaced when dependencies are built.
