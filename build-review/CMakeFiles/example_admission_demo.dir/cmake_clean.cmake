file(REMOVE_RECURSE
  "CMakeFiles/example_admission_demo.dir/examples/admission_demo.cpp.o"
  "CMakeFiles/example_admission_demo.dir/examples/admission_demo.cpp.o.d"
  "example_admission_demo"
  "example_admission_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_admission_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
