# Empty compiler generated dependencies file for test_fifo_plus.
# This may be replaced when dependencies are built.
