file(REMOVE_RECURSE
  "CMakeFiles/test_fifo_plus.dir/tests/test_fifo_plus.cc.o"
  "CMakeFiles/test_fifo_plus.dir/tests/test_fifo_plus.cc.o.d"
  "test_fifo_plus"
  "test_fifo_plus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo_plus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
