# Empty compiler generated dependencies file for test_integration_unified.
# This may be replaced when dependencies are built.
