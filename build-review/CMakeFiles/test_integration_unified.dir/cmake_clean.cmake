file(REMOVE_RECURSE
  "CMakeFiles/test_integration_unified.dir/tests/test_integration_unified.cc.o"
  "CMakeFiles/test_integration_unified.dir/tests/test_integration_unified.cc.o.d"
  "test_integration_unified"
  "test_integration_unified.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_unified.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
