# Empty compiler generated dependencies file for bench_adaptive_playback.
# This may be replaced when dependencies are built.
