file(REMOVE_RECURSE
  "CMakeFiles/bench_adaptive_playback.dir/bench/bench_adaptive_playback.cc.o"
  "CMakeFiles/bench_adaptive_playback.dir/bench/bench_adaptive_playback.cc.o.d"
  "bench_adaptive_playback"
  "bench_adaptive_playback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive_playback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
