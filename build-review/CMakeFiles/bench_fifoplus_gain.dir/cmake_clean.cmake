file(REMOVE_RECURSE
  "CMakeFiles/bench_fifoplus_gain.dir/bench/bench_fifoplus_gain.cc.o"
  "CMakeFiles/bench_fifoplus_gain.dir/bench/bench_fifoplus_gain.cc.o.d"
  "bench_fifoplus_gain"
  "bench_fifoplus_gain.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fifoplus_gain.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
