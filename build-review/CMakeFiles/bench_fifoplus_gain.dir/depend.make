# Empty dependencies file for bench_fifoplus_gain.
# This may be replaced when dependencies are built.
