file(REMOVE_RECURSE
  "CMakeFiles/bench_priority_spacing.dir/bench/bench_priority_spacing.cc.o"
  "CMakeFiles/bench_priority_spacing.dir/bench/bench_priority_spacing.cc.o.d"
  "bench_priority_spacing"
  "bench_priority_spacing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_priority_spacing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
