# Empty dependencies file for bench_priority_spacing.
# This may be replaced when dependencies are built.
