file(REMOVE_RECURSE
  "CMakeFiles/test_packet_pool.dir/tests/test_packet_pool.cc.o"
  "CMakeFiles/test_packet_pool.dir/tests/test_packet_pool.cc.o.d"
  "test_packet_pool"
  "test_packet_pool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_packet_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
