# Empty dependencies file for test_packet_pool.
# This may be replaced when dependencies are built.
