file(REMOVE_RECURSE
  "CMakeFiles/bench_jitter_vs_hops.dir/bench/bench_jitter_vs_hops.cc.o"
  "CMakeFiles/bench_jitter_vs_hops.dir/bench/bench_jitter_vs_hops.cc.o.d"
  "bench_jitter_vs_hops"
  "bench_jitter_vs_hops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_jitter_vs_hops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
