# Empty compiler generated dependencies file for bench_jitter_vs_hops.
# This may be replaced when dependencies are built.
