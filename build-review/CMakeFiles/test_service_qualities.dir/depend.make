# Empty dependencies file for test_service_qualities.
# This may be replaced when dependencies are built.
