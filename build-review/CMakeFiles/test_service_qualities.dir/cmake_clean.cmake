file(REMOVE_RECURSE
  "CMakeFiles/test_service_qualities.dir/tests/test_service_qualities.cc.o"
  "CMakeFiles/test_service_qualities.dir/tests/test_service_qualities.cc.o.d"
  "test_service_qualities"
  "test_service_qualities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_service_qualities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
