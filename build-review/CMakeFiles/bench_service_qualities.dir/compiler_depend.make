# Empty compiler generated dependencies file for bench_service_qualities.
# This may be replaced when dependencies are built.
