file(REMOVE_RECURSE
  "CMakeFiles/bench_service_qualities.dir/bench/bench_service_qualities.cc.o"
  "CMakeFiles/bench_service_qualities.dir/bench/bench_service_qualities.cc.o.d"
  "bench_service_qualities"
  "bench_service_qualities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_service_qualities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
