
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/adaptive.cc" "CMakeFiles/ispn.dir/src/app/adaptive.cc.o" "gcc" "CMakeFiles/ispn.dir/src/app/adaptive.cc.o.d"
  "/root/repo/src/app/playback.cc" "CMakeFiles/ispn.dir/src/app/playback.cc.o" "gcc" "CMakeFiles/ispn.dir/src/app/playback.cc.o.d"
  "/root/repo/src/core/admission.cc" "CMakeFiles/ispn.dir/src/core/admission.cc.o" "gcc" "CMakeFiles/ispn.dir/src/core/admission.cc.o.d"
  "/root/repo/src/core/builder.cc" "CMakeFiles/ispn.dir/src/core/builder.cc.o" "gcc" "CMakeFiles/ispn.dir/src/core/builder.cc.o.d"
  "/root/repo/src/core/experiments.cc" "CMakeFiles/ispn.dir/src/core/experiments.cc.o" "gcc" "CMakeFiles/ispn.dir/src/core/experiments.cc.o.d"
  "/root/repo/src/core/flowspec.cc" "CMakeFiles/ispn.dir/src/core/flowspec.cc.o" "gcc" "CMakeFiles/ispn.dir/src/core/flowspec.cc.o.d"
  "/root/repo/src/core/measurement.cc" "CMakeFiles/ispn.dir/src/core/measurement.cc.o" "gcc" "CMakeFiles/ispn.dir/src/core/measurement.cc.o.d"
  "/root/repo/src/core/pg_bound.cc" "CMakeFiles/ispn.dir/src/core/pg_bound.cc.o" "gcc" "CMakeFiles/ispn.dir/src/core/pg_bound.cc.o.d"
  "/root/repo/src/net/host.cc" "CMakeFiles/ispn.dir/src/net/host.cc.o" "gcc" "CMakeFiles/ispn.dir/src/net/host.cc.o.d"
  "/root/repo/src/net/network.cc" "CMakeFiles/ispn.dir/src/net/network.cc.o" "gcc" "CMakeFiles/ispn.dir/src/net/network.cc.o.d"
  "/root/repo/src/net/port.cc" "CMakeFiles/ispn.dir/src/net/port.cc.o" "gcc" "CMakeFiles/ispn.dir/src/net/port.cc.o.d"
  "/root/repo/src/net/routing.cc" "CMakeFiles/ispn.dir/src/net/routing.cc.o" "gcc" "CMakeFiles/ispn.dir/src/net/routing.cc.o.d"
  "/root/repo/src/net/switch.cc" "CMakeFiles/ispn.dir/src/net/switch.cc.o" "gcc" "CMakeFiles/ispn.dir/src/net/switch.cc.o.d"
  "/root/repo/src/net/topology.cc" "CMakeFiles/ispn.dir/src/net/topology.cc.o" "gcc" "CMakeFiles/ispn.dir/src/net/topology.cc.o.d"
  "/root/repo/src/net/tracer.cc" "CMakeFiles/ispn.dir/src/net/tracer.cc.o" "gcc" "CMakeFiles/ispn.dir/src/net/tracer.cc.o.d"
  "/root/repo/src/sched/edd.cc" "CMakeFiles/ispn.dir/src/sched/edd.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sched/edd.cc.o.d"
  "/root/repo/src/sched/fifo.cc" "CMakeFiles/ispn.dir/src/sched/fifo.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sched/fifo.cc.o.d"
  "/root/repo/src/sched/fifo_plus.cc" "CMakeFiles/ispn.dir/src/sched/fifo_plus.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sched/fifo_plus.cc.o.d"
  "/root/repo/src/sched/jitter_edd.cc" "CMakeFiles/ispn.dir/src/sched/jitter_edd.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sched/jitter_edd.cc.o.d"
  "/root/repo/src/sched/priority.cc" "CMakeFiles/ispn.dir/src/sched/priority.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sched/priority.cc.o.d"
  "/root/repo/src/sched/unified.cc" "CMakeFiles/ispn.dir/src/sched/unified.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sched/unified.cc.o.d"
  "/root/repo/src/sched/virtual_clock.cc" "CMakeFiles/ispn.dir/src/sched/virtual_clock.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sched/virtual_clock.cc.o.d"
  "/root/repo/src/sched/wfq.cc" "CMakeFiles/ispn.dir/src/sched/wfq.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sched/wfq.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "CMakeFiles/ispn.dir/src/sim/event_queue.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/random.cc" "CMakeFiles/ispn.dir/src/sim/random.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sim/random.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "CMakeFiles/ispn.dir/src/sim/simulator.cc.o" "gcc" "CMakeFiles/ispn.dir/src/sim/simulator.cc.o.d"
  "/root/repo/src/stats/batch_means.cc" "CMakeFiles/ispn.dir/src/stats/batch_means.cc.o" "gcc" "CMakeFiles/ispn.dir/src/stats/batch_means.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "CMakeFiles/ispn.dir/src/stats/histogram.cc.o" "gcc" "CMakeFiles/ispn.dir/src/stats/histogram.cc.o.d"
  "/root/repo/src/stats/online_stats.cc" "CMakeFiles/ispn.dir/src/stats/online_stats.cc.o" "gcc" "CMakeFiles/ispn.dir/src/stats/online_stats.cc.o.d"
  "/root/repo/src/stats/p2_quantile.cc" "CMakeFiles/ispn.dir/src/stats/p2_quantile.cc.o" "gcc" "CMakeFiles/ispn.dir/src/stats/p2_quantile.cc.o.d"
  "/root/repo/src/stats/percentile.cc" "CMakeFiles/ispn.dir/src/stats/percentile.cc.o" "gcc" "CMakeFiles/ispn.dir/src/stats/percentile.cc.o.d"
  "/root/repo/src/stats/rate_meter.cc" "CMakeFiles/ispn.dir/src/stats/rate_meter.cc.o" "gcc" "CMakeFiles/ispn.dir/src/stats/rate_meter.cc.o.d"
  "/root/repo/src/traffic/cbr_source.cc" "CMakeFiles/ispn.dir/src/traffic/cbr_source.cc.o" "gcc" "CMakeFiles/ispn.dir/src/traffic/cbr_source.cc.o.d"
  "/root/repo/src/traffic/greedy_source.cc" "CMakeFiles/ispn.dir/src/traffic/greedy_source.cc.o" "gcc" "CMakeFiles/ispn.dir/src/traffic/greedy_source.cc.o.d"
  "/root/repo/src/traffic/leaky_bucket.cc" "CMakeFiles/ispn.dir/src/traffic/leaky_bucket.cc.o" "gcc" "CMakeFiles/ispn.dir/src/traffic/leaky_bucket.cc.o.d"
  "/root/repo/src/traffic/onoff_source.cc" "CMakeFiles/ispn.dir/src/traffic/onoff_source.cc.o" "gcc" "CMakeFiles/ispn.dir/src/traffic/onoff_source.cc.o.d"
  "/root/repo/src/traffic/poisson_source.cc" "CMakeFiles/ispn.dir/src/traffic/poisson_source.cc.o" "gcc" "CMakeFiles/ispn.dir/src/traffic/poisson_source.cc.o.d"
  "/root/repo/src/traffic/tcp.cc" "CMakeFiles/ispn.dir/src/traffic/tcp.cc.o" "gcc" "CMakeFiles/ispn.dir/src/traffic/tcp.cc.o.d"
  "/root/repo/src/traffic/token_bucket.cc" "CMakeFiles/ispn.dir/src/traffic/token_bucket.cc.o" "gcc" "CMakeFiles/ispn.dir/src/traffic/token_bucket.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
