# Empty compiler generated dependencies file for ispn.
# This may be replaced when dependencies are built.
