file(REMOVE_RECURSE
  "libispn.a"
)
