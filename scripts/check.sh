#!/usr/bin/env bash
# Local pre-push gate / CI entry point: configure + build + ctest + a short
# bench smoke.  Usage: scripts/check.sh [build-dir]
#
# The bench smoke runs the two engine microbenches with a tiny wall-time
# budget (and the table-1 bench with a 2-second simulated run) purely to
# catch crashes and gross regressions; trajectory-quality numbers should be
# recorded with the default budgets from the repo root instead:
#   ISPN_BENCH_LABEL=<label> ISPN_BENCH_JSON_DIR=. build/bench_sched_micro

set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

echo "== configure =="
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build =="
cmake --build "$BUILD_DIR" -j "$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== scenario smoke =="
# Small configs through the scenario CLI; scenario_run exits non-zero on a
# conservation violation, so CI trips on any packet-accounting bug.  (The
# golden-trace determinism suite test_scenario_golden already ran under
# ctest above.)
"$BUILD_DIR/scenario_run" --preset fan_in --scale smoke arrival_rate=0 target_flows=8 >/dev/null
"$BUILD_DIR/scenario_run" --preset parking_lot --scale smoke arrival_rate=0 target_flows=12 >/dev/null
"$BUILD_DIR/scenario_run" --preset churn --scale smoke run_seconds=2 >/dev/null
# Failure preset under both event backends: explicit failures (so the
# 2-second smoke really takes links down) must reroute, rebalance the
# ledger (failed_link_drops bucket) and exit 0 — on the wheel as on the
# heap.
for eb in heap wheel; do
  "$BUILD_DIR/scenario_run" --preset failure run_seconds=2 \
    link_failure_rate=0 event_backend="$eb" \
    --fail-link 0:2@0.5,up@1.4 --fail-link 6:8@0.9 >/dev/null
done
# Sharded parallel core at 1 and 4 workers: any worker count must produce
# the identical report (test_shard_diff proves byte-identity; this smoke
# catches CLI/runner wiring and threading crashes in a plain build).
for n in 1 4; do
  "$BUILD_DIR/scenario_run" --preset fan_in --scale smoke tree_depth=3 \
    arrival_rate=0 target_flows=8 --shards "$n" >/dev/null
done
# Responsive traffic: every CC stack (and the round-robin mix) through the
# CLI with DEC-TR-506 binary feedback on — conservation now covers the
# bidirectional data+ACK ledger, so exit 0 means the transport accounting
# balanced; the mix also runs sharded to smoke cross-domain ACK handoff.
for cc in reno bbr rack mix; do
  "$BUILD_DIR/scenario_run" --preset parking_lot --scale smoke --cc "$cc" \
    arrival_rate=0 target_flows=12 binary_feedback=1 >/dev/null
done
"$BUILD_DIR/scenario_run" --preset parking_lot --scale smoke --cc mix \
  arrival_rate=0 target_flows=12 binary_feedback=1 --shards 2 >/dev/null
# Chaos gate: every fault family at once (crashes, brown-outs, transient
# loss, flapping links) with the invariant monitor auditing continuously.
# scenario_run exits 1 on ANY structured violation, so a broken ledger or
# an incoherent scheduler fails the gate — classic and sharded cores both.
"$BUILD_DIR/scenario_run" --chaos run_seconds=10 >/dev/null
"$BUILD_DIR/scenario_run" --chaos run_seconds=10 --shards 2 >/dev/null

echo "== bench smoke =="
# Keep the smoke outputs out of the repo root so the committed perf
# trajectory files only record deliberate runs.
export ISPN_BENCH_JSON_DIR="$BUILD_DIR"
export ISPN_BENCH_LABEL="smoke"
ISPN_BENCH_MICRO_SECONDS=0.02 "$BUILD_DIR/bench_event_core" >/dev/null
ISPN_BENCH_MICRO_SECONDS=0.02 "$BUILD_DIR/bench_sched_micro" >/dev/null
ISPN_BENCH_MICRO_SECONDS=0.02 "$BUILD_DIR/bench_e2e" >/dev/null
# Cap the flow-scale sweep for the smoke: the million-flow rows need real
# warm time to mean anything.  Record them deliberately from the repo root:
#   ISPN_BENCH_LABEL=flow-scale ISPN_BENCH_JSON_DIR=. build/bench_scenario
ISPN_BENCH_MICRO_SECONDS=0.02 ISPN_BENCH_MAX_FLOWS=16384 \
  "$BUILD_DIR/bench_scenario" >/dev/null
ISPN_BENCH_SECONDS=2 "$BUILD_DIR/bench_table1" >/dev/null

echo "OK"
