// scenario_run: drive one scenario fabric from the command line.
//
// Usage:
//   scenario_run --preset fan_in [--scale smoke|small|large] [key=value ...]
//   scenario_run --chaos [key=value ...]
//   scenario_run path/to/config.json [key=value ...]
//   scenario_run --list
//
// The config file is the flat JSON-ish object scenario::apply_json
// accepts (keys mirror ScenarioSpec fields; "preset" and "scale" keys are
// applied first).  Trailing key=value args override either form.
//
// Output: the human-readable report on stdout; --json PATH additionally
// writes the machine-readable report.
//
// --chaos is the self-checking preset: every fault family active and the
// invariant monitor auditing continuously; any structured violation makes
// the run exit non-zero, so CI can drive it as a chaos gate.
//
// Exit codes: 0 success, 1 CONSERVATION VIOLATED or INVARIANT VIOLATIONS
// (CI trips on this), 2 usage/config error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "scenario/runner.h"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s (--preset NAME | --chaos | CONFIG.json) "
               "[--scale SCALE] [--json PATH] "
               "[--fail-link SRC:DST@T[,up@T2]] "
               "[--shards N] [--cc off|reno|bbr|rack|mix] [key=value ...]\n"
               "       %s --list\n",
               argv0, argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ispn;

  scenario::ScenarioSpec spec;
  bool have_spec = false;
  bool have_overrides = false;
  std::string json_path;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg == "--list") {
        std::printf("presets: chain fan_in parking_lot churn failure chaos\n");
        std::printf("scales:  smoke small large\n");
        return 0;
      }
      if (arg == "--chaos") {
        // Sugar for `--preset chaos` with the monitor guaranteed on: all
        // four fault families plus continuous invariant audits, and any
        // violation turns into a non-zero exit below.
        if (have_overrides) {
          std::fprintf(stderr,
                       "--chaos must be the first setting (it replaces "
                       "the whole spec)\n");
          return 2;
        }
        spec = scenario::preset("chaos");
        if (spec.invariant_cadence <= 0) spec.invariant_cadence = 0.5;
        have_spec = true;
        have_overrides = true;
      } else if (arg == "--preset") {
        if (++i >= argc) return usage(argv[0]);
        if (have_overrides) {
          // A preset REPLACES the spec; accepting it here would silently
          // discard the settings already applied.
          std::fprintf(stderr,
                       "--preset must be the first setting (it replaces "
                       "the whole spec)\n");
          return 2;
        }
        spec = scenario::preset(argv[i]);
        have_spec = true;
        have_overrides = true;  // a later preset (flag or config key)
                                // would silently replace this choice
      } else if (arg == "--scale") {
        if (++i >= argc) return usage(argv[0]);
        scenario::apply_scale(spec, argv[i]);
        have_overrides = true;  // a later --preset would discard it
      } else if (arg == "--json") {
        if (++i >= argc) return usage(argv[0]);
        json_path = argv[i];
      } else if (arg == "--shards") {
        // Worker threads for the sharded parallel core; any N >= 1 is
        // bit-identical to N=1 (0 restores the classic single clock).
        if (++i >= argc) return usage(argv[0]);
        scenario::apply_override(spec, "shards", argv[i]);
        have_overrides = true;
      } else if (arg == "--cc") {
        // Congestion-control stack for the datagram flows (off keeps the
        // open-loop generators); pair with binary_feedback=1 for the
        // DEC-TR-506 marking loop.
        if (++i >= argc) return usage(argv[0]);
        scenario::apply_override(spec, "cc", argv[i]);
        have_spec = true;
        have_overrides = true;
      } else if (arg == "--fail-link") {
        // SRC:DST@T[,up@T2] — take the duplex link down at T (and back up
        // at T2).  Repeatable; each use appends one failure.
        if (++i >= argc) return usage(argv[0]);
        scenario::apply_override(spec, "fail_link", argv[i]);
        have_spec = true;
        have_overrides = true;
      } else if (arg.find('=') != std::string::npos) {
        const auto eq = arg.find('=');
        scenario::apply_override(spec, arg.substr(0, eq), arg.substr(eq + 1));
        have_spec = true;
        have_overrides = true;
      } else if (!arg.empty() && arg[0] != '-') {
        std::ifstream in(arg);
        if (!in) {
          std::fprintf(stderr, "cannot open config '%s'\n", arg.c_str());
          return 2;
        }
        std::ostringstream ss;
        ss << in.rdbuf();
        if (scenario::apply_json(spec, ss.str()) && have_overrides) {
          std::fprintf(stderr,
                       "config '%s' contains a preset that would discard "
                       "the settings given before it\n",
                       arg.c_str());
          return 2;
        }
        have_spec = true;
        have_overrides = true;
      } else {
        return usage(argv[0]);
      }
    }
    if (!have_spec) return usage(argv[0]);
    spec.validate();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  scenario::ScenarioRunner runner(spec);
  const scenario::ScenarioReport report = runner.run();
  report.to_text(std::cout);

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    report.to_json(out);
    std::printf("json report written to %s\n", json_path.c_str());
  }

  int rc = 0;
  if (!report.conserved()) {
    std::fprintf(stderr, "CONSERVATION VIOLATED\n");
    rc = 1;
  }
  if (report.invariant_violations > 0) {
    // The runtime monitor already printed each structured violation as it
    // fired; the summary line makes the gate's verdict unmissable.
    std::fprintf(stderr, "INVARIANT VIOLATIONS: %llu\n",
                 static_cast<unsigned long long>(report.invariant_violations));
    rc = 1;
  }
  return rc;
}
