// Scratch diagnostic (not a test target in CI): FIFO vs FIFO+ tails.
#include <cstdio>
#include <cstdlib>

#include "core/experiments.h"

int main(int argc, char** argv) {
  using namespace ispn;
  const double seconds = argc > 1 ? atof(argv[1]) : 600.0;
  const std::uint64_t seed = argc > 2 ? strtoull(argv[2], nullptr, 10) : 1;
  auto report = [&](const char* label, const core::ChainResult& r) {
    double mean[5] = {}, p999[5] = {};
    int n[5] = {};
    for (const auto& f : r.flows) {
      mean[f.path_len] += f.mean_pkt;
      p999[f.path_len] += f.p999_pkt;
      ++n[f.path_len];
    }
    printf("%-12s", label);
    for (int len = 1; len <= 4; ++len) {
      printf("  len%d mean %6.2f p999 %7.2f", len, mean[len] / n[len],
             p999[len] / n[len]);
    }
    printf("\n");
  };
  report("FIFO", core::run_chain(core::SchedKind::kFifo, seconds, seed));
  for (double gain : {1.0 / 8, 1.0 / 32, 1.0 / 128, 1.0 / 512, 1.0 / 4096}) {
    char label[32];
    snprintf(label, sizeof label, "F+ g=1/%d", (int)(1.0 / gain));
    report(label,
           core::run_chain(core::SchedKind::kFifoPlus, seconds, seed, gain));
  }
  report("WFQ", core::run_chain(core::SchedKind::kWfq, seconds, seed));
  return 0;
}
