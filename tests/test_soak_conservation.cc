// Million-packet soak: conservation and allocation discipline at scale.
//
// An asymmetric-rate parking-lot — four sources entering the merge switch
// over feed links of different speeds, all contending for one 1 Mbit/s
// bottleneck — runs ~2 million offered packets end to end.  Two global
// invariants are asserted:
//
//   conservation   offered == delivered + dropped + queued, checked
//                  mid-flight (with queued counted across every port and
//                  in-flight transmission) and after the drain (queued=0);
//
//   allocation     the steady-state phase performs ZERO heap allocations
//                  (this binary links the counting operator new/delete
//                  overrides from alloc_hook.cc): pools, rings, slabs and
//                  the ordering backends must all have stopped growing
//                  once warmed.
//
// ctest runs this under the `soak` label so sanitizer jobs can exclude it.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "alloc_hook.h"
#include "net/network.h"
#include "net/topology.h"
#include "sched/wfq.h"
#include "traffic/cbr_source.h"

namespace ispn {
namespace {

/// Per-flow delivery counter that deliberately records nothing per-packet
/// beyond the tallies, so the steady state has no growing sample vectors.
class CountingSink final : public net::FlowSink {
 public:
  void on_packet(net::PacketPtr p, sim::Time) override {
    ++received_;
    bits_ += p->size_bits;
  }
  [[nodiscard]] std::uint64_t received() const { return received_; }
  [[nodiscard]] sim::Bits bits() const { return bits_; }

 private:
  std::uint64_t received_ = 0;
  sim::Bits bits_ = 0;
};

TEST(Soak, AsymmetricParkingLotConservesPacketsWithoutAllocating) {
  net::Network net;
  // Feed links: 2 Mbit/s, 1 Mbit/s, 0.5 Mbit/s, and an infinitely fast
  // one; the 1 Mbit/s merge->out port is the shared bottleneck.
  const std::vector<sim::Rate> feeds = {2e6, 1e6, 5e5, 0};
  const auto topo = net::build_fan_in(net, feeds, 1e6, [] {
    return std::make_unique<sched::WfqScheduler>(
        sched::WfqScheduler::Config{1e6, 200, 1.0});
  });

  constexpr int kFlows = 4;
  constexpr double kRunSeconds = 500.0;
  // Offered load: 2x the bottleneck (2000 pkt/s against 1000 pkt/s), with
  // deliberately uneven per-flow rates -> ~2M offered packets in total
  // (1M+ delivered or dropped at the merge under WFQ pushout).
  const double rate_pps[kFlows] = {1400.0, 1100.0, 900.0, 600.0};

  std::vector<CountingSink> sinks(kFlows);
  std::vector<std::unique_ptr<traffic::CbrSource>> sources;
  for (int f = 0; f < kFlows; ++f) {
    net.host(topo.sink_host).register_sink(f, &sinks[static_cast<std::size_t>(f)]);
    traffic::CbrSource::Config cfg;
    cfg.rate_pps = rate_pps[f];
    cfg.limit = static_cast<std::uint64_t>(rate_pps[f] * kRunSeconds);
    auto& host = net.host(topo.src_hosts[static_cast<std::size_t>(f)]);
    sources.push_back(std::make_unique<traffic::CbrSource>(
        net.sim(), cfg, f, host.id(), topo.sink_host,
        [&host](net::PacketPtr p) { host.inject(std::move(p)); }));
    // Staggered starts: avoid every source ticking at the same instants.
    sources.back()->start(0.00025 * f);
  }

  // Every queueing port in the fabric (both directions of each link;
  // rate<=0 links are infinitely fast and have no scheduler to inspect).
  std::vector<net::Port*> ports;
  for (std::size_t i = 0; i < topo.edge_switches.size(); ++i) {
    for (auto [a, b] : {std::pair{topo.edge_switches[i], topo.merge_switch},
                        std::pair{topo.merge_switch, topo.edge_switches[i]}}) {
      if (net::Port* p = net.port(a, b); p != nullptr && p->rate() > 0) {
        ports.push_back(p);
      }
    }
  }
  for (auto [a, b] : {std::pair{topo.merge_switch, topo.sink_switch},
                      std::pair{topo.sink_switch, topo.merge_switch}}) {
    if (net::Port* p = net.port(a, b); p != nullptr && p->rate() > 0) {
      ports.push_back(p);
    }
  }
  ASSERT_GE(ports.size(), 2u);

  const auto offered = [&] {
    std::uint64_t n = 0;
    for (const auto& s : sources) n += s->generated();
    return n;
  };
  const auto delivered = [&] {
    std::uint64_t n = 0;
    for (const auto& s : sinks) n += s.received();
    return n;
  };
  const auto dropped = [&] {
    std::uint64_t n = 0;
    for (const net::Port* p : ports) n += p->drops();
    return n;
  };
  const auto queued = [&] {
    std::uint64_t n = 0;
    for (net::Port* p : ports) {
      n += p->scheduler().packets() + (p->busy() ? 1 : 0);
    }
    return n;
  };

  // Mid-flight conservation (queued != 0 here) and the steady-state
  // allocation window [t=100, t=400] — warmup has filled every pool, ring,
  // slab and bucket by t=100.
  std::uint64_t allocs_at_100 = 0;
  bool midpoint_checked = false;
  net.sim().at(100.0, [&allocs_at_100] {
    allocs_at_100 = testhook::allocation_count();
  });
  net.sim().at(250.0, [&] {
    midpoint_checked = true;
    EXPECT_GT(queued(), 0u);
    EXPECT_EQ(offered(), delivered() + dropped() + queued());
  });
  std::uint64_t steady_allocs = ~0ull;
  net.sim().at(400.0, [&allocs_at_100, &steady_allocs] {
    steady_allocs = testhook::allocation_count() - allocs_at_100;
  });

  net.sim().run();

  EXPECT_TRUE(midpoint_checked);
  EXPECT_EQ(steady_allocs, 0u) << "steady-state phase allocated";

  // Drained: conservation with queued == 0, and scale actually reached.
  EXPECT_EQ(queued(), 0u);
  const std::uint64_t total = offered();
  EXPECT_GE(total, 1000000u) << "soak did not reach 1M offered packets";
  EXPECT_EQ(total, delivered() + dropped());
  // The bottleneck genuinely overloaded: substantial loss AND substantial
  // delivery, with every flow getting something through (WFQ isolation).
  EXPECT_GT(dropped(), total / 10);
  EXPECT_GT(delivered(), total / 4);
  for (const auto& s : sinks) EXPECT_GT(s.received(), 0u);
  EXPECT_EQ(net.host(topo.sink_host).unclaimed(), 0u);
  // Per-flow ledger: net_drops (fed by every port's drop hook) plus
  // deliveries must account for every injected packet.
  for (int f = 0; f < kFlows; ++f) {
    EXPECT_EQ(sources[static_cast<std::size_t>(f)]->generated(),
              sinks[static_cast<std::size_t>(f)].received() +
                  net.stats(f).net_drops)
        << "flow " << f;
  }
}

}  // namespace
}  // namespace ispn
