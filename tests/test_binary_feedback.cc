// DEC-TR-506 binary-feedback unit pins.
//
// Three layers, each pinned by hand-computed values:
//   * the marking rule inside UnifiedScheduler — the time-averaged datagram
//     queue length over the regeneration cycle, sampled at the arrival
//     instant and compared (inclusively) to the threshold;
//   * the echo path — TcpSink copies a data packet's congestion mark onto
//     the cumulative ACK it emits;
//   * the source response — one AIMD step per window-length round of ACKs,
//     with exact multiplicative-decrease / additive-increase values.

#include <gtest/gtest.h>

#include <vector>

#include "net/packet.h"
#include "sched/unified.h"
#include "sched_test_util.h"
#include "sim/simulator.h"
#include "traffic/tcp.h"

namespace ispn {
namespace {

using sched_test::datagram_pkt;
using sched_test::offer;

sched::UnifiedScheduler::Config mark_cfg(double threshold = 1.0) {
  sched::UnifiedScheduler::Config c;
  c.link_rate = 1e6;
  c.capacity_pkts = 200;
  c.num_predicted_classes = 2;
  c.binary_feedback = true;
  c.mark_threshold = threshold;
  return c;
}

// ------------------------------------------------------------- scheduler --

TEST(BinaryFeedback, MarkingOffByDefault) {
  sched::UnifiedScheduler::Config c = mark_cfg();
  c.binary_feedback = false;
  sched::UnifiedScheduler q(c);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(offer(q, datagram_pkt(9, i, 0.0), 0.0).empty());
  }
  EXPECT_EQ(q.mark_samples(), 0u);
  EXPECT_EQ(q.cong_marks(), 0u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_FALSE(q.dequeue(1.0)->cong_mark);
  }
}

TEST(BinaryFeedback, AvgQueueLengthHandComputed) {
  // Arrivals at t=0 and t=1, both 1 packet; service held back so the queue
  // area is exactly the hand-drawn staircase.
  sched::UnifiedScheduler q(mark_cfg(/*threshold=*/1.0));

  // t=0, first arrival: elapsed==0, the sample falls back to the current
  // size (0, the arrival itself excluded) — below threshold, unmarked.
  ASSERT_TRUE(offer(q, datagram_pkt(9, 0, 0.0), 0.0).empty());
  EXPECT_EQ(q.mark_samples(), 1u);
  EXPECT_EQ(q.cong_marks(), 0u);

  // One packet queued for one second: area 1, elapsed 1 -> average 1.0.
  EXPECT_DOUBLE_EQ(q.datagram_avg_queue(1.0), 1.0);

  // t=1, second arrival samples exactly 1.0 >= 1.0 -> marked (inclusive).
  ASSERT_TRUE(offer(q, datagram_pkt(9, 1, 1.0), 1.0).empty());
  EXPECT_EQ(q.mark_samples(), 2u);
  EXPECT_EQ(q.cong_marks(), 1u);

  // Two packets over [1,2] add area 2: (1 + 2) / 2 = 1.5.
  EXPECT_DOUBLE_EQ(q.datagram_avg_queue(2.0), 1.5);

  // The verdict rides on the packet itself, in FIFO order.
  auto first = q.dequeue(2.0);
  auto second = q.dequeue(2.0);
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_FALSE(first->cong_mark);
  EXPECT_TRUE(second->cong_mark);

  // Draining the class ends the regeneration cycle: history is forgotten.
  EXPECT_DOUBLE_EQ(q.datagram_avg_queue(3.0), 0.0);
  ASSERT_TRUE(offer(q, datagram_pkt(9, 2, 3.0), 3.0).empty());
  EXPECT_EQ(q.mark_samples(), 3u);
  EXPECT_EQ(q.cong_marks(), 1u);  // fresh cycle, average 0: unmarked
}

TEST(BinaryFeedback, ThresholdBoundaryIsInclusive) {
  // Arrivals at t=0, 1, 2 build an average of exactly (1 + 2)/2 = 1.5 at
  // the third sampling instant.  threshold == average must mark;
  // threshold just above must not.
  for (const double threshold : {1.5, 1.6}) {
    sched::UnifiedScheduler q(mark_cfg(threshold));
    ASSERT_TRUE(offer(q, datagram_pkt(9, 0, 0.0), 0.0).empty());  // avg 0
    ASSERT_TRUE(offer(q, datagram_pkt(9, 1, 1.0), 1.0).empty());  // avg 1.0
    ASSERT_TRUE(offer(q, datagram_pkt(9, 2, 2.0), 2.0).empty());  // avg 1.5
    EXPECT_EQ(q.mark_samples(), 3u);
    EXPECT_EQ(q.cong_marks(), threshold == 1.5 ? 1u : 0u)
        << "threshold " << threshold;
  }
}

TEST(BinaryFeedback, GuaranteedTrafficNeverSampled) {
  sched::UnifiedScheduler q(mark_cfg(/*threshold=*/0.0));
  q.add_guaranteed(1, 5e5);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(offer(q, sched_test::guaranteed_pkt(1, i, 0.0), 0.0).empty());
    ASSERT_TRUE(
        offer(q, sched_test::predicted_pkt(2, i, 0.0, 0), 0.0).empty());
  }
  EXPECT_EQ(q.mark_samples(), 0u);
  EXPECT_EQ(q.cong_marks(), 0u);
}

// ------------------------------------------------------------ echo path --

TEST(BinaryFeedback, SinkEchoesMarkOnAck) {
  sim::Simulator sim;
  std::vector<net::PacketPtr> acks;
  traffic::TcpSource::Config cfg;
  traffic::TcpSink sink(sim, cfg, /*flow=*/7, /*sink_host=*/1, /*peer=*/0,
                        [&acks](net::PacketPtr p) {
                          acks.push_back(std::move(p));
                        });

  auto data = net::make_packet(7, 0, 0, 1, 0.0, cfg.packet_bits);
  data->service = net::ServiceClass::kDatagram;
  data->cong_mark = true;
  sink.on_packet(std::move(data), 0.0);

  ASSERT_EQ(acks.size(), 1u);
  EXPECT_TRUE(acks[0]->is_ack);
  EXPECT_EQ(acks[0]->ack_seq, 1u);
  EXPECT_TRUE(acks[0]->cong_echo);
  EXPECT_EQ(sink.echoes_sent(), 1u);

  auto clean = net::make_packet(7, 1, 0, 1, 0.1, cfg.packet_bits);
  clean->service = net::ServiceClass::kDatagram;
  sink.on_packet(std::move(clean), 0.1);

  ASSERT_EQ(acks.size(), 2u);
  EXPECT_EQ(acks[1]->ack_seq, 2u);
  EXPECT_FALSE(acks[1]->cong_echo);
  EXPECT_EQ(sink.acks_sent(), 2u);
  EXPECT_EQ(sink.echoes_sent(), 1u);
  EXPECT_EQ(sink.rcv_next(), 2u);
}

// --------------------------------------------------------- AIMD response --

struct FeedbackDriver {
  sim::Simulator sim;
  std::vector<net::PacketPtr> wire;  ///< segments the source emitted
  std::unique_ptr<traffic::TcpSource> src;

  explicit FeedbackDriver(double max_cwnd = 64.0) {
    traffic::TcpSource::Config cfg;
    cfg.binary_feedback = true;
    cfg.max_cwnd = max_cwnd;
    src = std::make_unique<traffic::TcpSource>(
        sim, cfg, /*flow=*/7, /*src=*/0, /*dst=*/1,
        [this](net::PacketPtr p) { wire.push_back(std::move(p)); }, nullptr);
    src->start(0.0);
    sim.run_until(0.0);  // fires the start event: initial window goes out
  }

  void ack(std::uint64_t ack_seq, bool echo, sim::Time now = 0.0) {
    auto a = net::make_packet(7, 0, 1, 0, now, 320);
    a->is_ack = true;
    a->ack_seq = ack_seq;
    a->cong_echo = echo;
    src->on_packet(std::move(a), now);
  }
};

TEST(BinaryFeedback, ExactAimdStepValues) {
  FeedbackDriver d(/*max_cwnd=*/64.0);
  EXPECT_DOUBLE_EQ(d.src->fb_wnd(), 64.0);  // starts wide open

  // Round 1 (length 1, the initial window): fully marked -> multiplicative
  // decrease 64 * 0.875 = 56, exactly.
  d.ack(1, /*echo=*/true);
  EXPECT_DOUBLE_EQ(d.src->fb_wnd(), 56.0);
  EXPECT_EQ(d.src->fb_backoffs(), 1u);
  EXPECT_EQ(d.src->echoes_received(), 1u);

  // Round 2 (length 1: the window at the step instant was still 1):
  // unmarked -> additive increase, 56 + 1 = 57.
  d.ack(2, /*echo=*/false);
  EXPECT_DOUBLE_EQ(d.src->fb_wnd(), 57.0);
  EXPECT_EQ(d.src->fb_backoffs(), 1u);

  // Round 3 spans two ACKs (window had grown to 2): no step after the
  // first, one additive step after the second.
  d.ack(3, /*echo=*/false);
  EXPECT_DOUBLE_EQ(d.src->fb_wnd(), 57.0);
  d.ack(4, /*echo=*/false);
  EXPECT_DOUBLE_EQ(d.src->fb_wnd(), 58.0);
}

TEST(BinaryFeedback, MixedRoundUsesMarkedFraction) {
  // Grow to a 2-ACK round, then deliver one marked + one clean ACK: the
  // marked fraction (0.5) meets fb_fraction (0.5) -> decrease.
  FeedbackDriver d(/*max_cwnd=*/64.0);
  d.ack(1, false);  // round 1 -> 65? no: additive capped at max_cwnd (64)
  EXPECT_DOUBLE_EQ(d.src->fb_wnd(), 64.0);
  d.ack(2, false);  // round 2 (length 1) -> stays capped at 64
  EXPECT_DOUBLE_EQ(d.src->fb_wnd(), 64.0);
  d.ack(3, true);   // round 3, first of two ACKs
  d.ack(4, false);  // 1 of 2 marked -> 64 * 0.875 = 56
  EXPECT_DOUBLE_EQ(d.src->fb_wnd(), 56.0);
  EXPECT_EQ(d.src->fb_backoffs(), 1u);
}

TEST(BinaryFeedback, FeedbackWindowFloorsAtTwo) {
  FeedbackDriver d(/*max_cwnd=*/8.0);
  EXPECT_DOUBLE_EQ(d.src->fb_wnd(), 8.0);
  for (std::uint64_t k = 1; k <= 200; ++k) d.ack(k, /*echo=*/true);
  EXPECT_DOUBLE_EQ(d.src->fb_wnd(), 2.0);  // max(2, w * 0.875) fixed point
  EXPECT_GE(d.src->fb_backoffs(), 11u);    // 8 * 0.875^11 < 2
}

}  // namespace
}  // namespace ispn
