#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/random.h"
#include "stats/ewma.h"
#include "stats/histogram.h"
#include "stats/online_stats.h"
#include "stats/percentile.h"
#include "stats/rate_meter.h"
#include "stats/windowed_max.h"

namespace ispn::stats {
namespace {

// ------------------------------------------------------------ OnlineStats --

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_TRUE(std::isinf(s.min()));
  EXPECT_TRUE(std::isinf(s.max()));
}

TEST(OnlineStats, MeanMinMax) {
  OnlineStats s;
  for (double x : {3.0, 1.0, 4.0, 1.0, 5.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 2.8);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_EQ(s.count(), 5u);
}

TEST(OnlineStats, VarianceMatchesDirectComputation) {
  OnlineStats s;
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  for (double x : xs) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example
  EXPECT_NEAR(s.sample_variance(), 4.0 * 8 / 7, 1e-12);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
}

TEST(OnlineStats, MergeEqualsSequential) {
  OnlineStats all, a, b;
  sim::Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(0, 10);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(OnlineStats, ResetClears) {
  OnlineStats s;
  s.add(5.0);
  s.reset();
  EXPECT_TRUE(s.empty());
}

// ----------------------------------------------------------- SampleSeries --

TEST(SampleSeries, PercentilesExactOnKnownData) {
  SampleSeries s;
  for (int i = 1; i <= 100; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.99), 99.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(SampleSeries, P999PicksTail) {
  SampleSeries s;
  // 11 outliers in 10011 samples put the 99.9th percentile (nearest rank
  // 10001) exactly at the first outlier.
  for (int i = 0; i < 10000; ++i) s.add(1.0);
  for (int i = 0; i < 11; ++i) s.add(100.0);
  EXPECT_DOUBLE_EQ(s.p999(), 100.0);
}

TEST(SampleSeries, InsertAfterQueryInvalidatesCache) {
  SampleSeries s;
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 1.0);
  s.add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(1.0), 2.0);
}

TEST(SampleSeries, EmptyReturnsZero) {
  SampleSeries s;
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleSeries, MeanMatchesSummary) {
  SampleSeries s;
  sim::Rng rng(3);
  OnlineStats ref;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.exponential(2.0);
    s.add(x);
    ref.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), ref.mean());
  EXPECT_DOUBLE_EQ(s.max(), ref.max());
}

TEST(SampleSeries, ResetClears) {
  SampleSeries s;
  s.add(1.0);
  s.reset();
  EXPECT_TRUE(s.empty());
  EXPECT_DOUBLE_EQ(s.percentile(0.5), 0.0);
}

// ------------------------------------------------------------------- Ewma --

TEST(Ewma, FirstSamplePrimes) {
  Ewma e(0.25);
  EXPECT_FALSE(e.primed());
  e.update(8.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 8.0);
}

TEST(Ewma, ConvergesToConstant) {
  Ewma e(0.125);
  for (int i = 0; i < 500; ++i) e.update(3.0);
  EXPECT_NEAR(e.value(), 3.0, 1e-9);
}

TEST(Ewma, UpdateFormula) {
  Ewma e(0.5);
  e.update(0.0);
  e.update(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 5.0);
  e.update(10.0);
  EXPECT_DOUBLE_EQ(e.value(), 7.5);
}

TEST(Ewma, ResetUnprimes) {
  Ewma e(0.5);
  e.update(4.0);
  e.reset();
  EXPECT_FALSE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 0.0);
}

// ------------------------------------------------------------ WindowedMax --

TEST(WindowedMax, ReportsMaxWithinWindow) {
  WindowedMax w(10.0, 10);
  w.add(0.5, 3.0);
  w.add(1.5, 7.0);
  w.add(2.5, 5.0);
  EXPECT_DOUBLE_EQ(w.max(3.0), 7.0);
}

TEST(WindowedMax, OldSamplesExpire) {
  WindowedMax w(10.0, 10);
  w.add(0.5, 100.0);
  EXPECT_DOUBLE_EQ(w.max(1.0), 100.0);
  // After more than the window has passed, the old max is gone.
  EXPECT_DOUBLE_EQ(w.max(15.0), 0.0);
}

TEST(WindowedMax, RecentSurvivesPartialRotation) {
  WindowedMax w(10.0, 10);
  w.add(9.5, 42.0);
  EXPECT_DOUBLE_EQ(w.max(12.0), 42.0);
}

// -------------------------------------------------------------- RateMeter --

TEST(RateMeter, MeanRateOverWindow) {
  RateMeter m(10.0, 10);
  // 1000 bits per second-epoch for 10 epochs: querying within the last
  // epoch sees all of them (1000 b/s); querying after rotation drops the
  // oldest epoch (sliding window).
  for (int i = 0; i < 10; ++i) m.add(0.5 + i, 1000.0);
  EXPECT_NEAR(m.mean_rate(9.9), 1000.0, 1e-6);
  EXPECT_NEAR(m.mean_rate(10.5), 900.0, 1e-6);
}

TEST(RateMeter, PeakRateSeesBurstyEpoch) {
  RateMeter m(10.0, 10);
  m.add(0.5, 5000.0);  // all in one 1-second epoch
  EXPECT_NEAR(m.peak_rate(1.0), 5000.0, 1e-6);
  EXPECT_NEAR(m.mean_rate(1.0), 500.0, 1e-6);
}

TEST(RateMeter, ExpiresOldTraffic) {
  RateMeter m(10.0, 10);
  m.add(0.5, 5000.0);
  EXPECT_NEAR(m.mean_rate(20.0), 0.0, 1e-9);
  EXPECT_NEAR(m.peak_rate(20.0), 0.0, 1e-9);
}

// -------------------------------------------------------------- Histogram --

TEST(Histogram, CountsBinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(0.5);
  h.add(1.5);
  h.add(1.7);
  h.add(25.0);
  h.add(-1.0);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(1), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  EXPECT_EQ(h.underflow(), 1u);
}

TEST(Histogram, CdfMonotone) {
  Histogram h(0.0, 10.0, 10);
  sim::Rng rng(77);
  for (int i = 0; i < 10000; ++i) h.add(rng.uniform(0.0, 10.0));
  double prev = 0;
  for (double x = 0; x <= 10.0; x += 0.5) {
    const double c = h.cdf(x);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_NEAR(h.cdf(5.0), 0.5, 0.02);
  EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
}

TEST(Histogram, AsciiRendersNonEmpty) {
  Histogram h(0.0, 4.0, 4);
  h.add(1.0);
  h.add(1.2);
  h.add(3.0);
  const auto art = h.ascii(20);
  EXPECT_NE(art.find('#'), std::string::npos);
}

TEST(Histogram, ResetClears) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.5);
  h.reset();
  EXPECT_EQ(h.total(), 0u);
}

}  // namespace
}  // namespace ispn::stats
