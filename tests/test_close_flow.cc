// Dynamic service teardown: close_flow releases admission commitments and
// scheduler state, so capacity can be re-sold.

#include <gtest/gtest.h>

#include "core/builder.h"

namespace ispn::core {
namespace {

IspnNetwork::Config config_with_admission() {
  IspnNetwork::Config c;
  c.class_targets = {0.016, 0.16};
  c.admission.mode = AdmissionController::Mode::kParameterBased;
  c.enforce_admission = true;
  return c;
}

FlowSpec guaranteed(net::FlowId id, net::NodeId src, net::NodeId dst,
                    sim::Rate r) {
  FlowSpec s;
  s.flow = id;
  s.src = src;
  s.dst = dst;
  s.service = net::ServiceClass::kGuaranteed;
  s.guaranteed = GuaranteedSpec{r};
  return s;
}

TEST(CloseFlow, GuaranteedCapacityIsResellable) {
  IspnNetwork ispn(config_with_admission());
  const auto topo = ispn.build_chain(2);
  const auto h1 = topo.hosts[0];
  const auto h2 = topo.hosts[1];
  const LinkId link{topo.switches[0], topo.switches[1]};

  auto big = ispn.open_flow(guaranteed(1, h1, h2, 8e5));
  EXPECT_THROW((void)ispn.open_flow(guaranteed(2, h1, h2, 8e5)),
               std::runtime_error);
  EXPECT_DOUBLE_EQ(ispn.scheduler(link).guaranteed_rate(), 8e5);

  ispn.close_flow(big);
  EXPECT_DOUBLE_EQ(ispn.scheduler(link).guaranteed_rate(), 0.0);
  EXPECT_DOUBLE_EQ(ispn.admission().guaranteed_rate(link), 0.0);
  EXPECT_NO_THROW((void)ispn.open_flow(guaranteed(2, h1, h2, 8e5)));
}

TEST(CloseFlow, PredictedCommitmentReleased) {
  IspnNetwork ispn(config_with_admission());
  const auto topo = ispn.build_chain(2);
  const LinkId link{topo.switches[0], topo.switches[1]};

  FlowSpec spec;
  spec.flow = 1;
  spec.src = topo.hosts[0];
  spec.dst = topo.hosts[1];
  spec.service = net::ServiceClass::kPredicted;
  spec.predicted = PredictedSpec{{85000.0, 5000.0}, 0.16, 0.01};
  auto handle = ispn.open_flow(spec);
  EXPECT_DOUBLE_EQ(ispn.admission().predicted_rate(link), 85000.0);
  ispn.close_flow(handle);
  EXPECT_DOUBLE_EQ(ispn.admission().predicted_rate(link), 0.0);
}

TEST(CloseFlow, Flow0WeightRestored) {
  IspnNetwork ispn(config_with_admission());
  const auto topo = ispn.build_chain(2);
  const LinkId link{topo.switches[0], topo.switches[1]};
  const double before = ispn.scheduler(link).flow0_weight();
  auto handle =
      ispn.open_flow(guaranteed(1, topo.hosts[0], topo.hosts[1], 3e5));
  EXPECT_DOUBLE_EQ(ispn.scheduler(link).flow0_weight(), before - 3e5);
  ispn.close_flow(handle);
  EXPECT_DOUBLE_EQ(ispn.scheduler(link).flow0_weight(), before);
}

TEST(CloseFlow, DatagramCloseIsNoOp) {
  IspnNetwork ispn(config_with_admission());
  const auto topo = ispn.build_chain(2);
  FlowSpec spec;
  spec.flow = 1;
  spec.src = topo.hosts[0];
  spec.dst = topo.hosts[1];
  spec.service = net::ServiceClass::kDatagram;
  auto handle = ispn.open_flow(spec);
  EXPECT_NO_FATAL_FAILURE(ispn.close_flow(handle));
}

TEST(CloseFlow, DoubleCloseNeverReleasesTwice) {
  // Regression: a teardown racing a reroute used to subtract the flow's
  // committed rate twice, leaving the admission ledger negative and the
  // capacity sellable beyond the link.  The second close must be a no-op.
  IspnNetwork ispn(config_with_admission());
  const auto topo = ispn.build_chain(2);
  const LinkId link{topo.switches[0], topo.switches[1]};

  auto a = ispn.open_flow(guaranteed(1, topo.hosts[0], topo.hosts[1], 3e5));
  auto b = ispn.open_flow(guaranteed(2, topo.hosts[0], topo.hosts[1], 4e5));
  EXPECT_DOUBLE_EQ(ispn.admission().guaranteed_rate(link), 7e5);

  auto stale = a;  // a second handle to the same flow (the race)
  ispn.close_flow(a);
  EXPECT_DOUBLE_EQ(ispn.admission().guaranteed_rate(link), 4e5);
  EXPECT_NO_FATAL_FAILURE(ispn.close_flow(stale));
  // b's commitment must survive the stale close untouched.
  EXPECT_DOUBLE_EQ(ispn.admission().guaranteed_rate(link), 4e5);
  EXPECT_DOUBLE_EQ(ispn.scheduler(link).guaranteed_rate(), 4e5);
  ispn.close_flow(b);
  EXPECT_DOUBLE_EQ(ispn.admission().guaranteed_rate(link), 0.0);
  // Full capacity resellable exactly once everything is released.
  EXPECT_NO_THROW(
      (void)ispn.open_flow(guaranteed(3, topo.hosts[0], topo.hosts[1], 8e5)));
}

TEST(CloseFlow, AdmissionReleaseIsIdempotent) {
  // The controller itself: release() hands back the STORED commitment
  // (not the caller's view of it), exactly once.
  const std::vector<sim::Duration> targets = {0.016, 0.16};
  AdmissionController ac({AdmissionController::Mode::kParameterBased, 0.1});
  const LinkId link{0, 1};
  ac.register_link(link, 1e6, targets);

  FlowSpec spec = guaranteed(1, 10, 11, 3e5);
  const auto c = ac.request(spec, {link}, 0.0);
  ASSERT_TRUE(c.admitted);
  EXPECT_DOUBLE_EQ(ac.guaranteed_rate(link), 3e5);
  EXPECT_TRUE(ac.release(spec, {link}));
  EXPECT_DOUBLE_EQ(ac.guaranteed_rate(link), 0.0);
  EXPECT_FALSE(ac.release(spec, {link}));  // nothing left to hand back
  EXPECT_DOUBLE_EQ(ac.guaranteed_rate(link), 0.0);
}

TEST(CloseFlow, MidTrafficGuaranteedTeardownAfterDrain) {
  // Run traffic, stop the source, drain, close — then the network keeps
  // serving other flows normally.
  IspnNetwork::Config config = config_with_admission();
  config.enforce_admission = false;
  IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(2);
  auto handle =
      ispn.open_flow(guaranteed(1, topo.hosts[0], topo.hosts[1], 1.7e5));
  auto& source = ispn.attach_onoff_source(handle, {}, 0,
                                          traffic::TokenBucketSpec{85000.0,
                                                                   50000.0});
  ispn.attach_sink(handle);
  source.start(0);
  ispn.net().sim().run_until(10.0);
  source.stop();
  ispn.net().sim().run_until(12.0);  // drain
  EXPECT_NO_FATAL_FAILURE(ispn.close_flow(handle));
  EXPECT_GT(ispn.net().stats(1).received, 500u);
}

}  // namespace
}  // namespace ispn::core
