// Property suite for the admission plane under RESPONSIVE traffic.
//
// The CSZ admission machinery was built against open-loop sources; the
// congestion-control stacks close the loop (window backoff, retransmits,
// pacing) and the DEC-TR-506 feedback bit adds a second control loop on
// top.  These properties pin that none of that shakes the invariants:
//
//   1. Admitted guaranteed flows keep their Parekh–Gallager bound while
//      responsive datagram traffic churns, backs off and retransmits
//      around them (WFQ isolation is CC-agnostic).
//   2. The conservation ledger stays exact through retransmissions and
//      bidirectional (data + ACK) packet flows, including under overload.
//   3. A rejected request leaves the fabric bit-identical to never having
//      asked, even with every CC stack live on the same links.
//   4. On a fixed fabric, congestion marks are monotone in offered load.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/tracer.h"
#include "scenario/runner.h"
#include "sim/random.h"

namespace ispn {
namespace {

scenario::ScenarioSpec responsive_churn_spec(std::uint64_t seed) {
  scenario::ScenarioSpec spec = scenario::preset("churn");
  spec.run_seconds = 4.0;
  spec.p_guaranteed = 0.35;
  spec.p_predicted = 0.40;  // the remaining quarter is responsive datagram
  spec.cc = scenario::CcKind::kMix;  // all three stacks interleaved
  spec.binary_feedback = true;
  spec.seed = seed;
  return spec;
}

// --- 1: PG bounds survive responsive churn --------------------------------

TEST(CcProperty, PgBoundHoldsUnderResponsiveChurn) {
  std::uint64_t responsive_flows = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    scenario::ScenarioRunner runner(responsive_churn_spec(seed));
    const auto report = runner.run();
    ASSERT_TRUE(report.conserved()) << "seed " << seed;
    responsive_flows += report.cc_flows;

    std::size_t checked = 0;
    for (const auto& f : report.flows) {
      if (f.service != net::ServiceClass::kGuaranteed || !f.admitted ||
          f.delivered == 0 || f.reroutes > 0 || f.degraded) {
        continue;
      }
      ++checked;
      ASSERT_GT(f.bound, 0.0);
      EXPECT_LE(f.max_delay, f.bound)
          << "seed " << seed << " flow " << f.flow << " (" << f.hops
          << " hops): guaranteed delay " << f.max_delay * 1e3
          << " ms exceeded its bound " << f.bound * 1e3
          << " ms under responsive churn";
    }
    EXPECT_GT(checked, 0u) << "seed " << seed
                           << ": no guaranteed flow ever delivered";
  }
  EXPECT_GT(responsive_flows, 0u)
      << "the churn mix never attached a responsive flow: the property "
         "was vacuous";
}

// --- 2: conservation through backoff and retransmission -------------------

TEST(CcProperty, ConservationExactUnderOverloadAndBackoff) {
  std::uint64_t backoffs = 0, marks = 0, retransmits = 0;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    scenario::ScenarioSpec spec = scenario::preset("parking_lot");
    scenario::apply_scale(spec, "small");
    spec.arrival_rate = 0;
    spec.target_flows = 16;
    spec.p_guaranteed = 0.15;
    spec.p_predicted = 0.25;
    spec.avg_rate_pps = 200.0;  // open-loop classes overload the lot
    spec.cc = scenario::CcKind::kMix;
    spec.binary_feedback = true;
    spec.seed = seed;
    scenario::ScenarioRunner runner(spec);
    const auto report = runner.run();
    ASSERT_TRUE(report.conserved())
        << "seed " << seed << ": ledger broke under responsive overload";
    EXPECT_GT(report.cc_flows, 0u) << "seed " << seed;
    backoffs += report.cc_backoffs;
    marks += report.cc_marks;
    retransmits += report.tcp_retransmits;
  }
  // The property is only meaningful if the feedback loop actually closed.
  EXPECT_GT(marks, 0u) << "overloaded lot never marked a datagram";
  EXPECT_GT(backoffs, 0u) << "no source ever took a multiplicative decrease";
  EXPECT_GT(retransmits, 0u) << "overload never cost a responsive segment";
}

// --- 3: rejected requests leave no trace ----------------------------------

std::vector<net::PacketTracer::Record> responsive_trace(std::uint64_t seed,
                                                        bool with_doomed_ask) {
  scenario::ScenarioSpec spec = responsive_churn_spec(seed);
  spec.preempt_on_reject = false;  // the doomed ask must change nothing
  scenario::ScenarioRunner runner(spec);
  net::PacketTracer tracer(1u << 22);
  runner.set_tracer(&tracer);
  runner.prepare();
  tracer.attach(runner.net());

  if (with_doomed_ask) {
    sim::Rng rng(seed, 991);
    const sim::Time when = rng.uniform(1.0, 2.5);
    const sim::Rate huge = spec.link_rate * rng.uniform(1.0, 20.0);
    const auto od = runner.fabric().od_long.front();
    runner.net().sim().at(when, [&runner, huge, od] {
      auto& ispn = runner.ispn();
      core::FlowSpec g;
      g.flow = 20000;
      g.src = od.first;
      g.dst = od.second;
      g.service = net::ServiceClass::kGuaranteed;
      g.guaranteed = core::GuaranteedSpec{huge};
      const auto c = ispn.try_open_flow(g);
      EXPECT_FALSE(c.commitment.admitted);
    });
  }

  const auto report = runner.run();
  EXPECT_TRUE(report.conserved());
  EXPECT_GT(report.cc_flows, 0u) << "no responsive flow in the churn mix";
  return tracer.records();
}

TEST(CcProperty, RejectedRequestBitIdenticalWithResponsiveTraffic) {
  for (std::uint64_t seed = 2; seed <= 6; ++seed) {
    const auto without = responsive_trace(seed, false);
    const auto with = responsive_trace(seed, true);
    ASSERT_GT(without.size(), 500u) << "seed " << seed;
    ASSERT_EQ(without.size(), with.size()) << "seed " << seed;
    for (std::size_t i = 0; i < without.size(); ++i) {
      const auto& a = without[i];
      const auto& b = with[i];
      ASSERT_TRUE(a.time == b.time && a.event == b.event &&
                  a.flow == b.flow && a.seq == b.seq && a.node == b.node &&
                  a.queueing_delay == b.queueing_delay &&
                  a.jitter_offset == b.jitter_offset)
          << "seed " << seed << ": record " << i
          << " diverged after a rejected request (flow " << b.flow
          << " seq " << b.seq << " t=" << b.time << ")";
    }
  }
}

// --- 4: marks monotone in offered load ------------------------------------

TEST(CcProperty, MarksMonotoneInOfferedLoad) {
  // Fixed fabric, open-loop datagram sources (cc off so the offered load
  // is exactly the knob, not a function of the feedback): cranking the
  // per-flow rate can only increase the congestion marks.
  for (const std::uint64_t seed : {5ull, 6ull, 7ull}) {
    std::uint64_t prev_marks = 0;
    double prev_fraction = -1.0;
    bool first = true;
    for (const double pps : {50.0, 200.0, 800.0}) {
      scenario::ScenarioSpec spec = scenario::preset("chain");
      spec.chain_switches = 2;
      spec.run_seconds = 4.0;
      spec.arrival_rate = 0;
      spec.target_flows = 8;
      spec.p_guaranteed = 0.0;
      spec.p_predicted = 0.0;  // all datagram
      spec.source = scenario::SourceKind::kPoisson;
      spec.avg_rate_pps = pps;
      spec.binary_feedback = true;  // cc stays kOff
      spec.seed = seed;
      scenario::ScenarioRunner runner(spec);
      const auto report = runner.run();
      ASSERT_TRUE(report.conserved()) << "seed " << seed << " pps " << pps;
      ASSERT_GT(report.cc_mark_samples, 0u)
          << "seed " << seed << " pps " << pps;
      const double fraction =
          static_cast<double>(report.cc_marks) /
          static_cast<double>(report.cc_mark_samples);
      if (!first) {
        EXPECT_GE(report.cc_marks, prev_marks)
            << "seed " << seed << ": marks fell as load rose to " << pps;
        EXPECT_GE(fraction, prev_fraction)
            << "seed " << seed << ": mark fraction fell as load rose to "
            << pps;
      }
      prev_marks = report.cc_marks;
      prev_fraction = fraction;
      first = false;
    }
    EXPECT_GT(prev_marks, 0u)
        << "seed " << seed << ": even the overloaded point never marked";
  }
}

}  // namespace
}  // namespace ispn
