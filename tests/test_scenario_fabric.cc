// Scenario layer unit tests: topology generators produce the advertised
// shapes, per-hop rates reach every layer (scheduler, measurement,
// admission), spec parsing round-trips, and a small live-admission run
// conserves packets and fills its report.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "net/topology.h"
#include "scenario/runner.h"
#include "sched/fifo.h"

namespace ispn {
namespace {

net::LinkSchedulerFactory fifo_factory() {
  return [](net::NodeId, net::NodeId, sim::Rate) {
    return std::make_unique<sched::FifoScheduler>(50);
  };
}

TEST(FanTree, ShapeAndRoutes) {
  net::Network net;
  const auto topo =
      net::build_fan_tree(net, /*depth=*/3, /*width=*/2, {2e6, 1e6},
                          fifo_factory());
  ASSERT_EQ(topo.levels.size(), 3u);
  EXPECT_EQ(topo.levels[0].size(), 1u);
  EXPECT_EQ(topo.levels[1].size(), 2u);
  EXPECT_EQ(topo.levels[2].size(), 4u);
  EXPECT_EQ(topo.leaf_switches.size(), 4u);
  EXPECT_EQ(topo.leaf_hosts.size(), 4u);

  // Every leaf host routes to the root host across exactly depth-1
  // queueing links (host attachments are infinitely fast).
  for (const net::NodeId leaf : topo.leaf_hosts) {
    EXPECT_EQ(net.queueing_hops(leaf, topo.root_host), 2u);
  }
  // Level rates land on the right tiers.
  EXPECT_DOUBLE_EQ(net.port(topo.levels[1][0], topo.root_switch)->rate(), 2e6);
  EXPECT_DOUBLE_EQ(net.port(topo.levels[2][0], topo.levels[1][0])->rate(),
                   1e6);
}

TEST(ParkingLot, PerHopRatesAndHosts) {
  net::Network net;
  const auto topo =
      net::build_parking_lot(net, {4e6, 2e6, 1e6}, fifo_factory());
  EXPECT_EQ(topo.hops(), 3);
  ASSERT_EQ(topo.switches.size(), 4u);
  ASSERT_EQ(topo.hosts.size(), 4u);
  EXPECT_DOUBLE_EQ(net.port(topo.switches[0], topo.switches[1])->rate(), 4e6);
  EXPECT_DOUBLE_EQ(net.port(topo.switches[1], topo.switches[2])->rate(), 2e6);
  EXPECT_DOUBLE_EQ(net.port(topo.switches[2], topo.switches[3])->rate(), 1e6);
  // End-to-end crosses all three bottlenecks; each hop pair exactly one.
  EXPECT_EQ(net.queueing_hops(topo.hosts.front(), topo.hosts.back()), 3u);
  EXPECT_EQ(net.queueing_hops(topo.hosts[1], topo.hosts[2]), 1u);
}

TEST(QosFabric, PerHopRatesReachSchedulerMeasurementAndAdmission) {
  scenario::ScenarioSpec spec;
  spec.fabric = scenario::FabricKind::kParkingLot;
  spec.parking_hops = 2;
  spec.link_rate = 2e6;
  spec.parking_rate_step = 0.5;  // hop 0: 2 Mb/s, hop 1: 1 Mb/s
  scenario::ScenarioRunner runner(spec);
  runner.prepare();

  auto& ispn = runner.ispn();
  ASSERT_EQ(ispn.links().size(), 4u);  // 2 hops x 2 directions
  const core::LinkId hop0 = ispn.links()[0];
  const core::LinkId hop1 = ispn.links()[2];
  EXPECT_DOUBLE_EQ(runner.net().port(hop0.first, hop0.second)->rate(), 2e6);
  EXPECT_DOUBLE_EQ(runner.net().port(hop1.first, hop1.second)->rate(), 1e6);
  EXPECT_DOUBLE_EQ(ispn.measurement(hop0).config().link_rate, 2e6);
  EXPECT_DOUBLE_EQ(ispn.measurement(hop1).config().link_rate, 1e6);

  // Admission headroom follows the per-hop rate: a 1.5 Mb/s guaranteed
  // clock fits the 2 Mb/s hop but not the 1 Mb/s hop.
  core::FlowSpec g;
  g.flow = 900;
  g.service = net::ServiceClass::kGuaranteed;
  g.guaranteed = core::GuaranteedSpec{1.5e6};
  EXPECT_TRUE(
      ispn.admission().request(g, {hop0}, 0.0).admitted);
  const auto refused = ispn.admission().request(g, {hop1}, 0.0);
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.rejected_hop, 0);
}

TEST(SpecParsing, JsonKeysAndOverrides) {
  const std::string text = R"({
    # comment survives
    "preset": "parking_lot",
    "scale": "smoke",
    parking_hops: 3,
    link_rate: 2e6,
    "source": "cbr",
    preempt_on_reject: true,
    class_targets: "0.004,0.032",
  })";
  const auto spec = scenario::spec_from_json(text);
  EXPECT_EQ(spec.fabric, scenario::FabricKind::kParkingLot);
  EXPECT_EQ(spec.parking_hops, 3);
  EXPECT_DOUBLE_EQ(spec.link_rate, 2e6);
  EXPECT_EQ(spec.source, scenario::SourceKind::kCbr);
  EXPECT_TRUE(spec.preempt_on_reject);
  ASSERT_EQ(spec.class_targets.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.class_targets[0], 0.004);
  EXPECT_DOUBLE_EQ(spec.class_targets[1], 0.032);
  EXPECT_DOUBLE_EQ(spec.run_seconds, 1.0);  // smoke scale applied first

  scenario::ScenarioSpec base;
  EXPECT_THROW(scenario::apply_override(base, "no_such_key", "1"),
               std::invalid_argument);
  EXPECT_THROW(scenario::apply_override(base, "arrival_rate", "fast"),
               std::invalid_argument);
  EXPECT_THROW(scenario::preset("nope"), std::invalid_argument);
}

TEST(Runner, SmallLiveAdmissionRunConservesAndReports) {
  scenario::ScenarioSpec spec = scenario::preset("churn");
  scenario::apply_scale(spec, "small");
  spec.seed = 3;
  scenario::ScenarioRunner runner(spec);
  const auto report = runner.run();

  EXPECT_TRUE(report.conserved()) << "generated=" << report.generated
                                  << " delivered=" << report.delivered;
  EXPECT_GT(report.flows_offered, 10u);
  EXPECT_GT(report.flows_admitted, 0u);
  EXPECT_GT(report.flows_rejected, 0u) << "churn scenario never rejected";
  EXPECT_EQ(report.flows_offered,
            report.flows_admitted + report.flows_rejected);
  EXPECT_EQ(report.decisions.size() >= report.flows_offered, true);
  EXPECT_GT(report.delivered, 100u);
  EXPECT_EQ(report.queued_end, 0u);
  EXPECT_EQ(report.unclaimed, 0u);
  EXPECT_FALSE(report.links.empty());

  // Per-flow outcomes cover every offered flow, and admitted flows with
  // deliveries carry their path length.
  EXPECT_EQ(report.flows.size(), report.flows_offered);
  for (const auto& f : report.flows) {
    if (f.delivered > 0) {
      EXPECT_TRUE(f.admitted);
      EXPECT_GT(f.hops, 0u);
    }
  }

  // The text and JSON renderings at least produce output mentioning the
  // conservation verdict.
  std::ostringstream text;
  report.to_text(text);
  EXPECT_NE(text.str().find("[OK]"), std::string::npos);
  std::ostringstream json;
  report.to_json(json);
  EXPECT_NE(json.str().find("\"conserved\": true"), std::string::npos);
}

TEST(Runner, PreemptionMakesRoomForGuaranteed) {
  // Saturate a single link with predicted flows, then ask for a
  // guaranteed flow that cannot fit: with preempt_on_reject the youngest
  // predicted flow is torn down and the retry admitted.
  scenario::ScenarioSpec spec;
  spec.fabric = scenario::FabricKind::kChain;
  spec.chain_switches = 2;
  spec.run_seconds = 4.0;
  spec.arrival_rate = 30.0;
  spec.arrival_window = 3.0;
  spec.target_flows = 60;
  spec.mean_hold = 0;  // nobody leaves voluntarily
  spec.p_guaranteed = 0.3;
  spec.p_predicted = 0.7;
  spec.preempt_on_reject = true;
  // Parameter-based admission: releasing a victim's committed rate frees
  // headroom instantly, so the preempt-retry loop can converge.  The loose
  // low class (0.4 s) lets predicted flows accumulate enough committed
  // rate that a guaranteed request hits the 90% quota — the rejection
  // preemption CAN cure (a clock-rate-ledger rejection it cannot).
  spec.admission_mode = core::AdmissionController::Mode::kParameterBased;
  spec.class_targets = {0.008, 0.4};
  spec.target_delay = 0.4;
  spec.avg_rate_pps = 120.0;
  spec.seed = 5;
  scenario::ScenarioRunner runner(spec);
  const auto report = runner.run();

  EXPECT_TRUE(report.conserved());
  EXPECT_GT(report.flows_preempted, 0u) << "no preemption ever triggered";
  bool saw_preempt_then_admit = false;
  for (std::size_t i = 0; i + 1 < report.decisions.size(); ++i) {
    if (report.decisions[i].kind ==
            scenario::AdmissionDecision::Kind::kPreempted &&
        report.decisions[i + 1].kind ==
            scenario::AdmissionDecision::Kind::kAdmitted &&
        report.decisions[i + 1].service == net::ServiceClass::kGuaranteed) {
      saw_preempt_then_admit = true;
    }
  }
  EXPECT_TRUE(saw_preempt_then_admit)
      << "preemption never converted a guaranteed rejection into an admit";
}

}  // namespace
}  // namespace ispn
