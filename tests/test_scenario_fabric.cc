// Scenario layer unit tests: topology generators produce the advertised
// shapes, per-hop rates reach every layer (scheduler, measurement,
// admission), spec parsing round-trips, and a small live-admission run
// conserves packets and fills its report.

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "net/topology.h"
#include "scenario/runner.h"
#include "sched/fifo.h"

namespace ispn {
namespace {

net::LinkSchedulerFactory fifo_factory() {
  return [](net::NodeId, net::NodeId, sim::Rate) {
    return std::make_unique<sched::FifoScheduler>(50);
  };
}

TEST(FanTree, ShapeAndRoutes) {
  net::Network net;
  const auto topo =
      net::build_fan_tree(net, /*depth=*/3, /*width=*/2, {2e6, 1e6},
                          fifo_factory());
  ASSERT_EQ(topo.levels.size(), 3u);
  EXPECT_EQ(topo.levels[0].size(), 1u);
  EXPECT_EQ(topo.levels[1].size(), 2u);
  EXPECT_EQ(topo.levels[2].size(), 4u);
  EXPECT_EQ(topo.leaf_switches.size(), 4u);
  EXPECT_EQ(topo.leaf_hosts.size(), 4u);

  // Every leaf host routes to the root host across exactly depth-1
  // queueing links (host attachments are infinitely fast).
  for (const net::NodeId leaf : topo.leaf_hosts) {
    EXPECT_EQ(net.queueing_hops(leaf, topo.root_host), 2u);
  }
  // Level rates land on the right tiers.
  EXPECT_DOUBLE_EQ(net.port(topo.levels[1][0], topo.root_switch)->rate(), 2e6);
  EXPECT_DOUBLE_EQ(net.port(topo.levels[2][0], topo.levels[1][0])->rate(),
                   1e6);
}

TEST(ParkingLot, PerHopRatesAndHosts) {
  net::Network net;
  const auto topo =
      net::build_parking_lot(net, {4e6, 2e6, 1e6}, fifo_factory());
  EXPECT_EQ(topo.hops(), 3);
  ASSERT_EQ(topo.switches.size(), 4u);
  ASSERT_EQ(topo.hosts.size(), 4u);
  EXPECT_DOUBLE_EQ(net.port(topo.switches[0], topo.switches[1])->rate(), 4e6);
  EXPECT_DOUBLE_EQ(net.port(topo.switches[1], topo.switches[2])->rate(), 2e6);
  EXPECT_DOUBLE_EQ(net.port(topo.switches[2], topo.switches[3])->rate(), 1e6);
  // End-to-end crosses all three bottlenecks; each hop pair exactly one.
  EXPECT_EQ(net.queueing_hops(topo.hosts.front(), topo.hosts.back()), 3u);
  EXPECT_EQ(net.queueing_hops(topo.hosts[1], topo.hosts[2]), 1u);
}

TEST(Mesh, ShapeRoutesAndAlternatePaths) {
  net::Network net;
  const auto topo = net::build_mesh(net, /*rows=*/3, /*cols=*/3, 1e6,
                                    fifo_factory());
  ASSERT_EQ(topo.switches.size(), 9u);
  ASSERT_EQ(topo.hosts.size(), 9u);
  // Opposite corners are 4 queueing hops apart (Manhattan distance).
  EXPECT_EQ(net.queueing_hops(topo.hosts.front(), topo.hosts.back()), 4u);
  EXPECT_EQ(net.queueing_hops(topo.hosts[0], topo.hosts[1]), 1u);

  // The defining property for the failure scenarios: killing one link on
  // the corner-to-corner route leaves an alternate path of the same
  // length, and repair restores the original tie-broken route.
  const auto before = net.route(topo.hosts.front(), topo.hosts.back());
  ASSERT_GE(before.size(), 3u);
  net.set_link_up(before[1], before[2], false);
  const auto after = net.route(topo.hosts.front(), topo.hosts.back());
  ASSERT_FALSE(after.empty()) << "mesh lost connectivity on one failure";
  EXPECT_EQ(after.size(), before.size());
  EXPECT_NE(after, before);
  net.set_link_up(before[1], before[2], true);
  EXPECT_EQ(net.route(topo.hosts.front(), topo.hosts.back()), before);
}

TEST(Ring, ShapeAndRerouteTheLongWayRound) {
  net::Network net;
  const auto topo = net::build_ring(net, /*num_switches=*/6, 1e6,
                                    fifo_factory());
  ASSERT_EQ(topo.switches.size(), 6u);
  ASSERT_EQ(topo.hosts.size(), 6u);
  EXPECT_EQ(net.queueing_hops(topo.hosts[0], topo.hosts[1]), 1u);
  EXPECT_EQ(net.queueing_hops(topo.hosts[0], topo.hosts[3]), 3u);

  // Failing the direct edge forces the 5-hop path the other way round.
  net.set_link_up(topo.switches[0], topo.switches[1], false);
  EXPECT_EQ(net.queueing_hops(topo.hosts[0], topo.hosts[1]), 5u);
  net.set_link_up(topo.switches[0], topo.switches[1], true);
  EXPECT_EQ(net.queueing_hops(topo.hosts[0], topo.hosts[1]), 1u);
}

TEST(Clos, EveryLeafPairTwoHopsAndSpineFailover) {
  net::Network net;
  const auto topo = net::build_clos(net, /*spines=*/2, /*leaves=*/4, 1e6,
                                    fifo_factory());
  ASSERT_EQ(topo.spines.size(), 2u);
  ASSERT_EQ(topo.leaves.size(), 4u);
  ASSERT_EQ(topo.hosts.size(), 4u);
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.hosts.size(); ++j) {
      EXPECT_EQ(net.queueing_hops(topo.hosts[i], topo.hosts[j]), 2u);
    }
  }
  // Losing one leaf's uplink to a spine just shifts that pair to the
  // other spine — still two hops.
  const auto via = net.route(topo.hosts[0], topo.hosts[1]);
  ASSERT_EQ(via.size(), 5u);  // host leaf spine leaf host
  net.set_link_up(via[1], via[2], false);
  EXPECT_EQ(net.queueing_hops(topo.hosts[0], topo.hosts[1]), 2u);
  EXPECT_NE(net.route(topo.hosts[0], topo.hosts[1])[2], via[2]);
}

TEST(QosFabric, PerHopRatesReachSchedulerMeasurementAndAdmission) {
  scenario::ScenarioSpec spec;
  spec.fabric = scenario::FabricKind::kParkingLot;
  spec.parking_hops = 2;
  spec.link_rate = 2e6;
  spec.parking_rate_step = 0.5;  // hop 0: 2 Mb/s, hop 1: 1 Mb/s
  scenario::ScenarioRunner runner(spec);
  runner.prepare();

  auto& ispn = runner.ispn();
  ASSERT_EQ(ispn.links().size(), 4u);  // 2 hops x 2 directions
  const core::LinkId hop0 = ispn.links()[0];
  const core::LinkId hop1 = ispn.links()[2];
  EXPECT_DOUBLE_EQ(runner.net().port(hop0.first, hop0.second)->rate(), 2e6);
  EXPECT_DOUBLE_EQ(runner.net().port(hop1.first, hop1.second)->rate(), 1e6);
  EXPECT_DOUBLE_EQ(ispn.measurement(hop0).config().link_rate, 2e6);
  EXPECT_DOUBLE_EQ(ispn.measurement(hop1).config().link_rate, 1e6);

  // Admission headroom follows the per-hop rate: a 1.5 Mb/s guaranteed
  // clock fits the 2 Mb/s hop but not the 1 Mb/s hop.
  core::FlowSpec g;
  g.flow = 900;
  g.service = net::ServiceClass::kGuaranteed;
  g.guaranteed = core::GuaranteedSpec{1.5e6};
  EXPECT_TRUE(
      ispn.admission().request(g, {hop0}, 0.0).admitted);
  const auto refused = ispn.admission().request(g, {hop1}, 0.0);
  EXPECT_FALSE(refused.admitted);
  EXPECT_EQ(refused.rejected_hop, 0);
}

TEST(SpecParsing, JsonKeysAndOverrides) {
  const std::string text = R"({
    # comment survives
    "preset": "parking_lot",
    "scale": "smoke",
    parking_hops: 3,
    link_rate: 2e6,
    "source": "cbr",
    preempt_on_reject: true,
    class_targets: "0.004,0.032",
  })";
  const auto spec = scenario::spec_from_json(text);
  EXPECT_EQ(spec.fabric, scenario::FabricKind::kParkingLot);
  EXPECT_EQ(spec.parking_hops, 3);
  EXPECT_DOUBLE_EQ(spec.link_rate, 2e6);
  EXPECT_EQ(spec.source, scenario::SourceKind::kCbr);
  EXPECT_TRUE(spec.preempt_on_reject);
  ASSERT_EQ(spec.class_targets.size(), 2u);
  EXPECT_DOUBLE_EQ(spec.class_targets[0], 0.004);
  EXPECT_DOUBLE_EQ(spec.class_targets[1], 0.032);
  EXPECT_DOUBLE_EQ(spec.run_seconds, 1.0);  // smoke scale applied first

  scenario::ScenarioSpec base;
  EXPECT_THROW(scenario::apply_override(base, "no_such_key", "1"),
               std::invalid_argument);
  EXPECT_THROW(scenario::apply_override(base, "arrival_rate", "fast"),
               std::invalid_argument);
  EXPECT_THROW(scenario::preset("nope"), std::invalid_argument);
}

TEST(SpecParsing, FailureAndFabricKnobs) {
  scenario::ScenarioSpec spec;
  scenario::apply_override(spec, "fabric", "mesh");
  scenario::apply_override(spec, "mesh_rows", "4");
  scenario::apply_override(spec, "mesh_cols", "2");
  scenario::apply_override(spec, "reroute_policy", "preempt");
  scenario::apply_override(spec, "link_failure_rate", "0.1");
  scenario::apply_override(spec, "link_repair_mean", "2.5");
  scenario::apply_override(spec, "fail_link", "0:2@3.5,up@8");
  scenario::apply_override(spec, "fail_link", "2:4@1");  // stays down
  EXPECT_EQ(spec.fabric, scenario::FabricKind::kMesh);
  EXPECT_EQ(spec.mesh_rows, 4);
  EXPECT_EQ(spec.mesh_cols, 2);
  EXPECT_EQ(spec.reroute_policy, scenario::ReroutePolicy::kPreempt);
  EXPECT_DOUBLE_EQ(spec.link_failure_rate, 0.1);
  EXPECT_DOUBLE_EQ(spec.link_repair_mean, 2.5);
  ASSERT_EQ(spec.link_failures.size(), 2u);
  EXPECT_EQ(spec.link_failures[0].src, 0);
  EXPECT_EQ(spec.link_failures[0].dst, 2);
  EXPECT_DOUBLE_EQ(spec.link_failures[0].down_at, 3.5);
  EXPECT_DOUBLE_EQ(spec.link_failures[0].up_at, 8.0);
  EXPECT_LT(spec.link_failures[1].up_at, 0.0);
  EXPECT_NO_THROW(spec.validate());

  EXPECT_THROW(scenario::apply_override(spec, "fail_link", "junk"),
               std::invalid_argument);
  EXPECT_THROW(scenario::apply_override(spec, "fail_link", "0:2"),
               std::invalid_argument);
  EXPECT_THROW(scenario::apply_override(spec, "reroute_policy", "panic"),
               std::invalid_argument);
  // A repair scheduled before the failure is a spec error, not a silent
  // never-up.
  scenario::ScenarioSpec bad;
  bad.fabric = scenario::FabricKind::kMesh;
  scenario::apply_override(bad, "fail_link", "0:2@5,up@3");
  EXPECT_THROW(bad.validate(), std::invalid_argument);
}

TEST(Runner, FailureScheduleRejectsUnknownLink) {
  scenario::ScenarioSpec spec = scenario::preset("failure");
  spec.link_failure_rate = 0;
  spec.link_failures.push_back({0, 4, 1.0, -1.0});  // not mesh-adjacent
  scenario::ScenarioRunner runner(spec);
  EXPECT_THROW(runner.prepare(), std::invalid_argument);
}

TEST(Runner, SmallLiveAdmissionRunConservesAndReports) {
  scenario::ScenarioSpec spec = scenario::preset("churn");
  scenario::apply_scale(spec, "small");
  spec.seed = 3;
  scenario::ScenarioRunner runner(spec);
  const auto report = runner.run();

  EXPECT_TRUE(report.conserved()) << "generated=" << report.generated
                                  << " delivered=" << report.delivered;
  EXPECT_GT(report.flows_offered, 10u);
  EXPECT_GT(report.flows_admitted, 0u);
  EXPECT_GT(report.flows_rejected, 0u) << "churn scenario never rejected";
  EXPECT_EQ(report.flows_offered,
            report.flows_admitted + report.flows_rejected);
  EXPECT_EQ(report.decisions.size() >= report.flows_offered, true);
  EXPECT_GT(report.delivered, 100u);
  EXPECT_EQ(report.queued_end, 0u);
  EXPECT_EQ(report.unclaimed, 0u);
  EXPECT_FALSE(report.links.empty());

  // Per-flow outcomes cover every offered flow, and admitted flows with
  // deliveries carry their path length.
  EXPECT_EQ(report.flows.size(), report.flows_offered);
  for (const auto& f : report.flows) {
    if (f.delivered > 0) {
      EXPECT_TRUE(f.admitted);
      EXPECT_GT(f.hops, 0u);
    }
  }

  // The text and JSON renderings at least produce output mentioning the
  // conservation verdict.
  std::ostringstream text;
  report.to_text(text);
  EXPECT_NE(text.str().find("[OK]"), std::string::npos);
  std::ostringstream json;
  report.to_json(json);
  EXPECT_NE(json.str().find("\"conserved\": true"), std::string::npos);
}

TEST(Runner, PreemptionMakesRoomForGuaranteed) {
  // Saturate a single link with predicted flows, then ask for a
  // guaranteed flow that cannot fit: with preempt_on_reject the youngest
  // predicted flow is torn down and the retry admitted.
  scenario::ScenarioSpec spec;
  spec.fabric = scenario::FabricKind::kChain;
  spec.chain_switches = 2;
  spec.run_seconds = 4.0;
  spec.arrival_rate = 30.0;
  spec.arrival_window = 3.0;
  spec.target_flows = 60;
  spec.mean_hold = 0;  // nobody leaves voluntarily
  spec.p_guaranteed = 0.3;
  spec.p_predicted = 0.7;
  spec.preempt_on_reject = true;
  // Parameter-based admission: releasing a victim's committed rate frees
  // headroom instantly, so the preempt-retry loop can converge.  The loose
  // low class (0.4 s) lets predicted flows accumulate enough committed
  // rate that a guaranteed request hits the 90% quota — the rejection
  // preemption CAN cure (a clock-rate-ledger rejection it cannot).
  spec.admission_mode = core::AdmissionController::Mode::kParameterBased;
  spec.class_targets = {0.008, 0.4};
  spec.target_delay = 0.4;
  spec.avg_rate_pps = 120.0;
  spec.seed = 5;
  scenario::ScenarioRunner runner(spec);
  const auto report = runner.run();

  EXPECT_TRUE(report.conserved());
  EXPECT_GT(report.flows_preempted, 0u) << "no preemption ever triggered";
  bool saw_preempt_then_admit = false;
  for (std::size_t i = 0; i + 1 < report.decisions.size(); ++i) {
    if (report.decisions[i].kind ==
            scenario::AdmissionDecision::Kind::kPreempted &&
        report.decisions[i + 1].kind ==
            scenario::AdmissionDecision::Kind::kAdmitted &&
        report.decisions[i + 1].service == net::ServiceClass::kGuaranteed) {
      saw_preempt_then_admit = true;
    }
  }
  EXPECT_TRUE(saw_preempt_then_admit)
      << "preemption never converted a guaranteed rejection into an admit";
}

}  // namespace
}  // namespace ispn
