// The shared fluid GPS clock (sched/fluid_clock.h): exact piecewise-linear
// V(t), departure-epoch iteration, and the flow-0 weight policy knob that
// used to be an implicit divergence between wfq.cc and unified.cc.

#include "sched/fluid_clock.h"

#include <gtest/gtest.h>

#include "sched/unified.h"
#include "sched/wfq.h"
#include "sched_test_util.h"

namespace ispn::sched {
namespace {

using sched_test::guaranteed_pkt;

// Link 1000 b/s throughout; one 1000-bit packet at weight w has fluid
// finish tag S + 1000/w.

TEST(FluidClock, FrozenWhileIdle) {
  FluidClock clock(1000.0);
  clock.advance(5.0);
  EXPECT_DOUBLE_EQ(clock.vtime(), 0.0);
  EXPECT_TRUE(clock.idle());
}

TEST(FluidClock, SingleFlowSlopeAndDeparture) {
  FluidClock clock(1000.0);
  clock.advance(0.0);
  const double f = clock.stamp(1, 0.0, 1000.0, 500.0, 1.0 / 500.0);
  EXPECT_DOUBLE_EQ(f, 2.0);  // 1000 bits / 500 = 2 virtual units
  EXPECT_TRUE(clock.backlogged(1));
  EXPECT_DOUBLE_EQ(clock.active_weight(), 500.0);

  // Slope C / Σφ = 1000/500 = 2 per second while flow 1 is backlogged.
  clock.advance(0.5);
  EXPECT_DOUBLE_EQ(clock.vtime(), 1.0);

  // The flow departs the fluid system when V reaches its finish tag (t=1);
  // V freezes there because nothing else is backlogged.
  clock.advance(3.0);
  EXPECT_DOUBLE_EQ(clock.vtime(), 2.0);
  EXPECT_FALSE(clock.backlogged(1));
  EXPECT_DOUBLE_EQ(clock.active_weight(), 0.0);
}

TEST(FluidClock, DepartureEpochChangesSlope) {
  FluidClock clock(1000.0);
  clock.advance(0.0);
  // Flow 1 (φ=750) finishes at V=4/3; flow 2 (φ=250) at V=4.
  EXPECT_DOUBLE_EQ(clock.stamp(1, 0.0, 1000.0, 750.0, 1.0 / 750.0), 4.0 / 3.0);
  EXPECT_DOUBLE_EQ(clock.stamp(2, 0.0, 1000.0, 250.0, 1.0 / 250.0), 4.0);

  // Both backlogged: slope 1.  Flow 1 leaves at t=4/3; slope becomes 4.
  //   V(1.5) = 4/3 + 4·(1.5 − 4/3) = 2.
  clock.advance(1.5);
  EXPECT_NEAR(clock.vtime(), 2.0, 1e-12);
  EXPECT_FALSE(clock.backlogged(1));
  EXPECT_TRUE(clock.backlogged(2));

  // Flow 2 drains at t = 4/3 + (4 − 4/3)/4 = 2.
  clock.advance(2.0);
  EXPECT_NEAR(clock.vtime(), 4.0, 1e-12);
  EXPECT_TRUE(clock.idle());
}

TEST(FluidClock, StampStartsAtMaxOfVtimeAndLastFinish) {
  FluidClock clock(1000.0);
  clock.advance(0.0);
  const double f1 = clock.stamp(1, 0.0, 1000.0, 1000.0, 1e-3);
  EXPECT_DOUBLE_EQ(f1, 1.0);
  // Back-to-back packet: starts at the previous finish, not at V=0.
  const double f2 = clock.stamp(1, f1, 1000.0, 1000.0, 1e-3);
  EXPECT_DOUBLE_EQ(f2, 2.0);
  // After the backlog clears, a fresh arrival starts at V.
  clock.advance(10.0);
  const double f3 = clock.stamp(1, f2, 1000.0, 1000.0, 1e-3);
  EXPECT_DOUBLE_EQ(f3, 3.0);  // V froze at 2.0
}

// The tested divergence: what happens to the V(t) slope when a backlogged
// flow is re-weighted.  kTracked (unified's flow 0) changes the slope
// immediately; kPinned (WFQ flows) keeps the arrival-time weight.
TEST(FluidClock, Flow0PolicyDivergence) {
  FluidClock tracked(1000.0, FluidClock::Flow0Policy::kTracked);
  FluidClock pinned(1000.0, FluidClock::Flow0Policy::kPinned);
  for (FluidClock* clock : {&tracked, &pinned}) {
    clock->advance(0.0);
    EXPECT_DOUBLE_EQ(clock->stamp(0, 0.0, 1000.0, 500.0, 1.0 / 500.0), 2.0);
    clock->reweight(0, 1000.0);  // flow 0 doubles its clock rate
    clock->advance(0.5);
  }
  // Tracked: slope drops to 1000/1000 = 1 → V(0.5) = 0.5.
  EXPECT_DOUBLE_EQ(tracked.vtime(), 0.5);
  EXPECT_DOUBLE_EQ(tracked.active_weight(), 1000.0);
  // Pinned: slope stays 1000/500 = 2 → V(0.5) = 1.0.
  EXPECT_DOUBLE_EQ(pinned.vtime(), 1.0);
  EXPECT_DOUBLE_EQ(pinned.active_weight(), 500.0);
}

TEST(FluidClock, ReweightOfIdleFlowIsNoOp) {
  FluidClock clock(1000.0, FluidClock::Flow0Policy::kTracked);
  clock.reweight(0, 750.0);
  EXPECT_DOUBLE_EQ(clock.active_weight(), 0.0);
  // The next stamp carries whatever weight the caller passes.
  clock.advance(0.0);
  clock.stamp(0, 0.0, 1000.0, 250.0, 1.0 / 250.0);
  EXPECT_DOUBLE_EQ(clock.active_weight(), 250.0);
}

TEST(FluidClock, RetireRemovesBackloggedFlow) {
  FluidClock clock(1000.0);
  clock.advance(0.0);
  clock.stamp(1, 0.0, 1000.0, 500.0, 1.0 / 500.0);
  clock.stamp(2, 0.0, 1000.0, 500.0, 1.0 / 500.0);
  clock.retire(1);
  EXPECT_FALSE(clock.backlogged(1));
  EXPECT_TRUE(clock.backlogged(2));
  EXPECT_DOUBLE_EQ(clock.active_weight(), 500.0);
  clock.retire(1);  // idempotent
  EXPECT_DOUBLE_EQ(clock.active_weight(), 500.0);
}

// Both WFQ-family schedulers now advance the *same* clock: a guaranteed-
// only workload must produce identical virtual-time trajectories in
// WfqScheduler and UnifiedScheduler (the seed's copies diverged only in
// flow-0 handling, which this workload never touches).
TEST(FluidClock, WfqAndUnifiedAgreeOnGuaranteedOnlyVtime) {
  WfqScheduler wfq(WfqScheduler::Config{1e6, 200, 1.0});
  UnifiedScheduler unified(UnifiedScheduler::Config{1e6, 200, 2});
  wfq.add_flow(1, 3e5);
  wfq.add_flow(2, 5e5);
  unified.add_guaranteed(1, 3e5);
  unified.add_guaranteed(2, 5e5);

  std::uint64_t seq = 0;
  for (double t : {0.0, 0.0, 0.001, 0.0015, 0.004, 0.02}) {
    const net::FlowId flow = (seq % 2 == 0) ? 1 : 2;
    wfq.enqueue(sched_test::pkt(flow, seq, t), t);
    unified.enqueue(guaranteed_pkt(flow, seq, t), t);
    ++seq;
    EXPECT_DOUBLE_EQ(wfq.virtual_time(t), unified.virtual_time(t));
  }
  for (double t : {0.05, 0.1, 1.0}) {
    EXPECT_DOUBLE_EQ(wfq.virtual_time(t), unified.virtual_time(t));
  }
}

}  // namespace
}  // namespace ispn::sched
