// Paper §10 "Other Service Qualities": importance-based drop preference
// and stale-packet discard.

#include <gtest/gtest.h>

#include "sched/fifo_plus.h"
#include "sched/unified.h"
#include "sched_test_util.h"

namespace ispn::sched {
namespace {

using sched_test::offer;
using sched_test::datagram_pkt;
using sched_test::predicted_pkt;

UnifiedScheduler::Config unified_cfg(std::size_t cap,
                                     double stale = sim::kTimeInfinity) {
  UnifiedScheduler::Config c;
  c.link_rate = 1e6;
  c.capacity_pkts = cap;
  c.num_predicted_classes = 2;
  c.stale_offset_threshold = stale;
  return c;
}

// ------------------------------------------------- importance dropping --

TEST(Importance, PushoutPrefersLessImportantPredicted) {
  UnifiedScheduler q(unified_cfg(3));
  q.set_predicted_priority(1, 1);
  auto base = predicted_pkt(1, 0, 0.0, 1);
  auto enhance = predicted_pkt(1, 1, 0.0, 1);
  enhance->less_important = true;
  auto base2 = predicted_pkt(1, 2, 0.0, 1);
  ASSERT_TRUE(offer(q, std::move(enhance), 0.0).empty());
  ASSERT_TRUE(offer(q, std::move(base), 0.0).empty());
  ASSERT_TRUE(offer(q, std::move(base2), 0.0).empty());
  // Overflow: the less-important packet goes, not the newest.
  auto dropped = offer(q, predicted_pkt(1, 3, 0.0, 1), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->seq, 1u);
  EXPECT_TRUE(dropped[0]->less_important);
}

TEST(Importance, PushoutPrefersLessImportantDatagram) {
  UnifiedScheduler q(unified_cfg(2));
  auto keep = datagram_pkt(9, 0, 0.0);
  auto shed = datagram_pkt(9, 1, 0.0);
  shed->less_important = true;
  ASSERT_TRUE(offer(q, std::move(shed), 0.0).empty());
  ASSERT_TRUE(offer(q, std::move(keep), 0.0).empty());
  auto dropped = offer(q, datagram_pkt(9, 2, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->seq, 1u);
}

TEST(Importance, FallsBackToNewestWhenAllEqual) {
  UnifiedScheduler q(unified_cfg(2));
  q.set_predicted_priority(1, 0);
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 0), 0.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(1, 1, 0.1, 0), 0.1).empty());
  auto dropped = offer(q, predicted_pkt(1, 2, 0.2, 0), 0.2);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->seq, 2u);  // the newest (the arrival itself)
}

TEST(Importance, SustainedOverloadKeepsOnlyImportantPackets) {
  // Alternating important/less-important arrivals into a tiny buffer with
  // no service: every tagged packet is eventually shed and the buffer ends
  // up holding only important ones.
  UnifiedScheduler q(unified_cfg(4));
  q.set_predicted_priority(1, 0);
  int shed_important = 0, shed_enhance = 0;
  for (std::uint64_t i = 0; i < 100; ++i) {
    auto p = predicted_pkt(1, i, 0.0, 0);
    p->less_important = (i % 2 == 1);
    for (auto& victim : offer(q, std::move(p), 0.0)) {
      (victim->less_important ? shed_enhance : shed_important)++;
    }
  }
  EXPECT_EQ(shed_enhance, 50);  // every enhancement packet shed
  EXPECT_EQ(shed_important, 46);
  while (!q.empty()) {
    auto p = q.dequeue(0.0);
    ASSERT_NE(p, nullptr);
    EXPECT_FALSE(p->less_important);
  }
}

// ---------------------------------------------------- stale discarding --

TEST(StaleDiscard, UnifiedDropsPacketsBeyondOffsetThreshold) {
  UnifiedScheduler q(unified_cfg(10, /*stale=*/0.05));
  q.set_predicted_priority(1, 0);
  auto stale = predicted_pkt(1, 0, 0.0, 0, /*jitter_offset=*/0.2);
  auto fresh = predicted_pkt(1, 1, 0.0, 0);
  ASSERT_TRUE(offer(q, std::move(fresh), 0.0).empty());
  ASSERT_TRUE(offer(q, std::move(stale), 0.0).empty());
  // The stale packet sorts first (offset pulls it forward) but is
  // discarded at dequeue; the fresh one transmits.
  auto p = q.dequeue(0.01);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->seq, 1u);
  EXPECT_EQ(q.stale_discards(), 1u);
  EXPECT_TRUE(q.empty());
}

TEST(StaleDiscard, DiscardHookInvoked) {
  UnifiedScheduler q(unified_cfg(10, 0.05));
  q.set_predicted_priority(1, 0);
  int discarded = 0;
  q.set_discard_hook([&](const net::Packet& p, sim::Time) {
    ++discarded;
    EXPECT_GT(p.jitter_offset, 0.05);
  });
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 0, 0.2), 0.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(1, 1, 0.0, 0), 0.0).empty());
  (void)q.dequeue(0.01);
  EXPECT_EQ(discarded, 1);
}

TEST(StaleDiscard, AllStaleYieldsNullAndCleanState) {
  UnifiedScheduler q(unified_cfg(10, 0.05));
  q.set_predicted_priority(1, 0);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(offer(q, predicted_pkt(1, i, 0.0, 0, 0.3), 0.0).empty());
  }
  EXPECT_EQ(q.dequeue(0.01), nullptr);
  EXPECT_EQ(q.stale_discards(), 5u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.packets(), 0u);
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 0.0);
  // The scheduler is fully reusable afterwards.
  ASSERT_TRUE(offer(q, predicted_pkt(1, 9, 1.0, 0), 1.0).empty());
  auto p = q.dequeue(1.0);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->seq, 9u);
}

TEST(StaleDiscard, GuaranteedTrafficNeverDiscarded) {
  UnifiedScheduler q(unified_cfg(10, 0.001));
  q.add_guaranteed(1, 1e5);
  auto p = sched_test::guaranteed_pkt(1, 0, 0.0);
  p->jitter_offset = 10.0;  // absurd offset; guaranteed path ignores it
  ASSERT_TRUE(offer(q, std::move(p), 0.0).empty());
  auto out = q.dequeue(0.01);
  ASSERT_NE(out, nullptr);
  EXPECT_EQ(q.stale_discards(), 0u);
}

TEST(StaleDiscard, FifoPlusStandaloneDiscards) {
  FifoPlusScheduler::Config config;
  config.capacity_pkts = 10;
  config.stale_offset_threshold = 0.05;
  FifoPlusScheduler q(config);
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 0, 0.2), 0.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(1, 1, 0.0, 0), 0.0).empty());
  auto p = q.dequeue(0.01);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->seq, 1u);
  EXPECT_EQ(q.stale_discards(), 1u);
}

TEST(StaleDiscard, FifoPlusAllStaleReturnsNull) {
  FifoPlusScheduler::Config config;
  config.stale_offset_threshold = 0.01;
  FifoPlusScheduler q(config);
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 0, 0.5), 0.0).empty());
  EXPECT_EQ(q.dequeue(0.0), nullptr);
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 0.0);
}

TEST(StaleDiscard, DisabledByDefault) {
  UnifiedScheduler q(unified_cfg(10));
  q.set_predicted_priority(1, 0);
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 0, 100.0), 0.0).empty());
  auto p = q.dequeue(0.01);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(q.stale_discards(), 0u);
}

}  // namespace
}  // namespace ispn::sched
