// IspnNetwork end-to-end wiring: admission + unified schedulers +
// measurement + sources + sinks.

#include "core/builder.h"

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/experiments.h"

namespace ispn::core {
namespace {

IspnNetwork::Config base_config(bool enforce = true) {
  IspnNetwork::Config c;
  c.class_targets = {0.016, 0.16};
  c.enforce_admission = enforce;
  return c;
}

FlowSpec predicted_spec(net::FlowId id, net::NodeId src, net::NodeId dst,
                        sim::Duration target = 0.5) {
  FlowSpec s;
  s.flow = id;
  s.src = src;
  s.dst = dst;
  s.service = net::ServiceClass::kPredicted;
  s.predicted = PredictedSpec{{85000.0, 50000.0}, target, 0.01};
  return s;
}

TEST(Builder, ChainHasSchedulersAndMeasurementPerDirection) {
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(3);
  for (std::size_t i = 0; i + 1 < topo.switches.size(); ++i) {
    const LinkId fwd{topo.switches[i], topo.switches[i + 1]};
    const LinkId rev{topo.switches[i + 1], topo.switches[i]};
    EXPECT_NO_THROW((void)ispn.scheduler(fwd));
    EXPECT_NO_THROW((void)ispn.scheduler(rev));
    EXPECT_NO_THROW((void)ispn.measurement(fwd));
  }
}

TEST(Builder, RouteLinksSkipsHostAttachments) {
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(5);
  const auto links = ispn.route_links(topo.hosts[0], topo.hosts[4]);
  ASSERT_EQ(links.size(), 4u);
  EXPECT_EQ(links.front().first, topo.switches[0]);
  EXPECT_EQ(links.back().second, topo.switches[4]);
}

TEST(Builder, GuaranteedFlowRegistersClockRates) {
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(3);
  FlowSpec s;
  s.flow = 1;
  s.src = topo.hosts[0];
  s.dst = topo.hosts[2];
  s.service = net::ServiceClass::kGuaranteed;
  s.guaranteed = GuaranteedSpec{170000.0};
  const auto handle = ispn.open_flow(s);
  EXPECT_TRUE(handle.commitment.admitted);
  for (const auto& link : handle.links) {
    EXPECT_DOUBLE_EQ(ispn.scheduler(link).guaranteed_rate(), 170000.0);
  }
}

TEST(Builder, PredictedFlowAssignedPriorities) {
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(3);
  const auto handle =
      ispn.open_flow(predicted_spec(1, topo.hosts[0], topo.hosts[2], 0.5));
  ASSERT_TRUE(handle.commitment.admitted);
  ASSERT_EQ(handle.commitment.priority_per_hop.size(), 2u);
  // 0.25 per hop: the loose class (0.16) suffices.
  EXPECT_EQ(handle.commitment.priority_per_hop[0], 1);
  EXPECT_NEAR(*handle.commitment.advertised_bound, 0.32, 1e-12);
}

TEST(Builder, RejectionThrowsWhenEnforced) {
  IspnNetwork ispn(base_config(true));
  const auto topo = ispn.build_chain(2);
  // Guaranteed rate above the 90% quota.
  FlowSpec s;
  s.flow = 1;
  s.src = topo.hosts[0];
  s.dst = topo.hosts[1];
  s.service = net::ServiceClass::kGuaranteed;
  s.guaranteed = GuaranteedSpec{950000.0};
  EXPECT_THROW((void)ispn.open_flow(s), std::runtime_error);
}

TEST(Builder, RejectionToleratedWhenNotEnforced) {
  IspnNetwork ispn(base_config(false));
  const auto topo = ispn.build_chain(2);
  const auto handle =
      ispn.open_flow(predicted_spec(1, topo.hosts[0], topo.hosts[1], 0.001));
  // Rejected (impossible target) but still configured with the tightest
  // class as a fallback.
  EXPECT_FALSE(handle.commitment.admitted);
  ASSERT_EQ(handle.commitment.priority_per_hop.size(), 1u);
}

TEST(Builder, GuaranteedBoundMatchesPgFormula) {
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(5);
  FlowSpec s;
  s.flow = 1;
  s.src = topo.hosts[0];
  s.dst = topo.hosts[4];
  s.service = net::ServiceClass::kGuaranteed;
  s.guaranteed = GuaranteedSpec{170000.0};
  const auto handle = ispn.open_flow(s);
  const traffic::TokenBucketSpec bucket{170000.0, 1000.0};
  EXPECT_NEAR(ispn.guaranteed_bound(handle, bucket) / sim::paper::kPacketTime,
              23.53, 0.005);
}

TEST(Builder, EndToEndTrafficFlows) {
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(3);
  const auto handle =
      ispn.open_flow(predicted_spec(1, topo.hosts[0], topo.hosts[2], 0.5));
  auto& source = ispn.attach_onoff_source(handle, {}, 0);
  ispn.attach_sink(handle);
  source.start(0);
  ispn.net().sim().run_until(30.0);
  const auto& stats = ispn.net().stats(1);
  EXPECT_GT(stats.received, 2000u);
  EXPECT_GT(stats.source_drops, 0u);  // edge policing active
  EXPECT_LT(stats.net_loss_rate(), 0.01);
}

TEST(Builder, MeasurementSeesRealtimeTraffic) {
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(2);
  const auto handle =
      ispn.open_flow(predicted_spec(1, topo.hosts[0], topo.hosts[1], 0.5));
  auto& source = ispn.attach_onoff_source(handle, {}, 0);
  ispn.attach_sink(handle);
  source.start(0);
  ispn.net().sim().run_until(30.0);
  const LinkId link{topo.switches[0], topo.switches[1]};
  // ~85 kb/s of real-time traffic on a 1 Mb/s link (x1.2 safety).
  const double nu = ispn.measurement(link).measured_utilization(30.0);
  EXPECT_GT(nu, 0.05);
  EXPECT_LT(nu, 0.3);
  EXPECT_NEAR(ispn.realtime_utilization(link, 30.0), 0.085, 0.02);
}

TEST(Builder, TcpAttachesAndTransfers) {
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(3);
  FlowSpec s;
  s.flow = 7;
  s.src = topo.hosts[0];
  s.dst = topo.hosts[2];
  s.service = net::ServiceClass::kDatagram;
  const auto handle = ispn.open_flow(s);
  auto [tcp_src, tcp_sink] = ispn.attach_tcp(handle);
  tcp_src.start(0);
  ispn.net().sim().run_until(10.0);
  EXPECT_GT(tcp_src.delivered(), 5000u);
  EXPECT_EQ(tcp_sink.rcv_next(), tcp_src.delivered());
}

TEST(Builder, LayoutHasPaperInvariants) {
  const auto layout = paper_flow_layout();
  ASSERT_EQ(layout.size(), 22u);
  // Path-length histogram: 12 / 4 / 4 / 2.
  int by_len[5] = {0, 0, 0, 0, 0};
  for (const auto& f : layout) ++by_len[f.path_len()];
  EXPECT_EQ(by_len[1], 12);
  EXPECT_EQ(by_len[2], 4);
  EXPECT_EQ(by_len[3], 4);
  EXPECT_EQ(by_len[4], 2);
  // 10 flows per link; per-link role mix 2 GP + 1 GA + 3 PH + 4 PL.
  for (int link = 0; link < 4; ++link) {
    int total = 0, gp = 0, ga = 0, ph = 0, pl = 0;
    for (const auto& f : layout) {
      if (f.src_sw <= link && link < f.dst_sw) {
        ++total;
        switch (f.role) {
          case Table3Role::kGuaranteedPeak: ++gp; break;
          case Table3Role::kGuaranteedAverage: ++ga; break;
          case Table3Role::kPredictedHigh: ++ph; break;
          case Table3Role::kPredictedLow: ++pl; break;
        }
      }
    }
    EXPECT_EQ(total, 10) << "link " << link;
    EXPECT_EQ(gp, 2) << "link " << link;
    EXPECT_EQ(ga, 1) << "link " << link;
    EXPECT_EQ(ph, 3) << "link " << link;
    EXPECT_EQ(pl, 4) << "link " << link;
  }
}

}  // namespace
}  // namespace ispn::core
