// Hierarchical (two-level aggregate) scheduling differential suite.
//
// UnifiedScheduler::Config::hierarchical collapses predicted classes and
// the datagram aggregate into bounded per-class inner queues under the
// outer WFQ, so per-link scheduler state stops scaling with flow count.
// The contract tested here:
//
//   1. Hierarchical mode preserves the invariants that define the flat
//      path: packet conservation, delivery in every service class, and —
//      because guaranteed flows keep their individual WFQ slots in both
//      modes — the Parekh–Gallager bound for every admitted guaranteed
//      flow.
//   2. The knob changes scheduling only: the offered workload (flow
//      arrival schedule, generated packets) is identical flat vs
//      hierarchical.
//   3. The flow-locality cache counters (ScenarioReport route/sink cache
//      hits/misses) are a pure function of the packet sequence, hence
//      byte-identical across every event-ordering x virtual-time-ordering
//      backend combination, in BOTH modes.  (Flat-path byte-identity
//      itself is pinned by test_scenario_golden; this file extends the
//      cross-backend invariant to the new counters and the new mode.)

#include <gtest/gtest.h>

#include <string>

#include "scenario/runner.h"

namespace ispn {
namespace {

/// Fan-in tree with the paper's full service mix under churn — enough
/// traffic in all three classes to exercise both scheduler shapes.
scenario::ScenarioSpec mixed_spec() {
  scenario::ScenarioSpec spec = scenario::preset("fan_in");
  scenario::apply_scale(spec, "small");
  spec.tree_width = 4;
  spec.arrival_rate = 6.0;
  spec.mean_hold = 2.0;
  spec.target_flows = 24;
  spec.p_guaranteed = 0.3;
  spec.p_predicted = 0.4;
  spec.seed = 21;
  return spec;
}

scenario::ScenarioReport run_spec(scenario::ScenarioSpec spec,
                                  bool hierarchical,
                                  sim::EventBackend event_backend,
                                  sched::OrderBackend order_backend) {
  spec.hierarchical = hierarchical;
  spec.event_backend = event_backend;
  spec.order_backend = order_backend;
  scenario::ScenarioRunner runner(std::move(spec));
  return runner.run();
}

scenario::ScenarioReport run_spec(scenario::ScenarioSpec spec,
                                  bool hierarchical) {
  return run_spec(std::move(spec), hierarchical, sim::EventBackend::kHeap,
                  sched::OrderBackend::kHeap);
}

TEST(Hierarchical, ConservesAndDeliversEveryClass) {
  const auto report = run_spec(mixed_spec(), /*hierarchical=*/true);
  ASSERT_TRUE(report.conserved());
  EXPECT_GT(report.delivered, 0u);
  for (std::size_t c = 0; c < report.classes.size(); ++c) {
    EXPECT_GT(report.classes[c].delivered, 0u)
        << "service class " << c << " starved under hierarchical mode";
  }
  // The per-packet route cache saw the traffic and mostly hit: a fan-in
  // switch forwards everything toward the root, so the destination stream
  // has strong locality.  Deliveries themselves are label-switched — the
  // runner stamps each flow's sink slot at setup, so every delivery takes
  // the validated fast path rather than the cached table lookup.
  EXPECT_GT(report.route_cache_hits, 0u);
  EXPECT_GE(report.sink_label_hits, report.delivered);
  EXPECT_GE(report.route_cache_hits + report.route_cache_misses,
            report.delivered)
      << "every delivered packet crossed at least one switch lookup";
}

TEST(Hierarchical, GuaranteedPgBoundsHoldInBothModes) {
  for (const bool hierarchical : {false, true}) {
    const auto report = run_spec(mixed_spec(), hierarchical);
    ASSERT_TRUE(report.conserved()) << "hierarchical=" << hierarchical;
    std::size_t checked = 0;
    for (const auto& f : report.flows) {
      if (f.service != net::ServiceClass::kGuaranteed || !f.admitted ||
          f.delivered == 0) {
        continue;
      }
      ++checked;
      ASSERT_GT(f.bound, 0.0);
      EXPECT_LE(f.max_delay, f.bound)
          << "hierarchical=" << hierarchical << " flow " << f.flow << " ("
          << f.hops << " hops): guaranteed delay " << f.max_delay * 1e3
          << " ms exceeded its a-priori bound " << f.bound * 1e3 << " ms";
    }
    EXPECT_GT(checked, 0u)
        << "hierarchical=" << hierarchical
        << ": no guaranteed flow ever delivered";
  }
}

TEST(Hierarchical, KnobChangesSchedulingOnly) {
  const auto flat = run_spec(mixed_spec(), /*hierarchical=*/false);
  const auto hier = run_spec(mixed_spec(), /*hierarchical=*/true);
  ASSERT_TRUE(flat.conserved());
  ASSERT_TRUE(hier.conserved());
  // The offered workload is scheduler-independent: same arrival schedule,
  // same flow population, same generated packet count.
  EXPECT_EQ(flat.flows_offered, hier.flows_offered);
  EXPECT_EQ(flat.generated, hier.generated);
  EXPECT_GT(flat.delivered, 0u);
  EXPECT_GT(hier.delivered, 0u);
}

// Cache hit/miss counters are deterministic: same spec -> same counters,
// regardless of the engine's event backend or the schedulers' virtual-time
// ordering backend.  This is what lets the counters live in ScenarioReport
// without weakening the golden determinism contract.
TEST(Hierarchical, CacheCountersByteIdenticalAcrossBackends) {
  struct Combo {
    sim::EventBackend event;
    sched::OrderBackend order;
    const char* name;
  };
  const Combo combos[] = {
      {sim::EventBackend::kHeap, sched::OrderBackend::kCalendar,
       "heap x calendar"},
      {sim::EventBackend::kWheel, sched::OrderBackend::kHeap,
       "wheel x heap"},
      {sim::EventBackend::kWheel, sched::OrderBackend::kCalendar,
       "wheel x calendar"},
  };
  for (const bool hierarchical : {false, true}) {
    const auto ref = run_spec(mixed_spec(), hierarchical,
                              sim::EventBackend::kHeap,
                              sched::OrderBackend::kHeap);
    ASSERT_TRUE(ref.conserved());
    EXPECT_GT(ref.route_cache_hits + ref.route_cache_misses, 0u);
    EXPECT_GT(ref.sink_label_hits, 0u);
    for (const Combo& combo : combos) {
      const auto got =
          run_spec(mixed_spec(), hierarchical, combo.event, combo.order);
      const std::string what = std::string("hierarchical=") +
                               (hierarchical ? "1" : "0") + " under " +
                               combo.name;
      EXPECT_EQ(ref.route_cache_hits, got.route_cache_hits) << what;
      EXPECT_EQ(ref.route_cache_misses, got.route_cache_misses) << what;
      EXPECT_EQ(ref.sink_cache_hits, got.sink_cache_hits) << what;
      EXPECT_EQ(ref.sink_cache_misses, got.sink_cache_misses) << what;
      EXPECT_EQ(ref.sink_label_hits, got.sink_label_hits) << what;
      EXPECT_EQ(ref.decision_hash(), got.decision_hash()) << what;
      EXPECT_EQ(ref.delivered, got.delivered) << what;
      EXPECT_EQ(ref.generated, got.generated) << what;
      EXPECT_EQ(ref.events, got.events) << what;
    }
  }
}

}  // namespace
}  // namespace ispn
