// Network, Port, Switch, Host and topology integration at the packet level.

#include "net/network.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sched/fifo.h"
#include "traffic/cbr_source.h"

namespace ispn::net {
namespace {

SchedulerFactory fifo_factory(std::size_t cap = 200) {
  return [cap] { return std::make_unique<sched::FifoScheduler>(cap); };
}

TEST(Network, DumbbellDeliversPacket) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  net.attach_stats_sink(1, topo.right_host);
  auto p = make_packet(1, 0, topo.left_host, topo.right_host, 0.0);
  net.host(topo.left_host).inject(std::move(p));
  net.sim().run();
  EXPECT_EQ(net.stats(1).received, 1u);
}

TEST(Network, TransmissionTimeIsSizeOverRate) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  net.attach_stats_sink(1, topo.right_host);
  net.host(topo.left_host)
      .inject(make_packet(1, 0, topo.left_host, topo.right_host, 0.0));
  net.sim().run();
  // One 1000-bit packet over 1 Mb/s: e2e delay == 1 ms (host links free).
  EXPECT_NEAR(net.stats(1).e2e_delay.mean(), 0.001, 1e-12);
  EXPECT_NEAR(net.stats(1).queueing_delay.mean(), 0.0, 1e-12);
}

TEST(Network, BackToBackPacketsQueue) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  net.attach_stats_sink(1, topo.right_host);
  for (std::uint64_t i = 0; i < 3; ++i) {
    net.host(topo.left_host)
        .inject(make_packet(1, i, topo.left_host, topo.right_host, 0.0));
  }
  net.sim().run();
  const auto& s = net.stats(1).queueing_delay;
  // Waiting times: 0, 1, 2 ms.
  EXPECT_NEAR(s.max(), 0.002, 1e-12);
  EXPECT_NEAR(s.mean(), 0.001, 1e-12);
}

TEST(Network, ChainRoutesAcrossAllSwitches) {
  Network net;
  const auto topo = build_chain(net, 5, 1e6, fifo_factory());
  net.attach_stats_sink(1, topo.hosts[4]);
  net.host(topo.hosts[0])
      .inject(make_packet(1, 0, topo.hosts[0], topo.hosts[4], 0.0));
  net.sim().run();
  EXPECT_EQ(net.stats(1).received, 1u);
  // 4 inter-switch links, 1 ms store-and-forward each.
  EXPECT_NEAR(net.stats(1).e2e_delay.mean(), 0.004, 1e-12);
}

TEST(Network, QueueingHopsCountsFiniteLinksOnly) {
  Network net;
  const auto topo = build_chain(net, 5, 1e6, fifo_factory());
  EXPECT_EQ(net.queueing_hops(topo.hosts[0], topo.hosts[4]), 4u);
  EXPECT_EQ(net.queueing_hops(topo.hosts[0], topo.hosts[1]), 1u);
  EXPECT_EQ(net.queueing_hops(topo.hosts[2], topo.hosts[2]), 0u);
}

TEST(Network, RouteIsNodeSequence) {
  Network net;
  const auto topo = build_chain(net, 3, 1e6, fifo_factory());
  const auto route = net.route(topo.hosts[0], topo.hosts[2]);
  ASSERT_EQ(route.size(), 5u);  // H1 S1 S2 S3 H3
  EXPECT_EQ(route.front(), topo.hosts[0]);
  EXPECT_EQ(route.back(), topo.hosts[2]);
}

TEST(Network, DropAccounting) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory(2));
  net.attach_stats_sink(1, topo.right_host);
  for (std::uint64_t i = 0; i < 5; ++i) {
    net.host(topo.left_host)
        .inject(make_packet(1, i, topo.left_host, topo.right_host, 0.0));
  }
  net.sim().run();
  // One in flight + 2 queued; 2 dropped.
  EXPECT_EQ(net.stats(1).net_drops, 2u);
  EXPECT_EQ(net.stats(1).received, 3u);
}

TEST(Network, UnclaimedPacketsCounted) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  net.host(topo.left_host)
      .inject(make_packet(1, 0, topo.left_host, topo.right_host, 0.0));
  net.sim().run();
  EXPECT_EQ(net.host(topo.right_host).unclaimed(), 1u);
}

// Packets carrying the sink-slot delivery label bypass the table lookup;
// wrong or stale labels must fail the flow-id validation and fall back to
// the cached lookup without misdelivering.
TEST(Network, SinkSlotLabelFastPathAndFallback) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  net.attach_stats_sink(1, topo.right_host);
  net.attach_stats_sink(2, topo.right_host);
  Host& dst = net.host(topo.right_host);

  auto labelled = make_packet(1, 0, topo.left_host, topo.right_host, 0.0);
  labelled->sink_slot = 0;  // flow 1 registered first -> slot 0
  net.host(topo.left_host).inject(std::move(labelled));

  auto wrong = make_packet(2, 0, topo.left_host, topo.right_host, 0.0);
  wrong->sink_slot = 0;  // flow mismatch: validated, falls back
  net.host(topo.left_host).inject(std::move(wrong));

  auto out_of_range = make_packet(1, 1, topo.left_host, topo.right_host, 0.0);
  out_of_range->sink_slot = 999;  // past the sink table: falls back
  net.host(topo.left_host).inject(std::move(out_of_range));

  net.sim().run();
  EXPECT_EQ(net.stats(1).received, 2u);
  EXPECT_EQ(net.stats(2).received, 1u);
  EXPECT_EQ(dst.sink_label_hits(), 1u);
  EXPECT_EQ(dst.sink_cache_hits() + dst.sink_cache_misses(), 2u);
  EXPECT_EQ(dst.unclaimed(), 0u);
}

TEST(Network, PortUtilization) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  net.attach_stats_sink(1, topo.right_host);
  traffic::CbrSource src(net.sim(), {.rate_pps = 500.0, .packet_bits = 1000},
                         1, topo.left_host, topo.right_host,
                         [&](PacketPtr p) {
                           net.host(topo.left_host).inject(std::move(p));
                         },
                         &net.stats(1));
  src.start(0);
  net.sim().run_until(10.0);
  EXPECT_NEAR(
      net.port(topo.left_switch, topo.right_switch)->utilization(10.0), 0.5,
      0.01);
}

TEST(Network, ReverseDirectionIndependent) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  net.attach_stats_sink(1, topo.right_host);
  net.attach_stats_sink(2, topo.left_host);
  net.host(topo.left_host)
      .inject(make_packet(1, 0, topo.left_host, topo.right_host, 0.0));
  net.host(topo.right_host)
      .inject(make_packet(2, 0, topo.right_host, topo.left_host, 0.0));
  net.sim().run();
  EXPECT_EQ(net.stats(1).received, 1u);
  EXPECT_EQ(net.stats(2).received, 1u);
  // Duplex: both directions take exactly one transmission time.
  EXPECT_NEAR(net.stats(2).e2e_delay.mean(), 0.001, 1e-12);
}

TEST(Network, HopCountStampedOnPackets) {
  Network net;
  const auto topo = build_chain(net, 4, 1e6, fifo_factory());
  struct HopSink : FlowSink {
    int hops = -1;
    void on_packet(PacketPtr p, sim::Time) override { hops = p->hops; }
  } sink;
  net.attach_stats_sink(1, topo.hosts[3], &sink);
  net.host(topo.hosts[0])
      .inject(make_packet(1, 0, topo.hosts[0], topo.hosts[3], 0.0));
  net.sim().run();
  EXPECT_EQ(sink.hops, 3);  // three inter-switch links
}

TEST(Network, ChainAsciiMentionsAllNodes) {
  Network net;
  const auto topo = build_chain(net, 5, 1e6, fifo_factory());
  const auto art = chain_ascii(topo);
  EXPECT_NE(art.find("Host-5"), std::string::npos);
  EXPECT_NE(art.find("S-1"), std::string::npos);
}

}  // namespace
}  // namespace ispn::net
