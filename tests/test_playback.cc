// Playback applications: rigid vs adaptive points, loss accounting,
// quantile estimation.

#include "app/playback.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/random.h"

namespace ispn::app {
namespace {

net::PacketPtr delayed_packet(std::uint64_t seq, sim::Time created) {
  return net::make_packet(1, seq, 0, 1, created);
}

/// Feeds `n` packets whose delays are drawn by `delay_fn(i)`.  Delivery
/// times are made monotone (as a FIFO network path would deliver them).
template <typename Fn>
void feed(PlaybackApp& app, int n, Fn delay_fn, sim::Time start = 0.0,
          sim::Duration spacing = 0.01) {
  sim::Time last = start;
  for (int i = 0; i < n; ++i) {
    const sim::Time created = start + spacing * i;
    const sim::Duration delay = delay_fn(i);
    last = std::max(last, created + delay);
    app.on_packet(delayed_packet(static_cast<std::uint64_t>(i), created),
                  last);
  }
}

TEST(QuantileEstimator, NearestRankOnWindow) {
  DelayQuantileEstimator est(100);
  for (int i = 1; i <= 100; ++i) est.add(0.001 * i);
  EXPECT_NEAR(est.quantile(0.5), 0.050, 1e-12);
  EXPECT_NEAR(est.quantile(0.99), 0.099, 1e-12);
  EXPECT_NEAR(est.quantile(1.0), 0.100, 1e-12);
}

TEST(QuantileEstimator, WindowSlides) {
  DelayQuantileEstimator est(10);
  for (int i = 0; i < 10; ++i) est.add(1.0);
  for (int i = 0; i < 10; ++i) est.add(2.0);  // evicts all the 1.0s
  EXPECT_DOUBLE_EQ(est.quantile(0.0), 2.0);
  EXPECT_EQ(est.count(), 10u);
}

TEST(QuantileEstimator, PrimedAfterQuarterWindow) {
  DelayQuantileEstimator est(100);
  for (int i = 0; i < 24; ++i) est.add(1.0);
  EXPECT_FALSE(est.primed());
  est.add(1.0);
  EXPECT_TRUE(est.primed());
}

TEST(Playback, RigidNeverMoves) {
  PlaybackApp app({.mode = PlaybackApp::Mode::kRigid, .initial_point = 0.1});
  feed(app, 1000, [](int) { return 0.05; });
  EXPECT_DOUBLE_EQ(app.playback_point(), 0.1);
  EXPECT_TRUE(app.history().empty());
  EXPECT_EQ(app.late(), 0u);
  // Rigid app wastes the difference as buffering slack.
  EXPECT_NEAR(app.mean_slack(), 0.05, 1e-9);
}

TEST(Playback, RigidCountsLatePackets) {
  PlaybackApp app({.mode = PlaybackApp::Mode::kRigid, .initial_point = 0.04});
  // Wide spacing so a late packet does not hold up its successors.
  feed(app, 100, [](int i) { return i % 10 == 0 ? 0.08 : 0.01; },
       /*start=*/0.0, /*spacing=*/0.1);
  EXPECT_EQ(app.late(), 10u);
  EXPECT_NEAR(app.loss_rate(), 0.1, 1e-9);
}

TEST(Playback, AdaptiveConvergesNearDelayQuantile) {
  PlaybackApp app({.mode = PlaybackApp::Mode::kAdaptive,
                   .initial_point = 0.5,
                   .quantile = 0.99,
                   .margin = 0.001,
                   .adapt_interval = 32,
                   .window = 256});
  sim::Rng rng(3);
  feed(app, 5000, [&](int) { return 0.01 + 0.005 * rng.uniform(); });
  // Delays are in [10, 15] ms: the point should sit just above 15 ms,
  // far below the 500 ms initial (a-priori-style) bound.
  EXPECT_LT(app.playback_point(), 0.02);
  EXPECT_GT(app.playback_point(), 0.012);
  EXPECT_FALSE(app.history().empty());
}

TEST(Playback, AdaptiveLossStaysNearTargetQuantile) {
  PlaybackApp app({.mode = PlaybackApp::Mode::kAdaptive,
                   .initial_point = 0.1,
                   .quantile = 0.99,
                   .margin = 0.0,
                   .adapt_interval = 16,
                   .window = 512});
  sim::Rng rng(5);
  feed(app, 20000, [&](int) { return rng.exponential(0.01); });
  // Tracking the 99th percentile with no margin: loss near 1%.
  EXPECT_LT(app.loss_rate(), 0.03);
}

TEST(Playback, AdaptiveReactsToDelayIncrease) {
  PlaybackApp app({.mode = PlaybackApp::Mode::kAdaptive,
                   .initial_point = 0.02,
                   .quantile = 0.99,
                   .margin = 0.001,
                   .adapt_interval = 16,
                   .window = 128});
  feed(app, 1000, [](int) { return 0.01; });
  const double before = app.playback_point();
  // Network conditions change: delays triple.  The app must follow, after
  // a brief disruption (some late packets).
  feed(app, 1000, [](int) { return 0.03; }, /*start=*/100.0);
  EXPECT_GT(app.playback_point(), before);
  EXPECT_GT(app.late(), 0u);
  EXPECT_GE(app.max_point(), app.playback_point());
}

TEST(Playback, AdaptiveMovesDownAfterImprovement) {
  PlaybackApp app({.mode = PlaybackApp::Mode::kAdaptive,
                   .initial_point = 0.5,
                   .quantile = 0.99,
                   .margin = 0.0,
                   .adapt_interval = 16,
                   .window = 128});
  feed(app, 500, [](int) { return 0.08; });
  const double high = app.playback_point();
  feed(app, 2000, [](int) { return 0.005; }, /*start=*/100.0);
  EXPECT_LT(app.playback_point(), high);
  EXPECT_LT(app.playback_point(), 0.01);
}

// --- replay clock (persistent-timer buffer drain) -------------------------

TEST(PlaybackClock, DrainsAtPlaybackInstants) {
  sim::Simulator sim;
  PlaybackApp app({.mode = PlaybackApp::Mode::kRigid, .initial_point = 0.1});
  app.attach_clock(sim);
  // Deliver three on-time packets from inside the simulation; each is
  // buffered until creation + 0.1.
  for (int i = 0; i < 3; ++i) {
    const sim::Time created = 0.02 * i;
    sim.at(created + 0.01, [&app, created, i] {
      app.on_packet(net::make_packet(1, static_cast<std::uint64_t>(i), 0, 1,
                                     created),
                    created + 0.01);
    });
  }
  sim.run_until(0.05);
  EXPECT_EQ(app.buffered(), 3u);  // all awaiting their instants
  sim.run_until(0.105);           // first instant: 0.0 + 0.1
  EXPECT_EQ(app.played(), 1u);
  EXPECT_EQ(app.buffered(), 2u);
  sim.run();
  EXPECT_EQ(app.played(), 3u);
  EXPECT_EQ(app.buffered(), 0u);
  EXPECT_EQ(app.max_buffered(), 3u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.14);  // last instant: 0.04 + 0.1
}

TEST(PlaybackClock, LatePacketsAreNotBuffered) {
  sim::Simulator sim;
  PlaybackApp app({.mode = PlaybackApp::Mode::kRigid, .initial_point = 0.05});
  app.attach_clock(sim);
  sim.at(0.2, [&app] {
    app.on_packet(net::make_packet(1, 0, 0, 1, /*created=*/0.0), 0.2);
  });
  sim.run();
  EXPECT_EQ(app.late(), 1u);
  EXPECT_EQ(app.buffered(), 0u);
  EXPECT_EQ(app.played(), 0u);
}

TEST(PlaybackClock, SteadyStreamReArmsOneTimer) {
  sim::Simulator sim;
  PlaybackApp app({.mode = PlaybackApp::Mode::kRigid, .initial_point = 0.03});
  app.attach_clock(sim);
  // A CBR-ish delivery process entirely inside the sim: 200 packets, 5 ms
  // apart, constant 10 ms network delay.
  for (int i = 0; i < 200; ++i) {
    const sim::Time created = 0.005 * i;
    sim.at(created + 0.01, [&app, created, i] {
      app.on_packet(net::make_packet(1, static_cast<std::uint64_t>(i), 0, 1,
                                     created),
                    created + 0.01);
    });
  }
  sim.run();
  EXPECT_EQ(app.played(), 200u);
  EXPECT_EQ(app.buffered(), 0u);
  // 20 ms of buffering at one packet per 5 ms: about 4 resident packets.
  EXPECT_GE(app.max_buffered(), 4u);
  EXPECT_LE(app.max_buffered(), 5u);
}

TEST(Playback, HistoryTimestampsMonotone) {
  PlaybackApp app({.mode = PlaybackApp::Mode::kAdaptive,
                   .initial_point = 0.1,
                   .quantile = 0.9,
                   .margin = 0.0,
                   .adapt_interval = 8,
                   .window = 64});
  sim::Rng rng(9);
  feed(app, 2000, [&](int) { return rng.exponential(0.02); });
  double prev = -1;
  for (const auto& change : app.history()) {
    EXPECT_GE(change.at, prev);
    prev = change.at;
  }
}

}  // namespace
}  // namespace ispn::app
