// Short-horizon integration runs of the paper's three experiments,
// asserting the qualitative *shape* the paper reports.  Full 600 s runs
// live in bench/; these use 60-120 s, enough for stable means and tails.

#include "core/experiments.h"

#include <gtest/gtest.h>

namespace ispn::core {
namespace {

constexpr sim::Duration kShort = 120.0;

TEST(Table1, FifoTailBelowWfqTailAtSameUtilization) {
  const auto fifo = run_single_link(SchedKind::kFifo, 10, kShort, 42);
  const auto wfq = run_single_link(SchedKind::kWfq, 10, kShort, 42);

  double fifo_p999 = 0, wfq_p999 = 0, fifo_mean = 0, wfq_mean = 0;
  for (int f = 0; f < 10; ++f) {
    fifo_p999 += fifo.p999_pkt[static_cast<std::size_t>(f)] / 10.0;
    wfq_p999 += wfq.p999_pkt[static_cast<std::size_t>(f)] / 10.0;
    fifo_mean += fifo.mean_pkt[static_cast<std::size_t>(f)] / 10.0;
    wfq_mean += wfq.mean_pkt[static_cast<std::size_t>(f)] / 10.0;
  }
  // Means are comparable (within 25%); the FIFO tail is clearly smaller.
  EXPECT_NEAR(fifo_mean / wfq_mean, 1.0, 0.25);
  EXPECT_LT(fifo_p999, 0.85 * wfq_p999);
}

TEST(Table1, UtilizationNearPaperValue) {
  const auto fifo = run_single_link(SchedKind::kFifo, 10, kShort, 7);
  // Paper: 83.5% (85% nominal minus ~2% source drops).
  EXPECT_NEAR(fifo.utilization, 0.835, 0.03);
  EXPECT_GT(fifo.source_drop_rate, 0.001);
  EXPECT_LT(fifo.source_drop_rate, 0.08);
}

TEST(Table1, MeanDelaysSmallRelativeToTails) {
  const auto fifo = run_single_link(SchedKind::kFifo, 10, kShort, 11);
  for (int f = 0; f < 10; ++f) {
    EXPECT_LT(fifo.mean_pkt[static_cast<std::size_t>(f)],
              fifo.p999_pkt[static_cast<std::size_t>(f)]);
  }
}

TEST(Table2, JitterGrowsWithPathLengthUnderAllSchedulers) {
  for (const SchedKind kind :
       {SchedKind::kFifo, SchedKind::kWfq, SchedKind::kFifoPlus}) {
    const auto result = run_chain(kind, kShort, 17);
    double p999_len1 = 0, p999_len4 = 0;
    int n1 = 0, n4 = 0;
    for (const auto& f : result.flows) {
      if (f.path_len == 1) {
        p999_len1 += f.p999_pkt;
        ++n1;
      } else if (f.path_len == 4) {
        p999_len4 += f.p999_pkt;
        ++n4;
      }
    }
    ASSERT_GT(n1, 0);
    ASSERT_GT(n4, 0);
    EXPECT_GT(p999_len4 / n4, p999_len1 / n1) << to_string(kind);
  }
}

TEST(Table2, FifoPlusFlattensTailGrowthVsFifo) {
  const auto fifo = run_chain(SchedKind::kFifo, kShort, 23);
  const auto plus = run_chain(SchedKind::kFifoPlus, kShort, 23);

  auto tail_by_len = [](const ChainResult& r, int len) {
    double sum = 0;
    int n = 0;
    for (const auto& f : r.flows) {
      if (f.path_len == len) {
        sum += f.p999_pkt;
        ++n;
      }
    }
    return sum / n;
  };
  // On long paths FIFO+ must beat FIFO's tail; the paper's Table 2 shows
  // 45.25 vs 58.13 at length 4 (a ~20% reduction).
  EXPECT_LT(tail_by_len(plus, 4), 0.95 * tail_by_len(fifo, 4));
  // Short paths pay at most a small penalty.
  EXPECT_LT(tail_by_len(plus, 1), 1.35 * tail_by_len(fifo, 1));
}

TEST(Table2, AllLinksNearPaperUtilization) {
  const auto result = run_chain(SchedKind::kFifo, kShort, 29);
  ASSERT_EQ(result.link_utilization.size(), 4u);
  for (double u : result.link_utilization) EXPECT_NEAR(u, 0.835, 0.04);
}

TEST(Table3, GuaranteedFlowsStayUnderPgBounds) {
  Table3Options options;
  options.seconds = kShort;
  options.seed = 31;
  const auto result = run_table3(options);
  for (const auto& f : result.flows) {
    if (f.role == Table3Role::kGuaranteedPeak ||
        f.role == Table3Role::kGuaranteedAverage) {
      EXPECT_LT(f.max_pkt, f.pg_bound_pkt)
          << to_string(f.role) << " len " << f.path_len;
    }
  }
}

TEST(Table3, PeakClockedDelaysWellBelowAverageClocked) {
  Table3Options options;
  options.seconds = kShort;
  options.seed = 37;
  const auto result = run_table3(options);
  double peak_mean = 0, avg_mean = 0;
  int np = 0, na = 0;
  for (const auto& f : result.flows) {
    if (f.role == Table3Role::kGuaranteedPeak) {
      peak_mean += f.mean_pkt;
      ++np;
    } else if (f.role == Table3Role::kGuaranteedAverage) {
      avg_mean += f.mean_pkt;
      ++na;
    }
  }
  EXPECT_LT(peak_mean / np, 0.5 * (avg_mean / na));
}

TEST(Table3, HighPriorityPredictedBeatsLowPriority) {
  Table3Options options;
  options.seconds = kShort;
  options.seed = 41;
  const auto result = run_table3(options);
  double high = 0, low = 0;
  int nh = 0, nl = 0;
  for (const auto& f : result.flows) {
    if (f.role == Table3Role::kPredictedHigh) {
      high += f.p999_pkt;
      ++nh;
    } else if (f.role == Table3Role::kPredictedLow) {
      low += f.p999_pkt;
      ++nl;
    }
  }
  EXPECT_LT(high / nh, low / nl);
}

TEST(Table3, LinksNearlyFullyUtilizedWithLowDatagramLoss) {
  Table3Options options;
  options.seconds = kShort;
  options.seed = 43;
  const auto result = run_table3(options);
  ASSERT_EQ(result.link_utilization.size(), 4u);
  for (double u : result.link_utilization) EXPECT_GT(u, 0.95);
  for (double u : result.realtime_utilization) EXPECT_NEAR(u, 0.835, 0.04);
  EXPECT_GT(result.tcp_delivered, 10000u);
  EXPECT_LT(result.datagram_drop_rate, 0.05);
}

}  // namespace
}  // namespace ispn::core
