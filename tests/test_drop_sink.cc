// Drop-sink contract across the whole discipline family: the sink is
// invoked exactly once per victim, victims keep their own arrival stamp
// (enqueued_at), Port::drops() agrees with the sink, and dropped packets
// flow back into their PacketPool.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.h"
#include "net/packet_pool.h"
#include "net/topology.h"
#include "sched/edd.h"
#include "sched/fifo.h"
#include "sched/fifo_plus.h"
#include "sched/jitter_edd.h"
#include "sched/priority.h"
#include "sched/unified.h"
#include "sched/virtual_clock.h"
#include "sched/wfq.h"
#include "sched_test_util.h"

namespace ispn::sched {
namespace {

using sched_test::datagram_pkt;
using sched_test::pkt;
using sched_test::predicted_pkt;

/// Installs a counting sink once (as a Port would), offers `offered`
/// packets from a private pool, and checks the accounting identity
///   sink invocations + packets still queued == packets offered
/// plus that every victim reached the pool again (outstanding() ==
/// queued).  `capacity` is whatever cap the scheduler was built with.
void expect_sink_accounting(Scheduler& q, std::size_t capacity,
                            std::size_t offered) {
  net::PacketPool pool;
  std::uint64_t sink_calls = 0;
  q.set_drop_sink([&sink_calls](net::PacketPtr victim, sim::Time) {
    ASSERT_NE(victim, nullptr);
    ++sink_calls;
  });
  for (std::uint64_t i = 0; i < offered; ++i) {
    auto p = net::make_packet(pool, static_cast<net::FlowId>(i % 3), i, 0, 1,
                              0.0);
    p->enqueued_at = 0.0;
    p->service = net::ServiceClass::kPredicted;
    q.enqueue(std::move(p), 0.0);
  }
  EXPECT_EQ(sink_calls + q.packets(), offered);
  EXPECT_EQ(q.packets(), capacity);
  EXPECT_EQ(pool.outstanding(), q.packets());  // victims returned to pool
  while (!q.empty()) (void)q.dequeue(1e9);
  EXPECT_EQ(pool.outstanding(), 0u);
  q.set_drop_sink({});
}

TEST(DropSink, Fifo) {
  FifoScheduler q(4);
  expect_sink_accounting(q, 4, 10);
}

TEST(DropSink, FifoPlus) {
  FifoPlusScheduler q(FifoPlusScheduler::Config{4});
  expect_sink_accounting(q, 4, 10);
}

TEST(DropSink, Edd) {
  EddScheduler q({4, 0.1});
  expect_sink_accounting(q, 4, 10);
}

TEST(DropSink, JitterEdd) {
  JitterEddScheduler q({4, 0.1});
  expect_sink_accounting(q, 4, 10);
}

TEST(DropSink, VirtualClock) {
  VirtualClockScheduler q({4, 1e5});
  expect_sink_accounting(q, 4, 10);
}

TEST(DropSink, Wfq) {
  WfqScheduler q(WfqScheduler::Config{1e6, 4, 1.0});
  expect_sink_accounting(q, 4, 10);
}

TEST(DropSink, Unified) {
  UnifiedScheduler q(UnifiedScheduler::Config{1e6, 4, 2});
  expect_sink_accounting(q, 4, 10);
}

TEST(DropSink, PriorityForwardsSinkToChildren) {
  std::vector<std::unique_ptr<Scheduler>> children;
  children.push_back(std::make_unique<FifoScheduler>(2));
  children.push_back(std::make_unique<FifoScheduler>(2));
  PriorityScheduler q(std::move(children));
  std::uint64_t sink_calls = 0;
  q.set_drop_sink(
      [&sink_calls](net::PacketPtr, sim::Time) { ++sink_calls; });
  for (std::uint64_t i = 0; i < 10; ++i) {
    q.enqueue(predicted_pkt(1, i, 0.0, /*priority=*/0), 0.0);
  }
  EXPECT_EQ(sink_calls, 8u);  // level 0 holds 2, the other 8 dropped
  EXPECT_EQ(q.packets(), 2u);
}

// Re-installing the sink (e.g. a test harness after a Port) must not
// double-count: only the installed sink sees victims.
TEST(DropSink, ReinstallReplacesSink) {
  FifoScheduler q(1);
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  q.set_drop_sink([&first](net::PacketPtr, sim::Time) { ++first; });
  q.enqueue(pkt(0, 0, 0.0), 0.0);
  q.enqueue(pkt(0, 1, 0.0), 0.0);  // dropped -> first sink
  q.set_drop_sink([&second](net::PacketPtr, sim::Time) { ++second; });
  q.enqueue(pkt(0, 2, 0.0), 0.0);  // dropped -> second sink
  EXPECT_EQ(first, 1u);
  EXPECT_EQ(second, 1u);
}

// --- drop-accounting symmetry under pushout ------------------------------
//
// When an arrival evicts a *different* victim, three stamps must hold:
// the victim reaches the sink with its own arrival time in enqueued_at,
// the accepted arrival keeps the stamp of the instant it was offered, and
// the drop counters see exactly one drop.

TEST(DropSink, PushoutVictimKeepsOwnStampWfq) {
  WfqScheduler q(WfqScheduler::Config{1e6, 3, 1.0});
  std::vector<net::PacketPtr> victims;
  q.set_drop_sink([&victims](net::PacketPtr v, sim::Time) {
    victims.push_back(std::move(v));
  });
  // Flow 1 backlog, stamped at distinct instants.
  q.enqueue(pkt(1, 0, 0.00), 0.00);
  q.enqueue(pkt(1, 1, 0.01), 0.01);
  q.enqueue(pkt(1, 2, 0.02), 0.02);
  // Flow 2 arrival at t=0.03 overflows; the victim is flow 1's newest.
  q.enqueue(pkt(2, 0, 0.03), 0.03);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0]->flow, 1);
  EXPECT_EQ(victims[0]->seq, 2u);
  EXPECT_DOUBLE_EQ(victims[0]->enqueued_at, 0.02);  // its own arrival
  // The offered packet was accepted with its offer-time stamp intact.
  bool found_flow2 = false;
  while (!q.empty()) {
    auto p = q.dequeue(1.0);
    if (p->flow == 2) {
      found_flow2 = true;
      EXPECT_DOUBLE_EQ(p->enqueued_at, 0.03);
    }
  }
  EXPECT_TRUE(found_flow2);
}

TEST(DropSink, PushoutVictimKeepsOwnStampUnified) {
  UnifiedScheduler q(UnifiedScheduler::Config{1e6, 2, 2});
  std::vector<net::PacketPtr> victims;
  q.set_drop_sink([&victims](net::PacketPtr v, sim::Time) {
    victims.push_back(std::move(v));
  });
  // A datagram queued at t=0.0 is the pushout victim when a predicted
  // arrival at t=0.2 overflows the shared buffer.
  q.enqueue(datagram_pkt(9, 0, 0.0), 0.0);
  q.enqueue(predicted_pkt(1, 0, 0.1, 0), 0.1);
  q.enqueue(predicted_pkt(1, 1, 0.2, 0), 0.2);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0]->flow, 9);
  EXPECT_DOUBLE_EQ(victims[0]->enqueued_at, 0.0);
  auto first = q.dequeue(1.0);
  ASSERT_NE(first, nullptr);
  EXPECT_DOUBLE_EQ(first->enqueued_at, 0.1);
  auto second = q.dequeue(1.0);
  ASSERT_NE(second, nullptr);
  EXPECT_DOUBLE_EQ(second->enqueued_at, 0.2);
}

// End-to-end through a Port: the port stamps the offered packet before the
// scheduler sees it, drop hooks and drops() count sink invocations, and a
// pushed-out victim does not disturb the accepted packet's waiting-time
// measurement.
TEST(DropSink, PortDropAccountingMatchesSink) {
  net::Network net;
  const auto topo = net::build_dumbbell(net, 1e6, [] {
    return std::make_unique<WfqScheduler>(WfqScheduler::Config{1e6, 3, 1.0});
  });
  net.attach_stats_sink(1, topo.right_host);
  net.attach_stats_sink(2, topo.right_host);

  std::vector<std::pair<net::FlowId, double>> dropped;  // (flow, enqueued_at)
  net::Port* bottleneck = net.port(topo.left_switch, topo.right_switch);
  ASSERT_NE(bottleneck, nullptr);
  bottleneck->add_drop_hook([&dropped](const net::Packet& p, sim::Time) {
    dropped.push_back({p.flow, p.enqueued_at});
  });
  double flow2_enqueued_at = -1;
  bottleneck->add_tx_hook([&flow2_enqueued_at](const net::Packet& p,
                                               sim::Time) {
    if (p.flow == 2) flow2_enqueued_at = p.enqueued_at;
  });

  // Five flow-1 packets at t=0: one in flight, three queued, one pushed
  // out (the newest of flow 1, stamped 0.0).
  for (std::uint64_t i = 0; i < 5; ++i) {
    net.host(topo.left_host)
        .inject(net::make_packet(1, i, topo.left_host, topo.right_host, 0.0));
  }
  // A flow-2 packet offered mid-transmission evicts another flow-1 packet.
  net.sim().at(0.0005, [&net, &topo] {
    net.host(topo.left_host)
        .inject(net::make_packet(2, 0, topo.left_host, topo.right_host,
                                 0.0005));
  });
  net.sim().run();

  EXPECT_EQ(bottleneck->drops(), 2u);
  ASSERT_EQ(dropped.size(), 2u);
  for (const auto& [flow, stamp] : dropped) {
    EXPECT_EQ(flow, 1);  // pushout never hit the offered flow-2 packet
    EXPECT_DOUBLE_EQ(stamp, 0.0);
  }
  EXPECT_EQ(net.stats(1).net_drops, 2u);
  EXPECT_EQ(net.stats(2).net_drops, 0u);
  EXPECT_EQ(net.stats(2).received, 1u);
  // The accepted packet kept the stamp of its offer instant.
  EXPECT_DOUBLE_EQ(flow2_enqueued_at, 0.0005);
}

// --- §10 stale discards fold into the same accounting --------------------
//
// A dequeue-time stale discard must be indistinguishable, accounting-wise,
// from an enqueue-time drop: one DropSink invocation, one Port::drops()
// increment, one per-flow net_drops increment.  Exercised at a fan-in
// merge point where two switches feed the discarding bottleneck port.

TEST(DropSink, StaleDiscardCountsAsDropStandalone) {
  UnifiedScheduler q(UnifiedScheduler::Config{1e6, 10, 2, 1.0 / 4096.0, true,
                                              /*stale=*/0.05});
  q.set_predicted_priority(1, 0);
  std::uint64_t sink_calls = 0;
  q.set_drop_sink([&sink_calls](net::PacketPtr v, sim::Time) {
    ASSERT_NE(v, nullptr);
    EXPECT_GT(v->jitter_offset, 0.05);
    ++sink_calls;
  });
  auto stale = predicted_pkt(1, 0, 0.0, 0, /*jitter_offset=*/0.2);
  auto fresh = predicted_pkt(1, 1, 0.0, 0);
  q.enqueue(std::move(fresh), 0.0);
  q.enqueue(std::move(stale), 0.0);
  auto p = q.dequeue(0.01);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->seq, 1u);
  EXPECT_EQ(q.stale_discards(), 1u);
  EXPECT_EQ(sink_calls, 1u);  // the discard reached the sink
  q.set_drop_sink({});
}

TEST(DropSink, FifoPlusStaleDiscardCountsAsDrop) {
  FifoPlusScheduler::Config config;
  config.capacity_pkts = 10;
  config.stale_offset_threshold = 0.05;
  FifoPlusScheduler q(config);
  std::uint64_t sink_calls = 0;
  q.set_drop_sink(
      [&sink_calls](net::PacketPtr, sim::Time) { ++sink_calls; });
  q.enqueue(predicted_pkt(1, 0, 0.0, 0, 0.2), 0.0);
  q.enqueue(predicted_pkt(1, 1, 0.0, 0), 0.0);
  auto p = q.dequeue(0.01);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(q.stale_discards(), 1u);
  EXPECT_EQ(sink_calls, 1u);
  q.set_drop_sink({});
}

TEST(DropSink, MergePointStaleDiscardsAgreeAcrossPortSinkAndStats) {
  net::Network net;
  // Infinitely fast feed links (rate 0): the merge port's unified
  // scheduler is the only queueing — and hence the only discarding — hop.
  const auto topo = net::build_fan_in(net, 2, /*feed_rate=*/0, 1e6, [] {
    UnifiedScheduler::Config cfg;
    cfg.link_rate = 1e6;
    cfg.capacity_pkts = 200;
    cfg.stale_offset_threshold = 0.05;
    return std::make_unique<UnifiedScheduler>(cfg);
  });
  net.attach_stats_sink(1, topo.sink_host);
  net.attach_stats_sink(2, topo.sink_host);

  net::Port* merge_port = net.port(topo.merge_switch, topo.sink_switch);
  ASSERT_NE(merge_port, nullptr);
  std::uint64_t merge_hook_drops = 0;
  merge_port->add_drop_hook([&merge_hook_drops](const net::Packet& p,
                                                sim::Time) {
    EXPECT_GT(p.jitter_offset, 0.05);  // only stale discards drop here
    ++merge_hook_drops;
  });

  // Two flows converge on the merge port; flow 1's packets carry absurd
  // accumulated jitter offsets and are discarded at dequeue, flow 2's are
  // clean.  Arrivals are spaced so nothing overflows: every loss in this
  // scenario is a dequeue-time stale discard.
  for (std::uint64_t i = 0; i < 10; ++i) {
    const double t = 0.002 * static_cast<double>(i);
    net.sim().at(t, [&net, &topo, i, t] {
      auto p = net::make_packet(1, i, topo.src_hosts[0], topo.sink_host, t);
      p->service = net::ServiceClass::kPredicted;
      p->jitter_offset = 0.5;
      net.host(topo.src_hosts[0]).inject(std::move(p));
    });
    net.sim().at(t + 0.001, [&net, &topo, i, t] {
      auto p = net::make_packet(2, i, topo.src_hosts[1], topo.sink_host,
                                t + 0.001);
      p->service = net::ServiceClass::kPredicted;
      net.host(topo.src_hosts[1]).inject(std::move(p));
    });
  }
  net.sim().run();

  // All of flow 1 was discarded as stale at the merge port; flow 2 sailed
  // through.  drops() == drop hook == per-flow stats, stale included.
  EXPECT_EQ(net.stats(1).received, 0u);
  EXPECT_EQ(net.stats(1).net_drops, 10u);
  EXPECT_EQ(net.stats(2).received, 10u);
  EXPECT_EQ(net.stats(2).net_drops, 0u);
  EXPECT_EQ(merge_port->drops(), 10u);
  EXPECT_EQ(merge_hook_drops, 10u);
  const auto& sched =
      static_cast<UnifiedScheduler&>(merge_port->scheduler());
  EXPECT_EQ(sched.stale_discards(), 10u);
}

}  // namespace
}  // namespace ispn::sched
