#include "sched/virtual_clock.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sched_test_util.h"
#include "traffic/cbr_source.h"

namespace ispn::sched {
namespace {

using sched_test::offer;
using sched_test::pkt;

TEST(VirtualClock, EmptyDequeueReturnsNull) {
  VirtualClockScheduler q({10, 1e5});
  EXPECT_EQ(q.dequeue(0.0), nullptr);
}

TEST(VirtualClock, SingleFlowIsFifo) {
  VirtualClockScheduler q({100, 1e5});
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(offer(q, pkt(0, i, 0.0), 0.0).empty());
  }
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(q.dequeue(0.0)->seq, i);
}

TEST(VirtualClock, AuxVcAdvancesByServiceTime) {
  VirtualClockScheduler q({100, 1e5});
  q.add_flow(1, 1000.0);
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  EXPECT_DOUBLE_EQ(q.aux_vc(1), 1.0);  // 1000 bits / 1000 b/s
  ASSERT_TRUE(offer(q, pkt(1, 1, 0.0), 0.0).empty());
  EXPECT_DOUBLE_EQ(q.aux_vc(1), 2.0);
}

TEST(VirtualClock, IdleFlowResetsToRealTime) {
  VirtualClockScheduler q({100, 1e5});
  q.add_flow(1, 1000.0);
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  (void)q.dequeue(0.0);
  // Long idle: auxVC restarts from `now`, not from the stale clock.
  ASSERT_TRUE(offer(q, pkt(1, 1, 100.0), 100.0).empty());
  EXPECT_DOUBLE_EQ(q.aux_vc(1), 101.0);
}

TEST(VirtualClock, OverdrawingFlowFallsBehind) {
  VirtualClockScheduler q({1000, 1e5});
  q.add_flow(1, 500.0);   // entitled to half
  q.add_flow(2, 500.0);
  // Flow 1 dumps 6 packets at t=0; flow 2 sends one.  Flow 1's later
  // stamps (2, 4, ..., 12 s) fall behind flow 2's (2 s).
  for (std::uint64_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(offer(q, pkt(1, i, 0.0), 0.0).empty());
  }
  ASSERT_TRUE(offer(q, pkt(2, 0, 0.0), 0.0).empty());
  EXPECT_EQ(q.dequeue(0.0)->flow, 1);  // stamp 2 (tie, earlier arrival)
  EXPECT_EQ(q.dequeue(0.0)->flow, 2);  // stamp 2
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.dequeue(0.0)->flow, 1);
}

TEST(VirtualClock, UnregisteredFlowUsesDefaultRate) {
  VirtualClockScheduler q({100, 2000.0});
  ASSERT_TRUE(offer(q, pkt(7, 0, 0.0), 0.0).empty());
  EXPECT_DOUBLE_EQ(q.aux_vc(7), 0.5);
}

TEST(VirtualClock, OverflowDropsLargestStamp) {
  VirtualClockScheduler q({1, 1e5});
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  auto dropped = offer(q, pkt(1, 1, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->seq, 1u);  // same flow: the newest stamp
}

TEST(VirtualClock, OverflowPunishesOverdrawnFlow) {
  VirtualClockScheduler q({2, 1e5});
  q.add_flow(1, 1000.0);
  q.add_flow(2, 1000.0);
  // Flow 2 overdraws: its stamps run far ahead of real time.
  ASSERT_TRUE(offer(q, pkt(2, 0, 0.0), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(2, 1, 0.0), 0.0).empty());
  // Conforming flow 1 arrives: flow 2's newest (stamp 2.0) is evicted.
  auto dropped = offer(q, pkt(1, 0, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->flow, 2);
  EXPECT_EQ(dropped[0]->seq, 1u);
}

TEST(VirtualClock, ProtectsConformingFlowFromFlood) {
  // End-to-end: same scenario as the WFQ isolation test; VirtualClock was
  // designed exactly for this (preallocated rates).
  net::Network net;
  VirtualClockScheduler* sched = nullptr;
  const auto topo = net::build_dumbbell(net, 1e6, [&] {
    auto q = std::make_unique<VirtualClockScheduler>(
        VirtualClockScheduler::Config{100000, 1e5});
    sched = q.get();
    return q;
  });
  sched->add_flow(1, 5e5);
  sched->add_flow(2, 5e5);
  net::Host& src = net.host(topo.left_host);
  auto emit = [&src](net::PacketPtr p) { src.inject(std::move(p)); };
  traffic::CbrSource good(net.sim(), {.rate_pps = 250.0, .packet_bits = 1000},
                          1, topo.left_host, topo.right_host, emit,
                          &net.stats(1));
  traffic::CbrSource flood(net.sim(),
                           {.rate_pps = 2000.0, .packet_bits = 1000}, 2,
                           topo.left_host, topo.right_host, emit,
                           &net.stats(2));
  net.attach_stats_sink(1, topo.right_host);
  net.attach_stats_sink(2, topo.right_host);
  good.start(0);
  flood.start(0);
  net.sim().run_until(20.0);
  EXPECT_LT(net.stats(1).queueing_delay.max(), 0.005);
  EXPECT_GT(net.stats(2).queueing_delay.max(), 0.05);
}

}  // namespace
TEST(VirtualClock, AcceptsPacketsWithoutAFlowId) {
  VirtualClockScheduler q(VirtualClockScheduler::Config{10, 1000.0});
  auto mk = [](net::FlowId f, std::uint64_t seq) {
    return net::make_packet(f, seq, 0, 1, 0.0);
  };
  ASSERT_TRUE(offer(q, mk(net::kNoFlow, 0), 0.0).empty());
  ASSERT_TRUE(offer(q, mk(net::kNoFlow, 1), 0.0).empty());
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_NE(q.dequeue(0.0), nullptr);
  EXPECT_NE(q.dequeue(0.0), nullptr);
  EXPECT_TRUE(q.empty());
}

}  // namespace ispn::sched
