// Semantics of the persistent sim::Timer across both event backends:
// re-arm while pending (supersede in place), disarm, FIFO interleaving
// with one-shot schedule() at the same instant, slab-slot pinning across
// firings, and move/destroy lifecycle.

#include "sim/timer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "sim/simulator.h"

namespace ispn::sim {
namespace {

class TimerBackendTest : public ::testing::TestWithParam<EventBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, TimerBackendTest,
                         ::testing::Values(EventBackend::kHeap,
                                           EventBackend::kWheel,
                                           EventBackend::kAuto),
                         [](const auto& info) {
                           switch (info.param) {
                             case EventBackend::kHeap: return "heap";
                             case EventBackend::kWheel: return "wheel";
                             case EventBackend::kAuto: return "auto";
                           }
                           return "unknown";
                         });

TEST_P(TimerBackendTest, FiresAtArmedInstant) {
  Simulator sim(GetParam());
  std::vector<Time> fired;
  Timer t(sim, [&] { fired.push_back(sim.now()); });
  EXPECT_FALSE(t.pending());
  t.arm_at(1.5);
  EXPECT_TRUE(t.pending());
  EXPECT_DOUBLE_EQ(t.expiry(), 1.5);
  sim.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0], 1.5);
  EXPECT_FALSE(t.pending());
}

TEST_P(TimerBackendTest, RearmWhilePendingSupersedes) {
  Simulator sim(GetParam());
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_at(1.0);
  t.arm_at(3.0);  // supersedes: must NOT fire at 1.0
  sim.run_until(2.0);
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(t.pending());
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST_P(TimerBackendTest, RearmEarlierMovesFiring) {
  Simulator sim(GetParam());
  std::vector<Time> fired;
  Timer t(sim, [&] { fired.push_back(sim.now()); });
  t.arm_at(5.0);
  t.arm_at(2.0);
  sim.run();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_DOUBLE_EQ(fired[0], 2.0);
}

TEST_P(TimerBackendTest, DisarmPreventsFiring) {
  Simulator sim(GetParam());
  int fired = 0;
  Timer t(sim, [&] { ++fired; });
  t.arm_at(1.0);
  EXPECT_TRUE(t.disarm());
  EXPECT_FALSE(t.pending());
  EXPECT_FALSE(t.disarm());  // second disarm: nothing pending
  sim.run();
  EXPECT_EQ(fired, 0);
  EXPECT_TRUE(sim.idle());
}

TEST_P(TimerBackendTest, DisarmAfterFireReturnsFalse) {
  Simulator sim(GetParam());
  Timer t(sim, [] {});
  t.arm_at(1.0);
  sim.run();
  EXPECT_FALSE(t.disarm());
}

TEST_P(TimerBackendTest, ActionCanRearmItself) {
  Simulator sim(GetParam());
  int fired = 0;
  Timer t(sim, [&] {
    EXPECT_FALSE(t.pending());  // idle by the time the action runs
    if (++fired < 5) t.arm_after(0.25);
  });
  t.arm_at(0.25);
  sim.run();
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 1.25);
}

// Timers share the global scheduling sequence with one-shot events, so
// arms and schedules at the same instant fire in call order — re-arming
// does not lose a timer its place semantics.
TEST_P(TimerBackendTest, SameInstantFifoWithOneShots) {
  Simulator sim(GetParam());
  std::vector<int> order;
  Timer a(sim, [&] { order.push_back(1); });
  Timer b(sim, [&] { order.push_back(3); });
  a.arm_at(1.0);                          // first
  sim.at(1.0, [&] { order.push_back(2); });  // second
  b.arm_at(1.0);                          // third
  sim.at(1.0, [&] { order.push_back(4); });  // fourth
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
}

TEST_P(TimerBackendTest, RearmAtSameInstantMovesToBackOfLine) {
  Simulator sim(GetParam());
  std::vector<int> order;
  Timer a(sim, [&] { order.push_back(1); });
  a.arm_at(1.0);
  sim.at(1.0, [&] { order.push_back(2); });
  // Re-arming at the same instant supersedes the original arm, so the
  // timer now fires after the one-shot — identical to cancel+reschedule.
  a.arm_at(1.0);
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{2, 1}));
}

// The heart of the perf claim: a timer keeps its slab slot across
// firings, so steady re-arming neither grows the slab nor churns the
// free list.
TEST_P(TimerBackendTest, RearmKeepsSlabSlotPinned) {
  Simulator sim(GetParam());
  int fired = 0;
  Timer t(sim, [&] {
    ++fired;
    t.arm_after(1e-3);
  });
  t.arm_at(1e-3);
  for (int i = 0; i < 100; ++i) sim.step();
  const std::size_t slots = sim.queue().slab_slots();
  const std::size_t free_slots = sim.queue().free_slots();
  for (int i = 0; i < 10000; ++i) sim.step();
  EXPECT_EQ(fired, 10100);
  EXPECT_EQ(sim.queue().slab_slots(), slots);
  EXPECT_EQ(sim.queue().free_slots(), free_slots);
}

TEST_P(TimerBackendTest, DestroyReleasesSlotAndCancelsArm) {
  Simulator sim(GetParam());
  int fired = 0;
  const std::size_t base_slots = sim.queue().slab_slots();
  {
    Timer t(sim, [&] { ++fired; });
    t.arm_at(1.0);
    EXPECT_EQ(sim.queue().size(), 1u);
  }
  EXPECT_EQ(sim.queue().size(), 0u);  // pending arm died with the timer
  sim.run();
  EXPECT_EQ(fired, 0);
  // The slot returned to the free list: a fresh timer reuses it.
  Timer t2(sim, [] {});
  EXPECT_EQ(sim.queue().slab_slots(), std::max<std::size_t>(base_slots, 1));
}

TEST_P(TimerBackendTest, MoveKeepsPendingArmAlive) {
  Simulator sim(GetParam());
  int fired = 0;
  Timer a(sim, [&] { ++fired; });
  a.arm_at(1.0);
  Timer b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  EXPECT_TRUE(b.pending());
  sim.run();
  EXPECT_EQ(fired, 1);

  // Move-assignment over a live timer releases the target's slot.
  Timer c(sim, [&] { ++fired; });
  c.arm_at(2.0);
  Timer d(sim, [&] { ++fired; });
  c = std::move(d);  // the 2.0 arm dies with c's old state
  sim.run();
  EXPECT_EQ(fired, 1);
}

// A timer armed far in the future coexists with near-term churn (the
// wheel keeps it in a high level / overflow until due).
TEST_P(TimerBackendTest, FarFutureArmSurvivesChurn) {
  Simulator sim(GetParam());
  int fired = 0;
  Timer far(sim, [&] { ++fired; });
  far.arm_at(1e6);  // ~11.6 days of simulated time
  std::uint64_t ticks = 0;
  Timer churn(sim, [&] {
    if (++ticks < 1000) churn.arm_after(0.5);
  });
  churn.arm_at(0.5);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 1e6);
}

TEST_P(TimerBackendTest, MakeTimerFactory) {
  Simulator sim(GetParam());
  int fired = 0;
  auto t = sim.make_timer([&] { ++fired; });
  t.arm_after(0.5);
  sim.run();
  EXPECT_EQ(fired, 1);
}

}  // namespace
}  // namespace ispn::sim
