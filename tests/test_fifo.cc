#include "sched/fifo.h"

#include <gtest/gtest.h>

#include "sched_test_util.h"

namespace ispn::sched {
namespace {

using sched_test::offer;
using sched_test::pkt;

TEST(Fifo, EmptyDequeueReturnsNull) {
  FifoScheduler q(10);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.dequeue(0.0), nullptr);
}

TEST(Fifo, FirstInFirstOut) {
  FifoScheduler q(10);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(offer(q, pkt(0, i, 0.0), 0.0).empty());
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(q.dequeue(0.0)->seq, i);
  }
}

TEST(Fifo, InterleavedFlowsKeepArrivalOrder) {
  FifoScheduler q(10);
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(2, 0, 0.1), 0.1).empty());
  ASSERT_TRUE(offer(q, pkt(1, 1, 0.2), 0.2).empty());
  EXPECT_EQ(q.dequeue(0.3)->flow, 1);
  EXPECT_EQ(q.dequeue(0.3)->flow, 2);
  EXPECT_EQ(q.dequeue(0.3)->flow, 1);
}

TEST(Fifo, TailDropAtCapacity) {
  FifoScheduler q(2);
  EXPECT_TRUE(offer(q, pkt(0, 0, 0.0), 0.0).empty());
  EXPECT_TRUE(offer(q, pkt(0, 1, 0.0), 0.0).empty());
  auto dropped = offer(q, pkt(0, 2, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->seq, 2u);  // the arriving packet is the victim
  EXPECT_EQ(q.packets(), 2u);
}

TEST(Fifo, BacklogBitsTracked) {
  FifoScheduler q(10);
  ASSERT_TRUE(offer(q, pkt(0, 0, 0.0, 1000), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(0, 1, 0.0, 500), 0.0).empty());
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 1500.0);
  (void)q.dequeue(0.0);
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 500.0);
}

TEST(Fifo, DrainThenReuse) {
  FifoScheduler q(2);
  ASSERT_TRUE(offer(q, pkt(0, 0, 0.0), 0.0).empty());
  (void)q.dequeue(0.0);
  EXPECT_TRUE(q.empty());
  ASSERT_TRUE(offer(q, pkt(0, 1, 1.0), 1.0).empty());
  EXPECT_EQ(q.dequeue(1.0)->seq, 1u);
}

}  // namespace
}  // namespace ispn::sched
