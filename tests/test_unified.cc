#include "sched/unified.h"

#include <gtest/gtest.h>

#include "sched_test_util.h"

namespace ispn::sched {
namespace {

using sched_test::offer;
using sched_test::datagram_pkt;
using sched_test::guaranteed_pkt;
using sched_test::predicted_pkt;

UnifiedScheduler::Config cfg(double link = 1e6, std::size_t cap = 200,
                             int classes = 2) {
  UnifiedScheduler::Config c;
  c.link_rate = link;
  c.capacity_pkts = cap;
  c.num_predicted_classes = classes;
  return c;
}

TEST(Unified, Flow0WeightShrinksWithGuaranteedFlows) {
  UnifiedScheduler q(cfg(1e6));
  EXPECT_DOUBLE_EQ(q.flow0_weight(), 1e6);
  q.add_guaranteed(1, 2e5);
  q.add_guaranteed(2, 3e5);
  EXPECT_DOUBLE_EQ(q.flow0_weight(), 5e5);
  EXPECT_DOUBLE_EQ(q.guaranteed_rate(), 5e5);
}

TEST(Unified, EmptyDequeueReturnsNull) {
  UnifiedScheduler q(cfg());
  EXPECT_EQ(q.dequeue(0.0), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(Unified, DatagramOnlyBehavesFifo) {
  UnifiedScheduler q(cfg());
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(offer(q, datagram_pkt(9, i, 0.0), 0.0).empty());
  }
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(q.dequeue(0.0)->seq, i);
}

TEST(Unified, PredictedClassesAreStrictPriorities) {
  UnifiedScheduler q(cfg());
  q.set_predicted_priority(1, 1);  // low
  q.set_predicted_priority(2, 0);  // high
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 1), 0.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(2, 0, 0.1, 0), 0.1).empty());
  ASSERT_TRUE(offer(q, datagram_pkt(3, 0, 0.2), 0.2).empty());
  EXPECT_EQ(q.dequeue(0.3)->flow, 2);  // high class
  EXPECT_EQ(q.dequeue(0.3)->flow, 1);  // low class
  EXPECT_EQ(q.dequeue(0.3)->flow, 3);  // datagram last
}

TEST(Unified, UnregisteredPredictedUsesPacketPriority) {
  UnifiedScheduler q(cfg());
  ASSERT_TRUE(offer(q, predicted_pkt(5, 0, 0.0, 1), 0.0).empty());
  EXPECT_EQ(q.class_packets(1), 1u);
  ASSERT_TRUE(offer(q, predicted_pkt(6, 0, 0.0, 0), 0.0).empty());
  EXPECT_EQ(q.class_packets(0), 1u);
}

TEST(Unified, GuaranteedIsolatedFromPredictedBurst) {
  // Guaranteed flow with half the link; flow 0 flooded.  Simulate the link
  // by dequeuing at exact link pace and check interleaving: the guaranteed
  // flow must get ~its share even while flow 0 is saturated.
  UnifiedScheduler q(cfg(1000.0, 10000));
  q.add_guaranteed(1, 500.0);
  q.set_predicted_priority(2, 0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(offer(q, guaranteed_pkt(1, i, 0.0), 0.0).empty());
    ASSERT_TRUE(offer(q, predicted_pkt(2, i, 0.0, 0), 0.0).empty());
  }
  int guaranteed_in_first_10 = 0;
  for (int i = 0; i < 10; ++i) {
    if (q.dequeue(0.0)->flow == 1) ++guaranteed_in_first_10;
  }
  EXPECT_EQ(guaranteed_in_first_10, 5);  // exactly its 50% share
}

TEST(Unified, Flow0PacketsGateOnTags) {
  // With one guaranteed flow hogging (small flow 0 weight), flow 0 packets
  // depart at roughly flow0_weight/link of the departures.
  UnifiedScheduler q(cfg(1000.0, 10000));
  q.add_guaranteed(1, 900.0);
  for (std::uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(offer(q, guaranteed_pkt(1, i, 0.0), 0.0).empty());
  }
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(offer(q, datagram_pkt(2, i, 0.0), 0.0).empty());
  }
  // First 10 departures: flow 0 should get about 1 (weight 10%).
  int flow0 = 0;
  for (int i = 0; i < 10; ++i) {
    if (q.dequeue(0.0)->flow == 2) ++flow0;
  }
  EXPECT_LE(flow0, 2);
  EXPECT_GE(flow0, 1);
}

TEST(Unified, PushoutPrefersDatagramVictim) {
  UnifiedScheduler q(cfg(1e6, 3));
  q.set_predicted_priority(1, 0);
  ASSERT_TRUE(offer(q, datagram_pkt(9, 0, 0.0), 0.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 0), 0.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(1, 1, 0.0, 0), 0.0).empty());
  // Buffer full; a new predicted arrival pushes out the datagram packet.
  auto dropped = offer(q, predicted_pkt(1, 2, 0.0, 0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->flow, 9);
  EXPECT_EQ(q.packets(), 3u);
}

TEST(Unified, PushoutFallsBackToLowestPredictedClass) {
  UnifiedScheduler q(cfg(1e6, 2));
  q.set_predicted_priority(1, 0);
  q.set_predicted_priority(2, 1);
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 0), 0.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(2, 0, 0.0, 1), 0.0).empty());
  auto dropped = offer(q, predicted_pkt(1, 1, 0.0, 0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->flow, 2);  // lowest class loses
}

TEST(Unified, ArrivingDatagramIsOwnVictimWhenFull) {
  UnifiedScheduler q(cfg(1e6, 2));
  q.set_predicted_priority(1, 0);
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 0), 0.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(1, 1, 0.0, 0), 0.0).empty());
  auto dropped = offer(q, datagram_pkt(9, 0, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->flow, 9);
}

TEST(Unified, FifoPlusOffsetsUpdatedWithinClass) {
  auto c = cfg();
  c.avg_gain = 0.5;
  UnifiedScheduler q(c);
  q.set_predicted_priority(1, 0);
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 1.0, 0), 1.0).empty());
  auto p = q.dequeue(1.4);  // waits 0.4; first sample primes the average
  EXPECT_NEAR(p->jitter_offset, 0.0, 1e-12);
  ASSERT_TRUE(offer(q, predicted_pkt(1, 1, 2.0, 0), 2.0).empty());
  auto p2 = q.dequeue(2.0);  // waits 0; avg -> 0.2; offset -0.2
  EXPECT_NEAR(p2->jitter_offset, -0.2, 1e-12);
}

TEST(Unified, FifoPlusDisabledLeavesOffsets) {
  auto c = cfg();
  c.fifo_plus = false;
  UnifiedScheduler q(c);
  q.set_predicted_priority(1, 0);
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 1.0, 0), 1.0).empty());
  EXPECT_DOUBLE_EQ(q.dequeue(1.4)->jitter_offset, 0.0);
}

TEST(Unified, WaitObserverSeesClassAndDatagram) {
  UnifiedScheduler q(cfg());
  q.set_predicted_priority(1, 1);
  std::vector<std::pair<int, double>> seen;
  q.set_wait_observer([&](int klass, sim::Duration wait, sim::Time) {
    seen.emplace_back(klass, wait);
  });
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 1), 0.0).empty());
  ASSERT_TRUE(offer(q, datagram_pkt(2, 0, 0.0), 0.0).empty());
  (void)q.dequeue(0.5);
  (void)q.dequeue(0.7);
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].first, 1);  // predicted class 1
  EXPECT_NEAR(seen[0].second, 0.5, 1e-12);
  EXPECT_EQ(seen[1].first, 2);  // datagram level (K = 2)
  EXPECT_NEAR(seen[1].second, 0.7, 1e-12);
}

TEST(Unified, TagPacketInvariantSurvivesPushoutChurn) {
  UnifiedScheduler q(cfg(1e6, 5));
  q.set_predicted_priority(1, 0);
  // Fill, overflow repeatedly, then drain fully without tripping asserts.
  std::uint64_t seq = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) {
      (void)offer(q, predicted_pkt(1, seq++, 0.0, 0), 0.0);
      (void)offer(q, datagram_pkt(2, seq++, 0.0), 0.0);
    }
    for (int i = 0; i < 3; ++i) (void)q.dequeue(0.1);
  }
  while (!q.empty()) ASSERT_NE(q.dequeue(0.2), nullptr);
  EXPECT_EQ(q.packets(), 0u);
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 0.0);
}

TEST(Unified, VirtualTimeFrozenWhenIdle) {
  UnifiedScheduler q(cfg());
  const double v = q.virtual_time(0.0);
  EXPECT_DOUBLE_EQ(q.virtual_time(50.0), v);
}

TEST(Unified, GuaranteedFifoWithinFlow) {
  UnifiedScheduler q(cfg());
  q.add_guaranteed(1, 1e5);
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(offer(q, guaranteed_pkt(1, i, 0.0), 0.0).empty());
  }
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(q.dequeue(0.0)->seq, i);
}

}  // namespace
}  // namespace ispn::sched
