// Golden-trace regression suite for the scenario layer.
//
// Extends the PR 3/4 differential harnesses up the stack: a WHOLE
// scenario — fabric generation, live measurement-based admission, flow
// churn, per-hop entry/exit traffic — must be byte-identical across
// every event-ordering backend (heap / timing wheel) crossed with every
// virtual-time ordering backend (heap / calendar queue).  Three small
// seeded scenarios run under all combinations; the full PacketTracer
// record stream (every transmit, drop, delivery with bit-exact
// timestamps and delay fields) and the complete admission decision log
// are hashed and compared against the (kHeap, kHeap) reference, along
// with every conservation counter and the simulator's event count.
//
// Hashes rather than full record diffs keep failure output small; when a
// divergence appears, test_event_backend_diff / test_order_backend_diff
// localise it to a layer.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "net/tracer.h"
#include "scenario/runner.h"

namespace ispn {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_trace(const std::vector<net::PacketTracer::Record>& recs) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : recs) {
    h = fnv1a(h, &r.time, sizeof r.time);
    const auto event = static_cast<std::uint8_t>(r.event);
    h = fnv1a(h, &event, sizeof event);
    h = fnv1a(h, &r.flow, sizeof r.flow);
    h = fnv1a(h, &r.seq, sizeof r.seq);
    h = fnv1a(h, &r.node, sizeof r.node);
    h = fnv1a(h, &r.queueing_delay, sizeof r.queueing_delay);
    h = fnv1a(h, &r.jitter_offset, sizeof r.jitter_offset);
  }
  return h;
}

struct GoldenRun {
  std::uint64_t trace_hash = 0;
  std::uint64_t decision_hash = 0;
  std::size_t records = 0;
  std::size_t drops = 0;
  std::uint64_t events = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t net_drops = 0;
  std::uint64_t flows_admitted = 0;
  std::uint64_t flows_rejected = 0;
  std::uint64_t flows_preempted = 0;
  std::uint64_t links_failed = 0;
  std::uint64_t flows_rerouted = 0;
  std::uint64_t flows_degraded = 0;
  std::uint64_t flows_orphaned = 0;
  std::uint64_t failed_link_drops = 0;
  // Fault-plane counters (PR 9): crash/brown-out/loss activity and the two
  // ledger buckets they drain into are part of the golden contract too.
  std::uint64_t node_failure_drops = 0;
  std::uint64_t fault_drops = 0;
  std::uint64_t nodes_crashed = 0;
  std::uint64_t nodes_recovered = 0;
  std::uint64_t brownouts = 0;
  std::uint64_t loss_episodes = 0;
  std::uint64_t flows_restored = 0;
  std::uint64_t restore_attempts = 0;
  std::uint64_t invariant_violations = 0;
  // Responsive-traffic counters (PR 10): the congestion-control stacks and
  // the DEC-TR-506 mark/echo/backoff loop are golden surface too.
  std::uint64_t cc_flows = 0;
  std::uint64_t cc_marks = 0;
  std::uint64_t cc_mark_samples = 0;
  std::uint64_t cc_echoes = 0;
  std::uint64_t cc_backoffs = 0;
  std::uint64_t tcp_segments = 0;
  std::uint64_t tcp_retransmits = 0;
  std::uint64_t tcp_timeouts = 0;
  std::uint64_t tcp_reorder_timeouts = 0;
};

GoldenRun run_one(scenario::ScenarioSpec spec, sim::EventBackend event_backend,
                  sched::OrderBackend order_backend) {
  spec.event_backend = event_backend;
  spec.order_backend = order_backend;
  scenario::ScenarioRunner runner(std::move(spec));
  net::PacketTracer tracer(1u << 22);
  runner.set_tracer(&tracer);
  runner.prepare();
  tracer.attach(runner.net());  // ports exist once the fabric is built
  const scenario::ScenarioReport report = runner.run();
  tracer.finalize();  // merge per-domain buffers (no-op on the classic path)

  EXPECT_FALSE(tracer.truncated());
  EXPECT_TRUE(report.conserved());
  GoldenRun out;
  out.trace_hash = hash_trace(tracer.records());
  out.decision_hash = report.decision_hash();
  out.records = tracer.records().size();
  out.drops = tracer.count(net::PacketTracer::Event::kDrop);
  out.events = report.events;
  out.generated = report.generated;
  out.delivered = report.delivered;
  out.net_drops = report.net_drops;
  out.flows_admitted = report.flows_admitted;
  out.flows_rejected = report.flows_rejected;
  out.flows_preempted = report.flows_preempted;
  out.links_failed = report.links_failed;
  out.flows_rerouted = report.flows_rerouted;
  out.flows_degraded = report.flows_degraded;
  out.flows_orphaned = report.flows_orphaned;
  out.failed_link_drops = report.failed_link_drops;
  out.node_failure_drops = report.node_failure_drops;
  out.fault_drops = report.fault_drops;
  out.nodes_crashed = report.nodes_crashed;
  out.nodes_recovered = report.nodes_recovered;
  out.brownouts = report.brownouts;
  out.loss_episodes = report.loss_episodes;
  out.flows_restored = report.flows_restored;
  out.restore_attempts = report.restore_attempts;
  out.invariant_violations = report.invariant_violations;
  out.cc_flows = report.cc_flows;
  out.cc_marks = report.cc_marks;
  out.cc_mark_samples = report.cc_mark_samples;
  out.cc_echoes = report.cc_echoes;
  out.cc_backoffs = report.cc_backoffs;
  out.tcp_segments = report.tcp_segments;
  out.tcp_retransmits = report.tcp_retransmits;
  out.tcp_timeouts = report.tcp_timeouts;
  out.tcp_reorder_timeouts = report.tcp_reorder_timeouts;
  return out;
}

void expect_equal(const GoldenRun& ref, const GoldenRun& got,
                  const std::string& what) {
  EXPECT_EQ(ref.records, got.records) << what;
  EXPECT_EQ(ref.trace_hash, got.trace_hash) << what;
  EXPECT_EQ(ref.decision_hash, got.decision_hash) << what;
  EXPECT_EQ(ref.events, got.events) << what;
  EXPECT_EQ(ref.generated, got.generated) << what;
  EXPECT_EQ(ref.delivered, got.delivered) << what;
  EXPECT_EQ(ref.net_drops, got.net_drops) << what;
  EXPECT_EQ(ref.flows_admitted, got.flows_admitted) << what;
  EXPECT_EQ(ref.flows_rejected, got.flows_rejected) << what;
  EXPECT_EQ(ref.flows_preempted, got.flows_preempted) << what;
  EXPECT_EQ(ref.links_failed, got.links_failed) << what;
  EXPECT_EQ(ref.flows_rerouted, got.flows_rerouted) << what;
  EXPECT_EQ(ref.flows_degraded, got.flows_degraded) << what;
  EXPECT_EQ(ref.flows_orphaned, got.flows_orphaned) << what;
  EXPECT_EQ(ref.failed_link_drops, got.failed_link_drops) << what;
  EXPECT_EQ(ref.node_failure_drops, got.node_failure_drops) << what;
  EXPECT_EQ(ref.fault_drops, got.fault_drops) << what;
  EXPECT_EQ(ref.nodes_crashed, got.nodes_crashed) << what;
  EXPECT_EQ(ref.nodes_recovered, got.nodes_recovered) << what;
  EXPECT_EQ(ref.brownouts, got.brownouts) << what;
  EXPECT_EQ(ref.loss_episodes, got.loss_episodes) << what;
  EXPECT_EQ(ref.flows_restored, got.flows_restored) << what;
  EXPECT_EQ(ref.restore_attempts, got.restore_attempts) << what;
  EXPECT_EQ(ref.invariant_violations, got.invariant_violations) << what;
  EXPECT_EQ(ref.cc_flows, got.cc_flows) << what;
  EXPECT_EQ(ref.cc_marks, got.cc_marks) << what;
  EXPECT_EQ(ref.cc_mark_samples, got.cc_mark_samples) << what;
  EXPECT_EQ(ref.cc_echoes, got.cc_echoes) << what;
  EXPECT_EQ(ref.cc_backoffs, got.cc_backoffs) << what;
  EXPECT_EQ(ref.tcp_segments, got.tcp_segments) << what;
  EXPECT_EQ(ref.tcp_retransmits, got.tcp_retransmits) << what;
  EXPECT_EQ(ref.tcp_timeouts, got.tcp_timeouts) << what;
  EXPECT_EQ(ref.tcp_reorder_timeouts, got.tcp_reorder_timeouts) << what;
}

void golden(const scenario::ScenarioSpec& spec, const char* label) {
  const GoldenRun ref =
      run_one(spec, sim::EventBackend::kHeap, sched::OrderBackend::kHeap);
  EXPECT_GT(ref.records, 500u) << label << ": workload too small to prove "
                                  "anything";
  struct Combo {
    sim::EventBackend event;
    sched::OrderBackend order;
    const char* name;
  };
  const Combo combos[] = {
      {sim::EventBackend::kHeap, sched::OrderBackend::kCalendar,
       "heap x calendar"},
      {sim::EventBackend::kWheel, sched::OrderBackend::kHeap,
       "wheel x heap"},
      {sim::EventBackend::kWheel, sched::OrderBackend::kCalendar,
       "wheel x calendar"},
      {sim::EventBackend::kAuto, sched::OrderBackend::kAuto, "auto x auto"},
  };
  for (const Combo& combo : combos) {
    const GoldenRun got = run_one(spec, combo.event, combo.order);
    expect_equal(ref, got,
                 std::string(label) + " under " + combo.name);
  }
}

// --- the golden scenarios -------------------------------------------------

TEST(ScenarioGolden, FanInTreeByteIdenticalAcrossBackends) {
  scenario::ScenarioSpec spec = scenario::preset("fan_in");
  scenario::apply_scale(spec, "small");
  spec.tree_width = 4;
  spec.arrival_rate = 6.0;
  spec.mean_hold = 2.0;
  spec.seed = 11;
  golden(spec, "fan-in tree");
}

TEST(ScenarioGolden, OverloadedParkingLotByteIdenticalAcrossBackends) {
  scenario::ScenarioSpec spec = scenario::preset("parking_lot");
  scenario::apply_scale(spec, "small");
  // Deliberate overload so the golden trace covers drops and pushout.
  spec.arrival_rate = 0;  // deterministic batch
  spec.target_flows = 24;
  spec.avg_rate_pps = 150.0;
  spec.source = scenario::SourceKind::kPoisson;
  spec.p_guaranteed = 0.15;
  spec.p_predicted = 0.35;
  spec.seed = 12;

  // The reference run must actually drop (the trace would be vacuous
  // otherwise).
  const GoldenRun ref =
      run_one(spec, sim::EventBackend::kHeap, sched::OrderBackend::kHeap);
  EXPECT_GT(ref.drops, 0u) << "parking lot never overloaded";
  golden(spec, "overloaded parking lot");
}

TEST(ScenarioGolden, AdmissionChurnChainByteIdenticalAcrossBackends) {
  scenario::ScenarioSpec spec = scenario::preset("churn");
  scenario::apply_scale(spec, "small");
  spec.seed = 13;

  const GoldenRun ref =
      run_one(spec, sim::EventBackend::kHeap, sched::OrderBackend::kHeap);
  EXPECT_GT(ref.flows_rejected, 0u) << "churn never exercised rejection";
  golden(spec, "admission churn chain");
}

TEST(ScenarioGolden, MeshWithFailuresByteIdenticalAcrossBackends) {
  scenario::ScenarioSpec spec = scenario::preset("failure");
  spec.run_seconds = 20.0;
  spec.seed = 14;

  const GoldenRun ref =
      run_one(spec, sim::EventBackend::kHeap, sched::OrderBackend::kHeap);
  EXPECT_GT(ref.links_failed, 1u) << "schedule produced <2 failures";
  EXPECT_GT(ref.flows_rerouted, 0u) << "no flow ever rerouted";
  EXPECT_GT(ref.failed_link_drops, 0u)
      << "no packet was ever caught on a failing link";
  golden(spec, "mesh with failures");
}

TEST(ScenarioGolden, ChaosFaultPlaneByteIdenticalAcrossBackends) {
  // The full fault plane at once: switch crashes, capacity brown-outs,
  // transient loss episodes, link flapping, degrade-to-datagram shedding
  // and backoff-driven re-admission, with the invariant monitor auditing
  // throughout.  Every fault event is drawn at prepare() and quantized to
  // the control grid, so the whole run — including both new drop buckets
  // and every fault counter — must stay byte-identical across backends.
  scenario::ScenarioSpec spec = scenario::preset("chaos");
  spec.seed = 17;

  const GoldenRun ref =
      run_one(spec, sim::EventBackend::kHeap, sched::OrderBackend::kHeap);
  EXPECT_GT(ref.nodes_crashed, 0u) << "no switch ever crashed";
  EXPECT_GT(ref.brownouts, 0u) << "no brown-out ever started";
  EXPECT_GT(ref.loss_episodes, 0u) << "no loss episode ever started";
  EXPECT_GT(ref.node_failure_drops, 0u)
      << "no packet was ever caught in a crashing switch";
  EXPECT_GT(ref.fault_drops, 0u) << "transient loss never destroyed a packet";
  EXPECT_GT(ref.restore_attempts, 0u) << "re-admission backoff never fired";
  EXPECT_EQ(ref.invariant_violations, 0u) << "the monitor flagged the run";
  golden(spec, "chaos fault plane");
}

TEST(ScenarioGolden, CcMixWithBinaryFeedbackByteIdenticalAcrossBackends) {
  // All three service classes live at once, with the best-effort flows
  // driven by a round-robin mix of the reno/bbr/rack stacks and the
  // DEC-TR-506 feedback loop marking at the bottleneneck's datagram
  // class.  The responsive counters (marks, echoes, backoffs, segment
  // and retransmit totals) join the golden contract.
  scenario::ScenarioSpec spec = scenario::preset("parking_lot");
  scenario::apply_scale(spec, "small");
  spec.arrival_rate = 0;  // deterministic batch
  spec.target_flows = 18;
  spec.avg_rate_pps = 150.0;
  spec.source = scenario::SourceKind::kPoisson;
  spec.p_guaranteed = 0.2;
  spec.p_predicted = 0.3;
  spec.cc = scenario::CcKind::kMix;
  spec.binary_feedback = true;
  spec.seed = 18;

  const GoldenRun ref =
      run_one(spec, sim::EventBackend::kHeap, sched::OrderBackend::kHeap);
  EXPECT_GT(ref.cc_flows, 2u) << "mix never attached all three stacks";
  EXPECT_GT(ref.cc_marks, 0u) << "the bottleneck never marked";
  EXPECT_GT(ref.cc_echoes, 0u) << "no mark was ever echoed";
  EXPECT_GT(ref.tcp_segments, 0u);
  golden(spec, "cc mix with binary feedback");
}

TEST(ScenarioGolden, ShardedFanInByteIdenticalAcrossBackends) {
  // The sharded execution model (per-switch domains, conservative
  // lookahead windows) is its own deterministic reference: the golden
  // invariant must hold across event/order backends there too.  Shard-
  // count invariance itself is test_shard_diff's job; here shards=2
  // pins the sharded path against backend variation.
  scenario::ScenarioSpec spec = scenario::preset("fan_in");
  scenario::apply_scale(spec, "small");
  spec.tree_depth = 3;
  spec.arrival_rate = 6.0;
  spec.mean_hold = 2.0;
  spec.shards = 2;
  spec.seed = 16;
  golden(spec, "sharded fan-in tree");
}

TEST(ScenarioGolden, ExplicitFailureSchedulePreemptPolicy) {
  // Two explicit overlapping outages on the center switch's links, with
  // preempt (no degrade): refused re-offers tear flows down, and the
  // decision log must still agree byte-for-byte across backends.  The
  // chosen links cannot partition the 3x3 mesh, so the acceptance
  // invariant holds exactly: every admitted flow ends re-admitted,
  // degraded or preempted — never orphaned.
  scenario::ScenarioSpec spec = scenario::preset("failure");
  spec.run_seconds = 16.0;
  spec.link_failure_rate = 0;  // explicit schedule only
  spec.reroute_policy = scenario::ReroutePolicy::kPreempt;
  spec.seed = 15;
  // Node ids: switches and hosts alternate in creation order; switch
  // (r,c) of the 3x3 mesh is node 2*(3r+c).
  spec.link_failures.push_back({2, 8, 3.0, 9.0});    // (0,1)<->(1,1)
  spec.link_failures.push_back({6, 8, 5.0, -1.0});   // (1,0)<->(1,1)
  spec.validate();

  const GoldenRun ref =
      run_one(spec, sim::EventBackend::kHeap, sched::OrderBackend::kHeap);
  EXPECT_EQ(ref.links_failed, 2u);
  EXPECT_GT(ref.flows_rerouted, 0u) << "no flow ever rerouted";
  EXPECT_EQ(ref.flows_orphaned, 0u)
      << "non-partitioning failures orphaned a flow";
  golden(spec, "explicit failures, preempt policy");
}

}  // namespace
}  // namespace ispn
