// PacketPool: recycling, reset-on-acquire, and scheduler interaction.

#include "net/packet_pool.h"

#include <gtest/gtest.h>

#include <vector>

#include "sched/fifo.h"
#include "sched/wfq.h"

namespace ispn::net {
namespace {

TEST(PacketPool, AcquireHandsOutDistinctPackets) {
  PacketPool pool;
  PacketPtr a = pool.acquire();
  PacketPtr b = pool.acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a.get(), b.get());
  EXPECT_EQ(pool.outstanding(), 2u);
}

TEST(PacketPool, ReleaseRecyclesStorage) {
  PacketPool pool;
  PacketPtr a = pool.acquire();
  Packet* raw = a.get();
  a.reset();  // returns to the pool via the deleter
  EXPECT_EQ(pool.outstanding(), 0u);
  PacketPtr b = pool.acquire();
  EXPECT_EQ(b.get(), raw);  // LIFO reuse of the freed slot
}

TEST(PacketPool, ResetOnAcquireClearsEveryMeasurementField) {
  PacketPool pool;
  {
    PacketPtr p = pool.acquire();
    // Dirty every field a recycled packet could leak.
    p->flow = 7;
    p->seq = 99;
    p->service = ServiceClass::kGuaranteed;
    p->priority = 3;
    p->jitter_offset = 1.25;
    p->less_important = true;
    p->enqueued_at = 4.5;
    p->queueing_delay = 0.75;
    p->hops = 11;
    p->is_ack = true;
    p->ack_seq = 1234;
  }
  PacketPtr q = pool.acquire();
  EXPECT_EQ(q->flow, kNoFlow);
  EXPECT_EQ(q->seq, 0u);
  EXPECT_EQ(q->service, ServiceClass::kDatagram);
  EXPECT_EQ(q->priority, 0);
  EXPECT_DOUBLE_EQ(q->jitter_offset, 0.0);
  EXPECT_FALSE(q->less_important);
  EXPECT_DOUBLE_EQ(q->enqueued_at, 0.0);
  EXPECT_DOUBLE_EQ(q->queueing_delay, 0.0);
  EXPECT_EQ(q->hops, 0);
  EXPECT_FALSE(q->is_ack);
  EXPECT_EQ(q->ack_seq, 0u);
}

TEST(PacketPool, MakePacketSetsIdentityOnRecycledStorage) {
  PacketPool pool;
  {
    PacketPtr p = make_packet(pool, 3, 17, 1, 2, 5.5, 2000.0);
    p->hops = 9;  // dirty a field make_packet does not set
  }
  PacketPtr q = make_packet(pool, 4, 18, 2, 3, 6.5);
  EXPECT_EQ(q->flow, 4);
  EXPECT_EQ(q->seq, 18u);
  EXPECT_EQ(q->src, 2);
  EXPECT_EQ(q->dst, 3);
  EXPECT_DOUBLE_EQ(q->created_at, 6.5);
  EXPECT_DOUBLE_EQ(q->size_bits, sim::paper::kPacketBits);
  EXPECT_EQ(q->hops, 0);  // no leak from the recycled packet
}

TEST(PacketPool, SlabStopsGrowingOnceWheelIsCovered) {
  PacketPool pool;
  const std::size_t slots_after_warmup = [&] {
    std::vector<PacketPtr> held;
    for (int i = 0; i < 100; ++i) held.push_back(pool.acquire());
    return pool.slots();
  }();
  // Cycle far more packets than the wheel depth; storage must not grow.
  for (int round = 0; round < 10000; ++round) {
    std::vector<PacketPtr> held;
    for (int i = 0; i < 100; ++i) held.push_back(pool.acquire());
  }
  EXPECT_EQ(pool.slots(), slots_after_warmup);
  EXPECT_EQ(pool.outstanding(), 0u);
}

TEST(PacketPool, ClonePacketCopiesFields) {
  PacketPtr p = make_packet(5, 6, 0, 1, 2.5);
  p->jitter_offset = 0.125;
  p->hops = 3;
  PacketPtr copy = clone_packet(*p);
  EXPECT_NE(copy.get(), p.get());
  EXPECT_EQ(copy->flow, 5);
  EXPECT_EQ(copy->seq, 6u);
  EXPECT_DOUBLE_EQ(copy->jitter_offset, 0.125);
  EXPECT_EQ(copy->hops, 3);
}

// Schedulers that drop packets on overflow hand them back through the
// normal PacketPtr path, so dropped packets must flow back into the pool
// and recycle cleanly.
TEST(PacketPool, DroppedPacketsReturnToThePool) {
  PacketPool pool;
  sched::FifoScheduler fifo(4);
  const std::size_t before = pool.outstanding();
  for (std::uint64_t i = 0; i < 16; ++i) {
    // Tail drop: overflowing arrivals hit the (absent) drop sink and are
    // destroyed there, returning straight to the pool.
    fifo.enqueue(make_packet(pool, 0, i, 0, 1, 0.0), 0.0);
  }
  EXPECT_EQ(fifo.packets(), 4u);
  EXPECT_EQ(pool.outstanding(), before + 4);
  while (!fifo.empty()) (void)fifo.dequeue(0.0);
  EXPECT_EQ(pool.outstanding(), before);
}

TEST(PacketPool, PushoutVictimsRecycleThroughWfq) {
  PacketPool pool;
  sched::WfqScheduler wfq(sched::WfqScheduler::Config{1e6, 8, 1.0});
  for (std::uint64_t i = 0; i < 64; ++i) {
    wfq.enqueue(make_packet(pool, static_cast<FlowId>(i % 4), i, 0, 1, 0.0),
                0.0);
  }
  EXPECT_EQ(wfq.packets(), 8u);
  while (!wfq.empty()) (void)wfq.dequeue(1e9);
  EXPECT_EQ(pool.outstanding(), 0u);
}

}  // namespace
}  // namespace ispn::net
