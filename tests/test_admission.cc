// Admission control: the paper's two criteria, both estimation modes,
// commit/release bookkeeping.

#include "core/admission.h"

#include <gtest/gtest.h>

namespace ispn::core {
namespace {

constexpr sim::Rate kMu = 1e6;
const std::vector<sim::Duration> kTargets = {0.016, 0.16};
const LinkId kLink{0, 1};

FlowSpec guaranteed(sim::Rate r, net::FlowId id = 1) {
  FlowSpec s;
  s.flow = id;
  s.service = net::ServiceClass::kGuaranteed;
  s.guaranteed = GuaranteedSpec{r};
  return s;
}

FlowSpec predicted(sim::Rate r, sim::Bits b, sim::Duration target,
                   net::FlowId id = 2) {
  FlowSpec s;
  s.flow = id;
  s.service = net::ServiceClass::kPredicted;
  s.predicted = PredictedSpec{{r, b}, target, 0.01};
  return s;
}

AdmissionController parameter_controller() {
  AdmissionController ac({AdmissionController::Mode::kParameterBased, 0.1});
  ac.register_link(kLink, kMu, kTargets);
  return ac;
}

TEST(Admission, DatagramAlwaysAdmitted) {
  auto ac = parameter_controller();
  FlowSpec s;
  s.service = net::ServiceClass::kDatagram;
  EXPECT_TRUE(ac.request(s, {kLink}, 0.0).admitted);
}

TEST(Admission, GuaranteedWithinQuotaAdmitted) {
  auto ac = parameter_controller();
  const auto c = ac.request(guaranteed(5e5), {kLink}, 0.0);
  EXPECT_TRUE(c.admitted);
  EXPECT_DOUBLE_EQ(ac.guaranteed_rate(kLink), 5e5);
}

TEST(Admission, GuaranteedBeyondQuotaRejected) {
  auto ac = parameter_controller();
  EXPECT_TRUE(ac.request(guaranteed(5e5, 1), {kLink}, 0.0).admitted);
  const auto c = ac.request(guaranteed(5e5, 2), {kLink}, 0.0);
  EXPECT_FALSE(c.admitted);
  EXPECT_FALSE(c.reason.empty());
}

TEST(Admission, DatagramQuotaCriterion) {
  // Criterion 1: r + nu must stay under 0.9 mu.
  auto ac = parameter_controller();
  EXPECT_TRUE(ac.request(guaranteed(8e5, 1), {kLink}, 0.0).admitted);
  // 0.8 committed; another 0.15 would hit 0.95 > 0.9.
  EXPECT_FALSE(
      ac.request(predicted(1.5e5, 1000.0, 0.2, 2), {kLink}, 0.0).admitted);
  // 0.05 more still fits (0.85 < 0.9) if burst is tiny.
  EXPECT_TRUE(
      ac.request(predicted(5e4, 100.0, 0.2, 3), {kLink}, 0.0).admitted);
}

TEST(Admission, PredictedPicksCheapestAdequateClass) {
  auto ac = parameter_controller();
  // Per-hop target 0.2 over one link: class 1 (0.16) suffices.
  auto c = ac.request(predicted(1e5, 1000.0, 0.2, 1), {kLink}, 0.0);
  ASSERT_TRUE(c.admitted);
  ASSERT_EQ(c.priority_per_hop.size(), 1u);
  EXPECT_EQ(c.priority_per_hop[0], 1);
  EXPECT_NEAR(*c.advertised_bound, 0.16, 1e-12);
  // Tighter request: needs class 0.
  auto c2 = ac.request(predicted(1e5, 1000.0, 0.03, 2), {kLink}, 0.0);
  ASSERT_TRUE(c2.admitted);
  EXPECT_EQ(c2.priority_per_hop[0], 0);
}

TEST(Admission, PredictedImpossibleTargetRejected) {
  auto ac = parameter_controller();
  const auto c = ac.request(predicted(1e5, 1000.0, 0.001, 1), {kLink}, 0.0);
  EXPECT_FALSE(c.admitted);
  EXPECT_NE(c.reason.find("no class"), std::string::npos);
}

TEST(Admission, BurstProtectionCriterion) {
  // Criterion 2: b must fit within (D_j - d_j) * headroom for all classes
  // at or below the requested priority.
  auto ac = parameter_controller();
  // headroom ~ 0.9e6 after r=0; class 0 slack 0.016 => b < ~14.4k bits.
  EXPECT_TRUE(
      ac.request(predicted(1e4, 10000.0, 0.016, 1), {kLink}, 0.0).admitted);
  EXPECT_FALSE(
      ac.request(predicted(1e4, 20000.0, 0.016, 2), {kLink}, 0.0).admitted);
  // The same 20k burst is fine at the loose class (slack 0.16 => 144k).
  EXPECT_TRUE(
      ac.request(predicted(1e4, 20000.0, 0.16, 3), {kLink}, 0.0).admitted);
}

TEST(Admission, GuaranteedCheckedAgainstAllClasses) {
  // A guaranteed flow is higher priority than every class, so its rate
  // counts against them all via criterion 1 (its b is not declared).
  auto ac = parameter_controller();
  EXPECT_TRUE(ac.request(guaranteed(8.5e5, 1), {kLink}, 0.0).admitted);
  EXPECT_FALSE(ac.request(guaranteed(6e4, 2), {kLink}, 0.0).admitted);
}

TEST(Admission, MultiLinkPathAllMustPass) {
  AdmissionController ac({AdmissionController::Mode::kParameterBased, 0.1});
  const LinkId l1{0, 1}, l2{1, 2};
  ac.register_link(l1, kMu, kTargets);
  ac.register_link(l2, kMu, kTargets);
  // Load l2 heavily.
  EXPECT_TRUE(ac.request(guaranteed(8e5, 1), {l2}, 0.0).admitted);
  // A path crossing both fails because of l2.
  EXPECT_FALSE(
      ac.request(predicted(2e5, 1000.0, 0.4, 2), {l1, l2}, 0.0).admitted);
  // l1 alone is fine.
  EXPECT_TRUE(
      ac.request(predicted(2e5, 1000.0, 0.2, 3), {l1}, 0.0).admitted);
}

TEST(Admission, AdvertisedBoundSumsPerHopTargets) {
  AdmissionController ac({AdmissionController::Mode::kParameterBased, 0.1});
  const LinkId l1{0, 1}, l2{1, 2}, l3{2, 3};
  for (const auto& l : {l1, l2, l3}) ac.register_link(l, kMu, kTargets);
  const auto c =
      ac.request(predicted(1e5, 1000.0, 0.6, 1), {l1, l2, l3}, 0.0);
  ASSERT_TRUE(c.admitted);
  EXPECT_NEAR(*c.advertised_bound, 3 * 0.16, 1e-12);
}

TEST(Admission, ReleaseRestoresCapacity) {
  auto ac = parameter_controller();
  const auto spec = guaranteed(8e5);
  EXPECT_TRUE(ac.request(spec, {kLink}, 0.0).admitted);
  EXPECT_FALSE(ac.request(guaranteed(8e5, 2), {kLink}, 0.0).admitted);
  ac.release(spec, {kLink});
  EXPECT_DOUBLE_EQ(ac.guaranteed_rate(kLink), 0.0);
  EXPECT_TRUE(ac.request(guaranteed(8e5, 2), {kLink}, 0.0).admitted);
}

TEST(Admission, MeasurementModeUsesMeasuredUtilization) {
  LinkMeasurement meas({kMu, 2, 10.0, 1.0});
  AdmissionController ac({AdmissionController::Mode::kMeasurementBased, 0.1});
  ac.register_link(kLink, kMu, kTargets, &meas);
  // No measured traffic yet: even a large request passes criterion 1.
  EXPECT_TRUE(
      ac.request(predicted(8e5, 1000.0, 0.2, 1), {kLink}, 0.0).admitted);
  // Now the link measures ~0.85 utilisation: a 10% flow no longer fits.
  for (int i = 0; i < 100; ++i) {
    meas.on_realtime_tx(8500.0, 0.01 * i);  // 850 kb over 1 s
  }
  EXPECT_FALSE(
      ac.request(predicted(1e5, 1000.0, 0.2, 2), {kLink}, 1.0).admitted);
}

TEST(Admission, MeasurementModeUsesMeasuredDelaySlack) {
  LinkMeasurement meas({kMu, 2, 10.0, 1.0});
  AdmissionController ac({AdmissionController::Mode::kMeasurementBased, 0.1});
  ac.register_link(kLink, kMu, kTargets, &meas);
  // Class 1 already sees 0.15 s delays: slack 0.01 s, headroom ~0.9e6
  // => b must be < 9000 bits.
  meas.on_class_wait(1, 0.15, 0.5);
  EXPECT_FALSE(
      ac.request(predicted(1e4, 20000.0, 0.16, 1), {kLink}, 1.0).admitted);
  EXPECT_TRUE(
      ac.request(predicted(1e4, 5000.0, 0.16, 2), {kLink}, 1.0).admitted);
}

}  // namespace
}  // namespace ispn::core
