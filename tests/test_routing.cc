#include "net/routing.h"

#include <gtest/gtest.h>

namespace ispn::net {
namespace {

Adjacency chain(int n) {
  Adjacency adj;
  for (NodeId i = 0; i + 1 < n; ++i) {
    adj[i].push_back(i + 1);
    adj[i + 1].push_back(i);
  }
  return adj;
}

TEST(Routing, ChainNextHops) {
  const auto adj = chain(5);
  const auto hops = compute_next_hops(adj, 0);
  EXPECT_EQ(hops.at(1), 1);
  EXPECT_EQ(hops.at(4), 1);  // everything goes right
  const auto mid = compute_next_hops(adj, 2);
  EXPECT_EQ(mid.at(0), 1);
  EXPECT_EQ(mid.at(4), 3);
}

TEST(Routing, ShortestPathInclusive) {
  const auto adj = chain(5);
  EXPECT_EQ(shortest_path(adj, 0, 3), (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(shortest_path(adj, 2, 2), (std::vector<NodeId>{2}));
}

TEST(Routing, UnreachableReturnsEmpty) {
  Adjacency adj;
  adj[0].push_back(1);
  adj[1].push_back(0);
  adj[2] = {};
  EXPECT_TRUE(shortest_path(adj, 0, 2).empty());
  EXPECT_FALSE(compute_next_hops(adj, 0).contains(2));
}

TEST(Routing, PrefersShorterPath) {
  // Triangle with an extra two-hop detour: 0-1, 1-2, 0-2.
  Adjacency adj;
  auto link = [&](NodeId a, NodeId b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  link(0, 1);
  link(1, 2);
  link(0, 2);
  EXPECT_EQ(shortest_path(adj, 0, 2), (std::vector<NodeId>{0, 2}));
}

TEST(Routing, DeterministicTieBreakByNodeId) {
  // Diamond: 0-1-3 and 0-2-3, both length 2; BFS visits neighbor 1 first.
  Adjacency adj;
  auto link = [&](NodeId a, NodeId b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  link(0, 1);
  link(0, 2);
  link(1, 3);
  link(2, 3);
  EXPECT_EQ(compute_next_hops(adj, 0).at(3), 1);
}

TEST(Routing, FilterAdjacencyRemovesFailedLinksBothWays) {
  const auto adj = chain(4);
  std::set<std::pair<NodeId, NodeId>> down;
  down.insert(undirected(2, 1));  // order-insensitive key
  const auto active = filter_adjacency(adj, down);
  EXPECT_EQ(active.at(1), (std::vector<NodeId>{0}));
  EXPECT_EQ(active.at(2), (std::vector<NodeId>{3}));
  EXPECT_TRUE(shortest_path(active, 0, 3).empty());
}

TEST(Routing, FilterAdjacencyKeepsIsolatedNodesAndOrder) {
  // Diamond 0-1-3 / 0-2-3; failing both of 3's links must keep node 3 in
  // the map (isolated, not absent) and must not disturb the remaining
  // neighbor order anywhere else.
  Adjacency adj;
  auto link = [&](NodeId a, NodeId b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  link(0, 1);
  link(0, 2);
  link(1, 3);
  link(2, 3);
  std::set<std::pair<NodeId, NodeId>> down;
  down.insert(undirected(3, 1));
  down.insert(undirected(3, 2));
  const auto active = filter_adjacency(adj, down);
  ASSERT_TRUE(active.contains(3));
  EXPECT_TRUE(active.at(3).empty());
  EXPECT_EQ(active.at(0), adj.at(0));
  EXPECT_FALSE(compute_next_hops(active, 0).contains(3));
}

TEST(Routing, FilterAdjacencyEmptySetIsIdentity) {
  const auto adj = chain(5);
  EXPECT_EQ(filter_adjacency(adj, {}), adj);
}

TEST(Routing, TieBreakStableUnderUnrelatedFailure) {
  // Diamond plus a spur 0-4; failing the spur must not flip the 0->3
  // tie-break (neighbor order is preserved, not recomputed).
  Adjacency adj;
  auto link = [&](NodeId a, NodeId b) {
    adj[a].push_back(b);
    adj[b].push_back(a);
  };
  link(0, 1);
  link(0, 2);
  link(1, 3);
  link(2, 3);
  link(0, 4);
  std::set<std::pair<NodeId, NodeId>> down;
  down.insert(undirected(0, 4));
  EXPECT_EQ(compute_next_hops(filter_adjacency(adj, down), 0).at(3),
            compute_next_hops(adj, 0).at(3));
}

TEST(Routing, StarTopology) {
  Adjacency adj;
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    adj[0].push_back(leaf);
    adj[leaf].push_back(0);
  }
  for (NodeId leaf = 1; leaf <= 4; ++leaf) {
    const auto hops = compute_next_hops(adj, leaf);
    EXPECT_EQ(hops.at(0), 0);
    for (NodeId other = 1; other <= 4; ++other) {
      if (other != leaf) {
        EXPECT_EQ(hops.at(other), 0);
      }
    }
  }
}

}  // namespace
}  // namespace ispn::net
