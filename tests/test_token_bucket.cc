#include "traffic/token_bucket.h"

#include <gtest/gtest.h>

#include "sim/random.h"
#include "traffic/leaky_bucket.h"

namespace ispn::traffic {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket tb({1000.0, 5000.0});
  EXPECT_DOUBLE_EQ(tb.tokens(0.0), 5000.0);
}

TEST(TokenBucket, ConsumeFromFullBucket) {
  TokenBucket tb({1000.0, 5000.0});
  EXPECT_TRUE(tb.try_consume(3000.0, 0.0));
  EXPECT_DOUBLE_EQ(tb.tokens(0.0), 2000.0);
}

TEST(TokenBucket, RejectsWhenInsufficient) {
  TokenBucket tb({1000.0, 5000.0});
  EXPECT_TRUE(tb.try_consume(5000.0, 0.0));
  EXPECT_FALSE(tb.try_consume(1.0, 0.0));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb({1000.0, 5000.0});
  EXPECT_TRUE(tb.try_consume(5000.0, 0.0));
  EXPECT_DOUBLE_EQ(tb.tokens(2.0), 2000.0);
  EXPECT_TRUE(tb.try_consume(2000.0, 2.0));
  EXPECT_FALSE(tb.try_consume(1.0, 2.0));
}

TEST(TokenBucket, RefillCapsAtDepth) {
  TokenBucket tb({1000.0, 5000.0});
  EXPECT_DOUBLE_EQ(tb.tokens(100.0), 5000.0);
}

TEST(TokenBucket, FailedConsumeKeepsTokens) {
  TokenBucket tb({1000.0, 2000.0});
  EXPECT_TRUE(tb.try_consume(1500.0, 0.0));
  EXPECT_FALSE(tb.try_consume(1000.0, 0.0));
  EXPECT_DOUBLE_EQ(tb.tokens(0.0), 500.0);
}

TEST(TokenBucket, BurstThenSteadyRateConforms) {
  // A source emitting the full depth at t=0 then exactly at rate r forever
  // (the greedy pattern) always conforms.
  TokenBucket tb({1000.0, 3000.0});
  for (int i = 0; i < 3; ++i) EXPECT_TRUE(tb.try_consume(1000.0, 0.0));
  for (int i = 1; i <= 50; ++i) {
    EXPECT_TRUE(tb.try_consume(1000.0, static_cast<double>(i)));
  }
}

// ---------------------------------------------------- batch conformance --

TEST(Conformance, PaperRecurrenceAcceptsConformingTrace) {
  // 1000-bit packets at 1/s against (1000 b/s, 2000 b): conforms.
  std::vector<TracePacket> trace;
  for (int i = 0; i < 20; ++i) trace.push_back({static_cast<double>(i), 1000});
  EXPECT_TRUE(conforms(trace, {1000.0, 2000.0}));
}

TEST(Conformance, RejectsBurstBeyondDepth) {
  std::vector<TracePacket> trace;
  for (int i = 0; i < 3; ++i) trace.push_back({0.0, 1000});
  EXPECT_TRUE(conforms(trace, {1.0, 3000.0}));
  trace.push_back({0.0, 1000});
  EXPECT_FALSE(conforms(trace, {1.0, 3000.0}));
}

TEST(Conformance, OnlineAndBatchAgree) {
  // Random trace: the online policer accepting every packet must imply
  // batch conformance of the accepted subtrace, for any (r, b).
  sim::Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const TokenBucketSpec spec{rng.uniform(500, 2000), rng.uniform(1000, 9000)};
    TokenBucket tb(spec);
    std::vector<TracePacket> accepted;
    double t = 0;
    for (int i = 0; i < 200; ++i) {
      t += rng.exponential(0.7);
      if (tb.try_consume(1000.0, t)) accepted.push_back({t, 1000.0});
    }
    EXPECT_TRUE(conforms(accepted, spec)) << "trial " << trial;
  }
}

TEST(MinDepth, ExactForKnownBurst) {
  // 5 packets at t=0, rate 1000 b/s: need 5000 bits.
  std::vector<TracePacket> trace(5, TracePacket{0.0, 1000.0});
  EXPECT_DOUBLE_EQ(min_depth(trace, 1000.0), 5000.0);
}

TEST(MinDepth, AccountsForRefillBetweenBursts) {
  // Burst of 2 at t=0 and another at t=1 with r=1000: deficit peaks at
  // 2000, refills 1000, peaks at 2000+1000 = 3000.
  std::vector<TracePacket> trace = {
      {0.0, 1000}, {0.0, 1000}, {1.0, 1000}, {1.0, 1000}};
  EXPECT_DOUBLE_EQ(min_depth(trace, 1000.0), 3000.0);
}

class MinDepthProperty : public ::testing::TestWithParam<double> {};

TEST_P(MinDepthProperty, TraceConformsAtMinDepthNotBelow) {
  const double rate = GetParam();
  sim::Rng rng(7);
  std::vector<TracePacket> trace;
  double t = 0;
  for (int i = 0; i < 300; ++i) {
    t += rng.exponential(1.0);
    trace.push_back({t, 1000.0});
  }
  const double b = min_depth(trace, rate);
  EXPECT_TRUE(conforms(trace, {rate, b}));
  if (b > 1000.0) {
    EXPECT_FALSE(conforms(trace, {rate, b - 500.0}));
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, MinDepthProperty,
                         ::testing::Values(400.0, 800.0, 1000.0, 1500.0));

TEST(MinDepth, NonIncreasingInRate) {
  sim::Rng rng(15);
  std::vector<TracePacket> trace;
  double t = 0;
  for (int i = 0; i < 200; ++i) {
    t += rng.exponential(0.5);
    trace.push_back({t, 1000.0});
  }
  double prev = min_depth(trace, 100.0);
  for (double r : {200.0, 500.0, 1000.0, 2000.0, 5000.0}) {
    const double b = min_depth(trace, r);
    EXPECT_LE(b, prev + 1e-9) << "b(r) must be non-increasing";
    prev = b;
  }
}

// ------------------------------------------------------------ LeakyBucket --

TEST(LeakyBucket, NoDelayWhenSlow) {
  std::vector<TracePacket> trace = {{0.0, 1000}, {2.0, 1000}, {4.0, 1000}};
  const auto shaped = shape(trace, 1000.0);
  EXPECT_DOUBLE_EQ(shaped.departures[0], 1.0);
  EXPECT_DOUBLE_EQ(shaped.departures[1], 3.0);
  EXPECT_DOUBLE_EQ(shaped.max_delay, 1.0);  // just the service time
}

TEST(LeakyBucket, QueuesBurst) {
  std::vector<TracePacket> trace(4, TracePacket{0.0, 1000.0});
  const auto shaped = shape(trace, 1000.0);
  EXPECT_DOUBLE_EQ(shaped.departures[3], 4.0);
  EXPECT_DOUBLE_EQ(shaped.max_delay, 4.0);
}

TEST(LeakyBucket, ShapingDelayBoundedByFluidBound) {
  // Paper §4: a trace conforming to (r, b) sees at most b/r + p/r delay in
  // a rate-r leaky bucket (b/r fluid bound plus one packet service time).
  sim::Rng rng(21);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<TracePacket> trace;
    double t = 0;
    for (int i = 0; i < 500; ++i) {
      t += rng.exponential(1.0);
      trace.push_back({t, 1000.0});
    }
    const double r = 1100.0;
    const double b = min_depth(trace, r);
    const auto shaped = shape(trace, r);
    EXPECT_LE(shaped.max_delay, b / r + 1000.0 / r + 1e-9);
  }
}

}  // namespace
}  // namespace ispn::traffic
