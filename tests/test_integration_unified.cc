// End-to-end properties of the unified scheduler through the full stack
// (builder + network + sources), beyond the per-table shape tests.

#include <gtest/gtest.h>

#include <algorithm>

#include "core/builder.h"
#include "core/experiments.h"
#include "traffic/cbr_source.h"

namespace ispn::core {
namespace {

IspnNetwork::Config base_config() {
  IspnNetwork::Config c;
  c.class_targets = {0.016, 0.16};
  c.enforce_admission = false;
  return c;
}

TEST(UnifiedE2E, WorkConservation) {
  // A persistently backlogged datagram source drives the link to ~100%:
  // the unified scheduler never idles the link while packets wait.
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(2);
  FlowSpec spec;
  spec.flow = 1;
  spec.src = topo.hosts[0];
  spec.dst = topo.hosts[1];
  spec.service = net::ServiceClass::kDatagram;
  auto handle = ispn.open_flow(spec);
  auto [tcp, sink] = ispn.attach_tcp(handle);
  (void)sink;
  tcp.start(0);
  ispn.net().sim().run_until(30.0);
  EXPECT_GT(ispn.link_utilization({topo.switches[0], topo.switches[1]}, 30.0),
            0.97);
}

TEST(UnifiedE2E, GuaranteedFlowUnharmedByDatagramFlood) {
  // Guaranteed CBR at its clock rate vs a saturating TCP: the guaranteed
  // flow's queueing delay stays within a couple of packet times.
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(3);
  FlowSpec g;
  g.flow = 1;
  g.src = topo.hosts[0];
  g.dst = topo.hosts[2];
  g.service = net::ServiceClass::kGuaranteed;
  g.guaranteed = GuaranteedSpec{200000.0};
  auto gh = ispn.open_flow(g);
  // CBR at exactly the clock rate (200 pkt/s of 1000-bit packets).
  net::Host& host = ispn.net().host(g.src);
  traffic::CbrSource cbr(ispn.net().sim(),
                         {.rate_pps = 200.0, .packet_bits = 1000}, g.flow,
                         g.src, g.dst,
                         [&host](net::PacketPtr p) { host.inject(std::move(p)); },
                         &ispn.net().stats(g.flow));
  cbr.set_service(net::ServiceClass::kGuaranteed);
  ispn.attach_sink(gh);
  cbr.start(0);

  FlowSpec d;
  d.flow = 2;
  d.src = topo.hosts[0];
  d.dst = topo.hosts[2];
  d.service = net::ServiceClass::kDatagram;
  auto dh = ispn.open_flow(d);
  auto [tcp, sink] = ispn.attach_tcp(dh);
  (void)sink;
  tcp.start(0);

  ispn.net().sim().run_until(30.0);
  const auto& stats = ispn.net().stats(1);
  EXPECT_GT(stats.received, 5000u);
  EXPECT_EQ(stats.net_drops, 0u);
  // CBR at clock rate through WFQ: delay bounded by ~one packet quantum
  // per hop at the clock rate plus in-service packets.
  EXPECT_LT(stats.queueing_delay.max(), 0.015);
}

TEST(UnifiedE2E, FifoPlusAblationWorsensLongPathTails) {
  Table3Options with;
  with.seconds = 120.0;
  with.seed = 5;
  Table3Options without = with;
  without.fifo_plus = false;
  const auto on = run_table3(with);
  const auto off = run_table3(without);
  // Compare the 4-hop Predicted-High tails: FIFO+ should help (or at
  // least not hurt materially).
  auto tail = [](const Table3Result& r) {
    for (const auto& f : r.flows) {
      if (f.role == Table3Role::kPredictedHigh && f.path_len == 4) {
        return f.p999_pkt;
      }
    }
    return 0.0;
  };
  EXPECT_LT(tail(on), tail(off) * 1.15);
}

TEST(UnifiedE2E, TwoTcpsShareLeftoverFairly) {
  IspnNetwork ispn(base_config());
  const auto topo = ispn.build_chain(2);
  std::vector<traffic::TcpSource*> tcps;
  for (int t = 0; t < 2; ++t) {
    FlowSpec spec;
    spec.flow = t;
    spec.src = topo.hosts[0];
    spec.dst = topo.hosts[1];
    spec.service = net::ServiceClass::kDatagram;
    auto handle = ispn.open_flow(spec);
    auto [tcp, sink] = ispn.attach_tcp(handle);
    (void)sink;
    tcp.start(0.01 * t);
    tcps.push_back(&tcp);
  }
  ispn.net().sim().run_until(60.0);
  const double a = static_cast<double>(tcps[0]->delivered());
  const double b = static_cast<double>(tcps[1]->delivered());
  EXPECT_GT(a + b, 50000.0);  // link well used
  EXPECT_GT(std::min(a, b) / std::max(a, b), 0.4);  // rough fairness
}

TEST(UnifiedE2E, PredictedClassesKeepMeasuredDelaysUnderTargets) {
  // The Table-3 load was chosen so the class targets hold; verify via the
  // measurement module (which is what admission would consult).
  Table3Options options;
  options.seconds = 120.0;
  options.seed = 11;
  const auto result = run_table3(options);
  (void)result;
  // Per-class per-hop worst delays from the flow stats: class 0 flows
  // (Predicted-High) must stay under D_0 per hop (16 ms x hops), class 1
  // under D_1 x hops.
  for (const auto& f : result.flows) {
    const double hops = f.path_len;
    if (f.role == Table3Role::kPredictedHigh) {
      EXPECT_LT(f.max_pkt, 0.016 / sim::paper::kPacketTime * hops)
          << "flow " << f.flow;
    } else if (f.role == Table3Role::kPredictedLow) {
      EXPECT_LT(f.max_pkt, 0.16 / sim::paper::kPacketTime * hops)
          << "flow " << f.flow;
    }
  }
}

class Table1SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Table1SeedSweep, FifoTailBeatsWfqAcrossSeeds) {
  // The Table-1 conclusion is not a seed artifact.
  const auto seed = GetParam();
  const auto fifo = run_single_link(SchedKind::kFifo, 10, 120.0, seed);
  const auto wfq = run_single_link(SchedKind::kWfq, 10, 120.0, seed);
  double fifo_p999 = 0, wfq_p999 = 0;
  for (int f = 0; f < 10; ++f) {
    fifo_p999 += fifo.p999_pkt[static_cast<std::size_t>(f)];
    wfq_p999 += wfq.p999_pkt[static_cast<std::size_t>(f)];
  }
  EXPECT_LT(fifo_p999, wfq_p999);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Table1SeedSweep,
                         ::testing::Values(3u, 1234u, 987654321u));

}  // namespace
}  // namespace ispn::core
