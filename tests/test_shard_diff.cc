// Differential suite for the sharded parallel core (sim/shard.h).
//
// The contract under test: the sharded execution model is a function of
// the SPEC alone — the per-switch domain decomposition, the lookahead
// window grid and the mailbox merge order are all derived from the
// topology, never from the worker count.  So for any scenario, shard
// counts {1, 2, 4} crossed with both event backends {heap, wheel} must
// produce BYTE-IDENTICAL packet traces, admission decision logs,
// conservation ledgers and per-flow outcome tables (doubles compared
// bit-exactly).  Three fabrics are fuzzed across seeds: a three-level
// fan-in tree (many domains, deep aggregation), an overloaded parking
// lot (drops + pushout) and a mesh under seeded link failures (reroutes,
// degradation, path epochs).
//
// The building blocks get their own unit tests: the SPSC handoff ring
// (order, wrap, full/empty, a real producer thread), the LinkMailbox
// (push-order preservation across ring overflow) and the window-advance
// policies (skipping may land early, never late; stepping and skipping
// must agree on executed results, pinned here by a whole-scenario run
// under each policy).

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "net/handoff.h"
#include "net/tracer.h"
#include "scenario/runner.h"
#include "sim/shard.h"
#include "util/spsc_ring.h"

namespace ispn {
namespace {

// --- SPSC ring ------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  util::SpscRing<int> ring(5);
  EXPECT_EQ(ring.capacity(), 8u);
  util::SpscRing<int> exact(16);
  EXPECT_EQ(exact.capacity(), 16u);
}

TEST(SpscRing, FifoOrderFullAndEmpty) {
  util::SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  int out = -1;
  EXPECT_FALSE(ring.try_pop(out));

  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
  EXPECT_FALSE(ring.try_push(99)) << "push into a full ring must fail";
  EXPECT_EQ(ring.size(), 4u);

  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.try_pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, OrderSurvivesManyWraps) {
  util::SpscRing<int> ring(8);
  int next_in = 0;
  int next_out = 0;
  // Interleave pushes and pops so the indices wrap far past capacity.
  for (int round = 0; round < 1000; ++round) {
    for (int k = 0; k < 3; ++k) {
      if (ring.try_push(next_in)) ++next_in;
    }
    int v = -1;
    while (ring.try_pop(v)) {
      ASSERT_EQ(v, next_out);
      ++next_out;
    }
  }
  EXPECT_EQ(next_in, next_out);
  EXPECT_GT(next_out, 2000);
}

TEST(SpscRing, SingleProducerSingleConsumerThreads) {
  constexpr int kCount = 200000;
  util::SpscRing<int> ring(64);
  std::atomic<bool> failed{false};

  std::thread producer([&] {
    for (int i = 0; i < kCount; ++i) {
      while (!ring.try_push(i)) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kCount) {
    int v = -1;
    if (ring.try_pop(v)) {
      if (v != expected) {
        failed.store(true);
        break;
      }
      ++expected;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_FALSE(failed.load()) << "ring reordered or corrupted an element";
  EXPECT_EQ(expected, kCount);
}

// --- window-advance policies ----------------------------------------------

TEST(ShardSync, SteppingWalksOneWindowAtATime) {
  sim::SteppingWindowSync sync;
  const sim::Duration w = 0.001;
  EXPECT_EQ(sync.next_window(7, 7.0004e-3, w), 7u) << "event inside window";
  EXPECT_EQ(sync.next_window(7, 8.0000e-3, w), 8u) << "event at next barrier";
  EXPECT_EQ(sync.next_window(7, 5.0, w), 8u) << "never jumps, even far idle";
}

TEST(ShardSync, SkippingLandsEarlyNeverLate) {
  sim::SkippingWindowSync sync;
  const sim::Duration w = 0.001;
  // Adversarial times: barriers, just-below/above barriers, irrationals.
  const double times[] = {0.0,       1.0e-3,     0.9999999999e-3,
                          1.0000000000001e-3,    0.25,
                          1.0 / 3.0, 12.345e-3,  59.999e-3,
                          1e4,       123456.789, 0.6180339887498949};
  for (const double t : times) {
    for (const std::uint64_t cur : {std::uint64_t{0}, std::uint64_t{3}}) {
      if (t < static_cast<double>(cur) * w) continue;
      const std::uint64_t m = sync.next_window(cur, t, w);
      EXPECT_GE(m, cur) << t;
      // Never late: the chosen window must not start after the event.
      EXPECT_LE(static_cast<double>(m) * w, t) << t;
      // Never more than one window early (relative fp slop tolerance:
      // the product m*w itself rounds at ~1e-16 relative).
      EXPECT_GE(static_cast<double>(m + 1) * w, t - 1e-9 * std::max(1.0, t))
          << t;
    }
  }
}

TEST(ShardSync, SkippingMatchesSteppingFixpoint) {
  sim::SkippingWindowSync skip;
  sim::SteppingWindowSync step;
  const sim::Duration w = 0.0005;
  for (const double t : {0.0012, 0.25, 1.0 / 7.0, 3.3333, 17.0001}) {
    std::uint64_t cur = 0;
    // Walk stepping until it settles on the window containing t.
    for (;;) {
      const std::uint64_t next = step.next_window(cur, t, w);
      if (next == cur) break;
      cur = next;
    }
    const std::uint64_t jumped = skip.next_window(0, t, w);
    // Skipping may land one early; executing that empty window is a no-op,
    // so results agree (pinned end-to-end below).
    EXPECT_TRUE(jumped == cur || jumped + 1 == cur)
        << "t=" << t << " step=" << cur << " skip=" << jumped;
  }
}

// --- LinkMailbox ----------------------------------------------------------

/// Records delivered (flow, seq) pairs in arrival order.
class SeqSink final : public net::FlowSink {
 public:
  void on_packet(net::PacketPtr p, sim::Time) override {
    seqs.push_back(p->seq);
  }
  std::vector<std::uint64_t> seqs;
};

TEST(LinkMailbox, PreservesPushOrderAcrossRingOverflow) {
  sim::Simulator dst_sim;
  net::Host host(dst_sim, 0, "dst");
  SeqSink sink;
  host.register_sink(7, &sink);

  net::PacketPool pool;
  pool.enable_concurrent_returns();
  // Ring capacity 4: the 10-packet burst spills 6 entries to overflow.
  net::LinkMailbox box(0.001, dst_sim, host, 4);
  for (std::uint64_t s = 0; s < 10; ++s) {
    auto p = net::make_packet(pool, 7, s, 1, 0, 0.0, 1000);
    box.push(std::move(p), 0.0);
  }
  EXPECT_FALSE(box.empty());
  EXPECT_EQ(box.drain(), 10u);
  EXPECT_TRUE(box.empty());
  dst_sim.run();

  ASSERT_EQ(sink.seqs.size(), 10u);
  for (std::uint64_t s = 0; s < 10; ++s) {
    EXPECT_EQ(sink.seqs[s], s) << "overflow spill reordered the handoff";
  }
}

// --- whole-scenario byte-identity -----------------------------------------

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

struct ShardRun {
  std::vector<net::PacketTracer::Record> trace;
  std::uint64_t decision_hash = 0;
  std::uint64_t events = 0;
  // Conservation ledger.
  std::uint64_t generated = 0, source_drops = 0, injected = 0, delivered = 0,
                net_drops = 0, failed_link_drops = 0, queued_end = 0,
                unclaimed = 0;
  std::vector<scenario::FlowOutcome> flows;
  std::uint64_t reroutes = 0, degraded = 0;
  // Fault-plane counters and drop buckets (PR 9).
  std::uint64_t node_failure_drops = 0, fault_drops = 0;
  std::uint64_t nodes_crashed = 0, brownouts = 0, loss_episodes = 0;
  std::uint64_t flows_restored = 0, restore_attempts = 0;
  std::uint64_t invariant_violations = 0;
  // Responsive-traffic counters (PR 10).
  std::uint64_t cc_flows = 0, cc_marks = 0, cc_echoes = 0, cc_backoffs = 0;
  std::uint64_t tcp_segments = 0, tcp_retransmits = 0;
};

ShardRun run_sharded(scenario::ScenarioSpec spec, int shards,
                     sim::EventBackend backend) {
  spec.shards = shards;
  spec.event_backend = backend;
  scenario::ScenarioRunner runner(std::move(spec));
  net::PacketTracer tracer(1u << 22);
  runner.set_tracer(&tracer);
  runner.prepare();
  tracer.attach(runner.net());
  const scenario::ScenarioReport report = runner.run();
  tracer.finalize();

  EXPECT_FALSE(tracer.truncated());
  EXPECT_TRUE(report.conserved());
  ShardRun out;
  out.trace = tracer.records();
  out.decision_hash = report.decision_hash();
  out.events = report.events;
  out.generated = report.generated;
  out.source_drops = report.source_drops;
  out.injected = report.injected;
  out.delivered = report.delivered;
  out.net_drops = report.net_drops;
  out.failed_link_drops = report.failed_link_drops;
  out.queued_end = report.queued_end;
  out.unclaimed = report.unclaimed;
  out.flows = report.flows;
  out.reroutes = report.flows_rerouted;
  out.degraded = report.flows_degraded;
  out.node_failure_drops = report.node_failure_drops;
  out.fault_drops = report.fault_drops;
  out.nodes_crashed = report.nodes_crashed;
  out.brownouts = report.brownouts;
  out.loss_episodes = report.loss_episodes;
  out.flows_restored = report.flows_restored;
  out.restore_attempts = report.restore_attempts;
  out.invariant_violations = report.invariant_violations;
  out.cc_flows = report.cc_flows;
  out.cc_marks = report.cc_marks;
  out.cc_echoes = report.cc_echoes;
  out.cc_backoffs = report.cc_backoffs;
  out.tcp_segments = report.tcp_segments;
  out.tcp_retransmits = report.tcp_retransmits;
  return out;
}

std::uint64_t hash_trace(const std::vector<net::PacketTracer::Record>& recs) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : recs) {
    h = fnv1a(h, &r.time, sizeof r.time);
    const auto event = static_cast<std::uint8_t>(r.event);
    h = fnv1a(h, &event, sizeof event);
    h = fnv1a(h, &r.flow, sizeof r.flow);
    h = fnv1a(h, &r.seq, sizeof r.seq);
    h = fnv1a(h, &r.node, sizeof r.node);
    h = fnv1a(h, &r.queueing_delay, sizeof r.queueing_delay);
    h = fnv1a(h, &r.jitter_offset, sizeof r.jitter_offset);
  }
  return h;
}

void expect_identical(const ShardRun& ref, const ShardRun& got,
                      const std::string& what) {
  // Full record-by-record trace comparison (bit-exact doubles), not just a
  // hash: a diff pinpoints the first diverging record.
  ASSERT_EQ(ref.trace.size(), got.trace.size()) << what;
  for (std::size_t i = 0; i < ref.trace.size(); ++i) {
    const auto& a = ref.trace[i];
    const auto& b = got.trace[i];
    ASSERT_TRUE(a.time == b.time && a.event == b.event && a.flow == b.flow &&
                a.seq == b.seq && a.node == b.node &&
                a.queueing_delay == b.queueing_delay &&
                a.jitter_offset == b.jitter_offset)
        << what << ": first divergence at record " << i << " (t=" << a.time
        << " vs " << b.time << ")";
  }
  EXPECT_EQ(hash_trace(ref.trace), hash_trace(got.trace)) << what;
  EXPECT_EQ(ref.decision_hash, got.decision_hash) << what;
  EXPECT_EQ(ref.events, got.events) << what;

  EXPECT_EQ(ref.generated, got.generated) << what;
  EXPECT_EQ(ref.source_drops, got.source_drops) << what;
  EXPECT_EQ(ref.injected, got.injected) << what;
  EXPECT_EQ(ref.delivered, got.delivered) << what;
  EXPECT_EQ(ref.net_drops, got.net_drops) << what;
  EXPECT_EQ(ref.failed_link_drops, got.failed_link_drops) << what;
  EXPECT_EQ(ref.queued_end, got.queued_end) << what;
  EXPECT_EQ(ref.unclaimed, got.unclaimed) << what;
  EXPECT_EQ(ref.node_failure_drops, got.node_failure_drops) << what;
  EXPECT_EQ(ref.fault_drops, got.fault_drops) << what;
  EXPECT_EQ(ref.nodes_crashed, got.nodes_crashed) << what;
  EXPECT_EQ(ref.brownouts, got.brownouts) << what;
  EXPECT_EQ(ref.loss_episodes, got.loss_episodes) << what;
  EXPECT_EQ(ref.flows_restored, got.flows_restored) << what;
  EXPECT_EQ(ref.restore_attempts, got.restore_attempts) << what;
  EXPECT_EQ(ref.invariant_violations, got.invariant_violations) << what;
  EXPECT_EQ(ref.cc_flows, got.cc_flows) << what;
  EXPECT_EQ(ref.cc_marks, got.cc_marks) << what;
  EXPECT_EQ(ref.cc_echoes, got.cc_echoes) << what;
  EXPECT_EQ(ref.cc_backoffs, got.cc_backoffs) << what;
  EXPECT_EQ(ref.tcp_segments, got.tcp_segments) << what;
  EXPECT_EQ(ref.tcp_retransmits, got.tcp_retransmits) << what;

  ASSERT_EQ(ref.flows.size(), got.flows.size()) << what;
  for (std::size_t i = 0; i < ref.flows.size(); ++i) {
    const auto& a = ref.flows[i];
    const auto& b = got.flows[i];
    EXPECT_EQ(a.flow, b.flow) << what;
    EXPECT_EQ(a.service, b.service) << what;
    EXPECT_EQ(a.admitted, b.admitted) << what;
    EXPECT_EQ(a.hops, b.hops) << what;
    EXPECT_EQ(a.delivered, b.delivered) << what << " flow " << a.flow;
    EXPECT_EQ(a.max_delay, b.max_delay) << what << " flow " << a.flow;
    EXPECT_EQ(a.max_delay_all, b.max_delay_all) << what << " flow " << a.flow;
    EXPECT_EQ(a.bound, b.bound) << what << " flow " << a.flow;
    EXPECT_EQ(a.reroutes, b.reroutes) << what;
    EXPECT_EQ(a.degraded, b.degraded) << what;
    EXPECT_EQ(a.path_epochs, b.path_epochs) << what;
    EXPECT_EQ(a.opened, b.opened) << what;
    EXPECT_EQ(a.closed, b.closed) << what;
  }
}

void shard_diff(const scenario::ScenarioSpec& spec, const char* label) {
  const ShardRun ref = run_sharded(spec, 1, sim::EventBackend::kHeap);
  EXPECT_GT(ref.trace.size(), 500u)
      << label << ": workload too small to prove anything";
  struct Combo {
    int shards;
    sim::EventBackend backend;
    const char* name;
  };
  const Combo combos[] = {
      {1, sim::EventBackend::kWheel, "1 x wheel"},
      {2, sim::EventBackend::kHeap, "2 x heap"},
      {2, sim::EventBackend::kWheel, "2 x wheel"},
      {4, sim::EventBackend::kHeap, "4 x heap"},
      {4, sim::EventBackend::kWheel, "4 x wheel"},
  };
  for (const Combo& combo : combos) {
    const ShardRun got = run_sharded(spec, combo.shards, combo.backend);
    expect_identical(ref, got,
                     std::string(label) + " under shards x backend = " +
                         combo.name);
  }
}

TEST(ShardDiff, FanInTreeByteIdenticalAcrossShardCounts) {
  for (const std::uint64_t seed : {31ull, 32ull}) {
    scenario::ScenarioSpec spec = scenario::preset("fan_in");
    scenario::apply_scale(spec, "small");
    spec.tree_depth = 3;  // 1 + 4 + 16 switches: domains >> workers
    spec.arrival_rate = 8.0;
    spec.mean_hold = 2.0;
    spec.target_flows = 24;
    spec.seed = seed;
    shard_diff(spec, ("fan-in tree seed " + std::to_string(seed)).c_str());
  }
}

TEST(ShardDiff, OverloadedParkingLotByteIdenticalAcrossShardCounts) {
  scenario::ScenarioSpec spec = scenario::preset("parking_lot");
  scenario::apply_scale(spec, "small");
  spec.arrival_rate = 0;  // deterministic batch: exercises prepare()-time
  spec.target_flows = 24; // flow opening and sharded tracer pre-sizing
  spec.avg_rate_pps = 150.0;
  spec.source = scenario::SourceKind::kPoisson;
  spec.p_guaranteed = 0.15;
  spec.p_predicted = 0.35;
  spec.seed = 33;

  const ShardRun ref = run_sharded(spec, 1, sim::EventBackend::kHeap);
  EXPECT_GT(ref.net_drops, 0u) << "parking lot never overloaded";
  shard_diff(spec, "overloaded parking lot");
}

TEST(ShardDiff, MeshWithFailuresByteIdenticalAcrossShardCounts) {
  scenario::ScenarioSpec spec = scenario::preset("failure");
  spec.run_seconds = 12.0;
  spec.seed = 36;  // 7 link-downs: reroutes, degrades, orphans AND in-flight
                   // packets caught on failing links, all in one run

  const ShardRun ref = run_sharded(spec, 1, sim::EventBackend::kHeap);
  EXPECT_GT(ref.reroutes + ref.degraded, 0u)
      << "failures never disturbed an admitted flow";
  EXPECT_GT(ref.failed_link_drops, 0u)
      << "no packet was ever caught on a failing link";
  shard_diff(spec, "mesh with failures");
}

TEST(ShardDiff, ChaosFaultPlaneByteIdenticalAcrossShardCounts) {
  // Crashes, brown-outs, transient loss and flapping all at once, on the
  // sharded engine: every fault event lands on a lookahead-window barrier
  // (ctl grid), so shard counts {1, 2, 4} x both event backends must agree
  // byte-for-byte — traces, decisions, fault counters and both new drop
  // buckets.  The invariant monitor audits throughout and must stay clean.
  scenario::ScenarioSpec spec = scenario::preset("chaos");
  spec.run_seconds = 20.0;  // enough for every fault family at test speed
  spec.seed = 40;  // 3 crashes, 12 brownouts, 6 loss episodes in 20 s

  const ShardRun ref = run_sharded(spec, 1, sim::EventBackend::kHeap);
  EXPECT_GT(ref.nodes_crashed, 0u) << "no switch ever crashed";
  EXPECT_GT(ref.brownouts, 0u) << "no brown-out ever started";
  EXPECT_GT(ref.loss_episodes, 0u) << "no loss episode ever started";
  EXPECT_GT(ref.node_failure_drops + ref.fault_drops, 0u)
      << "faults never destroyed a packet";
  EXPECT_EQ(ref.invariant_violations, 0u) << "the monitor flagged the run";
  shard_diff(spec, "chaos fault plane");
}

TEST(ShardDiff, CcMixWithBinaryFeedbackByteIdenticalAcrossShardCounts) {
  // Responsive best-effort flows (reno/bbr/rack round-robin) under the
  // DEC-TR-506 feedback loop, with guaranteed and predicted classes
  // alongside: data and ACK streams cross domain boundaries in both
  // directions, so shard-count invariance now covers the transport
  // timers (pacing, RTO, reorder) and the mark/echo/backoff counters.
  scenario::ScenarioSpec spec = scenario::preset("parking_lot");
  scenario::apply_scale(spec, "small");
  spec.arrival_rate = 0;
  spec.target_flows = 18;
  spec.avg_rate_pps = 150.0;
  spec.source = scenario::SourceKind::kPoisson;
  spec.p_guaranteed = 0.2;
  spec.p_predicted = 0.3;
  spec.cc = scenario::CcKind::kMix;
  spec.binary_feedback = true;
  spec.seed = 41;

  const ShardRun ref = run_sharded(spec, 1, sim::EventBackend::kHeap);
  EXPECT_GT(ref.cc_flows, 2u) << "mix never attached all three stacks";
  EXPECT_GT(ref.cc_marks, 0u) << "the lot never marked a datagram";
  EXPECT_GT(ref.cc_echoes, 0u) << "no mark was ever echoed";
  shard_diff(spec, "cc mix with binary feedback");
}

TEST(ShardDiff, SteppingAndSkippingSyncProduceIdenticalResults) {
  scenario::ScenarioSpec spec = scenario::preset("fan_in");
  scenario::apply_scale(spec, "small");
  spec.arrival_rate = 8.0;
  spec.mean_hold = 2.0;
  spec.seed = 35;
  spec.shards = 2;

  auto run_with = [&](const sim::ShardSync* sync) {
    scenario::ScenarioRunner runner(spec);
    net::PacketTracer tracer(1u << 22);
    runner.set_tracer(&tracer);
    runner.prepare();
    tracer.attach(runner.net());
    if (sync != nullptr) runner.engine()->set_sync(sync);
    const scenario::ScenarioReport report = runner.run();
    tracer.finalize();
    const std::uint64_t more_rounds = runner.engine()->rounds();
    return std::tuple(hash_trace(tracer.records()), report.decision_hash(),
                      report.delivered, more_rounds);
  };

  const sim::SteppingWindowSync stepping;
  const auto [skip_trace, skip_dec, skip_delivered, skip_rounds] =
      run_with(nullptr);  // default skipping sync
  const auto [step_trace, step_dec, step_delivered, step_rounds] =
      run_with(&stepping);

  EXPECT_EQ(skip_trace, step_trace);
  EXPECT_EQ(skip_dec, step_dec);
  EXPECT_EQ(skip_delivered, step_delivered);
  // Stepping walks every window; skipping jumps the idle gaps.  They may
  // only differ in the number of EMPTY rounds.
  EXPECT_GE(step_rounds, skip_rounds);
}

TEST(ShardDiff, ClassicAndShardedAreDistinctReferences) {
  // shards=0 (classic, zero propagation delay) and shards>=1 (per-hop
  // link latency) are DIFFERENT deterministic models by design; this
  // pins that the sharded path actually took effect (trace present,
  // delays shifted) rather than silently falling back to classic.
  scenario::ScenarioSpec spec = scenario::preset("fan_in");
  scenario::apply_scale(spec, "small");
  spec.arrival_rate = 8.0;
  spec.seed = 36;

  scenario::ScenarioRunner classic{[&] {
    auto s = spec;
    s.shards = 0;
    return s;
  }()};
  const scenario::ScenarioReport classic_report = classic.run();
  ASSERT_FALSE(classic.net().sharded());
  EXPECT_EQ(classic.engine(), nullptr);

  scenario::ScenarioRunner sharded{[&] {
    auto s = spec;
    s.shards = 2;
    return s;
  }()};
  const scenario::ScenarioReport sharded_report = sharded.run();
  ASSERT_TRUE(sharded.net().sharded());
  ASSERT_NE(sharded.engine(), nullptr);
  EXPECT_GT(sharded.engine()->rounds(), 0u);
  EXPECT_GT(sharded_report.delivered, 0u);
  EXPECT_GT(classic_report.delivered, 0u);
}

}  // namespace
}  // namespace ispn
