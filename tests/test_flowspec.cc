#include "core/flowspec.h"

#include <gtest/gtest.h>

namespace ispn::core {
namespace {

FlowSpec guaranteed_spec(sim::Rate r = 1.7e5) {
  FlowSpec s;
  s.flow = 1;
  s.src = 0;
  s.dst = 9;
  s.service = net::ServiceClass::kGuaranteed;
  s.guaranteed = GuaranteedSpec{r};
  return s;
}

FlowSpec predicted_spec() {
  FlowSpec s;
  s.flow = 2;
  s.src = 0;
  s.dst = 9;
  s.service = net::ServiceClass::kPredicted;
  s.predicted = PredictedSpec{{85000.0, 50000.0}, 0.05, 0.01};
  return s;
}

TEST(FlowSpec, ValidGuaranteed) { EXPECT_TRUE(guaranteed_spec().valid()); }

TEST(FlowSpec, ValidPredicted) { EXPECT_TRUE(predicted_spec().valid()); }

TEST(FlowSpec, ValidDatagram) {
  FlowSpec s;
  s.service = net::ServiceClass::kDatagram;
  EXPECT_TRUE(s.valid());
}

TEST(FlowSpec, GuaranteedNeedsPositiveRate) {
  auto s = guaranteed_spec(0.0);
  EXPECT_FALSE(s.valid());
}

TEST(FlowSpec, GuaranteedRejectsPredictedFields) {
  auto s = guaranteed_spec();
  s.predicted = PredictedSpec{};
  EXPECT_FALSE(s.valid());
}

TEST(FlowSpec, PredictedNeedsBucketAndTargets) {
  auto s = predicted_spec();
  s.predicted->bucket.rate = 0;
  EXPECT_FALSE(s.valid());
  s = predicted_spec();
  s.predicted->target_delay = 0;
  EXPECT_FALSE(s.valid());
}

TEST(FlowSpec, DatagramRejectsVariantFields) {
  FlowSpec s;
  s.service = net::ServiceClass::kDatagram;
  s.guaranteed = GuaranteedSpec{1.0};
  EXPECT_FALSE(s.valid());
}

TEST(FlowSpec, DescribeMentionsServiceAndParameters) {
  EXPECT_NE(describe(guaranteed_spec()).find("Guaranteed"), std::string::npos);
  EXPECT_NE(describe(guaranteed_spec()).find("170"), std::string::npos);
  EXPECT_NE(describe(predicted_spec()).find("Predicted"), std::string::npos);
  FlowSpec d;
  d.service = net::ServiceClass::kDatagram;
  EXPECT_NE(describe(d).find("Datagram"), std::string::npos);
}

TEST(ServiceClass, Labels) {
  EXPECT_STREQ(net::to_label(net::ServiceClass::kGuaranteed), "G");
  EXPECT_STREQ(net::to_label(net::ServiceClass::kPredicted), "P");
  EXPECT_STREQ(net::to_label(net::ServiceClass::kDatagram), "D");
}

}  // namespace
}  // namespace ispn::core
