#include "stats/batch_means.h"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.h"

namespace ispn::stats {
namespace {

TEST(BatchMeans, MeanMatchesStream) {
  BatchMeans bm(10);
  for (int i = 1; i <= 1000; ++i) bm.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(bm.mean(), 500.5);
  EXPECT_EQ(bm.count(), 1000u);
}

TEST(BatchMeans, HalfWidthZeroUntilTwoBatches) {
  BatchMeans bm(10);
  bm.add(1.0);
  EXPECT_DOUBLE_EQ(bm.half_width(), 0.0);
  bm.add(2.0);  // two singleton batches now complete
  EXPECT_GT(bm.half_width(), 0.0);
}

TEST(BatchMeans, BatchSizeDoublesUnderLoad) {
  BatchMeans bm(4);
  for (int i = 0; i < 64; ++i) bm.add(1.0);
  EXPECT_GE(bm.batch_size(), 8u);
  EXPECT_LE(bm.batches(), 8u);
  EXPECT_GE(bm.batches(), 4u);
}

TEST(BatchMeans, ConstantStreamHasZeroWidth) {
  BatchMeans bm(10);
  for (int i = 0; i < 500; ++i) bm.add(3.14);
  EXPECT_NEAR(bm.mean(), 3.14, 1e-12);
  EXPECT_NEAR(bm.half_width(), 0.0, 1e-9);
}

TEST(BatchMeans, IidCoverageIsCalibrated) {
  // For iid input the CI should cover the true mean in roughly 95% of
  // replications.
  int covered = 0;
  const int reps = 200;
  for (int rep = 0; rep < reps; ++rep) {
    sim::Rng rng(static_cast<std::uint64_t>(rep) + 1);
    BatchMeans bm(20);
    for (int i = 0; i < 2000; ++i) bm.add(rng.exponential(1.0));
    if (std::abs(bm.mean() - 1.0) <= bm.half_width()) ++covered;
  }
  EXPECT_GT(covered, reps * 85 / 100);
  EXPECT_LE(covered, reps);
}

TEST(BatchMeans, WiderForCorrelatedInput) {
  // A strongly autocorrelated stream must produce a wider interval than
  // an iid stream of the same marginal variance — the whole point of
  // batching.
  sim::Rng rng(99);
  BatchMeans iid(20), corr(20);
  double state = 0;
  for (int i = 0; i < 20000; ++i) {
    const double shock = rng.normal();
    iid.add(shock);
    state = 0.99 * state + shock * 0.14;  // AR(1), same stationary variance
    corr.add(state);
  }
  EXPECT_GT(corr.half_width(), 2.0 * iid.half_width());
}

}  // namespace
}  // namespace ispn::stats
