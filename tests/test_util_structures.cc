// Unit tests for the engine's hot-path containers: Ring, DaryHeap,
// IndexedDaryHeap, and the InlineAction SBO callable.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "sim/inline_action.h"
#include "util/calendar_queue.h"
#include "util/dary_heap.h"
#include "util/indexed_heap.h"
#include "util/ring.h"

namespace ispn {
namespace {

// ---------------------------------------------------------------- Ring

TEST(Ring, FifoOrderAcrossGrowthAndWraparound) {
  util::Ring<int> r;
  int next_in = 0;
  int next_out = 0;
  // Interleave pushes and pops so head wraps the buffer many times while
  // the ring also grows.
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 3; ++i) r.push_back(next_in++);
    for (int i = 0; i < 2; ++i) EXPECT_EQ(r.pop_front(), next_out++);
  }
  EXPECT_EQ(r.size(), 1000u);
  while (!r.empty()) EXPECT_EQ(r.pop_front(), next_out++);
}

TEST(Ring, PopBackAndIndexing) {
  util::Ring<int> r;
  for (int i = 0; i < 10; ++i) r.push_back(i);
  EXPECT_EQ(r.front(), 0);
  EXPECT_EQ(r.back(), 9);
  EXPECT_EQ(r[3], 3);
  EXPECT_EQ(r.pop_back(), 9);
  EXPECT_EQ(r.back(), 8);
  EXPECT_EQ(r.size(), 9u);
}

TEST(Ring, EraseAtShiftsTheShorterSide) {
  for (std::size_t victim : {1u, 4u, 7u}) {
    util::Ring<int> r;
    for (int i = 0; i < 9; ++i) r.push_back(i);
    EXPECT_EQ(r.erase_at(victim), static_cast<int>(victim));
    std::vector<int> rest;
    while (!r.empty()) rest.push_back(r.pop_front());
    std::vector<int> expect;
    for (int i = 0; i < 9; ++i) {
      if (static_cast<std::size_t>(i) != victim) expect.push_back(i);
    }
    EXPECT_EQ(rest, expect);
  }
}

TEST(Ring, HoldsMoveOnlyTypes) {
  util::Ring<std::unique_ptr<int>> r;
  for (int i = 0; i < 20; ++i) r.push_back(std::make_unique<int>(i));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(*r.pop_front(), i);
}

// ------------------------------------------------------------- DaryHeap

TEST(DaryHeap, PopsInSortedOrder) {
  util::DaryHeap<int> h;
  std::mt19937 rng(7);
  std::vector<int> values;
  for (int i = 0; i < 500; ++i) values.push_back(static_cast<int>(rng()));
  for (int v : values) h.push(v);
  std::sort(values.begin(), values.end());
  for (int v : values) EXPECT_EQ(h.pop(), v);
  EXPECT_TRUE(h.empty());
}

TEST(DaryHeap, RemoveAtKeepsHeapValid) {
  util::DaryHeap<int> h;
  std::mt19937 rng(11);
  std::vector<int> values;
  for (int i = 0; i < 200; ++i) values.push_back(static_cast<int>(rng() % 1000));
  for (int v : values) h.push(v);
  // Remove 50 arbitrary raw positions, tracking the multiset.
  std::vector<int> removed;
  for (int i = 0; i < 50; ++i) {
    const std::size_t at = rng() % h.size();
    removed.push_back(h.remove_at(at));
  }
  std::vector<int> expect = values;
  for (int v : removed) {
    expect.erase(std::find(expect.begin(), expect.end(), v));
  }
  std::sort(expect.begin(), expect.end());
  for (int v : expect) EXPECT_EQ(h.pop(), v);
}

// ------------------------------------------------------ IndexedDaryHeap

TEST(IndexedHeap, UpsertInsertsAndReKeys) {
  util::IndexedDaryHeap<double, std::less<double>> h;
  h.upsert(3, 5.0);
  h.upsert(1, 2.0);
  h.upsert(2, 8.0);
  EXPECT_EQ(h.top().id, 1u);
  h.upsert(1, 9.0);  // re-key upward
  EXPECT_EQ(h.top().id, 3u);
  h.upsert(2, 1.0);  // re-key downward
  EXPECT_EQ(h.top().id, 2u);
  EXPECT_EQ(h.size(), 3u);  // still one entry per id
}

TEST(IndexedHeap, TiesBreakByIdAscending) {
  util::IndexedDaryHeap<double, std::less<double>> h;
  h.upsert(5, 1.0);
  h.upsert(2, 1.0);
  h.upsert(9, 1.0);
  EXPECT_EQ(h.pop().id, 2u);
  EXPECT_EQ(h.pop().id, 5u);
  EXPECT_EQ(h.pop().id, 9u);
}

TEST(IndexedHeap, EraseRemovesAndAllowsReinsert) {
  util::IndexedDaryHeap<double, std::less<double>> h;
  for (std::uint32_t id = 0; id < 20; ++id) h.upsert(id, 100.0 - id);
  EXPECT_TRUE(h.erase(7));
  EXPECT_FALSE(h.erase(7));
  EXPECT_FALSE(h.contains(7));
  EXPECT_EQ(h.size(), 19u);
  h.upsert(7, 0.5);
  EXPECT_EQ(h.top().id, 7u);
}

TEST(IndexedHeap, RandomisedAgainstReference) {
  util::IndexedDaryHeap<double, std::less<double>> h;
  std::vector<double> key(64, -1.0);  // -1 = absent
  std::mt19937 rng(23);
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng() % 4;
    const std::uint32_t id = rng() % 64;
    if (op == 0 || op == 1) {
      const double k = static_cast<double>(rng() % 10000);
      h.upsert(id, k);
      key[id] = k;
    } else if (op == 2) {
      EXPECT_EQ(h.erase(id), key[id] >= 0);
      key[id] = -1.0;
    } else if (!h.empty()) {
      const auto e = h.pop();
      // Must be the minimum (key, id) among present ids.
      double best = -1.0;
      std::uint32_t best_id = 0;
      for (std::uint32_t i = 0; i < 64; ++i) {
        if (key[i] < 0) continue;
        if (best < 0 || key[i] < best || (key[i] == best && i < best_id)) {
          best = key[i];
          best_id = i;
        }
      }
      ASSERT_GE(best, 0.0);
      EXPECT_EQ(e.id, best_id);
      EXPECT_DOUBLE_EQ(e.key, best);
      key[best_id] = -1.0;
    }
  }
}

// ------------------------------------------------------- CalendarQueue
//
// The calendar must pop in exactly the heap's total order — (KeyLess, id)
// — across bucketed, overflow, solo and rebuilt states; the differential
// scheduler harness (test_order_backend_diff.cc) covers the same contract
// end-to-end, these tests pin the structure directly.

using Calendar = util::IndexedCalendarQueue<double, std::less<double>>;

TEST(CalendarQueue, PopsInKeyThenIdOrder) {
  Calendar c;
  c.upsert(5, 1.0);
  c.upsert(2, 1.0);  // tie: id order
  c.upsert(9, 0.25);
  c.upsert(7, 300.0);  // far ahead: overflow at default width
  EXPECT_EQ(c.pop().id, 9u);
  EXPECT_EQ(c.pop().id, 2u);
  EXPECT_EQ(c.pop().id, 5u);
  EXPECT_EQ(c.pop().id, 7u);
  EXPECT_TRUE(c.empty());
}

TEST(CalendarQueue, SoloEntryReKeysAndPops) {
  Calendar c;
  c.upsert(3, 10.0);
  EXPECT_EQ(c.size(), 1u);
  c.upsert(3, 20.0);  // lone-entry re-key fast path
  EXPECT_DOUBLE_EQ(c.top().key, 20.0);
  const auto e = c.pop();
  EXPECT_EQ(e.id, 3u);
  EXPECT_DOUBLE_EQ(e.key, 20.0);
  EXPECT_TRUE(c.empty());
  c.upsert(3, 5.0);  // reusable afterwards
  EXPECT_EQ(c.pop().id, 3u);
}

TEST(CalendarQueue, KeysSpanningManyYearsDrainInOrder) {
  Calendar c;
  // Default width 1/16, 256 buckets -> one year spans 16.0; these keys
  // force repeated lazy overflow re-bucketing.
  for (std::uint32_t id = 0; id < 40; ++id) c.upsert(id, 100.0 * id);
  for (std::uint32_t id = 0; id < 40; ++id) {
    EXPECT_EQ(c.pop().id, id);
  }
  EXPECT_GT(c.stats().year_advances, 0u);
}

TEST(CalendarQueue, KeyBehindTheWindowRebases) {
  Calendar c;
  c.upsert(1, 1000.0);
  c.upsert(2, 1001.0);
  (void)c.pop();        // scan settles around day(1000)
  c.upsert(3, 2.0);     // regressing key: forces a window rebase
  EXPECT_EQ(c.pop().id, 3u);
  EXPECT_EQ(c.pop().id, 2u);
  EXPECT_TRUE(c.empty());
}

TEST(CalendarQueue, RandomisedAgainstIndexedHeap) {
  // Same op stream into both structures: pops and tops must agree exactly,
  // including ties.  Keys are drawn from a coarse grid so identical keys
  // (the degenerate WFQ pattern) occur constantly.
  Calendar c;
  util::IndexedDaryHeap<double, std::less<double>> h;
  std::mt19937 rng(71);
  for (int step = 0; step < 50000; ++step) {
    const auto op = rng() % 5;
    const std::uint32_t id = rng() % 48;
    if (op <= 2) {
      const double k = static_cast<double>(rng() % 512) * 0.125;
      c.upsert(id, k);
      h.upsert(id, k);
    } else if (op == 3) {
      EXPECT_EQ(c.erase(id), h.erase(id));
    } else if (!h.empty()) {
      const auto ce = c.pop();
      const auto he = h.pop();
      ASSERT_EQ(ce.id, he.id);
      ASSERT_EQ(ce.key, he.key);
    }
    ASSERT_EQ(c.size(), h.size());
    if (!h.empty()) {
      ASSERT_EQ(c.top().key, h.top().key);
    }
  }
}

TEST(CalendarQueue, TunerConvergesOnSpreadKeys) {
  // Keys advance with distinct sub-width spacing: the tuner should narrow
  // until scans are short, then stop rebuilding.
  Calendar c(/*width_hint=*/1.0);
  double base = 0;
  for (std::uint32_t id = 0; id < 64; ++id) c.upsert(id, base + id * 0.01);
  for (int cycle = 0; cycle < 200000; ++cycle) {
    const auto e = c.pop();
    base += 0.01;
    c.upsert(e.id, base + 0.64);
  }
  const auto& st = c.stats();
  EXPECT_GT(st.rebuilds, 0u);   // it did adapt...
  EXPECT_LT(st.rebuilds, 64u);  // ...and settled instead of thrashing
  EXPECT_LT(static_cast<double>(st.scanned_slots) / st.finds, 8.0);
}

TEST(CalendarQueue, TunerDoesNotCollapseOnDegenerateTies) {
  // Dozens of entries share bit-identical keys (saturated equal-weight WFQ
  // tags are quantised to a grid).  Narrowing can never split such a
  // cluster; the tuner must notice and leave the width alone.
  Calendar c;
  double grid = 0;
  for (std::uint32_t id = 0; id < 64; ++id) c.upsert(id, 0.1);
  for (int cycle = 0; cycle < 100000; ++cycle) {
    const auto e = c.pop();
    if (cycle % 64 == 63) grid += 0.1;
    c.upsert(e.id, grid + 0.2);
  }
  EXPECT_EQ(c.stats().rebuilds, 0u);
  EXPECT_GT(c.bucket_width(), 1e-3);  // never ran away toward kMinExp
}

TEST(OrderIndex, AutoMigratesAcrossThresholdsKeepingOrder) {
  // Grow past kAutoUp (heap -> calendar), then drain below kAutoDown
  // (calendar -> heap); every pop must still match a pure-heap reference.
  util::OrderIndex<double, std::less<double>> auto_idx(
      util::OrderBackend::kAuto);
  util::OrderIndex<double, std::less<double>> heap_idx(
      util::OrderBackend::kHeap);
  std::mt19937 rng(5);
  std::uint32_t live = 0;
  EXPECT_FALSE(auto_idx.on_calendar());
  for (int step = 0; step < 30000; ++step) {
    // Saw-tooth population: repeatedly crosses both hysteresis edges.
    const bool grow = (step / 300) % 2 == 0;
    if (grow || live == 0) {
      const std::uint32_t id = rng() % 256;
      const double k = static_cast<double>(rng() % 1000) * 0.05;
      auto_idx.upsert(id, k);
      heap_idx.upsert(id, k);
    } else {
      const auto a = auto_idx.pop();
      const auto h = heap_idx.pop();
      ASSERT_EQ(a.id, h.id);
      ASSERT_EQ(a.key, h.key);
    }
    live = static_cast<std::uint32_t>(heap_idx.size());
    ASSERT_EQ(auto_idx.size(), heap_idx.size());
  }
}

// --------------------------------------------------------- InlineAction

TEST(InlineAction, InvokesSmallInlineCallable) {
  int hits = 0;
  sim::InlineAction a([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(a));
  a();
  a();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, MovePreservesCallableAndEmptiesSource) {
  int hits = 0;
  sim::InlineAction a([&hits] { ++hits; });
  sim::InlineAction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineAction, LargeCaptureTakesBoxedPathAndWorks) {
  std::array<double, 32> big{};
  big[31] = 2.25;
  double got = 0;
  static_assert(sizeof(big) > sim::InlineAction::kCapacity);
  sim::InlineAction a([big, &got] { got = big[31]; });
  a();
  EXPECT_DOUBLE_EQ(got, 2.25);
}

TEST(InlineAction, ResetDestroysCapturedState) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  sim::InlineAction a([token = std::move(token)] {});
  EXPECT_FALSE(watch.expired());
  a.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(InlineAction, MoveOnlyCapturesSupported) {
  auto owned = std::make_unique<int>(5);
  int got = 0;
  sim::InlineAction a([owned = std::move(owned), &got] { got = *owned; });
  sim::InlineAction b = std::move(a);
  b();
  EXPECT_EQ(got, 5);
}

TEST(InlineAction, MoveAssignmentReleasesPreviousCallable) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  sim::InlineAction a([token = std::move(token)] {});
  a = sim::InlineAction([] {});
  EXPECT_TRUE(watch.expired());
  a();  // still callable
}

}  // namespace
}  // namespace ispn
