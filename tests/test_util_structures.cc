// Unit tests for the engine's hot-path containers: Ring, DaryHeap,
// IndexedDaryHeap, and the InlineAction SBO callable.

#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <functional>
#include <memory>
#include <random>
#include <vector>

#include "sim/inline_action.h"
#include "util/dary_heap.h"
#include "util/indexed_heap.h"
#include "util/ring.h"

namespace ispn {
namespace {

// ---------------------------------------------------------------- Ring

TEST(Ring, FifoOrderAcrossGrowthAndWraparound) {
  util::Ring<int> r;
  int next_in = 0;
  int next_out = 0;
  // Interleave pushes and pops so head wraps the buffer many times while
  // the ring also grows.
  for (int round = 0; round < 1000; ++round) {
    for (int i = 0; i < 3; ++i) r.push_back(next_in++);
    for (int i = 0; i < 2; ++i) EXPECT_EQ(r.pop_front(), next_out++);
  }
  EXPECT_EQ(r.size(), 1000u);
  while (!r.empty()) EXPECT_EQ(r.pop_front(), next_out++);
}

TEST(Ring, PopBackAndIndexing) {
  util::Ring<int> r;
  for (int i = 0; i < 10; ++i) r.push_back(i);
  EXPECT_EQ(r.front(), 0);
  EXPECT_EQ(r.back(), 9);
  EXPECT_EQ(r[3], 3);
  EXPECT_EQ(r.pop_back(), 9);
  EXPECT_EQ(r.back(), 8);
  EXPECT_EQ(r.size(), 9u);
}

TEST(Ring, EraseAtShiftsTheShorterSide) {
  for (std::size_t victim : {1u, 4u, 7u}) {
    util::Ring<int> r;
    for (int i = 0; i < 9; ++i) r.push_back(i);
    EXPECT_EQ(r.erase_at(victim), static_cast<int>(victim));
    std::vector<int> rest;
    while (!r.empty()) rest.push_back(r.pop_front());
    std::vector<int> expect;
    for (int i = 0; i < 9; ++i) {
      if (static_cast<std::size_t>(i) != victim) expect.push_back(i);
    }
    EXPECT_EQ(rest, expect);
  }
}

TEST(Ring, HoldsMoveOnlyTypes) {
  util::Ring<std::unique_ptr<int>> r;
  for (int i = 0; i < 20; ++i) r.push_back(std::make_unique<int>(i));
  for (int i = 0; i < 20; ++i) EXPECT_EQ(*r.pop_front(), i);
}

// ------------------------------------------------------------- DaryHeap

TEST(DaryHeap, PopsInSortedOrder) {
  util::DaryHeap<int> h;
  std::mt19937 rng(7);
  std::vector<int> values;
  for (int i = 0; i < 500; ++i) values.push_back(static_cast<int>(rng()));
  for (int v : values) h.push(v);
  std::sort(values.begin(), values.end());
  for (int v : values) EXPECT_EQ(h.pop(), v);
  EXPECT_TRUE(h.empty());
}

TEST(DaryHeap, RemoveAtKeepsHeapValid) {
  util::DaryHeap<int> h;
  std::mt19937 rng(11);
  std::vector<int> values;
  for (int i = 0; i < 200; ++i) values.push_back(static_cast<int>(rng() % 1000));
  for (int v : values) h.push(v);
  // Remove 50 arbitrary raw positions, tracking the multiset.
  std::vector<int> removed;
  for (int i = 0; i < 50; ++i) {
    const std::size_t at = rng() % h.size();
    removed.push_back(h.remove_at(at));
  }
  std::vector<int> expect = values;
  for (int v : removed) {
    expect.erase(std::find(expect.begin(), expect.end(), v));
  }
  std::sort(expect.begin(), expect.end());
  for (int v : expect) EXPECT_EQ(h.pop(), v);
}

// ------------------------------------------------------ IndexedDaryHeap

TEST(IndexedHeap, UpsertInsertsAndReKeys) {
  util::IndexedDaryHeap<double, std::less<double>> h;
  h.upsert(3, 5.0);
  h.upsert(1, 2.0);
  h.upsert(2, 8.0);
  EXPECT_EQ(h.top().id, 1u);
  h.upsert(1, 9.0);  // re-key upward
  EXPECT_EQ(h.top().id, 3u);
  h.upsert(2, 1.0);  // re-key downward
  EXPECT_EQ(h.top().id, 2u);
  EXPECT_EQ(h.size(), 3u);  // still one entry per id
}

TEST(IndexedHeap, TiesBreakByIdAscending) {
  util::IndexedDaryHeap<double, std::less<double>> h;
  h.upsert(5, 1.0);
  h.upsert(2, 1.0);
  h.upsert(9, 1.0);
  EXPECT_EQ(h.pop().id, 2u);
  EXPECT_EQ(h.pop().id, 5u);
  EXPECT_EQ(h.pop().id, 9u);
}

TEST(IndexedHeap, EraseRemovesAndAllowsReinsert) {
  util::IndexedDaryHeap<double, std::less<double>> h;
  for (std::uint32_t id = 0; id < 20; ++id) h.upsert(id, 100.0 - id);
  EXPECT_TRUE(h.erase(7));
  EXPECT_FALSE(h.erase(7));
  EXPECT_FALSE(h.contains(7));
  EXPECT_EQ(h.size(), 19u);
  h.upsert(7, 0.5);
  EXPECT_EQ(h.top().id, 7u);
}

TEST(IndexedHeap, RandomisedAgainstReference) {
  util::IndexedDaryHeap<double, std::less<double>> h;
  std::vector<double> key(64, -1.0);  // -1 = absent
  std::mt19937 rng(23);
  for (int step = 0; step < 20000; ++step) {
    const auto op = rng() % 4;
    const std::uint32_t id = rng() % 64;
    if (op == 0 || op == 1) {
      const double k = static_cast<double>(rng() % 10000);
      h.upsert(id, k);
      key[id] = k;
    } else if (op == 2) {
      EXPECT_EQ(h.erase(id), key[id] >= 0);
      key[id] = -1.0;
    } else if (!h.empty()) {
      const auto e = h.pop();
      // Must be the minimum (key, id) among present ids.
      double best = -1.0;
      std::uint32_t best_id = 0;
      for (std::uint32_t i = 0; i < 64; ++i) {
        if (key[i] < 0) continue;
        if (best < 0 || key[i] < best || (key[i] == best && i < best_id)) {
          best = key[i];
          best_id = i;
        }
      }
      ASSERT_GE(best, 0.0);
      EXPECT_EQ(e.id, best_id);
      EXPECT_DOUBLE_EQ(e.key, best);
      key[best_id] = -1.0;
    }
  }
}

// --------------------------------------------------------- InlineAction

TEST(InlineAction, InvokesSmallInlineCallable) {
  int hits = 0;
  sim::InlineAction a([&hits] { ++hits; });
  ASSERT_TRUE(static_cast<bool>(a));
  a();
  a();
  EXPECT_EQ(hits, 2);
}

TEST(InlineAction, MovePreservesCallableAndEmptiesSource) {
  int hits = 0;
  sim::InlineAction a([&hits] { ++hits; });
  sim::InlineAction b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InlineAction, LargeCaptureTakesBoxedPathAndWorks) {
  std::array<double, 32> big{};
  big[31] = 2.25;
  double got = 0;
  static_assert(sizeof(big) > sim::InlineAction::kCapacity);
  sim::InlineAction a([big, &got] { got = big[31]; });
  a();
  EXPECT_DOUBLE_EQ(got, 2.25);
}

TEST(InlineAction, ResetDestroysCapturedState) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  sim::InlineAction a([token = std::move(token)] {});
  EXPECT_FALSE(watch.expired());
  a.reset();
  EXPECT_TRUE(watch.expired());
  EXPECT_FALSE(static_cast<bool>(a));
}

TEST(InlineAction, MoveOnlyCapturesSupported) {
  auto owned = std::make_unique<int>(5);
  int got = 0;
  sim::InlineAction a([owned = std::move(owned), &got] { got = *owned; });
  sim::InlineAction b = std::move(a);
  b();
  EXPECT_EQ(got, 5);
}

TEST(InlineAction, MoveAssignmentReleasesPreviousCallable) {
  auto token = std::make_shared<int>(1);
  std::weak_ptr<int> watch = token;
  sim::InlineAction a([token = std::move(token)] {});
  a = sim::InlineAction([] {});
  EXPECT_TRUE(watch.expired());
  a();  // still callable
}

}  // namespace
}  // namespace ispn
