// Million-flow state-scale soak (ctest label: `scale`).
//
// A fan-in tree carries ONE MILLION concurrent datagram CBR flows under
// hierarchical (two-level aggregate) scheduling.  Offered load is the same
// 360k pkt/s as the 1024-flow bench anchor — the sweep variable is flow
// STATE, not work — so everything that scales with flows is on trial at
// once: SlotMap-backed host sink tables, direct-mapped route/sink lookup
// caches plus the sink-slot label fast path, per-flow source timers
// piling a million keys onto the timing wheel (whose density-gated
// resolution adaptation must recognise this spread-out load and hold the
// base resolution), and the bounded per-class aggregates that keep
// per-link scheduler state flat.
//
// Invariants:
//
//   allocation    after the batch-start stagger (flows/total_pps ~ 2.9 s)
//                 and a warm margin, a 2-simulated-second window performs
//                 ZERO heap allocations — a million flows of state churn
//                 must be as allocation-clean at steady state as 64 (this
//                 binary links alloc_hook.cc's counting new/delete);
//
//   conservation  the packet ledger closes exactly at this scale;
//
//   completion    the run finishes in bounded wall time (enforced by the
//                 ctest timeout) and actually moves ~1M+ packets.
//
// Excluded with -LE "soak|scale" in sanitizer CI: the point is scale, and
// instrumented allocators would only slow it without adding coverage.

#include <gtest/gtest.h>

#include "alloc_hook.h"
#include "scenario/runner.h"

namespace ispn {
namespace {

TEST(ScaleMillionFlows, FanInSteadyStateAllocationFree) {
  constexpr int kFlows = 1 << 20;  // 1048576
  constexpr double kLinkRate = 1e8;  // 100k pkt/s of 1000-bit packets

  scenario::ScenarioSpec spec;
  spec.fabric = scenario::FabricKind::kFanInTree;
  spec.tree_depth = 2;
  spec.tree_width = 4;
  spec.link_rate = kLinkRate;
  spec.arrival_rate = 0;  // deterministic batch at t=0
  spec.mean_hold = 0;     // flows never depart
  spec.target_flows = kFlows;
  spec.p_guaranteed = 0;
  spec.p_predicted = 0;   // all datagram
  spec.source = scenario::SourceKind::kCbr;
  spec.hierarchical = true;
  // 90% load on the 4 leaf->root links: 360k pkt/s total, ~0.34 pkt/s per
  // flow, so the batch-start stagger spreads over flows/total_pps ~ 2.9 s.
  const double total_pps = 0.9 * kLinkRate * 4 / spec.packet_bits;
  spec.avg_rate_pps = total_pps / kFlows;
  spec.run_seconds = 6.0;
  spec.seed = 23;

  scenario::ScenarioRunner runner(spec);
  runner.prepare();

  // Steady-state window: every source has emitted at least once by
  // t ~ 2.9 (stagger), margin to t=3.5, measure [3.5, 5.5].
  std::uint64_t allocs_at_start = 0;
  std::uint64_t delivered_at_start = 0;
  std::uint64_t steady_allocs = ~0ull;
  std::uint64_t window_delivered = 0;
  runner.net().sim().at(3.5, [&] {
    allocs_at_start = testhook::allocation_count();
    delivered_at_start = runner.delivered();
  });
  runner.net().sim().at(5.5, [&] {
    steady_allocs = testhook::allocation_count() - allocs_at_start;
    window_delivered = runner.delivered() - delivered_at_start;
  });

  const scenario::ScenarioReport report = runner.run();

  EXPECT_EQ(steady_allocs, 0u)
      << "steady-state phase allocated with a million live flows";
  EXPECT_GT(window_delivered, 500000u)
      << "measured window moved too little traffic to prove anything";

  // Scale actually reached.
  EXPECT_EQ(report.flows_offered, static_cast<std::uint64_t>(kFlows));
  EXPECT_EQ(report.flows_admitted, static_cast<std::uint64_t>(kFlows));
  EXPECT_GE(report.generated, 1000000u);
  EXPECT_GE(report.delivered, 1000000u);

  // The ledger closes exactly at this scale.
  EXPECT_TRUE(report.conserved());
  EXPECT_EQ(report.queued_end, 0u);
  EXPECT_EQ(report.unclaimed, 0u);

  // Every delivery was label-switched: runner sources stamp the sink
  // slot at flow setup, so no delivery falls back to the table lookup —
  // exactly the path a million-flow round-robin needs, since a 256-line
  // direct-mapped cache would thrash by design.
  EXPECT_GE(report.sink_label_hits, report.delivered);
  EXPECT_GE(report.route_cache_hits + report.route_cache_misses,
            report.delivered);
}

}  // namespace
}  // namespace ispn
