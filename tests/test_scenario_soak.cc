// Million-packet scenario soak: live measurement-based admission at scale.
//
// A 3-bottleneck parking lot (10 Mbit/s hops) takes ~50 flow requests
// over the first 20 simulated seconds — guaranteed, predicted and
// datagram mixed — admitted or refused by the live measurement feed, then
// runs heavily overloaded (~3x the per-hop capacity) for a minute of
// simulated time: 1.5M+ offered packets.  Invariants:
//
//   conservation   generated == source_drops + injected and
//                  injected == delivered + net_drops + queued (+unclaimed),
//                  checked mid-flight (queued != 0) and after the drain
//                  (queued == 0); rejected flows never inject, so the
//                  flow-level ledger offered = admitted + rejected closes
//                  the account the ISSUE's formula describes;
//
//   allocation     once the arrival churn ends and every pool has warmed,
//                  the steady-state phase performs ZERO heap allocations
//                  (this binary links the counting operator new/delete from
//                  alloc_hook.cc) — the per-packet scenario aggregation
//                  (P² quantiles, Welford moments, measurement meters) must
//                  be as allocation-clean as the engine underneath.
//
// ctest runs this under the `soak` label so sanitizer jobs can exclude it
// (it still passes under ASan/UBSan, just slowly).

#include <gtest/gtest.h>

#include "alloc_hook.h"
#include "scenario/runner.h"

namespace ispn {
namespace {

TEST(ScenarioSoak, ParkingLotMillionPacketsWithLiveAdmission) {
  scenario::ScenarioSpec spec;
  spec.fabric = scenario::FabricKind::kParkingLot;
  spec.parking_hops = 3;
  spec.link_rate = 1e7;  // 10k pkt/s per hop
  spec.arrival_rate = 6.0;
  spec.arrival_window = 20.0;
  spec.target_flows = 40;
  spec.mean_hold = 0;  // churn is in the arrivals; nobody departs
  spec.p_guaranteed = 0.25;
  spec.p_predicted = 0.4;
  spec.source = scenario::SourceKind::kCbr;
  spec.avg_rate_pps = 850.0;
  spec.run_seconds = 60.0;
  spec.seed = 21;

  scenario::ScenarioRunner runner(spec);
  runner.prepare();

  // Mid-flight ledgers, computed without allocating.
  const auto generated = [&] {
    std::uint64_t n = 0;
    for (const auto& [flow, st] : runner.net().all_stats()) n += st.generated;
    return n;
  };
  const auto source_drops = [&] {
    std::uint64_t n = 0;
    for (const auto& [flow, st] : runner.net().all_stats()) {
      n += st.source_drops;
    }
    return n;
  };
  const auto net_drops = [&] {
    std::uint64_t n = 0;
    for (const auto& [flow, st] : runner.net().all_stats()) n += st.net_drops;
    return n;
  };
  const auto queued = [&] {
    std::uint64_t n = 0;
    for (const core::LinkId& link : runner.ispn().links()) {
      net::Port* p = runner.net().port(link.first, link.second);
      n += p->scheduler().packets() + (p->busy() ? 1 : 0);
    }
    return n;
  };

  // Steady-state window: arrivals end at t=20, warmup margin to t=30.
  std::uint64_t allocs_at_30 = 0;
  std::uint64_t steady_allocs = ~0ull;
  bool midpoint_checked = false;
  runner.net().sim().at(30.0, [&] {
    allocs_at_30 = testhook::allocation_count();
  });
  runner.net().sim().at(40.0, [&] {
    midpoint_checked = true;
    EXPECT_GT(queued(), 0u);
    EXPECT_EQ(generated(),
              source_drops() + runner.delivered() + net_drops() + queued());
  });
  runner.net().sim().at(50.0, [&] {
    steady_allocs = testhook::allocation_count() - allocs_at_30;
  });

  const scenario::ScenarioReport report = runner.run();

  EXPECT_TRUE(midpoint_checked);
  EXPECT_EQ(steady_allocs, 0u) << "steady-state scenario phase allocated";

  // Scale actually reached, with live admission actually refusing.
  EXPECT_GE(report.generated, 1000000u)
      << "soak did not reach 1M offered packets";
  EXPECT_GT(report.flows_rejected, 0u) << "admission never refused a flow";
  EXPECT_EQ(report.flows_offered,
            report.flows_admitted + report.flows_rejected);

  // Conservation after the drain.
  EXPECT_TRUE(report.conserved());
  EXPECT_EQ(report.queued_end, 0u);
  EXPECT_EQ(report.unclaimed, 0u);

  // The parking lot genuinely overloaded and still delivered: substantial
  // loss AND substantial delivery.
  EXPECT_GT(report.net_drops, report.generated / 10);
  EXPECT_GT(report.delivered, report.generated / 5);

  // Every admitted REAL-TIME flow got something through — that is the
  // admission contract.  Datagram flows are never refused (paper §9) and
  // sit below every real-time class, so at 3x overload an unlucky one may
  // legitimately starve; the datagram CLASS as a whole must still make
  // progress on its 10% quota.
  for (const auto& f : report.flows) {
    if (f.admitted && f.service != net::ServiceClass::kDatagram) {
      EXPECT_GT(f.delivered, 0u) << "flow " << f.flow;
    }
  }
  EXPECT_GT(report.classes[static_cast<std::size_t>(
                net::ServiceClass::kDatagram)].delivered, 0u);
}

TEST(ScenarioSoak, ShardedParkingLotSteadyStateAllocationFree) {
  // The sharded execution model must honor the same discipline: once the
  // pools and mailbox rings have warmed, a window-synchronized run
  // performs ZERO steady-state heap allocations.  shards=1 runs every
  // domain inline on this thread (no worker pool, no thread-start
  // allocations) while still exercising the full sharded machinery —
  // per-domain clocks and pools, cross-domain mailbox handoff, barrier
  // rounds, per-domain aggregation.
  scenario::ScenarioSpec spec;
  spec.fabric = scenario::FabricKind::kParkingLot;
  spec.parking_hops = 3;
  spec.link_rate = 1e7;
  spec.arrival_rate = 6.0;
  spec.arrival_window = 15.0;
  spec.target_flows = 40;
  spec.mean_hold = 0;
  spec.p_guaranteed = 0.25;
  spec.p_predicted = 0.4;
  spec.source = scenario::SourceKind::kCbr;
  spec.avg_rate_pps = 850.0;
  spec.run_seconds = 40.0;
  spec.shards = 1;
  spec.seed = 22;

  scenario::ScenarioRunner runner(spec);
  runner.prepare();
  ASSERT_TRUE(runner.net().sharded());
  ASSERT_NE(runner.engine(), nullptr);

  // Arrivals end at t=15; warmup margin to t=25.  The probes are control
  // events: they execute at window barriers, while every domain is
  // quiescent.
  std::uint64_t allocs_at_25 = 0;
  std::uint64_t steady_allocs = ~0ull;
  std::uint64_t delivered_at_25 = 0;
  runner.net().sim().at(25.0, [&] {
    allocs_at_25 = testhook::allocation_count();
    delivered_at_25 = runner.delivered();
  });
  runner.net().sim().at(35.0, [&] {
    steady_allocs = testhook::allocation_count() - allocs_at_25;
  });

  const scenario::ScenarioReport report = runner.run();

  EXPECT_EQ(steady_allocs, 0u)
      << "sharded steady-state phase allocated (mailbox overflow, pool "
         "growth, or a control-path container)";
  EXPECT_GT(report.delivered, delivered_at_25)
      << "no traffic crossed the measured window";

  EXPECT_GE(report.generated, 500000u);
  EXPECT_TRUE(report.conserved());
  EXPECT_EQ(report.queued_end, 0u);
  EXPECT_EQ(report.unclaimed, 0u);
  EXPECT_GT(report.flows_rejected, 0u) << "admission never refused a flow";
}

TEST(ScenarioSoak, ChaosMinuteEveryFaultFamilyWithMonitorOn) {
  // A minute of the chaos preset: all four fault families — crashes,
  // brown-outs, transient loss, flapping links — churning a mesh under
  // live admission, with the invariant monitor auditing at 2 Hz the
  // whole way.  No allocation assertion here: crash recovery and
  // re-admission legitimately rebuild per-flow state.  What must hold is
  // the self-checking contract — every family actually fired, both new
  // ledger buckets are non-empty, the restore machinery ran, and ~120
  // live audits found NOTHING, then the drained end state conserves.
  scenario::ScenarioSpec spec = scenario::preset("chaos");
  spec.run_seconds = 60.0;
  spec.seed = 40;

  scenario::ScenarioRunner runner(spec);
  const scenario::ScenarioReport report = runner.run();

  EXPECT_GT(report.nodes_crashed, 0u);
  EXPECT_GT(report.nodes_recovered, 0u);
  EXPECT_GT(report.brownouts, 0u);
  EXPECT_GT(report.loss_episodes, 0u);
  EXPECT_GT(report.links_failed, 0u);
  EXPECT_GT(report.node_failure_drops, 0u);
  EXPECT_GT(report.fault_drops, 0u);
  EXPECT_GT(report.restore_attempts, 0u);

  EXPECT_GE(report.invariant_audits, 100u);
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_TRUE(report.conserved());
  EXPECT_EQ(report.queued_end, 0u);
  EXPECT_EQ(report.unclaimed, 0u);
}

}  // namespace
}  // namespace ispn
