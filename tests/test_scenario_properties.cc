// Property tests for admission invariants (fuzzed over 10+ seeds each):
//
//   1. An admitted guaranteed flow with a conforming (policed) source
//      never sees queueing delay beyond its Parekh–Gallager bound.
//   2. The committed guaranteed clock rates on a link never exceed the
//      real-time share (1 - datagram_quota) of its capacity, across any
//      interleaving of requests and releases.
//   3. A rejected flow leaves the network bit-identical to never having
//      asked: the subsequent packet schedule, to the last trace record,
//      does not depend on the refused request.
//   4. A link failure elsewhere in the fabric never costs an untouched
//      guaranteed flow its Parekh–Gallager bound: WFQ isolation plus
//      re-admission of every rerouted flow against the live measurements
//      keeps the surviving paths' guarantees intact.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/tracer.h"
#include "scenario/runner.h"
#include "sim/random.h"

namespace ispn {
namespace {

// --- 1: guaranteed delay bounds -------------------------------------------

TEST(AdmissionProperty, AdmittedGuaranteedFlowsRespectPgBound) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    scenario::ScenarioSpec spec;
    spec.fabric =
        seed % 2 == 0 ? scenario::FabricKind::kChain
                      : scenario::FabricKind::kParkingLot;
    spec.chain_switches = 5;
    spec.parking_hops = 3;
    spec.run_seconds = 5.0;
    spec.arrival_rate = 8.0;
    spec.mean_hold = 2.0;
    spec.target_flows = 24;
    spec.p_guaranteed = 0.5;  // guaranteed-heavy mix
    spec.p_predicted = 0.3;
    spec.seed = seed;
    scenario::ScenarioRunner runner(spec);
    const auto report = runner.run();
    ASSERT_TRUE(report.conserved()) << "seed " << seed;

    std::size_t checked = 0;
    for (const auto& f : report.flows) {
      if (f.service != net::ServiceClass::kGuaranteed || !f.admitted ||
          f.delivered == 0) {
        continue;
      }
      ++checked;
      ASSERT_GT(f.bound, 0.0);
      EXPECT_LE(f.max_delay, f.bound)
          << "seed " << seed << " flow " << f.flow << " (" << f.hops
          << " hops): guaranteed delay " << f.max_delay * 1e3
          << " ms exceeded its a-priori bound " << f.bound * 1e3 << " ms";
    }
    EXPECT_GT(checked, 0u) << "seed " << seed
                           << ": no guaranteed flow ever delivered";
  }
}

// --- 2: clock rates never oversubscribe -----------------------------------

TEST(AdmissionProperty, GuaranteedRatesNeverExceedRealtimeShare) {
  const std::vector<sim::Duration> targets = {0.008, 0.064};
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    sim::Rng rng(seed, 77);
    core::AdmissionController ac(
        {core::AdmissionController::Mode::kParameterBased, 0.1});
    constexpr int kLinks = 4;
    const sim::Rate mu = 1e6;
    std::vector<core::LinkId> links;
    for (int l = 0; l < kLinks; ++l) {
      links.push_back({l, l + 10});
      ac.register_link(links.back(), mu, targets);
    }

    struct Open {
      core::FlowSpec spec;
      std::vector<core::LinkId> path;
    };
    std::vector<Open> open;
    net::FlowId next_id = 0;
    for (int step = 0; step < 400; ++step) {
      if (open.empty() || rng.bernoulli(0.7)) {
        // Random request over a random contiguous path.
        const std::size_t first = rng.below(kLinks);
        const std::size_t len = 1 + rng.below(kLinks - first);
        std::vector<core::LinkId> path(links.begin() + first,
                                       links.begin() + first + len);
        core::FlowSpec fs;
        fs.flow = next_id++;
        if (rng.bernoulli(0.6)) {
          fs.service = net::ServiceClass::kGuaranteed;
          fs.guaranteed = core::GuaranteedSpec{rng.uniform(2e4, 4e5)};
        } else {
          fs.service = net::ServiceClass::kPredicted;
          fs.predicted = core::PredictedSpec{
              {rng.uniform(2e4, 2e5), rng.uniform(1e4, 6e4)},
              rng.uniform(0.02, 0.3), 0.01};
        }
        const auto c = ac.request(fs, path, 0.1 * step);
        if (c.admitted) open.push_back({fs, path});
      } else {
        // Random release.
        const std::size_t victim = rng.below(open.size());
        ac.release(open[victim].spec, open[victim].path);
        open[victim] = open.back();
        open.pop_back();
      }
      // The invariant, after every operation, on every link.
      for (const auto& link : links) {
        ASSERT_LT(ac.guaranteed_rate(link), 0.9 * mu)
            << "seed " << seed << " step " << step;
        ASSERT_GE(ac.guaranteed_rate(link), 0.0)
            << "seed " << seed << " step " << step;
      }
    }
  }
}

TEST(AdmissionProperty, ScenarioEndStateRespectsRealtimeShare) {
  // The same invariant through the whole runner (measurement mode, churn,
  // preemption): at run end every link's committed guaranteed rate is
  // still below the real-time share.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    scenario::ScenarioSpec spec = scenario::preset("churn");
    spec.run_seconds = 4.0;
    spec.seed = seed;
    scenario::ScenarioRunner runner(spec);
    const auto report = runner.run();
    ASSERT_TRUE(report.conserved()) << "seed " << seed;
    auto& ispn = runner.ispn();
    for (const core::LinkId& link : ispn.links()) {
      EXPECT_LT(ispn.admission().guaranteed_rate(link),
                0.9 * spec.link_rate)
          << "seed " << seed;
    }
  }
}

// --- 3: rejection leaves no trace -----------------------------------------

std::vector<net::PacketTracer::Record> churn_trace(std::uint64_t seed,
                                                   bool with_doomed_ask) {
  scenario::ScenarioSpec spec = scenario::preset("churn");
  spec.preempt_on_reject = false;  // the doomed ask must change nothing
  spec.run_seconds = 4.0;
  spec.seed = seed;
  scenario::ScenarioRunner runner(spec);
  net::PacketTracer tracer(1u << 22);
  runner.set_tracer(&tracer);
  runner.prepare();
  tracer.attach(runner.net());

  if (with_doomed_ask) {
    // Mid-run, present requests admission must refuse: an oversized
    // guaranteed clock, and a predicted delay no class can meet.  Both
    // run the full decision path (including the measurement queries that
    // rotate estimator state) and must leave the network bit-identical.
    sim::Rng rng(seed, 991);
    const sim::Time when = rng.uniform(1.0, 2.5);
    const sim::Rate huge = spec.link_rate * rng.uniform(1.0, 20.0);
    const auto od = runner.fabric().od_long.front();
    runner.net().sim().at(when, [&runner, huge, od] {
      auto& ispn = runner.ispn();
      core::FlowSpec g;
      g.flow = 20000;
      g.src = od.first;
      g.dst = od.second;
      g.service = net::ServiceClass::kGuaranteed;
      g.guaranteed = core::GuaranteedSpec{huge};
      const auto c1 = ispn.try_open_flow(g);
      EXPECT_FALSE(c1.commitment.admitted);

      core::FlowSpec p;
      p.flow = 20001;
      p.src = od.first;
      p.dst = od.second;
      p.service = net::ServiceClass::kPredicted;
      p.predicted = core::PredictedSpec{{8.5e4, 5e4}, 1e-6, 0.01};
      const auto c2 = ispn.try_open_flow(p);
      EXPECT_FALSE(c2.commitment.admitted);
    });
  }

  const auto report = runner.run();
  EXPECT_TRUE(report.conserved());
  return tracer.records();
}

TEST(AdmissionProperty, RejectedFlowLeavesStateBitIdentical) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const auto without = churn_trace(seed, false);
    const auto with = churn_trace(seed, true);
    ASSERT_GT(without.size(), 500u) << "seed " << seed;
    ASSERT_EQ(without.size(), with.size()) << "seed " << seed;
    for (std::size_t i = 0; i < without.size(); ++i) {
      const auto& a = without[i];
      const auto& b = with[i];
      ASSERT_TRUE(a.time == b.time && a.event == b.event &&
                  a.flow == b.flow && a.seq == b.seq && a.node == b.node &&
                  a.queueing_delay == b.queueing_delay &&
                  a.jitter_offset == b.jitter_offset)
          << "seed " << seed << ": record " << i
          << " diverged after a rejected request (flow " << b.flow
          << " seq " << b.seq << " t=" << b.time << ")";
    }
  }
}

// --- 4: failures never disturb untouched guaranteed flows -----------------

TEST(AdmissionProperty, SurvivingGuaranteedFlowsKeepPgBoundThroughFailures) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    scenario::ScenarioSpec spec = scenario::preset("failure");
    spec.run_seconds = 8.0;
    spec.p_guaranteed = 0.5;  // guaranteed-heavy mix
    spec.p_predicted = 0.25;
    spec.link_failure_rate = 0;  // one explicit mid-run failure + repair
    spec.link_failures.push_back({0, 2, 2.0, 5.0});  // mesh (0,0)<->(0,1)
    spec.seed = seed;
    scenario::ScenarioRunner runner(spec);
    const auto report = runner.run();
    ASSERT_TRUE(report.conserved()) << "seed " << seed;
    ASSERT_EQ(report.links_failed, 1u) << "seed " << seed;

    // Flows the failure touched (rerouted, degraded, torn down) carry
    // mixed-path deliveries and answer to no single a-priori bound; every
    // flow the failure did NOT touch still answers to its original one.
    std::size_t checked = 0;
    for (const auto& f : report.flows) {
      if (f.service != net::ServiceClass::kGuaranteed || !f.admitted ||
          f.degraded || f.reroutes > 0 || f.delivered == 0) {
        continue;
      }
      ++checked;
      ASSERT_GT(f.bound, 0.0) << "seed " << seed;
      EXPECT_LE(f.max_delay, f.bound)
          << "seed " << seed << " flow " << f.flow << " (" << f.hops
          << " hops): an unrelated link failure cost this untouched "
          << "guaranteed flow its bound (" << f.max_delay * 1e3 << " ms > "
          << f.bound * 1e3 << " ms)";
    }
    EXPECT_GT(checked, 0u) << "seed " << seed
                           << ": every guaranteed flow was touched";
  }
}

}  // namespace
}  // namespace ispn
