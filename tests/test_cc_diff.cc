// Differential determinism for the pluggable congestion-control stacks.
//
// The contract: a responsive (TCP-driven) scenario is a function of the
// SPEC alone.  For every CC stack {reno, bbr, rack} the packet trace, the
// admission decision log, the conservation ledger, the per-flow outcome
// table AND the new feedback counters (marks, echoes, backoffs) must be
// byte-identical across EventBackend {heap, wheel} x OrderBackend {heap,
// calendar} x shard counts.  As everywhere else in this repo, shards=0
// (classic, zero propagation delay) and shards>=1 (per-hop link latency)
// are distinct deterministic references; within each reference class every
// combination must agree bit-for-bit, doubles compared with ==.
//
// Two seeded workloads per stack: a dumbbell (2-switch chain, the
// canonical shared bottleneck) and an overloaded parking lot (drops =>
// retransmissions, recovery, reorder timers).  Binary feedback is on
// everywhere so the mark/echo/backoff loop is part of the pinned surface.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/tracer.h"
#include "scenario/runner.h"

namespace ispn {
namespace {

struct CcRun {
  std::vector<net::PacketTracer::Record> trace;
  std::uint64_t decision_hash = 0;
  std::uint64_t events = 0;
  // Conservation ledger.
  std::uint64_t generated = 0, source_drops = 0, injected = 0, delivered = 0,
                net_drops = 0, queued_end = 0, unclaimed = 0;
  // Responsive-plane counters.
  std::uint64_t cc_flows = 0, cc_marks = 0, cc_mark_samples = 0, cc_echoes = 0,
                cc_backoffs = 0;
  std::uint64_t tcp_segments = 0, tcp_delivered = 0, tcp_retransmits = 0,
                tcp_timeouts = 0, tcp_reorder_timeouts = 0;
  std::vector<scenario::FlowOutcome> flows;
};

CcRun run_cc(scenario::ScenarioSpec spec, int shards,
             sim::EventBackend event_backend,
             sched::OrderBackend order_backend) {
  spec.shards = shards;
  spec.event_backend = event_backend;
  spec.order_backend = order_backend;
  scenario::ScenarioRunner runner(std::move(spec));
  net::PacketTracer tracer(1u << 22);
  runner.set_tracer(&tracer);
  runner.prepare();
  tracer.attach(runner.net());
  const scenario::ScenarioReport report = runner.run();
  tracer.finalize();

  EXPECT_FALSE(tracer.truncated());
  EXPECT_TRUE(report.conserved());
  CcRun out;
  out.trace = tracer.records();
  out.decision_hash = report.decision_hash();
  out.events = report.events;
  out.generated = report.generated;
  out.source_drops = report.source_drops;
  out.injected = report.injected;
  out.delivered = report.delivered;
  out.net_drops = report.net_drops;
  out.queued_end = report.queued_end;
  out.unclaimed = report.unclaimed;
  out.cc_flows = report.cc_flows;
  out.cc_marks = report.cc_marks;
  out.cc_mark_samples = report.cc_mark_samples;
  out.cc_echoes = report.cc_echoes;
  out.cc_backoffs = report.cc_backoffs;
  out.tcp_segments = report.tcp_segments;
  out.tcp_delivered = report.tcp_delivered;
  out.tcp_retransmits = report.tcp_retransmits;
  out.tcp_timeouts = report.tcp_timeouts;
  out.tcp_reorder_timeouts = report.tcp_reorder_timeouts;
  out.flows = report.flows;
  return out;
}

void expect_identical(const CcRun& ref, const CcRun& got,
                      const std::string& what) {
  ASSERT_EQ(ref.trace.size(), got.trace.size()) << what;
  for (std::size_t i = 0; i < ref.trace.size(); ++i) {
    const auto& a = ref.trace[i];
    const auto& b = got.trace[i];
    ASSERT_TRUE(a.time == b.time && a.event == b.event && a.flow == b.flow &&
                a.seq == b.seq && a.node == b.node &&
                a.queueing_delay == b.queueing_delay &&
                a.jitter_offset == b.jitter_offset)
        << what << ": first divergence at record " << i << " (t=" << a.time
        << " flow " << a.flow << " seq " << a.seq << ")";
  }
  EXPECT_EQ(ref.decision_hash, got.decision_hash) << what;
  EXPECT_EQ(ref.events, got.events) << what;
  EXPECT_EQ(ref.generated, got.generated) << what;
  EXPECT_EQ(ref.source_drops, got.source_drops) << what;
  EXPECT_EQ(ref.injected, got.injected) << what;
  EXPECT_EQ(ref.delivered, got.delivered) << what;
  EXPECT_EQ(ref.net_drops, got.net_drops) << what;
  EXPECT_EQ(ref.queued_end, got.queued_end) << what;
  EXPECT_EQ(ref.unclaimed, got.unclaimed) << what;
  EXPECT_EQ(ref.cc_flows, got.cc_flows) << what;
  EXPECT_EQ(ref.cc_marks, got.cc_marks) << what;
  EXPECT_EQ(ref.cc_mark_samples, got.cc_mark_samples) << what;
  EXPECT_EQ(ref.cc_echoes, got.cc_echoes) << what;
  EXPECT_EQ(ref.cc_backoffs, got.cc_backoffs) << what;
  EXPECT_EQ(ref.tcp_segments, got.tcp_segments) << what;
  EXPECT_EQ(ref.tcp_delivered, got.tcp_delivered) << what;
  EXPECT_EQ(ref.tcp_retransmits, got.tcp_retransmits) << what;
  EXPECT_EQ(ref.tcp_timeouts, got.tcp_timeouts) << what;
  EXPECT_EQ(ref.tcp_reorder_timeouts, got.tcp_reorder_timeouts) << what;

  ASSERT_EQ(ref.flows.size(), got.flows.size()) << what;
  for (std::size_t i = 0; i < ref.flows.size(); ++i) {
    const auto& a = ref.flows[i];
    const auto& b = got.flows[i];
    EXPECT_EQ(a.flow, b.flow) << what;
    EXPECT_EQ(a.service, b.service) << what;
    EXPECT_EQ(a.admitted, b.admitted) << what;
    EXPECT_EQ(a.delivered, b.delivered) << what << " flow " << a.flow;
    EXPECT_EQ(a.max_delay, b.max_delay) << what << " flow " << a.flow;
    EXPECT_EQ(a.bound, b.bound) << what << " flow " << a.flow;
  }
}

scenario::ScenarioSpec dumbbell_spec(scenario::CcKind cc, std::uint64_t seed) {
  scenario::ScenarioSpec spec = scenario::preset("chain");
  spec.chain_switches = 2;  // the canonical dumbbell bottleneck
  scenario::apply_scale(spec, "small");
  spec.arrival_rate = 0;  // deterministic batch admission
  spec.target_flows = 12;
  spec.p_guaranteed = 0.2;
  spec.p_predicted = 0.3;  // half the flows are responsive datagram
  spec.cc = cc;
  spec.binary_feedback = true;
  spec.seed = seed;
  return spec;
}

scenario::ScenarioSpec parking_spec(scenario::CcKind cc, std::uint64_t seed) {
  scenario::ScenarioSpec spec = scenario::preset("parking_lot");
  scenario::apply_scale(spec, "small");
  spec.arrival_rate = 0;
  spec.target_flows = 16;
  spec.p_guaranteed = 0.15;
  spec.p_predicted = 0.25;
  spec.avg_rate_pps = 150.0;  // open-loop classes keep the lot loaded
  spec.cc = cc;
  spec.binary_feedback = true;
  spec.seed = seed;
  return spec;
}

constexpr scenario::CcKind kStacks[] = {
    scenario::CcKind::kReno, scenario::CcKind::kBbr, scenario::CcKind::kRack};

/// shards=0: the classic single-clock reference, crossed over both event
/// backends and both ordering backends.
void classic_diff(const scenario::ScenarioSpec& spec, const std::string& label) {
  const CcRun ref = run_cc(spec, 0, sim::EventBackend::kHeap,
                           sched::OrderBackend::kHeap);
  EXPECT_GT(ref.trace.size(), 500u)
      << label << ": workload too small to prove anything";
  EXPECT_GT(ref.cc_flows, 0u) << label << ": no responsive flow attached";
  EXPECT_GT(ref.tcp_segments, 0u) << label;

  struct Combo {
    sim::EventBackend event;
    sched::OrderBackend order;
    const char* name;
  };
  const Combo combos[] = {
      {sim::EventBackend::kWheel, sched::OrderBackend::kHeap,
       "wheel x heap-order"},
      {sim::EventBackend::kHeap, sched::OrderBackend::kCalendar,
       "heap x calendar-order"},
      {sim::EventBackend::kWheel, sched::OrderBackend::kCalendar,
       "wheel x calendar-order"},
  };
  for (const Combo& c : combos) {
    expect_identical(ref, run_cc(spec, 0, c.event, c.order),
                     label + " under " + c.name);
  }
}

/// shards>=1: the sharded reference, crossed over worker counts and event
/// backends (all mutually byte-identical).
void sharded_diff(const scenario::ScenarioSpec& spec,
                  const std::string& label) {
  const CcRun ref = run_cc(spec, 1, sim::EventBackend::kHeap,
                           sched::OrderBackend::kHeap);
  EXPECT_GT(ref.trace.size(), 500u)
      << label << ": workload too small to prove anything";
  EXPECT_GT(ref.cc_flows, 0u) << label << ": no responsive flow attached";

  struct Combo {
    int shards;
    sim::EventBackend event;
    const char* name;
  };
  const Combo combos[] = {
      {1, sim::EventBackend::kWheel, "1 x wheel"},
      {2, sim::EventBackend::kHeap, "2 x heap"},
      {2, sim::EventBackend::kWheel, "2 x wheel"},
      {4, sim::EventBackend::kHeap, "4 x heap"},
  };
  for (const Combo& c : combos) {
    expect_identical(ref,
                     run_cc(spec, c.shards, c.event,
                            sched::OrderBackend::kHeap),
                     label + " under shards x backend = " + c.name);
  }
}

TEST(CcDiff, DumbbellClassicBackendsAgreePerStack) {
  for (const auto cc : kStacks) {
    for (const std::uint64_t seed : {101ull, 102ull}) {
      classic_diff(dumbbell_spec(cc, seed),
                   std::string("dumbbell cc=") + scenario::to_string(cc) +
                       " seed " + std::to_string(seed));
    }
  }
}

TEST(CcDiff, DumbbellShardedAgreesPerStack) {
  for (const auto cc : kStacks) {
    sharded_diff(dumbbell_spec(cc, 103),
                 std::string("dumbbell cc=") + scenario::to_string(cc) +
                     " seed 103");
  }
}

TEST(CcDiff, ParkingLotClassicBackendsAgreePerStack) {
  for (const auto cc : kStacks) {
    for (const std::uint64_t seed : {201ull, 202ull}) {
      classic_diff(parking_spec(cc, seed),
                   std::string("parking lot cc=") + scenario::to_string(cc) +
                       " seed " + std::to_string(seed));
    }
  }
}

TEST(CcDiff, ParkingLotShardedAgreesPerStack) {
  for (const auto cc : kStacks) {
    sharded_diff(parking_spec(cc, 203),
                 std::string("parking lot cc=") + scenario::to_string(cc) +
                     " seed 203");
  }
}

TEST(CcDiff, MixedStacksAgreeAcrossEverything) {
  // cc=mix assigns reno/bbr/rack round-robin by flow id: all three stacks
  // interleave on the same bottleneck in one run.
  for (const std::uint64_t seed : {301ull, 302ull}) {
    const auto spec = dumbbell_spec(scenario::CcKind::kMix, seed);
    classic_diff(spec, "dumbbell cc=mix seed " + std::to_string(seed));
  }
  sharded_diff(parking_spec(scenario::CcKind::kMix, 303),
               "parking lot cc=mix seed 303");
}

TEST(CcDiff, StacksActuallyDiffer) {
  // Sanity against a stub: the three stacks must produce DIFFERENT traces
  // on the same seed (else the dispatch is dead and the suite proves
  // nothing).  Compared via segment counts + echo counts, which diverge
  // as soon as pacing/loss-detection behaviour differs.
  const CcRun reno = run_cc(dumbbell_spec(scenario::CcKind::kReno, 101), 0,
                            sim::EventBackend::kHeap,
                            sched::OrderBackend::kHeap);
  const CcRun bbr = run_cc(dumbbell_spec(scenario::CcKind::kBbr, 101), 0,
                           sim::EventBackend::kHeap,
                           sched::OrderBackend::kHeap);
  const CcRun rack = run_cc(dumbbell_spec(scenario::CcKind::kRack, 101), 0,
                            sim::EventBackend::kHeap,
                            sched::OrderBackend::kHeap);
  EXPECT_TRUE(reno.trace.size() != bbr.trace.size() ||
              reno.tcp_segments != bbr.tcp_segments ||
              reno.events != bbr.events)
      << "reno and bbr produced identical runs";
  EXPECT_TRUE(rack.trace.size() != bbr.trace.size() ||
              rack.tcp_segments != bbr.tcp_segments ||
              rack.events != bbr.events)
      << "rack and bbr produced identical runs";
}

}  // namespace
}  // namespace ispn
