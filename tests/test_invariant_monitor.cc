// Invariant-monitor self-test (PR 9, satellite e).
//
// A monitor that never fires is indistinguishable from a monitor that
// cannot fire.  This suite proves the detection machinery end to end:
// a clean faulted run audits continuously and stays silent, and a run
// whose ledger is DELIBERATELY corrupted mid-flight — one packet counter
// nudged by one — is flagged at the very next audit, with a structured
// violation naming the check and the disagreeing numbers.

#include <gtest/gtest.h>

#include <string>

#include "scenario/runner.h"

namespace ispn {
namespace {

scenario::ScenarioSpec monitored_spec() {
  scenario::ScenarioSpec spec = scenario::preset("chaos");
  spec.run_seconds = 10.0;
  spec.invariant_cadence = 0.25;
  spec.seed = 51;
  return spec;
}

TEST(InvariantMonitor, CleanChaosRunAuditsContinuouslyAndStaysSilent) {
  scenario::ScenarioRunner runner(monitored_spec());
  const scenario::ScenarioReport report = runner.run();
  EXPECT_GE(report.invariant_audits, 30u)
      << "cadence 0.25 s over 10 s should audit ~40 times";
  EXPECT_EQ(report.invariant_violations, 0u);
  EXPECT_TRUE(report.conserved());
}

TEST(InvariantMonitor, CorruptedLedgerCounterIsCaughtAtTheNextAudit) {
  scenario::ScenarioRunner runner(monitored_spec());
  runner.prepare();
  ASSERT_NE(runner.monitor(), nullptr);

  // Nudge one per-flow injected counter by a single packet mid-run: the
  // canonical accounting bug (a double-count or a lost decrement).
  runner.net().sim().at(5.0, [&] {
    runner.net().stats(0).injected += 1;
  });

  const scenario::ScenarioReport report = runner.run();
  EXPECT_GT(report.invariant_violations, 0u)
      << "the monitor missed a seeded one-packet accounting bug";

  // The violation is structured: which check tripped and what disagreed.
  const auto& violations = runner.monitor()->violations();
  ASSERT_FALSE(violations.empty());
  EXPECT_EQ(violations.front().check, "conservation");
  EXPECT_GE(violations.front().time, 5.0)
      << "flagged before the corruption existed";
  EXPECT_LE(violations.front().time, 5.0 + 0.25 + 0.1)
      << "caught later than one cadence after the corruption";
  EXPECT_NE(violations.front().detail.find("injected"), std::string::npos);
  EXPECT_NE(runner.monitor()->report().find("conservation"),
            std::string::npos);
}

TEST(InvariantMonitor, ManualAuditReturnsNewViolationsOnly) {
  // Push the cadence past the horizon: the monitor exists but only the
  // audits this test requests by hand (plus the run-end audit) ever run.
  scenario::ScenarioSpec spec = monitored_spec();
  spec.invariant_cadence = 100.0;
  scenario::ScenarioRunner runner(spec);
  runner.prepare();
  ASSERT_NE(runner.monitor(), nullptr);
  EXPECT_EQ(runner.audit_now(), 0u) << "pre-run state must audit clean";

  // The corruption/audit sequence must run mid-flight: the audit sums the
  // per-flow ledgers of the flows the runner has opened, and the arrival-
  // driven chaos preset opens none before t=0.
  std::size_t clean = ~0u, caught = 0, again = ~0u, repaired = ~0u;
  std::size_t after_caught = 0, after_again = 0;
  runner.net().sim().at(4.0, [&] { clean = runner.audit_now(); });
  runner.net().sim().at(5.0, [&] {
    runner.net().stats(0).injected += 1;
    caught = runner.audit_now();
    after_caught = runner.monitor()->violations().size();
  });
  // Sticky but not double-counted: the same persistent corruption is
  // re-detected per audit, and each audit reports only its own findings.
  runner.net().sim().at(6.0, [&] {
    again = runner.audit_now();
    after_again = runner.monitor()->violations().size();
  });
  runner.net().sim().at(7.0, [&] {
    runner.net().stats(0).injected -= 1;
    repaired = runner.audit_now();
  });
  runner.run();

  EXPECT_EQ(clean, 0u) << "uncorrupted mid-run state must audit clean";
  EXPECT_GT(caught, 0u) << "corruption not caught";
  EXPECT_GT(again, 0u) << "persistent corruption must re-fire per audit";
  EXPECT_EQ(after_again, after_caught + again)
      << "audit_now must return only its OWN findings";
  EXPECT_EQ(repaired, 0u) << "repaired ledger must audit clean";
  EXPECT_EQ(runner.monitor()->violations().size(), after_again)
      << "violations are sticky: history must survive clean audits";
}

}  // namespace
}  // namespace ispn
