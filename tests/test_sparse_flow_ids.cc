// Sparse-FlowId regression: scheduler memory must scale with the number
// of ACTIVE flows, never with max(FlowId).
//
// The bug this pins: per-flow state lived in dense vectors indexed by the
// raw id, so registering flow 70000 resized them to 70001 entries — per
// link.  With util::SlotMap the same registration costs one compact slot.
// Ids {3, 70000} are the canonical shape; behaviour (ordering, weights,
// conservation) must be identical to what contiguous ids produce.

#include <gtest/gtest.h>

#include <vector>

#include "net/packet_pool.h"
#include "sched/unified.h"
#include "sched/virtual_clock.h"
#include "sched/wfq.h"

namespace ispn {
namespace {

constexpr net::FlowId kSparse[] = {3, 70000};

net::PacketPtr make(net::PacketPool& pool, net::FlowId flow,
                    std::uint64_t seq, double now, net::ServiceClass service,
                    std::uint8_t priority = 0) {
  auto p = net::make_packet(pool, flow, seq, 0, 1, now);
  p->enqueued_at = now;
  p->service = service;
  p->priority = priority;
  return p;
}

TEST(SparseFlowIds, WfqSlotsScaleWithFlowsSeen) {
  sched::WfqScheduler wfq(sched::WfqScheduler::Config{1e6, 1000, 1.0});
  wfq.add_flow(kSparse[0], 2.0);
  wfq.add_flow(kSparse[1], 2.0);
  EXPECT_EQ(wfq.flow_slots(), 2u);
  EXPECT_DOUBLE_EQ(wfq.weight(kSparse[0]), 2.0);
  EXPECT_DOUBLE_EQ(wfq.weight(kSparse[1]), 2.0);
  EXPECT_DOUBLE_EQ(wfq.weight(12345), 1.0);  // default for unseen

  net::PacketPool pool;
  double now = 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 64; ++i) {
    now += 1e-3;
    wfq.enqueue(make(pool, kSparse[i % 2], seq++, now,
                     net::ServiceClass::kPredicted),
                now);
  }
  std::uint64_t got = 0;
  while (!wfq.empty()) {
    auto p = wfq.dequeue(now);
    ASSERT_NE(p, nullptr);
    ++got;
  }
  EXPECT_EQ(got, 64u);
  EXPECT_EQ(wfq.flow_slots(), 2u);  // traffic added no slots
}

TEST(SparseFlowIds, VirtualClockSlotsScaleWithFlowsSeen) {
  sched::VirtualClockScheduler vc(
      sched::VirtualClockScheduler::Config{1000, 1e5});
  vc.add_flow(kSparse[0], 5e5);
  vc.add_flow(kSparse[1], 5e5);
  EXPECT_EQ(vc.flow_slots(), 2u);

  net::PacketPool pool;
  double now = 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 64; ++i) {
    now += 1e-3;
    vc.enqueue(make(pool, kSparse[i % 2], seq++, now,
                    net::ServiceClass::kGuaranteed),
               now);
  }
  std::uint64_t got = 0;
  while (!vc.empty()) {
    auto p = vc.dequeue(now);
    ASSERT_NE(p, nullptr);
    ++got;
  }
  EXPECT_EQ(got, 64u);
  EXPECT_EQ(vc.flow_slots(), 2u);
}

TEST(SparseFlowIds, UnifiedGuaranteedSlotsStayCompact) {
  sched::UnifiedScheduler sched(
      sched::UnifiedScheduler::Config{1e6, 1000, 2, 1.0 / 4096.0, true});
  sched.add_guaranteed(kSparse[0], 1e5);
  sched.add_guaranteed(kSparse[1], 1e5);
  EXPECT_EQ(sched.guaranteed_slots(), 2u);
  EXPECT_DOUBLE_EQ(sched.guaranteed_rate(), 2e5);

  net::PacketPool pool;
  double now = 0;
  std::uint64_t seq = 0;
  for (int i = 0; i < 32; ++i) {
    now += 1e-3;
    sched.enqueue(make(pool, kSparse[i % 2], seq++, now,
                       net::ServiceClass::kGuaranteed),
                  now);
  }
  EXPECT_EQ(sched.guaranteed_packets(kSparse[0]), 16u);
  EXPECT_EQ(sched.guaranteed_packets(kSparse[1]), 16u);
  while (!sched.empty()) {
    auto p = sched.dequeue(now);
    ASSERT_NE(p, nullptr);
  }
  sched.remove_guaranteed(kSparse[0]);
  sched.remove_guaranteed(kSparse[1]);
  EXPECT_DOUBLE_EQ(sched.guaranteed_rate(), 0.0);
  // Churn through the recycled slots: a third flow reuses them, the dense
  // array never grows past the concurrent peak.
  sched.add_guaranteed(1000000, 1e5);
  EXPECT_EQ(sched.guaranteed_slots(), 2u);
}

TEST(SparseFlowIds, UnifiedPredictedSlotsStayCompact) {
  sched::UnifiedScheduler sched(
      sched::UnifiedScheduler::Config{1e6, 1000, 2, 1.0 / 4096.0, true});
  sched.set_predicted_priority(kSparse[0], 0);
  sched.set_predicted_priority(kSparse[1], 1);
  EXPECT_EQ(sched.predicted_slots(), 2u);

  net::PacketPool pool;
  double now = 1e-3;
  // Packets are stamped priority 0 at the edge; the per-hop mapping must
  // reclass flow 70000 into level 1.
  sched.enqueue(make(pool, kSparse[1], 0, now, net::ServiceClass::kPredicted,
                     0),
                now);
  EXPECT_EQ(sched.class_packets(1), 1u);
  EXPECT_EQ(sched.class_packets(0), 0u);
  auto p = sched.dequeue(now);
  ASSERT_NE(p, nullptr);

  sched.remove_predicted(kSparse[0]);
  sched.remove_predicted(kSparse[1]);
  sched.set_predicted_priority(999999, 1);
  EXPECT_EQ(sched.predicted_slots(), 2u);  // recycled, not grown
}

// The historical failure mode, as a budget assertion: registering the
// sparse pair must not balloon any dense per-flow array to ~max(FlowId).
TEST(SparseFlowIds, NoStructureScalesWithMaxId) {
  sched::WfqScheduler wfq(sched::WfqScheduler::Config{1e6, 1000, 1.0});
  sched::UnifiedScheduler uni(
      sched::UnifiedScheduler::Config{1e6, 1000, 2, 1.0 / 4096.0, true});
  for (net::FlowId id : kSparse) {
    wfq.add_flow(id, 1.0);
    uni.add_guaranteed(id, 1e4);
    uni.set_predicted_priority(id + 1, 0);
  }
  EXPECT_LE(wfq.flow_slots(), 2u);
  EXPECT_LE(uni.guaranteed_slots(), 2u);
  EXPECT_LE(uni.predicted_slots(), 2u);
}

}  // namespace
}  // namespace ispn
