#include "core/measurement.h"

#include <gtest/gtest.h>

namespace ispn::core {
namespace {

TEST(Measurement, UtilizationFromPeakEpoch) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  // 500 kb in epoch starting at t=0.
  m.on_realtime_tx(500000.0, 0.5);
  EXPECT_NEAR(m.measured_utilization(1.0), 0.5, 1e-9);
}

TEST(Measurement, SafetyFactorScalesEstimates) {
  LinkMeasurement m({1e6, 2, 10.0, 1.5});
  m.on_realtime_tx(400000.0, 0.5);
  EXPECT_NEAR(m.measured_utilization(1.0), 0.6, 1e-9);
  m.on_class_wait(0, 0.02, 0.5);
  EXPECT_NEAR(m.measured_delay(0, 1.0), 0.03, 1e-9);
}

TEST(Measurement, DelaysTrackedPerClass) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  m.on_class_wait(0, 0.005, 1.0);
  m.on_class_wait(1, 0.050, 1.0);
  m.on_class_wait(2, 0.500, 1.0);  // datagram level
  EXPECT_NEAR(m.measured_delay(0, 1.0), 0.005, 1e-12);
  EXPECT_NEAR(m.measured_delay(1, 1.0), 0.050, 1e-12);
  EXPECT_NEAR(m.measured_delay(2, 1.0), 0.500, 1e-12);
}

TEST(Measurement, MaxNotMeanOfDelays) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  for (int i = 0; i < 100; ++i) m.on_class_wait(0, 0.001, 1.0);
  m.on_class_wait(0, 0.09, 1.0);
  EXPECT_NEAR(m.measured_delay(0, 1.0), 0.09, 1e-12);
}

TEST(Measurement, OldSamplesAgeOut) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  m.on_realtime_tx(900000.0, 0.5);
  m.on_class_wait(1, 0.1, 0.5);
  EXPECT_GT(m.measured_utilization(1.0), 0.8);
  EXPECT_NEAR(m.measured_utilization(30.0), 0.0, 1e-9);
  EXPECT_NEAR(m.measured_delay(1, 30.0), 0.0, 1e-9);
}

TEST(Measurement, FreshMeterReportsZero) {
  LinkMeasurement m({1e6, 3, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(m.measured_utilization(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.measured_delay(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.measured_delay(3, 0.0), 0.0);
}

}  // namespace
}  // namespace ispn::core
