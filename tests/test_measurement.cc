#include "core/measurement.h"

#include <gtest/gtest.h>

namespace ispn::core {
namespace {

TEST(Measurement, UtilizationFromPeakEpoch) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  // 500 kb in epoch starting at t=0.
  m.on_realtime_tx(500000.0, 0.5);
  EXPECT_NEAR(m.measured_utilization(1.0), 0.5, 1e-9);
}

TEST(Measurement, SafetyFactorScalesEstimates) {
  LinkMeasurement m({1e6, 2, 10.0, 1.5});
  m.on_realtime_tx(400000.0, 0.5);
  EXPECT_NEAR(m.measured_utilization(1.0), 0.6, 1e-9);
  m.on_class_wait(0, 0.02, 0.5);
  EXPECT_NEAR(m.measured_delay(0, 1.0), 0.03, 1e-9);
}

TEST(Measurement, DelaysTrackedPerClass) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  m.on_class_wait(0, 0.005, 1.0);
  m.on_class_wait(1, 0.050, 1.0);
  m.on_class_wait(2, 0.500, 1.0);  // datagram level
  EXPECT_NEAR(m.measured_delay(0, 1.0), 0.005, 1e-12);
  EXPECT_NEAR(m.measured_delay(1, 1.0), 0.050, 1e-12);
  EXPECT_NEAR(m.measured_delay(2, 1.0), 0.500, 1e-12);
}

TEST(Measurement, MaxNotMeanOfDelays) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  for (int i = 0; i < 100; ++i) m.on_class_wait(0, 0.001, 1.0);
  m.on_class_wait(0, 0.09, 1.0);
  EXPECT_NEAR(m.measured_delay(0, 1.0), 0.09, 1e-12);
}

TEST(Measurement, OldSamplesAgeOut) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  m.on_realtime_tx(900000.0, 0.5);
  m.on_class_wait(1, 0.1, 0.5);
  EXPECT_GT(m.measured_utilization(1.0), 0.8);
  EXPECT_NEAR(m.measured_utilization(30.0), 0.0, 1e-9);
  EXPECT_NEAR(m.measured_delay(1, 30.0), 0.0, 1e-9);
}

TEST(Measurement, FreshMeterReportsZero) {
  LinkMeasurement m({1e6, 3, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(m.measured_utilization(0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.measured_delay(0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(m.measured_delay(3, 0.0), 0.0);
}

// ---- exact-value decay pins -----------------------------------------------
// The estimators are deterministic state machines over 1-second epochs
// (window 10 s / 10 epochs); these tests pin their decay behaviour
// against hand-computed sequences, bit-exact (all values are small binary
// fractions, so EXPECT_DOUBLE_EQ is an identity check).

TEST(Measurement, PeakEpochExactWindowBoundaryDecay) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  m.on_realtime_tx(500000.0, 0.5);  // epoch 0
  // Visible for the full 10-epoch window: at t=9.999 nine buckets have
  // rotated away but epoch 0's survives...
  EXPECT_DOUBLE_EQ(m.measured_utilization(9.999), 0.5);
  // ...and the very first instant of epoch 10 overwrites it: exact zero,
  // not a gradual tail.
  EXPECT_DOUBLE_EQ(m.measured_utilization(10.0), 0.0);
}

TEST(Measurement, PeakEpochAccumulatesWithinOneEpoch) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  m.on_realtime_tx(500000.0, 0.25);
  m.on_realtime_tx(100000.0, 0.75);  // same epoch: 600 kb total
  EXPECT_DOUBLE_EQ(m.measured_utilization(1.5), 0.6);
}

TEST(Measurement, EwmaExactHandComputedSequence) {
  // gain 0.5: avg' = avg + 0.5 (rate - avg), first fold primes directly.
  LinkMeasurement m({1e6, 2, 10.0, 1.0,
                     LinkMeasurement::Estimator::kEwma, 0.5});
  m.on_realtime_tx(500000.0, 0.5);           // epoch 0 accumulates 500 kb
  EXPECT_DOUBLE_EQ(m.ewma_rate(1.2), 500000.0);   // primes with 500 kb/s
  m.on_realtime_tx(300000.0, 1.5);           // epoch 1 accumulates 300 kb
  // fold epoch 1: 500000 + 0.5*(300000 - 500000) = 400000.
  EXPECT_DOUBLE_EQ(m.ewma_rate(2.2), 400000.0);
  EXPECT_DOUBLE_EQ(m.measured_utilization(2.2), 0.4);
}

TEST(Measurement, EwmaIdleIntervalDecaysPerElapsedEpoch) {
  // The idle-interval edge case: an interval of k empty epochs folds k
  // zeros, so the estimate decays by exactly (1-g)^k — it neither freezes
  // at its last value nor snaps to zero.
  LinkMeasurement m({1e6, 2, 10.0, 1.0,
                     LinkMeasurement::Estimator::kEwma, 0.5});
  m.on_realtime_tx(800000.0, 0.5);
  EXPECT_DOUBLE_EQ(m.ewma_rate(1.1), 800000.0);
  // 3 idle epochs (1, 2, 3) completed by t=4.2: 800000 * 0.5^3 = 100000.
  EXPECT_DOUBLE_EQ(m.ewma_rate(4.2), 100000.0);
  EXPECT_DOUBLE_EQ(m.measured_utilization(4.2), 0.1);
  // 10 more idle epochs: decay continues geometrically past the window.
  EXPECT_DOUBLE_EQ(m.ewma_rate(14.2), 100000.0 / 1024.0);
}

TEST(Measurement, EwmaSafetyFactorScales) {
  LinkMeasurement m({1e6, 2, 10.0, 1.5,
                     LinkMeasurement::Estimator::kEwma, 0.5});
  m.on_realtime_tx(400000.0, 0.5);
  EXPECT_DOUBLE_EQ(m.measured_utilization(1.2), 0.6);  // 1.5 * 0.4
}

TEST(Measurement, EwmaQueryDoesNotPerturbPeakEstimator) {
  // Both estimators are always maintained ON THE SAME OBJECT;
  // interleaving queries of one must not disturb the other.  This meter
  // reports peak-epoch, and ewma_rate() (public regardless of the
  // configured estimator) is queried between peak reads.
  LinkMeasurement m({1e6, 2, 10.0, 1.0});  // default ewma_gain 0.25
  m.on_realtime_tx(500000.0, 0.5);
  EXPECT_DOUBLE_EQ(m.measured_utilization(1.2), 0.5);
  EXPECT_DOUBLE_EQ(m.ewma_rate(3.2), 281250.0);  // 500000 * 0.75^2
  // The peak-epoch view of the same object is unchanged by the EWMA
  // settle that just ran.
  EXPECT_DOUBLE_EQ(m.measured_utilization(3.2), 0.5);
  // And vice versa: the peak reads did not perturb the EWMA sequence.
  EXPECT_DOUBLE_EQ(m.ewma_rate(4.2), 210937.5);  // one more 0.75 decay
}

TEST(Measurement, WindowedDelayExactBoundaryDecay) {
  LinkMeasurement m({1e6, 2, 10.0, 1.0});
  m.on_class_wait(1, 0.04, 0.5);
  EXPECT_DOUBLE_EQ(m.measured_delay(1, 9.999), 0.04);
  EXPECT_DOUBLE_EQ(m.measured_delay(1, 10.0), 0.0);
}

}  // namespace
}  // namespace ispn::core
