#include "sim/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace ispn::sim {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, StreamsDecorrelated) {
  Rng a(42, 0), b(42, 1);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(7);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(3.0, 5.0);
    EXPECT_GE(u, 3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

class ExponentialMean : public ::testing::TestWithParam<double> {};

TEST_P(ExponentialMean, MatchesRequestedMean) {
  const double mean = GetParam();
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
  EXPECT_NEAR(sum / n / mean, 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Means, ExponentialMean,
                         ::testing::Values(0.001, 0.0294, 0.5, 3.0, 100.0));

class GeometricMean : public ::testing::TestWithParam<double> {};

TEST_P(GeometricMean, MatchesRequestedMeanOnSupportFromOne) {
  const double mean = GetParam();
  Rng rng(17);
  double sum = 0;
  std::uint64_t min_seen = ~0ull;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const auto g = rng.geometric1(mean);
    min_seen = std::min(min_seen, g);
    sum += static_cast<double>(g);
  }
  EXPECT_EQ(min_seen, 1u);  // support {1, 2, ...}
  EXPECT_NEAR(sum / n / mean, 1.0, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Means, GeometricMean,
                         ::testing::Values(1.0, 2.0, 5.0, 20.0));

TEST(Rng, GeometricMeanOneIsAlwaysOne) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.geometric1(1.0), 1u);
}

class PoissonMean : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMean, MatchesMeanAndVariance) {
  const double lambda = GetParam();
  Rng rng(23);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = static_cast<double>(rng.poisson(lambda));
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean / lambda, 1.0, 0.05);
  EXPECT_NEAR(var / lambda, 1.0, 0.08);  // Poisson: var == mean
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonMean,
                         ::testing::Values(0.5, 5.0, 50.0));

TEST(Rng, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, NormalMoments) {
  Rng rng(31);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}

}  // namespace
}  // namespace ispn::sim
