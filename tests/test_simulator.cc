#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace ispn::sim {
namespace {

TEST(Simulator, StartsAtTimeZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.now(), 0.0);
  EXPECT_TRUE(sim.idle());
}

TEST(Simulator, AdvancesClockToEventTime) {
  Simulator sim;
  double seen = -1;
  sim.at(2.5, [&] { seen = sim.now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 2.5);
  EXPECT_DOUBLE_EQ(sim.now(), 2.5);
}

TEST(Simulator, AfterIsRelativeToNow) {
  Simulator sim;
  double seen = -1;
  sim.at(1.0, [&] { sim.after(0.5, [&] { seen = sim.now(); }); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 1.5);
}

TEST(Simulator, RunUntilStopsAtHorizon) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  sim.at(3.0, [&] { ++fired; });
  sim.run_until(2.0);  // events exactly at the horizon still fire
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  sim.run();
  EXPECT_EQ(fired, 3);
}

TEST(Simulator, RunUntilAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_until(10.0);
  EXPECT_DOUBLE_EQ(sim.now(), 10.0);
}

TEST(Simulator, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> tick = [&] {
    times.push_back(sim.now());
    if (times.size() < 5) sim.after(1.0, tick);
  };
  sim.at(0.0, tick);
  sim.run();
  EXPECT_EQ(times, (std::vector<double>{0, 1, 2, 3, 4}));
}

TEST(Simulator, CancelStopsPendingEvent) {
  Simulator sim;
  bool fired = false;
  const EventId id = sim.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.cancel(id));
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulator, StepExecutesOneEvent) {
  Simulator sim;
  int fired = 0;
  sim.at(1.0, [&] { ++fired; });
  sim.at(2.0, [&] { ++fired; });
  EXPECT_TRUE(sim.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.step());
  EXPECT_FALSE(sim.step());
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, ProcessedCounts) {
  Simulator sim;
  for (int i = 0; i < 5; ++i) sim.at(static_cast<double>(i), [] {});
  sim.run();
  EXPECT_EQ(sim.processed(), 5u);
}

TEST(Simulator, SameTimeEventsDeterministic) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 20; ++i) {
    sim.at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 20; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

}  // namespace
}  // namespace ispn::sim
