// WFQ unit and property tests, including the Parekh–Gallager bound.

#include "sched/wfq.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "net/topology.h"
#include "sched_test_util.h"
#include "sim/random.h"
#include "traffic/cbr_source.h"
#include "traffic/greedy_source.h"

namespace ispn::sched {
namespace {

using sched_test::offer;
using sched_test::pkt;

WfqScheduler::Config cfg(double link_rate = 1000.0,
                         std::size_t capacity = 1000,
                         double default_weight = 1.0) {
  return {link_rate, capacity, default_weight};
}

TEST(Wfq, AcceptsPacketsWithoutAFlowId) {
  // Packets whose flow was never assigned (kNoFlow = -1) share the
  // anonymous slot-0 bucket; they must queue and drain like any flow.
  WfqScheduler q(cfg());
  for (std::uint64_t i = 0; i < 3; ++i) {
    auto p = pkt(net::kNoFlow, i, 0.0);
    ASSERT_TRUE(offer(q, std::move(p), 0.0).empty());
  }
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  EXPECT_EQ(q.packets(), 4u);
  std::uint64_t drained = 0;
  while (!q.empty()) {
    ASSERT_NE(q.dequeue(0.0), nullptr);
    ++drained;
  }
  EXPECT_EQ(drained, 4u);
}

TEST(Wfq, EmptyDequeueReturnsNull) {
  WfqScheduler q(cfg());
  EXPECT_EQ(q.dequeue(0.0), nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(Wfq, SingleFlowIsFifo) {
  WfqScheduler q(cfg());
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(offer(q, pkt(0, i, 0.0), 0.0).empty());
  }
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(q.dequeue(0.0)->seq, i);
}

TEST(Wfq, EqualWeightsAlternateBetweenBackloggedFlows) {
  WfqScheduler q(cfg());
  // Two flows, each with 3 packets arriving at t=0; equal weights mean
  // finish tags interleave 1:1.
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(offer(q, pkt(1, i, 0.0), 0.0).empty());
    ASSERT_TRUE(offer(q, pkt(2, i, 0.0), 0.0).empty());
  }
  std::vector<net::FlowId> order;
  while (!q.empty()) order.push_back(q.dequeue(0.0)->flow);
  EXPECT_EQ(order, (std::vector<net::FlowId>{1, 2, 1, 2, 1, 2}));
}

TEST(Wfq, WeightsSkewService) {
  WfqScheduler q(cfg(1000.0, 1000, 1.0));
  q.add_flow(1, 3.0);
  q.add_flow(2, 1.0);
  for (std::uint64_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(offer(q, pkt(1, i, 0.0), 0.0).empty());
    ASSERT_TRUE(offer(q, pkt(2, i, 0.0), 0.0).empty());
  }
  // In the first 8 departures, flow 1 (weight 3) should get ~6.
  int flow1 = 0;
  for (int i = 0; i < 8; ++i) {
    if (q.dequeue(0.0)->flow == 1) ++flow1;
  }
  EXPECT_EQ(flow1, 6);
}

TEST(Wfq, VirtualTimeFrozenWhenIdle) {
  WfqScheduler q(cfg());
  const double v0 = q.virtual_time(0.0);
  EXPECT_DOUBLE_EQ(q.virtual_time(100.0), v0);
}

TEST(Wfq, VirtualTimeAdvancesWithBacklog) {
  WfqScheduler q(cfg(1000.0));
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0, 1000.0), 0.0).empty());
  // One backlogged flow of weight 1: slope = 1000/1 = 1000 per second,
  // until the fluid finishes the 1000-bit packet at V = 1000 (t = 1s).
  EXPECT_NEAR(q.virtual_time(0.5), 500.0, 1e-9);
  EXPECT_NEAR(q.virtual_time(2.0), 1000.0, 1e-9);  // frozen after drain
}

TEST(Wfq, FluidBacklogClearsAtFinishTag) {
  WfqScheduler q(cfg(1000.0));
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0, 1000.0), 0.0).empty());
  EXPECT_GT(q.active_weight(), 0.0);
  (void)q.virtual_time(1.5);
  EXPECT_DOUBLE_EQ(q.active_weight(), 0.0);
}

TEST(Wfq, LateArrivalGetsVirtualTimeStart) {
  WfqScheduler q(cfg(1000.0));
  // Flow 1 backlogged from t=0; flow 2 arrives at t=0.5 and should get
  // S = V(0.5), not 0 — i.e. it is not penalised for past idleness and
  // does not leapfrog either.
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(offer(q, pkt(1, i, 0.0, 1000.0), 0.0).empty());
  }
  ASSERT_TRUE(offer(q, pkt(2, 0, 0.5, 1000.0), 0.5).empty());
  // V(0.5) = 500; flow 2's tag = 1500.  Flow 1 tags: 1000, 2000, ...
  // Departure order: f1(1000), f2(1500), f1(2000), ...
  EXPECT_EQ(q.dequeue(0.5)->flow, 1);
  EXPECT_EQ(q.dequeue(0.5)->flow, 2);
  EXPECT_EQ(q.dequeue(0.5)->flow, 1);
}

TEST(Wfq, SingleFlowOverflowDropsOwnNewest) {
  WfqScheduler q(cfg(1000.0, 2));
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(1, 1, 0.0), 0.0).empty());
  auto dropped = offer(q, pkt(1, 2, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->seq, 2u);
}

TEST(Wfq, OverflowDropsFromLongestQueue) {
  // DKS89 buffer policy: the flooding flow loses its newest packet, not
  // the conforming arrival.
  WfqScheduler q(cfg(1000.0, 4));
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(offer(q, pkt(2, i, 0.0), 0.0).empty());
  }
  auto dropped = offer(q, pkt(1, 0, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->flow, 2);
  EXPECT_EQ(dropped[0]->seq, 3u);  // flow 2's newest
  // The conforming packet survives and departs promptly (flow 1 head).
  EXPECT_EQ(q.packets(), 4u);
  bool saw_flow1 = false;
  while (!q.empty()) {
    if (q.dequeue(0.0)->flow == 1) saw_flow1 = true;
  }
  EXPECT_TRUE(saw_flow1);
}

TEST(Wfq, OverflowKeepsHeadSetConsistent) {
  // Evicting the only packet of the longest flow must remove its head
  // entry; churn then drain without corruption.
  WfqScheduler q(cfg(1000.0, 1));
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  auto dropped = offer(q, pkt(2, 0, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(q.packets(), 1u);
  auto p = q.dequeue(0.0);
  ASSERT_NE(p, nullptr);
  EXPECT_TRUE(q.empty());
}

TEST(Wfq, WeightLookup) {
  WfqScheduler q(cfg(1000.0, 10, 2.5));
  q.add_flow(7, 4.0);
  EXPECT_DOUBLE_EQ(q.weight(7), 4.0);
  EXPECT_DOUBLE_EQ(q.weight(8), 2.5);  // default
}

TEST(Wfq, PacketsAndBitsAccounting) {
  WfqScheduler q(cfg());
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0, 700.0), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(2, 0, 0.0, 300.0), 0.0).empty());
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 1000.0);
  (void)q.dequeue(0.0);
  (void)q.dequeue(0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 0.0);
}

// ------------------------------------------------------------ isolation --
// A conforming flow's service is unaffected by a misbehaving flow: WFQ's
// core promise (paper §4).  Driven end-to-end through a real simulated
// link (dumbbell topology).

TEST(Wfq, IsolationFromMisbehavingFlow) {
  net::Network net;
  WfqScheduler* sched = nullptr;
  const auto topo = net::build_dumbbell(net, 1e6, [&] {
    auto q = std::make_unique<WfqScheduler>(
        WfqScheduler::Config{1e6, 100000, 1.0});
    sched = q.get();
    return q;
  });
  ASSERT_NE(sched, nullptr);
  sched->add_flow(1, 5e5);
  sched->add_flow(2, 5e5);

  net::Host& src = net.host(topo.left_host);
  auto emit = [&src](net::PacketPtr p) { src.inject(std::move(p)); };

  // Flow 1: CBR at 250 kb/s — half its 500 kb/s entitlement.
  traffic::CbrSource good(net.sim(), {.rate_pps = 250.0, .packet_bits = 1000},
                          1, topo.left_host, topo.right_host, emit,
                          &net.stats(1));
  // Flow 2 misbehaves: CBR at 2 Mb/s, double the whole link.
  traffic::CbrSource flood(net.sim(), {.rate_pps = 2000.0, .packet_bits = 1000},
                           2, topo.left_host, topo.right_host, emit,
                           &net.stats(2));
  net.attach_stats_sink(1, topo.right_host);
  net.attach_stats_sink(2, topo.right_host);
  good.start(0);
  flood.start(0);
  net.sim().run_until(20.0);

  // Entitled to 500 kb/s: 1000-bit packets arriving at 250/s never queue
  // more than ~2 packet services behind the flood.
  EXPECT_GT(net.stats(1).received, 4000u);
  EXPECT_LT(net.stats(1).queueing_delay.max(), 0.005);
  // The flood itself suffers (it gets ~750 kb/s of a 1 Mb/s link).
  EXPECT_GT(net.stats(2).queueing_delay.max(), 0.05);
}

// ------------------------------------------- Parekh–Gallager bound sweep --
// Greedy conforming source vs. saturating cross traffic on one link: the
// flow's queueing delay must stay below b/r + p/r + p/C (fluid bound + one
// packet quantum + store-and-forward).

class PgBoundSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PgBoundSweep, GreedySourceStaysUnderBound) {
  const auto [rate_share, depth_pkts] = GetParam();
  const double link = 1e6;
  const double r = rate_share * link;
  const double b = depth_pkts * 1000.0;

  net::Network net;
  WfqScheduler* sched = nullptr;
  const auto topo = net::build_dumbbell(net, link, [&] {
    auto q = std::make_unique<WfqScheduler>(
        WfqScheduler::Config{link, 100000, link - r});
    sched = q.get();
    return q;
  });
  sched->add_flow(1, r);

  net::Host& src = net.host(topo.left_host);
  auto emit = [&src](net::PacketPtr p) { src.inject(std::move(p)); };

  traffic::GreedySource greedy(net.sim(),
                               {.bucket = {r, b}, .packet_bits = 1000.0,
                                .limit = 0},
                               1, topo.left_host, topo.right_host, emit,
                               &net.stats(1));
  // Cross traffic saturates the remainder of the link (and then some).
  traffic::CbrSource cross(net.sim(), {.rate_pps = 1200.0, .packet_bits = 1000},
                           2, topo.left_host, topo.right_host, emit,
                           &net.stats(2));
  net.attach_stats_sink(1, topo.right_host);
  net.attach_stats_sink(2, topo.right_host);
  greedy.start(0);
  cross.start(0);
  net.sim().run_until(30.0);

  // Queueing delay excludes the own transmission time; allow the packet
  // quantum p/r plus in-service packet p/C on top of the fluid b/r.
  const double bound = b / r + 1000.0 / r + 1000.0 / link;
  EXPECT_GT(net.stats(1).received, 100u);
  EXPECT_LE(net.stats(1).queueing_delay.max(), bound + 1e-9)
      << "r=" << r << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    RatesAndDepths, PgBoundSweep,
    ::testing::Combine(::testing::Values(0.1, 0.25, 0.5),
                       ::testing::Values(1.0, 5.0, 20.0)));

}  // namespace
}  // namespace ispn::sched
