// Differential determinism harness for the event-core ordering backends.
//
// The timing wheel may replace the 4-ary heap under the whole simulator
// ONLY if the substitution is unobservable: identical firing order,
// identical packet schedules, identical statistics — bit-for-bit.  This
// harness is that proof, at two altitudes:
//
//   * Queue level: seeded fuzz op-streams (schedules across wildly mixed
//     horizons, same-instant clusters, cancel bursts, persistent timer
//     arm/re-arm/disarm, interleaved pops) are replayed through a fresh
//     EventQueue per backend; the (time, tag) firing sequences must match
//     exactly.
//   * Network level: seeded multi-hop workloads — the paper's Figure-1
//     chain under WFQ with policed on/off sources, a fan-in merge under
//     FIFO with Poisson overload, and a TCP transfer with CBR cross
//     traffic (RTO re-arms, retry timers) — run once per backend; the
//     full PacketTracer record stream (every transmit, drop and delivery
//     with bit-equal timestamps and delay fields), the per-flow stats and
//     the total event count must be identical across kHeap, kWheel and
//     kAuto (which migrates mid-run).
//
// Exact double equality is deliberate: delays are accumulated in firing
// order, so even one transposition of a same-instant pair would surface
// as a differing bit pattern somewhere downstream.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "net/network.h"
#include "net/topology.h"
#include "net/tracer.h"
#include "sched/fifo.h"
#include "sched/wfq.h"
#include "sim/random.h"
#include "sim/timer.h"
#include "traffic/cbr_source.h"
#include "traffic/onoff_source.h"
#include "traffic/poisson_source.h"
#include "traffic/tcp.h"

namespace ispn {
namespace {

constexpr sim::EventBackend kBackends[] = {sim::EventBackend::kHeap,
                                           sim::EventBackend::kWheel,
                                           sim::EventBackend::kAuto};

const char* name_of(sim::EventBackend b) {
  switch (b) {
    case sim::EventBackend::kHeap: return "heap";
    case sim::EventBackend::kWheel: return "wheel";
    case sim::EventBackend::kAuto: return "auto";
  }
  return "?";
}

// --- queue-level fuzz ------------------------------------------------------

struct Firing {
  sim::Time time;
  int tag;
  bool operator==(const Firing& o) const {
    return time == o.time && tag == o.tag;
  }
};

/// Replays a seeded op-stream and returns the exact firing sequence.  The
/// stream interleaves one-shot schedules (mixed horizons from sub-tick to
/// far future), cancels of random outstanding ids, persistent-timer
/// re-arms/disarms, and pops.
std::vector<Firing> replay_queue(std::uint64_t seed,
                                 sim::EventBackend backend) {
  std::mt19937_64 rng(seed * 0x9E3779B9u + 17);
  sim::Simulator sim(backend);
  std::vector<Firing> fired;
  int next_tag = 0;

  constexpr int kTimers = 4;
  std::vector<sim::Timer> timers;
  timers.reserve(kTimers);
  std::vector<int> timer_tags(kTimers, -1);
  for (int i = 0; i < kTimers; ++i) {
    timers.emplace_back(sim, [&fired, &timer_tags, &sim, i] {
      fired.push_back({sim.now(), timer_tags[i]});
    });
  }

  std::vector<sim::EventId> outstanding;
  auto horizon = [&rng]() -> double {
    switch (rng() % 5) {
      case 0: return 0.0;                                    // same instant
      case 1: return 1e-9 * static_cast<double>(rng() % 50);  // sub-tick
      case 2: return 1e-4 * static_cast<double>(1 + rng() % 100);
      case 3: return 1e-2 * static_cast<double>(1 + rng() % 100);
      default: return 10.0 * static_cast<double>(1 + rng() % 10);
    }
  };

  for (int step = 0; step < 4000; ++step) {
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2: {  // schedule a one-shot
        const int tag = next_tag++;
        outstanding.push_back(sim.after(
            horizon(), [&fired, &sim, tag] { fired.push_back({sim.now(), tag}); }));
        break;
      }
      case 3: {  // cancel a random outstanding id (may already be stale)
        if (!outstanding.empty()) {
          const std::size_t i = rng() % outstanding.size();
          sim.cancel(outstanding[i]);
          outstanding[i] = outstanding.back();
          outstanding.pop_back();
        }
        break;
      }
      case 4: {  // (re-)arm a persistent timer
        const int t = static_cast<int>(rng() % kTimers);
        timer_tags[static_cast<std::size_t>(t)] = next_tag++;
        timers[static_cast<std::size_t>(t)].arm_after(horizon());
        break;
      }
      case 5: {  // disarm a timer
        timers[rng() % kTimers].disarm();
        break;
      }
      default: {  // pop a burst
        const int n = static_cast<int>(rng() % 4);
        for (int i = 0; i < n && !sim.idle(); ++i) sim.step();
        break;
      }
    }
  }
  sim.run();
  return fired;
}

TEST(EventBackendDiff, QueueFuzzFiringOrderIdentical) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto ref = replay_queue(seed, sim::EventBackend::kHeap);
    EXPECT_GT(ref.size(), 1000u);
    for (sim::EventBackend backend : kBackends) {
      if (backend == sim::EventBackend::kHeap) continue;
      const auto got = replay_queue(seed, backend);
      ASSERT_EQ(ref.size(), got.size())
          << "seed " << seed << " under " << name_of(backend);
      for (std::size_t i = 0; i < ref.size(); ++i) {
        ASSERT_TRUE(ref[i] == got[i])
            << "seed " << seed << " firing " << i << " diverged under "
            << name_of(backend) << ": (" << got[i].time << ", " << got[i].tag
            << ") vs (" << ref[i].time << ", " << ref[i].tag << ")";
      }
    }
  }
}

// --- network-level workloads ----------------------------------------------

struct NetTrace {
  std::vector<net::PacketTracer::Record> records;
  std::uint64_t processed = 0;
  // Flattened per-flow stats, in flow order.
  std::vector<double> stats;
};

void flatten_stats(const std::map<net::FlowId, net::FlowStats>& all,
                   std::vector<double>* out) {
  for (const auto& [flow, st] : all) {
    out->push_back(static_cast<double>(flow));
    out->push_back(static_cast<double>(st.generated));
    out->push_back(static_cast<double>(st.source_drops));
    out->push_back(static_cast<double>(st.injected));
    out->push_back(static_cast<double>(st.net_drops));
    out->push_back(static_cast<double>(st.received));
    out->push_back(st.bits_received);
    out->push_back(static_cast<double>(st.queueing_delay.count()));
    out->push_back(st.queueing_delay.empty() ? 0 : st.queueing_delay.mean());
    out->push_back(st.queueing_delay.empty() ? 0 : st.queueing_delay.max());
    out->push_back(static_cast<double>(st.e2e_delay.count()));
    out->push_back(st.e2e_delay.empty() ? 0 : st.e2e_delay.mean());
    out->push_back(st.e2e_delay.empty() ? 0 : st.e2e_delay.max());
  }
}

bool record_eq(const net::PacketTracer::Record& a,
               const net::PacketTracer::Record& b) {
  return a.time == b.time && a.event == b.event && a.flow == b.flow &&
         a.seq == b.seq && a.node == b.node &&
         a.queueing_delay == b.queueing_delay &&
         a.jitter_offset == b.jitter_offset;
}

void expect_identical(const NetTrace& ref, const NetTrace& got,
                      sim::EventBackend backend, const std::string& what) {
  ASSERT_EQ(ref.processed, got.processed)
      << what << ": event count diverged under " << name_of(backend);
  ASSERT_EQ(ref.records.size(), got.records.size()) << what;
  for (std::size_t i = 0; i < ref.records.size(); ++i) {
    ASSERT_TRUE(record_eq(ref.records[i], got.records[i]))
        << what << ": trace record " << i << " diverged under "
        << name_of(backend) << " (flow " << got.records[i].flow << " seq "
        << got.records[i].seq << " t=" << got.records[i].time << " vs flow "
        << ref.records[i].flow << " seq " << ref.records[i].seq
        << " t=" << ref.records[i].time << ")";
  }
  ASSERT_EQ(ref.stats.size(), got.stats.size()) << what;
  for (std::size_t i = 0; i < ref.stats.size(); ++i) {
    ASSERT_EQ(ref.stats[i], got.stats[i])
        << what << ": stats word " << i << " diverged under "
        << name_of(backend);
  }
}

/// The Figure-1 chain under WFQ: 10 policed on/off flows with mixed path
/// lengths plus 2 CBR probes, 6 simulated seconds.
NetTrace run_chain_wfq(std::uint64_t seed, sim::EventBackend backend) {
  net::Network net(backend);
  const auto topo = net::build_chain(net, 5, 1e6, [] {
    return std::make_unique<sched::WfqScheduler>(
        sched::WfqScheduler::Config{1e6, 40, 1e4});
  });
  net::PacketTracer tracer(1u << 22);
  tracer.attach(net);

  std::vector<std::unique_ptr<traffic::Source>> sources;
  traffic::OnOffSource::Config on_off;  // paper defaults: A=85, B=5, P=2A
  for (int f = 0; f < 10; ++f) {
    const std::size_t src_sw = static_cast<std::size_t>(f % 2);
    const std::size_t dst_sw = static_cast<std::size_t>(4 - (f % 3));
    const net::NodeId src = topo.hosts[src_sw];
    const net::NodeId dst = topo.hosts[dst_sw];
    net::Host& host = net.host(src);
    auto s = std::make_unique<traffic::OnOffSource>(
        net.sim(), on_off, sim::Rng(seed, static_cast<std::uint64_t>(f)), f,
        src, dst, [&host](net::PacketPtr p) { host.inject(std::move(p)); },
        &net.stats(f), on_off.paper_filter());
    s->start(0.01 * f);
    net.attach_stats_sink(f, dst, tracer.wrap_sink());
    sources.push_back(std::move(s));
  }
  for (int f = 10; f < 12; ++f) {
    const net::NodeId src = topo.hosts[0];
    const net::NodeId dst = topo.hosts[4];
    net::Host& host = net.host(src);
    auto s = std::make_unique<traffic::CbrSource>(
        net.sim(), traffic::CbrSource::Config{120.0 + 10.0 * f}, f, src, dst,
        [&host](net::PacketPtr p) { host.inject(std::move(p)); },
        &net.stats(f));
    s->start(0.005 * f);
    net.attach_stats_sink(f, dst, tracer.wrap_sink());
    sources.push_back(std::move(s));
  }

  net.sim().run_until(6.0);
  NetTrace out;
  out.records = tracer.records();
  out.processed = net.sim().processed();
  flatten_stats(net.all_stats(), &out.stats);
  return out;
}

/// Fan-in overload under FIFO: four Poisson feeds converge on one
/// bottleneck; drops and retry-free FIFO dynamics, 6 simulated seconds.
NetTrace run_fan_in_fifo(std::uint64_t seed, sim::EventBackend backend) {
  net::Network net(backend);
  const auto topo = net::build_fan_in(net, 4, 2e6, 1e6, [] {
    return std::make_unique<sched::FifoScheduler>(30);
  });
  net::PacketTracer tracer(1u << 22);
  tracer.attach(net);

  std::vector<std::unique_ptr<traffic::Source>> sources;
  for (int f = 0; f < 4; ++f) {
    const net::NodeId src = topo.src_hosts[static_cast<std::size_t>(f)];
    const net::NodeId dst = topo.sink_host;
    net::Host& host = net.host(src);
    auto s = std::make_unique<traffic::PoissonSource>(
        net.sim(), traffic::PoissonSource::Config{300.0 + 50.0 * f},
        sim::Rng(seed, 100 + static_cast<std::uint64_t>(f)), f, src, dst,
        [&host](net::PacketPtr p) { host.inject(std::move(p)); },
        &net.stats(f));
    s->start(0.002 * f);
    net.attach_stats_sink(f, dst, tracer.wrap_sink());
    sources.push_back(std::move(s));
  }

  net.sim().run_until(6.0);
  NetTrace out;
  out.records = tracer.records();
  out.processed = net.sim().processed();
  flatten_stats(net.all_stats(), &out.stats);
  return out;
}

/// TCP with CBR cross traffic on a tight dumbbell: exercises RTO re-arm,
/// fast retransmit and the ACK reverse path, 8 simulated seconds.
NetTrace run_tcp_dumbbell(std::uint64_t seed, sim::EventBackend backend) {
  net::Network net(backend);
  const auto topo = net::build_dumbbell(net, 1e6, [] {
    return std::make_unique<sched::FifoScheduler>(12);
  });
  net::PacketTracer tracer(1u << 22);
  tracer.attach(net);

  net::Host& left = net.host(topo.left_host);
  net::Host& right = net.host(topo.right_host);
  traffic::TcpSource::Config cfg;
  traffic::TcpSource tcp(
      net.sim(), cfg, 1, topo.left_host, topo.right_host,
      [&left](net::PacketPtr p) { left.inject(std::move(p)); }, &net.stats(1));
  traffic::TcpSink sink(net.sim(), cfg, 1, topo.right_host, topo.left_host,
                        [&right](net::PacketPtr p) {
                          right.inject(std::move(p));
                        });
  left.register_sink(1, &tcp);
  net.attach_stats_sink(1, topo.right_host, &sink);

  // CBR cross traffic paced off the seed so runs differ across seeds.
  traffic::CbrSource cross(
      net.sim(),
      traffic::CbrSource::Config{400.0 + static_cast<double>(seed % 7) * 25.0},
      2, topo.left_host, topo.right_host,
      [&left](net::PacketPtr p) { left.inject(std::move(p)); }, &net.stats(2));
  net.attach_stats_sink(2, topo.right_host, tracer.wrap_sink());

  tcp.start(0);
  cross.start(0.001);
  net.sim().run_until(8.0);
  NetTrace out;
  out.records = tracer.records();
  out.processed = net.sim().processed();
  flatten_stats(net.all_stats(), &out.stats);
  return out;
}

using RunFn = NetTrace (*)(std::uint64_t, sim::EventBackend);

void diff_workload(RunFn run, const char* label, int seeds) {
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds);
       ++seed) {
    const NetTrace ref = run(seed, sim::EventBackend::kHeap);
    EXPECT_GT(ref.records.size(), 100u) << label;
    for (sim::EventBackend backend : kBackends) {
      if (backend == sim::EventBackend::kHeap) continue;
      const NetTrace got = run(seed, backend);
      expect_identical(ref, got, backend,
                       std::string(label) + " seed=" + std::to_string(seed));
    }
  }
}

TEST(EventBackendDiff, ChainWfqTracesIdentical) {
  diff_workload(&run_chain_wfq, "chain-wfq", 10);
}

TEST(EventBackendDiff, FanInFifoTracesIdentical) {
  diff_workload(&run_fan_in_fifo, "fan-in-fifo", 10);
}

TEST(EventBackendDiff, TcpDumbbellTracesIdentical) {
  diff_workload(&run_tcp_dumbbell, "tcp-dumbbell", 10);
}

// The workloads must actually exercise the machinery whose order could
// diverge — drops, multi-hop queueing, retransmissions — otherwise
// "identical traces" would be vacuous.
TEST(EventBackendDiff, WorkloadsExerciseDropsAndRetransmits) {
  const NetTrace fan = run_fan_in_fifo(1, sim::EventBackend::kWheel);
  std::size_t drops = 0;
  for (const auto& r : fan.records) {
    if (r.event == net::PacketTracer::Event::kDrop) ++drops;
  }
  EXPECT_GT(drops, 0u) << "fan-in never overloaded its bottleneck";

  net::Network net(sim::EventBackend::kWheel);
  const auto topo = net::build_dumbbell(net, 1e6, [] {
    return std::make_unique<sched::FifoScheduler>(12);
  });
  net::Host& left = net.host(topo.left_host);
  net::Host& right = net.host(topo.right_host);
  traffic::TcpSource::Config cfg;
  traffic::TcpSource tcp(
      net.sim(), cfg, 1, topo.left_host, topo.right_host,
      [&left](net::PacketPtr p) { left.inject(std::move(p)); }, &net.stats(1));
  traffic::TcpSink sink(net.sim(), cfg, 1, topo.right_host, topo.left_host,
                        [&right](net::PacketPtr p) {
                          right.inject(std::move(p));
                        });
  left.register_sink(1, &tcp);
  net.attach_stats_sink(1, topo.right_host, &sink);
  tcp.start(0);
  net.sim().run_until(8.0);
  EXPECT_GT(tcp.retransmits(), 0u) << "TCP never hit the tiny buffer";
}

}  // namespace
}  // namespace ispn
