// LinkMailbox BDP-overflow regression (PR 9, satellite b).
//
// Sharded runs hand packets between domains through per-link SPSC rings
// sized from the bandwidth-delay product.  A burst that outruns the BDP
// sizing falls back to the barrier-only spill path (an overflow vector
// drained at the next lookahead window).  That path must be a pure
// performance detail: forcing EVERY ring down to a toy capacity so the
// spill path carries most of the traffic must leave results byte-
// identical to the default-capacity run — same trace, same decisions,
// same ledger — with per-flow delivery order intact, and the spill
// vectors must reach their high-water capacity and then stop allocating
// (zero steady-state allocation, counted by the global new/delete hook).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "alloc_hook.h"
#include "net/tracer.h"
#include "scenario/runner.h"

namespace ispn {
namespace {

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t hash_trace(const std::vector<net::PacketTracer::Record>& recs) {
  std::uint64_t h = 1469598103934665603ull;
  for (const auto& r : recs) {
    h = fnv1a(h, &r.time, sizeof r.time);
    const auto event = static_cast<std::uint8_t>(r.event);
    h = fnv1a(h, &event, sizeof event);
    h = fnv1a(h, &r.flow, sizeof r.flow);
    h = fnv1a(h, &r.seq, sizeof r.seq);
    h = fnv1a(h, &r.node, sizeof r.node);
    h = fnv1a(h, &r.queueing_delay, sizeof r.queueing_delay);
    h = fnv1a(h, &r.jitter_offset, sizeof r.jitter_offset);
  }
  return h;
}

/// A sharded fan-in burst: every source opens at t=0 and floods toward
/// the root, so the aggregation links hand dense packet trains across
/// domain boundaries every window.
scenario::ScenarioSpec burst_spec() {
  scenario::ScenarioSpec spec = scenario::preset("fan_in");
  scenario::apply_scale(spec, "small");
  spec.tree_depth = 3;
  spec.tree_width = 3;
  spec.arrival_rate = 0;  // deterministic batch: all flows open at prepare
  spec.target_flows = 18;
  spec.mean_hold = 1000.0;  // nothing closes mid-run
  // CBR sources: queue occupancy is periodic, so every container reaches
  // its high-water mark during warmup and the steady window is exactly
  // allocation-free (Poisson would keep setting new depth records).
  spec.source = scenario::SourceKind::kCbr;
  spec.avg_rate_pps = 220.0;
  spec.p_guaranteed = 0.2;
  spec.p_predicted = 0.3;
  spec.run_seconds = 16.0;
  spec.shards = 2;
  // A wide lookahead window so each barrier hands a real packet train
  // across domains: at 1 Mb/s and 50 ms windows a saturated link pushes
  // ~12 packets per window — far over the toy ring, comfortably under
  // the default BDP sizing.
  spec.link_latency = 0.05;
  spec.event_backend = sim::EventBackend::kHeap;
  spec.order_backend = sched::OrderBackend::kHeap;
  spec.seed = 21;
  return spec;
}

struct BurstRun {
  std::uint64_t trace_hash = 0;
  std::uint64_t decision_hash = 0;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t spills = 0;
  std::uint64_t steady_allocs = ~0ull;
  bool conserved = false;
  std::map<net::FlowId, std::vector<std::uint64_t>> delivered_seqs;
};

BurstRun run_burst(std::size_t mailbox_cap, bool traced) {
  scenario::ScenarioRunner runner(burst_spec());
  if (mailbox_cap > 0) {
    // Between construction and prepare(): the fabric (and its mailboxes)
    // is built inside prepare().
    runner.net().set_mailbox_capacity_override(mailbox_cap);
  }
  // The tracer's own record buffers grow with the run, so the zero-
  // allocation window is only meaningful untraced; the traced variant
  // supplies the byte-identity and ordering evidence instead.
  net::PacketTracer tracer(1u << 22);
  if (traced) runner.set_tracer(&tracer);
  runner.prepare();
  if (traced) tracer.attach(runner.net());

  // Steady-state window: the flow population is fixed from t=0, so once
  // rings, pools and spill vectors hit their high-water marks nothing in
  // the per-packet path may allocate.
  std::uint64_t allocs_at_8 = 0;
  BurstRun out;
  runner.net().sim().at(8.0, [&] {
    allocs_at_8 = testhook::allocation_count();
  });
  runner.net().sim().at(15.0, [&] {
    out.steady_allocs = testhook::allocation_count() - allocs_at_8;
  });

  const scenario::ScenarioReport report = runner.run();
  out.generated = report.generated;
  out.delivered = report.delivered;
  out.decision_hash = report.decision_hash();
  out.spills = runner.net().mailbox_spills();
  out.conserved = report.conserved();
  if (traced) {
    tracer.finalize();
    EXPECT_FALSE(tracer.truncated());
    out.trace_hash = hash_trace(tracer.records());
    for (const auto& r : tracer.records()) {
      if (r.event == net::PacketTracer::Event::kDeliver) {
        out.delivered_seqs[r.flow].push_back(r.seq);
      }
    }
  }
  return out;
}

TEST(MailboxOverflow, BurstSurvivesTinyRingsInOrderWithoutAllocating) {
  const BurstRun ref = run_burst(0, /*traced=*/true);  // default BDP sizing
  const BurstRun tiny = run_burst(8, /*traced=*/true);
  const BurstRun ref_lean = run_burst(0, /*traced=*/false);
  const BurstRun tiny_lean = run_burst(8, /*traced=*/false);

  // The toy rings actually overflowed — this test is about the spill
  // path, and the default sizing must NOT be hitting it.
  EXPECT_EQ(ref.spills, 0u) << "BDP sizing itself overflowed; the spill "
                               "path is load-bearing, not a fallback";
  EXPECT_GT(tiny.spills, 1000u) << "rings never overflowed; the spill "
                                   "path was not exercised";

  // Spills are invisible in results: byte-identical trace and ledger.
  EXPECT_GT(ref.generated, 10000u) << "burst too small to prove anything";
  EXPECT_EQ(ref.trace_hash, tiny.trace_hash);
  EXPECT_EQ(ref.decision_hash, tiny.decision_hash);
  EXPECT_EQ(ref.generated, tiny.generated);
  EXPECT_EQ(ref.delivered, tiny.delivered);
  EXPECT_TRUE(ref.conserved);
  EXPECT_TRUE(tiny.conserved);

  // Per-flow delivery order survives the spill path: sequence numbers at
  // the sink are strictly increasing (drops leave gaps, never swaps).
  EXPECT_GT(tiny.delivered_seqs.size(), 0u);
  for (const auto& [flow, seqs] : tiny.delivered_seqs) {
    for (std::size_t i = 1; i < seqs.size(); ++i) {
      ASSERT_LT(seqs[i - 1], seqs[i])
          << "flow " << flow << " delivered out of order at index " << i;
    }
  }

  // Once the overflow vectors reach their high-water capacity the spill
  // path allocates nothing: clear() keeps capacity across windows.  The
  // untraced runs carry this assertion (the tracer's record buffers are
  // the test's own instrumentation); they must spill all the same, and
  // agree with the traced runs on results.
  EXPECT_GT(tiny_lean.spills, 1000u);
  EXPECT_EQ(tiny_lean.decision_hash, tiny.decision_hash);
  EXPECT_EQ(tiny_lean.delivered, tiny.delivered);
  EXPECT_EQ(ref_lean.decision_hash, ref.decision_hash);
  EXPECT_EQ(ref_lean.delivered, ref.delivered);
  EXPECT_EQ(tiny_lean.steady_allocs, 0u)
      << "spill path allocated in steady state";
  EXPECT_EQ(ref_lean.steady_allocs, 0u)
      << "default path allocated in steady state";
}

}  // namespace
}  // namespace ispn
