// On/off Markov, CBR, Poisson and greedy sources: rates, burst geometry,
// policing behaviour (the paper's ~2% source drop), conformance.

#include <gtest/gtest.h>

#include <vector>

#include "traffic/cbr_source.h"
#include "traffic/greedy_source.h"
#include "traffic/onoff_source.h"
#include "traffic/poisson_source.h"

namespace ispn::traffic {
namespace {

struct Collector {
  std::vector<TracePacket> trace;
  std::uint64_t count = 0;

  EmitFn emit() {
    return [this](net::PacketPtr p) {
      trace.push_back({p->created_at, p->size_bits});
      ++count;
    };
  }
};

TEST(OnOffConfig, PaperParameterRelations) {
  OnOffSource::Config c;  // defaults = paper values
  EXPECT_DOUBLE_EQ(c.avg_rate_pps, 85.0);
  EXPECT_DOUBLE_EQ(c.peak_pps(), 170.0);
  // A^{-1} = I/B + 1/P  must hold for the derived idle time.
  EXPECT_NEAR(1.0 / c.avg_rate_pps,
              c.mean_idle() / c.mean_burst_pkts + 1.0 / c.peak_pps(), 1e-12);
  EXPECT_DOUBLE_EQ(c.avg_bps(), 85000.0);
  EXPECT_DOUBLE_EQ(c.peak_bps(), 170000.0);
  EXPECT_DOUBLE_EQ(c.paper_filter().rate, 85000.0);
  EXPECT_DOUBLE_EQ(c.paper_filter().depth, 50000.0);
}

TEST(OnOffSource, UnpolicedRateMatchesA) {
  sim::Simulator sim;
  Collector sink;
  OnOffSource src(sim, {}, sim::Rng(1), 0, 0, 1, sink.emit(), nullptr,
                  std::nullopt);
  src.start(0);
  const double seconds = 400.0;
  sim.run_until(seconds);
  const double rate = static_cast<double>(sink.count) / seconds;
  EXPECT_NEAR(rate / 85.0, 1.0, 0.03);
}

TEST(OnOffSource, PaperFilterDropsAboutTwoPercent) {
  sim::Simulator sim;
  Collector sink;
  net::FlowStats stats;
  OnOffSource::Config config;
  OnOffSource src(sim, config, sim::Rng(2), 0, 0, 1, sink.emit(), &stats,
                  config.paper_filter());
  src.start(0);
  sim.run_until(600.0);
  const double drop = stats.source_drop_rate();
  // Paper: "in our simulations about 2% of the packets were dropped".
  EXPECT_GT(drop, 0.002);
  EXPECT_LT(drop, 0.08);
  EXPECT_EQ(stats.generated, stats.injected + stats.source_drops);
}

TEST(OnOffSource, PolicedOutputConformsToFilter) {
  sim::Simulator sim;
  Collector sink;
  OnOffSource::Config config;
  OnOffSource src(sim, config, sim::Rng(3), 0, 0, 1, sink.emit(), nullptr,
                  config.paper_filter());
  src.start(0);
  sim.run_until(200.0);
  EXPECT_TRUE(conforms(sink.trace, config.paper_filter()));
}

TEST(OnOffSource, BurstSpacingIsPeakRate) {
  sim::Simulator sim;
  Collector sink;
  OnOffSource src(sim, {}, sim::Rng(4), 0, 0, 1, sink.emit(), nullptr,
                  std::nullopt);
  src.start(0);
  sim.run_until(100.0);
  // Every inter-packet gap is either 1/P (within burst) or > 1/P (idle).
  const double slot = 1.0 / 170.0;
  int within = 0;
  for (std::size_t i = 1; i < sink.trace.size(); ++i) {
    const double gap = sink.trace[i].time - sink.trace[i - 1].time;
    EXPECT_GE(gap, slot - 1e-9);
    if (gap < slot + 1e-9) ++within;
  }
  // With B = 5, roughly 4/5 of gaps are within-burst.
  EXPECT_GT(within, static_cast<int>(sink.trace.size() / 2));
}

TEST(OnOffSource, DeterministicAcrossRuns) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator sim;
    Collector sink;
    OnOffSource src(sim, {}, sim::Rng(seed), 0, 0, 1, sink.emit(), nullptr,
                    std::nullopt);
    src.start(0);
    sim.run_until(50.0);
    return sink.trace;
  };
  const auto a = run(42);
  const auto b = run(42);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a[i].time, b[i].time);
  }
  EXPECT_NE(run(43).size(), 0u);
}

TEST(OnOffSource, StopHaltsGeneration) {
  sim::Simulator sim;
  Collector sink;
  OnOffSource src(sim, {}, sim::Rng(5), 0, 0, 1, sink.emit(), nullptr,
                  std::nullopt);
  src.start(0);
  sim.run_until(10.0);
  const auto count = sink.count;
  EXPECT_GT(count, 0u);
  src.stop();
  sim.run_until(20.0);
  EXPECT_EQ(sink.count, count);
}

class OnOffRateSweep : public ::testing::TestWithParam<double> {};

TEST_P(OnOffRateSweep, AverageRateTracksConfiguredA) {
  const double A = GetParam();
  sim::Simulator sim;
  Collector sink;
  OnOffSource::Config config;
  config.avg_rate_pps = A;
  OnOffSource src(sim, config, sim::Rng(6), 0, 0, 1, sink.emit(), nullptr,
                  std::nullopt);
  src.start(0);
  const double seconds = 300.0;
  sim.run_until(seconds);
  EXPECT_NEAR(static_cast<double>(sink.count) / seconds / A, 1.0, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Rates, OnOffRateSweep,
                         ::testing::Values(20.0, 85.0, 300.0));

// -------------------------------------------------------------------- CBR --

TEST(CbrSource, ExactSpacing) {
  sim::Simulator sim;
  Collector sink;
  CbrSource src(sim, {.rate_pps = 10.0, .packet_bits = 1000, .limit = 5}, 0, 0,
                1, sink.emit());
  src.start(0);
  sim.run();
  ASSERT_EQ(sink.trace.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_NEAR(sink.trace[i].time, 0.1 * static_cast<double>(i), 1e-12);
  }
}

TEST(CbrSource, LimitZeroMeansUnlimited) {
  sim::Simulator sim;
  Collector sink;
  CbrSource src(sim, {.rate_pps = 100.0, .packet_bits = 1000, .limit = 0}, 0,
                0, 1, sink.emit());
  src.start(0);
  sim.run_until(10.0);
  EXPECT_NEAR(static_cast<double>(sink.count), 1000.0, 2.0);
}

// ---------------------------------------------------------------- Poisson --

TEST(PoissonSource, RateMatches) {
  sim::Simulator sim;
  Collector sink;
  PoissonSource src(sim, {.rate_pps = 50.0, .packet_bits = 1000},
                    sim::Rng(8), 0, 0, 1, sink.emit());
  src.start(0);
  const double seconds = 400.0;
  sim.run_until(seconds);
  EXPECT_NEAR(static_cast<double>(sink.count) / seconds / 50.0, 1.0, 0.05);
}

// ----------------------------------------------------------------- Greedy --

TEST(GreedySource, EmitsFullBurstAtStart) {
  sim::Simulator sim;
  Collector sink;
  GreedySource src(sim,
                   {.bucket = {1000.0, 5000.0}, .packet_bits = 1000.0,
                    .limit = 0},
                   0, 0, 1, sink.emit());
  src.start(0);
  sim.run_until(0.0);
  EXPECT_EQ(sink.count, 5u);  // 5 back-to-back packets at t = 0
}

TEST(GreedySource, SendsAtTokenRateAfterBurst) {
  sim::Simulator sim;
  Collector sink;
  GreedySource src(sim,
                   {.bucket = {1000.0, 3000.0}, .packet_bits = 1000.0,
                    .limit = 13},
                   0, 0, 1, sink.emit());
  src.start(0);
  sim.run_until(100.0);
  EXPECT_EQ(sink.count, 13u);
  // After the 3-packet burst, one packet per second.
  EXPECT_NEAR(sink.trace.back().time, 10.0, 1e-9);
}

TEST(GreedySource, OutputConformsToItsBucket) {
  sim::Simulator sim;
  Collector sink;
  const TokenBucketSpec bucket{2000.0, 7000.0};
  GreedySource src(sim, {.bucket = bucket, .packet_bits = 1000.0,
                         .limit = 100},
                   0, 0, 1, sink.emit());
  src.start(0);
  sim.run_until(200.0);
  EXPECT_EQ(sink.count, 100u);
  EXPECT_TRUE(conforms(sink.trace, bucket));
}

TEST(GreedySource, KeepsBucketEmpty) {
  // "Greedy sources keep their token buckets empty": immediately after each
  // send the bucket has < 1 packet of tokens.  We verify via the trace: no
  // gap ever exceeds p/r once past the initial burst (tokens never pool).
  sim::Simulator sim;
  Collector sink;
  const TokenBucketSpec bucket{1000.0, 4000.0};
  GreedySource src(sim, {.bucket = bucket, .packet_bits = 1000.0,
                         .limit = 50},
                   0, 0, 1, sink.emit());
  src.start(0);
  sim.run_until(100.0);
  for (std::size_t i = 5; i < sink.trace.size(); ++i) {
    EXPECT_NEAR(sink.trace[i].time - sink.trace[i - 1].time, 1.0, 1e-9);
  }
}

}  // namespace
}  // namespace ispn::traffic
