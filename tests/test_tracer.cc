#include "net/tracer.h"

#include <gtest/gtest.h>

#include <sstream>

#include "net/topology.h"
#include "sched/fifo.h"

namespace ispn::net {
namespace {

SchedulerFactory fifo_factory(std::size_t cap = 200) {
  return [cap] { return std::make_unique<sched::FifoScheduler>(cap); };
}

TEST(Tracer, RecordsTransmissions) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  PacketTracer tracer;
  tracer.attach(net);
  net.attach_stats_sink(1, topo.right_host);
  for (std::uint64_t i = 0; i < 3; ++i) {
    net.host(topo.left_host)
        .inject(make_packet(1, i, topo.left_host, topo.right_host, 0.0));
  }
  net.sim().run();
  EXPECT_EQ(tracer.count(PacketTracer::Event::kTransmit), 3u);
  EXPECT_EQ(tracer.count(PacketTracer::Event::kDrop), 0u);
}

TEST(Tracer, RecordsDrops) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory(1));
  PacketTracer tracer;
  tracer.attach(net);
  net.attach_stats_sink(1, topo.right_host);
  for (std::uint64_t i = 0; i < 5; ++i) {
    net.host(topo.left_host)
        .inject(make_packet(1, i, topo.left_host, topo.right_host, 0.0));
  }
  net.sim().run();
  EXPECT_EQ(tracer.count(PacketTracer::Event::kDrop), 3u);
  EXPECT_EQ(tracer.count(PacketTracer::Event::kTransmit), 2u);
}

TEST(Tracer, WrappedSinkRecordsDeliveries) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  PacketTracer tracer;
  tracer.attach(net);
  net.attach_stats_sink(1, topo.right_host, tracer.wrap_sink());
  net.host(topo.left_host)
      .inject(make_packet(1, 7, topo.left_host, topo.right_host, 0.0));
  net.sim().run();
  ASSERT_EQ(tracer.count(PacketTracer::Event::kDeliver), 1u);
  const auto& records = tracer.records();
  const auto& delivery = records.back();
  EXPECT_EQ(delivery.flow, 1);
  EXPECT_EQ(delivery.seq, 7u);
  EXPECT_EQ(delivery.node, topo.right_host);
}

TEST(Tracer, TimestampsMonotone) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  PacketTracer tracer;
  tracer.attach(net);
  net.attach_stats_sink(1, topo.right_host);
  for (std::uint64_t i = 0; i < 10; ++i) {
    net.host(topo.left_host)
        .inject(make_packet(1, i, topo.left_host, topo.right_host, 0.0));
  }
  net.sim().run();
  double prev = -1;
  for (const auto& r : tracer.records()) {
    EXPECT_GE(r.time, prev);
    prev = r.time;
  }
}

TEST(Tracer, CsvRoundTrip) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  PacketTracer tracer;
  tracer.attach(net);
  net.attach_stats_sink(1, topo.right_host);
  net.host(topo.left_host)
      .inject(make_packet(1, 0, topo.left_host, topo.right_host, 0.0));
  net.sim().run();
  std::ostringstream out;
  tracer.to_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("time,event,flow,seq,node"), std::string::npos);
  EXPECT_NE(csv.find(",tx,"), std::string::npos);
}

// Satellite regression: infinitely fast links stamp enqueued_at like any
// other hop, so an observer behind the tracer on an all-fast route never
// sees a default or stale arrival time on host-switch hops.
TEST(Tracer, InfiniteLinksStampArrivalTime) {
  class StampChecker final : public FlowSink {
   public:
    void on_packet(PacketPtr p, sim::Time) override {
      stamps.push_back(p->enqueued_at);
    }
    std::vector<sim::Time> stamps;
  };

  Network net;
  auto& s = net.add_switch("S");
  auto& h1 = net.add_host("H-1");
  auto& h2 = net.add_host("H-2");
  net.connect(h1.id(), s.id(), /*rate=*/0);  // whole route infinitely fast
  net.connect(h2.id(), s.id(), /*rate=*/0);
  net.build_routes();

  PacketTracer tracer;
  tracer.attach(net);
  StampChecker checker;
  net.attach_stats_sink(1, h2.id(), tracer.wrap_sink(&checker));

  auto& src = net.host(h1.id());
  net.sim().at(1.5, [&src, &h1, &h2] {
    src.inject(make_packet(1, 0, h1.id(), h2.id(), 1.5));
  });
  net.sim().at(2.25, [&src, &h1, &h2] {
    src.inject(make_packet(1, 1, h1.id(), h2.id(), 2.25));
  });
  net.sim().run();

  // Without the stamp the packets would arrive with enqueued_at == 0 (the
  // make_packet default) because no finite-rate port ever touched them.
  ASSERT_EQ(checker.stamps.size(), 2u);
  EXPECT_DOUBLE_EQ(checker.stamps[0], 1.5);
  EXPECT_DOUBLE_EQ(checker.stamps[1], 2.25);
  EXPECT_EQ(tracer.count(PacketTracer::Event::kDeliver), 2u);
}

TEST(Tracer, BoundedRecording) {
  Network net;
  const auto topo = build_dumbbell(net, 1e6, fifo_factory());
  PacketTracer tracer(/*max_records=*/5);
  tracer.attach(net);
  net.attach_stats_sink(1, topo.right_host);
  for (std::uint64_t i = 0; i < 20; ++i) {
    net.host(topo.left_host)
        .inject(make_packet(1, i, topo.left_host, topo.right_host, 0.0));
  }
  net.sim().run();
  EXPECT_EQ(tracer.records().size(), 5u);
  EXPECT_TRUE(tracer.truncated());
  tracer.clear();
  EXPECT_TRUE(tracer.records().empty());
  EXPECT_FALSE(tracer.truncated());
}

}  // namespace
}  // namespace ispn::net
