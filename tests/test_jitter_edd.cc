#include "sched/jitter_edd.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sched/fifo.h"
#include "sched_test_util.h"
#include "traffic/onoff_source.h"

namespace ispn::sched {
namespace {

using sched_test::offer;
using sched_test::pkt;

net::PacketPtr ahead_pkt(net::FlowId flow, std::uint64_t seq,
                         sim::Time arrival, double ahead) {
  auto p = pkt(flow, seq, arrival);
  p->jitter_offset = ahead;
  return p;
}

TEST(JitterEdd, ZeroAheadIsImmediatelyEligible) {
  JitterEddScheduler q({10, 0.1});
  ASSERT_TRUE(offer(q, pkt(1, 0, 1.0), 1.0).empty());
  EXPECT_DOUBLE_EQ(q.next_eligible(1.0), 1.0);
  EXPECT_NE(q.dequeue(1.0), nullptr);
}

TEST(JitterEdd, AheadPacketIsHeld) {
  JitterEddScheduler q({10, 0.1});
  // Arrived 30 ms ahead of its reconstructed schedule: held until then.
  ASSERT_TRUE(offer(q, ahead_pkt(1, 0, 1.0, 0.03), 1.0).empty());
  EXPECT_EQ(q.holding(), 1u);
  EXPECT_DOUBLE_EQ(q.next_eligible(1.0), 1.03);
  EXPECT_EQ(q.dequeue(1.0), nullptr);  // not eligible yet
  EXPECT_NE(q.dequeue(1.03), nullptr);
}

TEST(JitterEdd, DepartureStampsAheadOfDeadline) {
  JitterEddScheduler q({10, 0.1});
  q.set_bound(1, 0.050);
  ASSERT_TRUE(offer(q, pkt(1, 0, 1.0), 1.0).empty());
  // Deadline 1.05; departing at 1.01 means 40 ms ahead.
  auto p = q.dequeue(1.01);
  ASSERT_NE(p, nullptr);
  EXPECT_NEAR(p->jitter_offset, 0.04, 1e-12);
}

TEST(JitterEdd, LateDepartureStampsZero) {
  JitterEddScheduler q({10, 0.1});
  q.set_bound(1, 0.02);
  ASSERT_TRUE(offer(q, pkt(1, 0, 1.0), 1.0).empty());
  auto p = q.dequeue(1.5);  // long after the 1.02 deadline
  ASSERT_NE(p, nullptr);
  EXPECT_DOUBLE_EQ(p->jitter_offset, 0.0);
}

TEST(JitterEdd, EddOrderAmongEligible) {
  JitterEddScheduler q({10, 0.1});
  q.set_bound(1, 0.5);
  q.set_bound(2, 0.01);
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(2, 0, 0.0), 0.0).empty());
  EXPECT_EQ(q.dequeue(0.0)->flow, 2);
  EXPECT_EQ(q.dequeue(0.0)->flow, 1);
}

TEST(JitterEdd, HeldPacketYieldsToEligibleOne) {
  JitterEddScheduler q({10, 0.1});
  ASSERT_TRUE(offer(q, ahead_pkt(1, 0, 0.0, 0.5), 0.0).empty());  // held
  ASSERT_TRUE(offer(q, pkt(2, 0, 0.01), 0.01).empty());
  auto p = q.dequeue(0.02);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->flow, 2);
  EXPECT_EQ(q.holding(), 1u);
}

TEST(JitterEdd, TailDropAtCapacity) {
  JitterEddScheduler q({1, 0.1});
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  auto dropped = offer(q, pkt(1, 1, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
}

TEST(JitterEdd, CountsIncludeHeldPackets) {
  JitterEddScheduler q({10, 0.1});
  ASSERT_TRUE(offer(q, ahead_pkt(1, 0, 0.0, 1.0), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(1, 1, 0.0), 0.0).empty());
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_FALSE(q.empty());
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 2000.0);
}

// ---------------------------------------------------------- end-to-end --

TEST(JitterEdd, PortHonorsHoldTimes) {
  // A held packet must not transmit before its eligibility even though
  // the link is idle: the port's retry timer drives non-work-conserving
  // behavior.
  net::Network net;
  JitterEddScheduler* sched = nullptr;
  const auto topo = net::build_dumbbell(net, 1e6, [&] {
    auto q = std::make_unique<JitterEddScheduler>(
        JitterEddScheduler::Config{200, 0.1});
    sched = q.get();
    return q;
  });
  net.attach_stats_sink(1, topo.right_host);
  auto p = net::make_packet(1, 0, topo.left_host, topo.right_host, 0.0);
  p->jitter_offset = 0.05;  // 50 ms ahead of schedule
  net.host(topo.left_host).inject(std::move(p));
  net.sim().run();
  // Held 50 ms + 1 ms transmission.
  EXPECT_NEAR(net.stats(1).e2e_delay.mean(), 0.051, 1e-9);
}

TEST(JitterEdd, ReducesDeliveryJitterVersusFifoChain) {
  // Probe flows cross two hops whose congestion is *independent* (fresh
  // local cross traffic joins at each link).  A Jitter-EDD receiver holds
  // each packet by the stamped ahead-of-deadline offset, reconstructing a
  // jitter-free schedule: the playout spread collapses to ~0 while the
  // mean (playout) delay grows — the §11 trade the paper describes.
  // Under FIFO the offset is unused and the per-hop jitters remain.
  struct PlayoutRecorder final : net::FlowSink {
    stats::SampleSeries playout_delay;  // after the receiver's hold
    void on_packet(net::PacketPtr p, sim::Time now) override {
      playout_delay.add(now + p->jitter_offset - p->created_at);
    }
  };
  auto run = [](bool jitter_edd) {
    net::Network net;
    const auto topo = net::build_chain(
        net, 3, 1e6, [&]() -> std::unique_ptr<Scheduler> {
          if (jitter_edd) {
            return std::make_unique<JitterEddScheduler>(
                JitterEddScheduler::Config{200, 0.12});
          }
          return std::make_unique<FifoScheduler>(200);
        });
    std::vector<std::unique_ptr<traffic::OnOffSource>> sources;
    std::vector<std::unique_ptr<PlayoutRecorder>> recorders;
    net::FlowId next = 0;
    auto add = [&](int src_sw, int dst_sw, bool probe) {
      const net::FlowId flow = next++;
      traffic::OnOffSource::Config config;
      const auto src = topo.hosts[static_cast<std::size_t>(src_sw)];
      const auto dst = topo.hosts[static_cast<std::size_t>(dst_sw)];
      net::Host& host = net.host(src);
      auto source = std::make_unique<traffic::OnOffSource>(
          net.sim(), config, sim::Rng(9, static_cast<std::uint64_t>(flow)),
          flow, src, dst,
          [&host](net::PacketPtr p) { host.inject(std::move(p)); },
          &net.stats(flow), config.paper_filter());
      net::FlowSink* app = nullptr;
      if (probe) {
        recorders.push_back(std::make_unique<PlayoutRecorder>());
        app = recorders.back().get();
      }
      net.attach_stats_sink(flow, dst, app);
      source->start(0);
      sources.push_back(std::move(source));
    };
    // Two 2-hop probes + 8 independent local flows on each link.
    add(0, 2, true);
    add(0, 2, true);
    for (int k = 0; k < 8; ++k) add(0, 1, false);
    for (int k = 0; k < 8; ++k) add(1, 2, false);
    net.sim().run_until(120.0);
    double spread = 0, mean = 0;
    for (const auto& rec : recorders) {
      const auto& d = rec->playout_delay;
      spread += (d.percentile(0.999) - d.min()) / 2.0;
      mean += d.mean() / 2.0;
    }
    return std::pair{spread, mean};
  };
  const auto [fifo_spread, fifo_mean] = run(false);
  const auto [jedd_spread, jedd_mean] = run(true);
  // The reconstructed schedule is exactly periodic: playout spread within
  // one packet time, versus tens of packet times of raw FIFO jitter.
  EXPECT_LT(jedd_spread, 0.1 * fifo_spread);
  EXPECT_GT(jedd_mean, fifo_mean);
}

}  // namespace
}  // namespace ispn::sched
