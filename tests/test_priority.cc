#include "sched/priority.h"

#include <gtest/gtest.h>

#include "sched/fifo.h"
#include "sched/fifo_plus.h"
#include "sched_test_util.h"

namespace ispn::sched {
namespace {

using sched_test::offer;
using sched_test::predicted_pkt;

std::unique_ptr<PriorityScheduler> make_two_level(std::size_t cap = 10) {
  std::vector<std::unique_ptr<Scheduler>> children;
  children.push_back(std::make_unique<FifoScheduler>(cap));
  children.push_back(std::make_unique<FifoScheduler>(cap));
  return std::make_unique<PriorityScheduler>(std::move(children));
}

TEST(Priority, HighLevelAlwaysFirst) {
  auto q = make_two_level();
  ASSERT_TRUE(offer(*q, predicted_pkt(1, 0, 0.0, 1), 0.0).empty());  // low
  ASSERT_TRUE(offer(*q, predicted_pkt(2, 0, 0.1, 0), 0.1).empty());  // high
  EXPECT_EQ(q->dequeue(0.2)->flow, 2);
  EXPECT_EQ(q->dequeue(0.2)->flow, 1);
}

TEST(Priority, FifoWithinLevel) {
  auto q = make_two_level();
  for (std::uint64_t i = 0; i < 3; ++i) {
    ASSERT_TRUE(offer(*q, predicted_pkt(1, i, 0.0, 0), 0.0).empty());
  }
  for (std::uint64_t i = 0; i < 3; ++i) EXPECT_EQ(q->dequeue(0.0)->seq, i);
}

TEST(Priority, ClampsOutOfRangePriority) {
  auto q = make_two_level();
  ASSERT_TRUE(offer(*q, predicted_pkt(1, 0, 0.0, 9), 0.0).empty());
  EXPECT_EQ(q->level(1).packets(), 1u);  // clamped to lowest level
}

TEST(Priority, CustomClassifier) {
  std::vector<std::unique_ptr<Scheduler>> children;
  children.push_back(std::make_unique<FifoScheduler>(10));
  children.push_back(std::make_unique<FifoScheduler>(10));
  PriorityScheduler q(std::move(children), [](const net::Packet& p) {
    return p.flow == 7 ? std::size_t{0} : std::size_t{1};
  });
  ASSERT_TRUE(offer(q, predicted_pkt(3, 0, 0.0, 0), 0.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(7, 0, 0.1, 1), 0.1).empty());
  EXPECT_EQ(q.dequeue(0.2)->flow, 7);  // classifier promotes flow 7
}

TEST(Priority, EmptyAndCounts) {
  auto q = make_two_level();
  EXPECT_TRUE(q->empty());
  ASSERT_TRUE(offer(*q, predicted_pkt(1, 0, 0.0, 0), 0.0).empty());
  ASSERT_TRUE(offer(*q, predicted_pkt(1, 1, 0.0, 1), 0.0).empty());
  EXPECT_EQ(q->packets(), 2u);
  EXPECT_DOUBLE_EQ(q->backlog_bits(), 2000.0);
  EXPECT_FALSE(q->empty());
}

TEST(Priority, PerLevelDropPolicy) {
  auto q = make_two_level(1);
  ASSERT_TRUE(offer(*q, predicted_pkt(1, 0, 0.0, 1), 0.0).empty());
  auto dropped = offer(*q, predicted_pkt(1, 1, 0.0, 1), 0.0);
  EXPECT_EQ(dropped.size(), 1u);
  // The high level is unaffected.
  EXPECT_TRUE(offer(*q, predicted_pkt(2, 0, 0.0, 0), 0.0).empty());
}

TEST(Priority, ComposesWithFifoPlusChildren) {
  std::vector<std::unique_ptr<Scheduler>> children;
  children.push_back(std::make_unique<FifoPlusScheduler>());
  children.push_back(std::make_unique<FifoPlusScheduler>());
  PriorityScheduler q(std::move(children));
  // Unlucky low-priority packet still waits for the high class.
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 0.0, 1, 0.5), 0.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(2, 0, 0.2, 0), 0.2).empty());
  EXPECT_EQ(q.dequeue(0.3)->flow, 2);
  EXPECT_EQ(q.dequeue(0.3)->flow, 1);
}

TEST(Priority, JitterShiftsToLowerClass) {
  // Paper §5: priority shifts jitter of the higher class onto the lower.
  // High-class burst delays the low class, never vice versa.
  auto q = make_two_level(100);
  // Low packet arrives first, then a 5-packet high burst.
  ASSERT_TRUE(offer(*q, predicted_pkt(1, 0, 0.0, 1), 0.0).empty());
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(offer(*q, predicted_pkt(2, i, 0.01, 0), 0.01).empty());
  }
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(q->dequeue(0.02)->flow, 2);
  EXPECT_EQ(q->dequeue(0.02)->flow, 1);
}

}  // namespace
}  // namespace ispn::sched
