// Global allocation counters for the steady-state allocation tests.
//
// alloc_hook.cc overrides the global operator new/delete to bump these
// counters.  Linked ONLY into test_alloc_steady_state (see CMakeLists) so
// no other binary pays for or depends on the override.

#pragma once

#include <cstdint>

namespace ispn::testhook {

/// Number of global operator new calls so far.
std::uint64_t allocation_count();

/// Number of global operator delete calls so far.
std::uint64_t deallocation_count();

}  // namespace ispn::testhook
