// Counting overrides of the global allocation functions.
//
// Relaxed atomics: sharded runs allocate from worker threads, and the
// counters only ever read at barriers (every domain quiescent), so
// relaxed increments give exact counts without ordering cost.  Every
// new/new[] forwards to malloc and counts; delete/delete[] forward to free.

#include "alloc_hook.h"

#include <atomic>
#include <cstdlib>
#include <new>

namespace ispn::testhook {
namespace {
std::atomic<std::uint64_t> g_allocs{0};
std::atomic<std::uint64_t> g_frees{0};

void count_alloc() noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

std::uint64_t allocation_count() {
  return g_allocs.load(std::memory_order_relaxed);
}
std::uint64_t deallocation_count() {
  return g_frees.load(std::memory_order_relaxed);
}

}  // namespace ispn::testhook

namespace {

void* counted_alloc(std::size_t size) {
  ispn::testhook::count_alloc();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}

void counted_free(void* p) noexcept {
  if (p == nullptr) return;
  ispn::testhook::g_frees.fetch_add(1, std::memory_order_relaxed);
  std::free(p);
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ispn::testhook::count_alloc();
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ispn::testhook::count_alloc();
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { counted_free(p); }
void operator delete[](void* p) noexcept { counted_free(p); }
void operator delete(void* p, std::size_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::size_t) noexcept { counted_free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  counted_free(p);
}

// C++17 aligned-allocation overloads: without these, over-aligned types
// would bypass the counters and the zero-allocation assertion would pass
// falsely.
void* operator new(std::size_t size, std::align_val_t align) {
  ispn::testhook::count_alloc();
  // aligned_alloc requires size to be a multiple of the alignment.
  const std::size_t a = static_cast<std::size_t>(align);
  const std::size_t rounded = ((size == 0 ? 1 : size) + a - 1) / a * a;
  if (void* p = std::aligned_alloc(a, rounded)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p, std::align_val_t) noexcept { counted_free(p); }
void operator delete[](void* p, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  counted_free(p);
}
