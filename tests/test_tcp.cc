// TCP Reno over the simulated network: delivery, congestion response,
// recovery from drops, determinism.

#include "traffic/tcp.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "net/topology.h"
#include "sched/fifo.h"

namespace ispn::traffic {
namespace {

struct TcpHarness {
  net::Network net;
  net::DumbbellTopology topo;
  std::unique_ptr<TcpSource> source;
  std::unique_ptr<TcpSink> sink;

  explicit TcpHarness(std::size_t buffer_pkts = 200,
                      TcpSource::Config config = TcpSource::Config()) {
    topo = net::build_dumbbell(net, 1e6, [buffer_pkts] {
      return std::make_unique<sched::FifoScheduler>(buffer_pkts);
    });
    net::Host& src_host = net.host(topo.left_host);
    net::Host& dst_host = net.host(topo.right_host);
    source = std::make_unique<TcpSource>(
        net.sim(), config, 1, topo.left_host, topo.right_host,
        [&src_host](net::PacketPtr p) { src_host.inject(std::move(p)); },
        &net.stats(1));
    sink = std::make_unique<TcpSink>(
        net.sim(), config, 1, topo.right_host, topo.left_host,
        [&dst_host](net::PacketPtr p) { dst_host.inject(std::move(p)); });
    src_host.register_sink(1, source.get());
    net.attach_stats_sink(1, topo.right_host, sink.get());
  }
};

TEST(Tcp, BulkTransferSaturatesLink) {
  TcpHarness h;
  h.source->start(0);
  h.net.sim().run_until(30.0);
  // 1 Mb/s of 1000-bit segments = 1000 seg/s; expect near-full utilisation
  // after slow start.
  EXPECT_GT(h.source->delivered(), 25000u);
  EXPECT_GT(h.net
                .port(h.topo.left_switch, h.topo.right_switch)
                ->utilization(30.0),
            0.90);
}

TEST(Tcp, InOrderDeliveryAtSink) {
  TcpHarness h;
  h.source->start(0);
  h.net.sim().run_until(5.0);
  // Cumulative receiver: rcv_next equals the delivered prefix up to ACKs
  // still in flight when the run is cut (at most one window).
  EXPECT_GE(h.sink->rcv_next(), h.source->delivered());
  EXPECT_LE(h.sink->rcv_next() - h.source->delivered(), 64u);
}

TEST(Tcp, CongestionWindowGrowsInSlowStart) {
  TcpHarness h(/*buffer_pkts=*/10000);
  h.source->start(0);
  h.net.sim().run_until(0.05);  // a few RTTs, no loss yet
  EXPECT_GT(h.source->cwnd(), 2.0);
  EXPECT_EQ(h.source->retransmits(), 0u);
}

TEST(Tcp, RecoversFromBufferOverflowDrops) {
  TcpHarness h(/*buffer_pkts=*/10);  // tiny buffer forces drops
  h.source->start(0);
  h.net.sim().run_until(30.0);
  EXPECT_GT(h.net.stats(1).net_drops, 0u);
  EXPECT_GT(h.source->retransmits(), 0u);
  // Despite drops, goodput continues (no deadlock): most of the link used.
  EXPECT_GT(h.source->delivered(), 15000u);
  EXPECT_GE(h.sink->rcv_next(), h.source->delivered());
  EXPECT_LE(h.sink->rcv_next() - h.source->delivered(), 64u);
}

TEST(Tcp, SsthreshDropsAfterLoss) {
  TcpHarness h(/*buffer_pkts=*/10);
  h.source->start(0);
  h.net.sim().run_until(30.0);
  EXPECT_LT(h.source->ssthresh(), 64.0);  // initial value was cut
}

TEST(Tcp, RttEstimateTracksPathRtt) {
  TcpHarness h(10000);
  h.source->start(0);
  h.net.sim().run_until(2.0);
  // Path RTT: 1 ms data + ~0.32 ms ack + queueing; srtt must be sane.
  EXPECT_GT(h.source->srtt(), 0.0005);
  EXPECT_LT(h.source->srtt(), 0.3);
}

TEST(Tcp, StopCeasesTransmission) {
  TcpHarness h;
  h.source->start(0);
  h.net.sim().run_until(1.0);
  h.source->stop();
  const auto sent = h.source->sent_segments();
  h.net.sim().run_until(2.0);
  EXPECT_EQ(h.source->sent_segments(), sent);
}

TEST(Tcp, DeterministicAcrossRuns) {
  auto run = [] {
    TcpHarness h(50);
    h.source->start(0);
    h.net.sim().run_until(10.0);
    return std::tuple{h.source->delivered(), h.source->retransmits(),
                      h.source->timeouts()};
  };
  EXPECT_EQ(run(), run());
}

TEST(Tcp, MaxCwndCapsInflight) {
  TcpSource::Config config;
  config.max_cwnd = 4.0;
  TcpHarness h(10000, config);
  h.source->start(0);
  h.net.sim().run_until(10.0);
  // Window 4 packets, RTT >= 4ms (4 segment times + ack) -> rate well
  // below link capacity; and cwnd reported never exceeds the cap's use.
  EXPECT_LT(h.source->delivered(), 11000u);
  EXPECT_EQ(h.source->retransmits(), 0u);
}

TEST(Tcp, AcksCarryCumulativeSequence) {
  TcpHarness h;
  h.source->start(0);
  h.net.sim().run_until(0.2);
  EXPECT_GT(h.sink->acks_sent(), 0u);
  EXPECT_GE(h.sink->rcv_next(), h.source->delivered());
  EXPECT_LE(h.sink->rcv_next() - h.source->delivered(), 64u);
}

// --- RTO re-arm rule ------------------------------------------------------

TEST(TcpRtoRearm, AnchoredAtEarliestOutstandingSend) {
  // The old rule re-armed `now + rto` on every ACK, quietly granting the
  // oldest un-acked segment a fresh full RTO each time newer data was
  // acknowledged — under a steady ACK clock the timer could recede
  // forever.  The fix anchors the expiry at the EARLIEST outstanding
  // transmission.  Driven directly (no network) so the send times are
  // exact: seq 0 and 1 go out at t=0; ACKing seq 0 at t=0.5 leaves seq 1
  // (sent at 0) outstanding, so the timer must expire at 0 + rto, not
  // 0.5 + rto.
  sim::Simulator sim;
  std::vector<net::PacketPtr> wire;
  TcpSource::Config config;
  config.initial_cwnd = 2.0;
  TcpSource src(
      sim, config, 1, 0, 1,
      [&wire](net::PacketPtr p) { wire.push_back(std::move(p)); }, nullptr);
  src.start(0.0);
  sim.run_until(0.0);
  ASSERT_EQ(wire.size(), 2u);  // initial window: seq 0 and 1 at t=0
  ASSERT_TRUE(src.rto_pending());

  sim.run_until(0.5);  // nothing fires; the clock just advances
  auto ack = net::make_packet(1, 0, 1, 0, 0.5, config.ack_bits);
  ack->is_ack = true;
  ack->ack_seq = 1;
  src.on_packet(std::move(ack), 0.5);

  ASSERT_GT(src.delivered(), 0u);
  ASSERT_TRUE(src.rto_pending());
  // Anchored at seq 1's transmission time (t=0), not at the ACK instant.
  EXPECT_DOUBLE_EQ(src.sent_at(1), 0.0);
  EXPECT_DOUBLE_EQ(src.rto_expiry(), src.sent_at(1) + src.rto());
  EXPECT_LT(src.rto_expiry(), 0.5 + src.rto());
}

TEST(TcpRtoRearm, FreshWindowAfterFullAckUsesNewSendTimes) {
  // Once everything outstanding is acked, the next window's timer anchors
  // at the new earliest send, which IS the current instant.
  sim::Simulator sim;
  std::vector<net::PacketPtr> wire;
  TcpSource::Config config;  // initial_cwnd = 1
  TcpSource src(
      sim, config, 1, 0, 1,
      [&wire](net::PacketPtr p) { wire.push_back(std::move(p)); }, nullptr);
  src.start(0.0);
  sim.run_until(0.0);
  ASSERT_EQ(wire.size(), 1u);

  sim.run_until(0.3);
  auto ack = net::make_packet(1, 0, 1, 0, 0.3, config.ack_bits);
  ack->is_ack = true;
  ack->ack_seq = 1;
  src.on_packet(std::move(ack), 0.3);

  ASSERT_GT(wire.size(), 1u);  // cwnd grew: next window out at t=0.3
  ASSERT_TRUE(src.rto_pending());
  EXPECT_DOUBLE_EQ(src.rto_expiry(), 0.3 + src.rto());
}

// --- per-stack behaviour over the real network ----------------------------

TEST(TcpStacks, BbrDeliversAndPacesWithoutLoss) {
  TcpSource::Config config;
  config.cc = CcAlgo::kBbr;
  TcpHarness h(/*buffer_pkts=*/10000, config);
  h.source->start(0);
  h.net.sim().run_until(30.0);
  EXPECT_EQ(h.source->algo(), CcAlgo::kBbr);
  // Rate-based pacing converges near the link rate without needing loss.
  EXPECT_GT(h.source->delivered(), 20000u);
  EXPECT_GE(h.sink->rcv_next(), h.source->delivered());
}

TEST(TcpStacks, BbrSurvivesTinyBuffer) {
  TcpSource::Config config;
  config.cc = CcAlgo::kBbr;
  TcpHarness h(/*buffer_pkts=*/10, config);
  h.source->start(0);
  h.net.sim().run_until(30.0);
  // A paced sender barely stresses a tiny buffer: goodput keeps flowing.
  EXPECT_GT(h.source->delivered(), 10000u);
}

TEST(TcpStacks, RackRecoversViaReorderTimer) {
  TcpSource::Config config;
  config.cc = CcAlgo::kRack;
  TcpHarness h(/*buffer_pkts=*/10, config);
  h.source->start(0);
  h.net.sim().run_until(30.0);
  EXPECT_EQ(h.source->algo(), CcAlgo::kRack);
  EXPECT_GT(h.net.stats(1).net_drops, 0u);
  // Losses are declared by the reorder timer, never by an instant
  // three-dup-ack retransmit.
  EXPECT_GT(h.source->reorder_timeouts(), 0u);
  EXPECT_GT(h.source->retransmits(), 0u);
  EXPECT_GT(h.source->delivered(), 10000u);
  EXPECT_GE(h.sink->rcv_next(), h.source->delivered());
}

TEST(TcpStacks, EachStackIsDeterministic) {
  for (const CcAlgo algo : {CcAlgo::kReno, CcAlgo::kBbr, CcAlgo::kRack}) {
    auto run = [algo] {
      TcpSource::Config config;
      config.cc = algo;
      TcpHarness h(50, config);
      h.source->start(0);
      h.net.sim().run_until(10.0);
      return std::tuple{h.source->delivered(), h.source->retransmits(),
                        h.source->timeouts(), h.source->reorder_timeouts()};
    };
    EXPECT_EQ(run(), run()) << to_string(algo);
  }
}

}  // namespace
}  // namespace ispn::traffic
