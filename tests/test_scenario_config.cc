// Config-hardening suite for the scenario layer (PR 9, satellite a).
//
// The parsing surface (apply_override / apply_json / validate) is the
// trust boundary between the CLI/CI and the engine: every malformed key,
// out-of-range value or contradictory combination must surface as a
// diagnostic std::invalid_argument naming the offending key — never as a
// crash, a UB integer cast, or a half-built network.  A deterministic
// fuzz loop hammers the whole key space with adversarial values, and a
// second loop proves that every spec that survives validate() actually
// constructs and runs a conserving scenario.

#include <gtest/gtest.h>

#include <random>
#include <stdexcept>
#include <string>
#include <vector>

#include "scenario/runner.h"

namespace ispn {
namespace {

/// Applies one override to a fresh default spec and returns the
/// diagnostic it threw; fails the test if it did not throw.
std::string must_throw(const std::string& key, const std::string& value) {
  scenario::ScenarioSpec spec;
  try {
    scenario::apply_override(spec, key, value);
  } catch (const std::invalid_argument& e) {
    return e.what();
  }
  ADD_FAILURE() << "override " << key << "=" << value << " did not throw";
  return {};
}

TEST(ScenarioConfig, UnknownKeysAreDiagnosed) {
  EXPECT_NE(must_throw("no_such_knob", "1").find("no_such_knob"),
            std::string::npos)
      << "diagnostic must name the offending key";
  EXPECT_NE(must_throw("", "1").find("unknown key"), std::string::npos);
}

TEST(ScenarioConfig, MalformedNumbersAreDiagnosed) {
  for (const char* bad : {"", "abc", "1.2.3", "12abc", "0x", "--1", "1e"}) {
    EXPECT_NE(must_throw("arrival_rate", bad).find("arrival_rate"),
              std::string::npos)
        << "value '" << bad << "'";
  }
}

TEST(ScenarioConfig, NonFiniteNumbersAreRejected) {
  // NaN satisfies neither `< lo` nor `> hi`, so a naive range check lets
  // it straight through into an undefined integer cast; the parser must
  // refuse all non-finite values at the gate.
  for (const char* bad : {"nan", "NaN", "inf", "-inf", "1e400", "-1e400"}) {
    must_throw("run_seconds", bad);
    must_throw("target_flows", bad);
    must_throw("buffer_pkts", bad);
    must_throw("seed", bad);
  }
}

TEST(ScenarioConfig, IntegerFieldsRejectFractionsAndOverflow) {
  must_throw("target_flows", "3.5");
  must_throw("shards", "1e300");
  must_throw("mesh_rows", "2147483648");   // INT_MAX + 1
  must_throw("tree_depth", "-2147483649");  // INT_MIN - 1
}

TEST(ScenarioConfig, SizeFieldsRejectNegativesBeforeTheCast) {
  // A negative double cast to size_t wraps to ~2^64 and sails past any
  // `>= 1` validation; the parser must refuse the sign first.
  must_throw("buffer_pkts", "-1");
  must_throw("buffer_pkts", "-0.5");
}

TEST(ScenarioConfig, SeedRejectsOutOfRangeBeforeTheCast) {
  must_throw("seed", "-1");
  must_throw("seed", "1e20");  // > 2^64
  must_throw("seed", "0.5");
  // 2^64 - 1 is NOT representable as a double — it rounds to 2^64, which
  // is out of range, so the parser must refuse it rather than cast UB.
  must_throw("seed", "18446744073709551615");
  scenario::ScenarioSpec spec;
  scenario::apply_override(spec, "seed", "9007199254740992");  // 2^53: exact
  EXPECT_EQ(spec.seed, 9007199254740992ull);
}

TEST(ScenarioConfig, EnumKeysRejectUnknownValues) {
  must_throw("fabric", "torus");
  must_throw("source", "pareto");
  must_throw("reroute_policy", "panic");
  must_throw("admission_mode", "oracle");
  must_throw("measurement_estimator", "kalman");
  must_throw("event_backend", "splay");
  must_throw("order_backend", "fifo");
  must_throw("preset", "doom");
  must_throw("scale", "galactic");
  must_throw("preempt_on_reject", "maybe");
}

TEST(ScenarioConfig, FailLinkGrammarIsEnforced) {
  must_throw("fail_link", "");
  must_throw("fail_link", "1:2");        // missing @T
  must_throw("fail_link", "1-2@3");      // wrong separator
  must_throw("fail_link", "1:2@3,down@4");  // tail must be up@
  must_throw("fail_link", "a:b@c");
}

TEST(ScenarioConfig, OutOfRangeValuesFailValidate) {
  const auto reject = [](const char* key, const char* value) {
    scenario::ScenarioSpec spec = scenario::preset("chaos");
    scenario::apply_override(spec, key, value);
    EXPECT_THROW(spec.validate(), std::invalid_argument)
        << key << "=" << value;
  };
  reject("flap_prob", "1.5");
  reject("loss_prob", "-0.1");
  reject("brownout_fraction", "0");
  reject("brownout_fraction", "1");
  reject("datagram_quota", "1");
  reject("readmit_backoff_factor", "0.5");
  reject("readmit_max_attempts", "0");
  reject("invariant_cadence", "-1");
  reject("run_seconds", "0");
  reject("mesh_rows", "0");
  reject("p_guaranteed", "0.7");  // chaos has p_predicted=0.4: mix > 1
}

TEST(ScenarioConfig, ContradictoryCombinationsAreRejected) {
  {
    // Flapping rides on repair events: failures without repairs while
    // asking for flaps is a contradiction, not a silent no-op.
    scenario::ScenarioSpec spec = scenario::preset("chaos");
    spec.flap_prob = 0.5;
    spec.link_failure_rate = 0.1;
    spec.link_repair_mean = 0;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    spec.link_failure_rate = 0;  // no failures at all: flap knob is inert
    EXPECT_NO_THROW(spec.validate());
  }
  {
    // A brown-out below the datagram quota could not clear committed WFQ
    // clock rates even after shedding everything sheddable.
    scenario::ScenarioSpec spec = scenario::preset("chaos");
    spec.brownout_rate = 0.1;
    spec.datagram_quota = 0.6;
    spec.brownout_fraction = 0.5;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
    spec.brownout_rate = 0;  // no brown-outs: the fraction is inert
    EXPECT_NO_THROW(spec.validate());
  }
  {
    // Backoff cap below the base backoff can never be reached.
    scenario::ScenarioSpec spec = scenario::preset("chaos");
    spec.readmit_backoff = 2.0;
    spec.readmit_backoff_max = 1.0;
    EXPECT_THROW(spec.validate(), std::invalid_argument);
  }
}

TEST(ScenarioConfig, FailedOverrideLeavesTheSpecUntouched) {
  scenario::ScenarioSpec spec = scenario::preset("chaos");
  const scenario::ScenarioSpec before = spec;
  for (const auto& [key, value] :
       std::vector<std::pair<std::string, std::string>>{
           {"arrival_rate", "nan"},
           {"buffer_pkts", "-4"},
           {"fabric", "torus"},
           {"fail_link", "1:2"},
           {"seed", "-7"},
           {"bogus", "1"}}) {
    EXPECT_THROW(scenario::apply_override(spec, key, value),
                 std::invalid_argument);
  }
  // A throwing override must not have written anything first.
  EXPECT_EQ(spec.arrival_rate, before.arrival_rate);
  EXPECT_EQ(spec.buffer_pkts, before.buffer_pkts);
  EXPECT_EQ(spec.fabric, before.fabric);
  EXPECT_EQ(spec.link_failures.size(), before.link_failures.size());
  EXPECT_EQ(spec.seed, before.seed);
  EXPECT_NO_THROW(spec.validate());
}

TEST(ScenarioConfig, MalformedJsonIsDiagnosedNotFatal) {
  for (const char* bad : {
           "{ \"arrival_rate\": }",
           "{ \"arrival_rate\" }",
           "{ \"unterminated",
           "arrival_rate = nan",
           "{ \"no_such_knob\": 3 }",
       }) {
    scenario::ScenarioSpec spec;
    EXPECT_THROW(scenario::apply_json(spec, bad), std::invalid_argument)
        << "input: " << bad;
  }
}

// --- deterministic fuzz ---------------------------------------------------

const char* const kAllKeys[] = {
    "preset",         "scale",          "fabric",
    "chain_switches", "tree_depth",     "tree_width",
    "parking_hops",   "mesh_rows",      "mesh_cols",
    "ring_switches",  "clos_spines",    "clos_leaves",
    "fail_link",      "link_failure_rate", "link_repair_mean",
    "flap_prob",      "flap_burst_max", "flap_gap_mean",
    "node_crash_rate", "node_repair_mean", "brownout_rate",
    "brownout_fraction", "brownout_mean", "loss_rate",
    "loss_prob",      "loss_mean",      "readmit_backoff",
    "readmit_backoff_factor", "readmit_backoff_max", "readmit_max_attempts",
    "invariant_cadence", "reroute_policy", "link_rate",
    "parking_rate_step", "buffer_pkts",  "class_targets",
    "arrival_rate",   "arrival_window", "target_flows",
    "mean_hold",      "p_guaranteed",   "p_predicted",
    "long_flow_fraction", "source",     "avg_rate_pps",
    "peak_factor",    "packet_bits",    "target_delay",
    "target_loss",    "preempt_on_reject", "run_seconds",
    "drain_grace",    "seed",           "admission_mode",
    "datagram_quota", "measurement_window", "measurement_safety",
    "measurement_estimator", "measurement_ewma_gain", "shards",
    "link_latency",   "event_backend",  "hierarchical",
    "no_such_knob",   "",               "FABRIC",
};

const char* const kAdversarialValues[] = {
    "",      "0",       "1",      "-1",    "0.5",      "1.5",   "-0.5",
    "nan",   "-nan",    "inf",    "-inf",  "1e400",    "-1e400", "1e-400",
    "3.5",   "2147483648", "-2147483649", "1e20",     "18446744073709551615",
    "abc",   "1.2.3",   "12abc",  "true",  "false",    "maybe", "0x10",
    "1:2",   "1:2@3",   "a,b",    "0.1,0.2", ",",      " ",     "--1",
    "mesh",  "heap",    "degrade", "chaos", "smoke",   "#",     "\"",
};

TEST(ScenarioConfig, FuzzEveryKeyAgainstAdversarialValuesNeverCrashes) {
  std::mt19937 rng(0xC0FFEE);
  std::uniform_int_distribution<std::size_t> pick_key(
      0, std::size(kAllKeys) - 1);
  std::uniform_int_distribution<std::size_t> pick_value(
      0, std::size(kAdversarialValues) - 1);

  // Exhaustive single-override sweep: every key x every value, applied to
  // a fresh default spec.  Only std::invalid_argument may escape.
  for (const char* key : kAllKeys) {
    for (const char* value : kAdversarialValues) {
      scenario::ScenarioSpec spec;
      try {
        scenario::apply_override(spec, key, value);
        spec.validate();  // either throws invalid_argument or passes
      } catch (const std::invalid_argument&) {
        // expected for the malformed majority
      }
    }
  }

  // Random override SEQUENCES on top of presets: later overrides land on
  // specs already mutated by earlier ones, so cross-field contradictions
  // get exercised too.
  const char* const presets[] = {"fan_in", "failure", "chaos", "churn"};
  for (int round = 0; round < 400; ++round) {
    scenario::ScenarioSpec spec =
        scenario::preset(presets[round % std::size(presets)]);
    for (int k = 0; k < 6; ++k) {
      try {
        scenario::apply_override(spec, kAllKeys[pick_key(rng)],
                                 kAdversarialValues[pick_value(rng)]);
      } catch (const std::invalid_argument&) {
      }
    }
    try {
      spec.validate();
      spec.validate();  // validation is pure: a second pass must agree
    } catch (const std::invalid_argument&) {
    }
  }
}

TEST(ScenarioConfig, FuzzedValidSpecsConstructAndConserve) {
  // Specs that survive validate() must construct a whole network and run
  // a conserving scenario — validation leaving a lethal combination
  // through would surface here as a crash or a broken ledger.  Mutation
  // pool is bounded (probabilities, rates, small ints) so the fuzz stays
  // test-sized; structural blow-ups are validate()'s job, covered above.
  std::mt19937 rng(0xFEED);
  const std::pair<const char*, std::vector<const char*>> knobs[] = {
      {"flap_prob", {"0", "0.5", "1"}},
      {"brownout_fraction", {"0.45", "0.9"}},
      {"loss_prob", {"0", "0.3", "1"}},
      {"node_crash_rate", {"0", "0.05"}},
      {"readmit_backoff", {"0", "0.25"}},
      {"invariant_cadence", {"0", "0.25"}},
      {"shards", {"0", "2"}},
      {"reroute_policy", {"degrade", "preempt"}},
  };
  for (int round = 0; round < 6; ++round) {
    scenario::ScenarioSpec spec = scenario::preset("chaos");
    spec.run_seconds = 2.0;
    spec.seed = 100 + static_cast<std::uint64_t>(round);
    for (const auto& [key, values] : knobs) {
      std::uniform_int_distribution<std::size_t> pick(0, values.size() - 1);
      scenario::apply_override(spec, key, values[pick(rng)]);
    }
    try {
      spec.validate();
    } catch (const std::invalid_argument&) {
      continue;  // contradiction drawn (e.g. fraction under quota): fine
    }
    scenario::ScenarioRunner runner(spec);
    const scenario::ScenarioReport report = runner.run();
    EXPECT_TRUE(report.conserved()) << "round " << round;
    EXPECT_EQ(report.invariant_violations, 0u) << "round " << round;
  }
}

TEST(ScenarioConfig, BadExplicitLinkFailsPrepareWithoutPartialNetwork) {
  scenario::ScenarioSpec spec = scenario::preset("failure");
  spec.run_seconds = 2.0;
  spec.link_failure_rate = 0;
  spec.link_failures.push_back({0, 4, 1.0, -1.0});  // no such link in the mesh
  spec.validate();  // ids are plausible; only the topology knows better
  {
    scenario::ScenarioRunner runner(spec);
    EXPECT_THROW(runner.prepare(), std::exception);
  }  // destruction of the half-prepared runner must be clean
  // ...and the failure must not poison anything global: an identical
  // runner minus the bad link builds and conserves.
  spec.link_failures.clear();
  scenario::ScenarioRunner good(spec);
  EXPECT_TRUE(good.run().conserved());
}

}  // namespace
}  // namespace ispn
