#include "sched/edd.h"

#include <gtest/gtest.h>

#include "sched_test_util.h"

namespace ispn::sched {
namespace {

using sched_test::offer;
using sched_test::pkt;

TEST(Edd, EmptyDequeueReturnsNull) {
  EddScheduler q({10, 0.1});
  EXPECT_EQ(q.dequeue(0.0), nullptr);
}

TEST(Edd, EarliestDeadlineFirst) {
  EddScheduler q({10, 0.1});
  q.set_bound(1, 0.100);
  q.set_bound(2, 0.010);
  // Flow 1 arrives first but has the looser bound; flow 2's deadline is
  // earlier despite arriving later.
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.00), 0.00).empty());
  ASSERT_TRUE(offer(q, pkt(2, 0, 0.05), 0.05).empty());
  EXPECT_EQ(q.dequeue(0.06)->flow, 2);
  EXPECT_EQ(q.dequeue(0.06)->flow, 1);
}

TEST(Edd, HomogeneousBoundsDegenerateToFifo) {
  // Paper §5: with one class (equal local bounds) deadline scheduling is
  // FIFO.
  EddScheduler q({100, 0.05});
  for (std::uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        offer(q, pkt(i % 3, i, 0.001 * static_cast<double>(i)), 0.0).empty());
  }
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(q.dequeue(1.0)->seq, i);
}

TEST(Edd, BoundLookup) {
  EddScheduler q({10, 0.25});
  q.set_bound(3, 0.02);
  EXPECT_DOUBLE_EQ(q.bound(3), 0.02);
  EXPECT_DOUBLE_EQ(q.bound(4), 0.25);
}

TEST(Edd, OverflowDropsLeastUrgent) {
  EddScheduler q({1, 0.1});
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  auto dropped = offer(q, pkt(1, 1, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->seq, 1u);  // homogeneous bounds: tail drop
}

TEST(Edd, OverflowSparesUrgentArrival) {
  EddScheduler q({1, 0.1});
  q.set_bound(1, 0.5);
  q.set_bound(2, 0.01);
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  // Urgent arrival evicts the queued lazy packet, not itself.
  auto dropped = offer(q, pkt(2, 0, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->flow, 1);
  EXPECT_EQ(q.dequeue(0.0)->flow, 2);
}

TEST(Edd, StableTieBreakByArrival) {
  EddScheduler q({10, 0.1});
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(2, 0, 0.0), 0.0).empty());
  EXPECT_EQ(q.dequeue(0.0)->flow, 1);
  EXPECT_EQ(q.dequeue(0.0)->flow, 2);
}

TEST(Edd, BacklogAccounting) {
  EddScheduler q({10, 0.1});
  ASSERT_TRUE(offer(q, pkt(1, 0, 0.0, 600.0), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(1, 1, 0.0, 400.0), 0.0).empty());
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 1000.0);
  (void)q.dequeue(0.0);
  (void)q.dequeue(0.0);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace ispn::sched
