// util::SlotMap and util::DirectMapCache unit tests.
//
// SlotMap is the compact FlowId -> dense-slot remap behind every
// per-flow vector in the schedulers and hosts: memory must scale with
// ACTIVE flow count, slots must recycle LIFO, and the table must behave
// identically for dense and wildly sparse key sets.  DirectMapCache is
// the DEC-TR-592-style flow-locality memo on the per-packet lookup paths;
// its counters must be an exact function of the probe sequence.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <vector>

#include "util/direct_map_cache.h"
#include "util/slot_map.h"

namespace ispn {
namespace {

TEST(SlotMap, AcquireAssignsDenseSlotsInOrder) {
  util::SlotMap m;
  EXPECT_EQ(m.acquire(100), 0u);
  EXPECT_EQ(m.acquire(-5), 1u);
  EXPECT_EQ(m.acquire(70000), 2u);
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.slot_limit(), 3u);
  // Re-acquire returns the existing slot.
  EXPECT_EQ(m.acquire(100), 0u);
  EXPECT_EQ(m.size(), 3u);
}

TEST(SlotMap, FindMissesReturnNoSlot) {
  util::SlotMap m;
  EXPECT_EQ(m.find(3), util::SlotMap::kNoSlot);
  m.acquire(3);
  EXPECT_EQ(m.find(3), 0u);
  EXPECT_EQ(m.find(4), util::SlotMap::kNoSlot);
}

TEST(SlotMap, ReleaseRecyclesSlotsLifo) {
  util::SlotMap m;
  for (int k = 0; k < 8; ++k) m.acquire(k * 1000);
  m.release(2000);
  m.release(5000);
  EXPECT_EQ(m.size(), 6u);
  // LIFO: the most recently released slot is handed out first.
  EXPECT_EQ(m.acquire(42), 5u);
  EXPECT_EQ(m.acquire(43), 2u);
  // No recycled slots left: the next key extends the dense range.
  EXPECT_EQ(m.acquire(44), 8u);
  EXPECT_EQ(m.slot_limit(), 9u);
}

// The sparse-FlowId regression shape: ids {3, 70000} must cost two slots,
// not 70001 (the dense-vector bug this structure replaces).
TEST(SlotMap, SparseKeysStayCompact) {
  util::SlotMap m;
  EXPECT_EQ(m.acquire(3), 0u);
  EXPECT_EQ(m.acquire(70000), 1u);
  EXPECT_EQ(m.slot_limit(), 2u);
  EXPECT_EQ(m.find(3), 0u);
  EXPECT_EQ(m.find(70000), 1u);
}

TEST(SlotMap, MatchesMapReferenceUnderChurn) {
  util::SlotMap m;
  std::map<std::int32_t, std::uint32_t> ref;
  std::vector<std::uint32_t> free_ref;  // mirror of the LIFO freelist
  std::uint32_t limit = 0;
  std::mt19937_64 rng(12345);
  for (int step = 0; step < 20000; ++step) {
    const auto key = static_cast<std::int32_t>(rng() % 4096) * 97;
    if (rng() % 3 != 0) {
      const std::uint32_t got = m.acquire(key);
      auto it = ref.find(key);
      if (it != ref.end()) {
        EXPECT_EQ(got, it->second);
      } else {
        std::uint32_t want;
        if (!free_ref.empty()) {
          want = free_ref.back();
          free_ref.pop_back();
        } else {
          want = limit++;
        }
        EXPECT_EQ(got, want);
        ref[key] = want;
      }
    } else {
      auto it = ref.find(key);
      if (it != ref.end()) {
        m.release(key);
        free_ref.push_back(it->second);
        ref.erase(it);
      }
      EXPECT_EQ(m.find(key), util::SlotMap::kNoSlot);
    }
    ASSERT_EQ(m.size(), ref.size());
  }
  for (const auto& [key, slot] : ref) EXPECT_EQ(m.find(key), slot);
}

TEST(SlotMap, GrowsThroughRehash) {
  util::SlotMap m;
  for (int k = 0; k < 5000; ++k) {
    ASSERT_EQ(m.acquire(k * 7919), static_cast<std::uint32_t>(k));
  }
  for (int k = 0; k < 5000; ++k) {
    ASSERT_EQ(m.find(k * 7919), static_cast<std::uint32_t>(k));
  }
  EXPECT_EQ(m.size(), 5000u);
}

TEST(DirectMapCache, HitsAndMissesCount) {
  util::DirectMapCache<std::int32_t, int> c;
  EXPECT_EQ(c.lookup(7), nullptr);
  EXPECT_EQ(c.misses(), 1u);
  c.insert(7, 70);
  int* v = c.lookup(7);
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(*v, 70);
  EXPECT_EQ(c.hits(), 1u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(DirectMapCache, ConflictingKeysEvict) {
  // A 2^2-entry cache: keys hashing to the same line evict each other.
  util::DirectMapCache<std::int32_t, int> c(2);
  ASSERT_EQ(c.entries(), 4u);
  // Probe a working set larger than the cache: every key still returns
  // the value most recently inserted for it (never a stale line).
  for (int round = 0; round < 3; ++round) {
    for (std::int32_t k = 0; k < 16; ++k) {
      if (int* v = c.lookup(k)) {
        EXPECT_EQ(*v, k * 10);
      } else {
        c.insert(k, k * 10);
      }
    }
  }
  EXPECT_GT(c.misses(), 0u);
}

TEST(DirectMapCache, InvalidateEmptiesEveryLine) {
  util::DirectMapCache<std::int32_t, int> c(4);
  for (std::int32_t k = 0; k < 8; ++k) c.insert(k, k);
  c.invalidate();
  EXPECT_EQ(c.invalidations(), 1u);
  for (std::int32_t k = 0; k < 8; ++k) EXPECT_EQ(c.lookup(k), nullptr);
}

TEST(DirectMapCache, CountersAreDeterministic) {
  // Same probe sequence -> identical counters (the property that lets the
  // scenario golden suite pin cache counters across engine backends).
  auto run = [] {
    util::DirectMapCache<std::int32_t, int> c;
    std::mt19937_64 rng(99);
    for (int i = 0; i < 50000; ++i) {
      const auto k = static_cast<std::int32_t>(rng() % 1024);
      if (c.lookup(k) == nullptr) c.insert(k, k);
    }
    return std::pair{c.hits(), c.misses()};
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  EXPECT_EQ(a.first + a.second, 50000u);
}

}  // namespace
}  // namespace ispn
