// Zero-allocation steady-state assertions for the engine hot paths.
//
// The tentpole claim of the slab/pool/indexed refactor is that once the
// slab capacities have warmed up, pushing packets and events through the
// core performs no heap allocation at all.  This binary links alloc_hook.cc
// (counting overrides of global operator new/delete) and asserts the
// counter does not move across hundreds of thousands of steady-state
// cycles of the FIFO and WFQ micro-bench workloads, the unified scheduler,
// and the event core.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "alloc_hook.h"
#include "net/host.h"
#include "net/packet_pool.h"
#include "sched/fifo.h"
#include "sched/unified.h"
#include "sched/wfq.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "traffic/tcp.h"

namespace ispn {
namespace {

net::PacketPtr make(net::PacketPool& pool, net::FlowId flow,
                    std::uint64_t seq, double now, net::ServiceClass service,
                    std::uint8_t priority = 0) {
  auto p = net::make_packet(pool, flow, seq, 0, 1, now);
  p->enqueued_at = now;
  p->service = service;
  p->priority = priority;
  return p;
}

/// Runs `cycles` enqueue+dequeue cycles against `sched` and returns the
/// number of heap allocations performed by the block.
template <typename Sched>
std::uint64_t measure_cycles(Sched& sched, net::PacketPool& pool, int flows,
                             net::ServiceClass service, int cycles,
                             std::uint64_t* seq, double* now) {
  const std::uint64_t before = testhook::allocation_count();
  for (int i = 0; i < cycles; ++i) {
    *now += 1e-3;
    sched.enqueue(make(pool, static_cast<net::FlowId>(*seq % flows), *seq,
                       *now, service, static_cast<std::uint8_t>(*seq % 2)),
                  *now);
    ++*seq;
    auto p = sched.dequeue(*now);
  }
  return testhook::allocation_count() - before;
}

TEST(AllocSteadyState, HookCountsAllocations) {
  const std::uint64_t before = testhook::allocation_count();
  auto p = std::make_unique<int>(7);
  EXPECT_GE(testhook::allocation_count(), before + 1);
}

TEST(AllocSteadyState, FifoCycleIsAllocationFree) {
  net::PacketPool pool;
  sched::FifoScheduler fifo(100000);
  std::uint64_t seq = 0;
  double now = 0;
  // Warmup: pool chunks, ring growth.
  measure_cycles(fifo, pool, 10, net::ServiceClass::kPredicted, 20000, &seq,
                 &now);
  const std::uint64_t allocs = measure_cycles(
      fifo, pool, 10, net::ServiceClass::kPredicted, 200000, &seq, &now);
  EXPECT_EQ(allocs, 0u);
}

TEST(AllocSteadyState, WfqCycleIsAllocationFree) {
  net::PacketPool pool;
  sched::WfqScheduler wfq(sched::WfqScheduler::Config{1e6, 100000, 1e4});
  std::uint64_t seq = 0;
  double now = 0;
  measure_cycles(wfq, pool, 100, net::ServiceClass::kPredicted, 20000, &seq,
                 &now);
  const std::uint64_t allocs = measure_cycles(
      wfq, pool, 100, net::ServiceClass::kPredicted, 200000, &seq, &now);
  EXPECT_EQ(allocs, 0u);
}

TEST(AllocSteadyState, UnifiedMixedCycleIsAllocationFree) {
  net::PacketPool pool;
  sched::UnifiedScheduler sched(
      sched::UnifiedScheduler::Config{1e6, 100000, 2, 1.0 / 4096.0, true});
  for (int f = 0; f < 3; ++f) sched.add_guaranteed(f, 1.7e5);
  for (int f = 3; f < 10; ++f) sched.set_predicted_priority(f, f % 2);
  std::uint64_t seq = 0;
  double now = 0;
  auto cycle = [&](int cycles) {
    const std::uint64_t before = testhook::allocation_count();
    for (int i = 0; i < cycles; ++i) {
      now += 1e-3;
      const int f = static_cast<int>(seq % 11);
      net::PacketPtr p;
      if (f < 3) {
        p = make(pool, f, seq, now, net::ServiceClass::kGuaranteed);
      } else if (f < 10) {
        p = make(pool, f, seq, now, net::ServiceClass::kPredicted,
                 static_cast<std::uint8_t>(f % 2));
      } else {
        p = make(pool, f, seq, now, net::ServiceClass::kDatagram);
      }
      ++seq;
      sched.enqueue(std::move(p), now);
      auto out = sched.dequeue(now);
    }
    return testhook::allocation_count() - before;
  };
  cycle(20000);  // warmup
  EXPECT_EQ(cycle(200000), 0u);
}

// The drop path must be as allocation-free as the accept path: victims
// travel scheduler -> DropSink -> PacketPool without any vector or box in
// between.  Tiny capacities force a drop on (almost) every enqueue.
TEST(AllocSteadyState, DropPathIsAllocationFree) {
  net::PacketPool pool;
  sched::FifoScheduler fifo(8);
  sched::WfqScheduler wfq(sched::WfqScheduler::Config{1e6, 8, 1e4});
  std::uint64_t fifo_drops = 0;
  std::uint64_t wfq_drops = 0;
  // Installed once, as a port would; counts victims and lets them return
  // to the pool when the sink returns.
  fifo.set_drop_sink(
      [&fifo_drops](net::PacketPtr, sim::Time) { ++fifo_drops; });
  wfq.set_drop_sink([&wfq_drops](net::PacketPtr, sim::Time) { ++wfq_drops; });
  std::uint64_t seq = 0;
  double now = 0;
  auto flood = [&](int cycles) {
    const std::uint64_t before = testhook::allocation_count();
    for (int i = 0; i < cycles; ++i) {
      now += 1e-3;
      // Two arrivals per dequeue: half the offered load must drop.
      fifo.enqueue(make(pool, 0, seq, now, net::ServiceClass::kDatagram),
                   now);
      wfq.enqueue(make(pool, static_cast<net::FlowId>(seq % 4), seq, now,
                       net::ServiceClass::kPredicted),
                  now);
      fifo.enqueue(make(pool, 0, seq, now, net::ServiceClass::kDatagram),
                   now);
      wfq.enqueue(make(pool, static_cast<net::FlowId>((seq + 1) % 4), seq,
                       now, net::ServiceClass::kPredicted),
                  now);
      ++seq;
      auto a = fifo.dequeue(now);
      auto b = wfq.dequeue(now);
    }
    return testhook::allocation_count() - before;
  };
  flood(20000);  // warmup
  const std::uint64_t drops_before = fifo_drops + wfq_drops;
  EXPECT_EQ(flood(200000), 0u);
  EXPECT_GT(fifo_drops + wfq_drops, drops_before);  // drop path exercised
}

// The delivery hot path (host flow -> sink lookup) used to walk a
// std::map per packet; it is now a direct-mapped cache in front of a flat
// open-addressing SlotMap table, and must stay allocation-free under
// sparse, scattered flow ids.
TEST(AllocSteadyState, HostDeliveryPathIsAllocationFree) {
  class CountingSink final : public net::FlowSink {
   public:
    void on_packet(net::PacketPtr, sim::Time) override { ++count; }
    std::uint64_t count = 0;
  };
  sim::Simulator sim;
  net::Host host(sim, 0, "h0");
  std::vector<net::FlowId> ids;
  std::vector<std::unique_ptr<CountingSink>> sinks;
  for (int i = 0; i < 512; ++i) {
    ids.push_back(static_cast<net::FlowId>(i * 131 + 7));  // sparse ids
    sinks.push_back(std::make_unique<CountingSink>());
    host.register_sink(ids.back(), sinks.back().get());
  }
  net::PacketPool pool;
  std::uint64_t seq = 0;
  double now = 0;
  auto cycle = [&](int cycles) {
    const std::uint64_t before = testhook::allocation_count();
    for (int i = 0; i < cycles; ++i) {
      now += 1e-6;
      host.receive(make(pool, ids[seq % ids.size()], seq, now,
                        net::ServiceClass::kDatagram));
      ++seq;
    }
    return testhook::allocation_count() - before;
  };
  cycle(20000);  // warmup
  EXPECT_EQ(cycle(200000), 0u);
  std::uint64_t total = 0;
  for (const auto& s : sinks) total += s->count;
  EXPECT_EQ(total, 220000u);
  EXPECT_EQ(host.sink_cache_hits() + host.sink_cache_misses(), 220000u);
}

TEST(AllocSteadyState, EventWheelIsAllocationFree) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 256; ++i) {
    sim.after(1e-3 * (i + 1), [&fired] { ++fired; });
  }
  auto wheel = [&](int cycles) {
    const std::uint64_t before = testhook::allocation_count();
    for (int i = 0; i < cycles; ++i) {
      sim.step();
      sim.after(0.256, [&fired] { ++fired; });
    }
    return testhook::allocation_count() - before;
  };
  wheel(20000);  // warmup
  EXPECT_EQ(wheel(200000), 0u);
  EXPECT_GT(fired, 0u);
}

// Persistent-timer re-arm is the new hot path for ports and sources: one
// slab slot per timer for life, re-arming a pure key insert.  Both the
// self-re-arming pattern (sources, transmit-complete) and the
// supersede-while-pending pattern (port retry, TCP RTO restart) must be
// allocation-free — under the wheel, which a 256-timer wheel of this
// shape runs on (kAuto migrates above 64 pending).
TEST(AllocSteadyState, TimerRearmPathIsAllocationFree) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  std::vector<sim::Timer> timers;
  timers.reserve(256);
  for (int i = 0; i < 256; ++i) {
    timers.emplace_back(sim, [&timers, &fired, i] {
      ++fired;
      timers[static_cast<std::size_t>(i)].arm_after(0.256);
    });
    timers.back().arm_after(1e-3 * (i + 1));
  }
  ASSERT_EQ(sim.queue().active_backend(), sim::EventBackend::kWheel);
  auto cycle = [&](int cycles) {
    const std::uint64_t before = testhook::allocation_count();
    for (int i = 0; i < cycles; ++i) sim.step();
    return testhook::allocation_count() - before;
  };
  cycle(20000);  // warmup
  const std::size_t slots = sim.queue().slab_slots();
  EXPECT_EQ(cycle(200000), 0u);
  EXPECT_EQ(sim.queue().slab_slots(), slots);  // no churn either
  EXPECT_GT(fired, 0u);
}

TEST(AllocSteadyState, TimerSupersedePathIsAllocationFree) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  std::vector<sim::Timer> timers;
  timers.reserve(128);
  for (int i = 0; i < 128; ++i) {
    timers.emplace_back(sim, [&timers, &fired, i] {
      ++fired;
      timers[static_cast<std::size_t>(i)].arm_after(0.128);
    });
    timers.back().arm_after(1e-3 * (i + 1));
  }
  auto cycle = [&](int cycles) {
    const std::uint64_t before = testhook::allocation_count();
    for (int i = 0; i < cycles; ++i) {
      // The retry-timer dance: drag an armed timer earlier twice, then
      // let the engine fire whatever is due.
      const std::size_t t = static_cast<std::size_t>(i) % timers.size();
      timers[t].arm_after(0.128);
      timers[t].arm_after(0.064);
      sim.step();
    }
    return testhook::allocation_count() - before;
  };
  // Longer warmup: every supersede leaves a stale key behind until its
  // tick passes, and that population's high-water mark (which sizes the
  // wheel's node pool) takes a while to peak.
  cycle(60000);
  EXPECT_EQ(cycle(200000), 0u);
  EXPECT_GT(fired, 0u);
}

// The bbr stack's paced send path: every segment rides the persistent
// pace timer (re-arm, pool packet, emit) instead of a window blast, and
// the ACK clock feeds the rate filters.  After pool/slab warmup a long
// steady-state stretch — pacing, RTT/bandwidth sampling, feedback
// bookkeeping — must not allocate at all.
TEST(AllocSteadyState, BbrPacedSendPathIsAllocationFree) {
  sim::Simulator sim;
  net::PacketPool pool;
  traffic::TcpSource::Config config;
  config.cc = traffic::CcAlgo::kBbr;
  config.binary_feedback = true;

  // Fake network: cumulative ACKs at a finite drain rate (2 segments per
  // 0.5 ms tick), so the bandwidth estimate converges instead of
  // compounding against an infinitely fast mirror.
  std::uint64_t emitted_top = 0;  // highest seq emitted + 1
  std::uint64_t acked = 0;
  auto src = std::make_unique<traffic::TcpSource>(
      sim, config, 7, 0, 1,
      [&emitted_top](net::PacketPtr p) {
        emitted_top = std::max(emitted_top, p->seq + 1);
      },
      nullptr);
  src->set_pool(&pool);

  std::vector<sim::Timer> net_timer;
  net_timer.reserve(1);
  net_timer.emplace_back(sim, [&] {
    const std::uint64_t can = std::min(emitted_top, acked + 2);
    if (can > acked) {
      acked = can;
      auto ack = net::make_packet(pool, 7, 0, 1, 0, sim.now(),
                                  config.ack_bits);
      ack->is_ack = true;
      ack->ack_seq = acked;
      ack->cong_echo = (acked % 64 == 0);  // occasional feedback step
      src->on_packet(std::move(ack), sim.now());
    }
    net_timer[0].arm_after(5e-4);
  });
  net_timer[0].arm_after(5e-4);
  src->start(0.0);

  auto cycle = [&](double seconds) {
    const std::uint64_t before = testhook::allocation_count();
    sim.run_until(sim.now() + seconds);
    return testhook::allocation_count() - before;
  };
  cycle(5.0);  // warmup: pool chunks, event slab, bbr startup + drain
  const std::uint64_t sent_before = src->sent_segments();
  EXPECT_EQ(cycle(10.0), 0u);
  EXPECT_EQ(src->algo(), traffic::CcAlgo::kBbr);
  EXPECT_GT(src->sent_segments(), sent_before + 10000u)
      << "the paced path was never actually exercised";
  EXPECT_GT(src->delivered(), 10000u);
}

TEST(AllocSteadyState, EventCancelPathIsAllocationFree) {
  sim::Simulator sim;
  std::uint64_t fired = 0;
  for (int i = 0; i < 64; ++i) {
    sim.after(1e-3 * (i + 1), [&fired] { ++fired; });
  }
  auto wheel = [&](int cycles) {
    const std::uint64_t before = testhook::allocation_count();
    for (int i = 0; i < cycles; ++i) {
      const sim::EventId doomed = sim.after(0.032, [&fired] { ++fired; });
      sim.after(0.064, [&fired] { ++fired; });
      sim.cancel(doomed);
      sim.step();
    }
    return testhook::allocation_count() - before;
  };
  wheel(20000);  // warmup
  EXPECT_EQ(wheel(200000), 0u);
}

}  // namespace
}  // namespace ispn
