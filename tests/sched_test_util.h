// Shared helpers for scheduler unit tests.

#pragma once

#include <utility>
#include <vector>

#include "net/packet.h"
#include "sched/scheduler.h"

namespace ispn::sched_test {

/// Offers one packet the way a port would and returns the victims this
/// single arrival dropped (empty = accepted without eviction).  Installs a
/// transient DropSink for the duration of the call and leaves the
/// scheduler sinkless afterwards — so use it ONLY on standalone schedulers
/// the test constructed itself, never on one owned by a Port (it would
/// unseat the port's accounting sink).  Tests that assert on cumulative
/// drop accounting should install their own sink instead.
inline std::vector<net::PacketPtr> offer(sched::Scheduler& q,
                                         net::PacketPtr p, sim::Time now) {
  std::vector<net::PacketPtr> dropped;
  q.set_drop_sink([&dropped](net::PacketPtr victim, sim::Time) {
    dropped.push_back(std::move(victim));
  });
  q.enqueue(std::move(p), now);
  q.set_drop_sink({});
  return dropped;
}

/// Makes a packet as a port would present it to a scheduler: enqueued_at
/// stamped with the arrival time.
inline net::PacketPtr pkt(net::FlowId flow, std::uint64_t seq,
                          sim::Time arrival,
                          sim::Bits bits = sim::paper::kPacketBits) {
  auto p = net::make_packet(flow, seq, 0, 1, arrival, bits);
  p->enqueued_at = arrival;
  return p;
}

inline net::PacketPtr predicted_pkt(net::FlowId flow, std::uint64_t seq,
                                    sim::Time arrival, std::uint8_t priority,
                                    double jitter_offset = 0) {
  auto p = pkt(flow, seq, arrival);
  p->service = net::ServiceClass::kPredicted;
  p->priority = priority;
  p->jitter_offset = jitter_offset;
  return p;
}

inline net::PacketPtr guaranteed_pkt(net::FlowId flow, std::uint64_t seq,
                                     sim::Time arrival) {
  auto p = pkt(flow, seq, arrival);
  p->service = net::ServiceClass::kGuaranteed;
  return p;
}

inline net::PacketPtr datagram_pkt(net::FlowId flow, std::uint64_t seq,
                                   sim::Time arrival) {
  auto p = pkt(flow, seq, arrival);
  p->service = net::ServiceClass::kDatagram;
  return p;
}

// --- differential-trace helpers (test_order_backend_diff.cc) -------------
//
// A scheduler run is summarised as the exact sequence of packets it emits
// (departures, pushout victims, dequeue-time discards) plus the V(t)
// trajectory sampled after every operation.  Two ordering backends are
// considered equivalent only when these records compare EXACTLY — double
// fields with ==, i.e. bit-for-bit on every finish-tag-driven decision.

struct TraceEvent {
  enum class Kind : std::uint8_t { kDepart, kDrop };
  Kind kind{};
  net::FlowId flow = net::kNoFlow;
  std::uint64_t seq = 0;
  sim::Bits size_bits = 0;

  bool operator==(const TraceEvent&) const = default;
};

struct BackendTrace {
  std::vector<TraceEvent> events;
  std::vector<double> vtimes;  ///< V(t) after each workload op
};

inline TraceEvent depart_event(const net::Packet& p) {
  return TraceEvent{TraceEvent::Kind::kDepart, p.flow, p.seq, p.size_bits};
}

inline TraceEvent drop_event(const net::Packet& p) {
  return TraceEvent{TraceEvent::Kind::kDrop, p.flow, p.seq, p.size_bits};
}

}  // namespace ispn::sched_test
