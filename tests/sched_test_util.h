// Shared helpers for scheduler unit tests.

#pragma once

#include "net/packet.h"

namespace ispn::sched_test {

/// Makes a packet as a port would present it to a scheduler: enqueued_at
/// stamped with the arrival time.
inline net::PacketPtr pkt(net::FlowId flow, std::uint64_t seq,
                          sim::Time arrival,
                          sim::Bits bits = sim::paper::kPacketBits) {
  auto p = net::make_packet(flow, seq, 0, 1, arrival, bits);
  p->enqueued_at = arrival;
  return p;
}

inline net::PacketPtr predicted_pkt(net::FlowId flow, std::uint64_t seq,
                                    sim::Time arrival, std::uint8_t priority,
                                    double jitter_offset = 0) {
  auto p = pkt(flow, seq, arrival);
  p->service = net::ServiceClass::kPredicted;
  p->priority = priority;
  p->jitter_offset = jitter_offset;
  return p;
}

inline net::PacketPtr guaranteed_pkt(net::FlowId flow, std::uint64_t seq,
                                     sim::Time arrival) {
  auto p = pkt(flow, seq, arrival);
  p->service = net::ServiceClass::kGuaranteed;
  return p;
}

inline net::PacketPtr datagram_pkt(net::FlowId flow, std::uint64_t seq,
                                   sim::Time arrival) {
  auto p = pkt(flow, seq, arrival);
  p->service = net::ServiceClass::kDatagram;
  return p;
}

}  // namespace ispn::sched_test
