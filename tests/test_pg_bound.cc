// Parekh–Gallager bound arithmetic, validated against the four bounds the
// paper prints in Table 3 (in packet transmission times: 23.53, 11.76,
// 611.76, 588.24).

#include "core/pg_bound.h"

#include <gtest/gtest.h>

#include "sim/units.h"

namespace ispn::core {
namespace {

constexpr double kPkt = sim::paper::kPacketBits;        // 1000 bits
constexpr double kPktTime = sim::paper::kPacketTime;    // 1 ms

TEST(PgBound, FluidBoundIsDepthOverRate) {
  EXPECT_DOUBLE_EQ(pg_fluid_bound({85000.0, 50000.0}), 50.0 / 85.0);
}

TEST(PgBound, PaperTable3GuaranteedPeakLen4) {
  // Clock = peak = 170 kb/s, effective bucket = 1 packet, 4 hops.
  const double bound =
      pg_paper_bound({170000.0, kPkt}, 4, kPkt) / kPktTime;
  EXPECT_NEAR(bound, 23.53, 0.005);
}

TEST(PgBound, PaperTable3GuaranteedPeakLen2) {
  const double bound =
      pg_paper_bound({170000.0, kPkt}, 2, kPkt) / kPktTime;
  EXPECT_NEAR(bound, 11.76, 0.005);
}

TEST(PgBound, PaperTable3GuaranteedAverageLen3) {
  // Clock = average = 85 kb/s, bucket = 50 packets, 3 hops.
  const double bound =
      pg_paper_bound({85000.0, 50.0 * kPkt}, 3, kPkt) / kPktTime;
  EXPECT_NEAR(bound, 611.76, 0.005);
}

TEST(PgBound, PaperTable3GuaranteedAverageLen1) {
  const double bound =
      pg_paper_bound({85000.0, 50.0 * kPkt}, 1, kPkt) / kPktTime;
  EXPECT_NEAR(bound, 588.24, 0.005);
}

TEST(PgBound, SingleHopEqualsFluidBound) {
  const traffic::TokenBucketSpec tb{1e5, 7e4};
  EXPECT_DOUBLE_EQ(pg_paper_bound(tb, 1, kPkt), pg_fluid_bound(tb));
}

TEST(PgBound, MonotoneInHops) {
  const traffic::TokenBucketSpec tb{1e5, 5e4};
  double prev = 0;
  for (std::size_t hops = 1; hops <= 8; ++hops) {
    const double b = pg_paper_bound(tb, hops, kPkt);
    EXPECT_GT(b, prev);
    prev = b;
  }
}

TEST(PgBound, DecreasingInClockRate) {
  // "The means by which the source can improve the worst case bound is to
  // increase its r parameter."  With a fixed bucket depth, the bound falls
  // as r rises.
  double prev = 1e9;
  for (double r : {5e4, 1e5, 2e5, 4e5}) {
    const double b = pg_paper_bound({r, 5e4}, 3, kPkt);
    EXPECT_LT(b, prev);
    prev = b;
  }
}

TEST(PgBound, PacketizedAddsStoreAndForward) {
  const traffic::TokenBucketSpec tb{1e5, 5e4};
  const std::vector<sim::Rate> links(3, 1e6);
  EXPECT_NEAR(pg_packetized_bound(tb, kPkt, links),
              pg_paper_bound(tb, 3, kPkt) + 3.0 * kPkt / 1e6, 1e-12);
}

TEST(PgBound, DepthForBoundInvertsBound) {
  const double r = 2e5;
  const std::size_t hops = 4;
  const double target = 0.05;
  const double b = depth_for_bound(r, target, hops, kPkt);
  EXPECT_NEAR(pg_paper_bound({r, b}, hops, kPkt), target, 1e-12);
}

TEST(PgBound, DepthForBoundClampsAtZero) {
  // Infeasible target: even b = 0 misses it.
  EXPECT_DOUBLE_EQ(depth_for_bound(1e5, 1e-9, 8, kPkt), 0.0);
}

}  // namespace
}  // namespace ispn::core
