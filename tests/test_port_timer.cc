// Port timer regression tests (the retry-timer churn satellite): the
// eligibility poll of non-work-conserving disciplines is a persistent
// timer that re-arms in place when eligibility moves earlier — no
// cancel+schedule pair, no slab-slot churn — and the transmit-complete
// event reuses one slot for the life of the port.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/packet.h"
#include "net/port.h"
#include "sched/jitter_edd.h"
#include "sim/simulator.h"

namespace ispn::net {
namespace {

/// Terminal node recording delivery instants.
class SinkNode final : public Node {
 public:
  SinkNode(sim::Simulator& sim, NodeId id) : Node(id, "sink"), sim_(sim) {}
  void receive(PacketPtr p) override {
    arrivals_.push_back({p->flow, p->seq, sim_.now()});
  }
  struct Arrival {
    FlowId flow;
    std::uint64_t seq;
    sim::Time at;
  };
  [[nodiscard]] const std::vector<Arrival>& arrivals() const {
    return arrivals_;
  }

 private:
  sim::Simulator& sim_;
  std::vector<Arrival> arrivals_;
};

/// A packet whose upstream "ahead" stamp makes Jitter-EDD hold it until
/// now + ahead.
PacketPtr held_packet(FlowId flow, std::uint64_t seq, double ahead) {
  auto p = make_packet(flow, seq, 0, 1, 0.0);
  p->jitter_offset = ahead;
  return p;
}

TEST(PortTimer, EligibilityMovingEarlierRearmsWithoutSlotChurn) {
  sim::Simulator sim;
  SinkNode sink(sim, 99);
  auto sched = std::make_unique<sched::JitterEddScheduler>(
      sched::JitterEddScheduler::Config{200, 0.001});
  Port port(sim, 1e6, std::move(sched), &sink);

  // The port owns exactly its two persistent timer slots; nothing else
  // runs on this simulator.
  const std::size_t slots = sim.queue().slab_slots();
  EXPECT_EQ(slots, 2u);
  EXPECT_EQ(sim.queue().free_slots(), 0u);

  // A far-held packet arms the retry; a nearer one must re-arm earlier.
  port.send(held_packet(1, 0, 0.5));
  EXPECT_EQ(sim.queue().size(), 1u);  // the retry arm
  port.send(held_packet(2, 1, 0.2));
  // Re-arm in place: same pending count, same slab, nothing freed.
  EXPECT_EQ(sim.queue().size(), 1u);
  EXPECT_EQ(sim.queue().slab_slots(), slots);
  EXPECT_EQ(sim.queue().free_slots(), 0u);

  sim.run();
  // The near packet transmits first (eligible at 0.2), the far one at its
  // own eligibility (its deadline ordering is irrelevant here: it is not
  // yet eligible when the link frees at 0.201).
  ASSERT_EQ(sink.arrivals().size(), 2u);
  EXPECT_EQ(sink.arrivals()[0].flow, 2);
  EXPECT_NEAR(sink.arrivals()[0].at, 0.201, 1e-9);
  EXPECT_EQ(sink.arrivals()[1].flow, 1);
  EXPECT_NEAR(sink.arrivals()[1].at, 0.501, 1e-9);
  // Everything drained; the port's timer slots are still resident (not
  // recycled), which is exactly the no-churn property.
  EXPECT_EQ(sim.queue().slab_slots(), slots);
  EXPECT_EQ(sim.queue().free_slots(), 0u);
  EXPECT_TRUE(sim.idle());
}

TEST(PortTimer, SteadyRetryTrafficPinsSlab) {
  sim::Simulator sim;
  SinkNode sink(sim, 99);
  auto sched = std::make_unique<sched::JitterEddScheduler>(
      sched::JitterEddScheduler::Config{10000, 0.001});
  Port port(sim, 1e6, std::move(sched), &sink);
  const std::size_t slots = sim.queue().slab_slots();

  // Hundreds of rounds of the cancel-prone pattern: a held arrival arms
  // the retry far out, then a nearer arrival drags it earlier, twice per
  // round.  The slab must never grow and never free (both timers stay
  // resident for the port's life).
  std::uint64_t seq = 0;
  for (int round = 0; round < 300; ++round) {
    port.send(held_packet(1, seq++, 0.40));
    port.send(held_packet(2, seq++, 0.25));
    port.send(held_packet(3, seq++, 0.10));
    sim.run();  // drain: transmissions + retries all fire
    EXPECT_EQ(sim.queue().slab_slots(), slots) << "round " << round;
    EXPECT_EQ(sim.queue().free_slots(), 0u) << "round " << round;
  }
  EXPECT_EQ(sink.arrivals().size(), 900u);
}

TEST(PortTimer, LaterEligibilityDoesNotDisturbPendingRetry) {
  sim::Simulator sim;
  SinkNode sink(sim, 99);
  auto sched = std::make_unique<sched::JitterEddScheduler>(
      sched::JitterEddScheduler::Config{200, 0.001});
  Port port(sim, 1e6, std::move(sched), &sink);

  port.send(held_packet(1, 0, 0.2));
  const std::size_t pending = sim.queue().size();
  // A later-eligible arrival must not touch the armed retry at all.
  port.send(held_packet(2, 1, 0.7));
  EXPECT_EQ(sim.queue().size(), pending);
  sim.run();
  ASSERT_EQ(sink.arrivals().size(), 2u);
  EXPECT_EQ(sink.arrivals()[0].flow, 1);
  EXPECT_NEAR(sink.arrivals()[0].at, 0.201, 1e-9);
}

}  // namespace
}  // namespace ispn::net
