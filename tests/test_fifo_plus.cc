#include "sched/fifo_plus.h"

#include <gtest/gtest.h>

#include "sched_test_util.h"

namespace ispn::sched {
namespace {

using sched_test::offer;
using sched_test::pkt;
using sched_test::predicted_pkt;

TEST(FifoPlus, EmptyDequeueReturnsNull) {
  FifoPlusScheduler q;
  EXPECT_EQ(q.dequeue(0.0), nullptr);
}

TEST(FifoPlus, ZeroOffsetsBehaveLikeFifo) {
  FifoPlusScheduler q;
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(offer(q, pkt(0, i, 0.1 * static_cast<double>(i)), 0.0)
                    .empty());
  }
  for (std::uint64_t i = 0; i < 5; ++i) EXPECT_EQ(q.dequeue(1.0)->seq, i);
}

TEST(FifoPlus, PositiveOffsetJumpsAhead) {
  FifoPlusScheduler q;
  // Packet A arrives at t=1 with no offset; packet B arrives at t=1.05 but
  // was unlucky upstream (offset 0.1): expected arrival 0.95 < 1.0, so B
  // goes first.
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 1.0, 0), 1.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(2, 0, 1.05, 0, 0.1), 1.05).empty());
  EXPECT_EQ(q.dequeue(1.1)->flow, 2);
  EXPECT_EQ(q.dequeue(1.1)->flow, 1);
}

TEST(FifoPlus, NegativeOffsetWaits) {
  FifoPlusScheduler q;
  // Lucky packet (negative offset) yields to a later plain arrival.
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 1.0, 0, -0.2), 1.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(2, 0, 1.1, 0), 1.1).empty());
  EXPECT_EQ(q.dequeue(1.2)->flow, 2);
  EXPECT_EQ(q.dequeue(1.2)->flow, 1);
}

TEST(FifoPlus, OffsetAccumulatesOwnMinusAverage) {
  FifoPlusScheduler q(FifoPlusScheduler::Config{200, 0.5, true});
  // First packet: waits 0.4; EWMA warm-starts at 0.4, so its offset
  // increment is 0.4 - 0.4 = 0.
  ASSERT_TRUE(offer(q, pkt(0, 0, 1.0), 1.0).empty());
  auto p0 = q.dequeue(1.4);
  EXPECT_NEAR(p0->jitter_offset, 0.0, 1e-12);
  EXPECT_NEAR(q.class_average(), 0.4, 1e-12);
  // Second packet waits 0.0: avg <- 0.4 + 0.5*(0 - 0.4) = 0.2;
  // offset += 0.0 - 0.2 = -0.2 (it was lucky).
  ASSERT_TRUE(offer(q, pkt(0, 1, 2.0), 2.0).empty());
  auto p1 = q.dequeue(2.0);
  EXPECT_NEAR(p1->jitter_offset, -0.2, 1e-12);
}

TEST(FifoPlus, UpdateOffsetsDisabledLeavesHeaderUntouched) {
  FifoPlusScheduler q(FifoPlusScheduler::Config{200, 0.5, false});
  ASSERT_TRUE(offer(q, predicted_pkt(0, 0, 1.0, 0, 0.05), 1.0).empty());
  auto p = q.dequeue(1.5);
  EXPECT_DOUBLE_EQ(p->jitter_offset, 0.05);
}

TEST(FifoPlus, TailDropAtCapacity) {
  FifoPlusScheduler q(FifoPlusScheduler::Config{2, 1.0 / 128.0, true});
  ASSERT_TRUE(offer(q, pkt(0, 0, 0.0), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(0, 1, 0.0), 0.0).empty());
  auto dropped = offer(q, pkt(0, 2, 0.0), 0.0);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped[0]->seq, 2u);
}

TEST(FifoPlus, StableOrderForEqualKeys) {
  FifoPlusScheduler q;
  // Same expected arrival: arrival order decides.
  ASSERT_TRUE(offer(q, predicted_pkt(1, 0, 1.0, 0), 1.0).empty());
  ASSERT_TRUE(offer(q, predicted_pkt(2, 0, 1.0, 0), 1.0).empty());
  EXPECT_EQ(q.dequeue(1.0)->flow, 1);
  EXPECT_EQ(q.dequeue(1.0)->flow, 2);
}

TEST(FifoPlus, ClassAverageConvergesUnderConstantWait) {
  FifoPlusScheduler q(FifoPlusScheduler::Config{200, 1.0 / 8.0, true});
  double t = 0.0;
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(offer(q, pkt(0, static_cast<std::uint64_t>(i), t), t).empty());
    (void)q.dequeue(t + 0.25);  // every packet waits exactly 0.25
    t += 1.0;
  }
  EXPECT_NEAR(q.class_average(), 0.25, 1e-6);
  // A steady-state packet accumulates ~zero offset.
  ASSERT_TRUE(offer(q, pkt(0, 999, t), t).empty());
  auto p = q.dequeue(t + 0.25);
  EXPECT_NEAR(p->jitter_offset, 0.0, 1e-6);
}

TEST(FifoPlus, BacklogAccounting) {
  FifoPlusScheduler q;
  ASSERT_TRUE(offer(q, pkt(0, 0, 0.0, 800.0), 0.0).empty());
  ASSERT_TRUE(offer(q, pkt(0, 1, 0.0, 200.0), 0.0).empty());
  EXPECT_EQ(q.packets(), 2u);
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 1000.0);
  (void)q.dequeue(0.0);
  (void)q.dequeue(0.0);
  EXPECT_TRUE(q.empty());
  EXPECT_DOUBLE_EQ(q.backlog_bits(), 0.0);
}

}  // namespace
}  // namespace ispn::sched
