// Differential determinism harness for the ordering backends.
//
// The calendar queue may replace the indexed heap under WFQ and the
// unified scheduler ONLY if the substitution is unobservable: same
// packets, same order, same drops, same V(t) — bit-for-bit.  This harness
// is that proof.  Seeded fuzz workloads (mixed packet sizes, uneven
// weights, bursts, idle gaps, pushout overload, dequeue-time stale
// discards) are generated once per (seed, flow-count) and replayed
// through a fresh scheduler per backend; the resulting departure/drop
// traces and V(t) trajectories must compare exactly across
// OrderBackend::kHeap, kCalendar, and kAuto.
//
// Exact double equality is deliberate: the fluid clock's weight sums are
// accumulated in pop order, so even a reordering of two equal-tag
// departures would eventually surface as a differing V(t) bit pattern.

#include <gtest/gtest.h>

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "sched/unified.h"
#include "sched/wfq.h"
#include "sched_test_util.h"

namespace ispn::sched {
namespace {

using sched_test::BackendTrace;
using sched_test::depart_event;
using sched_test::drop_event;
using sched_test::TraceEvent;

constexpr OrderBackend kBackends[] = {
    OrderBackend::kHeap, OrderBackend::kCalendar, OrderBackend::kAuto};

const char* name_of(OrderBackend b) {
  switch (b) {
    case OrderBackend::kHeap: return "heap";
    case OrderBackend::kCalendar: return "calendar";
    case OrderBackend::kAuto: return "auto";
  }
  return "?";
}

// One pre-generated workload step.  The op list is materialised first and
// replayed verbatim per backend, so every instance sees byte-identical
// inputs regardless of what the scheduler under test does with them.
struct Op {
  enum class Kind : std::uint8_t { kEnqueue, kDequeue, kAdvance };
  Kind kind{};
  net::FlowId flow = 0;
  std::uint64_t seq = 0;
  sim::Bits size_bits = 0;
  double jitter_offset = 0;
  std::uint8_t cls = 0;  ///< unified: 0..K-1 predicted, K guaranteed, K+1 dgram
  double dt = 0;         ///< advance: time step
};

struct Workload {
  std::vector<Op> ops;
  std::vector<double> weights;  ///< per flow (wfq weight / guaranteed rate)
};

/// Mixed sizes, bursts, uneven weights, overload phases.  ~6k ops.
Workload make_workload(std::uint64_t seed, int flows) {
  std::mt19937_64 rng(seed * 7919 + flows);
  Workload w;
  w.weights.reserve(flows);
  for (int f = 0; f < flows; ++f) {
    // Uneven but bounded weights; for unified these become guaranteed
    // rates, so keep their sum well under the 1e6 link rate.
    w.weights.push_back(1e3 * (1.0 + static_cast<double>(rng() % 8)) /
                        flows * 4.0);
  }
  std::uint64_t seq = 0;
  for (int step = 0; step < 2000; ++step) {
    // Burst of arrivals (overload phases come from bursts > dequeues).
    const int burst = 1 + static_cast<int>(rng() % 4);
    for (int b = 0; b < burst; ++b) {
      Op op;
      op.kind = Op::Kind::kEnqueue;
      op.flow = static_cast<net::FlowId>(rng() % flows);
      op.seq = seq++;
      op.size_bits = 100.0 + static_cast<double>(rng() % 120) * 100.0;
      op.jitter_offset = (rng() % 4 == 0)
                             ? static_cast<double>(rng() % 100) * 1e-3
                             : 0.0;
      op.cls = static_cast<std::uint8_t>(rng() % 4);
      w.ops.push_back(op);
    }
    const int deqs = static_cast<int>(rng() % 3);
    for (int d = 0; d < deqs; ++d) {
      w.ops.push_back(Op{Op::Kind::kDequeue, 0, 0, 0, 0, 0, 0});
    }
    Op adv;
    adv.kind = Op::Kind::kAdvance;
    adv.dt = (rng() % 8 == 0) ? 0.0
                              : static_cast<double>(1 + rng() % 50) * 1e-4;
    w.ops.push_back(adv);
  }
  return w;
}

/// Replays `w` through `sched`, recording every emitted packet and the
/// V(t) after each op.  `vtime` reads the scheduler's virtual time.
template <typename Sched, typename VtimeFn>
BackendTrace replay(Sched& sched, const Workload& w, VtimeFn vtime,
                    bool unified) {
  BackendTrace trace;
  sched.set_drop_sink([&trace](net::PacketPtr victim, sim::Time) {
    trace.events.push_back(drop_event(*victim));
  });
  double now = 0;
  for (const Op& op : w.ops) {
    switch (op.kind) {
      case Op::Kind::kEnqueue: {
        auto p = sched_test::pkt(op.flow, op.seq, now, op.size_bits);
        if (unified) {
          if (op.cls == 3) {
            p->service = net::ServiceClass::kGuaranteed;
          } else if (op.cls == 2) {
            p->service = net::ServiceClass::kDatagram;
          } else {
            p->service = net::ServiceClass::kPredicted;
            p->priority = op.cls;
            p->jitter_offset = op.jitter_offset;
          }
        } else {
          p->service = net::ServiceClass::kPredicted;
        }
        sched.enqueue(std::move(p), now);
        break;
      }
      case Op::Kind::kDequeue: {
        auto p = sched.dequeue(now);
        if (p != nullptr) trace.events.push_back(depart_event(*p));
        break;
      }
      case Op::Kind::kAdvance:
        now += op.dt;
        break;
    }
    trace.vtimes.push_back(vtime(sched, now));
  }
  // Drain: every queued packet must depart in backend-identical order too.
  now += 10.0;
  while (!sched.empty()) {
    auto p = sched.dequeue(now);
    if (p != nullptr) trace.events.push_back(depart_event(*p));
    trace.vtimes.push_back(vtime(sched, now));
    now += 1e-3;
  }
  sched.set_drop_sink({});
  return trace;
}

void expect_identical(const BackendTrace& ref, const BackendTrace& got,
                      OrderBackend backend, const std::string& what) {
  ASSERT_EQ(ref.events.size(), got.events.size())
      << what << ": event count diverged under " << name_of(backend);
  for (std::size_t i = 0; i < ref.events.size(); ++i) {
    ASSERT_TRUE(ref.events[i] == got.events[i])
        << what << ": event " << i << " diverged under " << name_of(backend)
        << " (flow " << got.events[i].flow << " seq " << got.events[i].seq
        << " vs flow " << ref.events[i].flow << " seq " << ref.events[i].seq
        << ")";
  }
  ASSERT_EQ(ref.vtimes.size(), got.vtimes.size()) << what;
  for (std::size_t i = 0; i < ref.vtimes.size(); ++i) {
    // Bit-exact: the fluid advance must walk identical epochs.
    ASSERT_EQ(ref.vtimes[i], got.vtimes[i])
        << what << ": V(t) sample " << i << " diverged under "
        << name_of(backend);
  }
}

BackendTrace run_wfq(const Workload& w, int flows, OrderBackend backend) {
  // Small buffer so bursts push packets out (the newest of the longest
  // queue — a decision driven solely by per-flow queue lengths, which the
  // trace equality proves are backend-identical too).
  WfqScheduler sched(WfqScheduler::Config{1e6, 24, 1.0, backend});
  for (int f = 0; f < flows; ++f) {
    sched.add_flow(f, w.weights[static_cast<std::size_t>(f)]);
  }
  return replay(
      sched, w,
      [](WfqScheduler& s, sim::Time now) { return s.virtual_time(now); },
      /*unified=*/false);
}

BackendTrace run_unified(const Workload& w, int flows, OrderBackend backend) {
  UnifiedScheduler::Config cfg;
  cfg.link_rate = 1e6;
  cfg.capacity_pkts = 24;
  cfg.num_predicted_classes = 2;
  cfg.fifo_plus = true;
  cfg.stale_offset_threshold = 0.05;  // exercise dequeue-time discards
  cfg.order_backend = backend;
  UnifiedScheduler sched(cfg);
  // A third of the flows get guaranteed service (their packets with
  // cls==3 use the WFQ outer layer); the rest map to predicted classes.
  for (int f = 0; f < flows; f += 3) {
    sched.add_guaranteed(f, w.weights[static_cast<std::size_t>(f)] + 100.0);
  }
  for (int f = 1; f < flows; f += 3) sched.set_predicted_priority(f, f % 2);
  return replay(
      sched, w,
      [](UnifiedScheduler& s, sim::Time now) { return s.virtual_time(now); },
      /*unified=*/true);
}

constexpr int kSeeds = 10;
constexpr int kFlowCounts[] = {3, 16, 100};

TEST(OrderBackendDiff, WfqDeparturesAndVtimeBitIdentical) {
  for (int flows : kFlowCounts) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const Workload w = make_workload(seed, flows);
      const BackendTrace ref = run_wfq(w, flows, OrderBackend::kHeap);
      EXPECT_GT(ref.events.size(), 0u);
      for (OrderBackend backend : kBackends) {
        if (backend == OrderBackend::kHeap) continue;
        const BackendTrace got = run_wfq(w, flows, backend);
        expect_identical(ref, got, backend,
                         "wfq seed=" + std::to_string(seed) +
                             " flows=" + std::to_string(flows));
      }
    }
  }
}

TEST(OrderBackendDiff, UnifiedDeparturesAndVtimeBitIdentical) {
  for (int flows : kFlowCounts) {
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      const Workload w = make_workload(seed, flows);
      const BackendTrace ref = run_unified(w, flows, OrderBackend::kHeap);
      EXPECT_GT(ref.events.size(), 0u);
      for (OrderBackend backend : kBackends) {
        if (backend == OrderBackend::kHeap) continue;
        const BackendTrace got = run_unified(w, flows, backend);
        expect_identical(ref, got, backend,
                         "unified seed=" + std::to_string(seed) +
                             " flows=" + std::to_string(flows));
      }
    }
  }
}

// The workloads above must actually exercise the interesting machinery —
// otherwise "identical traces" would be vacuous.  Pushout drops, stale
// discards and a non-trivial V(t) all have to appear.
TEST(OrderBackendDiff, WorkloadsExerciseDropsAndDiscards) {
  const Workload w = make_workload(/*seed=*/1, /*flows=*/16);
  const BackendTrace wfq = run_wfq(w, 16, OrderBackend::kCalendar);
  std::size_t drops = 0;
  for (const TraceEvent& e : wfq.events) {
    if (e.kind == TraceEvent::Kind::kDrop) ++drops;
  }
  EXPECT_GT(drops, 0u) << "pushout path never ran";
  EXPECT_GT(wfq.vtimes.back(), 0.0);

  UnifiedScheduler::Config cfg;
  cfg.capacity_pkts = 24;
  cfg.stale_offset_threshold = 0.05;
  UnifiedScheduler sched(cfg);
  sched.set_predicted_priority(1, 0);
  (void)replay(
      sched, w,
      [](UnifiedScheduler& s, sim::Time now) { return s.virtual_time(now); },
      /*unified=*/true);
  EXPECT_GT(sched.stale_discards(), 0u) << "stale-discard path never ran";
}

}  // namespace
}  // namespace ispn::sched
