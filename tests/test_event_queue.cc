#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace ispn::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.pop().time, 4.5);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventSkippedByPop) {
  EventQueue q;
  std::vector<int> fired;
  const EventId id = q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(static_cast<double>(100 - i), [] {}));
  }
  for (size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 50u);
  double last = -1;
  int count = 0;
  while (!q.empty()) {
    auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
    ++count;
  }
  EXPECT_EQ(count, 50);
}

TEST(EventQueue, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule(1.0, [] {});
  EXPECT_EQ(q.total_scheduled(), 7u);
}

}  // namespace
}  // namespace ispn::sim
