#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace ispn::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.pop().time, 4.5);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventSkippedByPop) {
  EventQueue q;
  std::vector<int> fired;
  const EventId id = q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(static_cast<double>(100 - i), [] {}));
  }
  for (size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 50u);
  double last = -1;
  int count = 0;
  while (!q.empty()) {
    auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
    ++count;
  }
  EXPECT_EQ(count, 50);
}

TEST(EventQueue, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule(1.0, [] {});
  EXPECT_EQ(q.total_scheduled(), 7u);
}

// --- slab/generation regression tests ------------------------------------
// The seed's lazy-cancel design leaked an entry in its cancelled-id set
// whenever an event was cancelled after its heap entry had been popped; the
// generation-stamped slab removes the set entirely.  These tests pin the
// semantics that replaced it.

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.pop().action();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireDoesNotKillRecycledSlot) {
  EventQueue q;
  const EventId stale = q.schedule(1.0, [] {});
  q.pop();
  // The next schedule recycles the same slot; the stale id must not be
  // able to cancel it (generation mismatch).
  bool fired = false;
  const EventId fresh = q.schedule(2.0, [&] { fired = true; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(q.cancel(stale));
  EXPECT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, DoubleCancelAfterReuseReturnsFalse) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(a));
  const EventId b = q.schedule(1.0, [] {});  // reuses slot a
  EXPECT_FALSE(q.cancel(a));                 // stale id, same slot
  EXPECT_TRUE(q.cancel(b));
  EXPECT_FALSE(q.cancel(b));
}

TEST(EventQueue, SlotsAreRecycled) {
  EventQueue q;
  for (int round = 0; round < 100; ++round) {
    const EventId a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    q.cancel(a);
    q.pop();
  }
  // A wheel of at most 2 concurrent events must not grow the slab beyond
  // a couple of slots — this is the no-leak property.
  EXPECT_LE(q.slab_slots(), 4u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.free_slots(), q.slab_slots());
}

TEST(EventQueue, CancelReleasesCapturedState) {
  EventQueue q;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventId id = q.schedule(1.0, [token = std::move(token)] {});
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(q.cancel(id));
  // Cancellation must drop the closure (and its captures) eagerly, not
  // hold them until the heap entry surfaces.
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, LargeCapturesFireCorrectly) {
  // Closures above the inline budget take the heap-boxed cold path; they
  // must behave identically.
  EventQueue q;
  struct Big {
    std::array<double, 16> payload{};
  };
  Big big;
  big.payload[7] = 3.5;
  double got = 0;
  q.schedule(1.0, [big, &got] { got = big.payload[7]; });
  q.pop().action();
  EXPECT_DOUBLE_EQ(got, 3.5);
}

TEST(EventQueue, ManyCancelledEntriesDoNotAccumulate) {
  EventQueue q;
  // Schedule and cancel in waves; the slab and free list must stay
  // bounded by the peak concurrency, and ids must stay unique.
  std::vector<EventId> ids;
  for (int wave = 0; wave < 50; ++wave) {
    ids.clear();
    for (int i = 0; i < 20; ++i) {
      ids.push_back(q.schedule(static_cast<double>(i), [] {}));
    }
    for (EventId id : ids) EXPECT_TRUE(q.cancel(id));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_LE(q.slab_slots(), 32u);
}

}  // namespace
}  // namespace ispn::sim
