#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <vector>

namespace ispn::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(3); });
  q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SameTimeFiresInSchedulingOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(1.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().action();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, NextTimeReportsEarliest) {
  EventQueue q;
  q.schedule(5.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
}

TEST(EventQueue, PopReturnsTime) {
  EventQueue q;
  q.schedule(4.5, [] {});
  EXPECT_DOUBLE_EQ(q.pop().time, 4.5);
}

TEST(EventQueue, CancelPreventsFiring) {
  EventQueue q;
  bool fired = false;
  const EventId id = q.schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.cancel(id));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(id));
  EXPECT_FALSE(q.cancel(id));
}

TEST(EventQueue, CancelInvalidIdReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(kInvalidEventId));
  EXPECT_FALSE(q.cancel(12345));
}

TEST(EventQueue, CancelledEventSkippedByPop) {
  EventQueue q;
  std::vector<int> fired;
  const EventId id = q.schedule(1.0, [&] { fired.push_back(1); });
  q.schedule(2.0, [&] { fired.push_back(2); });
  q.cancel(id);
  EXPECT_DOUBLE_EQ(q.next_time(), 2.0);
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(EventQueue, SizeTracksLiveEvents) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  q.schedule(2.0, [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueue, ManyInterleavedOperations) {
  EventQueue q;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(q.schedule(static_cast<double>(100 - i), [] {}));
  }
  for (size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  EXPECT_EQ(q.size(), 50u);
  double last = -1;
  int count = 0;
  while (!q.empty()) {
    auto fired = q.pop();
    EXPECT_GE(fired.time, last);
    last = fired.time;
    ++count;
  }
  EXPECT_EQ(count, 50);
}

TEST(EventQueue, TotalScheduledCounts) {
  EventQueue q;
  for (int i = 0; i < 7; ++i) q.schedule(1.0, [] {});
  EXPECT_EQ(q.total_scheduled(), 7u);
}

// --- slab/generation regression tests ------------------------------------
// The seed's lazy-cancel design leaked an entry in its cancelled-id set
// whenever an event was cancelled after its heap entry had been popped; the
// generation-stamped slab removes the set entirely.  These tests pin the
// semantics that replaced it.

TEST(EventQueue, CancelAfterFireReturnsFalse) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [] {});
  q.pop().action();
  EXPECT_FALSE(q.cancel(id));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelAfterFireDoesNotKillRecycledSlot) {
  EventQueue q;
  const EventId stale = q.schedule(1.0, [] {});
  q.pop();
  // The next schedule recycles the same slot; the stale id must not be
  // able to cancel it (generation mismatch).
  bool fired = false;
  const EventId fresh = q.schedule(2.0, [&] { fired = true; });
  EXPECT_NE(stale, fresh);
  EXPECT_FALSE(q.cancel(stale));
  EXPECT_EQ(q.size(), 1u);
  q.pop().action();
  EXPECT_TRUE(fired);
}

TEST(EventQueue, DoubleCancelAfterReuseReturnsFalse) {
  EventQueue q;
  const EventId a = q.schedule(1.0, [] {});
  EXPECT_TRUE(q.cancel(a));
  const EventId b = q.schedule(1.0, [] {});  // reuses slot a
  EXPECT_FALSE(q.cancel(a));                 // stale id, same slot
  EXPECT_TRUE(q.cancel(b));
  EXPECT_FALSE(q.cancel(b));
}

TEST(EventQueue, SlotsAreRecycled) {
  EventQueue q;
  for (int round = 0; round < 100; ++round) {
    const EventId a = q.schedule(1.0, [] {});
    q.schedule(2.0, [] {});
    q.cancel(a);
    q.pop();
  }
  // A wheel of at most 2 concurrent events must not grow the slab beyond
  // a couple of slots — this is the no-leak property.
  EXPECT_LE(q.slab_slots(), 4u);
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.free_slots(), q.slab_slots());
}

TEST(EventQueue, CancelReleasesCapturedState) {
  EventQueue q;
  auto token = std::make_shared<int>(42);
  std::weak_ptr<int> watch = token;
  const EventId id = q.schedule(1.0, [token = std::move(token)] {});
  EXPECT_FALSE(watch.expired());
  EXPECT_TRUE(q.cancel(id));
  // Cancellation must drop the closure (and its captures) eagerly, not
  // hold them until the heap entry surfaces.
  EXPECT_TRUE(watch.expired());
}

TEST(EventQueue, LargeCapturesFireCorrectly) {
  // Closures above the inline budget take the heap-boxed cold path; they
  // must behave identically.
  EventQueue q;
  struct Big {
    std::array<double, 16> payload{};
  };
  Big big;
  big.payload[7] = 3.5;
  double got = 0;
  q.schedule(1.0, [big, &got] { got = big.payload[7]; });
  q.pop().action();
  EXPECT_DOUBLE_EQ(got, 3.5);
}

TEST(EventQueue, ManyCancelledEntriesDoNotAccumulate) {
  EventQueue q;
  // Schedule and cancel in waves; the slab and free list must stay
  // bounded by the peak concurrency, and ids must stay unique.
  std::vector<EventId> ids;
  for (int wave = 0; wave < 50; ++wave) {
    ids.clear();
    for (int i = 0; i < 20; ++i) {
      ids.push_back(q.schedule(static_cast<double>(i), [] {}));
    }
    for (EventId id : ids) EXPECT_TRUE(q.cancel(id));
  }
  EXPECT_TRUE(q.empty());
  EXPECT_LE(q.slab_slots(), 32u);
}

// --- backend-parameterized ordering and staleness tests -------------------
// The heap and the timing wheel must be observationally identical; these
// run the ordering-sensitive cases against both (and kAuto, which
// migrates between them mid-run).

class EventQueueBackendTest : public ::testing::TestWithParam<EventBackend> {};

INSTANTIATE_TEST_SUITE_P(Backends, EventQueueBackendTest,
                         ::testing::Values(EventBackend::kHeap,
                                           EventBackend::kWheel,
                                           EventBackend::kAuto),
                         [](const auto& info) {
                           switch (info.param) {
                             case EventBackend::kHeap: return "heap";
                             case EventBackend::kWheel: return "wheel";
                             case EventBackend::kAuto: return "auto";
                           }
                           return "unknown";
                         });

TEST_P(EventQueueBackendTest, PopsInTimeThenFifoOrder) {
  EventQueue q(GetParam());
  std::vector<int> fired;
  q.schedule(3.0, [&] { fired.push_back(30); });
  q.schedule(1.0, [&] { fired.push_back(10); });
  q.schedule(1.0, [&] { fired.push_back(11); });  // same time: FIFO
  q.schedule(2.0, [&] { fired.push_back(20); });
  q.schedule(1.0, [&] { fired.push_back(12); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{10, 11, 12, 20, 30}));
}

TEST_P(EventQueueBackendTest, SubTickCoincidencesStayExactlyOrdered) {
  // Times closer together than any coarse bucketing the backend might use
  // (nanoseconds apart) must still pop in exact time order.
  EventQueue q(GetParam());
  std::vector<int> fired;
  q.schedule(1.0 + 3e-9, [&] { fired.push_back(3); });
  q.schedule(1.0 + 1e-9, [&] { fired.push_back(1); });
  q.schedule(1.0 + 2e-9, [&] { fired.push_back(2); });
  q.schedule(1.0, [&] { fired.push_back(0); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3}));
}

TEST_P(EventQueueBackendTest, ScheduleDuringPopAtSameInstantFiresInOrder) {
  // An event firing at t may schedule more work at t; it must run after
  // everything already pending at t (FIFO), even if the backend had
  // already sorted that instant's run.
  EventQueue q(GetParam());
  std::vector<int> fired;
  q.schedule(1.0, [&] {
    fired.push_back(1);
    q.schedule(1.0, [&] { fired.push_back(3); });
  });
  q.schedule(1.0, [&] { fired.push_back(2); });
  q.schedule(2.0, [&] { fired.push_back(4); });
  while (!q.empty()) q.pop().action();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3, 4}));
}

// Satellite: next_time()/pop() must advance cleanly over large bands of
// stale keys left by cancel bursts (the port retry pattern at scale).
TEST_P(EventQueueBackendTest, StaleKeyAdvanceAfterHeavyCancelBursts) {
  EventQueue q(GetParam());
  std::vector<int> fired;
  // Interleave survivors with doomed events across a wide time range so
  // stale keys pepper every wheel level, then cancel in bursts.
  std::vector<EventId> doomed;
  for (int i = 0; i < 500; ++i) {
    const double t = 0.01 * (i + 1);
    if (i % 10 == 0) {
      q.schedule(t, [&fired, i] { fired.push_back(i); });
    } else {
      doomed.push_back(q.schedule(t, [&fired] { fired.push_back(-1); }));
    }
  }
  for (EventId id : doomed) EXPECT_TRUE(q.cancel(id));
  EXPECT_EQ(q.size(), 50u);
  // next_time must skim every stale prefix and report the live head.
  EXPECT_DOUBLE_EQ(q.next_time(), 0.01);
  int expected = 0;
  while (!q.empty()) {
    const Time t = q.next_time();
    auto f = q.pop();
    EXPECT_DOUBLE_EQ(f.time, t);
    f.action();
    EXPECT_EQ(fired.back(), expected);
    expected += 10;
  }
  EXPECT_EQ(fired.size(), 50u);
  // Every slot is recyclable afterwards: nothing leaked.
  EXPECT_EQ(q.free_slots(), q.slab_slots());
}

// Satellite: cancel() on an already-fired id must return false and never
// touch a recycled slot, even after the slot has cycled through many
// generations (the 32-bit generation makes an accidental match need 2^32
// reuses; this pins the mechanism across a dense slice of them).
TEST_P(EventQueueBackendTest, StaleIdsNeverCancelAcrossGenerations) {
  EventQueue q(GetParam());
  EventId first = kInvalidEventId;
  EventId previous = kInvalidEventId;
  for (int round = 0; round < 50000; ++round) {
    // One live event at a time: every round recycles the same slot with a
    // fresh generation.
    const EventId id = q.schedule(1.0 + round * 1e-5, [] {});
    EXPECT_NE(id, previous);
    if (first == kInvalidEventId) first = id;
    // Ids from every earlier generation must have gone inert.
    if (round > 0) {
      EXPECT_FALSE(q.cancel(previous));
      EXPECT_FALSE(q.cancel(first));
    }
    q.pop();
    EXPECT_FALSE(q.cancel(id));  // cancel-after-fire
    previous = id;
  }
  EXPECT_LE(q.slab_slots(), 2u);
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueBackendTest, CancelBurstThenRefillReusesSlots) {
  EventQueue q(GetParam());
  for (int wave = 0; wave < 20; ++wave) {
    std::vector<EventId> ids;
    for (int i = 0; i < 200; ++i) {
      ids.push_back(q.schedule(0.001 * i + wave, [] {}));
    }
    // Cancel all but every 7th, pop the survivors.
    std::size_t live = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i % 7 != 0) {
        EXPECT_TRUE(q.cancel(ids[i]));
      } else {
        ++live;
      }
    }
    EXPECT_EQ(q.size(), live);
    while (!q.empty()) q.pop();
  }
  // Slab bounded by one wave's peak, not the 4000 events scheduled.
  EXPECT_LE(q.slab_slots(), 256u);
  EXPECT_EQ(q.free_slots(), q.slab_slots());
}

// The wheel's resolution adaptation needs BOTH signals: high occupancy
// and an observed crowded sorted run.  A same-instant pile-up escalates;
// the same occupancy spread across the horizon must not (finer ticks
// would only multiply refill windows there).
TEST(EventQueueWheelAdapt, SameInstantPileUpEscalatesResolution) {
  EventQueue q(EventBackend::kWheel);
  const double base = q.ticks_per_sec();
  // 110k events packed 1 ns apart: far above the occupancy threshold and
  // all inside a handful of base-resolution ticks.
  constexpr int kN = 110000;
  for (int i = 0; i < kN; ++i) q.schedule(1.0 + 1e-9 * i, [] {});
  // Pure inserts bucket without building a run; no escalation yet.
  EXPECT_EQ(q.ticks_per_sec(), base);
  // The first pop sorts the giant window; the next insert sees the
  // crowded-run evidence and escalates.
  Time prev = q.pop().time;
  q.schedule(1.0 + 1e-9 * kN, [] {});
  EXPECT_GT(q.ticks_per_sec(), base);
  // Pop order stays exact (time, seq) across the re-filing.
  while (!q.empty()) {
    const Time t = q.pop().time;
    EXPECT_LT(prev, t);
    prev = t;
  }
}

TEST(EventQueueWheelAdapt, SpreadOutLoadKeepsBaseResolution) {
  EventQueue q(EventBackend::kWheel);
  const double base = q.ticks_per_sec();
  // Same occupancy, but ~13 base ticks between events: every sorted run
  // stays tiny, so the density gate must hold the base resolution.
  constexpr int kN = 120000;
  for (int i = 0; i < kN; ++i) q.schedule(1.0 + 1e-4 * i, [] {});
  Time prev = 0;
  for (int i = 0; i < 10000; ++i) {
    const Time t = q.pop().time;
    EXPECT_LT(prev, t);
    prev = t;
  }
  // Occupancy is still past the threshold; runs were never crowded.
  for (int i = 0; i < 1000; ++i) q.schedule(1.0 + 1e-4 * (kN + i), [] {});
  EXPECT_EQ(q.ticks_per_sec(), base);
  while (!q.empty()) {
    const Time t = q.pop().time;
    EXPECT_LT(prev, t);
    prev = t;
  }
}

TEST(EventQueueAuto, MigratesToWheelAndBackAtDrain) {
  EventQueue q(EventBackend::kAuto);
  EXPECT_EQ(q.active_backend(), EventBackend::kHeap);
  for (int i = 0; i < 200; ++i) q.schedule(0.001 * (i + 1), [] {});
  EXPECT_EQ(q.active_backend(), EventBackend::kWheel);
  std::vector<Time> times;
  while (!q.empty()) times.push_back(q.pop().time);
  for (std::size_t i = 1; i < times.size(); ++i) {
    EXPECT_LT(times[i - 1], times[i]);
  }
  // Drained: reverts to the heap, and small loads stay there.
  EXPECT_EQ(q.active_backend(), EventBackend::kHeap);
  q.schedule(1.0, [] {});
  EXPECT_EQ(q.active_backend(), EventBackend::kHeap);
}

}  // namespace
}  // namespace ispn::sim
