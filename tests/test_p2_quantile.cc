#include "stats/p2_quantile.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/random.h"
#include "stats/percentile.h"

namespace ispn::stats {
namespace {

TEST(P2Quantile, ExactForFewSamples) {
  P2Quantile p(0.5);
  p.add(3.0);
  EXPECT_DOUBLE_EQ(p.value(), 3.0);
  p.add(1.0);
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.value(), 2.0);  // exact median of {1,2,3}
}

TEST(P2Quantile, MedianOfUniform) {
  P2Quantile p(0.5);
  sim::Rng rng(1);
  for (int i = 0; i < 100000; ++i) p.add(rng.uniform(0.0, 10.0));
  EXPECT_NEAR(p.value(), 5.0, 0.15);
}

class P2Accuracy : public ::testing::TestWithParam<double> {};

TEST_P(P2Accuracy, TracksExactQuantileOnExponential) {
  const double q = GetParam();
  P2Quantile p2(q);
  SampleSeries exact;
  sim::Rng rng(7);
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.exponential(1.0);
    p2.add(x);
    exact.add(x);
  }
  const double truth = exact.percentile(q);
  EXPECT_NEAR(p2.value() / truth, 1.0, 0.08) << "q=" << q;
}

INSTANTIATE_TEST_SUITE_P(Quantiles, P2Accuracy,
                         ::testing::Values(0.5, 0.9, 0.99));

TEST(P2Quantile, MonotoneNondecreasingForSortedInput) {
  // After the five-sample warm-up (where the estimate jumps from the
  // exact small-n quantile to the middle marker), increasing input must
  // yield non-decreasing estimates.
  P2Quantile p(0.9);
  double prev = -1;
  for (int i = 0; i < 1000; ++i) {
    p.add(static_cast<double>(i));
    if (i < 5) continue;
    const double v = p.value();
    EXPECT_GE(v, prev - 1e-9) << "i=" << i;
    prev = v;
  }
}

TEST(P2Quantile, BoundedByObservedRange) {
  P2Quantile p(0.99);
  sim::Rng rng(3);
  double lo = 1e18, hi = -1e18;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.normal();
    lo = std::min(lo, x);
    hi = std::max(hi, x);
    p.add(x);
    EXPECT_GE(p.value(), lo - 1e-9);
    EXPECT_LE(p.value(), hi + 1e-9);
  }
}

TEST(P2Quantile, CountTracksSamples) {
  P2Quantile p(0.5);
  for (int i = 0; i < 42; ++i) p.add(1.0);
  EXPECT_EQ(p.count(), 42u);
  EXPECT_DOUBLE_EQ(p.quantile(), 0.5);
}

}  // namespace
}  // namespace ispn::stats
