// Multi-switch fan-in: two switches feeding one bottleneck port — the
// first topology beyond the paper's Figure 1 chain.  Exercises the
// drop-sink scheduler API at a merge point where traffic from several
// upstream switches converges on one output port.

#include <gtest/gtest.h>

#include <memory>

#include "net/network.h"
#include "net/topology.h"
#include "sched/fifo.h"
#include "sched/wfq.h"

namespace ispn::net {
namespace {

SchedulerFactory fifo_factory(std::size_t cap = 200) {
  return [cap] { return std::make_unique<sched::FifoScheduler>(cap); };
}

TEST(MultiSwitch, FanInDeliversFromEverySource) {
  Network net;
  const auto topo = build_fan_in(net, 2, 1e6, 1e6, fifo_factory());
  net.attach_stats_sink(1, topo.sink_host);
  net.attach_stats_sink(2, topo.sink_host);
  net.host(topo.src_hosts[0])
      .inject(make_packet(1, 0, topo.src_hosts[0], topo.sink_host, 0.0));
  net.sim().run_until(0.5);
  net.host(topo.src_hosts[1])
      .inject(make_packet(2, 0, topo.src_hosts[1], topo.sink_host, 0.5));
  net.sim().run();
  EXPECT_EQ(net.stats(1).received, 1u);
  EXPECT_EQ(net.stats(2).received, 1u);
  // Two finite-rate store-and-forward hops (edge->merge, merge->out), 1 ms
  // each, no contention.
  EXPECT_NEAR(net.stats(1).e2e_delay.mean(), 0.002, 1e-12);
  EXPECT_NEAR(net.stats(2).e2e_delay.mean(), 0.002, 1e-12);
  EXPECT_EQ(net.queueing_hops(topo.src_hosts[0], topo.sink_host), 2u);
}

TEST(MultiSwitch, SimultaneousArrivalsContendAtMergePort) {
  Network net;
  const auto topo = build_fan_in(net, 2, 1e6, 1e6, fifo_factory());
  net.attach_stats_sink(1, topo.sink_host);
  net.attach_stats_sink(2, topo.sink_host);
  // Both packets reach the merge switch at exactly t=1 ms; one transmits
  // immediately, the other queues for one transmission time.
  net.host(topo.src_hosts[0])
      .inject(make_packet(1, 0, topo.src_hosts[0], topo.sink_host, 0.0));
  net.host(topo.src_hosts[1])
      .inject(make_packet(2, 0, topo.src_hosts[1], topo.sink_host, 0.0));
  net.sim().run();
  EXPECT_EQ(net.stats(1).received, 1u);
  EXPECT_EQ(net.stats(2).received, 1u);
  const double q1 = net.stats(1).queueing_delay.mean();
  const double q2 = net.stats(2).queueing_delay.mean();
  EXPECT_NEAR(q1 + q2, 0.001, 1e-12);       // exactly one packet waited
  EXPECT_NEAR(std::max(q1, q2), 0.001, 1e-12);
  EXPECT_NEAR(std::min(q1, q2), 0.0, 1e-12);
}

// WFQ at the merge point: a flooding source arriving via one upstream
// switch cannot starve (or drop) a conforming source arriving via the
// other — the paper's isolation property, here exercised at a fan-in
// merge instead of a single chain link.  Drop accounting at the merge
// port (driven by the scheduler's DropSink) must agree with the per-flow
// stats.
TEST(MultiSwitch, MergeBottleneckIsolatesConformingFlowUnderWfq) {
  Network net;
  const auto topo = build_fan_in(net, 2, 1e6, 1e6, [] {
    return std::make_unique<sched::WfqScheduler>(
        sched::WfqScheduler::Config{1e6, 8, 1.0});
  });
  net.attach_stats_sink(1, topo.sink_host);
  net.attach_stats_sink(2, topo.sink_host);

  // Flood: 100 flow-1 packets at exactly line rate (1 per ms), so the
  // edge link forwards them without loss and the merge port — where flow 2
  // joins — is the only contended queue.
  for (std::uint64_t i = 0; i < 100; ++i) {
    const double t = 0.001 * static_cast<double>(i);
    net.sim().at(t, [&net, &topo, i, t] {
      net.host(topo.src_hosts[0])
          .inject(make_packet(1, i, topo.src_hosts[0], topo.sink_host, t));
    });
  }
  // Conforming: 10 flow-2 packets spaced 4 ms (a quarter of the
  // bottleneck rate, well under the WFQ fair share of one half).
  for (std::uint64_t i = 0; i < 10; ++i) {
    const double t = 0.004 * static_cast<double>(i);
    net.sim().at(t, [&net, &topo, i, t] {
      net.host(topo.src_hosts[1])
          .inject(make_packet(2, i, topo.src_hosts[1], topo.sink_host, t));
    });
  }
  net.sim().run();

  EXPECT_EQ(net.stats(2).net_drops, 0u);    // conforming flow never dropped
  EXPECT_EQ(net.stats(2).received, 10u);
  EXPECT_GT(net.stats(1).net_drops, 0u);    // the flood pays
  EXPECT_EQ(net.stats(1).received + net.stats(1).net_drops, 100u);

  // The merge port's DropSink-driven counter is the only drop site.
  Port* merge_port = net.port(topo.merge_switch, topo.sink_switch);
  ASSERT_NE(merge_port, nullptr);
  EXPECT_EQ(merge_port->drops(),
            net.stats(1).net_drops + net.stats(2).net_drops);
  for (NodeId edge : topo.edge_switches) {
    EXPECT_EQ(net.port(edge, topo.merge_switch)->drops(), 0u);
  }
}

}  // namespace
}  // namespace ispn::net
