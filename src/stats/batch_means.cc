#include "stats/batch_means.h"

#include <cassert>
#include <cmath>

namespace ispn::stats {

BatchMeans::BatchMeans(std::size_t target_batches)
    : target_batches_(target_batches) {
  assert(target_batches_ >= 2);
}

void BatchMeans::add(double x) {
  ++n_;
  total_ += x;
  current_sum_ += x;
  if (++current_count_ == batch_size_) {
    sums_.push_back(current_sum_);
    current_sum_ = 0;
    current_count_ = 0;
    if (sums_.size() >= 2 * target_batches_) collapse();
  }
}

void BatchMeans::collapse() {
  // Merge adjacent batches, doubling the batch size.
  std::vector<double> merged;
  merged.reserve(sums_.size() / 2);
  for (std::size_t i = 0; i + 1 < sums_.size(); i += 2) {
    merged.push_back(sums_[i] + sums_[i + 1]);
  }
  sums_ = std::move(merged);
  batch_size_ *= 2;
}

double BatchMeans::mean() const {
  return n_ == 0 ? 0.0 : total_ / static_cast<double>(n_);
}

double BatchMeans::half_width() const {
  const std::size_t b = sums_.size();
  if (b < 2) return 0.0;
  const double denom = static_cast<double>(batch_size_);
  double mean_of_means = 0;
  for (double s : sums_) mean_of_means += s / denom;
  mean_of_means /= static_cast<double>(b);
  double var = 0;
  for (double s : sums_) {
    const double d = s / denom - mean_of_means;
    var += d * d;
  }
  var /= static_cast<double>(b - 1);
  return 1.96 * std::sqrt(var / static_cast<double>(b));
}

}  // namespace ispn::stats
