#include "stats/percentile.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ispn::stats {

void SampleSeries::add(double x) {
  samples_.push_back(x);
  summary_.add(x);
  sorted_valid_ = false;
}

double SampleSeries::percentile(double q) const {
  assert(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_valid_) {
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
  const auto n = sorted_.size();
  // Nearest-rank: smallest value with at least ceil(q*n) samples <= it.
  const auto rank = static_cast<std::size_t>(
      std::ceil(q * static_cast<double>(n)));
  const std::size_t idx = rank == 0 ? 0 : rank - 1;
  return sorted_[std::min(idx, n - 1)];
}

void SampleSeries::reset() {
  samples_.clear();
  summary_.reset();
  sorted_.clear();
  sorted_valid_ = false;
}

}  // namespace ispn::stats
