#include "stats/online_stats.h"

#include <cmath>
#include <limits>

namespace ispn::stats {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void OnlineStats::merge(const OnlineStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

void OnlineStats::reset() { *this = OnlineStats{}; }

double OnlineStats::mean() const { return n_ == 0 ? 0.0 : mean_; }

double OnlineStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double OnlineStats::sample_variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double OnlineStats::min() const {
  return n_ == 0 ? std::numeric_limits<double>::infinity() : min_;
}

double OnlineStats::max() const {
  return n_ == 0 ? -std::numeric_limits<double>::infinity() : max_;
}

}  // namespace ispn::stats
