// Utilisation / rate measurement over simulated time.
//
// The admission controller needs a "measured post-facto bound on
// utilisation" (paper §9, the ν̂ quantity).  RateMeter counts bits in
// rotating epochs and reports both the mean rate over the window and the
// peak epoch rate (the conservative estimate §9 calls for).

#pragma once

#include <cstddef>
#include <vector>

#include "sim/units.h"

namespace ispn::stats {

/// Bits-per-second meter over a sliding window of rotating epochs.
class RateMeter {
 public:
  /// Measures over `window` seconds, split into `num_epochs` buckets.
  explicit RateMeter(sim::Duration window = 10.0, std::size_t num_epochs = 10);

  /// Records `bits` transferred at simulated time `now`.
  void add(sim::Time now, sim::Bits bits);

  /// Mean rate (bits/s) over the whole window ending at `now`.
  [[nodiscard]] sim::Rate mean_rate(sim::Time now);

  /// Peak single-epoch rate (bits/s) within the window — the conservative
  /// utilisation estimate for admission control.
  [[nodiscard]] sim::Rate peak_rate(sim::Time now);

  [[nodiscard]] sim::Duration window() const {
    return epoch_len_ * static_cast<double>(buckets_.size());
  }

  void reset();

 private:
  void rotate(sim::Time now);

  double epoch_len_;
  std::vector<double> buckets_;  // bits per epoch
  std::size_t current_ = 0;
  long long last_epoch_ = 0;
};

}  // namespace ispn::stats
