#include "stats/p2_quantile.h"

#include <algorithm>
#include <cassert>

namespace ispn::stats {

P2Quantile::P2Quantile(double q) : q_(q) {
  assert(q > 0.0 && q < 1.0);
  desired_ = {1, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5};
  increments_ = {0, q / 2, q, (1 + q) / 2, 1};
}

double P2Quantile::parabolic(int i, double d) const {
  const double np = positions_[static_cast<std::size_t>(i + 1)];
  const double nm = positions_[static_cast<std::size_t>(i - 1)];
  const double n = positions_[static_cast<std::size_t>(i)];
  const double hp = heights_[static_cast<std::size_t>(i + 1)];
  const double hm = heights_[static_cast<std::size_t>(i - 1)];
  const double h = heights_[static_cast<std::size_t>(i)];
  return h + d / (np - nm) *
                 ((n - nm + d) * (hp - h) / (np - n) +
                  (np - n - d) * (h - hm) / (n - nm));
}

double P2Quantile::linear(int i, double d) const {
  const auto j = static_cast<std::size_t>(i + static_cast<int>(d));
  const auto k = static_cast<std::size_t>(i);
  return heights_[k] + d * (heights_[j] - heights_[k]) /
                           (positions_[j] - positions_[k]);
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    heights_[n_] = x;
    ++n_;
    if (n_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (std::size_t i = 0; i < 5; ++i) {
        positions_[i] = static_cast<double>(i + 1);
      }
    }
    return;
  }
  ++n_;

  // Locate the cell containing x and clamp the extremes.
  int cell;
  if (x < heights_[0]) {
    heights_[0] = x;
    cell = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = std::max(heights_[4], x);
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && x >= heights_[static_cast<std::size_t>(cell + 1)]) {
      ++cell;
    }
  }

  for (int i = cell + 1; i < 5; ++i) {
    positions_[static_cast<std::size_t>(i)] += 1;
  }
  for (std::size_t i = 0; i < 5; ++i) {
    desired_[i] += increments_[i];
  }

  // Adjust the three middle markers.
  for (int i = 1; i <= 3; ++i) {
    const auto k = static_cast<std::size_t>(i);
    const double d = desired_[k] - positions_[k];
    const double gap_up = positions_[k + 1] - positions_[k];
    const double gap_down = positions_[k - 1] - positions_[k];
    if ((d >= 1 && gap_up > 1) || (d <= -1 && gap_down < -1)) {
      const double step = d >= 0 ? 1 : -1;
      double candidate = parabolic(i, step);
      if (heights_[k - 1] < candidate && candidate < heights_[k + 1]) {
        heights_[k] = candidate;
      } else {
        heights_[k] = linear(i, step);
      }
      positions_[k] += step;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ < 5) {
    // Exact on the few samples so far.
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + static_cast<long>(n_));
    const auto rank = static_cast<std::size_t>(
        q_ * static_cast<double>(n_ - 1) + 0.5);
    return sorted[std::min<std::size_t>(rank, n_ - 1)];
  }
  return heights_[2];
}

}  // namespace ispn::stats
