#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace ispn::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), bin_width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  assert(hi > lo && bins > 0);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto idx = static_cast<std::size_t>((x - lo_) / bin_width_);
  if (idx >= counts_.size()) idx = counts_.size() - 1;  // fp edge
  ++counts_[idx];
}

double Histogram::bin_lo(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i);
}

double Histogram::bin_hi(std::size_t i) const {
  return lo_ + bin_width_ * static_cast<double>(i + 1);
}

double Histogram::cdf(double x) const {
  if (total_ == 0) return 0.0;
  if (x < lo_) return 0.0;
  std::uint64_t below = underflow_;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (x >= bin_hi(i)) {
      below += counts_[i];
    } else if (x >= bin_lo(i)) {
      const double frac = (x - bin_lo(i)) / bin_width_;
      below += static_cast<std::uint64_t>(
          frac * static_cast<double>(counts_[i]));
      break;
    } else {
      break;
    }
  }
  if (x >= hi_) below = total_;
  return static_cast<double>(below) / static_cast<double>(total_);
}

std::string Histogram::ascii(std::size_t width) const {
  std::ostringstream out;
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        std::llround(static_cast<double>(width) *
                     static_cast<double>(counts_[i]) /
                     static_cast<double>(peak)));
    out << '[' << bin_lo(i) << ", " << bin_hi(i) << ") "
        << std::string(std::max<std::size_t>(bar, 1), '#') << ' '
        << counts_[i] << '\n';
  }
  if (overflow_ > 0) out << ">= " << hi_ << " : " << overflow_ << '\n';
  return out.str();
}

void Histogram::reset() {
  std::fill(counts_.begin(), counts_.end(), 0);
  underflow_ = overflow_ = total_ = 0;
}

}  // namespace ispn::stats
