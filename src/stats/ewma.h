// Exponentially weighted moving average.
//
// FIFO+ (paper §6) needs each switch to track "the average delay seen by
// packets in each priority class at that switch".  The paper leaves the
// estimator unspecified; we use a classic EWMA updated per packet:
//     avg <- (1 - g) * avg + g * sample
// with gain g defaulting to 2^-7 (the TCP SRTT gain), which averages over
// roughly the last 128 packets.  Ablations live in bench_priority_spacing.

#pragma once

namespace ispn::stats {

/// Per-packet exponentially weighted moving average with warm-start: the
/// first sample initialises the average directly.
class Ewma {
 public:
  /// `gain` in (0, 1]: weight of each new sample.
  explicit Ewma(double gain = 1.0 / 128.0) : gain_(gain) {}

  /// Folds in one sample and returns the updated average.
  double update(double sample) {
    if (!primed_) {
      avg_ = sample;
      primed_ = true;
    } else {
      avg_ += gain_ * (sample - avg_);
    }
    return avg_;
  }

  /// Current average (0 before any sample).
  [[nodiscard]] double value() const { return avg_; }

  /// True once at least one sample has been folded in.
  [[nodiscard]] bool primed() const { return primed_; }

  [[nodiscard]] double gain() const { return gain_; }

  void reset() {
    avg_ = 0;
    primed_ = false;
  }

 private:
  double gain_;
  double avg_ = 0;
  bool primed_ = false;
};

}  // namespace ispn::stats
