// P² (piecewise-parabolic) streaming quantile estimator
// (Jain & Chlamtac, CACM 1985).
//
// SampleSeries keeps every observation for exact percentiles, which is
// fine for 600-second runs but not for always-on deployments.  P² tracks
// one quantile in O(1) space with five markers whose positions adjust by
// parabolic interpolation.  Used where a switch would track its own
// delay quantiles for measurement-based admission over long horizons.

#pragma once

#include <array>
#include <cstdint>

namespace ispn::stats {

class P2Quantile {
 public:
  /// Tracks the q-quantile, q in (0, 1).
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate; exact until five samples have been seen.
  [[nodiscard]] double value() const;

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double quantile() const { return q_; }

 private:
  [[nodiscard]] double parabolic(int i, double d) const;
  [[nodiscard]] double linear(int i, double d) const;

  double q_;
  std::uint64_t n_ = 0;
  std::array<double, 5> heights_{};   // marker values
  std::array<double, 5> positions_{}; // actual marker positions (1-based)
  std::array<double, 5> desired_{};   // desired positions
  std::array<double, 5> increments_{};
};

}  // namespace ispn::stats
