// Exact-percentile sample recorder.
//
// The paper reports per-flow mean and 99.9th-percentile queueing delays over
// 10-minute runs (~50k packets per flow), so storing every sample is cheap
// and gives exact order statistics.  Percentile queries sort a scratch copy
// lazily and cache it until the next insertion.

#pragma once

#include <cstdint>
#include <vector>

#include "stats/online_stats.h"

namespace ispn::stats {

/// Records a series of observations; answers mean / percentile / max queries.
class SampleSeries {
 public:
  SampleSeries() = default;

  /// Pre-reserves capacity to avoid reallocation in hot loops.
  explicit SampleSeries(std::size_t reserve) { samples_.reserve(reserve); }

  /// Adds one observation.
  void add(double x);

  /// Number of observations recorded.
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] bool empty() const { return samples_.empty(); }

  [[nodiscard]] double mean() const { return summary_.mean(); }
  [[nodiscard]] double stddev() const { return summary_.stddev(); }
  [[nodiscard]] double min() const { return summary_.min(); }
  [[nodiscard]] double max() const { return summary_.max(); }

  /// Exact q-quantile with q in [0, 1] using the nearest-rank method
  /// (rank = ceil(q * n), 1-based).  Returns 0 on an empty series.
  [[nodiscard]] double percentile(double q) const;

  /// Convenience for the paper's headline statistic.
  [[nodiscard]] double p999() const { return percentile(0.999); }

  /// Read-only access to raw samples (ordered by insertion).
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }

  /// Summary accumulator (mean/max without sorting).
  [[nodiscard]] const OnlineStats& summary() const { return summary_; }

  void reset();

 private:
  std::vector<double> samples_;
  OnlineStats summary_;
  mutable std::vector<double> sorted_;  // lazily built cache
  mutable bool sorted_valid_ = false;
};

}  // namespace ispn::stats
