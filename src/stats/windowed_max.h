// Sliding-window maximum over simulated time.
//
// The admission controller (paper §9) needs *conservative* measured
// quantities: the maximal recent delay per class and the maximal recent
// utilisation.  We keep per-epoch maxima for the last W epochs and report
// the max over them — a standard measurement-based admission-control
// estimator (cf. Jamin et al.).

#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "sim/units.h"

namespace ispn::stats {

/// Max of samples observed during the last `window` seconds, tracked in
/// `num_epochs` rotating buckets of width window/num_epochs.
class WindowedMax {
 public:
  explicit WindowedMax(sim::Duration window = 10.0, std::size_t num_epochs = 10)
      : epoch_len_(window / static_cast<double>(num_epochs)),
        buckets_(num_epochs, 0.0) {}

  /// Records `sample` observed at simulated time `now`.
  void add(sim::Time now, double sample) {
    rotate(now);
    auto& bucket = buckets_[current_];
    bucket = std::max(bucket, sample);
  }

  /// Max over the window ending at `now`.  Returns 0 with no samples.
  [[nodiscard]] double max(sim::Time now) {
    rotate(now);
    double m = 0.0;
    for (double b : buckets_) m = std::max(m, b);
    return m;
  }

  [[nodiscard]] sim::Duration window() const {
    return epoch_len_ * static_cast<double>(buckets_.size());
  }

 private:
  void rotate(sim::Time now) {
    auto epoch = static_cast<long long>(now / epoch_len_);
    while (last_epoch_ < epoch) {
      ++last_epoch_;
      current_ = (current_ + 1) % buckets_.size();
      buckets_[current_] = 0.0;
    }
  }

  double epoch_len_;
  std::vector<double> buckets_;
  std::size_t current_ = 0;
  long long last_epoch_ = 0;
};

}  // namespace ispn::stats
