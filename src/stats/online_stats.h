// Streaming summary statistics (Welford's algorithm).

#pragma once

#include <cstdint>

namespace ispn::stats {

/// Single-pass mean / variance / min / max accumulator.  O(1) memory,
/// numerically stable (Welford).
class OnlineStats {
 public:
  OnlineStats() = default;

  /// Accumulates one observation.
  void add(double x);

  /// Merges another accumulator (parallel Welford combine).
  void merge(const OnlineStats& other);

  /// Removes all observations.
  void reset();

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] bool empty() const { return n_ == 0; }

  /// Mean of observations; 0 if empty.
  [[nodiscard]] double mean() const;

  /// Population variance; 0 if fewer than 2 observations.
  [[nodiscard]] double variance() const;

  /// Sample (n-1) variance; 0 if fewer than 2 observations.
  [[nodiscard]] double sample_variance() const;

  /// Population standard deviation.
  [[nodiscard]] double stddev() const;

  /// Smallest observation; +inf if empty.
  [[nodiscard]] double min() const;

  /// Largest observation; -inf if empty.
  [[nodiscard]] double max() const;

  /// Sum of observations.
  [[nodiscard]] double sum() const { return mean_ * static_cast<double>(n_); }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

}  // namespace ispn::stats
