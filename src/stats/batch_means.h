// Batch-means confidence intervals for steady-state simulation output.
//
// Per-packet delays from one run are heavily autocorrelated, so the naive
// s/sqrt(n) interval is far too tight.  The classic remedy: split the
// stream into B contiguous batches, treat batch means as (approximately)
// independent, and build the interval from their spread.  The batch size
// doubles on the fly (pairwise collapsing) so the estimator needs no
// a-priori run length.  Used by EXPERIMENTS.md error bars and tests.

#pragma once

#include <cstdint>
#include <vector>

namespace ispn::stats {

class BatchMeans {
 public:
  /// Maintains between `target_batches` and 2x that many batches.
  explicit BatchMeans(std::size_t target_batches = 20);

  void add(double x);

  [[nodiscard]] std::uint64_t count() const { return n_; }

  /// Grand mean of all observations.
  [[nodiscard]] double mean() const;

  /// Half-width of the ~95% confidence interval from completed batches
  /// (1.96 * s_batch / sqrt(B)); 0 while fewer than 2 batches completed.
  [[nodiscard]] double half_width() const;

  /// Number of completed batches currently contributing.
  [[nodiscard]] std::size_t batches() const { return sums_.size(); }

  /// Current batch size (observations per batch).
  [[nodiscard]] std::uint64_t batch_size() const { return batch_size_; }

 private:
  void collapse();

  std::size_t target_batches_;
  std::uint64_t batch_size_ = 1;
  std::vector<double> sums_;       // completed batch sums
  double current_sum_ = 0;
  std::uint64_t current_count_ = 0;
  std::uint64_t n_ = 0;
  double total_ = 0;
};

}  // namespace ispn::stats
