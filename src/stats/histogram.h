// Fixed-bin histogram for delay distributions.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ispn::stats {

/// Linear-bin histogram over [lo, hi) with overflow/underflow counters.
/// Used by benches to print delay distributions alongside the paper's
/// summary statistics.
class Histogram {
 public:
  /// `bins` equal-width bins spanning [lo, hi).
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  [[nodiscard]] std::uint64_t total() const { return total_; }
  [[nodiscard]] std::uint64_t underflow() const { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const { return overflow_; }
  [[nodiscard]] std::size_t bins() const { return counts_.size(); }
  [[nodiscard]] std::uint64_t bin_count(std::size_t i) const {
    return counts_.at(i);
  }
  [[nodiscard]] double bin_lo(std::size_t i) const;
  [[nodiscard]] double bin_hi(std::size_t i) const;

  /// Fraction of samples at or below `x` (linear interpolation within bins).
  [[nodiscard]] double cdf(double x) const;

  /// Renders an ASCII bar chart (for bench output), `width` chars max bar.
  [[nodiscard]] std::string ascii(std::size_t width = 50) const;

  void reset();

 private:
  double lo_;
  double hi_;
  double bin_width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace ispn::stats
