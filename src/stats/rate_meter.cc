#include "stats/rate_meter.h"

#include <algorithm>
#include <cassert>

namespace ispn::stats {

RateMeter::RateMeter(sim::Duration window, std::size_t num_epochs)
    : epoch_len_(window / static_cast<double>(num_epochs)),
      buckets_(num_epochs, 0.0) {
  assert(window > 0 && num_epochs > 0);
}

void RateMeter::rotate(sim::Time now) {
  auto epoch = static_cast<long long>(now / epoch_len_);
  while (last_epoch_ < epoch) {
    ++last_epoch_;
    current_ = (current_ + 1) % buckets_.size();
    buckets_[current_] = 0.0;
  }
}

void RateMeter::add(sim::Time now, sim::Bits bits) {
  rotate(now);
  buckets_[current_] += bits;
}

sim::Rate RateMeter::mean_rate(sim::Time now) {
  rotate(now);
  double total = 0.0;
  for (double b : buckets_) total += b;
  return total / window();
}

sim::Rate RateMeter::peak_rate(sim::Time now) {
  rotate(now);
  double peak = 0.0;
  for (double b : buckets_) peak = std::max(peak, b);
  return peak / epoch_len_;
}

void RateMeter::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0.0);
  current_ = 0;
  last_epoch_ = 0;
}

}  // namespace ispn::stats
