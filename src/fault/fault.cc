#include "fault/fault.h"

#include <stdexcept>
#include <string>

namespace ispn::fault {

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kNodeDown: return "node-down";
    case FaultKind::kNodeUp: return "node-up";
    case FaultKind::kBrownoutStart: return "brownout-start";
    case FaultKind::kBrownoutEnd: return "brownout-end";
    case FaultKind::kLossStart: return "loss-start";
    case FaultKind::kLossEnd: return "loss-end";
  }
  return "?";
}

void FaultSpec::validate() const {
  auto fail = [](const std::string& what) {
    throw std::invalid_argument("fault spec: " + what);
  };
  if (link_failure_rate < 0) fail("link_failure_rate must be >= 0");
  if (node_crash_rate < 0) fail("node_crash_rate must be >= 0");
  if (brownout_rate < 0) fail("brownout_rate must be >= 0");
  if (loss_rate < 0) fail("loss_rate must be >= 0");
  if (flap_prob < 0 || flap_prob > 1) fail("flap_prob must be in [0, 1]");
  if (flap_prob > 0 && flap_burst_max < 1) {
    fail("flap_burst_max must be >= 1 when flapping is enabled");
  }
  if (flap_prob > 0 && flap_gap_mean <= 0) {
    fail("flap_gap_mean must be > 0 when flapping is enabled");
  }
  if (brownout_rate > 0 &&
      (brownout_fraction <= 0 || brownout_fraction >= 1)) {
    fail("brownout_fraction must be in (0, 1): a brown-out degrades "
         "capacity, it neither kills the link (use link failures) nor "
         "leaves it whole");
  }
  if (brownout_rate > 0 && brownout_mean <= 0) {
    fail("brownout_mean must be > 0 when brown-outs are enabled");
  }
  if (loss_prob < 0 || loss_prob > 1) fail("loss_prob must be in [0, 1]");
  if (loss_rate > 0 && loss_prob <= 0) {
    fail("loss_rate is set but loss_prob is 0: episodes would drop nothing");
  }
  if (loss_rate > 0 && loss_mean <= 0) {
    fail("loss_mean must be > 0 when loss episodes are enabled");
  }
}

namespace {

/// Per-target alternating start/end episodes shared by brown-outs and
/// loss: start at exponential(1/rate) gaps, hold exponential(mean).  An
/// episode whose end falls past the horizon stays active through the
/// drain — the runner restores nothing it was never told to.
void draw_episodes(FaultSchedule& out, sim::Rng& rng, net::NodeId a,
                   net::NodeId b, double rate, sim::Duration mean,
                   FaultKind start, FaultKind end, double value,
                   sim::Duration horizon) {
  sim::Time t = 0;
  for (int k = 0; k < kMaxEpisodesPerTarget; ++k) {
    t += rng.exponential(1.0 / rate);
    if (t >= horizon) break;
    out.push_back({t, start, a, b, value});
    t += rng.exponential(mean);
    if (t >= horizon) break;
    out.push_back({t, end, a, b, 0.0});
  }
}

}  // namespace

FaultSchedule draw_schedule(
    const FaultSpec& spec,
    const std::vector<std::pair<net::NodeId, net::NodeId>>& links,
    const std::vector<net::NodeId>& switches, std::uint64_t seed,
    sim::Duration horizon) {
  spec.validate();
  FaultSchedule out;

  // Link failures: PR 6's exact draw sequence on stream 0xFA11 — per
  // link in registration order, alternating exponential down/up gaps,
  // capped episodes.  Flap decisions and flap gaps come from their OWN
  // stream, drawn once per recovery, so flap_prob = 0 reproduces the
  // original schedule byte-for-byte (bernoulli(0) is always false but
  // consumes only the flap stream).
  if (spec.link_failure_rate > 0) {
    sim::Rng frng(seed, kLinkFaultStream);
    sim::Rng flap_rng(seed, kFlapStream);
    for (const auto& [a, b] : links) {
      sim::Time t = 0;
      for (int k = 0; k < kMaxEpisodesPerTarget; ++k) {
        t += frng.exponential(1.0 / spec.link_failure_rate);
        if (t >= horizon) break;
        out.push_back({t, FaultKind::kLinkDown, a, b, 0.0});
        if (spec.link_repair_mean <= 0) break;  // no repair: stays down
        t += frng.exponential(spec.link_repair_mean);
        if (t >= horizon) break;
        out.push_back({t, FaultKind::kLinkUp, a, b, 0.0});
        // A recovery may come back as a flap burst: short down/up pairs
        // right after the repair (same-window flaps included — ctl()
        // quantization may collapse a pair onto one barrier, where the
        // down then the up execute back to back in registration order).
        if (spec.flap_prob > 0 && flap_rng.bernoulli(spec.flap_prob)) {
          const int burst =
              1 + static_cast<int>(flap_rng.below(
                      static_cast<std::uint64_t>(spec.flap_burst_max)));
          for (int f = 0; f < burst; ++f) {
            t += flap_rng.exponential(spec.flap_gap_mean);
            if (t >= horizon) break;
            out.push_back({t, FaultKind::kLinkDown, a, b, 0.0});
            t += flap_rng.exponential(spec.flap_gap_mean);
            if (t >= horizon) break;
            out.push_back({t, FaultKind::kLinkUp, a, b, 0.0});
          }
          if (t >= horizon) break;
        }
      }
    }
  }

  // Switch crashes: per switch in ascending id order.
  if (spec.node_crash_rate > 0) {
    sim::Rng nrng(seed, kNodeFaultStream);
    for (const net::NodeId node : switches) {
      sim::Time t = 0;
      for (int k = 0; k < kMaxEpisodesPerTarget; ++k) {
        t += nrng.exponential(1.0 / spec.node_crash_rate);
        if (t >= horizon) break;
        out.push_back({t, FaultKind::kNodeDown, node, -1, 0.0});
        if (spec.node_repair_mean <= 0) break;
        t += nrng.exponential(spec.node_repair_mean);
        if (t >= horizon) break;
        out.push_back({t, FaultKind::kNodeUp, node, -1, 0.0});
      }
    }
  }

  if (spec.brownout_rate > 0) {
    sim::Rng brng(seed, kBrownoutStream);
    for (const auto& [a, b] : links) {
      draw_episodes(out, brng, a, b, spec.brownout_rate, spec.brownout_mean,
                    FaultKind::kBrownoutStart, FaultKind::kBrownoutEnd,
                    spec.brownout_fraction, horizon);
    }
  }

  if (spec.loss_rate > 0) {
    sim::Rng lrng(seed, kLossEpisodeStream);
    for (const auto& [a, b] : links) {
      draw_episodes(out, lrng, a, b, spec.loss_rate, spec.loss_mean,
                    FaultKind::kLossStart, FaultKind::kLossEnd,
                    spec.loss_prob, horizon);
    }
  }

  return out;
}

}  // namespace ispn::fault
