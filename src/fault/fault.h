// Deterministic fault-injection plane (PR 9 tentpole).
//
// Generalizes the PR 6 link-failure schedule into one seeded FaultSchedule
// covering four fault families:
//
//   * link failures and repairs  — PR 6 semantics, stream 0xFA11; the
//     draw sequence is byte-identical to the original generator, so every
//     pre-existing golden trace survives unchanged;
//   * link flapping              — bounded up/down bursts appended to a
//     failure episode, drawn from a DEDICATED stream (0xFA15) so
//     flap_prob = 0 leaves the 0xFA11 sequence untouched;
//   * switch crashes/recoveries  — stream 0xFA12; the runner takes every
//     incident link down atomically, flushes scheduler state into the
//     node_failure_drops ledger bucket and recomputes routes ONCE;
//   * capacity brown-outs        — stream 0xFA13; a link's rate degrades
//     to a fraction and later restores (schedulers re-rated, admitted
//     flows re-validated against the reduced mu);
//   * transient packet loss      — stream 0xFA14 schedules the episodes;
//     the Bernoulli per-packet draws use a per-port stream
//     (kPortLossStreamBase | from<<16 | to) so loss on one link never
//     perturbs another link's sequence.
//
// The whole schedule is drawn up front (at ScenarioRunner::prepare()) and
// every event is grid-quantized through the runner's ctl() before it is
// registered with the simulator, so shard counts {0,1,2,4} and both event
// backends replay it byte-identically.

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "net/packet.h"
#include "sim/random.h"
#include "sim/units.h"

namespace ispn::fault {

/// Rng stream ids of the fault plane.  0xFA11 is PR 6's original failure
/// stream and must keep its draw order; the rest are new, disjoint from
/// the workload stream (0xFAB) and the per-flow source streams (>= 2^32).
constexpr std::uint64_t kLinkFaultStream = 0xFA11;
constexpr std::uint64_t kNodeFaultStream = 0xFA12;
constexpr std::uint64_t kBrownoutStream = 0xFA13;
constexpr std::uint64_t kLossEpisodeStream = 0xFA14;
constexpr std::uint64_t kFlapStream = 0xFA15;
/// Per-port Bernoulli loss streams: base | from << 16 | to.  Node ids are
/// dense small integers, so the composed stream never collides with the
/// per-flow source streams (different high bits).
constexpr std::uint64_t kPortLossStreamBase = 0x1055ull << 32;

/// Episode cap per target (link or switch) per family — bounds the
/// schedule even for effectively unbounded horizons (bench drives
/// run_seconds = 1e9), mirroring PR 6's kMaxFailuresPerLink.
constexpr int kMaxEpisodesPerTarget = 8;

enum class FaultKind : std::uint8_t {
  kLinkDown,
  kLinkUp,
  kNodeDown,
  kNodeUp,
  kBrownoutStart,  ///< value = surviving capacity fraction in (0, 1)
  kBrownoutEnd,
  kLossStart,      ///< value = per-packet Bernoulli drop probability
  kLossEnd,
};

[[nodiscard]] const char* to_string(FaultKind kind);

/// One scheduled fault transition.  Link events carry both endpoints;
/// node events carry the switch in `a` (b = -1).
struct FaultEvent {
  sim::Time time = 0;
  FaultKind kind = FaultKind::kLinkDown;
  net::NodeId a = -1;
  net::NodeId b = -1;
  double value = 0;
};

/// Deterministic sequence, fully drawn before the run starts.  Events are
/// emitted family-by-family (links, then nodes, then brown-outs, then
/// loss); the simulator orders them by quantized time, and equal-time
/// ties resolve by registration order — a function of the spec alone.
using FaultSchedule = std::vector<FaultEvent>;

/// Knobs of the seeded generator.  All rates are events/s per target;
/// zero disables a family.  Assembled from ScenarioSpec::fault_spec().
struct FaultSpec {
  // Link failures (PR 6) + flapping.
  double link_failure_rate = 0;
  sim::Duration link_repair_mean = 0;  ///< <= 0: failures are permanent
  double flap_prob = 0;        ///< P(an episode recovers as a flap burst)
  int flap_burst_max = 3;      ///< extra down/up pairs per flapping episode
  sim::Duration flap_gap_mean = 0.05;  ///< mean gap between flap toggles
  // Switch crashes.
  double node_crash_rate = 0;
  sim::Duration node_repair_mean = 0;  ///< <= 0: crashes are permanent
  // Capacity brown-outs.
  double brownout_rate = 0;
  double brownout_fraction = 0.5;  ///< surviving capacity, in (0, 1)
  sim::Duration brownout_mean = 2.0;
  // Transient per-link loss.
  double loss_rate = 0;
  double loss_prob = 0.01;  ///< per-packet drop probability while active
  sim::Duration loss_mean = 1.0;

  /// True when any family is enabled.
  [[nodiscard]] bool any() const {
    return link_failure_rate > 0 || node_crash_rate > 0 || brownout_rate > 0 ||
           loss_rate > 0;
  }

  /// Throws std::invalid_argument naming the offending knob when a value
  /// is out of range (negative rate, fraction outside (0,1), ...).
  void validate() const;
};

/// Draws the complete schedule.  `links` is the undirected unique QoS
/// link list in registration order (PR 6's iteration order); `switches`
/// is the switch id list in ascending order.  Per-family episodes use
/// dedicated streams seeded from `seed`, so enabling one family never
/// perturbs another's draws.
[[nodiscard]] FaultSchedule draw_schedule(
    const FaultSpec& spec,
    const std::vector<std::pair<net::NodeId, net::NodeId>>& links,
    const std::vector<net::NodeId>& switches, std::uint64_t seed,
    sim::Duration horizon);

}  // namespace ispn::fault
