// DirectMapCache: a small direct-mapped memo for hot per-packet lookups.
//
// Jain's DEC-TR-592 measured strong destination-address locality in real
// traffic and found even a trivially small direct-mapped cache captures
// most of it.  This is that scheme: 2^bits entries, each holding the last
// (key, value) pair that hashed there; a lookup is one indexed probe.
//
// The cache is a pure memo in front of an authoritative structure: a hit
// must return exactly what the backing lookup would, so correctness never
// depends on hit/miss behaviour — but the hit/miss counters themselves
// are deterministic (the probe sequence is the packet arrival sequence,
// which the differential suites prove byte-identical across backends), so
// they can be exported in reports and compared across runs.
//
// invalidate() clears every entry; call it whenever the backing structure
// changes (e.g. a routing-table rebuild after a link failure).

#pragma once

#include <cstdint>
#include <vector>

namespace ispn::util {

template <typename Key, typename Value>
class DirectMapCache {
 public:
  /// 2^bits entries (default 256 — DEC-TR-592's caches saturate well
  /// below this for locality-bearing traffic).
  explicit DirectMapCache(unsigned bits = 8)
      : mask_((std::size_t{1} << bits) - 1),
        entries_(std::size_t{1} << bits) {}

  /// Pointer to the cached value for `key`, or nullptr on miss.  Counts.
  [[nodiscard]] Value* lookup(Key key) {
    Entry& e = entries_[index_of(key)];
    if (e.valid && e.key == key) {
      ++hits_;
      return &e.value;
    }
    ++misses_;
    return nullptr;
  }

  /// lookup() without touching the hit/miss counters: for speculative
  /// probes (prefetch paths) that must not perturb the deterministic
  /// counter streams the reports export.  Never falls back to the
  /// backing structure — a stale or empty line just returns nullptr.
  [[nodiscard]] const Value* peek(Key key) const {
    const Entry& e = entries_[index_of(key)];
    return (e.valid && e.key == key) ? &e.value : nullptr;
  }

  /// Installs `key -> value`, evicting whatever occupied the line.
  void insert(Key key, Value value) {
    Entry& e = entries_[index_of(key)];
    e.key = key;
    e.value = value;
    e.valid = true;
  }

  /// Drops every entry (backing structure changed).
  void invalidate() {
    for (Entry& e : entries_) e.valid = false;
    ++invalidations_;
  }

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::uint64_t invalidations() const { return invalidations_; }
  [[nodiscard]] std::size_t entries() const { return entries_.size(); }

 private:
  struct Entry {
    Key key{};
    Value value{};
    bool valid = false;
  };

  [[nodiscard]] std::size_t index_of(Key key) const {
    auto h = static_cast<std::uint32_t>(key) * 0x9E3779B9u;
    h ^= h >> 16;
    return h & mask_;
  }

  std::size_t mask_;
  std::vector<Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t invalidations_ = 0;
};

}  // namespace ispn::util
