// A d-ary min-heap over a flat vector.
//
// The engine's hot paths (event core, WFQ fluid/head orderings, FIFO+
// expected-arrival ordering, VirtualClock stamps) all need the same three
// operations — push, top, pop-min — at very high rates.  std::set /
// std::map give them O(log n) with a pointer-chasing rebalancing tree and
// one node allocation per element; a flat heap gives the same bounds with
// contiguous memory, zero steady-state allocation (the vector's capacity
// stabilises), and a branchier but far cheaper constant factor.  Arity 4
// halves tree depth versus a binary heap, which matters once the heap
// spills out of L1 (the event core's default).
//
// Elements are moved during sifts, so T should be cheaply movable (keys of
// a few words, or structs holding a PacketPtr).  `Less` is a strict weak
// ordering; the heap is *not* stable — callers needing FIFO tie-breaks must
// fold an arrival sequence number into the key, which every user here does.
//
// remove_at()/raw() expose the underlying vector for the rare cold paths
// (drop-victim selection on buffer overflow) that need a linear scan.

#pragma once

#include <cassert>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

namespace ispn::util {

template <typename T, typename Less = std::less<T>, unsigned Arity = 4>
class DaryHeap {
  static_assert(Arity >= 2, "a heap needs at least two children per node");

 public:
  DaryHeap() = default;
  explicit DaryHeap(Less less) : less_(std::move(less)) {}

  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  void clear() { v_.clear(); }

  /// Smallest element.  Precondition: !empty().
  [[nodiscard]] const T& top() const {
    assert(!v_.empty());
    return v_.front();
  }

  void push(T value) {
    v_.push_back(std::move(value));
    // Hole insertion: shift parents down into the hole instead of
    // swapping — one move per level rather than three.
    std::size_t i = v_.size() - 1;
    if (i == 0) return;
    T tmp = std::move(v_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!less_(tmp, v_[parent])) break;
      v_[i] = std::move(v_[parent]);
      i = parent;
    }
    v_[i] = std::move(tmp);
  }

  /// Removes and returns the smallest element.  Precondition: !empty().
  T pop() {
    assert(!v_.empty());
    T out = std::move(v_.front());
    T last = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) place_down(0, std::move(last));
    return out;
  }

  /// Removes the element at raw index `i` (cold path: victim eviction).
  T remove_at(std::size_t i) {
    assert(i < v_.size());
    T out = std::move(v_[i]);
    T last = std::move(v_.back());
    v_.pop_back();
    if (i < v_.size()) {
      // The replacement may violate either direction.
      if (i > 0 && less_(last, v_[(i - 1) / Arity])) {
        place_up(i, std::move(last));
      } else {
        place_down(i, std::move(last));
      }
    }
    return out;
  }

  /// Heap-ordered backing store, exposed for cold-path linear scans.
  [[nodiscard]] const std::vector<T>& raw() const { return v_; }

 private:
  /// Sinks the hole at `i` until `value` fits, then places it.
  void place_down(std::size_t i, T value) {
    const std::size_t n = v_.size();
    for (;;) {
      const std::size_t first = i * Arity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + Arity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (less_(v_[c], v_[best])) best = c;
      }
      if (!less_(v_[best], value)) break;
      v_[i] = std::move(v_[best]);
      i = best;
    }
    v_[i] = std::move(value);
  }

  /// Floats the hole at `i` up until `value` fits, then places it.
  void place_up(std::size_t i, T value) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!less_(value, v_[parent])) break;
      v_[i] = std::move(v_[parent]);
      i = parent;
    }
    v_[i] = std::move(value);
  }

  std::vector<T> v_;
  Less less_;
};

}  // namespace ispn::util
