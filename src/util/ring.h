// A power-of-two ring deque.
//
// std::deque is the obvious per-flow FIFO, but it is a heavyweight object
// (80 bytes + a separately allocated chunk map + 512-byte chunks, even for
// a two-packet queue) and its push/pop paths branch through chunk
// management.  The simulator keeps one FIFO per flow per port — hundreds
// of mostly-short queues on the hottest paths — so this ring stores
// elements in a single power-of-two buffer with head/tail counters:
// push_back/pop_front are an index mask and a move, the empty ring owns no
// allocation, and capacity doubles geometrically (allocation-free once the
// steady-state depth is reached).
//
// Supports deque-style use (front/back/push_back/pop_front/pop_back),
// indexed scans, and erase_at() for the rare drop-victim paths.

#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>

namespace ispn::util {

template <typename T>
class Ring {
 public:
  Ring() = default;

  Ring(Ring&& other) noexcept
      : buf_(std::move(other.buf_)),
        cap_(std::exchange(other.cap_, 0)),
        head_(std::exchange(other.head_, 0)),
        size_(std::exchange(other.size_, 0)) {}

  Ring& operator=(Ring&& other) noexcept {
    if (this != &other) {
      buf_ = std::move(other.buf_);
      cap_ = std::exchange(other.cap_, 0);
      head_ = std::exchange(other.head_, 0);
      size_ = std::exchange(other.size_, 0);
    }
    return *this;
  }

  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] T& front() {
    assert(size_ > 0);
    return buf_[head_ & (cap_ - 1)];
  }
  [[nodiscard]] const T& front() const {
    assert(size_ > 0);
    return buf_[head_ & (cap_ - 1)];
  }
  [[nodiscard]] T& back() {
    assert(size_ > 0);
    return buf_[(head_ + size_ - 1) & (cap_ - 1)];
  }
  [[nodiscard]] const T& back() const {
    assert(size_ > 0);
    return buf_[(head_ + size_ - 1) & (cap_ - 1)];
  }

  /// Logical index: 0 is the front, size()-1 the back.
  [[nodiscard]] T& operator[](std::size_t i) {
    assert(i < size_);
    return buf_[(head_ + i) & (cap_ - 1)];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    assert(i < size_);
    return buf_[(head_ + i) & (cap_ - 1)];
  }

  void push_back(T value) {
    if (size_ == cap_) grow();
    buf_[(head_ + size_) & (cap_ - 1)] = std::move(value);
    ++size_;
  }

  T pop_front() {
    assert(size_ > 0);
    T out = std::move(buf_[head_ & (cap_ - 1)]);
    ++head_;
    --size_;
    return out;
  }

  T pop_back() {
    assert(size_ > 0);
    --size_;
    return std::move(buf_[(head_ + size_) & (cap_ - 1)]);
  }

  /// Removes the element at logical index `i` by shifting the shorter side
  /// (cold path: drop-victim selection).
  T erase_at(std::size_t i) {
    assert(i < size_);
    T out = std::move((*this)[i]);
    if (i < size_ - i - 1) {
      for (std::size_t j = i; j > 0; --j) (*this)[j] = std::move((*this)[j - 1]);
      ++head_;
    } else {
      for (std::size_t j = i; j + 1 < size_; ++j) {
        (*this)[j] = std::move((*this)[j + 1]);
      }
    }
    --size_;
    return out;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) (*this)[i] = T{};
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = cap_ == 0 ? 8 : cap_ * 2;
    auto fresh = std::make_unique<T[]>(new_cap);
    for (std::size_t i = 0; i < size_; ++i) fresh[i] = std::move((*this)[i]);
    buf_ = std::move(fresh);
    cap_ = new_cap;
    head_ = 0;
  }

  std::unique_ptr<T[]> buf_;
  std::size_t cap_ = 0;
  std::size_t head_ = 0;  // monotone; masked on access
  std::size_t size_ = 0;
};

}  // namespace ispn::util
