// SlotMap: a compact key -> dense-slot remap for per-flow state.
//
// The schedulers keep per-flow records in dense vectors.  Indexing those
// vectors by the raw FlowId means one sparse or large id allocates
// O(max_id) entries per link — the million-flow killer this replaces.  A
// SlotMap assigns each key the lowest-numbered free slot on first sight,
// so dense arrays sized by slot_limit() scale with the number of flows
// actually seen, never with the largest id.
//
// Properties the schedulers rely on:
//   - Deterministic: slot assignment is a pure function of the sequence
//     of acquire()/release() calls (first-seen order + LIFO recycling),
//     never of hash layout, so byte-identical call sequences — which the
//     backend-differential suites already prove — yield identical slots.
//   - Allocation-free steady state: the open-addressing table only grows
//     when the live key count crosses 3/4 load, and the freelist's
//     capacity is reserved alongside it, so churn (acquire/release of a
//     bounded working set) touches no allocator.
//   - Any int32 key is valid, including negatives (net::kNoFlow), which
//     the old `slot_of` id+1 scheme special-cased.
//
// Deletion uses backward-shift (no tombstones), so probe chains stay
// short regardless of churn history.

#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

namespace ispn::util {

class SlotMap {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  SlotMap() = default;

  /// Slot of `key`, or kNoSlot if it was never acquired (or was released).
  [[nodiscard]] std::uint32_t find(std::int32_t key) const {
    if (cells_.empty()) return kNoSlot;
    std::size_t i = home_of(key);
    while (cells_[i].slot_plus1 != 0) {
      if (cells_[i].key == key) return cells_[i].slot_plus1 - 1;
      i = (i + 1) & mask_;
    }
    return kNoSlot;
  }

  /// Slot of `key`, assigning the lowest free one (LIFO over released
  /// slots, then the next never-used slot) on first sight.
  std::uint32_t acquire(std::int32_t key) {
    if (cells_.empty()) rehash(kInitialCells);
    std::size_t i = home_of(key);
    while (cells_[i].slot_plus1 != 0) {
      if (cells_[i].key == key) return cells_[i].slot_plus1 - 1;
      i = (i + 1) & mask_;
    }
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = slot_limit_++;
    }
    cells_[i] = Cell{key, slot + 1};
    ++active_;
    if (active_ * 4 >= cells_.size() * 3) rehash(cells_.size() * 2);
    return slot;
  }

  /// Frees `key`'s slot for reuse.  Returns false when absent.
  bool release(std::int32_t key) {
    if (cells_.empty()) return false;
    std::size_t i = home_of(key);
    while (true) {
      if (cells_[i].slot_plus1 == 0) return false;
      if (cells_[i].key == key) break;
      i = (i + 1) & mask_;
    }
    free_.push_back(cells_[i].slot_plus1 - 1);
    --active_;
    // Backward-shift the tail of the probe chain into the hole so lookups
    // never need tombstones: an entry may move left only if its home slot
    // is at or before the hole (cyclically).
    std::size_t hole = i;
    std::size_t j = i;
    while (true) {
      j = (j + 1) & mask_;
      if (cells_[j].slot_plus1 == 0) break;
      const std::size_t home = home_of(cells_[j].key);
      const std::size_t dist_hole = (hole - home) & mask_;
      const std::size_t dist_j = (j - home) & mask_;
      if (dist_hole <= dist_j) {
        cells_[hole] = cells_[j];
        hole = j;
      }
    }
    cells_[hole] = Cell{};
    return true;
  }

  /// Pre-sizes the table (and freelist reserve) for `n` concurrent keys.
  void reserve(std::size_t n) {
    std::size_t want = kInitialCells;
    while (want * 3 < n * 4) want *= 2;
    if (want > cells_.size()) rehash(want);
  }

  /// Keys currently mapped.
  [[nodiscard]] std::size_t size() const { return active_; }

  /// One past the largest slot ever handed out: the size dense per-slot
  /// arrays must have.  Bounded by the peak concurrent key count, never
  /// by the largest key value.
  [[nodiscard]] std::uint32_t slot_limit() const { return slot_limit_; }

 private:
  struct Cell {
    std::int32_t key = 0;
    std::uint32_t slot_plus1 = 0;  // 0 = empty
  };
  static constexpr std::size_t kInitialCells = 16;

  [[nodiscard]] std::size_t home_of(std::int32_t key) const {
    auto h = static_cast<std::uint32_t>(key) * 0x9E3779B9u;
    h ^= h >> 16;
    return h & mask_;
  }

  void rehash(std::size_t new_cells) {
    assert((new_cells & (new_cells - 1)) == 0);
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(new_cells, Cell{});
    mask_ = new_cells - 1;
    // Released-slot count can never exceed the table's load limit, so one
    // reserve here keeps release() allocation-free between rehashes.
    free_.reserve(new_cells);
    for (const Cell& c : old) {
      if (c.slot_plus1 == 0) continue;
      std::size_t i = home_of(c.key);
      while (cells_[i].slot_plus1 != 0) i = (i + 1) & mask_;
      cells_[i] = c;
    }
  }

  std::vector<Cell> cells_;
  std::vector<std::uint32_t> free_;  // released slots, reused LIFO
  std::size_t mask_ = 0;
  std::size_t active_ = 0;
  std::uint32_t slot_limit_ = 0;
};

}  // namespace ispn::util
