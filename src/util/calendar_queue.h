// An indexed calendar queue: bucketed ordering over virtual time, with the
// same one-entry-per-id / re-key-in-place contract as IndexedDaryHeap.
//
// The WFQ-family hot path re-keys two orderings on every packet (the fluid
// departure epochs and the head-of-flow finish tags).  A comparison heap
// pays O(log n) full-depth sifts for each re-key, which is what pins the
// saturated 100-flow rows.  Keys here are not arbitrary, though: they are
// *virtual times*, drifting forward with V(t).  A calendar queue (Brown
// 1988; the same idea as the kernel timing wheel) exploits that: the key
// axis is cut into power-of-two-width buckets ("days"), entries are filed
// by day in O(1) amortized, and the minimum is found by walking forward
// from the last-known-min day instead of sifting.
//
// Determinism contract (the reason this structure can replace the heap at
// all): pop()/top() yield entries in exactly the total order
//
//     KeyLess, ties broken by ascending id
//
// — bit-identical to IndexedDaryHeap.  Bucketing never reorders: the day
// function is monotone in the projected key, KeyLess orders primarily by
// that same projection, and each bucket is kept sorted under the full
// comparator, so equal-key ties resolve exactly as the heap resolves
// them.  tests/test_order_backend_diff.cc runs seeded fuzz workloads
// through both backends and asserts byte-identical departure traces;
// tests/test_util_structures.cc checks the structure against the heap
// directly.
//
// Layout.  A power-of-two number of buckets (growing 16x each time
// occupancy crosses a 10^5-seeded threshold, up to 2^16) covers one
// "year" of days; entries whose day falls beyond the current year wait in an
// overflow list and are re-bucketed lazily when the minimum search crosses
// a year boundary (which only happens once V(t) has advanced past every
// nearer key).  Each bucket is a sorted run consumed from a head index:
// the bucket minimum is one array read, popping it is an index increment,
// and an insert is a binary search plus a short tail move.  Sorted runs
// matter because WFQ workloads are *degenerate*: equal weights and fixed
// packet sizes quantize finish tags onto a grid, so dozens of flows share
// bit-identical keys — a structure that re-scans such a cluster on every
// pop is no faster than the heap it replaces.
//
// The bucket width self-tunes: every 1024 minimum-searches the average
// empty-bucket scan length, bucket occupancy, and within-bucket key span
// are inspected; the width doubles when scans run long (too sparse) and
// halves when buckets are crowded — but only if the observed span says
// splitting would actually separate the entries (a cluster of identical
// keys can never be split, and narrowing on it would run away to the
// minimum width).  Retunes rebuild in O(n log n), deterministically: the
// decision depends only on the operation sequence.
//
// OrderBackend/OrderIndex at the bottom of this header let a scheduler
// choose heap or calendar at construction while both stay compiled and
// differentially tested.

#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/indexed_heap.h"

namespace ispn::util {

/// Projects a key onto the virtual-time axis used for bucketing.  KeyLess
/// must order primarily by this projection (ties may order arbitrarily
/// within it) or the bucket partition would disagree with the comparator.
struct ScalarProject {
  double operator()(double key) const { return key; }
};

template <typename Key, typename KeyLess, typename Project = ScalarProject>
class IndexedCalendarQueue {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Entry {
    Key key;
    std::uint32_t id;
  };

  /// `width_hint` seeds the bucket width (rounded down to a power of two);
  /// the self-tuner converges from any starting point, a hint near the
  /// typical gap between adjacent keys just shortens the transient.
  explicit IndexedCalendarQueue(double width_hint = 1.0 / 16.0,
                                int bucket_bits = 8)
      : bucket_bits_(bucket_bits) {
    assert(bucket_bits_ >= 2 && bucket_bits_ <= 16);
    // The bucket array (2^bucket_bits vectors) is allocated on first
    // file(): a heap-backend OrderIndex carries this class around unused,
    // and solo-only populations never bucket anything either.
    set_width_exp(exp_of(width_hint));
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] bool contains(std::uint32_t id) const {
    return id < pos_.size() && pos_[id] != kNone;
  }

  /// Smallest entry under (KeyLess, id).  Precondition: !empty().  Not
  /// const: the cached minimum may need recomputing (bucket scan).
  [[nodiscard]] const Entry& top() {
    assert(size_ > 0);
    if (!min_valid_) find_min();
    return min_;
  }

  /// Inserts `id` with `key`, or re-keys it in place if present.
  void upsert(std::uint32_t id, Key key) {
    if (id >= pos_.size()) {
      pos_.resize(id + 1, kNone);
      keys_.resize(id + 1);
    }
    if (pos_[id] == kSolo) {
      // Lone entry re-keyed (single-flow hot path): nothing to re-file.
      min_.key = key;
      return;
    }
    if (pos_[id] != kNone) remove(id);
    insert_entry(Entry{key, id});
  }

  /// Removes and returns the smallest entry.  Precondition: !empty().
  Entry pop() {
    const Entry out = top();
    remove(out.id);  // invalidates the min cache
    return out;
  }

  /// Removes `id` if present; returns true when it was.
  bool erase(std::uint32_t id) {
    if (!contains(id)) return false;
    remove(id);
    return true;
  }

  void reserve(std::size_t ids) {
    pos_.reserve(ids);
    keys_.reserve(ids);
  }

  /// Current bucket width (diagnostic / tests).
  [[nodiscard]] double bucket_width() const {
    return std::ldexp(1.0, width_exp_);
  }

  /// Current day count exponent (grows under load; diagnostic / tests).
  [[nodiscard]] int bucket_bits() const { return bucket_bits_; }

  /// Lifetime counters (diagnostic / tests): the unit tests assert the
  /// self-tuner converges (rebuilds stop) and scans stay short.
  struct Stats {
    std::uint64_t finds = 0;          ///< min-recomputations
    std::uint64_t scanned_slots = 0;  ///< bucket slots probed across finds
    std::uint64_t rebuilds = 0;       ///< width retunes / window rebases
    std::uint64_t year_advances = 0;  ///< lazy overflow re-bucketings
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// pos_ encoding: kNone = absent; kSolo = parked as the lone entry in
  /// the min cache (never bucketed); values with kOverflowFlag set are
  /// overflow-list indexes; anything else is a bucket slot (≤ 2^16).
  static constexpr std::uint32_t kSolo = 0xfffffffeu;
  static constexpr std::uint32_t kOverflowFlag = 0x80000000u;
  static constexpr int kMinExp = -40;
  static constexpr int kMaxExp = 40;
  static constexpr std::uint32_t kRetuneSamples = 1024;
  static constexpr double kNarrowOccupancy = 3.0;
  static constexpr double kWidenScan = 8.0;
  static constexpr int kGrowBitsStep = 4;
  static constexpr int kMaxBucketBits = 16;
  static constexpr std::size_t kGrowOccupancy = 100000;

  /// One day's entries: v_[head_..) is a live run sorted under (KeyLess,
  /// id); [0, head_) is the already-popped prefix, reclaimed when the run
  /// empties or the dead prefix outgrows the live part.
  struct Bucket {
    std::vector<Entry> v;
    std::uint32_t head = 0;
    [[nodiscard]] bool live() const { return head < v.size(); }
    [[nodiscard]] std::size_t live_size() const { return v.size() - head; }
    void clear() {
      v.clear();
      head = 0;
    }
  };

  [[nodiscard]] std::int64_t num_days() const {
    return std::int64_t{1} << bucket_bits_;
  }
  [[nodiscard]] std::size_t slot_of_day(std::int64_t day) const {
    return static_cast<std::size_t>(day & (num_days() - 1));
  }

  static int exp_of(double width_hint) {
    assert(width_hint > 0);
    const int e = static_cast<int>(std::floor(std::log2(width_hint)));
    return e < kMinExp ? kMinExp : (e > kMaxExp ? kMaxExp : e);
  }

  void set_width_exp(int e) {
    width_exp_ = e;
    inv_width_ = std::ldexp(1.0, -e);
  }

  /// Monotone key -> day mapping, clamped so the int64 cast is defined for
  /// sentinel-sized keys (e.g. kTimeInfinity).
  [[nodiscard]] std::int64_t day_of(const Key& key) const {
    const double d = std::floor(project_(key) * inv_width_);
    constexpr double kLimit = 4.0e18;  // < 2^63
    if (d >= kLimit) return static_cast<std::int64_t>(kLimit);
    if (d <= -kLimit) return -static_cast<std::int64_t>(kLimit);
    return static_cast<std::int64_t>(d);
  }

  bool less(const Entry& a, const Entry& b) const {
    if (key_less_(a.key, b.key)) return true;
    if (key_less_(b.key, a.key)) return false;
    return a.id < b.id;
  }

  /// Sorted-insert into a bucket's live run.  (The bucketed machinery is
  /// kept out of line so the solo/cached fast paths — all a single-flow
  /// workload ever touches — inline small into scheduler hot loops.)
  [[gnu::noinline]] void bucket_insert(Bucket& b, const Entry& e) {
    if (!b.live()) {
      b.clear();
      b.v.push_back(e);
      return;
    }
    if (b.head > 64 && b.head > b.live_size()) {
      // Reclaim the dead prefix before it dominates the vector.
      b.v.erase(b.v.begin(), b.v.begin() + b.head);
      b.head = 0;
    }
    if (!less(e, b.v.back())) {
      // Fresh arrivals carry monotone (finish, order) tags, so they sort
      // to the end of their day's run almost always: O(1), no tail move.
      b.v.push_back(e);
      return;
    }
    const auto first = b.v.begin() + b.head;
    const auto at = std::lower_bound(
        first, b.v.end(), e,
        [this](const Entry& x, const Entry& y) { return less(x, y); });
    if (at == first && b.head > 0) {
      b.v[--b.head] = e;  // new bucket minimum: reuse a dead slot
    } else {
      b.v.insert(at, e);
    }
  }

  void insert_entry(const Entry& e) {
    if (size_ == 0) {
      // Lone entry: park it in the min cache, skipping the bucket math
      // entirely.  Single-flow workloads (one fluid epoch, one head) churn
      // through this path on every packet.
      pos_[e.id] = kSolo;
      size_ = 1;
      min_ = e;
      min_valid_ = true;
      return;
    }
    if (size_ == 1 && pos_[min_.id] == kSolo) {
      // A second entry arrives: materialise the parked one first.
      file(min_);
    }
    file(e);
    ++size_;
    if (min_valid_ && less(e, min_)) min_ = e;  // min cache survives inserts
    if (size_ >= grow_at_ && bucket_bits_ < kMaxBucketBits) grow_buckets();
  }

  /// Load-adaptive year length: the 2^8-day year that keeps scans short at
  /// hundreds of entries crams ~400 entries per day at 10^5, turning every
  /// bucket operation into a long run walk.  Each time occupancy crosses
  /// grow_at_ the day count grows 16x (up to 2^16), re-filing everything
  /// once — O(n log n), amortized away by the 16x-spaced thresholds.
  /// Grow-only: occupancy receding leaves spare (empty, cheap) buckets.
  [[gnu::noinline]] void grow_buckets() {
    bucket_bits_ =
        std::min(bucket_bits_ + kGrowBitsStep, static_cast<int>(kMaxBucketBits));
    grow_at_ *= std::size_t{1} << kGrowBitsStep;
    buckets_.resize(std::size_t{1} << bucket_bits_);
    rebuild(width_exp_, INT64_MAX);
  }

  /// Files one entry into its bucket or the overflow list.  Shared by
  /// insert_entry and solo-materialisation; does not touch size_ or the
  /// min cache.
  [[gnu::noinline]] void file(const Entry& e) {
    if (buckets_.empty()) {
      buckets_.resize(std::size_t{1} << bucket_bits_);
    }
    keys_[e.id] = e.key;  // remove_filed()'s binary-search target
    std::int64_t day = day_of(e.key);
    if (day < year_base_day_) {
      // Key behind the current year.  Virtual-time keys never regress, but
      // stay correct for callers that do: rebase the window onto this day.
      rebuild(width_exp_, day);
      day = day_of(e.key);
    }
    if (day >= year_base_day_ + num_days()) {
      pos_[e.id] =
          kOverflowFlag | static_cast<std::uint32_t>(overflow_.size());
      overflow_.push_back(e);
    } else {
      const std::size_t slot = slot_of_day(day);
      bucket_insert(buckets_[slot], e);
      pos_[e.id] = static_cast<std::uint32_t>(slot);
      if (day < scan_day_) scan_day_ = day;
    }
  }

  void remove(std::uint32_t id) {
    const std::uint32_t where = pos_[id];
    assert(where != kNone);
    if (where == kSolo) {
      pos_[id] = kNone;
      size_ = 0;
      min_valid_ = false;
      return;
    }
    remove_filed(id, where);
  }

  [[gnu::noinline]] void remove_filed(std::uint32_t id, std::uint32_t where) {
    if (where & kOverflowFlag) {
      // Overflow order is irrelevant: O(1) swap-remove by tracked index.
      const std::uint32_t at = where & ~kOverflowFlag;
      assert(at < overflow_.size() && overflow_[at].id == id);
      if (at + 1 != overflow_.size()) {
        overflow_[at] = overflow_.back();
        pos_[overflow_[at].id] = kOverflowFlag | at;
      }
      overflow_.pop_back();
    } else {
      Bucket& b = buckets_[where];
      const Entry target{keys_[id], id};
      const auto first = b.v.begin() + b.head;
      // Removing the run's front (every pop does) needs no search: the
      // target can never sort before the front, so equality means "is it".
      const auto at = !less(*first, target)
                          ? first
                          : std::lower_bound(
                                first + 1, b.v.end(), target,
                                [this](const Entry& x, const Entry& y) {
                                  return less(x, y);
                                });
      assert(at != b.v.end() && at->id == id);
      if (at == first) {
        ++b.head;
      } else {
        b.v.erase(at);
      }
      if (min_valid_ && min_.id == id) {
        // The minimum's bucket holds its whole day as a sorted run and
        // every other entry belongs to a later day, so the run's next
        // entry (if any) is the next global minimum — no scan needed.
        min_valid_ = b.live();
        if (min_valid_) min_ = b.v[b.head];
      }
      if (!b.live()) b.clear();
      pos_[id] = kNone;
      --size_;
      return;
    }
    pos_[id] = kNone;
    --size_;
    if (min_valid_ && min_.id == id) min_valid_ = false;
  }

  /// Recomputes the cached minimum: walk days forward from scan_day_; when
  /// the year is exhausted, advance it by lazily re-bucketing the overflow
  /// list.  Amortized O(1) while the width matches the key distribution —
  /// which the sampling retuner enforces.
  [[gnu::noinline]] void find_min() {
    assert(size_ > 0);
    maybe_retune();
    ++stats_.finds;
    for (;;) {
      const std::int64_t year_end = year_base_day_ + num_days();
      for (std::int64_t d = scan_day_; d < year_end; ++d) {
        ++scanned_slots_;
        ++stats_.scanned_slots;
        const Bucket& b = buckets_[slot_of_day(d)];
        if (!b.live()) continue;
        occupancy_ += b.live_size();
        span_ += project_(b.v.back().key) - project_(b.v[b.head].key);
        ++samples_;
        scan_day_ = d;
        min_ = b.v[b.head];
        min_valid_ = true;
        return;
      }
      advance_year();
    }
  }

  /// All buckets are empty: jump the year to the earliest overflow day and
  /// pull that year's entries out of the overflow list.
  void advance_year() {
    assert(!overflow_.empty());
    ++stats_.year_advances;
    std::int64_t min_day = day_of(overflow_.front().key);
    for (std::size_t i = 1; i < overflow_.size(); ++i) {
      const std::int64_t d = day_of(overflow_[i].key);
      if (d < min_day) min_day = d;
    }
    year_base_day_ = (min_day >> bucket_bits_) << bucket_bits_;
    scan_day_ = min_day;
    // Partition this year's entries out of the overflow list, then file
    // them in ascending order so each (empty) bucket receives a sorted run.
    year_moved_ += overflow_.size();  // churn signal for the width tuner
    scratch_.clear();
    std::size_t w = 0;
    for (std::size_t r = 0; r < overflow_.size(); ++r) {
      if (day_of(overflow_[r].key) < year_base_day_ + num_days()) {
        scratch_.push_back(overflow_[r]);
      } else {
        overflow_[w] = overflow_[r];
        pos_[overflow_[w].id] = kOverflowFlag | static_cast<std::uint32_t>(w);
        ++w;
      }
    }
    overflow_.resize(w);
    std::sort(scratch_.begin(), scratch_.end(),
              [this](const Entry& x, const Entry& y) { return less(x, y); });
    for (const Entry& e : scratch_) {
      const std::size_t slot = slot_of_day(day_of(e.key));
      assert(buckets_[slot].head == 0);  // buckets were all empty
      buckets_[slot].v.push_back(e);
      pos_[e.id] = static_cast<std::uint32_t>(slot);
    }
  }

  void maybe_retune() {
    if (samples_ < kRetuneSamples) return;
    const double avg_occupancy = static_cast<double>(occupancy_) / samples_;
    const double avg_scan = static_cast<double>(scanned_slots_) / samples_;
    const double avg_span = span_ / samples_;
    // Entries re-bucketed out of the overflow list per find: a year that
    // is too short (width too small for how fast V(t) moves) shows up as
    // this churn, not as long scans.
    const double year_churn = static_cast<double>(year_moved_) / samples_;
    samples_ = 0;
    occupancy_ = 0;
    scanned_slots_ = 0;
    span_ = 0;
    year_moved_ = 0;
    if (avg_occupancy > kNarrowOccupancy && width_exp_ > kMinExp &&
        avg_span * 4.0 > bucket_width()) {
      // Crowded buckets whose keys actually spread across the day: halving
      // the width will separate them.  (When the crowd is a cluster of
      // identical keys — degenerate WFQ tags — span is ~0 and narrowing
      // could never split it, so we keep the width and rely on the sorted
      // runs instead.)
      rebuild(width_exp_ - 1, INT64_MAX);
    } else if ((avg_scan > kWidenScan || year_churn > 0.5) &&
               width_exp_ < kMaxExp) {
      rebuild(width_exp_ + 1, INT64_MAX);
    }
  }

  /// Re-buckets everything under a new width.  `anchor_day` (in the NEW
  /// width's day units) additionally lower-bounds the window base; pass
  /// INT64_MAX when only the stored entries matter.
  [[gnu::noinline]] void rebuild(int new_exp, std::int64_t anchor_day) {
    ++stats_.rebuilds;
    scratch_.clear();
    scratch_.reserve(size_);
    for (Bucket& b : buckets_) {
      scratch_.insert(scratch_.end(), b.v.begin() + b.head, b.v.end());
      b.clear();
    }
    scratch_.insert(scratch_.end(), overflow_.begin(), overflow_.end());
    overflow_.clear();
    set_width_exp(new_exp);
    std::sort(scratch_.begin(), scratch_.end(),
              [this](const Entry& x, const Entry& y) { return less(x, y); });
    std::int64_t min_day = anchor_day;
    if (!scratch_.empty()) {
      min_day = std::min(min_day, day_of(scratch_.front().key));
    }
    if (min_day == INT64_MAX) min_day = 0;  // empty structure
    year_base_day_ = (min_day >> bucket_bits_) << bucket_bits_;
    scan_day_ = min_day;
    for (const Entry& e : scratch_) {
      const std::int64_t day = day_of(e.key);
      if (day >= year_base_day_ + num_days()) {
        pos_[e.id] =
            kOverflowFlag | static_cast<std::uint32_t>(overflow_.size());
        overflow_.push_back(e);
      } else {
        const std::size_t slot = slot_of_day(day);
        buckets_[slot].v.push_back(e);  // ascending feed: stays sorted
        pos_[e.id] = static_cast<std::uint32_t>(slot);
      }
    }
    min_valid_ = false;
  }

  int bucket_bits_;
  std::size_t grow_at_ = kGrowOccupancy;  // 16x after each growth
  std::vector<Bucket> buckets_;
  std::vector<Entry> overflow_;  ///< entries beyond the current year
  std::vector<Entry> scratch_;   ///< rebuild/advance staging, kept warm
  std::vector<std::uint32_t> pos_;  ///< per id: bucket slot / overflow / none
  std::vector<Key> keys_;           ///< per id: its current key
  int width_exp_ = -4;              ///< bucket width = 2^width_exp_
  double inv_width_ = 16.0;
  std::int64_t year_base_day_ = 0;  ///< first day covered by the buckets
  std::int64_t scan_day_ = 0;       ///< no bucketed entry has an earlier day
  std::size_t size_ = 0;
  Entry min_{};
  bool min_valid_ = false;
  std::uint32_t samples_ = 0;
  std::uint64_t scanned_slots_ = 0;
  std::uint64_t occupancy_ = 0;
  std::uint64_t year_moved_ = 0;
  double span_ = 0;
  Stats stats_;
  KeyLess key_less_;
  Project project_;
};

/// Which ordering structure a scheduler's virtual-time indexes use.  All
/// three yield the same total order (proven by the differential harness).
enum class OrderBackend : std::uint8_t {
  kHeap,      ///< util::IndexedDaryHeap — comparison heap, O(log n) re-keys
  kCalendar,  ///< util::IndexedCalendarQueue — bucketed, O(1) amortized
  kAuto,      ///< heap while small, calendar once it pays — the default
};

/// Runtime-selectable indexed ordering: the heap and the calendar behind
/// one interface, chosen once at construction.  Both members stay compiled
/// into every scheduler so the differential tests and benches can always
/// instantiate either.
///
/// kAuto exists because the structures win in disjoint regimes: at a
/// handful of entries the heap's two-or-three-element sifts are
/// unbeatable, while past a few dozen flows its full-depth re-keys lose to
/// the calendar's O(1) bucketing by roughly 2×.  Auto runs the heap until
/// the population crosses kAutoUp, migrates (a pop/upsert drain — O(n log
/// n), rare), and falls back below kAutoDown; the wide hysteresis band
/// keeps a jittering population from thrashing.  Migration cannot perturb
/// departure order: both structures hold exactly the same (key, id) set
/// and yield the same total order, so which one happens to serve a given
/// pop is unobservable — the differential harness checks auto against both
/// pure backends.
template <typename Key, typename KeyLess, typename Project = ScalarProject>
class OrderIndex {
 public:
  using Heap = IndexedDaryHeap<Key, KeyLess>;
  using Calendar = IndexedCalendarQueue<Key, KeyLess, Project>;
  using Entry = typename Heap::Entry;  // layout-identical to Calendar's

  static constexpr std::size_t kAutoUp = 48;    ///< heap -> calendar at ≥
  static constexpr std::size_t kAutoDown = 12;  ///< calendar -> heap at ≤

  explicit OrderIndex(OrderBackend backend, double width_hint = 1.0 / 16.0)
      : backend_(backend),
        on_calendar_(backend == OrderBackend::kCalendar),
        calendar_(width_hint) {}

  [[nodiscard]] OrderBackend backend() const { return backend_; }

  /// True while ops are routed to the calendar (fixed unless kAuto).
  [[nodiscard]] bool on_calendar() const { return on_calendar_; }

  /// The calendar member (diagnostic: width/scan stats; empty under kHeap).
  [[nodiscard]] const Calendar& calendar() const { return calendar_; }

  [[nodiscard]] bool empty() const {
    return on_calendar_ ? calendar_.empty() : heap_.empty();
  }
  [[nodiscard]] std::size_t size() const {
    return on_calendar_ ? calendar_.size() : heap_.size();
  }
  [[nodiscard]] bool contains(std::uint32_t id) const {
    return on_calendar_ ? calendar_.contains(id) : heap_.contains(id);
  }

  /// Key of the smallest entry.  Precondition: !empty().
  [[nodiscard]] const Key& top_key() {
    return on_calendar_ ? calendar_.top().key : heap_.top().key;
  }

  Entry pop() {
    if (!on_calendar_) return heap_.pop();
    const typename Calendar::Entry e = calendar_.pop();
    if (backend_ == OrderBackend::kAuto && calendar_.size() <= kAutoDown) {
      migrate_to_heap();
    }
    return Entry{e.key, e.id};
  }

  void upsert(std::uint32_t id, Key key) {
    if (on_calendar_) {
      calendar_.upsert(id, std::move(key));
    } else {
      heap_.upsert(id, std::move(key));
      if (backend_ == OrderBackend::kAuto && heap_.size() >= kAutoUp) {
        migrate_to_calendar();
      }
    }
  }

  bool erase(std::uint32_t id) {
    if (!on_calendar_) return heap_.erase(id);
    const bool hit = calendar_.erase(id);
    if (backend_ == OrderBackend::kAuto && calendar_.size() <= kAutoDown) {
      migrate_to_heap();
    }
    return hit;
  }

  void reserve(std::size_t ids) {
    heap_.reserve(ids);
    calendar_.reserve(ids);
  }

 private:
  [[gnu::noinline]] void migrate_to_calendar() {
    while (!heap_.empty()) {
      Entry e = heap_.pop();
      calendar_.upsert(e.id, std::move(e.key));
    }
    on_calendar_ = true;
  }

  [[gnu::noinline]] void migrate_to_heap() {
    while (!calendar_.empty()) {
      typename Calendar::Entry e = calendar_.pop();
      heap_.upsert(e.id, std::move(e.key));
    }
    on_calendar_ = false;
  }

  OrderBackend backend_;
  bool on_calendar_;
  Heap heap_;
  Calendar calendar_;
};

}  // namespace ispn::util
