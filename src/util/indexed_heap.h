// An indexed d-ary min-heap: one entry per small-integer id, re-keyable in
// place.
//
// WFQ-style schedulers keep two orderings whose membership is "at most one
// entry per flow": the fluid departure epochs (keyed by the flow's largest
// finish tag, re-keyed on every arrival) and the head-of-flow finish tags
// (re-keyed on every dequeue).  A lazy heap handles re-keying by pushing a
// fresh entry and discarding the superseded one when it surfaces — which
// doubles heap traffic and makes every peek validate against flow state.
// This heap instead tracks each id's position, so upsert() re-keys by
// sifting the existing entry and top() is a plain array read — no stale
// entries, no validation loads, heap size bounded by the number of flows.
//
// Ids are small dense integers (flow ids; position map is a flat vector).
// Ties order by id, matching the std::set<(key, id)> semantics this
// structure replaces.  Not stable beyond that: callers needing FIFO
// tie-breaks fold an arrival counter into Key (the head ordering does).

#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace ispn::util {

template <typename Key, typename KeyLess, unsigned Arity = 4>
class IndexedDaryHeap {
 public:
  static constexpr std::uint32_t kNone = 0xffffffffu;

  struct Entry {
    Key key;
    std::uint32_t id;
  };

  [[nodiscard]] bool empty() const { return v_.empty(); }
  [[nodiscard]] std::size_t size() const { return v_.size(); }

  [[nodiscard]] bool contains(std::uint32_t id) const {
    return id < pos_.size() && pos_[id] != kNone;
  }

  /// Smallest entry.  Precondition: !empty().
  [[nodiscard]] const Entry& top() const {
    assert(!v_.empty());
    return v_.front();
  }

  /// Inserts `id` with `key`, or re-keys it in place if present.
  void upsert(std::uint32_t id, Key key) {
    if (id >= pos_.size()) pos_.resize(id + 1, kNone);
    const std::uint32_t at = pos_[id];
    if (at == kNone) {
      v_.push_back(Entry{std::move(key), id});
      place_up(v_.size() - 1);
    } else if (less(v_[at], Entry{key, id})) {
      // Key grew (the common case: finish tags are monotone per flow).
      v_[at] = Entry{std::move(key), id};
      place_down(at);
    } else {
      v_[at] = Entry{std::move(key), id};
      place_up(at);
    }
  }

  /// Removes and returns the smallest entry.  Precondition: !empty().
  Entry pop() {
    assert(!v_.empty());
    Entry out = std::move(v_.front());
    pos_[out.id] = kNone;
    Entry last = std::move(v_.back());
    v_.pop_back();
    if (!v_.empty()) {
      v_.front() = std::move(last);
      pos_[v_.front().id] = 0;
      place_down(0);
    }
    return out;
  }

  /// Removes `id` if present; returns true when it was.
  bool erase(std::uint32_t id) {
    if (!contains(id)) return false;
    const std::uint32_t at = pos_[id];
    pos_[id] = kNone;
    Entry last = std::move(v_.back());
    v_.pop_back();
    if (at < v_.size()) {
      const std::uint32_t moved = last.id;
      v_[at] = std::move(last);
      pos_[moved] = at;
      if (at > 0 && less(v_[at], v_[(at - 1) / Arity])) {
        place_up(at);
      } else {
        place_down(at);
      }
    }
    return true;
  }

  void reserve(std::size_t ids) {
    pos_.reserve(ids);
    v_.reserve(ids);
  }

 private:
  bool less(const Entry& a, const Entry& b) const {
    if (key_less_(a.key, b.key)) return true;
    if (key_less_(b.key, a.key)) return false;
    return a.id < b.id;
  }

  /// Restores the heap property downward from `i` (entry already placed).
  void place_down(std::size_t i) {
    const std::size_t n = v_.size();
    Entry value = std::move(v_[i]);
    for (;;) {
      const std::size_t first = i * Arity + 1;
      if (first >= n) break;
      std::size_t best = first;
      const std::size_t last = std::min(first + Arity, n);
      for (std::size_t c = first + 1; c < last; ++c) {
        if (less(v_[c], v_[best])) best = c;
      }
      if (!less(v_[best], value)) break;
      v_[i] = std::move(v_[best]);
      pos_[v_[i].id] = static_cast<std::uint32_t>(i);
      i = best;
    }
    v_[i] = std::move(value);
    pos_[v_[i].id] = static_cast<std::uint32_t>(i);
  }

  /// Restores the heap property upward from `i`.
  void place_up(std::size_t i) {
    Entry value = std::move(v_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!less(value, v_[parent])) break;
      v_[i] = std::move(v_[parent]);
      pos_[v_[i].id] = static_cast<std::uint32_t>(i);
      i = parent;
    }
    v_[i] = std::move(value);
    pos_[v_[i].id] = static_cast<std::uint32_t>(i);
  }

  std::vector<Entry> v_;
  std::vector<std::uint32_t> pos_;
  KeyLess key_less_;
};

}  // namespace ispn::util
