// A hierarchical timing wheel over integer ticks.
//
// The event core's real-time ordering problem is the classic one solved by
// the Linux kernel's timer wheel (kernel/time/timer.c) and FreeBSD's
// callout wheel (kern/kern_timeout.c): most pending timers sit a short,
// bounded distance in the future, inserts vastly outnumber everything
// else, and O(log n) heap sifts — fine at a few dozen entries — become the
// dominant cost at the thousands of pending events a multi-hop,
// million-packet run keeps in flight.  A wheel makes insert O(1): bucket
// an entry by the highest radix-64 digit in which its tick differs from
// the cursor, and lazily cascade a higher-level bucket into the levels
// below when the cursor enters its range.  Each entry is relinked at most
// once per level, so the amortized per-event cost is a small constant.
//
// Unlike an OS wheel, a discrete-event simulator must pop in *exact*
// (time, seq) order, not merely per-tick order: determinism is the
// contract (the differential harness asserts byte-identical firing order
// against the binary heap).  Two properties deliver that:
//
//   * tick(t) is monotone in t, so ordering coarsely by tick and exactly
//     within a tick reproduces the global (time, seq) order;
//   * consumption happens through a sorted *run*: when the cursor reaches
//     an occupied level-0 bucket — whose entries all precede every entry
//     still bucketed later or higher — that one tick's entries are pulled
//     into one vector, sorted by the caller's comparator, and consumed
//     through a head index (the calendar queue's sorted-run idiom).  The
//     run spans exactly one tick, so only same-instant schedules from
//     inside a firing event land in the live run (placed by binary
//     search); anything even one tick out is an O(1) bucket prepend.
//     Multi-tick runs would memmove every near-future insert — a port
//     re-arming its completion a fixed tx-time out — into the middle of
//     the live run, which at packet rates costs more than all the
//     cascade relinks combined.
//
// Entries scheduled at a tick already passed by the cursor clamp into the
// active run: they sort by the exact comparator against whatever is still
// pending, which is exactly where a heap would surface them.
//
// Ticks beyond the wheel's span (64^kLevels from the cursor — days of
// simulated time at the event core's resolution; in practice only
// kTimeInfinity sentinels) sit in an overflow list that is re-bucketed on
// the rare occasion the cursor exhausts every level.
//
// Storage is an index-linked node pool: buckets are singly-linked lists of
// pool indices, so inserts, cascades and overflow re-homing are pure
// relinks — no per-bucket arrays that could re-grow when a rare alignment
// piles entries into one bucket.  The pool is split structure-of-arrays:
// (tick, next) metadata in one array, keys in another.  Cascade relinks
// read only the 16-byte metadata — at a million pending timers the pool
// outgrows every cache level, and each entry is relinked once per wheel
// level it descends, so halving the bytes a relink touches (and packing 4
// metadata records per cache line instead of ~1.5 full nodes) is a direct
// DRAM-traffic cut on the far-horizon path.  Keys are only read when a
// bucket is pulled into the run.  Both arrays and the run vector only
// ever grow to the high-water mark, so steady state performs zero heap
// allocation (asserted by the alloc-hook tests).  Not thread-safe; the
// simulator is single-threaded by design.

#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ispn::util {

/// `K` is a small POD key; `Less` a strict weak ordering consistent with
/// the tick mapping (t1 < t2 by Less implies tick(t1) <= tick(t2), which
/// any monotone quantisation of the primary sort field satisfies).
template <typename K, typename Less>
class TimingWheel {
 public:
  using Tick = std::uint64_t;

  /// 6-bit (64-slot) levels, the classic radix.  Wider levels look
  /// attractive at a million pending timers — a far timer descends
  /// fewer levels, so fewer relinks — but measure SLOWER: what matters
  /// is *cold* relinks, and with 64-slot levels every cascade below the
  /// top one re-touches a batch small enough (level-2 ~= a few thousand
  /// ticks' entries, level-1 ~= a few dozen ticks') to still be cache-
  /// resident from the relink above it, so each entry pays ~one DRAM
  /// touch no matter how many levels it descends.  256-slot levels
  /// stretch the level-1 residency window to 65k ticks, evicting the
  /// batch and turning one cold touch into two (~15% slower on the
  /// million-flow fan-in bench).
  static constexpr unsigned kLevelBits = 6;
  static constexpr unsigned kSlotsPerLevel = 1u << kLevelBits;  // 64
  static constexpr unsigned kLevels = 6;
  /// Ticks covered from the cursor before entries overflow (64^6).
  static constexpr Tick kSpan = Tick{1} << (kLevelBits * kLevels);

  TimingWheel() { buckets_.fill(kNil); }
  explicit TimingWheel(Less less) : less_(std::move(less)) {
    buckets_.fill(kNil);
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] Tick cursor() const { return cursor_; }

  /// Largest sorted run built since the last reset()/drain_into(): how
  /// crowded the worst single tick actually got.  The resolution
  /// adaptation keys off this — occupancy alone cannot distinguish a
  /// same-instant pile-up (huge sort, needs finer ticks) from many events
  /// spread across the horizon (fine as-is; escalating only multiplies
  /// refill work).
  [[nodiscard]] std::size_t max_run_length() const { return max_run_; }

  /// Inserts `k` at `tick`.  Ticks behind the cursor clamp into the active
  /// run (the "next to pop" region, matching heap behaviour).
  ///
  /// Only inserts at the run's own tick (same-instant schedules from a
  /// firing event) binary-place into the sorted run — O(1) at the tail,
  /// O(run) memmove otherwise; everything later is an O(1) bucket
  /// prepend.  If a future workload piles thousands of out-of-order keys
  /// into single ticks, raise the tick resolution (see
  /// EventQueue::kTicksPerSec) before reaching for a cleverer run
  /// structure.
  void insert(const K& k, Tick tick) {
    ++count_;
    if (tick < run_limit_ && run_active_) {
      // Inside the active window: the run is already sorted (and possibly
      // partially consumed); binary-place so the next peek stays O(1).
      const auto pos =
          std::lower_bound(run_.begin() + static_cast<std::ptrdiff_t>(head_),
                           run_.end(), k, less_);
      run_.insert(pos, k);
      max_run_ = std::max(max_run_, run_.size() - head_);
      return;
    }
    const std::uint32_t n = acquire_node();
    meta_[n].tick = tick < cursor_ ? cursor_ : tick;
    keys_[n] = k;
    link(n);
  }

  /// The entry `ahead` positions past the front, but ONLY if it is
  /// already sitting in the sorted run — nullptr otherwise (never
  /// advances the cursor or cascades).  This is the prefetch hook: the
  /// caller can touch state keyed by upcoming entries while the current
  /// one is still being processed, without perturbing ordering.
  [[nodiscard]] const K* peek_ready(std::size_t ahead = 0) const {
    const std::size_t i = head_ + ahead;
    return i < run_.size() ? &run_[i] : nullptr;
  }

  /// Earliest entry by (tick, Less); nullptr iff empty.  Advances the
  /// cursor and cascades higher levels as a side effect (ordering-internal
  /// mutation only, same contract as a heap's lazy sift).
  [[nodiscard]] const K* peek() {
    if (head_ < run_.size()) return &run_[head_];
    if (count_ == 0) return nullptr;
    for (;;) {
      if (run_active_) {
        run_.clear();
        head_ = 0;
        run_active_ = false;
      }
      // The earliest occupied level-0 bucket precedes everything still
      // bucketed later in the window or at level 1 and above.
      const int b =
          find_occupied(0, static_cast<unsigned>(cursor_ & kSlotMask));
      if (b >= 0) {
        pull_tick(static_cast<unsigned>(b));
        return &run_[head_];
      }
      refill();
      if (head_ < run_.size()) return &run_[head_];
    }
  }

  /// Removes the entry peek() would return.  Precondition: !empty().
  K pop_front() {
    const K* k = peek();
    assert(k != nullptr);
    K out = *k;
    ++head_;
    --count_;
    return out;
  }

  /// Moves every pending key into `out` (appended, in no particular
  /// order) and restarts the wheel at `cursor`.  The resolution-adaptation
  /// path: the caller re-inserts each key under a new tick mapping, and
  /// exact (time, seq) pop order is unaffected because ordering within a
  /// window is by the comparator, not the tick.
  void drain_into(std::vector<K>& out, Tick cursor) {
    out.reserve(out.size() + count_);
    for (std::size_t i = head_; i < run_.size(); ++i) out.push_back(run_[i]);
    for (const std::uint32_t head : buckets_) {
      for (std::uint32_t n = head; n != kNil; n = meta_[n].next) {
        out.push_back(keys_[n]);
      }
    }
    for (std::uint32_t n = overflow_; n != kNil; n = meta_[n].next) {
      out.push_back(keys_[n]);
    }
    reset(cursor);
  }

  /// Discards every entry and restarts the wheel at `cursor` (used when a
  /// drained queue migrates backends).  Keeps pool and run capacities.
  void reset(Tick cursor) {
    buckets_.fill(kNil);
    occ_.fill(0);
    overflow_ = kNil;
    run_.clear();
    head_ = 0;
    run_active_ = false;
    run_limit_ = 0;
    max_run_ = 0;
    count_ = 0;
    cursor_ = cursor;
    // Rebuild the node freelist wholesale; cheaper than walking lists.
    free_.clear();
    for (std::uint32_t n = 0; n < meta_.size(); ++n) free_.push_back(n);
  }

 private:
  static constexpr Tick kSlotMask = kSlotsPerLevel - 1;
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  /// Per-node bucket-list metadata; the node's key lives in keys_ at the
  /// same index.  Kept key-free so relinks never pull key cache lines.
  struct Meta {
    Tick tick = 0;
    std::uint32_t next = kNil;
  };

  /// 64-bit occupancy words per level (one word at 64 slots; the scan
  /// helpers below generalise to wider levels).
  static constexpr unsigned kOccWords = kSlotsPerLevel / 64;

  [[nodiscard]] std::uint32_t& bucket_at(unsigned level, unsigned idx) {
    return buckets_[level * kSlotsPerLevel + idx];
  }

  void occ_set(unsigned level, unsigned idx) {
    occ_[level * kOccWords + (idx >> 6)] |= Tick{1} << (idx & 63u);
  }

  void occ_clear(unsigned level, unsigned idx) {
    occ_[level * kOccWords + (idx >> 6)] &= ~(Tick{1} << (idx & 63u));
  }

  /// First occupied slot of `level` at or after `from`, or -1.  The
  /// words are cached, so the scan is a handful of cycles.
  [[nodiscard]] int find_occupied(unsigned level, unsigned from) const {
    unsigned wi = from >> 6;
    Tick word = occ_[level * kOccWords + wi] & (~Tick{0} << (from & 63u));
    for (;;) {
      if (word != 0) {
        return static_cast<int>((wi << 6) +
                                static_cast<unsigned>(std::countr_zero(word)));
      }
      if (++wi >= kOccWords) return -1;
      word = occ_[level * kOccWords + wi];
    }
  }

  std::uint32_t acquire_node() {
    std::uint32_t n;
    if (free_.empty()) {
      n = static_cast<std::uint32_t>(meta_.size());
      meta_.emplace_back();
      keys_.emplace_back();
      // Mirror the event slab's trick: keep the freelist able to hold
      // every node so releasing a burst never reallocates.
      free_.reserve(meta_.capacity());
    } else {
      n = free_.back();
      free_.pop_back();
    }
    return n;
  }

  /// Links node `n` into the bucket its tick selects relative to the
  /// cursor, or onto the overflow list.  A tick equal to the active run's
  /// tick never reaches here (insert() places it into the run), so level
  /// 0 only holds ticks strictly ahead of the run.
  void link(std::uint32_t n) {
    const Tick tick = meta_[n].tick;
    const Tick diff = tick ^ cursor_;
    unsigned level = 0;
    if (diff != 0) {
      level =
          (63u - static_cast<unsigned>(std::countl_zero(diff))) / kLevelBits;
      if (level >= kLevels) {
        meta_[n].next = overflow_;
        overflow_ = n;
        return;
      }
    }
    const unsigned idx =
        static_cast<unsigned>((tick >> (level * kLevelBits)) & kSlotMask);
    std::uint32_t& head = bucket_at(level, idx);
    meta_[n].next = head;
    head = n;
    occ_set(level, idx);
  }

  /// Appends a node list's keys to the run, returning the nodes.
  void pull_list(std::uint32_t n) {
    while (n != kNil) {
      const std::uint32_t next = meta_[n].next;
      run_.push_back(keys_[n]);
      free_.push_back(n);
      n = next;
    }
  }

  void finish_run(Tick limit) {
    if (run_.size() > 1) std::sort(run_.begin(), run_.end(), less_);
    max_run_ = std::max(max_run_, run_.size());
    head_ = 0;
    run_active_ = true;
    run_limit_ = limit;
  }

  /// Pulls level-0 bucket `b` (the earliest occupied slot at or past the
  /// cursor) into a sorted run spanning exactly that tick.
  void pull_tick(unsigned b) {
    cursor_ = (cursor_ & ~kSlotMask) | static_cast<Tick>(b);
    pull_list(bucket_at(0, b));
    bucket_at(0, b) = kNil;
    occ_clear(0, b);
    finish_run(cursor_ + 1);
  }

  /// One lazy-cascade step: enter the next occupied bucket of the lowest
  /// non-empty level and relink its entries one level down (level-1
  /// entries spill into level-0 tick buckets, keeping runs single-tick);
  /// the caller rescans from level 0.  An empty wheel with overflow
  /// entries re-homes them.  Precondition: count_ > head_==run
  /// exhausted, level-0 window empty.
  void refill() {
    for (unsigned level = 1; level < kLevels; ++level) {
      const unsigned idx = static_cast<unsigned>(
          (cursor_ >> (level * kLevelBits)) & kSlotMask);
      // Buckets at the cursor's own index hold nothing (their entries
      // cascaded when the cursor entered), so scanning from idx is safe.
      const int found = find_occupied(level, idx);
      if (found < 0) continue;
      const unsigned b = static_cast<unsigned>(found);
      const Tick stride = Tick{1} << (level * kLevelBits);
      cursor_ = (cursor_ & ~(stride * kSlotsPerLevel - 1)) |
                (static_cast<Tick>(b) * stride);
      occ_clear(level, b);
      std::uint32_t n = bucket_at(level, b);
      bucket_at(level, b) = kNil;
      while (n != kNil) {
        const std::uint32_t next = meta_[n].next;
        link(n);  // spills strictly below `level`; pure relink
        n = next;
      }
      return;  // caller rescans from level 0
    }
    // Every level is empty: remaining entries live past the wheel's span.
    assert(overflow_ != kNil);
    rehome_overflow();
  }

  /// Jumps the cursor to the earliest overflow tick and re-buckets every
  /// overflow entry now within the span.  Rare by construction.
  void rehome_overflow() {
    Tick min_tick = meta_[overflow_].tick;
    for (std::uint32_t n = overflow_; n != kNil; n = meta_[n].next) {
      min_tick = std::min(min_tick, meta_[n].tick);
    }
    cursor_ = min_tick;
    std::uint32_t n = overflow_;
    overflow_ = kNil;  // detach: link() may push still-far entries back
    while (n != kNil) {
      const std::uint32_t next = meta_[n].next;
      link(n);
      n = next;
    }
  }

  std::array<std::uint32_t, kLevels * kSlotsPerLevel> buckets_{};
  std::array<Tick, kLevels * kOccWords> occ_{};
  std::uint32_t overflow_ = kNil;
  std::vector<Meta> meta_;  ///< bucket-list links; keys_[i] pairs with meta_[i]
  std::vector<K> keys_;
  std::vector<std::uint32_t> free_;
  std::vector<K> run_;  ///< sorted entries of the active level-0 window
  Tick cursor_ = 0;
  Tick run_limit_ = 0;  ///< first tick past the active window
  std::size_t head_ = 0;  ///< consumed prefix of the run
  bool run_active_ = false;
  std::size_t max_run_ = 0;  ///< high-water run size since reset
  std::size_t count_ = 0;
  Less less_;
};

}  // namespace ispn::util
