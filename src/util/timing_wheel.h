// A hierarchical timing wheel over integer ticks.
//
// The event core's real-time ordering problem is the classic one solved by
// the Linux kernel's timer wheel (kernel/time/timer.c) and FreeBSD's
// callout wheel (kern/kern_timeout.c): most pending timers sit a short,
// bounded distance in the future, inserts vastly outnumber everything
// else, and O(log n) heap sifts — fine at a few dozen entries — become the
// dominant cost at the thousands of pending events a multi-hop,
// million-packet run keeps in flight.  A wheel makes insert O(1): bucket
// an entry by the highest radix-64 digit in which its tick differs from
// the cursor, and lazily cascade a higher-level bucket into the levels
// below when the cursor enters its range.  Each entry is relinked at most
// once per level, so the amortized per-event cost is a small constant.
//
// Unlike an OS wheel, a discrete-event simulator must pop in *exact*
// (time, seq) order, not merely per-tick order: determinism is the
// contract (the differential harness asserts byte-identical firing order
// against the binary heap).  Two properties deliver that:
//
//   * tick(t) is monotone in t, so ordering coarsely by tick and exactly
//     within a tick window reproduces the global (time, seq) order;
//   * consumption happens through a sorted *run*: when the cursor enters a
//     64-tick level-0 window — whose entries all precede every entry still
//     bucketed at level 1 and above — the window's entries are pulled into
//     one vector, sorted by the caller's comparator, and consumed through
//     a head index (the calendar queue's sorted-run idiom).  Entries
//     landing inside the active window after the sort (same-instant or
//     near-instant schedules from inside a firing event) are placed by
//     binary search.
//
// Entries scheduled at a tick already passed by the cursor clamp into the
// active run: they sort by the exact comparator against whatever is still
// pending, which is exactly where a heap would surface them.
//
// Ticks beyond the wheel's span (64^kLevels from the cursor — days of
// simulated time at the event core's resolution; in practice only
// kTimeInfinity sentinels) sit in an overflow list that is re-bucketed on
// the rare occasion the cursor exhausts every level.
//
// Storage is an index-linked node pool: buckets are singly-linked lists of
// pool indices, so inserts, cascades and overflow re-homing are pure
// relinks — no per-bucket arrays that could re-grow when a rare alignment
// piles entries into one bucket.  The pool and the run vector only ever
// grow to the high-water mark, so steady state performs zero heap
// allocation (asserted by the alloc-hook tests).  Not thread-safe; the
// simulator is single-threaded by design.

#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ispn::util {

/// `K` is a small POD key; `Less` a strict weak ordering consistent with
/// the tick mapping (t1 < t2 by Less implies tick(t1) <= tick(t2), which
/// any monotone quantisation of the primary sort field satisfies).
template <typename K, typename Less>
class TimingWheel {
 public:
  using Tick = std::uint64_t;

  static constexpr unsigned kLevelBits = 6;
  static constexpr unsigned kSlotsPerLevel = 1u << kLevelBits;  // 64
  static constexpr unsigned kLevels = 6;
  /// Ticks covered from the cursor before entries overflow (64^6).
  static constexpr Tick kSpan = Tick{1} << (kLevelBits * kLevels);

  TimingWheel() { buckets_.fill(kNil); }
  explicit TimingWheel(Less less) : less_(std::move(less)) {
    buckets_.fill(kNil);
  }

  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] Tick cursor() const { return cursor_; }

  /// Inserts `k` at `tick`.  Ticks behind the cursor clamp into the active
  /// run (the "next to pop" region, matching heap behaviour).
  ///
  /// An insert landing inside the active window binary-places into the
  /// sorted run: O(1) when it lands at the tail (the common monotone
  /// pattern — e.g. a port re-arming its completion a fixed tx-time out),
  /// O(run) memmove otherwise.  If a future fabric keeps thousands of
  /// out-of-order keys pending inside one 64-tick window, shrink the
  /// window by raising the tick resolution (see EventQueue::kTicksPerSec)
  /// before reaching for a cleverer run structure.
  void insert(const K& k, Tick tick) {
    ++count_;
    if (tick < run_limit_ && run_active_) {
      // Inside the active window: the run is already sorted (and possibly
      // partially consumed); binary-place so the next peek stays O(1).
      const auto pos =
          std::lower_bound(run_.begin() + static_cast<std::ptrdiff_t>(head_),
                           run_.end(), k, less_);
      run_.insert(pos, k);
      return;
    }
    const std::uint32_t n = acquire_node();
    pool_[n].tick = tick < cursor_ ? cursor_ : tick;
    pool_[n].key = k;
    link(n);
  }

  /// Earliest entry by (tick, Less); nullptr iff empty.  Advances the
  /// cursor and cascades higher levels as a side effect (ordering-internal
  /// mutation only, same contract as a heap's lazy sift).
  [[nodiscard]] const K* peek() {
    if (head_ < run_.size()) return &run_[head_];
    if (count_ == 0) return nullptr;
    for (;;) {
      if (run_active_) {
        run_.clear();
        head_ = 0;
        run_active_ = false;
      }
      // Entries linked into the current level-0 window precede everything
      // still bucketed at level 1 and above; pull them all at once.
      const Tick word0 =
          occ_[0] & (~Tick{0} << static_cast<unsigned>(cursor_ & kSlotMask));
      if (word0 != 0) {
        pull_window(word0);
        return &run_[head_];
      }
      refill();
      if (head_ < run_.size()) return &run_[head_];
    }
  }

  /// Removes the entry peek() would return.  Precondition: !empty().
  K pop_front() {
    const K* k = peek();
    assert(k != nullptr);
    K out = *k;
    ++head_;
    --count_;
    return out;
  }

  /// Discards every entry and restarts the wheel at `cursor` (used when a
  /// drained queue migrates backends).  Keeps pool and run capacities.
  void reset(Tick cursor) {
    buckets_.fill(kNil);
    occ_.fill(0);
    overflow_ = kNil;
    run_.clear();
    head_ = 0;
    run_active_ = false;
    run_limit_ = 0;
    count_ = 0;
    cursor_ = cursor;
    // Rebuild the node freelist wholesale; cheaper than walking lists.
    free_.clear();
    for (std::uint32_t n = 0; n < pool_.size(); ++n) free_.push_back(n);
  }

 private:
  static constexpr Tick kSlotMask = kSlotsPerLevel - 1;
  static constexpr std::uint32_t kNil = ~std::uint32_t{0};

  struct Node {
    Tick tick = 0;
    K key{};
    std::uint32_t next = kNil;
  };

  [[nodiscard]] std::uint32_t& bucket_at(unsigned level, unsigned idx) {
    return buckets_[level * kSlotsPerLevel + idx];
  }

  std::uint32_t acquire_node() {
    std::uint32_t n;
    if (free_.empty()) {
      n = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
      // Mirror the event slab's trick: keep the freelist able to hold
      // every node so releasing a burst never reallocates.
      free_.reserve(pool_.capacity());
    } else {
      n = free_.back();
      free_.pop_back();
    }
    return n;
  }

  /// Links node `n` into the bucket its tick selects relative to the
  /// cursor, or onto the overflow list.  While a run is active, level 0
  /// receives nothing (in-window ticks went into the run), so level-0
  /// links occur only on a fresh or reset wheel.
  void link(std::uint32_t n) {
    const Tick tick = pool_[n].tick;
    const Tick diff = tick ^ cursor_;
    unsigned level = 0;
    if (diff != 0) {
      level =
          (63u - static_cast<unsigned>(std::countl_zero(diff))) / kLevelBits;
      if (level >= kLevels) {
        pool_[n].next = overflow_;
        overflow_ = n;
        return;
      }
    }
    const unsigned idx =
        static_cast<unsigned>((tick >> (level * kLevelBits)) & kSlotMask);
    std::uint32_t& head = bucket_at(level, idx);
    pool_[n].next = head;
    head = n;
    occ_[level] |= Tick{1} << idx;
  }

  /// Appends a node list's keys to the run, returning the nodes.
  void pull_list(std::uint32_t n) {
    while (n != kNil) {
      const std::uint32_t next = pool_[n].next;
      run_.push_back(pool_[n].key);
      free_.push_back(n);
      n = next;
    }
  }

  void finish_run(Tick window_base) {
    if (run_.size() > 1) std::sort(run_.begin(), run_.end(), less_);
    head_ = 0;
    run_active_ = true;
    run_limit_ = window_base + kSlotsPerLevel;
  }

  /// Pulls every occupied level-0 bucket at or past the cursor (the set
  /// bits of `word0`) into one sorted run.
  void pull_window(Tick word0) {
    const Tick base = cursor_ & ~kSlotMask;
    cursor_ = base | static_cast<Tick>(std::countr_zero(word0));
    Tick word = word0;
    while (word != 0) {
      const unsigned b = static_cast<unsigned>(std::countr_zero(word));
      word &= word - 1;
      pull_list(bucket_at(0, b));
      bucket_at(0, b) = kNil;
    }
    occ_[0] &= ~word0;
    finish_run(base);
  }

  /// One lazy-cascade step: enter the next occupied bucket of the lowest
  /// non-empty level.  A level-1 bucket — whose 64-tick range precedes
  /// every other bucketed entry — becomes the run directly; higher levels
  /// relink one level down and the caller rescans; an empty wheel with
  /// overflow entries re-homes them.  Precondition: count_ > head_==run
  /// exhausted, level-0 window empty.
  void refill() {
    for (unsigned level = 1; level < kLevels; ++level) {
      const unsigned idx = static_cast<unsigned>(
          (cursor_ >> (level * kLevelBits)) & kSlotMask);
      // Buckets at the cursor's own index hold nothing (their entries
      // cascaded when the cursor entered), so masking from idx is safe.
      const Tick word = occ_[level] & (~Tick{0} << idx);
      if (word == 0) continue;
      const unsigned b = static_cast<unsigned>(std::countr_zero(word));
      const Tick stride = Tick{1} << (level * kLevelBits);
      cursor_ = (cursor_ & ~(stride * kSlotsPerLevel - 1)) |
                (static_cast<Tick>(b) * stride);
      occ_[level] &= ~(Tick{1} << b);
      std::uint32_t n = bucket_at(level, b);
      bucket_at(level, b) = kNil;
      if (level == 1) {
        // The new level-0 window; no lower bucket can hold entries for it.
        pull_list(n);
        finish_run(cursor_);
        return;
      }
      while (n != kNil) {
        const std::uint32_t next = pool_[n].next;
        link(n);  // spills strictly below `level`; pure relink
        n = next;
      }
      return;  // caller rescans from level 0
    }
    // Every level is empty: remaining entries live past the wheel's span.
    assert(overflow_ != kNil);
    rehome_overflow();
  }

  /// Jumps the cursor to the earliest overflow tick and re-buckets every
  /// overflow entry now within the span.  Rare by construction.
  void rehome_overflow() {
    Tick min_tick = pool_[overflow_].tick;
    for (std::uint32_t n = overflow_; n != kNil; n = pool_[n].next) {
      min_tick = std::min(min_tick, pool_[n].tick);
    }
    cursor_ = min_tick;
    std::uint32_t n = overflow_;
    overflow_ = kNil;  // detach: link() may push still-far entries back
    while (n != kNil) {
      const std::uint32_t next = pool_[n].next;
      link(n);
      n = next;
    }
  }

  std::array<std::uint32_t, kLevels * kSlotsPerLevel> buckets_{};
  std::array<Tick, kLevels> occ_{};
  std::uint32_t overflow_ = kNil;
  std::vector<Node> pool_;
  std::vector<std::uint32_t> free_;
  std::vector<K> run_;  ///< sorted entries of the active level-0 window
  Tick cursor_ = 0;
  Tick run_limit_ = 0;  ///< first tick past the active window
  std::size_t head_ = 0;  ///< consumed prefix of the run
  bool run_active_ = false;
  std::size_t count_ = 0;
  Less less_;
};

}  // namespace ispn::util
