// Single-producer / single-consumer lock-free ring buffer.
//
// Backing store for the cross-shard packet mailboxes (net/handoff.h): the
// producer is the shard that owns the transmitting port, the consumer is
// the shard coordinator draining at a lookahead barrier.  Capacity is
// fixed at construction (rounded up to a power of two) so the steady
// state never allocates; callers that must not lose entries handle the
// full case themselves (LinkMailbox spills to an overflow vector, which
// is safe there because the consumer only drains between windows).
//
// Memory ordering is the classic two-counter scheme: the producer
// publishes with a release store of head_, the consumer acquires it; the
// consumer frees slots with a release store of tail_, the producer
// acquires that.  Each counter is written by exactly one thread, so no
// CAS is needed anywhere.

#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>

namespace ispn::util {

template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 1;
    while (cap < min_capacity) cap <<= 1;
    capacity_ = cap;
    mask_ = cap - 1;
    slots_ = std::make_unique<T[]>(cap);
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  std::size_t capacity() const { return capacity_; }

  /// Producer side.  Returns false (and leaves `v` untouched) when full.
  bool try_push(const T& v) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    if (head - tail >= capacity_) return false;
    slots_[head & mask_] = v;
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side.  Returns false when empty.
  bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    if (tail == head) return false;
    out = std::move(slots_[tail & mask_]);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer-side size estimate (exact when the producer is quiescent,
  /// e.g. at a lookahead barrier).
  std::size_t size() const {
    return static_cast<std::size_t>(head_.load(std::memory_order_acquire) -
                                    tail_.load(std::memory_order_acquire));
  }

  bool empty() const { return size() == 0; }

 private:
  std::unique_ptr<T[]> slots_;
  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  alignas(64) std::atomic<std::uint64_t> head_{0};  // producer-owned
  alignas(64) std::atomic<std::uint64_t> tail_{0};  // consumer-owned
};

}  // namespace ispn::util
