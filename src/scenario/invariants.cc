#include "scenario/invariants.h"

#include <cmath>
#include <sstream>

namespace ispn::scenario {

namespace {

/// Relative tolerance for floating reservation sums: admission and the
/// schedulers accumulate the same rates in different orders, so they may
/// disagree by rounding residue but never by a real reservation.
constexpr double kRateTolerance = 1e-6;

}  // namespace

std::size_t InvariantMonitor::audit(sim::Time now, const Ledger& ledger) {
  const std::size_t before = violations_.size();
  check_conservation(now, ledger);
  check_admission(now);
  check_schedulers(now);
  ++audits_;
  return violations_.size() - before;
}

void InvariantMonitor::check_conservation(sim::Time now,
                                          const Ledger& ledger) {
  if (ledger.generated != ledger.source_drops + ledger.injected) {
    std::ostringstream out;
    out << "generated " << ledger.generated << " != source_drops "
        << ledger.source_drops << " + injected " << ledger.injected;
    violate(now, "conservation", out.str());
  }
  const std::uint64_t accounted =
      ledger.delivered + ledger.net_drops + ledger.failed_link_drops +
      ledger.node_failure_drops + ledger.fault_drops + ledger.queued +
      ledger.in_transit + ledger.unclaimed;
  if (ledger.injected != accounted) {
    std::ostringstream out;
    out << "injected " << ledger.injected << " != delivered "
        << ledger.delivered << " + net_drops " << ledger.net_drops
        << " + failed_link " << ledger.failed_link_drops << " + node_failure "
        << ledger.node_failure_drops << " + fault " << ledger.fault_drops
        << " + queued " << ledger.queued << " + in_transit "
        << ledger.in_transit << " + unclaimed " << ledger.unclaimed << " = "
        << accounted;
    violate(now, "conservation", out.str());
  }
}

void InvariantMonitor::check_admission(sim::Time now) {
  core::AdmissionController& adm = ispn_->admission();
  const double quota = adm.config().datagram_quota;
  for (const core::LinkId& link : ispn_->links()) {
    const sim::Rate mu = adm.link_rate(link);
    const sim::Rate g = adm.guaranteed_rate(link);
    const sim::Rate p = adm.predicted_rate(link);
    const double tol = kRateTolerance * mu;
    std::ostringstream where;
    where << "link (" << link.first << "->" << link.second << "): ";
    if (g < -tol || p < -tol) {
      std::ostringstream out;
      out << where.str() << "negative reservation sum: guaranteed " << g
          << ", predicted " << p;
      violate(now, "admission", out.str());
    }
    // Committed WFQ clock rates must fit under the non-datagram share —
    // request() enforces this at admit time; a brown-out re-validation
    // that failed to shed over-committed flows breaks it afterwards.
    if (g > (1.0 - quota) * mu + tol) {
      std::ostringstream out;
      out << where.str() << "guaranteed " << g << " b/s over the "
          << (1.0 - quota) * mu << " b/s non-datagram share of mu=" << mu;
      violate(now, "admission", out.str());
    }
    // The commitment map and the data plane must agree: every committed
    // guaranteed rate has a matching scheduler registration and vice
    // versa.
    const sim::Rate sched_g = ispn_->scheduler(link).guaranteed_rate();
    if (std::abs(sched_g - g) > tol) {
      std::ostringstream out;
      out << where.str() << "admission guaranteed " << g
          << " b/s != scheduler registered " << sched_g << " b/s";
      violate(now, "admission", out.str());
    }
  }
}

void InvariantMonitor::check_schedulers(sim::Time now) {
  for (const core::LinkId& link : ispn_->links()) {
    std::string why;
    if (!ispn_->scheduler(link).self_check(&why)) {
      std::ostringstream out;
      out << "link (" << link.first << "->" << link.second << "): " << why;
      violate(now, "scheduler", out.str());
    }
  }
}

void InvariantMonitor::violate(sim::Time now, const char* check,
                               std::string detail) {
  violations_.push_back(Violation{now, check, std::move(detail)});
}

std::string InvariantMonitor::report() const {
  std::ostringstream out;
  for (const Violation& v : violations_) {
    out << "t=" << v.time << " " << v.check << ": " << v.detail << "\n";
  }
  return out.str();
}

}  // namespace ispn::scenario
