// ScenarioRunner: executes one ScenarioSpec end to end.
//
// The runner owns an IspnNetwork, builds the spec's fabric, and drives a
// LIVE workload: flows arrive over simulated time (Poisson arrivals, or
// one deterministic batch at t=0 for bench/soak specs), each presents a
// FlowSpec to the admission controller — whose ν̂ / d̂_j inputs come from
// the per-link measurement modules fed by the very traffic already
// admitted — and is admitted, rejected, or (optionally) makes room by
// preempting the youngest predicted flow on the refusing link.  Admitted
// flows get a source and a counting sink, hold for an exponential time,
// then stop and close (guaranteed flows wait for their WFQ queues to
// drain before releasing their clock rate).
//
// Every decision lands in the ScenarioReport's admission log and every
// delivery in O(1) per-class aggregates, so the golden-trace suite can
// hash a full run and the million-packet soak stays allocation-free in
// steady state.
//
// Driving modes:
//   * run()            — the whole scenario: prepare + drain + report.
//   * prepare() + net().sim().run_until(...) + finish() — incremental
//     (bench_scenario slices wall-clock time this way).

#pragma once

#include <deque>
#include <memory>
#include <vector>

#include "net/tracer.h"
#include "scenario/fabric.h"
#include "scenario/report.h"
#include "scenario/scenario.h"
#include "traffic/source.h"

namespace ispn::scenario {

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);

  /// Builds the fabric and schedules the workload.  Idempotent.
  void prepare();

  /// prepare(), run the simulation to completion (arrivals end, sources
  /// stop at run_seconds, queues drain), then finish().
  ScenarioReport run();

  /// Stops every active source, drains the simulator, and assembles the
  /// report (callable once, after manual driving or inside run()).
  ScenarioReport finish();

  /// Optional: route every delivery through `tracer` (wrap_sink) so the
  /// golden-trace suite sees deliver records too.  Set before prepare().
  void set_tracer(net::PacketTracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] core::IspnNetwork& ispn() { return ispn_; }
  [[nodiscard]] net::Network& net() { return ispn_.net(); }
  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }

  /// The built fabric (valid after prepare()).
  [[nodiscard]] const Fabric& fabric() const { return fabric_; }

  /// Packets delivered so far across all flows (bench progress counter).
  [[nodiscard]] std::uint64_t delivered() const { return delivered_total_; }

  /// Admission decisions so far (grows during the run).
  [[nodiscard]] const std::vector<AdmissionDecision>& decisions() const {
    return decisions_;
  }

 private:
  struct FlowRec;

  /// Per-flow counting sink: O(1) per packet, feeds the per-class
  /// aggregates and the flow's own tallies.
  class Sink final : public net::FlowSink {
   public:
    Sink(ScenarioRunner* runner, FlowRec* rec)
        : runner_(runner), rec_(rec) {}
    void on_packet(net::PacketPtr p, sim::Time now) override;

   private:
    ScenarioRunner* runner_;
    FlowRec* rec_;
  };

  struct FlowRec {
    core::IspnNetwork::FlowHandle handle;
    std::unique_ptr<traffic::Source> source;
    std::unique_ptr<Sink> sink;
    sim::Time opened = 0;
    sim::Time closed = -1;
    std::uint64_t delivered = 0;
    double max_delay = 0;
    double bound = 0;
    double last_delay = 0;  ///< previous delivery's delay (jitter deltas)
    bool has_last = false;
    bool active = false;  ///< admitted and not yet closed
    int reroutes = 0;     ///< successful re-admissions after path failures
    bool degraded = false;  ///< refused re-admission; carried as datagram
  };

  void schedule_next_arrival();
  void on_arrival();
  [[nodiscard]] core::FlowSpec draw_spec();
  /// Opens one flow (admission + source + sink + departure schedule).
  /// `start_offset` staggers the source's first emission.
  void open_flow(const core::FlowSpec& fs, sim::Duration start_offset);
  /// Tears down the youngest active predicted flow crossing `link`;
  /// returns true when a victim was found.
  bool preempt_on(core::LinkId link);
  void attach_source(FlowRec& rec, sim::Duration start_offset);
  /// Assembles the failure schedule (explicit specs + the seeded
  /// generator) and registers every event with the simulator.  Called
  /// once from prepare(); the whole schedule is drawn up front so the
  /// failure Rng stream never interleaves with workload decisions.
  void schedule_failures();
  /// Applies one link up/down event, then re-validates affected flows.
  void on_link_event(net::NodeId a, net::NodeId b, bool up);
  /// Re-offers every admitted real-time flow whose current shortest path
  /// no longer matches its scheduler registrations (paper §9 criteria
  /// against the live measurements).
  void revalidate_active_flows();
  void record(const AdmissionDecision& d);
  void depart_later(net::FlowId flow);
  void try_close(net::FlowId flow);
  void stop_all();
  [[nodiscard]] std::uint64_t queued_now();

  ScenarioSpec spec_;
  core::IspnNetwork ispn_;
  Fabric fabric_;
  net::PacketTracer* tracer_ = nullptr;
  sim::Rng rng_;

  bool prepared_ = false;
  bool finished_ = false;
  bool halted_ = false;  ///< workload ended: arrivals become no-ops
  sim::Duration arrival_deadline_ = 0;
  net::FlowId next_flow_ = 0;
  int open_count_ = 0;
  std::deque<FlowRec> flows_;          ///< indexed by FlowId; stable refs
  std::vector<net::FlowId> active_;    ///< open order (preemption scans back)
  std::vector<AdmissionDecision> decisions_;
  std::array<ClassStats, 3> classes_{};
  std::uint64_t delivered_total_ = 0;
  std::uint64_t flows_admitted_ = 0;
  std::uint64_t flows_rejected_ = 0;
  std::uint64_t flows_preempted_ = 0;
  std::uint64_t links_failed_ = 0;
  std::uint64_t links_repaired_ = 0;
  std::uint64_t flows_rerouted_ = 0;
  std::uint64_t flows_degraded_ = 0;
  std::uint64_t flows_orphaned_ = 0;
};

}  // namespace ispn::scenario
