// ScenarioRunner: executes one ScenarioSpec end to end.
//
// The runner owns an IspnNetwork, builds the spec's fabric, and drives a
// LIVE workload: flows arrive over simulated time (Poisson arrivals, or
// one deterministic batch at t=0 for bench/soak specs), each presents a
// FlowSpec to the admission controller — whose ν̂ / d̂_j inputs come from
// the per-link measurement modules fed by the very traffic already
// admitted — and is admitted, rejected, or (optionally) makes room by
// preempting the youngest predicted flow on the refusing link.  Admitted
// flows get a source and a counting sink, hold for an exponential time,
// then stop and close (guaranteed flows wait for their WFQ queues to
// drain before releasing their clock rate).
//
// Every decision lands in the ScenarioReport's admission log and every
// delivery in O(1) per-class aggregates, so the golden-trace suite can
// hash a full run and the million-packet soak stays allocation-free in
// steady state.
//
// Driving modes:
//   * run()            — the whole scenario: prepare + drain + report.
//   * prepare() + advance(...) + finish() — incremental (bench_scenario
//     slices wall-clock time this way; advance() is engine-aware).
//
// Sharded execution (spec.shards >= 1): the runner builds the network in
// per-switch domains (net/network.h) and drives them with a ShardedEngine
// (sim/shard.h).  Two disciplines keep it deterministic:
//   * every CONTROL event the runner schedules — arrivals, departures,
//     drain retries, failures, the global stop — is quantized onto the
//     window grid with ctl(), so admission and teardown always execute at
//     barriers, never while domain threads run;
//   * per-delivery aggregation is per-DOMAIN (DomainAgg), merged once in
//     finish(), so no counter is shared across threads and the merged
//     report is a function of the domain decomposition (the topology),
//     not of the worker count.

#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "fault/fault.h"
#include "net/tracer.h"
#include "scenario/fabric.h"
#include "scenario/invariants.h"
#include "scenario/report.h"
#include "scenario/scenario.h"
#include "sim/shard.h"
#include "traffic/source.h"
#include "traffic/tcp.h"

namespace ispn::scenario {

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);

  /// Builds the fabric and schedules the workload.  Idempotent.
  void prepare();

  /// prepare(), run the simulation to completion (arrivals end, sources
  /// stop at run_seconds, queues drain), then finish().
  ScenarioReport run();

  /// Stops every active source, drains the simulator, and assembles the
  /// report (callable once, after manual driving or inside run()).
  ScenarioReport finish();

  /// Optional: route every delivery through `tracer` (wrap_sink) so the
  /// golden-trace suite sees deliver records too.  Set before prepare().
  void set_tracer(net::PacketTracer* tracer) { tracer_ = tracer; }

  [[nodiscard]] core::IspnNetwork& ispn() { return ispn_; }
  [[nodiscard]] net::Network& net() { return ispn_.net(); }
  [[nodiscard]] const ScenarioSpec& spec() const { return spec_; }

  /// The built fabric (valid after prepare()).
  [[nodiscard]] const Fabric& fabric() const { return fabric_; }

  /// Advances simulated time to `horizon`, dispatching to the sharded
  /// engine when one is active (benches slice runs this way).  Call only
  /// after prepare(); always leaves the run at a barrier.
  void advance(sim::Time horizon);

  /// Events processed so far (control + every domain when sharded).
  [[nodiscard]] std::uint64_t events_processed();

  /// The sharded engine, or nullptr on the classic single-clock path.
  [[nodiscard]] sim::ShardedEngine* engine() { return engine_.get(); }

  /// Packets delivered so far across all flows (bench progress counter).
  /// Summed over the per-domain aggregates; call at barriers only.
  [[nodiscard]] std::uint64_t delivered() const {
    std::uint64_t n = 0;
    for (const DomainAgg& a : aggs_) n += a.delivered;
    return n;
  }

  /// Admission decisions so far (grows during the run).
  [[nodiscard]] const std::vector<AdmissionDecision>& decisions() const {
    return decisions_;
  }

  /// The invariant monitor, or nullptr when invariant_cadence is 0.
  [[nodiscard]] InvariantMonitor* monitor() { return monitor_.get(); }

  /// Runs one invariant audit against the live engine state right now
  /// (the cadence timer calls this; tests call it directly — e.g. the
  /// monitor self-test, which corrupts a ledger counter and asserts the
  /// sweep catches it).  Returns the number of new violations; 0 when no
  /// monitor is configured.  Call between events / at barriers only.
  std::size_t audit_now();

 private:
  struct FlowRec;

  /// Per-class delivery aggregates for one domain (one instance total on
  /// the classic path).  Each domain's sinks write only their own entry —
  /// single-writer, no sharing — and finish() merges across domains in
  /// index order, so the merged result is shard-count invariant.
  struct DomainAgg {
    std::array<ClassStats, 3> classes{};
    std::uint64_t delivered = 0;
  };

  /// Per-flow counting sink: O(1) per packet, feeds the owning domain's
  /// aggregates and the flow's own tallies.  Runs on the destination
  /// host's domain thread in sharded mode.
  class Sink final : public net::FlowSink {
   public:
    Sink(FlowRec* rec, DomainAgg* agg) : rec_(rec), agg_(agg) {}
    void on_packet(net::PacketPtr p, sim::Time now) override;
    /// Chains a downstream consumer (the responsive flows' TcpSink, which
    /// turns the delivered data into an ACK stream).  Counting first, then
    /// forward — the transport sees the packet after the ledger does.
    void set_next(net::FlowSink* next) { next_ = next; }

   private:
    FlowRec* rec_;
    DomainAgg* agg_;
    net::FlowSink* next_ = nullptr;
  };

  /// ACK-path counting sink at the SOURCE host: ledger-only (the reverse
  /// stream must balance the conservation equation) — ACK deliveries never
  /// touch the per-class delay statistics.  Runs on the source host's
  /// domain thread in sharded mode, so it aggregates into that domain's
  /// single-writer slot.
  class AckSink final : public net::FlowSink {
   public:
    AckSink(DomainAgg* agg, net::FlowSink* next) : agg_(agg), next_(next) {}
    void on_packet(net::PacketPtr p, sim::Time now) override {
      ++agg_->delivered;
      next_->on_packet(std::move(p), now);
    }

   private:
    DomainAgg* agg_;
    net::FlowSink* next_;
  };

  struct FlowRec {
    core::IspnNetwork::FlowHandle handle;
    std::unique_ptr<traffic::Source> source;
    // The sink is embedded (not heap-allocated) and kept adjacent to the
    // per-delivery tallies it updates: warming the sink object — the
    // ports' delivery prefetch does exactly that one transmission ahead —
    // then also warms this record, so at million-flow scale a delivery
    // costs one cold cache line instead of two.  FlowRec addresses are
    // stable (flows_ is a deque, records are emplaced and never moved),
    // so the self-referential sink is safe.
    std::optional<Sink> sink;
    // Responsive (cc != off) datagram flows: the transport pair.  `tcp`
    // aliases `source` (owned there); the TcpSink lives on the destination
    // host's domain clock and feeds ACKs back through `ack_sink`.
    traffic::TcpSource* tcp = nullptr;
    std::unique_ptr<traffic::TcpSink> tcp_sink;
    std::optional<AckSink> ack_sink;
    std::uint32_t ack_slot = 0;  ///< ACK sink's slot at the source host
    std::uint64_t delivered = 0;
    double max_delay = 0;
    double last_delay = 0;  ///< previous delivery's delay (jitter deltas)
    double max_delay_all = 0;
    bool has_last = false;
    // Path-epoch segmentation: bumped on every reroute/degrade; the
    // source stamps it onto packets, so in-flight stragglers from the old
    // path never score against the new path's bound (max_delay resets per
    // epoch; max_delay_all spans the lifetime).
    std::uint16_t epoch = 0;
    std::uint16_t epochs_seen = 1;
    sim::Time opened = 0;
    sim::Time closed = -1;
    double bound = 0;
    bool active = false;  ///< admitted and not yet closed
    int reroutes = 0;     ///< successful re-admissions after path failures
    bool degraded = false;  ///< refused re-admission; carried as datagram
    // Graceful-degradation restore state: the ORIGINAL FlowSpec is saved
    // the first time the flow degrades (reroute_flow rewrites the live
    // spec to datagram), so re-admission retries offer what the client
    // asked for.  Backoff/attempts reset on every successful restore.
    std::unique_ptr<core::FlowSpec> saved_spec;
    int restore_attempts = 0;
    sim::Duration restore_backoff = 0;
  };

  void schedule_next_arrival();
  void on_arrival();
  [[nodiscard]] core::FlowSpec draw_spec();
  /// Opens one flow (admission + source + sink + departure schedule).
  /// `start_offset` staggers the source's first emission.
  void open_flow(const core::FlowSpec& fs, sim::Duration start_offset);
  /// Tears down the youngest active predicted flow crossing `link`;
  /// returns true when a victim was found.
  bool preempt_on(core::LinkId link);
  /// `sink_slot` is the flow's registered slot at the destination host;
  /// the source stamps it onto every packet as the delivery label.
  void attach_source(FlowRec& rec, sim::Duration start_offset,
                     std::uint32_t sink_slot);
  /// Assembles the failure schedule (explicit specs + the seeded
  /// generator) and registers every event with the simulator.  Called
  /// once from prepare(); the whole schedule is drawn up front so the
  /// failure Rng stream never interleaves with workload decisions.
  void schedule_failures();
  /// Applies one link up/down event, then re-validates affected flows:
  /// link-down sweeps only the flows registered across the link (the
  /// per-link index — removing an edge cannot shorten anyone else's
  /// shortest path), link-up sweeps everything (a recovered link can
  /// shorten paths for flows that never crossed it).
  void on_link_event(net::NodeId a, net::NodeId b, bool up);
  /// Re-offers each candidate admitted real-time flow whose current
  /// shortest path no longer matches its scheduler registrations (paper
  /// §9 criteria against the live measurements).
  void revalidate_flows(const std::vector<net::FlowId>& candidates);
  /// Re-offers ONE admitted real-time flow on the current shortest path
  /// and applies the outcome (counters, decision log, source rewiring,
  /// restore scheduling).  A flow re-admitted on an UNCHANGED path — the
  /// brown-out shed pass re-validating a survivor — is kept silently: no
  /// decision, no epoch bump.
  void reoffer_flow(net::FlowId flow);
  /// Applies one switch crash/recovery: all incident links transition
  /// atomically (queued packets flushed into node_failure_drops), routes
  /// recompute once, and crossing (down) or all (up) flows re-validate.
  void on_node_event(net::NodeId node, bool up);
  /// Applies one capacity brown-out transition on the a<->b link pair.
  /// Ordering discipline: admission + measurement re-rate FIRST, then the
  /// over-committed flows are shed (predicted before guaranteed, youngest
  /// first), and only then the schedulers and ports re-rate — so the
  /// schedulers' flow0 weight (mu - guaranteed) stays positive throughout.
  void on_brownout(net::NodeId a, net::NodeId b, bool start, double fraction);
  /// Starts/ends one transient per-link loss episode (Bernoulli drops on
  /// the dedicated per-port stream; drops land in fault_drops).
  void on_loss(net::NodeId a, net::NodeId b, bool start, double prob);
  /// Degrades/preempts youngest-first victims crossing `link` until the
  /// committed load fits under the link's (possibly browned-out) rate.
  void shed_overcommit(core::LinkId link);
  /// Schedules the next re-admission retry of a degraded flow (capped
  /// exponential backoff; no-op when readmit_backoff is 0).
  void schedule_restore(net::FlowId flow);
  /// One re-admission attempt: offer the saved original FlowSpec; on
  /// success the flow returns to its original service (kRestored), on
  /// refusal the backoff grows and the retry reschedules.
  void try_restore(net::FlowId flow);
  /// Self-rescheduling invariant audit (invariant_cadence > 0).
  void schedule_audit();
  void record(const AdmissionDecision& d);
  /// Advances a flow's path epoch after a reroute/degrade (satellite of
  /// the sharded-core PR: per-path-epoch delay segmentation).
  void bump_epoch(FlowRec& rec);
  void depart_later(net::FlowId flow);
  void try_close(net::FlowId flow);
  void stop_all();
  [[nodiscard]] std::uint64_t queued_now();
  /// Quantizes a control-event time onto the window grid (identity on the
  /// classic path): the smallest multiple of link_latency at or after t.
  [[nodiscard]] sim::Time ctl(sim::Time t) const;
  /// Merges the per-domain aggregates into one per-class table.
  [[nodiscard]] std::array<ClassStats, 3> merged_classes() const;

  ScenarioSpec spec_;
  core::IspnNetwork ispn_;
  Fabric fabric_;
  net::PacketTracer* tracer_ = nullptr;
  sim::Rng rng_;
  std::unique_ptr<sim::ShardedEngine> engine_;

  bool prepared_ = false;
  bool finished_ = false;
  bool halted_ = false;  ///< workload ended: arrivals become no-ops
  sim::Duration arrival_deadline_ = 0;
  net::FlowId next_flow_ = 0;
  int open_count_ = 0;
  std::deque<FlowRec> flows_;          ///< indexed by FlowId; stable refs
  std::vector<net::FlowId> active_;    ///< open order (preemption scans back)
  std::vector<AdmissionDecision> decisions_;
  /// One per domain (one total on the classic path); sized once in
  /// prepare() — deque, so Sink pointers into it stay stable.
  std::deque<DomainAgg> aggs_;
  std::uint64_t flows_admitted_ = 0;
  std::uint64_t flows_rejected_ = 0;
  std::uint64_t flows_preempted_ = 0;
  std::uint64_t links_failed_ = 0;
  std::uint64_t links_repaired_ = 0;
  std::uint64_t flows_rerouted_ = 0;
  std::uint64_t flows_degraded_ = 0;
  std::uint64_t flows_orphaned_ = 0;
  std::uint64_t nodes_crashed_ = 0;
  std::uint64_t nodes_recovered_ = 0;
  std::uint64_t brownouts_ = 0;
  std::uint64_t loss_episodes_ = 0;
  std::uint64_t flows_restored_ = 0;
  std::uint64_t restore_attempts_ = 0;
  std::unique_ptr<InvariantMonitor> monitor_;
};

}  // namespace ispn::scenario
