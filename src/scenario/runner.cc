#include "scenario/runner.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <set>
#include <stdexcept>
#include <string>

#include "traffic/cbr_source.h"
#include "traffic/onoff_source.h"
#include "traffic/poisson_source.h"

namespace ispn::scenario {

namespace {

/// Rng stream ids: the workload stream and the per-flow source streams
/// must never collide — flow ids are 32-bit, so basing the source
/// streams above 2^32 keeps them disjoint from any small constant.
constexpr std::uint64_t kWorkloadStream = 0xFAB;
constexpr std::uint64_t kSourceStreamBase = 1ull << 32;
}  // namespace

void ScenarioRunner::Sink::on_packet(net::PacketPtr p, sim::Time now) {
  const double delay = p->queueing_delay;
  ++rec_->delivered;
  if (delay > rec_->max_delay_all) rec_->max_delay_all = delay;
  ClassStats& cls = agg_->classes[static_cast<std::size_t>(p->service)];
  cls.add_delay(delay);
  // Stragglers generated before a reroute carry the old path epoch: they
  // count globally, but must not score against the NEW path's bound, nor
  // fake jitter across the path change.
  if (p->path_epoch == rec_->epoch) {
    if (delay > rec_->max_delay) rec_->max_delay = delay;
    // Jitter is within-flow: the previous delay belongs to this flow, so
    // interleaved deliveries of other flows cannot fake it.
    if (rec_->has_last) {
      cls.jitter.add(delay > rec_->last_delay ? delay - rec_->last_delay
                                              : rec_->last_delay - delay);
    }
    rec_->last_delay = delay;
    rec_->has_last = true;
  }
  ++agg_->delivered;
  if (next_ != nullptr) next_->on_packet(std::move(p), now);
}

ScenarioRunner::ScenarioRunner(ScenarioSpec spec)
    : spec_((spec.validate(), std::move(spec))),
      ispn_(spec_.network_config()),
      rng_(spec_.seed, kWorkloadStream) {}

sim::Time ScenarioRunner::ctl(sim::Time t) const {
  if (spec_.shards < 1) return t;
  // Smallest grid multiple at or after t: control events must land on
  // window barriers so they never execute concurrently with domain work
  // (and never split a window, which would perturb seq tie-breaks).
  const sim::Duration L = spec_.link_latency;
  auto m = static_cast<std::uint64_t>(t / L);
  while (static_cast<double>(m) * L < t) ++m;
  return static_cast<double>(m) * L;
}

void ScenarioRunner::prepare() {
  if (prepared_) return;
  prepared_ = true;
  if ((spec_.preempt_on_reject ||
       spec_.reroute_policy == ReroutePolicy::kPreempt) &&
      spec_.measurement_estimator ==
          core::LinkMeasurement::Estimator::kPeakEpoch) {
    // The time-window peak estimator holds a torn-down flow's peak for a
    // full window, so the capacity a preemption frees is invisible to the
    // very re-admission it was meant to enable — preemption silently
    // never helps.  Warn once per process; presets that enable preemption
    // (churn, failure) already pair it with the EWMA estimator.
    static bool warned = false;
    if (!warned) {
      warned = true;
      std::fputs(
          "scenario: warning: preemption is configured with the peak "
          "measurement estimator; nu-hat will not decay when victims are "
          "torn down, so preemption frees no admissible capacity.  Use "
          "measurement_estimator=ewma.\n",
          stderr);
    }
  }
  fabric_ = build_fabric(ispn_, spec_);
  if (net().sharded()) {
    engine_ = std::make_unique<sim::ShardedEngine>(
        net().sim(), spec_.link_latency, spec_.shards);
    for (std::size_t d = 0; d < net().num_domains(); ++d) {
      engine_->add_domain(&net().domain_sim(d));
    }
    engine_->set_exchange([this] { net().exchange(); });
    aggs_.resize(net().num_domains());
    if (tracer_ != nullptr) tracer_->shard(net().num_domains());
  } else {
    aggs_.resize(1);
  }
  schedule_failures();
  if (spec_.invariant_cadence > 0) {
    monitor_ = std::make_unique<InvariantMonitor>(ispn_);
    schedule_audit();
  }
  arrival_deadline_ = spec_.arrival_window > 0
                          ? std::min(spec_.arrival_window, spec_.run_seconds)
                          : spec_.run_seconds;

  if (spec_.arrival_rate > 0) {
    schedule_next_arrival();
  } else {
    // Bench/soak mode: one deterministic batch at t=0, source starts
    // staggered across roughly one mean inter-packet gap so emissions
    // interleave instead of bursting in lockstep.
    const double spread =
        spec_.avg_rate_pps * std::max(1, spec_.target_flows);
    for (int f = 0; f < spec_.target_flows; ++f) {
      const core::FlowSpec fs = draw_spec();
      open_flow(fs, static_cast<double>(f) / spread);
    }
  }
  net().sim().at(ctl(spec_.run_seconds), [this] { stop_all(); });
}

void ScenarioRunner::schedule_next_arrival() {
  const sim::Time next =
      net().sim().now() + rng_.exponential(1.0 / spec_.arrival_rate);
  if (next > arrival_deadline_) return;
  net().sim().at(ctl(next), [this] { on_arrival(); });
}

void ScenarioRunner::schedule_failures() {
  net::FailureSchedule schedule;

  // Explicit failures first, validated against the as-built graph so a
  // typoed --fail-link fails loudly instead of silently never firing.
  for (const LinkFailureSpec& f : spec_.link_failures) {
    const auto& adj = net().adjacency();
    const auto it = adj.find(f.src);
    if (it == adj.end() || std::find(it->second.begin(), it->second.end(),
                                     f.dst) == it->second.end()) {
      throw std::invalid_argument("fail_link: no link " +
                                  std::to_string(f.src) + "<->" +
                                  std::to_string(f.dst) + " in this fabric");
    }
    schedule.push_back({f.down_at, f.src, f.dst, false});
    if (f.up_at >= 0) schedule.push_back({f.up_at, f.src, f.dst, true});
  }

  for (const net::LinkEvent& ev : schedule) {
    net().sim().at(ctl(ev.time),
                   [this, ev] { on_link_event(ev.a, ev.b, ev.up); });
  }

  // Seeded generator: the fault plane (src/fault) draws the complete
  // multi-family schedule up front on dedicated Rng streams — link
  // failures byte-identical to the PR 6 generator, plus switch crashes,
  // brown-outs, loss episodes and flap bursts on their own streams — so
  // fault churn never perturbs the workload stream's call order, and
  // enabling one family never moves another family's events.
  const fault::FaultSpec fspec = spec_.fault_spec();
  if (!fspec.any()) return;
  std::vector<std::pair<net::NodeId, net::NodeId>> ulinks;
  std::set<std::pair<net::NodeId, net::NodeId>> seen;
  for (const core::LinkId& link : ispn_.links()) {
    const auto key = net::undirected(link.first, link.second);
    if (seen.insert(key).second) ulinks.push_back(key);
  }
  std::vector<net::NodeId> switches;
  for (const auto& [id, neighbors] : net().adjacency()) {
    (void)neighbors;
    if (!net().is_host(id)) switches.push_back(id);  // map order: ascending
  }
  const fault::FaultSchedule faults = fault::draw_schedule(
      fspec, ulinks, switches, spec_.seed, spec_.run_seconds);
  for (const fault::FaultEvent& ev : faults) {
    switch (ev.kind) {
      case fault::FaultKind::kLinkDown:
      case fault::FaultKind::kLinkUp:
        net().sim().at(ctl(ev.time), [this, ev] {
          on_link_event(ev.a, ev.b, ev.kind == fault::FaultKind::kLinkUp);
        });
        break;
      case fault::FaultKind::kNodeDown:
      case fault::FaultKind::kNodeUp:
        net().sim().at(ctl(ev.time), [this, ev] {
          on_node_event(ev.a, ev.kind == fault::FaultKind::kNodeUp);
        });
        break;
      case fault::FaultKind::kBrownoutStart:
      case fault::FaultKind::kBrownoutEnd:
        net().sim().at(ctl(ev.time), [this, ev] {
          on_brownout(ev.a, ev.b,
                      ev.kind == fault::FaultKind::kBrownoutStart, ev.value);
        });
        break;
      case fault::FaultKind::kLossStart:
      case fault::FaultKind::kLossEnd:
        net().sim().at(ctl(ev.time), [this, ev] {
          on_loss(ev.a, ev.b, ev.kind == fault::FaultKind::kLossStart,
                  ev.value);
        });
        break;
    }
  }
}

void ScenarioRunner::on_link_event(net::NodeId a, net::NodeId b, bool up) {
  // Overlapping explicit + generated events may agree on the state; the
  // first one wins and the rest collapse to no-ops.
  if (net().link_up(a, b) == up) return;
  net().set_link_up(a, b, up);
  if (up) {
    ++links_repaired_;
    // A recovered link can shorten the path of a flow that never crossed
    // it, so recovery must sweep every active flow.
    revalidate_flows(active_);
  } else {
    ++links_failed_;
    // A downed link only disturbs flows registered across it — removing
    // an edge cannot shorten anyone else's shortest path — so the
    // per-link index bounds this sweep by the crossing flows.
    revalidate_flows(ispn_.flows_crossing(a, b));
  }
}

void ScenarioRunner::on_node_event(net::NodeId node, bool up) {
  if (net().node_up(node) == up) return;  // overlapping events collapse
  if (up) {
    ++nodes_recovered_;
    net().set_node_up(node, true);
    // Recovery can shorten the path of flows that never touched this
    // switch, so it sweeps everything (same rule as a link repair).
    revalidate_flows(active_);
    return;
  }
  ++nodes_crashed_;
  // Gather the union of flows crossing ANY incident link before the
  // flush — the per-link index is exact for downs, and a crash is one
  // atomic down of the whole incident star.
  std::vector<net::FlowId> affected;
  for (const net::NodeId v : net().adjacency().at(node)) {
    const std::vector<net::FlowId> crossing = ispn_.flows_crossing(node, v);
    affected.insert(affected.end(), crossing.begin(), crossing.end());
  }
  std::sort(affected.begin(), affected.end());
  affected.erase(std::unique(affected.begin(), affected.end()),
                 affected.end());
  // One call: flips membership first (so the port-flush hooks attribute
  // casualties to node_failure_drops), transitions every incident port,
  // then recomputes routes ONCE for the whole star.
  net().set_node_up(node, false);
  revalidate_flows(affected);
}

void ScenarioRunner::on_brownout(net::NodeId a, net::NodeId b, bool start,
                                 double fraction) {
  const sim::Time now = net().sim().now();
  if (start) ++brownouts_;
  const core::LinkId fwd{a, b};
  const core::LinkId rev{b, a};
  const sim::Rate target =
      start ? ispn_.link_base_rate(fwd) * fraction : ispn_.link_base_rate(fwd);
  // Ordering discipline: the ADMISSION plane re-rates first, so the shed
  // pass evaluates §9 against the reduced mu; the DATA plane (schedulers,
  // ports) re-rates last, after shedding guarantees the committed clock
  // rates fit under the new capacity (the schedulers' flow0 weight
  // mu - guaranteed must stay positive).
  for (const core::LinkId& link : {fwd, rev}) {
    ispn_.admission().set_link_rate(link, target);
    ispn_.measurement(link).set_link_rate(target);
  }
  if (start) {
    shed_overcommit(fwd);
    shed_overcommit(rev);
  }
  for (const core::LinkId& link : {fwd, rev}) {
    ispn_.scheduler(link).set_link_rate(target, now);
  }
  net().set_link_rate(a, b, target);
}

void ScenarioRunner::shed_overcommit(core::LinkId link) {
  core::AdmissionController& adm = ispn_.admission();
  const double share =
      (1.0 - adm.config().datagram_quota) * adm.link_rate(link);
  // Degrade-to-datagram cascade: predicted before guaranteed (the softer
  // commitment sheds first), youngest first within each class.  Each
  // victim is RE-OFFERED, not blindly shed — admission against the
  // reduced mu decides, so a survivor that still fits is kept silently.
  // The guaranteed pass terminates: while the committed clock rates
  // exceed the non-datagram share, every guaranteed re-offer necessarily
  // refuses (the oversubscription check), releasing its rate.
  for (const net::ServiceClass cls :
       {net::ServiceClass::kPredicted, net::ServiceClass::kGuaranteed}) {
    const auto over = [&] {
      return cls == net::ServiceClass::kGuaranteed
                 ? adm.guaranteed_rate(link) >= share
                 : adm.guaranteed_rate(link) + adm.predicted_rate(link) >
                       share;
    };
    const std::vector<net::FlowId> crossing =
        ispn_.flows_crossing(link.first, link.second);
    for (auto it = crossing.rbegin(); it != crossing.rend() && over(); ++it) {
      FlowRec& rec = flows_[static_cast<std::size_t>(*it)];
      if (!rec.active || rec.handle.spec.service != cls) continue;
      reoffer_flow(*it);
    }
  }
}

void ScenarioRunner::on_loss(net::NodeId a, net::NodeId b, bool start,
                             double prob) {
  if (start) ++loss_episodes_;
  for (const core::LinkId& link : {core::LinkId{a, b}, core::LinkId{b, a}}) {
    net::Port* port = net().port(link.first, link.second);
    if (port == nullptr) continue;
    // Dedicated per-port Bernoulli stream: reseeded at every episode
    // start, so the drop pattern depends only on (seed, port, packets
    // transmitted during the episode) — never on other links' episodes.
    port->set_loss(start ? prob : 0.0, spec_.seed,
                   fault::kPortLossStreamBase |
                       (static_cast<std::uint64_t>(link.first) << 16) |
                       static_cast<std::uint64_t>(link.second));
  }
}

void ScenarioRunner::schedule_restore(net::FlowId flow) {
  if (spec_.readmit_backoff <= 0 || halted_) return;
  FlowRec& rec = flows_[static_cast<std::size_t>(flow)];
  if (rec.restore_attempts >= spec_.readmit_max_attempts) return;
  // Capped exponential backoff, grown BEFORE scheduling so the first
  // retry waits the base period.
  rec.restore_backoff =
      rec.restore_backoff <= 0
          ? spec_.readmit_backoff
          : std::min(rec.restore_backoff * spec_.readmit_backoff_factor,
                     spec_.readmit_backoff_max);
  const sim::Time t = net().sim().now() + rec.restore_backoff;
  if (t >= spec_.run_seconds) return;  // the run ends before the retry
  net().sim().at(ctl(t), [this, flow] { try_restore(flow); });
}

void ScenarioRunner::try_restore(net::FlowId flow) {
  FlowRec& rec = flows_[static_cast<std::size_t>(flow)];
  if (halted_ || !rec.active || !rec.degraded || !rec.saved_spec) return;
  const core::FlowSpec want = *rec.saved_spec;
  ++rec.restore_attempts;
  ++restore_attempts_;
  // Offer the original service on the CURRENT shortest path.  The flow
  // holds no commitment while degraded, so this is a fresh §9 admission
  // against the live measurements.
  if (!net().route(want.src, want.dst).empty()) {
    core::IspnNetwork::FlowHandle h = ispn_.try_open_flow(want);
    if (h.commitment.admitted) {
      rec.handle = std::move(h);
      rec.degraded = false;
      rec.restore_attempts = 0;
      rec.restore_backoff = 0;
      ++flows_restored_;
      if (want.service == net::ServiceClass::kGuaranteed) {
        const traffic::TokenBucketSpec bucket{
            want.guaranteed->clock_rate,
            sim::paper::kBucketPackets * spec_.packet_bits};
        rec.bound =
            ispn_.guaranteed_bound(rec.handle, bucket, spec_.packet_bits);
      } else {
        rec.bound = rec.handle.commitment.advertised_bound.value_or(0.0);
      }
      const std::uint8_t priority =
          rec.handle.commitment.priority_per_hop.empty()
              ? 0
              : static_cast<std::uint8_t>(
                    rec.handle.commitment.priority_per_hop[0]);
      rec.source->set_service(rec.handle.spec.service, priority);
      bump_epoch(rec);
      AdmissionDecision d;
      d.time = net().sim().now();
      d.flow = flow;
      d.service = want.service;
      d.kind = AdmissionDecision::Kind::kRestored;
      record(d);
      return;
    }
  }
  schedule_restore(flow);  // refused (or still unreachable): back off more
}

void ScenarioRunner::schedule_audit() {
  const sim::Time t = net().sim().now() + spec_.invariant_cadence;
  if (t >= spec_.run_seconds) return;  // finish() audits the final state
  net().sim().at(ctl(t), [this] {
    if (halted_) return;  // draining: the run-end audit covers the rest
    audit_now();
    schedule_audit();
  });
}

std::size_t ScenarioRunner::audit_now() {
  if (!monitor_) return 0;
  InvariantMonitor::Ledger led;
  for (const FlowRec& rec : flows_) {
    const net::FlowStats& st = net().stats(rec.handle.spec.flow);
    led.generated += st.generated;
    led.source_drops += st.source_drops;
    led.injected += st.injected;
    led.net_drops += st.net_drops;
    led.failed_link_drops += st.failed_link_drops;
    led.node_failure_drops += st.node_failure_drops;
    led.fault_drops += st.fault_drops;
  }
  led.delivered = delivered();
  led.queued = queued_now();
  led.in_transit = net().handoff_in_transit();
  for (const auto& [id, neighbors] : net().adjacency()) {
    (void)neighbors;
    if (net().is_host(id)) led.unclaimed += net().host(id).unclaimed();
  }
  return monitor_->audit(net().sim().now(), led);
}

void ScenarioRunner::revalidate_flows(
    const std::vector<net::FlowId>& candidates) {
  // Forwarding is destination-based: once the routing tables change, a
  // flow's packets follow the NEW shortest path regardless of where its
  // scheduler registrations live.  So every candidate admitted real-time
  // flow whose registered links differ from the current route must be
  // re-offered — including flows whose old path still physically exists.
  const std::vector<net::FlowId> snapshot = candidates;
  for (const net::FlowId flow : snapshot) {
    FlowRec& rec = flows_[static_cast<std::size_t>(flow)];
    if (!rec.active) continue;  // torn down earlier in this sweep
    if (!rec.handle.commitment.admitted) continue;
    if (rec.handle.spec.service == net::ServiceClass::kDatagram) continue;
    const net::NodeId src = rec.handle.spec.src;
    const net::NodeId dst = rec.handle.spec.dst;
    const bool reachable = !net().route(src, dst).empty();
    if (reachable && ispn_.route_links(src, dst) == rec.handle.links) {
      continue;  // path survived this event untouched
    }
    reoffer_flow(flow);
  }
}

void ScenarioRunner::reoffer_flow(net::FlowId flow) {
  const sim::Time now = net().sim().now();
  FlowRec& rec = flows_[static_cast<std::size_t>(flow)];
  // reroute_flow rewrites the spec on degrade; record the decision under
  // the service the flow HELD when the fault hit, and save the original
  // spec so a later restore can offer what the client asked for.
  const net::ServiceClass original = rec.handle.spec.service;
  const core::FlowSpec original_spec = rec.handle.spec;
  const std::vector<core::LinkId> old_links = rec.handle.links;
  const auto outcome = ispn_.reroute_flow(
      rec.handle, spec_.reroute_policy == ReroutePolicy::kDegrade);

  AdmissionDecision d;
  d.time = now;
  d.flow = flow;
  d.service = original;
  switch (outcome) {
    case core::IspnNetwork::RerouteOutcome::kRerouted: {
      if (rec.handle.links == old_links) {
        // Re-validated in place: the brown-out shed pass re-offered a
        // survivor and admission re-granted the same path.  No decision,
        // no epoch bump — but the fresh commitment may carry a different
        // class assignment, so the source's priority stamp refreshes.
        rec.bound =
            rec.handle.commitment.advertised_bound.value_or(rec.bound);
        const std::uint8_t kept_priority =
            rec.handle.commitment.priority_per_hop.empty()
                ? 0
                : static_cast<std::uint8_t>(
                      rec.handle.commitment.priority_per_hop[0]);
        rec.source->set_service(rec.handle.spec.service, kept_priority);
        return;
      }
      ++flows_rerouted_;
      ++rec.reroutes;
      if (original == net::ServiceClass::kGuaranteed) {
        const traffic::TokenBucketSpec bucket{
            rec.handle.spec.guaranteed->clock_rate,
            sim::paper::kBucketPackets * spec_.packet_bits};
        rec.bound =
            ispn_.guaranteed_bound(rec.handle, bucket, spec_.packet_bits);
      } else {
        rec.bound =
            rec.handle.commitment.advertised_bound.value_or(rec.bound);
      }
      // The new path may carry a different per-hop class assignment.
      const std::uint8_t priority =
          rec.handle.commitment.priority_per_hop.empty()
              ? 0
              : static_cast<std::uint8_t>(
                    rec.handle.commitment.priority_per_hop[0]);
      rec.source->set_service(rec.handle.spec.service, priority);
      bump_epoch(rec);
      d.kind = AdmissionDecision::Kind::kRerouted;
      break;
    }
    case core::IspnNetwork::RerouteOutcome::kDegraded:
      ++flows_degraded_;
      rec.degraded = true;
      rec.bound = 0;
      rec.source->set_service(net::ServiceClass::kDatagram, 0);
      bump_epoch(rec);
      d.kind = AdmissionDecision::Kind::kDegraded;
      if (!rec.saved_spec) {
        rec.saved_spec = std::make_unique<core::FlowSpec>(original_spec);
      }
      rec.restore_attempts = 0;
      rec.restore_backoff = 0;
      schedule_restore(flow);
      break;
    case core::IspnNetwork::RerouteOutcome::kClosed:
    case core::IspnNetwork::RerouteOutcome::kOrphaned:
      rec.source->stop();
      rec.active = false;
      rec.closed = now;
      --open_count_;
      active_.erase(std::find(active_.begin(), active_.end(), flow));
      if (outcome == core::IspnNetwork::RerouteOutcome::kClosed) {
        ++flows_preempted_;
        d.kind = AdmissionDecision::Kind::kPreempted;
      } else {
        ++flows_orphaned_;
        d.kind = AdmissionDecision::Kind::kOrphaned;
      }
      break;
  }
  record(d);
}

void ScenarioRunner::bump_epoch(FlowRec& rec) {
  // New path, new epoch: subsequent packets are stamped with it, the
  // per-epoch delay peak restarts (the recomputed bound applies only to
  // packets that actually travel the new path), and the jitter chain
  // breaks so the path-length step never masquerades as jitter.
  ++rec.epoch;
  ++rec.epochs_seen;
  rec.max_delay = 0;
  rec.has_last = false;
  rec.source->set_epoch(rec.epoch);
}

void ScenarioRunner::on_arrival() {
  if (halted_) return;  // finish() ended the workload; drain only
  if (open_count_ < spec_.target_flows) {
    const core::FlowSpec fs = draw_spec();
    open_flow(fs, 0.0);
  }
  schedule_next_arrival();
}

core::FlowSpec ScenarioRunner::draw_spec() {
  core::FlowSpec fs;
  fs.flow = next_flow_++;

  const bool want_long = rng_.bernoulli(spec_.long_flow_fraction);
  const auto& primary = want_long ? fabric_.od_long : fabric_.od_short;
  const auto& fallback = want_long ? fabric_.od_short : fabric_.od_long;
  const auto& pool = primary.empty() ? fallback : primary;
  assert(!pool.empty() && "fabric offered no origin-destination pairs");
  const Fabric::OdPair od = pool[rng_.below(pool.size())];
  fs.src = od.first;
  fs.dst = od.second;

  const sim::Rate avg_bps = spec_.avg_rate_pps * spec_.packet_bits;
  const sim::Bits depth = sim::paper::kBucketPackets * spec_.packet_bits;
  const double u = rng_.uniform();
  if (u < spec_.p_guaranteed) {
    fs.service = net::ServiceClass::kGuaranteed;
    fs.guaranteed = core::GuaranteedSpec{avg_bps * spec_.peak_factor};
  } else if (u < spec_.p_guaranteed + spec_.p_predicted) {
    fs.service = net::ServiceClass::kPredicted;
    fs.predicted = core::PredictedSpec{
        {avg_bps, depth}, spec_.target_delay, spec_.target_loss};
  } else {
    fs.service = net::ServiceClass::kDatagram;
  }
  return fs;
}

void ScenarioRunner::record(const AdmissionDecision& d) {
  decisions_.push_back(d);
}

void ScenarioRunner::open_flow(const core::FlowSpec& fs,
                               sim::Duration start_offset) {
  assert(static_cast<std::size_t>(fs.flow) == flows_.size());
  const sim::Time now = net().sim().now();
  flows_.emplace_back();
  FlowRec& rec = flows_.back();
  rec.opened = now;

  auto outcome = [&](const core::IspnNetwork::FlowHandle& h) {
    AdmissionDecision d;
    d.time = now;
    d.flow = fs.flow;
    d.service = fs.service;
    d.kind = h.commitment.admitted ? AdmissionDecision::Kind::kAdmitted
                                   : AdmissionDecision::Kind::kRejected;
    d.rejected_hop = h.commitment.rejected_hop;
    d.reason = h.commitment.reason;
    return d;
  };

  rec.handle = ispn_.try_open_flow(fs);
  record(outcome(rec.handle));
  // Guaranteed rejections may make room by evicting predicted flows on
  // the refusing hop, one victim per retry.  Each eviction releases the
  // victim's committed rate immediately, so under parameter-based
  // admission the loop converges; under measurement-based admission the
  // measured ν̂ only decays with the estimator, so the cap bounds how
  // many victims a stubborn rejection may cost.
  for (int attempt = 0;
       attempt < 8 && !rec.handle.commitment.admitted &&
       spec_.preempt_on_reject &&
       fs.service == net::ServiceClass::kGuaranteed;
       ++attempt) {
    const int hop = rec.handle.commitment.rejected_hop;
    if (hop < 0 || hop >= static_cast<int>(rec.handle.links.size()) ||
        !preempt_on(rec.handle.links[static_cast<std::size_t>(hop)])) {
      break;
    }
    rec.handle = ispn_.try_open_flow(fs);
    record(outcome(rec.handle));
  }

  if (!rec.handle.commitment.admitted) {
    ++flows_rejected_;
    return;
  }
  ++flows_admitted_;
  ++open_count_;
  rec.active = true;
  active_.push_back(fs.flow);

  if (fs.service == net::ServiceClass::kGuaranteed) {
    const traffic::TokenBucketSpec bucket{
        fs.guaranteed->clock_rate,
        sim::paper::kBucketPackets * spec_.packet_bits};
    rec.bound =
        ispn_.guaranteed_bound(rec.handle, bucket, spec_.packet_bits);
  } else if (fs.service == net::ServiceClass::kPredicted) {
    rec.bound = rec.handle.commitment.advertised_bound.value_or(0.0);
  }

  // The sink runs on the destination's domain thread in sharded mode, so
  // it aggregates into that domain's (single-writer) slot.  Registered
  // before the source attaches so the source can stamp the sink slot
  // onto every packet (the label fast path); registration touches no
  // simulator state, so the event/RNG streams are unchanged by the order.
  const std::size_t dst_domain =
      net().sharded() ? static_cast<std::size_t>(net().domain_of(fs.dst)) : 0;
  rec.sink.emplace(&rec, &aggs_[dst_domain]);
  net::FlowSink* sink = &*rec.sink;
  if (tracer_ != nullptr) {
    sink = net().sharded() ? tracer_->wrap_sink(sink, dst_domain)
                           : tracer_->wrap_sink(sink);
  }
  const std::uint32_t sink_slot =
      net().host(fs.dst).register_sink(fs.flow, sink);
  attach_source(rec, start_offset, sink_slot);
  depart_later(fs.flow);
}

bool ScenarioRunner::preempt_on(core::LinkId link) {
  for (auto it = active_.rbegin(); it != active_.rend(); ++it) {
    FlowRec& cand = flows_[static_cast<std::size_t>(*it)];
    if (cand.handle.spec.service != net::ServiceClass::kPredicted) continue;
    const auto& links = cand.handle.links;
    if (std::find(links.begin(), links.end(), link) == links.end()) continue;

    cand.source->stop();
    ispn_.close_flow(cand.handle);
    cand.active = false;
    cand.closed = net().sim().now();
    --open_count_;
    ++flows_preempted_;
    AdmissionDecision d;
    d.time = net().sim().now();
    d.flow = cand.handle.spec.flow;
    d.service = cand.handle.spec.service;
    d.kind = AdmissionDecision::Kind::kPreempted;
    record(d);
    active_.erase(std::next(it).base());
    return true;
  }
  return false;
}

void ScenarioRunner::attach_source(FlowRec& rec, sim::Duration start_offset,
                                   std::uint32_t sink_slot) {
  const core::FlowSpec& fs = rec.handle.spec;
  net::Host& host = net().host(fs.src);
  auto emit = [&host, sink_slot](net::PacketPtr p) {
    p->sink_slot = sink_slot;
    host.inject(std::move(p));
  };
  // Sharded: the source lives on its host's domain clock and draws from
  // that domain's pool.  Creating the stats entry HERE (control time)
  // matters — the packet path only does find-only lookups (hot_stats).
  sim::Simulator& clock =
      net().sharded() ? net().sim_for(fs.src) : net().sim();
  net::FlowStats* stats = &net().stats(fs.flow);
  const sim::Rng rng(spec_.seed,
                     kSourceStreamBase + static_cast<std::uint64_t>(fs.flow));

  // Edge policing: guaranteed flows conform to their own clock rate (so
  // the Parekh–Gallager bound applies), predicted flows to their declared
  // filter (paper §8), datagram flows are unpoliced.
  std::optional<traffic::TokenBucketSpec> police;
  if (fs.service == net::ServiceClass::kGuaranteed) {
    police = traffic::TokenBucketSpec{
        fs.guaranteed->clock_rate,
        sim::paper::kBucketPackets * spec_.packet_bits};
  } else if (fs.service == net::ServiceClass::kPredicted) {
    police = fs.predicted->bucket;
  }

  // Responsive datagram flows (cc != off) run a TCP transfer instead of an
  // open-loop generator: the source lives on the src host's clock, the
  // receiver on the dst host's, and the ACK stream is counted into the
  // source domain's ledger by a dedicated AckSink (so the reverse path
  // balances the conservation equation without polluting per-class delay
  // statistics).
  if (spec_.cc != CcKind::kOff &&
      fs.service == net::ServiceClass::kDatagram) {
    traffic::TcpSource::Config tcfg;
    tcfg.packet_bits = spec_.packet_bits;
    tcfg.max_cwnd = spec_.cc_max_cwnd;
    tcfg.binary_feedback = spec_.binary_feedback;
    switch (spec_.cc) {
      case CcKind::kReno: tcfg.cc = traffic::CcAlgo::kReno; break;
      case CcKind::kBbr: tcfg.cc = traffic::CcAlgo::kBbr; break;
      case CcKind::kRack: tcfg.cc = traffic::CcAlgo::kRack; break;
      case CcKind::kMix:
        // Deterministic per-flow-group mix: reno/bbr/rack by flow id.
        tcfg.cc = static_cast<traffic::CcAlgo>(fs.flow % 3);
        break;
      case CcKind::kOff: break;  // unreachable
    }

    auto tcp = std::make_unique<traffic::TcpSource>(
        clock, tcfg, fs.flow, fs.src, fs.dst, emit, stats);
    rec.tcp = tcp.get();
    rec.source = std::move(tcp);

    // ACK return path at the source host: ledger count, then transport.
    const std::size_t src_domain =
        net().sharded() ? static_cast<std::size_t>(net().domain_of(fs.src))
                        : 0;
    rec.ack_sink.emplace(&aggs_[src_domain], rec.tcp);
    net::FlowSink* ack = &*rec.ack_sink;
    if (tracer_ != nullptr) {
      ack = net().sharded() ? tracer_->wrap_sink(ack, src_domain)
                            : tracer_->wrap_sink(ack);
    }
    rec.ack_slot = host.register_sink(fs.flow, ack);

    // Receiver on the destination's clock; its ACKs carry the ack sink's
    // slot label and are ledgered as reverse-direction traffic.
    sim::Simulator& dst_clock =
        net().sharded() ? net().sim_for(fs.dst) : net().sim();
    net::Host& dst_host = net().host(fs.dst);
    const std::uint32_t ack_slot = rec.ack_slot;
    auto ack_emit = [&dst_host, ack_slot](net::PacketPtr p) {
      p->sink_slot = ack_slot;
      dst_host.inject(std::move(p));
    };
    rec.tcp_sink = std::make_unique<traffic::TcpSink>(
        dst_clock, tcfg, fs.flow, fs.dst, fs.src, ack_emit);
    rec.tcp_sink->set_stats(stats);
    if (net().sharded()) rec.tcp_sink->set_pool(&net().pool_for(fs.dst));
    rec.sink->set_next(rec.tcp_sink.get());
  } else {
    switch (spec_.source) {
      case SourceKind::kOnOff: {
        traffic::OnOffSource::Config cfg;
        cfg.avg_rate_pps = spec_.avg_rate_pps;
        cfg.peak_factor = spec_.peak_factor;
        cfg.packet_bits = spec_.packet_bits;
        rec.source = std::make_unique<traffic::OnOffSource>(
            clock, cfg, rng, fs.flow, fs.src, fs.dst, emit, stats, police);
        break;
      }
      case SourceKind::kCbr: {
        traffic::CbrSource::Config cfg;
        cfg.rate_pps = spec_.avg_rate_pps;
        cfg.packet_bits = spec_.packet_bits;
        rec.source = std::make_unique<traffic::CbrSource>(
            clock, cfg, fs.flow, fs.src, fs.dst, emit, stats, police);
        break;
      }
      case SourceKind::kPoisson: {
        traffic::PoissonSource::Config cfg;
        cfg.rate_pps = spec_.avg_rate_pps;
        cfg.packet_bits = spec_.packet_bits;
        rec.source = std::make_unique<traffic::PoissonSource>(
            clock, cfg, rng, fs.flow, fs.src, fs.dst, emit, stats, police);
        break;
      }
    }
  }

  const std::uint8_t priority =
      rec.handle.commitment.priority_per_hop.empty()
          ? 0
          : static_cast<std::uint8_t>(
                rec.handle.commitment.priority_per_hop[0]);
  rec.source->set_service(fs.service, priority);
  if (net().sharded()) rec.source->set_pool(&net().pool_for(fs.src));
  // Control time is a window barrier, so `now + offset` is never in a
  // window a domain has already executed.
  rec.source->start(net().sim().now() + start_offset);
}

void ScenarioRunner::depart_later(net::FlowId flow) {
  if (spec_.mean_hold <= 0) return;
  // The hold is drawn at open time so the workload stream's call order
  // never depends on event interleaving.
  const sim::Time t =
      net().sim().now() + rng_.exponential(spec_.mean_hold);
  if (t >= spec_.run_seconds) return;  // the global stop covers it
  net().sim().at(ctl(t), [this, flow] {
    FlowRec& rec = flows_[static_cast<std::size_t>(flow)];
    if (!rec.active) return;  // preempted in the meantime
    rec.source->stop();
    net().sim().at(ctl(net().sim().now() + spec_.drain_grace),
                   [this, flow] { try_close(flow); });
  });
}

void ScenarioRunner::try_close(net::FlowId flow) {
  FlowRec& rec = flows_[static_cast<std::size_t>(flow)];
  if (!rec.active) return;
  if (rec.handle.spec.service == net::ServiceClass::kGuaranteed) {
    // Drained means every injected packet has been accounted for end to
    // end — delivered or dropped.  Polling the per-hop queues instead
    // would race the last packet's in-flight window (dequeued at one hop,
    // not yet enqueued at the next), and closing inside that window would
    // demote the packet to datagram service downstream.
    const net::FlowStats& st = net().stats(flow);
    if (st.injected > rec.delivered + st.net_drops + st.failed_link_drops +
                          st.node_failure_drops + st.fault_drops) {
      // Still draining: WFQ guarantees the clock rate, so this
      // terminates; poll again one grace period later.
      net().sim().at(ctl(net().sim().now() + spec_.drain_grace),
                     [this, flow] { try_close(flow); });
      return;
    }
  }
  ispn_.close_flow(rec.handle);
  rec.active = false;
  rec.closed = net().sim().now();
  --open_count_;
  active_.erase(std::find(active_.begin(), active_.end(), flow));
}

void ScenarioRunner::stop_all() {
  halted_ = true;  // no further arrivals may open flows
  for (const net::FlowId flow : active_) {
    flows_[static_cast<std::size_t>(flow)].source->stop();
  }
}

std::uint64_t ScenarioRunner::queued_now() {
  std::uint64_t queued = 0;
  for (const core::LinkId& link : ispn_.links()) {
    net::Port* port = net().port(link.first, link.second);
    queued += port->scheduler().packets() + (port->busy() ? 1 : 0);
  }
  return queued;
}

void ScenarioRunner::advance(sim::Time horizon) {
  assert(prepared_ && "advance() before prepare()");
  if (engine_) {
    engine_->run_until(horizon);
  } else {
    net().sim().run_until(horizon);
  }
}

std::uint64_t ScenarioRunner::events_processed() {
  return engine_ ? engine_->processed() : net().sim().processed();
}

std::array<ClassStats, 3> ScenarioRunner::merged_classes() const {
  if (aggs_.size() == 1) return aggs_.front().classes;
  // Merge in domain order: counts, Welford moments and extrema combine
  // exactly; P² has no exact merge, so the merged quantile is the
  // delivered-weighted average of the per-domain estimates, fed as a
  // single observation ("exact until five samples" makes value() return
  // it verbatim).  Domain order is a function of the topology, so the
  // merged table is identical for every shard count.
  std::array<ClassStats, 3> merged{};
  for (std::size_t c = 0; c < merged.size(); ++c) {
    ClassStats& m = merged[c];
    double w50 = 0, w99 = 0, w999 = 0;
    for (const DomainAgg& agg : aggs_) {
      const ClassStats& s = agg.classes[c];
      if (s.delivered == 0) continue;
      m.delivered += s.delivered;
      m.delay.merge(s.delay);
      m.jitter.merge(s.jitter);
      const auto w = static_cast<double>(s.delivered);
      w50 += w * s.p50.value();
      w99 += w * s.p99.value();
      w999 += w * s.p999.value();
    }
    if (m.delivered > 0) {
      const auto n = static_cast<double>(m.delivered);
      m.p50.add(w50 / n);
      m.p99.add(w99 / n);
      m.p999.add(w999 / n);
    }
  }
  return merged;
}

ScenarioReport ScenarioRunner::run() {
  prepare();
  if (engine_) {
    engine_->run();
  } else {
    net().sim().run();
  }
  return finish();
}

ScenarioReport ScenarioRunner::finish() {
  assert(prepared_ && "finish() before prepare()");
  assert(!finished_ && "finish() called twice");
  finished_ = true;
  const bool idle = engine_ ? engine_->idle() : net().sim().idle();
  if (!idle) {
    // Manual driving stopped mid-run (always at a barrier when sharded):
    // end the workload and drain.
    stop_all();
    if (engine_) {
      engine_->run();
    } else {
      net().sim().run();
    }
  }

  ScenarioReport report;
  report.spec_summary = spec_.describe();
  report.end_time = net().sim().now();
  report.events = events_processed();

  // Final invariant audit against the fully drained end state (queues and
  // mailboxes empty, every bucket settled).
  if (monitor_) {
    if (audit_now() > 0) {
      std::fputs("scenario: invariant violations detected:\n", stderr);
    }
    if (!monitor_->violations().empty()) {
      std::fputs(monitor_->report().c_str(), stderr);
    }
  }

  for (const FlowRec& rec : flows_) {
    const net::FlowStats& st = net().stats(rec.handle.spec.flow);
    report.generated += st.generated;
    report.source_drops += st.source_drops;
    report.injected += st.injected;
    report.net_drops += st.net_drops;
    report.failed_link_drops += st.failed_link_drops;
    report.node_failure_drops += st.node_failure_drops;
    report.fault_drops += st.fault_drops;

    FlowOutcome out;
    out.flow = rec.handle.spec.flow;
    out.service = rec.handle.spec.service;
    out.admitted = rec.handle.commitment.admitted;
    out.hops = rec.handle.links.size();
    out.opened = rec.opened;
    out.closed = rec.closed;
    out.delivered = rec.delivered;
    out.max_delay = rec.max_delay;
    out.bound = rec.bound;
    out.reroutes = rec.reroutes;
    out.degraded = rec.degraded;
    out.path_epochs = rec.epochs_seen;
    out.max_delay_all = rec.max_delay_all;
    report.flows.push_back(out);

    if (rec.tcp != nullptr) {
      ++report.cc_flows;
      report.tcp_segments += rec.tcp->sent_segments();
      report.tcp_delivered += rec.tcp->delivered();
      report.tcp_retransmits += rec.tcp->retransmits();
      report.tcp_timeouts += rec.tcp->timeouts();
      report.tcp_reorder_timeouts += rec.tcp->reorder_timeouts();
      report.cc_echoes += rec.tcp->echoes_received();
      report.cc_backoffs += rec.tcp->fb_backoffs();
    }
  }
  report.delivered = delivered();
  report.queued_end = queued_now();

  std::set<net::NodeId> hosts;
  for (const auto& [a, b] : fabric_.od_long) {
    hosts.insert(a);
    hosts.insert(b);
  }
  for (const auto& [a, b] : fabric_.od_short) {
    hosts.insert(a);
    hosts.insert(b);
  }
  for (const net::NodeId h : hosts) {
    report.unclaimed += net().host(h).unclaimed();
  }

  // Flow-locality cache totals across every node in the fabric (the
  // adjacency holds every connected node; hosts carry sink caches,
  // switches route caches).
  for (const auto& [id, neighbors] : net().adjacency()) {
    (void)neighbors;
    if (net().is_host(id)) {
      report.sink_cache_hits += net().host(id).sink_cache_hits();
      report.sink_cache_misses += net().host(id).sink_cache_misses();
      report.sink_label_hits += net().host(id).sink_label_hits();
    } else {
      report.route_cache_hits += net().switch_node(id).route_cache_hits();
      report.route_cache_misses += net().switch_node(id).route_cache_misses();
    }
  }

  report.flows_offered = flows_.size();
  report.flows_admitted = flows_admitted_;
  report.flows_rejected = flows_rejected_;
  report.flows_preempted = flows_preempted_;
  report.links_failed = links_failed_;
  report.links_repaired = links_repaired_;
  report.flows_rerouted = flows_rerouted_;
  report.flows_degraded = flows_degraded_;
  report.flows_orphaned = flows_orphaned_;
  report.nodes_crashed = nodes_crashed_;
  report.nodes_recovered = nodes_recovered_;
  report.brownouts = brownouts_;
  report.loss_episodes = loss_episodes_;
  report.flows_restored = flows_restored_;
  report.restore_attempts = restore_attempts_;
  if (monitor_) {
    report.invariant_audits = monitor_->audits();
    report.invariant_violations = monitor_->violations().size();
  }
  report.decisions = decisions_;
  report.classes = merged_classes();

  for (const core::LinkId& link : ispn_.links()) {
    report.cc_marks += ispn_.scheduler(link).cong_marks();
    report.cc_mark_samples += ispn_.scheduler(link).mark_samples();
    LinkReport lr;
    lr.link = link;
    lr.utilization = report.end_time > 0
                         ? ispn_.link_utilization(link, report.end_time)
                         : 0.0;
    lr.realtime_utilization =
        ispn_.realtime_utilization(link, report.end_time);
    report.links.push_back(lr);
  }
  return report;
}

}  // namespace ispn::scenario
