#include "scenario/fabric.h"

#include <cassert>
#include <cmath>

namespace ispn::scenario {

namespace {

Fabric build_chain_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  Fabric fabric;
  fabric.kind = FabricKind::kChain;
  const auto topo = ispn.build_chain(spec.chain_switches);
  const auto& hosts = topo.hosts;
  for (std::size_t i = 0; i + 1 < hosts.size(); ++i) {
    fabric.od_short.emplace_back(hosts[i], hosts[i + 1]);
  }
  // Long pairs span 2..4 hops (the paper's layout tops out at 4).
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t span = 2; span <= 4 && i + span < hosts.size(); ++span) {
      fabric.od_long.emplace_back(hosts[i], hosts[i + span]);
    }
  }
  return fabric;
}

Fabric build_tree_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  Fabric fabric;
  fabric.kind = FabricKind::kFanInTree;
  const auto topo = ispn.build_fan_tree(spec.tree_depth, spec.tree_width);
  // Every flow aggregates from a leaf towards the root sink; the pair is
  // "long" exactly when it crosses more than one queueing level.
  for (const net::NodeId leaf : topo.leaf_hosts) {
    if (spec.tree_depth > 2) {
      fabric.od_long.emplace_back(leaf, topo.root_host);
    } else {
      fabric.od_short.emplace_back(leaf, topo.root_host);
    }
  }
  if (fabric.od_long.empty()) fabric.od_long = fabric.od_short;
  if (fabric.od_short.empty()) fabric.od_short = fabric.od_long;
  return fabric;
}

Fabric build_parking_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  Fabric fabric;
  fabric.kind = FabricKind::kParkingLot;
  std::vector<sim::Rate> rates;
  rates.reserve(static_cast<std::size_t>(spec.parking_hops));
  for (int i = 0; i < spec.parking_hops; ++i) {
    rates.push_back(spec.link_rate * std::pow(spec.parking_rate_step, i));
  }
  const auto topo = ispn.build_parking_lot(spec.parking_hops, rates);
  const auto& hosts = topo.hosts;
  for (std::size_t i = 0; i + 1 < hosts.size(); ++i) {
    fabric.od_short.emplace_back(hosts[i], hosts[i + 1]);
  }
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = i + 2; j < hosts.size(); ++j) {
      fabric.od_long.emplace_back(hosts[i], hosts[j]);
    }
  }
  return fabric;
}

}  // namespace

Fabric build_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  switch (spec.fabric) {
    case FabricKind::kChain: return build_chain_fabric(ispn, spec);
    case FabricKind::kFanInTree: return build_tree_fabric(ispn, spec);
    case FabricKind::kParkingLot: return build_parking_fabric(ispn, spec);
  }
  assert(false && "unknown fabric kind");
  return {};
}

}  // namespace ispn::scenario
