#include "scenario/fabric.h"

#include <cassert>
#include <cmath>

namespace ispn::scenario {

namespace {

Fabric build_chain_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  Fabric fabric;
  fabric.kind = FabricKind::kChain;
  const auto topo = ispn.build_chain(spec.chain_switches);
  const auto& hosts = topo.hosts;
  for (std::size_t i = 0; i + 1 < hosts.size(); ++i) {
    fabric.od_short.emplace_back(hosts[i], hosts[i + 1]);
  }
  // Long pairs span 2..4 hops (the paper's layout tops out at 4).
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t span = 2; span <= 4 && i + span < hosts.size(); ++span) {
      fabric.od_long.emplace_back(hosts[i], hosts[i + span]);
    }
  }
  return fabric;
}

Fabric build_tree_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  Fabric fabric;
  fabric.kind = FabricKind::kFanInTree;
  const auto topo = ispn.build_fan_tree(spec.tree_depth, spec.tree_width);
  // Every flow aggregates from a leaf towards the root sink; the pair is
  // "long" exactly when it crosses more than one queueing level.
  for (const net::NodeId leaf : topo.leaf_hosts) {
    if (spec.tree_depth > 2) {
      fabric.od_long.emplace_back(leaf, topo.root_host);
    } else {
      fabric.od_short.emplace_back(leaf, topo.root_host);
    }
  }
  if (fabric.od_long.empty()) fabric.od_long = fabric.od_short;
  if (fabric.od_short.empty()) fabric.od_short = fabric.od_long;
  return fabric;
}

Fabric build_parking_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  Fabric fabric;
  fabric.kind = FabricKind::kParkingLot;
  std::vector<sim::Rate> rates;
  rates.reserve(static_cast<std::size_t>(spec.parking_hops));
  for (int i = 0; i < spec.parking_hops; ++i) {
    rates.push_back(spec.link_rate * std::pow(spec.parking_rate_step, i));
  }
  const auto topo = ispn.build_parking_lot(spec.parking_hops, rates);
  const auto& hosts = topo.hosts;
  for (std::size_t i = 0; i + 1 < hosts.size(); ++i) {
    fabric.od_short.emplace_back(hosts[i], hosts[i + 1]);
  }
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = i + 2; j < hosts.size(); ++j) {
      fabric.od_long.emplace_back(hosts[i], hosts[j]);
    }
  }
  return fabric;
}

Fabric build_mesh_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  Fabric fabric;
  fabric.kind = FabricKind::kMesh;
  const auto topo = ispn.build_mesh(spec.mesh_rows, spec.mesh_cols);
  // Short pairs are grid-adjacent hosts (one queueing hop); long pairs
  // are Manhattan distance >= 2 — the ones with alternate paths worth
  // rerouting onto when a link fails.
  const auto host_at = [&](int r, int c) {
    return topo.hosts[static_cast<std::size_t>(r * spec.mesh_cols + c)];
  };
  for (int r = 0; r < spec.mesh_rows; ++r) {
    for (int c = 0; c < spec.mesh_cols; ++c) {
      for (int r2 = r; r2 < spec.mesh_rows; ++r2) {
        for (int c2 = (r2 == r ? c + 1 : 0); c2 < spec.mesh_cols; ++c2) {
          const int dist = std::abs(r2 - r) + std::abs(c2 - c);
          if (dist == 1) {
            fabric.od_short.emplace_back(host_at(r, c), host_at(r2, c2));
          } else {
            fabric.od_long.emplace_back(host_at(r, c), host_at(r2, c2));
          }
        }
      }
    }
  }
  if (fabric.od_long.empty()) fabric.od_long = fabric.od_short;
  return fabric;
}

Fabric build_ring_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  Fabric fabric;
  fabric.kind = FabricKind::kRing;
  const auto topo = ispn.build_ring(spec.ring_switches);
  const int n = spec.ring_switches;
  const auto& hosts = topo.hosts;
  for (int i = 0; i < n; ++i) {
    fabric.od_short.emplace_back(hosts[static_cast<std::size_t>(i)],
                                 hosts[static_cast<std::size_t>((i + 1) % n)]);
    for (int span = 2; span <= n / 2; ++span) {
      fabric.od_long.emplace_back(
          hosts[static_cast<std::size_t>(i)],
          hosts[static_cast<std::size_t>((i + span) % n)]);
    }
  }
  if (fabric.od_long.empty()) fabric.od_long = fabric.od_short;
  return fabric;
}

Fabric build_clos_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  Fabric fabric;
  fabric.kind = FabricKind::kClos;
  const auto topo = ispn.build_clos(spec.clos_spines, spec.clos_leaves);
  // Every leaf pair crosses exactly two queueing hops (leaf-spine-leaf):
  // no distance structure, so short and long draw from the same pool.
  for (std::size_t i = 0; i < topo.hosts.size(); ++i) {
    for (std::size_t j = i + 1; j < topo.hosts.size(); ++j) {
      fabric.od_short.emplace_back(topo.hosts[i], topo.hosts[j]);
    }
  }
  fabric.od_long = fabric.od_short;
  return fabric;
}

}  // namespace

Fabric build_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec) {
  switch (spec.fabric) {
    case FabricKind::kChain: return build_chain_fabric(ispn, spec);
    case FabricKind::kFanInTree: return build_tree_fabric(ispn, spec);
    case FabricKind::kParkingLot: return build_parking_fabric(ispn, spec);
    case FabricKind::kMesh: return build_mesh_fabric(ispn, spec);
    case FabricKind::kRing: return build_ring_fabric(ispn, spec);
    case FabricKind::kClos: return build_clos_fabric(ispn, spec);
  }
  assert(false && "unknown fabric kind");
  return {};
}

}  // namespace ispn::scenario
