// Fabric generation: turns a ScenarioSpec's topology half into a built
// IspnNetwork fabric plus the origin-destination structure the workload
// draws from.
//
// Three families (FabricKind):
//   * kChain — the paper's Figure-1 chain, scaled to chain_switches;
//     short pairs are adjacent hosts, long pairs span 2..4 hops like the
//     paper's 22-flow layout.
//   * kFanInTree — a width-ary aggregation tree of tree_depth levels;
//     every pair is leaf -> root, so contention deepens level by level.
//   * kParkingLot — parking_hops bottlenecks with an entry/exit host at
//     every switch; short pairs cross one hop (per-hop entry/exit cross
//     traffic), long pairs cross two or more consecutive bottlenecks.
//
// Three more families exist for the failure scenarios — every pair keeps
// an alternate path, so a link failure triggers rerouting rather than a
// partition:
//   * kMesh — mesh_rows x mesh_cols grid; short pairs are grid-adjacent,
//     long pairs have Manhattan distance >= 2.
//   * kRing — ring_switches cycle; short pairs adjacent, long pairs span
//     2..n/2 the short way round.
//   * kClos — clos_spines x clos_leaves folded Clos; every leaf pair is
//     exactly two hops, so short and long draw from the same pool.

#pragma once

#include <utility>
#include <vector>

#include "scenario/scenario.h"

namespace ispn::scenario {

/// A built fabric: QoS links are registered and instrumented inside the
/// IspnNetwork that built it; this carries what the workload needs.
struct Fabric {
  FabricKind kind = FabricKind::kChain;
  using OdPair = std::pair<net::NodeId, net::NodeId>;
  std::vector<OdPair> od_long;   ///< multi-bottleneck pairs
  std::vector<OdPair> od_short;  ///< single-hop / leaf-to-root pairs
};

/// Builds the fabric described by `spec` into `ispn` (topology + QoS
/// links + measurement instrumentation) and returns the OD structure.
Fabric build_fabric(core::IspnNetwork& ispn, const ScenarioSpec& spec);

}  // namespace ispn::scenario
