// Runtime invariant monitor (ISSUE "self-checking under faults").
//
// Under a healthy fault plane every crash, brown-out, loss episode and
// reroute moves packets and reservations between ledger buckets without
// ever losing one.  The monitor audits that claim CONTINUOUSLY — at a
// configurable sim-time cadence, not just at run end — so a corrupted
// counter or a leaked reservation is caught within one cadence of the
// event that caused it, while the scenario state that explains it is
// still live.
//
// Three families of checks, each against live engine state:
//
//  1. packet conservation — generated == source_drops + injected, and
//     injected == delivered + every drop bucket + queued + in-transit
//     (mid-run, packets legitimately sit in port queues and shard
//     mailboxes; the caller snapshots those into the Ledger);
//  2. admission accounting — per link: committed guaranteed clock rates
//     fit under the non-datagram share, committed sums are non-negative,
//     and the admission ledger agrees with the scheduler's registered
//     guaranteed rate (the commitment map and the data plane must never
//     drift apart);
//  3. scheduler coherence — UnifiedScheduler::self_check on every link:
//     queue occupancy vs packet count, flow-0 tag bookkeeping, WFQ
//     weight consistency.
//
// Violations are structured (which check, which link, what the numbers
// were) and sticky; the runner surfaces them in the report and exits
// non-zero.  Audits MUST run between simulator events (the scheduler
// self-check reads mid-event-inconsistent state otherwise).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.h"

namespace ispn::scenario {

class InvariantMonitor {
 public:
  /// A mid-run snapshot of the packet ledger, supplied by the runner
  /// (which owns the source/sink bookkeeping the network cannot see).
  struct Ledger {
    std::uint64_t generated = 0;
    std::uint64_t source_drops = 0;
    std::uint64_t injected = 0;
    std::uint64_t delivered = 0;
    std::uint64_t net_drops = 0;
    std::uint64_t failed_link_drops = 0;
    std::uint64_t node_failure_drops = 0;
    std::uint64_t fault_drops = 0;
    std::uint64_t queued = 0;      ///< sitting in port queues right now
    std::uint64_t in_transit = 0;  ///< crossing shard mailboxes right now
    std::uint64_t unclaimed = 0;   ///< alive in the pool but unaccounted
  };

  /// One failed check.
  struct Violation {
    sim::Time time = 0;
    std::string check;   ///< "conservation", "admission", "scheduler"
    std::string detail;  ///< the numbers that disagreed
  };

  explicit InvariantMonitor(core::IspnNetwork& ispn) : ispn_(&ispn) {}

  /// Runs every check against the current engine state plus the caller's
  /// ledger snapshot.  Returns the number of NEW violations found by this
  /// sweep (all are also retained in violations()).  Call between
  /// simulator events only.
  std::size_t audit(sim::Time now, const Ledger& ledger);

  [[nodiscard]] std::uint64_t audits() const { return audits_; }
  [[nodiscard]] const std::vector<Violation>& violations() const {
    return violations_;
  }

  /// Formats every violation as one line each ("t=... check: detail").
  [[nodiscard]] std::string report() const;

 private:
  void check_conservation(sim::Time now, const Ledger& ledger);
  void check_admission(sim::Time now);
  void check_schedulers(sim::Time now);

  void violate(sim::Time now, const char* check, std::string detail);

  core::IspnNetwork* ispn_;
  std::uint64_t audits_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace ispn::scenario
