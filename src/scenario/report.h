// ScenarioReport: everything one scenario run produces.
//
// Aggregation is O(1) per delivered packet (Welford means, P² tail
// quantiles, windowless counters) so million-packet runs stay inside the
// engine's zero-steady-state-allocation discipline — only the per-flow
// outcome table and the admission decision log grow, and those grow with
// FLOWS, not packets.

#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/builder.h"
#include "net/packet.h"
#include "stats/online_stats.h"
#include "stats/p2_quantile.h"

namespace ispn::scenario {

/// One admission-control event, as seen by the runner.
struct AdmissionDecision {
  enum class Kind : std::uint8_t {
    kAdmitted,
    kRejected,
    kPreempted,  ///< torn down to make room for a rejected guaranteed flow
    kRerouted,   ///< path failed; re-admitted on the new shortest path
    kDegraded,   ///< path failed; refused re-admission, now datagram
    kOrphaned,   ///< path failed; destination unreachable, torn down
    kRestored,   ///< degraded flow re-admitted at its original service
  };
  sim::Time time = 0;
  net::FlowId flow = net::kNoFlow;
  net::ServiceClass service = net::ServiceClass::kDatagram;
  Kind kind = Kind::kAdmitted;
  int rejected_hop = -1;     ///< path index that refused (kRejected only)
  std::string reason;        ///< controller's explanation (kRejected only)
};

[[nodiscard]] const char* to_string(AdmissionDecision::Kind kind);

/// Per-service-class delivery statistics, O(1) per packet.
struct ClassStats {
  std::uint64_t delivered = 0;
  stats::OnlineStats delay;                 ///< e2e queueing delay (s)
  stats::P2Quantile p50{0.5};
  stats::P2Quantile p99{0.99};
  stats::P2Quantile p999{0.999};
  /// |successive delay delta| computed WITHIN each flow (the per-flow
  /// previous delay lives with the flow), then aggregated per class —
  /// interleaved flows with different path lengths must not masquerade
  /// as jitter.
  stats::OnlineStats jitter;

  void add_delay(double delay_s) {
    ++delivered;
    delay.add(delay_s);
    p50.add(delay_s);
    p99.add(delay_s);
    p999.add(delay_s);
  }
};

/// One flow's fate.
struct FlowOutcome {
  net::FlowId flow = net::kNoFlow;
  net::ServiceClass service = net::ServiceClass::kDatagram;
  bool admitted = false;
  std::size_t hops = 0;          ///< queueing links on the path
  sim::Time opened = 0;
  sim::Time closed = -1;         ///< < 0: still open at run end
  std::uint64_t delivered = 0;
  double max_delay = 0;          ///< max accumulated queueing delay (s)
  /// Advertised bound (s): Parekh–Gallager for guaranteed, summed class
  /// targets for predicted; 0 = none (datagram / rejected).  Recomputed
  /// when a reroute changes the path length.
  double bound = 0;
  int reroutes = 0;      ///< successful re-admissions after path failures
  bool degraded = false; ///< ended as datagram after a refused re-offer
  // ---- path-epoch segmentation ----------------------------------------
  // Every reroute/degrade bumps the source's path epoch; packets carry the
  // epoch they were generated under.  max_delay above covers only the
  // FINAL epoch (so a rerouted flow's bound is compared against packets
  // that actually travelled the rerouted path), while max_delay_all spans
  // the flow's whole lifetime.  For never-rerouted flows the two agree.
  std::uint16_t path_epochs = 1;  ///< distinct epochs observed (>= 1)
  double max_delay_all = 0;       ///< max queueing delay across ALL epochs
};

/// Per-link utilisation row.
struct LinkReport {
  core::LinkId link{net::kNoNode, net::kNoNode};
  double utilization = 0;           ///< all traffic, over [0, end]
  double realtime_utilization = 0;  ///< guaranteed + predicted only
};

struct ScenarioReport {
  std::string spec_summary;
  sim::Time end_time = 0;
  std::uint64_t events = 0;  ///< simulator events processed

  // ---- packet conservation ledger -------------------------------------
  // generated == source_drops + injected           (edge policing)
  // injected  == delivered + net_drops + failed_link_drops
  //              + node_failure_drops + fault_drops + queued_end + unclaimed
  std::uint64_t generated = 0;
  std::uint64_t source_drops = 0;
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t net_drops = 0;
  /// Lost to topology churn (on a failing link, expelled by a reroute, or
  /// stranded by a partition) — never silently dropped from the ledger.
  std::uint64_t failed_link_drops = 0;
  /// Crash casualties: packets flushed when a switch went down (every
  /// incident port's queue at once).
  std::uint64_t node_failure_drops = 0;
  /// Injected transient loss: the packet consumed the wire but was
  /// destroyed before delivery (fault-plane loss episodes).
  std::uint64_t fault_drops = 0;
  std::uint64_t queued_end = 0;
  std::uint64_t unclaimed = 0;

  // ---- admission -------------------------------------------------------
  std::uint64_t flows_offered = 0;
  std::uint64_t flows_admitted = 0;   ///< includes always-admitted datagram
  std::uint64_t flows_rejected = 0;
  std::uint64_t flows_preempted = 0;
  std::vector<AdmissionDecision> decisions;

  // ---- failures / rerouting -------------------------------------------
  std::uint64_t links_failed = 0;     ///< link-down events applied
  std::uint64_t links_repaired = 0;   ///< link-up events applied
  std::uint64_t flows_rerouted = 0;   ///< re-admitted on a new path
  std::uint64_t flows_degraded = 0;   ///< refused; carried on as datagram
  std::uint64_t flows_orphaned = 0;   ///< unreachable; torn down

  // ---- fault plane -----------------------------------------------------
  std::uint64_t nodes_crashed = 0;    ///< switch-crash events applied
  std::uint64_t nodes_recovered = 0;  ///< switch-recovery events applied
  std::uint64_t brownouts = 0;        ///< brown-out episodes started
  std::uint64_t loss_episodes = 0;    ///< loss episodes started
  std::uint64_t flows_restored = 0;   ///< degraded flows re-admitted
  std::uint64_t restore_attempts = 0; ///< re-admission offers (incl. failed)
  std::uint64_t invariant_audits = 0;     ///< monitor sweeps completed
  std::uint64_t invariant_violations = 0; ///< violations the monitor found

  // ---- responsive traffic (DEC-TR-506 binary feedback) ----------------
  // Populated when the spec runs responsive datagram flows (cc != off)
  // and/or binary-feedback marking (binary_feedback = 1).
  std::uint64_t cc_flows = 0;        ///< datagram flows run as TCP transfers
  std::uint64_t cc_marks = 0;        ///< congestion marks set by schedulers
  std::uint64_t cc_mark_samples = 0; ///< datagram avg-queue sampling instants
  std::uint64_t cc_echoes = 0;       ///< echoed marks received at sources
  std::uint64_t cc_backoffs = 0;     ///< feedback-window decreases applied
  std::uint64_t tcp_segments = 0;    ///< data segments transmitted
  std::uint64_t tcp_delivered = 0;   ///< segments cumulatively acknowledged
  std::uint64_t tcp_retransmits = 0;
  std::uint64_t tcp_timeouts = 0;         ///< RTO expirations
  std::uint64_t tcp_reorder_timeouts = 0; ///< rack reorder-timer losses

  // ---- flow-locality caches -------------------------------------------
  // Direct-mapped lookup caches (DEC-TR-592) on the per-packet hot paths,
  // summed across all nodes: switch dst -> port and host flow -> sink.
  // Deterministic (probe sequence == packet sequence), so the golden
  // suite can pin them across backends.
  std::uint64_t route_cache_hits = 0;
  std::uint64_t route_cache_misses = 0;
  std::uint64_t sink_cache_hits = 0;
  std::uint64_t sink_cache_misses = 0;
  /// Deliveries that skipped the lookup entirely: the packet carried a
  /// validated sink-slot label stamped at flow setup (runner sources).
  std::uint64_t sink_label_hits = 0;

  // ---- delivery quality ------------------------------------------------
  std::array<ClassStats, 3> classes;  ///< indexed by ServiceClass
  std::vector<FlowOutcome> flows;
  std::vector<LinkReport> links;

  [[nodiscard]] bool conserved() const {
    return generated == source_drops + injected &&
           injected == delivered + net_drops + failed_link_drops +
                           node_failure_drops + fault_drops + queued_end +
                           unclaimed;
  }
  [[nodiscard]] double admission_ratio() const {
    return flows_offered == 0 ? 1.0
                              : static_cast<double>(flows_admitted) /
                                    static_cast<double>(flows_offered);
  }

  /// FNV-1a over the full decision log (times bit-exact), for the
  /// golden-trace determinism suite.
  [[nodiscard]] std::uint64_t decision_hash() const;

  /// Human-readable summary table.
  void to_text(std::ostream& out) const;
  /// Machine-readable JSON (one object).  The decision log is summarised
  /// as counts plus decision_hash rather than emitted per entry.
  void to_json(std::ostream& out) const;
};

}  // namespace ispn::scenario
