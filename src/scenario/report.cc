#include "scenario/report.h"

#include <cstring>
#include <ostream>

namespace ispn::scenario {

namespace {

/// FNV-1a over raw bytes.
std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::uint64_t fnv1a_double(std::uint64_t h, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  return fnv1a(h, &bits, sizeof bits);
}

const char* class_name(std::size_t i) {
  switch (i) {
    case 0: return "guaranteed";
    case 1: return "predicted";
    default: return "datagram";
  }
}

}  // namespace

const char* to_string(AdmissionDecision::Kind kind) {
  switch (kind) {
    case AdmissionDecision::Kind::kAdmitted: return "admitted";
    case AdmissionDecision::Kind::kRejected: return "rejected";
    case AdmissionDecision::Kind::kPreempted: return "preempted";
    case AdmissionDecision::Kind::kRerouted: return "rerouted";
    case AdmissionDecision::Kind::kDegraded: return "degraded";
    case AdmissionDecision::Kind::kOrphaned: return "orphaned";
    case AdmissionDecision::Kind::kRestored: return "restored";
  }
  return "?";
}

std::uint64_t ScenarioReport::decision_hash() const {
  std::uint64_t h = 1469598103934665603ull;
  for (const AdmissionDecision& d : decisions) {
    h = fnv1a_double(h, d.time);
    h = fnv1a(h, &d.flow, sizeof d.flow);
    const auto service = static_cast<std::uint8_t>(d.service);
    h = fnv1a(h, &service, sizeof service);
    const auto kind = static_cast<std::uint8_t>(d.kind);
    h = fnv1a(h, &kind, sizeof kind);
    h = fnv1a(h, &d.rejected_hop, sizeof d.rejected_hop);
    h = fnv1a(h, d.reason.data(), d.reason.size());
  }
  return h;
}

void ScenarioReport::to_text(std::ostream& out) const {
  out << "scenario: " << spec_summary << "\n";
  out << "run: " << end_time << " s simulated, " << events << " events\n";
  out << "admission: offered " << flows_offered << ", admitted "
      << flows_admitted << ", rejected " << flows_rejected << ", preempted "
      << flows_preempted << " (ratio " << admission_ratio() << ")\n";
  if (links_failed > 0 || links_repaired > 0) {
    out << "failures: " << links_failed << " link-down, " << links_repaired
        << " link-up; flows rerouted " << flows_rerouted << ", degraded "
        << flows_degraded << ", orphaned " << flows_orphaned << "\n";
  }
  if (nodes_crashed > 0 || brownouts > 0 || loss_episodes > 0 ||
      flows_restored > 0 || restore_attempts > 0) {
    out << "faults: " << nodes_crashed << " crashes, " << nodes_recovered
        << " recoveries, " << brownouts << " brownouts, " << loss_episodes
        << " loss episodes; flows restored " << flows_restored << "/"
        << restore_attempts << " attempts\n";
  }
  if (invariant_audits > 0 || invariant_violations > 0) {
    out << "invariants: " << invariant_audits << " audits, "
        << invariant_violations << " violations"
        << (invariant_violations == 0 ? "  [OK]" : "  [VIOLATED]") << "\n";
  }
  out << "conservation: generated " << generated << " = source_drops "
      << source_drops << " + injected " << injected << "; injected = delivered "
      << delivered << " + net_drops " << net_drops << " + failed_link "
      << failed_link_drops << " + node_failure " << node_failure_drops
      << " + fault " << fault_drops << " + queued " << queued_end
      << " + unclaimed " << unclaimed
      << (conserved() ? "  [OK]" : "  [VIOLATED]") << "\n";
  if (cc_flows > 0 || cc_mark_samples > 0) {
    out << "responsive: " << cc_flows << " tcp flows, segments "
        << tcp_segments << ", acked " << tcp_delivered << ", retransmits "
        << tcp_retransmits << ", timeouts " << tcp_timeouts
        << ", reorder timeouts " << tcp_reorder_timeouts << "\n";
    out << "binary feedback: marks " << cc_marks << "/" << cc_mark_samples
        << " samples, echoes " << cc_echoes << ", backoffs " << cc_backoffs
        << "\n";
  }
  out << "lookup caches: route " << route_cache_hits << " hits / "
      << route_cache_misses << " misses, sink " << sink_cache_hits
      << " hits / " << sink_cache_misses << " misses, sink label "
      << sink_label_hits << " hits\n";
  out << "per-class delay (ms): mean / p50 / p99 / p999 / max, jitter mean\n";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const ClassStats& c = classes[i];
    out << "  " << class_name(i) << ": delivered " << c.delivered;
    if (c.delivered > 0) {
      out << ", " << c.delay.mean() * 1e3 << " / " << c.p50.value() * 1e3
          << " / " << c.p99.value() * 1e3 << " / " << c.p999.value() * 1e3
          << " / " << c.delay.max() * 1e3 << ", jitter "
          << c.jitter.mean() * 1e3;
    }
    out << "\n";
  }
  out << "links (from->to: util, realtime):\n";
  for (const LinkReport& l : links) {
    out << "  " << l.link.first << "->" << l.link.second << ": "
        << l.utilization << ", " << l.realtime_utilization << "\n";
  }
}

void ScenarioReport::to_json(std::ostream& out) const {
  out << "{\n";
  out << "  \"spec\": \"" << spec_summary << "\",\n";
  out << "  \"end_time\": " << end_time << ",\n";
  out << "  \"events\": " << events << ",\n";
  out << "  \"conserved\": " << (conserved() ? "true" : "false") << ",\n";
  out << "  \"conservation\": { \"generated\": " << generated
      << ", \"source_drops\": " << source_drops << ", \"injected\": "
      << injected << ", \"delivered\": " << delivered << ", \"net_drops\": "
      << net_drops << ", \"failed_link_drops\": " << failed_link_drops
      << ", \"node_failure_drops\": " << node_failure_drops
      << ", \"fault_drops\": " << fault_drops
      << ", \"queued_end\": " << queued_end
      << ", \"unclaimed\": " << unclaimed << " },\n";
  out << "  \"caches\": { \"route_hits\": " << route_cache_hits
      << ", \"route_misses\": " << route_cache_misses
      << ", \"sink_hits\": " << sink_cache_hits
      << ", \"sink_misses\": " << sink_cache_misses
      << ", \"sink_label_hits\": " << sink_label_hits << " },\n";
  out << "  \"admission\": { \"offered\": " << flows_offered
      << ", \"admitted\": " << flows_admitted << ", \"rejected\": "
      << flows_rejected << ", \"preempted\": " << flows_preempted
      << ", \"ratio\": " << admission_ratio() << ", \"decision_hash\": \""
      << decision_hash() << "\" },\n";
  out << "  \"failures\": { \"links_failed\": " << links_failed
      << ", \"links_repaired\": " << links_repaired << ", \"rerouted\": "
      << flows_rerouted << ", \"degraded\": " << flows_degraded
      << ", \"orphaned\": " << flows_orphaned << " },\n";
  out << "  \"faults\": { \"nodes_crashed\": " << nodes_crashed
      << ", \"nodes_recovered\": " << nodes_recovered
      << ", \"brownouts\": " << brownouts
      << ", \"loss_episodes\": " << loss_episodes
      << ", \"flows_restored\": " << flows_restored
      << ", \"restore_attempts\": " << restore_attempts
      << ", \"invariant_audits\": " << invariant_audits
      << ", \"invariant_violations\": " << invariant_violations << " },\n";
  out << "  \"responsive\": { \"cc_flows\": " << cc_flows
      << ", \"marks\": " << cc_marks
      << ", \"mark_samples\": " << cc_mark_samples
      << ", \"echoes\": " << cc_echoes << ", \"backoffs\": " << cc_backoffs
      << ", \"segments\": " << tcp_segments
      << ", \"acked\": " << tcp_delivered
      << ", \"retransmits\": " << tcp_retransmits
      << ", \"timeouts\": " << tcp_timeouts
      << ", \"reorder_timeouts\": " << tcp_reorder_timeouts << " },\n";
  out << "  \"classes\": {\n";
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const ClassStats& c = classes[i];
    out << "    \"" << class_name(i) << "\": { \"delivered\": " << c.delivered
        << ", \"mean_delay\": " << c.delay.mean() << ", \"p50\": "
        << (c.delivered ? c.p50.value() : 0.0) << ", \"p99\": "
        << (c.delivered ? c.p99.value() : 0.0) << ", \"p999\": "
        << (c.delivered ? c.p999.value() : 0.0) << ", \"max\": "
        << (c.delivered ? c.delay.max() : 0.0) << ", \"jitter_mean\": "
        << c.jitter.mean() << " }" << (i + 1 < classes.size() ? "," : "")
        << "\n";
  }
  out << "  },\n";
  out << "  \"links\": [\n";
  for (std::size_t i = 0; i < links.size(); ++i) {
    out << "    { \"from\": " << links[i].link.first << ", \"to\": "
        << links[i].link.second << ", \"utilization\": "
        << links[i].utilization << ", \"realtime\": "
        << links[i].realtime_utilization << " }"
        << (i + 1 < links.size() ? "," : "") << "\n";
  }
  out << "  ]\n";
  out << "}\n";
}

}  // namespace ispn::scenario
