#include "scenario/scenario.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ispn::scenario {

namespace {

[[noreturn]] void fail(const std::string& key, const std::string& what) {
  throw std::invalid_argument("scenario config: " + what + " '" + key + "'");
}

double parse_double(const std::string& key, const std::string& v) {
  std::size_t used = 0;
  double out = 0;
  try {
    out = std::stod(v, &used);
  } catch (const std::exception&) {
    fail(key, "malformed number for");
  }
  if (used != v.size()) fail(key, "malformed number for");
  // NaN and infinity parse as numbers but poison every downstream
  // comparison (NaN in particular slips past range checks, since both
  // `d < lo` and `d > hi` are false) — reject them at the gate.
  if (!std::isfinite(out)) fail(key, "non-finite number for");
  return out;
}

int parse_int(const std::string& key, const std::string& v) {
  const double d = parse_double(key, v);
  // Range-check before the cast: casting an unrepresentable double to
  // int is undefined behaviour.
  if (d < -2147483648.0 || d > 2147483647.0) {
    fail(key, "integer out of range for");
  }
  const int i = static_cast<int>(d);
  if (static_cast<double>(i) != d) fail(key, "expected an integer for");
  return i;
}

std::size_t parse_size(const std::string& key, const std::string& v) {
  const int i = parse_int(key, v);
  // A negative int cast to size_t wraps to an astronomically large value
  // that sails through `>= 1` validation — refuse before the cast.
  if (i < 0) fail(key, "expected a non-negative integer for");
  return static_cast<std::size_t>(i);
}

std::uint64_t parse_seed(const std::string& key, const std::string& v) {
  const double d = parse_double(key, v);
  // Casting a negative (or 2^64-exceeding) double to uint64 is undefined
  // behaviour, not wraparound.
  if (d < 0 || d >= 18446744073709551616.0) {
    fail(key, "seed out of range for");
  }
  const auto u = static_cast<std::uint64_t>(d);
  if (static_cast<double>(u) != d) fail(key, "expected an integer for");
  return u;
}

bool parse_bool(const std::string& key, const std::string& v) {
  if (v == "true" || v == "1") return true;
  if (v == "false" || v == "0") return false;
  fail(key, "expected true/false for");
}

std::vector<double> parse_list(const std::string& key, const std::string& v) {
  std::vector<double> out;
  std::stringstream ss(v);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(parse_double(key, item));
  if (out.empty()) fail(key, "expected a comma-separated list for");
  return out;
}

/// Parses the fail_link grammar SRC:DST@T[,up@T2] (the tools/scenario_run
/// --fail-link value).
LinkFailureSpec parse_fail_link(const std::string& key, const std::string& v) {
  LinkFailureSpec f;
  const auto comma = v.find(',');
  const std::string head = v.substr(0, comma);
  const auto colon = head.find(':');
  const auto at = head.find('@');
  if (colon == std::string::npos || at == std::string::npos || at < colon) {
    fail(key, "expected SRC:DST@T[,up@T2] for");
  }
  f.src = parse_int(key, head.substr(0, colon));
  f.dst = parse_int(key, head.substr(colon + 1, at - colon - 1));
  f.down_at = parse_double(key, head.substr(at + 1));
  if (comma != std::string::npos) {
    const std::string tail = v.substr(comma + 1);
    if (tail.rfind("up@", 0) != 0) fail(key, "expected ',up@T2' in");
    f.up_at = parse_double(key, tail.substr(3));
  }
  return f;
}

}  // namespace

const char* to_string(FabricKind kind) {
  switch (kind) {
    case FabricKind::kChain: return "chain";
    case FabricKind::kFanInTree: return "fan_in_tree";
    case FabricKind::kParkingLot: return "parking_lot";
    case FabricKind::kMesh: return "mesh";
    case FabricKind::kRing: return "ring";
    case FabricKind::kClos: return "clos";
  }
  return "?";
}

const char* to_string(SourceKind kind) {
  switch (kind) {
    case SourceKind::kOnOff: return "onoff";
    case SourceKind::kCbr: return "cbr";
    case SourceKind::kPoisson: return "poisson";
  }
  return "?";
}

const char* to_string(CcKind kind) {
  switch (kind) {
    case CcKind::kOff: return "off";
    case CcKind::kReno: return "reno";
    case CcKind::kBbr: return "bbr";
    case CcKind::kRack: return "rack";
    case CcKind::kMix: return "mix";
  }
  return "?";
}

void ScenarioSpec::validate() const {
  const auto check = [](bool ok, const char* field) {
    if (!ok) {
      throw std::invalid_argument(std::string("scenario config: ") + field +
                                  " out of range");
    }
  };
  check(chain_switches >= 2, "chain_switches (need >= 2)");
  check(tree_depth >= 2, "tree_depth (need >= 2)");
  check(tree_width >= 1, "tree_width (need >= 1)");
  check(parking_hops >= 1, "parking_hops (need >= 1)");
  check(mesh_rows >= 1 && mesh_cols >= 1 && mesh_rows * mesh_cols >= 2,
        "mesh_rows/mesh_cols (need a >= 2 switch grid)");
  check(ring_switches >= 3, "ring_switches (need >= 3)");
  check(clos_spines >= 1, "clos_spines (need >= 1)");
  check(clos_leaves >= 2, "clos_leaves (need >= 2)");
  check(link_failure_rate >= 0, "link_failure_rate (need >= 0)");
  check(link_repair_mean >= 0, "link_repair_mean (need >= 0)");
  check(flap_prob >= 0 && flap_prob <= 1, "flap_prob (need [0,1])");
  check(flap_burst_max >= 1, "flap_burst_max (need >= 1)");
  check(flap_gap_mean > 0, "flap_gap_mean (need > 0)");
  // Flap bursts ride on repair events: generating failures without
  // repairs while asking for flaps is contradictory, not a silent no-op.
  check(flap_prob == 0 || link_failure_rate == 0 || link_repair_mean > 0,
        "flap_prob (flapping needs repairable links: link_repair_mean > 0)");
  check(node_crash_rate >= 0, "node_crash_rate (need >= 0)");
  check(node_repair_mean >= 0, "node_repair_mean (need >= 0)");
  check(brownout_rate >= 0, "brownout_rate (need >= 0)");
  check(brownout_fraction > 0 && brownout_fraction < 1,
        "brownout_fraction (need (0,1))");
  check(brownout_mean > 0, "brownout_mean (need > 0)");
  // A browned-out link must still clear its committed WFQ clock rates:
  // the fraction may not eat the whole non-datagram share.
  check(brownout_rate == 0 || brownout_fraction > datagram_quota,
        "brownout_fraction (need > datagram_quota or guaranteed flows "
        "cannot survive a brown-out)");
  check(loss_rate >= 0, "loss_rate (need >= 0)");
  check(loss_prob >= 0 && loss_prob <= 1, "loss_prob (need [0,1])");
  check(loss_mean > 0, "loss_mean (need > 0)");
  // Loss episodes that drop nothing are a contradiction, not a no-op.
  check(loss_rate == 0 || loss_prob > 0,
        "loss_prob (loss_rate is set but episodes would drop nothing)");
  check(readmit_backoff >= 0, "readmit_backoff (need >= 0)");
  check(readmit_backoff_factor >= 1,
        "readmit_backoff_factor (need >= 1)");
  check(readmit_backoff_max >= readmit_backoff,
        "readmit_backoff_max (need >= readmit_backoff)");
  check(readmit_max_attempts >= 1, "readmit_max_attempts (need >= 1)");
  check(invariant_cadence >= 0, "invariant_cadence (need >= 0)");
  for (const auto& f : link_failures) {
    check(f.src >= 0 && f.dst >= 0 && f.src != f.dst,
          "link_failures (need distinct non-negative node ids)");
    check(f.down_at >= 0, "link_failures (need down_at >= 0)");
    check(f.up_at < 0 || f.up_at > f.down_at,
          "link_failures (need up_at > down_at)");
  }
  check(link_rate > 0, "link_rate (need > 0)");
  check(parking_rate_step > 0, "parking_rate_step (need > 0)");
  check(buffer_pkts >= 1, "buffer_pkts (need >= 1)");
  check(!class_targets.empty() &&
            std::is_sorted(class_targets.begin(), class_targets.end()) &&
            class_targets.front() > 0,
        "class_targets (need ascending positives)");
  check(target_flows >= 1, "target_flows (need >= 1)");
  check(p_guaranteed >= 0 && p_predicted >= 0 &&
            p_guaranteed + p_predicted <= 1.0 + 1e-12,
        "p_guaranteed/p_predicted (need a sub-unit mix)");
  check(long_flow_fraction >= 0 && long_flow_fraction <= 1,
        "long_flow_fraction (need [0,1])");
  check(avg_rate_pps > 0, "avg_rate_pps (need > 0)");
  check(peak_factor >= 1, "peak_factor (need >= 1)");
  check(packet_bits > 0, "packet_bits (need > 0)");
  check(target_delay > 0, "target_delay (need > 0)");
  check(run_seconds > 0, "run_seconds (need > 0)");
  check(drain_grace > 0, "drain_grace (need > 0)");
  check(datagram_quota > 0 && datagram_quota < 1,
        "datagram_quota (need (0,1))");
  check(measurement_window > 0, "measurement_window (need > 0)");
  check(measurement_safety >= 1, "measurement_safety (need >= 1)");
  check(measurement_ewma_gain > 0 && measurement_ewma_gain <= 1,
        "measurement_ewma_gain (need (0,1])");
  check(shards >= 0, "shards (need >= 0)");
  check(shards == 0 || link_latency > 0,
        "link_latency (need > 0 with shards >= 1)");
  check(mark_threshold > 0, "mark_threshold (need > 0)");
  check(cc_max_cwnd >= 2, "cc_max_cwnd (need >= 2)");
}

core::IspnNetwork::Config ScenarioSpec::network_config() const {
  core::IspnNetwork::Config cfg;
  cfg.link_rate = link_rate;
  cfg.buffer_pkts = buffer_pkts;
  cfg.class_targets = class_targets;
  cfg.admission = {admission_mode, datagram_quota};
  cfg.enforce_admission = false;  // the runner records, never throws
  cfg.measurement_window = measurement_window;
  cfg.measurement_safety = measurement_safety;
  cfg.measurement_estimator = measurement_estimator;
  cfg.measurement_ewma_gain = measurement_ewma_gain;
  cfg.seed = seed;
  cfg.event_backend = event_backend;
  cfg.order_backend = order_backend;
  cfg.sharded = shards >= 1;
  cfg.link_latency = link_latency;
  cfg.hierarchical = hierarchical;
  cfg.binary_feedback = binary_feedback;
  cfg.mark_threshold = mark_threshold;
  return cfg;
}

fault::FaultSpec ScenarioSpec::fault_spec() const {
  fault::FaultSpec f;
  f.link_failure_rate = link_failure_rate;
  f.link_repair_mean = link_repair_mean;
  f.flap_prob = flap_prob;
  f.flap_burst_max = flap_burst_max;
  f.flap_gap_mean = flap_gap_mean;
  f.node_crash_rate = node_crash_rate;
  f.node_repair_mean = node_repair_mean;
  f.brownout_rate = brownout_rate;
  f.brownout_fraction = brownout_fraction;
  f.brownout_mean = brownout_mean;
  f.loss_rate = loss_rate;
  f.loss_prob = loss_prob;
  f.loss_mean = loss_mean;
  return f;
}

std::string ScenarioSpec::describe() const {
  std::ostringstream out;
  out << "fabric=" << to_string(fabric);
  switch (fabric) {
    case FabricKind::kChain: out << " switches=" << chain_switches; break;
    case FabricKind::kFanInTree:
      out << " depth=" << tree_depth << " width=" << tree_width;
      break;
    case FabricKind::kParkingLot:
      out << " hops=" << parking_hops << " step=" << parking_rate_step;
      break;
    case FabricKind::kMesh:
      out << " grid=" << mesh_rows << "x" << mesh_cols;
      break;
    case FabricKind::kRing: out << " switches=" << ring_switches; break;
    case FabricKind::kClos:
      out << " spines=" << clos_spines << " leaves=" << clos_leaves;
      break;
  }
  out << " link=" << link_rate / 1e6 << "Mb/s flows<=" << target_flows
      << " arrivals=" << arrival_rate << "/s hold=" << mean_hold << "s mix=G"
      << p_guaranteed << "/P" << p_predicted << " source="
      << to_string(source) << " run=" << run_seconds << "s seed=" << seed;
  if (shards >= 1) {
    out << " shards=" << shards << " latency=" << link_latency * 1e3 << "ms";
  }
  if (hierarchical) out << " hierarchical";
  if (cc != CcKind::kOff) out << " cc=" << to_string(cc);
  if (binary_feedback) out << " feedback@" << mark_threshold;
  if (!link_failures.empty() || link_failure_rate > 0) {
    out << " failures=" << link_failures.size();
    if (link_failure_rate > 0) {
      out << "+rate" << link_failure_rate << "/s";
      if (link_repair_mean > 0) out << " repair=" << link_repair_mean << "s";
    }
    out << " policy="
        << (reroute_policy == ReroutePolicy::kDegrade ? "degrade" : "preempt");
  }
  if (node_crash_rate > 0) {
    out << " crashes=" << node_crash_rate << "/s";
    if (node_repair_mean > 0) out << " noderepair=" << node_repair_mean << "s";
  }
  if (brownout_rate > 0) {
    out << " brownouts=" << brownout_rate << "/s@x" << brownout_fraction;
  }
  if (loss_rate > 0) out << " loss=" << loss_rate << "/s@p" << loss_prob;
  if (flap_prob > 0) out << " flap=" << flap_prob;
  if (readmit_backoff > 0) out << " readmit=" << readmit_backoff << "s";
  if (invariant_cadence > 0) out << " monitor=" << invariant_cadence << "s";
  return out.str();
}

ScenarioSpec preset(const std::string& name) {
  ScenarioSpec spec;
  if (name == "chain") {
    spec.fabric = FabricKind::kChain;
    spec.chain_switches = 8;
  } else if (name == "fan_in") {
    spec.fabric = FabricKind::kFanInTree;
    spec.tree_depth = 2;
    spec.tree_width = 4;
    spec.target_flows = 16;
    spec.arrival_rate = 4.0;
  } else if (name == "parking_lot") {
    spec.fabric = FabricKind::kParkingLot;
    spec.parking_hops = 4;
    spec.target_flows = 24;
  } else if (name == "churn") {
    // Admission churn: tight links under fast arrivals and departures, so
    // the live ν̂/d̂ feed actually refuses (and with preemption, evicts).
    spec.fabric = FabricKind::kChain;
    spec.chain_switches = 6;
    spec.arrival_rate = 10.0;
    spec.mean_hold = 3.0;
    spec.target_flows = 48;
    spec.p_guaranteed = 0.35;
    spec.p_predicted = 0.45;
    spec.preempt_on_reject = true;
    // Churn needs a ν̂ that decays when flows leave: the time-window peak
    // estimator holds a departed flow's peak for a full window, starving
    // admission of freed capacity.
    spec.measurement_estimator = core::LinkMeasurement::Estimator::kEwma;
  } else if (name == "failure") {
    // Link failures on a mesh: every pair keeps an alternate path, so
    // failures trigger rerouting + admission re-validation instead of
    // partition.  The EWMA estimator decays the dead link's history.
    spec.fabric = FabricKind::kMesh;
    spec.mesh_rows = 3;
    spec.mesh_cols = 3;
    spec.arrival_rate = 6.0;
    spec.mean_hold = 8.0;
    spec.target_flows = 36;
    spec.p_guaranteed = 0.3;
    spec.p_predicted = 0.4;
    spec.link_failure_rate = 0.04;
    spec.link_repair_mean = 4.0;
    spec.measurement_estimator = core::LinkMeasurement::Estimator::kEwma;
  } else if (name == "chaos") {
    // Everything at once: link failures with flapping, switch crashes,
    // capacity brown-outs, transient loss — on a mesh (alternate paths
    // everywhere), with the invariant monitor auditing continuously and
    // degraded flows retrying re-admission under exponential backoff.
    spec.fabric = FabricKind::kMesh;
    spec.mesh_rows = 3;
    spec.mesh_cols = 3;
    spec.arrival_rate = 6.0;
    spec.mean_hold = 8.0;
    spec.target_flows = 36;
    spec.p_guaranteed = 0.3;
    spec.p_predicted = 0.4;
    spec.link_failure_rate = 0.04;
    spec.link_repair_mean = 3.0;
    spec.flap_prob = 0.25;
    spec.node_crash_rate = 0.01;
    spec.node_repair_mean = 2.0;
    spec.brownout_rate = 0.03;
    spec.brownout_fraction = 0.5;
    spec.brownout_mean = 2.0;
    spec.loss_rate = 0.05;
    spec.loss_prob = 0.02;
    spec.loss_mean = 1.0;
    spec.readmit_backoff = 0.5;
    spec.invariant_cadence = 0.5;
    spec.measurement_estimator = core::LinkMeasurement::Estimator::kEwma;
  } else {
    throw std::invalid_argument("unknown scenario preset '" + name + "'");
  }
  return spec;
}

void apply_scale(ScenarioSpec& spec, const std::string& scale) {
  if (scale == "smoke") {
    spec.run_seconds = 1.0;
    spec.drain_grace = 0.25;
  } else if (scale == "small") {
    spec.run_seconds = 6.0;
    spec.drain_grace = 0.5;
  } else if (scale == "large") {
    // Million-packet class: 10x links, 10x source rates, longer run.
    spec.link_rate *= 10.0;
    spec.avg_rate_pps *= 10.0;
    spec.target_flows = std::max(spec.target_flows, 48);
    spec.run_seconds = 120.0;
  } else {
    throw std::invalid_argument("unknown scenario scale '" + scale + "'");
  }
}

void apply_override(ScenarioSpec& spec, const std::string& key,
                    const std::string& value) {
  if (key == "preset") {
    const ScenarioSpec base = preset(value);
    spec = base;
  } else if (key == "scale") {
    apply_scale(spec, value);
  } else if (key == "fabric") {
    if (value == "chain") spec.fabric = FabricKind::kChain;
    else if (value == "fan_in_tree" || value == "fan_in")
      spec.fabric = FabricKind::kFanInTree;
    else if (value == "parking_lot") spec.fabric = FabricKind::kParkingLot;
    else if (value == "mesh") spec.fabric = FabricKind::kMesh;
    else if (value == "ring") spec.fabric = FabricKind::kRing;
    else if (value == "clos") spec.fabric = FabricKind::kClos;
    else fail(key, "unknown fabric for");
  } else if (key == "chain_switches") {
    spec.chain_switches = parse_int(key, value);
  } else if (key == "tree_depth") {
    spec.tree_depth = parse_int(key, value);
  } else if (key == "tree_width") {
    spec.tree_width = parse_int(key, value);
  } else if (key == "parking_hops") {
    spec.parking_hops = parse_int(key, value);
  } else if (key == "mesh_rows") {
    spec.mesh_rows = parse_int(key, value);
  } else if (key == "mesh_cols") {
    spec.mesh_cols = parse_int(key, value);
  } else if (key == "ring_switches") {
    spec.ring_switches = parse_int(key, value);
  } else if (key == "clos_spines") {
    spec.clos_spines = parse_int(key, value);
  } else if (key == "clos_leaves") {
    spec.clos_leaves = parse_int(key, value);
  } else if (key == "fail_link") {
    // Appends (several --fail-link flags compose).
    spec.link_failures.push_back(parse_fail_link(key, value));
  } else if (key == "link_failure_rate") {
    spec.link_failure_rate = parse_double(key, value);
  } else if (key == "link_repair_mean") {
    spec.link_repair_mean = parse_double(key, value);
  } else if (key == "flap_prob") {
    spec.flap_prob = parse_double(key, value);
  } else if (key == "flap_burst_max") {
    spec.flap_burst_max = parse_int(key, value);
  } else if (key == "flap_gap_mean") {
    spec.flap_gap_mean = parse_double(key, value);
  } else if (key == "node_crash_rate") {
    spec.node_crash_rate = parse_double(key, value);
  } else if (key == "node_repair_mean") {
    spec.node_repair_mean = parse_double(key, value);
  } else if (key == "brownout_rate") {
    spec.brownout_rate = parse_double(key, value);
  } else if (key == "brownout_fraction") {
    spec.brownout_fraction = parse_double(key, value);
  } else if (key == "brownout_mean") {
    spec.brownout_mean = parse_double(key, value);
  } else if (key == "loss_rate") {
    spec.loss_rate = parse_double(key, value);
  } else if (key == "loss_prob") {
    spec.loss_prob = parse_double(key, value);
  } else if (key == "loss_mean") {
    spec.loss_mean = parse_double(key, value);
  } else if (key == "readmit_backoff") {
    spec.readmit_backoff = parse_double(key, value);
  } else if (key == "readmit_backoff_factor") {
    spec.readmit_backoff_factor = parse_double(key, value);
  } else if (key == "readmit_backoff_max") {
    spec.readmit_backoff_max = parse_double(key, value);
  } else if (key == "readmit_max_attempts") {
    spec.readmit_max_attempts = parse_int(key, value);
  } else if (key == "invariant_cadence") {
    spec.invariant_cadence = parse_double(key, value);
  } else if (key == "reroute_policy") {
    if (value == "degrade") spec.reroute_policy = ReroutePolicy::kDegrade;
    else if (value == "preempt") spec.reroute_policy = ReroutePolicy::kPreempt;
    else fail(key, "unknown reroute policy for");
  } else if (key == "link_rate") {
    spec.link_rate = parse_double(key, value);
  } else if (key == "parking_rate_step") {
    spec.parking_rate_step = parse_double(key, value);
  } else if (key == "buffer_pkts") {
    spec.buffer_pkts = parse_size(key, value);
  } else if (key == "class_targets") {
    spec.class_targets = parse_list(key, value);
  } else if (key == "arrival_rate") {
    spec.arrival_rate = parse_double(key, value);
  } else if (key == "arrival_window") {
    spec.arrival_window = parse_double(key, value);
  } else if (key == "target_flows") {
    spec.target_flows = parse_int(key, value);
  } else if (key == "mean_hold") {
    spec.mean_hold = parse_double(key, value);
  } else if (key == "p_guaranteed") {
    spec.p_guaranteed = parse_double(key, value);
  } else if (key == "p_predicted") {
    spec.p_predicted = parse_double(key, value);
  } else if (key == "long_flow_fraction") {
    spec.long_flow_fraction = parse_double(key, value);
  } else if (key == "source") {
    if (value == "onoff") spec.source = SourceKind::kOnOff;
    else if (value == "cbr") spec.source = SourceKind::kCbr;
    else if (value == "poisson") spec.source = SourceKind::kPoisson;
    else fail(key, "unknown source kind for");
  } else if (key == "avg_rate_pps") {
    spec.avg_rate_pps = parse_double(key, value);
  } else if (key == "peak_factor") {
    spec.peak_factor = parse_double(key, value);
  } else if (key == "packet_bits") {
    spec.packet_bits = parse_double(key, value);
  } else if (key == "target_delay") {
    spec.target_delay = parse_double(key, value);
  } else if (key == "target_loss") {
    spec.target_loss = parse_double(key, value);
  } else if (key == "cc") {
    if (value == "off") spec.cc = CcKind::kOff;
    else if (value == "reno") spec.cc = CcKind::kReno;
    else if (value == "bbr") spec.cc = CcKind::kBbr;
    else if (value == "rack") spec.cc = CcKind::kRack;
    else if (value == "mix") spec.cc = CcKind::kMix;
    else fail(key, "unknown congestion control for");
  } else if (key == "binary_feedback") {
    spec.binary_feedback = parse_bool(key, value);
  } else if (key == "mark_threshold") {
    spec.mark_threshold = parse_double(key, value);
  } else if (key == "cc_max_cwnd") {
    spec.cc_max_cwnd = parse_double(key, value);
  } else if (key == "preempt_on_reject") {
    spec.preempt_on_reject = parse_bool(key, value);
  } else if (key == "run_seconds") {
    spec.run_seconds = parse_double(key, value);
  } else if (key == "drain_grace") {
    spec.drain_grace = parse_double(key, value);
  } else if (key == "seed") {
    spec.seed = parse_seed(key, value);
  } else if (key == "admission_mode") {
    if (value == "measurement")
      spec.admission_mode = core::AdmissionController::Mode::kMeasurementBased;
    else if (value == "parameter")
      spec.admission_mode = core::AdmissionController::Mode::kParameterBased;
    else fail(key, "unknown admission mode for");
  } else if (key == "datagram_quota") {
    spec.datagram_quota = parse_double(key, value);
  } else if (key == "measurement_window") {
    spec.measurement_window = parse_double(key, value);
  } else if (key == "measurement_safety") {
    spec.measurement_safety = parse_double(key, value);
  } else if (key == "measurement_estimator") {
    if (value == "peak")
      spec.measurement_estimator = core::LinkMeasurement::Estimator::kPeakEpoch;
    else if (value == "ewma")
      spec.measurement_estimator = core::LinkMeasurement::Estimator::kEwma;
    else fail(key, "unknown estimator for");
  } else if (key == "measurement_ewma_gain") {
    spec.measurement_ewma_gain = parse_double(key, value);
  } else if (key == "shards") {
    spec.shards = parse_int(key, value);
  } else if (key == "link_latency") {
    spec.link_latency = parse_double(key, value);
  } else if (key == "event_backend") {
    if (value == "heap") spec.event_backend = sim::EventBackend::kHeap;
    else if (value == "wheel") spec.event_backend = sim::EventBackend::kWheel;
    else if (value == "auto") spec.event_backend = sim::EventBackend::kAuto;
    else fail(key, "unknown event backend for");
  } else if (key == "hierarchical") {
    spec.hierarchical = parse_bool(key, value);
  } else if (key == "order_backend") {
    if (value == "heap") spec.order_backend = sched::OrderBackend::kHeap;
    else if (value == "calendar")
      spec.order_backend = sched::OrderBackend::kCalendar;
    else if (value == "auto") spec.order_backend = sched::OrderBackend::kAuto;
    else fail(key, "unknown order backend for");
  } else {
    fail(key, "unknown key");
  }
}

namespace {

/// Tokenizes the JSON-ish object into (key, value) pairs.  Grammar:
/// optional outer { }; entries "key": value or key = value, separated by
/// commas and/or newlines; values are bare tokens or quoted strings; '#'
/// starts a comment.
std::vector<std::pair<std::string, std::string>> tokenize(
    const std::string& text) {
  std::vector<std::pair<std::string, std::string>> pairs;
  std::size_t i = 0;
  const auto skip = [&] {
    while (i < text.size()) {
      if (std::isspace(static_cast<unsigned char>(text[i])) != 0 ||
          text[i] == ',' || text[i] == '{' || text[i] == '}') {
        ++i;
      } else if (text[i] == '#') {
        while (i < text.size() && text[i] != '\n') ++i;
      } else {
        break;
      }
    }
  };
  const auto token = [&]() -> std::string {
    if (i < text.size() && text[i] == '"') {
      const std::size_t start = ++i;
      while (i < text.size() && text[i] != '"') ++i;
      if (i >= text.size()) {
        throw std::invalid_argument("scenario config: unterminated string");
      }
      return text.substr(start, i++ - start);
    }
    const std::size_t start = i;
    while (i < text.size() &&
           std::isspace(static_cast<unsigned char>(text[i])) == 0 &&
           text[i] != ':' && text[i] != '=' && text[i] != ',' &&
           text[i] != '}' && text[i] != '#') {
      ++i;
    }
    return text.substr(start, i - start);
  };
  while (true) {
    skip();
    if (i >= text.size()) break;
    const std::string key = token();
    if (key.empty()) {
      throw std::invalid_argument("scenario config: expected a key");
    }
    skip();
    if (i < text.size() && (text[i] == ':' || text[i] == '=')) ++i;
    skip();
    const std::string value = token();
    if (value.empty()) {
      throw std::invalid_argument("scenario config: missing value for '" +
                                  key + "'");
    }
    pairs.emplace_back(key, value);
  }
  return pairs;
}

}  // namespace

bool apply_json(ScenarioSpec& spec, const std::string& text) {
  auto pairs = tokenize(text);
  // Apply preset first (it REPLACES the spec), then scale, then every
  // other key — so overrides always win regardless of file order.
  std::stable_partition(pairs.begin(), pairs.end(),
                        [](const auto& kv) { return kv.first == "scale"; });
  std::stable_partition(pairs.begin(), pairs.end(),
                        [](const auto& kv) { return kv.first == "preset"; });
  bool contained_preset = false;
  for (const auto& [key, value] : pairs) {
    contained_preset = contained_preset || key == "preset";
    apply_override(spec, key, value);
  }
  return contained_preset;
}

ScenarioSpec spec_from_json(const std::string& text) {
  ScenarioSpec spec;
  apply_json(spec, text);
  return spec;
}

}  // namespace ispn::scenario
