// Parameterized scenario fabrics (ROADMAP "scale scenarios").
//
// A ScenarioSpec describes one complete experiment beyond the paper's
// fixed Figure-1 runs: a fabric (scaled-up chain, fan-in/fan-out
// aggregation tree, or multi-bottleneck parking lot with per-hop
// entry/exit traffic), an engine configuration (event/order backends,
// buffer sizes, link rates), an admission-control configuration
// (measurement-based by default — the paper's design), and a workload of
// flows that ARRIVE OVER SIMULATED TIME with FlowSpecs, get admitted or
// refused by the live measurement feed, hold for a while and depart.
//
// Specs come from three places: C++ presets (preset()), the JSON-ish
// config files of tools/scenario_run (spec_from_json), and tests/benches
// constructing them directly.  ScenarioRunner (runner.h) executes a spec;
// ScenarioReport (report.h) is the result.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.h"
#include "fault/fault.h"
#include "sim/units.h"

namespace ispn::scenario {

/// Which fabric the generator builds.
enum class FabricKind {
  kChain,      ///< scaled-up Figure-1 chain (chain_switches long)
  kFanInTree,  ///< width-ary aggregation tree, tree_depth levels
  kParkingLot, ///< parking_hops bottlenecks, entry/exit host per hop
  kMesh,       ///< mesh_rows x mesh_cols grid (alternate paths everywhere)
  kRing,       ///< ring_switches cycle (exactly two disjoint paths)
  kClos,       ///< clos_spines x clos_leaves folded Clos
};

/// Which generation process drives each flow.
enum class SourceKind {
  kOnOff,    ///< the paper's two-state Markov source
  kCbr,      ///< deterministic constant bit rate
  kPoisson,  ///< exponential gaps
};

/// Which congestion-control stack drives the datagram (best-effort) flows.
/// kOff keeps the classic open-loop sources; everything else replaces the
/// datagram flows' generators with responsive TCP transfers (traffic/tcp.h)
/// running the named stack.  kMix assigns reno/bbr/rack round-robin by
/// flow id — the CC-mix differential workload.
enum class CcKind {
  kOff,
  kReno,
  kBbr,
  kRack,
  kMix,
};

/// One explicit link failure: the switch-to-switch link src<->dst goes
/// down at down_at and (when up_at >= 0) recovers at up_at.
struct LinkFailureSpec {
  net::NodeId src = -1;
  net::NodeId dst = -1;
  sim::Duration down_at = 0;
  sim::Duration up_at = -1;  ///< < 0: stays down for the rest of the run
};

/// What happens to an admitted flow refused on its post-failure path.
enum class ReroutePolicy {
  kDegrade,  ///< carry it on as datagram (the paper's fallback class)
  kPreempt,  ///< tear it down
};

struct ScenarioSpec {
  // ---- fabric ----------------------------------------------------------
  FabricKind fabric = FabricKind::kChain;
  int chain_switches = 8;
  int tree_depth = 2;   ///< switch levels (>= 2)
  int tree_width = 4;   ///< children per switch
  int parking_hops = 4; ///< bottleneck links
  int mesh_rows = 3;    ///< mesh fabric grid height
  int mesh_cols = 3;    ///< mesh fabric grid width
  int ring_switches = 6;
  int clos_spines = 2;
  int clos_leaves = 4;
  sim::Rate link_rate = sim::paper::kLinkRate;
  /// Per-hop rate multiplier for the parking lot (hop i runs at
  /// link_rate * parking_rate_step^i): != 1 gives asymmetric bottlenecks.
  double parking_rate_step = 1.0;
  std::size_t buffer_pkts = sim::paper::kBufferPackets;
  std::vector<sim::Duration> class_targets = {0.008, 0.064};

  // ---- workload --------------------------------------------------------
  /// Flow arrival rate (flows/s, Poisson).  <= 0: open target_flows in one
  /// deterministic batch at t=0 (bench/soak mode).
  double arrival_rate = 2.0;
  /// Arrivals stop after this window (<= 0: the whole run).
  sim::Duration arrival_window = 0;
  /// Cap on concurrently open flows (and the t=0 batch size).
  int target_flows = 24;
  /// Mean exponential holding time before a flow departs (<= 0: never).
  sim::Duration mean_hold = 20.0;
  double p_guaranteed = 0.2;  ///< service mix: P(guaranteed)
  double p_predicted = 0.5;   ///< P(predicted); the rest is datagram
  /// Fraction of flows drawn from the fabric's long (multi-bottleneck)
  /// origin-destination pairs; the rest take short/per-hop pairs.
  double long_flow_fraction = 0.35;
  SourceKind source = SourceKind::kOnOff;
  double avg_rate_pps = sim::paper::kAvgPacketRate;
  double peak_factor = sim::paper::kPeakFactor;
  sim::Bits packet_bits = sim::paper::kPacketBits;
  sim::Duration target_delay = 0.1;  ///< predicted flows' requested D
  double target_loss = 0.01;         ///< predicted flows' requested L
  /// On a guaranteed rejection, tear down the youngest predicted flow on
  /// the refusing hop and retry, up to 8 victims per request (each
  /// eviction recorded as kPreempted).
  bool preempt_on_reject = false;

  // ---- responsive traffic (DEC-TR-506 binary feedback) -----------------
  /// Congestion control for datagram flows (off | reno | bbr | rack | mix).
  CcKind cc = CcKind::kOff;
  /// Schedulers mark Packet::cong_mark when the time-averaged datagram
  /// queue length reaches mark_threshold; TCP sinks echo the bit and
  /// responsive sources run AIMD on the echoes.
  bool binary_feedback = false;
  double mark_threshold = 1.0;
  /// Receiver-window cap for responsive flows, in packets.
  double cc_max_cwnd = 64.0;

  // ---- failures --------------------------------------------------------
  /// Explicit failures (tools --fail-link, tests).  Validated against the
  /// built fabric at prepare() time; a nonexistent link throws.
  std::vector<LinkFailureSpec> link_failures;
  /// Seeded generation: each QoS link independently fails at exponential
  /// rate link_failure_rate (failures/s; 0 disables)...
  double link_failure_rate = 0;
  /// ...and repairs after an exponential holding time of this mean
  /// (seconds; 0: failures are permanent).
  sim::Duration link_repair_mean = 0;
  /// Probability a link repair is followed by a bounded flap burst
  /// (immediate down/up pairs on a dedicated RNG stream; 0 disables).
  double flap_prob = 0;
  int flap_burst_max = 3;          ///< max extra down/up pairs per burst
  sim::Duration flap_gap_mean = 0.05;  ///< mean gap inside a flap burst
  /// Switch crashes: each switch independently crashes at this exponential
  /// rate (crashes/s; 0 disables) taking ALL incident links down at once...
  double node_crash_rate = 0;
  /// ...and recovers after an exponential holding time (0: stays down).
  sim::Duration node_repair_mean = 0;
  /// Capacity brown-outs: each QoS link independently degrades to
  /// brownout_fraction of its as-built rate at this exponential rate...
  double brownout_rate = 0;
  double brownout_fraction = 0.5;      ///< degraded rate as a fraction
  sim::Duration brownout_mean = 2.0;   ///< mean brown-out duration
  /// Transient per-link packet loss episodes: Bernoulli(loss_prob) per
  /// transmitted packet while an episode is active.
  double loss_rate = 0;                ///< episodes/s per link (0: off)
  double loss_prob = 0.01;             ///< per-packet drop probability
  sim::Duration loss_mean = 1.0;       ///< mean episode duration
  /// Policy for admitted flows refused re-admission after a reroute.
  ReroutePolicy reroute_policy = ReroutePolicy::kDegrade;
  /// Retry re-admission of degraded flows when capacity returns: first
  /// retry after readmit_backoff seconds, each failure multiplying the
  /// delay by readmit_backoff_factor up to readmit_backoff_max, at most
  /// readmit_max_attempts tries per degradation (0 backoff disables).
  sim::Duration readmit_backoff = 0;
  double readmit_backoff_factor = 2.0;
  sim::Duration readmit_backoff_max = 10.0;
  int readmit_max_attempts = 6;
  /// Runtime invariant monitor cadence (sim seconds between audits of
  /// conservation, admission accounting and scheduler coherence; 0: off).
  sim::Duration invariant_cadence = 0;

  // ---- run -------------------------------------------------------------
  sim::Duration run_seconds = 30.0;
  sim::Duration drain_grace = 1.0;  ///< close-retry period for guaranteed
  std::uint64_t seed = 1;

  // ---- admission / measurement ----------------------------------------
  core::AdmissionController::Mode admission_mode =
      core::AdmissionController::Mode::kMeasurementBased;
  double datagram_quota = 0.1;
  sim::Duration measurement_window = 10.0;
  double measurement_safety = 1.2;
  core::LinkMeasurement::Estimator measurement_estimator =
      core::LinkMeasurement::Estimator::kPeakEpoch;
  double measurement_ewma_gain = 0.25;

  // ---- engine ----------------------------------------------------------
  sim::EventBackend event_backend = sim::EventBackend::kAuto;
  sched::OrderBackend order_backend = sched::OrderBackend::kAuto;
  /// Two-level aggregate scheduling: per-link scheduler state bounded by
  /// {guaranteed flows, K classes, datagram} instead of per-flow — the
  /// million-flow regime.  Default off (classic flat, byte-identical).
  bool hierarchical = false;
  /// Worker threads for the sharded parallel core (sim/shard.h).  0 keeps
  /// the classic single-clock path.  Any value >= 1 selects the sharded
  /// execution model: one domain per switch, conservative lookahead sync
  /// on link_latency — results are bit-identical for EVERY shards value
  /// >= 1 (the count only maps domains onto threads), but differ from
  /// shards=0 because cross-switch links gain propagation delay.
  int shards = 0;
  /// Propagation delay of switch-switch links in sharded mode (the
  /// lookahead window).
  sim::Duration link_latency = 0.001;

  /// Throws std::invalid_argument naming the offending field when the
  /// spec is out of range.  ScenarioRunner validates on construction, so
  /// hostile CLI/config values fail cleanly even in Release builds
  /// (where the library's asserts are compiled out).
  void validate() const;

  /// The IspnNetwork configuration this spec implies.
  [[nodiscard]] core::IspnNetwork::Config network_config() const;

  /// The seeded fault families this spec enables, as one FaultSpec for
  /// fault::draw_schedule (explicit link_failures are handled separately).
  [[nodiscard]] fault::FaultSpec fault_spec() const;

  /// One-line summary for logs and reports.
  [[nodiscard]] std::string describe() const;
};

/// Named presets: "chain", "fan_in", "parking_lot", "churn" (an
/// admission-churn chain: fast arrivals/departures against tight links),
/// "failure" (a mesh under seeded link failures and repairs with the EWMA
/// estimator, exercising rerouting and admission re-validation), "chaos"
/// (a mesh under ALL fault families — crashes, brown-outs, loss, flapping
/// — with the invariant monitor and re-admission backoff on).
/// Throws std::invalid_argument on unknown names.
[[nodiscard]] ScenarioSpec preset(const std::string& name);

/// Scales a preset: "smoke" (sub-second), "small" (a few seconds, the
/// golden-trace size), "large" (million-packet class).
void apply_scale(ScenarioSpec& spec, const std::string& scale);

/// Parses a flat JSON-ish object ({"key": value, ...}; keys may be bare,
/// values are numbers, booleans or strings; '#' comments allowed) into an
/// existing spec — unknown keys or malformed values throw
/// std::invalid_argument with the offending key.  Accepted keys mirror
/// the field names above plus "preset" and "scale" (applied first, in
/// that order, regardless of file position).  Returns true when the text
/// contained a "preset" key — callers layering configs use this to
/// refuse a preset that would discard earlier settings.
bool apply_json(ScenarioSpec& spec, const std::string& text);

/// apply_json onto a default-constructed (or preset-selected) spec.
[[nodiscard]] ScenarioSpec spec_from_json(const std::string& text);

/// Applies one key=value override (the CLI's trailing args).  Throws
/// std::invalid_argument on unknown keys.  NOTE: "preset" REPLACES the
/// whole spec (discarding earlier overrides) — apply_json orders preset
/// before scale before everything else for exactly this reason, and the
/// CLI refuses --preset after other settings.
void apply_override(ScenarioSpec& spec, const std::string& key,
                    const std::string& value);

[[nodiscard]] const char* to_string(FabricKind kind);
[[nodiscard]] const char* to_string(SourceKind kind);
[[nodiscard]] const char* to_string(CcKind kind);

}  // namespace ispn::scenario
