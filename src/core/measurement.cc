#include "core/measurement.h"

#include <cassert>

namespace ispn::core {

namespace {
/// Epoch count shared by both ν̂ estimators and the d̂_j windows.
constexpr std::size_t kEpochs = 10;
}  // namespace

LinkMeasurement::LinkMeasurement(Config config)
    : config_(config),
      realtime_bits_(config.window, kEpochs),
      epoch_len_(config.window / static_cast<double>(kEpochs)) {
  assert(config_.link_rate > 0);
  assert(config_.num_predicted_classes >= 1);
  assert(config_.safety_factor >= 1.0);
  assert(config_.ewma_gain > 0.0 && config_.ewma_gain <= 1.0);
  class_delay_.reserve(
      static_cast<std::size_t>(config_.num_predicted_classes) + 1);
  for (int i = 0; i <= config_.num_predicted_classes; ++i) {
    class_delay_.emplace_back(config_.window, kEpochs);
  }
}

void LinkMeasurement::settle_ewma(sim::Time now) {
  const auto epoch = static_cast<long long>(now / epoch_len_);
  while (ewma_epoch_ < epoch) {
    const double rate = epoch_bits_ / epoch_len_;
    if (!ewma_primed_) {
      ewma_bps_ = rate;
      ewma_primed_ = true;
    } else {
      ewma_bps_ += config_.ewma_gain * (rate - ewma_bps_);
    }
    epoch_bits_ = 0;
    ++ewma_epoch_;
  }
}

void LinkMeasurement::on_realtime_tx(sim::Bits bits, sim::Time now) {
  realtime_bits_.add(now, bits);
  settle_ewma(now);
  epoch_bits_ += bits;
}

void LinkMeasurement::on_class_wait(int klass, sim::Duration wait,
                                    sim::Time now) {
  assert(klass >= 0 &&
         klass <= config_.num_predicted_classes);
  class_delay_[static_cast<std::size_t>(klass)].add(now, wait);
}

sim::Rate LinkMeasurement::ewma_rate(sim::Time now) {
  settle_ewma(now);
  return ewma_bps_;
}

double LinkMeasurement::measured_utilization(sim::Time now) {
  if (config_.estimator == Estimator::kEwma) {
    return config_.safety_factor * ewma_rate(now) / config_.link_rate;
  }
  return config_.safety_factor * realtime_bits_.peak_rate(now) /
         config_.link_rate;
}

sim::Duration LinkMeasurement::measured_delay(int klass, sim::Time now) {
  assert(klass >= 0 && klass <= config_.num_predicted_classes);
  return config_.safety_factor *
         class_delay_[static_cast<std::size_t>(klass)].max(now);
}

}  // namespace ispn::core
