#include "core/measurement.h"

#include <cassert>

namespace ispn::core {

LinkMeasurement::LinkMeasurement(Config config)
    : config_(config), realtime_bits_(config.window, 10) {
  assert(config_.link_rate > 0);
  assert(config_.num_predicted_classes >= 1);
  assert(config_.safety_factor >= 1.0);
  class_delay_.reserve(
      static_cast<std::size_t>(config_.num_predicted_classes) + 1);
  for (int i = 0; i <= config_.num_predicted_classes; ++i) {
    class_delay_.emplace_back(config_.window, 10);
  }
}

void LinkMeasurement::on_realtime_tx(sim::Bits bits, sim::Time now) {
  realtime_bits_.add(now, bits);
}

void LinkMeasurement::on_class_wait(int klass, sim::Duration wait,
                                    sim::Time now) {
  assert(klass >= 0 &&
         klass <= config_.num_predicted_classes);
  class_delay_[static_cast<std::size_t>(klass)].add(now, wait);
}

double LinkMeasurement::measured_utilization(sim::Time now) {
  return config_.safety_factor * realtime_bits_.peak_rate(now) /
         config_.link_rate;
}

sim::Duration LinkMeasurement::measured_delay(int klass, sim::Time now) {
  assert(klass >= 0 && klass <= config_.num_predicted_classes);
  return config_.safety_factor *
         class_delay_[static_cast<std::size_t>(klass)].max(now);
}

}  // namespace ispn::core
