#include "core/admission.h"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace ispn::core {

void AdmissionController::register_link(LinkId link, sim::Rate rate,
                                        std::vector<sim::Duration> targets,
                                        LinkMeasurement* measurement) {
  assert(rate > 0);
  assert(std::is_sorted(targets.begin(), targets.end()));
  auto [it, inserted] = links_.try_emplace(link);
  assert(inserted && "link already registered");
  it->second.rate = rate;
  it->second.class_targets = std::move(targets);
  it->second.measurement = measurement;
}

double AdmissionController::utilization(LinkState& link, sim::Time now) const {
  if (config_.mode == Mode::kMeasurementBased && link.measurement != nullptr) {
    // The paper: use measurement for existing traffic, but never less than
    // what freshly committed (not yet measurable) flows will add.
    return std::max(link.measurement->measured_utilization(now),
                    0.0) ;
  }
  return (link.guaranteed_rate + link.predicted_rate) / link.rate;
}

sim::Duration AdmissionController::class_delay(LinkState& link, int klass,
                                               sim::Time now) const {
  if (config_.mode == Mode::kMeasurementBased && link.measurement != nullptr) {
    return link.measurement->measured_delay(klass, now);
  }
  return 0.0;  // parameter-based: no delay information
}

bool AdmissionController::check(LinkState& link, sim::Rate r, sim::Bits b,
                                int level, sim::Time now,
                                std::string* why) const {
  const double mu = link.rate;
  const double nu_bits = utilization(link, now) * mu;

  // Criterion 1: keep the datagram quota.
  if (r + nu_bits >= (1.0 - config_.datagram_quota) * mu) {
    if (why != nullptr) {
      std::ostringstream out;
      out << "datagram quota: r + nu = " << (r + nu_bits) / 1000.0
          << " kb/s >= " << (1.0 - config_.datagram_quota) * mu / 1000.0
          << " kb/s";
      *why = out.str();
    }
    return false;
  }

  // Criterion 2: b < (D_j - d_j)(mu - nu - r) for each class j at or below
  // this priority (level < 0 encodes "guaranteed": above all classes).
  const double headroom = mu - nu_bits - r;
  const int first = level < 0 ? 0 : level;
  for (int j = first; j < static_cast<int>(link.class_targets.size()); ++j) {
    const sim::Duration slack =
        link.class_targets[static_cast<std::size_t>(j)] -
        class_delay(link, j, now);
    if (b >= slack * headroom) {
      if (why != nullptr) {
        std::ostringstream out;
        out << "class " << j << " delay protection: b = " << b / 1000.0
            << " kb >= slack " << slack * 1000.0 << " ms x headroom "
            << headroom / 1000.0 << " kb/s";
        *why = out.str();
      }
      return false;
    }
  }
  return true;
}

ServiceCommitment AdmissionController::request(const FlowSpec& spec,
                                               const std::vector<LinkId>& path,
                                               sim::Time now) {
  ServiceCommitment commitment;
  assert(spec.valid());

  if (spec.service == net::ServiceClass::kDatagram) {
    // Datagram traffic is never refused; it gets the leftover quota.
    commitment.admitted = true;
    return commitment;
  }

  if (spec.service == net::ServiceClass::kGuaranteed) {
    const sim::Rate r = spec.guaranteed->clock_rate;
    for (std::size_t hop = 0; hop < path.size(); ++hop) {
      LinkState& link = links_.at(path[hop]);
      // WFQ clock rates must never oversubscribe the real-time share.
      if (link.guaranteed_rate + r >=
          (1.0 - config_.datagram_quota) * link.rate) {
        commitment.reason = "guaranteed clock rates would oversubscribe link";
        commitment.rejected_hop = static_cast<int>(hop);
        return commitment;
      }
      std::string why;
      if (!check(link, r, /*b=*/0.0, /*level=*/-1, now, &why)) {
        commitment.reason = why;
        commitment.rejected_hop = static_cast<int>(hop);
        return commitment;
      }
    }
    for (const LinkId& id : path) links_.at(id).guaranteed_rate += r;
    assert(!committed_.contains(spec.flow) && "flow already holds a commitment");
    committed_[spec.flow] = Commitment{spec.service, r, path};
    commitment.admitted = true;
    // The a-priori bound is b(r)/r-based and computed by the caller, which
    // knows the client's bucket; the network only commits the rate.
    return commitment;
  }

  // Predicted service: choose, on each link, the cheapest (lowest-priority)
  // class whose per-hop target keeps the summed path target within the
  // client's request, then run both criteria at that level.
  const auto& predicted = *spec.predicted;
  const double hops = static_cast<double>(path.size());
  const sim::Duration per_hop_target = predicted.target_delay / hops;

  std::vector<int> levels;
  levels.reserve(path.size());
  sim::Duration advertised = 0;
  for (std::size_t hop = 0; hop < path.size(); ++hop) {
    const LinkId& id = path[hop];
    LinkState& link = links_.at(id);
    int chosen = -1;
    for (int j = static_cast<int>(link.class_targets.size()) - 1; j >= 0;
         --j) {
      if (link.class_targets[static_cast<std::size_t>(j)] <=
          per_hop_target) {
        chosen = j;
        break;
      }
    }
    if (chosen < 0) {
      std::ostringstream out;
      out << "no class tight enough on link (" << id.first << "->"
          << id.second << "): need " << per_hop_target * 1000.0
          << " ms per hop";
      commitment.reason = out.str();
      commitment.rejected_hop = static_cast<int>(hop);
      return commitment;
    }
    std::string why;
    if (!check(link, predicted.bucket.rate, predicted.bucket.depth, chosen,
               now, &why)) {
      commitment.reason = why;
      commitment.rejected_hop = static_cast<int>(hop);
      return commitment;
    }
    levels.push_back(chosen);
    advertised += link.class_targets[static_cast<std::size_t>(chosen)];
  }

  for (const LinkId& id : path) {
    links_.at(id).predicted_rate += predicted.bucket.rate;
  }
  assert(!committed_.contains(spec.flow) && "flow already holds a commitment");
  committed_[spec.flow] = Commitment{spec.service, predicted.bucket.rate, path};
  commitment.admitted = true;
  commitment.advertised_bound = advertised;
  commitment.priority_per_hop = std::move(levels);
  return commitment;
}

bool AdmissionController::release(const FlowSpec& spec,
                                  const std::vector<LinkId>& /*path*/) {
  if (spec.service == net::ServiceClass::kDatagram) return false;
  const auto it = committed_.find(spec.flow);
  if (it == committed_.end()) return false;  // already released, or never held
  const Commitment& held = it->second;
  for (const LinkId& id : held.path) {
    LinkState& link = links_.at(id);
    if (held.service == net::ServiceClass::kGuaranteed) {
      link.guaranteed_rate -= held.rate;
      assert(link.guaranteed_rate > -1e-6);
      // Clamp float residue so drift cannot accumulate over long churn.
      if (link.guaranteed_rate < 0) link.guaranteed_rate = 0;
    } else {
      link.predicted_rate -= held.rate;
      assert(link.predicted_rate > -1e-6);
      if (link.predicted_rate < 0) link.predicted_rate = 0;
    }
  }
  committed_.erase(it);
  return true;
}

void AdmissionController::set_link_rate(LinkId link, sim::Rate rate) {
  assert(rate > 0);
  links_.at(link).rate = rate;
}

sim::Rate AdmissionController::link_rate(LinkId link) const {
  return links_.at(link).rate;
}

sim::Rate AdmissionController::guaranteed_rate(LinkId link) const {
  return links_.at(link).guaranteed_rate;
}

sim::Rate AdmissionController::predicted_rate(LinkId link) const {
  return links_.at(link).predicted_rate;
}

}  // namespace ispn::core
