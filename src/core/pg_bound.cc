#include "core/pg_bound.h"

#include <cassert>

namespace ispn::core {

sim::Duration pg_fluid_bound(const traffic::TokenBucketSpec& tb) {
  assert(tb.rate > 0);
  return tb.depth / tb.rate;
}

sim::Duration pg_paper_bound(const traffic::TokenBucketSpec& tb,
                             std::size_t hops, sim::Bits packet_bits) {
  assert(tb.rate > 0 && hops >= 1);
  return tb.depth / tb.rate +
         static_cast<double>(hops - 1) * packet_bits / tb.rate;
}

sim::Duration pg_packetized_bound(const traffic::TokenBucketSpec& tb,
                                  sim::Bits packet_bits,
                                  const std::vector<sim::Rate>& link_rates) {
  assert(tb.rate > 0 && !link_rates.empty());
  sim::Duration bound = pg_paper_bound(tb, link_rates.size(), packet_bits);
  for (sim::Rate c : link_rates) {
    assert(c > 0);
    bound += packet_bits / c;
  }
  return bound;
}

sim::Bits depth_for_bound(sim::Rate clock_rate, sim::Duration target,
                          std::size_t hops, sim::Bits packet_bits) {
  assert(clock_rate > 0 && hops >= 1);
  const sim::Bits depth =
      target * clock_rate - static_cast<double>(hops - 1) * packet_bits;
  return depth > 0 ? depth : 0;
}

}  // namespace ispn::core
