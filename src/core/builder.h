// IspnNetwork: the top-level public API assembling the paper's full
// architecture — unified schedulers on every link, per-link measurement,
// admission control, service commitments, sources and sinks.
//
// Typical use (see examples/quickstart.cpp):
//
//   core::IspnNetwork ispn({.num_predicted_classes = 2,
//                           .class_targets = {0.005, 0.05}});
//   auto topo = ispn.build_chain(5);
//   auto flow = ispn.open_flow(spec);            // admission + scheduling
//   ispn.attach_onoff_source(flow, cfg, seed);   // paper's Markov source
//   ispn.attach_sink(flow);                      // stats (+ optional app)
//   ispn.net().sim().run_until(600.0);
//   ispn.net().stats(flow.spec.flow).mean_qdelay_pkt();
//
// Beyond the paper's chain, arbitrary fabrics compose from two pieces:
// qos_link_factory() hands any net::build_* topology builder a factory
// that equips every finite-rate link direction with a unified scheduler,
// a LinkMeasurement and an admission registration, and
// instrument_links() (called once, after topology construction) wires the
// transmit hooks that feed the ν̂ meters.  build_chain/build_fan_tree/
// build_parking_lot below are those compositions; src/scenario/ builds
// whole parameterized fabrics on top of them.

#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/admission.h"
#include "core/flowspec.h"
#include "core/measurement.h"
#include "core/pg_bound.h"
#include "net/network.h"
#include "net/topology.h"
#include "sched/unified.h"
#include "traffic/onoff_source.h"
#include "traffic/tcp.h"

namespace ispn::core {

class IspnNetwork {
 public:
  struct Config {
    sim::Rate link_rate = sim::paper::kLinkRate;
    std::size_t buffer_pkts = sim::paper::kBufferPackets;
    /// Per-hop delay targets D_i (ascending; one per predicted class).
    /// The paper suggests order-of-magnitude spacing.
    std::vector<sim::Duration> class_targets = {0.008, 0.064};
    double fifo_plus_gain = 1.0 / 4096.0;
    bool fifo_plus = true;
    /// §10 stale-packet discard threshold on the FIFO+ offset (seconds);
    /// infinity disables (default).
    sim::Duration stale_offset_threshold = sim::kTimeInfinity;
    AdmissionController::Config admission = {};
    /// When false, open_flow() configures flows even if admission fails
    /// (used to reproduce the paper's static experiments, which pre-date
    /// a validated admission policy).
    bool enforce_admission = true;
    sim::Duration measurement_window = 10.0;
    double measurement_safety = 1.2;
    LinkMeasurement::Estimator measurement_estimator =
        LinkMeasurement::Estimator::kPeakEpoch;
    double measurement_ewma_gain = 0.25;
    std::uint64_t seed = 1;
    /// Engine knobs: both are pure performance choices — every backend
    /// yields byte-identical schedules (differential harnesses, PR 3/4,
    /// and the scenario golden-trace suite).
    sim::EventBackend event_backend = sim::EventBackend::kAuto;
    sched::OrderBackend order_backend = sched::OrderBackend::kAuto;
    /// Two-level aggregate scheduling on every link (see
    /// sched::UnifiedScheduler::Config::hierarchical): per-link state
    /// bounded by {guaranteed flows, K classes, datagram} instead of
    /// per-flow.  Default off — the classic flat path, byte-identical.
    bool hierarchical = false;
    /// DEC-TR-506 binary feedback on every link's datagram class: mark
    /// Packet::cong_mark when the time-averaged datagram queue length
    /// reaches mark_threshold (see sched::UnifiedScheduler::Config).
    /// Responsive sources (attach_tcp with Config::binary_feedback) back
    /// off on the echoed marks.  Default off.
    bool binary_feedback = false;
    double mark_threshold = 1.0;
    /// Sharded execution (net/Network::enable_sharding): one domain per
    /// switch, cross-domain links carrying `link_latency` of propagation
    /// delay.  The decomposition is topology-determined, so results are
    /// bit-identical for ANY worker count — but the latency model differs
    /// from the classic zero-propagation path, so sharded and classic
    /// runs are two distinct (each internally deterministic) references.
    bool sharded = false;
    sim::Duration link_latency = 0.001;
  };

  /// An admitted (or force-configured) flow.
  struct FlowHandle {
    FlowSpec spec;
    ServiceCommitment commitment;
    std::vector<LinkId> links;  ///< directed inter-switch links on the path
  };

  explicit IspnNetwork(Config config);

  /// Per-direction, rate-aware link factory: unified scheduler +
  /// LinkMeasurement + admission registration, keyed (from, to) and sized
  /// to the link's actual rate (per-hop rates in parking lots and trees
  /// flow through to every layer).  Hand it to any net::build_* builder
  /// (or net().connect directly), then call instrument_links() once the
  /// topology is complete.
  [[nodiscard]] net::LinkSchedulerFactory qos_link_factory();

  /// Installs the transmit hooks that feed every registered link's ν̂
  /// meter.  Idempotent per link: only links registered since the last
  /// call are instrumented, so staged topology construction works.
  void instrument_links();

  /// Builds the paper's Figure-1 chain (one host per switch) with unified
  /// schedulers + measurement on every inter-switch link direction.
  net::ChainTopology build_chain(int num_switches);

  /// Builds a `width`-ary aggregation tree of `depth` switch levels (all
  /// QoS links at config link_rate unless `level_rates` overrides, one
  /// rate per level).  See net::build_fan_tree.
  net::FanTreeTopology build_fan_tree(
      int depth, int width, std::vector<sim::Rate> level_rates = {});

  /// Builds a multi-bottleneck parking lot of `num_hops` QoS links with
  /// per-hop entry/exit hosts (all at config link_rate unless `hop_rates`
  /// overrides).  See net::build_parking_lot.
  net::ParkingLotTopology build_parking_lot(
      int num_hops, std::vector<sim::Rate> hop_rates = {});

  /// Builds a rows x cols grid with QoS links between adjacent switches
  /// (alternate paths for the failure scenarios).  See net::build_mesh.
  net::MeshTopology build_mesh(int rows, int cols);

  /// Builds an n-switch cycle.  See net::build_ring.
  net::RingTopology build_ring(int num_switches);

  /// Builds a two-level folded Clos.  See net::build_clos.
  net::ClosTopology build_clos(int spines, int leaves);

  /// Requests service for `spec` (admission control + scheduler setup).
  /// Throws std::runtime_error if rejected while enforce_admission is on;
  /// otherwise configures the flow regardless and records the decision.
  FlowHandle open_flow(const FlowSpec& spec);

  /// Non-throwing admission: the decision is recorded in the returned
  /// handle's commitment, and schedulers along the path are configured
  /// ONLY when the flow is admitted — a rejected flow leaves every
  /// scheduler, measurement and admission ledger untouched (pinned by the
  /// scenario property suite).
  FlowHandle try_open_flow(const FlowSpec& spec);

  /// Tears down an admitted flow: releases its admission-control
  /// commitments and deregisters it from every scheduler on its path.
  /// Stop the flow's source first; guaranteed flows must have drained
  /// (their per-flow queues empty) before closing.  Idempotent against
  /// double teardown: when the admission ledger shows the flow already
  /// released (an earlier close, or a reroute that moved it), the call is
  /// a no-op — bandwidth is never handed back twice.
  void close_flow(const FlowHandle& handle);

  /// What happened to an admitted flow re-offered after a topology change.
  enum class RerouteOutcome {
    kRerouted,  ///< re-admitted on the new shortest path, commitments moved
    kDegraded,  ///< refused on the new path; now carried as datagram
    kClosed,    ///< refused and degrade declined: torn down (preempted)
    kOrphaned,  ///< destination unreachable: torn down, nothing re-offered
  };

  /// Re-offers an admitted guaranteed/predicted flow on the current
  /// shortest path after a topology change (paper §9 criteria against the
  /// live ν̂/d̂_j — the old reservation is released first, so the flow
  /// competes only with everyone else).  Path links shared between the old
  /// and new route keep their scheduler registration and queued packets;
  /// links left behind are expelled, with stranded guaranteed packets
  /// accounted to the flow's failed_link_drops.  On refusal the flow is
  /// degraded to the datagram class when `degrade_to_datagram` (the spec's
  /// service is rewritten), else fully torn down.  `handle` is updated in
  /// place to describe the new state.
  RerouteOutcome reroute_flow(FlowHandle& handle, bool degrade_to_datagram);

  /// Creates the paper's two-state Markov source for `flow`.  Predicted
  /// flows are policed at the edge with their declared bucket; guaranteed
  /// and datagram flows are not policed (guaranteed sources made no traffic
  /// commitment; the paper still drops nonconforming packets at the
  /// *source* for all its real-time flows, so pass `police` to override).
  traffic::OnOffSource& attach_onoff_source(
      const FlowHandle& handle, traffic::OnOffSource::Config config,
      std::uint64_t stream,
      std::optional<traffic::TokenBucketSpec> police = std::nullopt);

  /// Creates a responsive TCP bulk connection for a datagram flow.  The
  /// stack (reno | bbr | rack) and the binary-feedback response come from
  /// `config`.  Sharding-aware: each endpoint lives on its own domain's
  /// clock and draws packets from its domain's pool.
  std::pair<traffic::TcpSource&, traffic::TcpSink&> attach_tcp(
      const FlowHandle& handle,
      traffic::TcpSource::Config config = traffic::TcpSource::Config());

  /// Attaches the statistics sink at the destination (optionally chaining
  /// to an application sink such as a playback app).
  void attach_sink(const FlowHandle& handle, net::FlowSink* app = nullptr);

  /// Advertised a-priori bound for a guaranteed flow whose traffic conforms
  /// to `bucket`: the paper's Parekh–Gallager form over the flow's path.
  /// `packet_bits` is the flow's packet size (the per-hop term scales with
  /// it; default: the paper's 1000 bits).
  [[nodiscard]] sim::Duration guaranteed_bound(
      const FlowHandle& handle, const traffic::TokenBucketSpec& bucket,
      sim::Bits packet_bits = sim::paper::kPacketBits) const;

  [[nodiscard]] net::Network& net() { return net_; }
  [[nodiscard]] AdmissionController& admission() { return admission_; }
  [[nodiscard]] const Config& config() const { return config_; }

  /// The unified scheduler on a directed inter-switch link.
  [[nodiscard]] sched::UnifiedScheduler& scheduler(LinkId link) {
    return *schedulers_.at(link);
  }
  [[nodiscard]] LinkMeasurement& measurement(LinkId link) {
    return *measurements_.at(link);
  }

  /// Every registered QoS link, in registration order (both directions of
  /// each inter-switch connection).
  [[nodiscard]] const std::vector<LinkId>& links() const {
    return link_order_;
  }

  /// The as-built rate of a registered QoS link.  Brown-outs re-rate
  /// admission, measurement, schedulers and ports, but never this
  /// baseline — restores multiply against it, so repeated episodes on one
  /// link cannot compound rounding drift.
  [[nodiscard]] sim::Rate link_base_rate(LinkId link) const {
    return link_rates_.at(link);
  }

  /// Directed inter-switch links on the current route src -> dst.
  [[nodiscard]] std::vector<LinkId> route_links(net::NodeId src,
                                                net::NodeId dst) const;

  /// Flows with a live scheduler registration on either direction of the
  /// a<->b link (sorted, unique).  Backed by a per-link index maintained
  /// at configure/close/reroute time, so a link-failure event revalidates
  /// only the flows actually crossing the failed link instead of scanning
  /// every active flow.  Note the asymmetry: this answers "who did the
  /// DOWN event break?" exactly; a link coming UP can shorten the best
  /// path of flows that never touched it, so UP-event revalidation still
  /// requires a full scan (scenario/runner.cc).
  [[nodiscard]] std::vector<net::FlowId> flows_crossing(net::NodeId a,
                                                        net::NodeId b) const;

  /// Utilisation of a directed link over [0, now].
  [[nodiscard]] double link_utilization(LinkId link, sim::Time now);

  /// Real-time-only (guaranteed + predicted) utilisation over [0, now].
  [[nodiscard]] double realtime_utilization(LinkId link, sim::Time now) const;

 private:
  /// Configures the schedulers along an (accepted or forced) flow's path.
  void configure_flow(const FlowHandle& handle);

  /// Per-link active-flow index maintenance (mirrors every scheduler
  /// registration / deregistration 1:1).
  void index_add(const LinkId& link, net::FlowId flow);
  void index_remove(const LinkId& link, net::FlowId flow);

  Config config_;
  net::Network net_;
  AdmissionController admission_;
  std::map<LinkId, sched::UnifiedScheduler*> schedulers_;
  std::map<LinkId, std::unique_ptr<LinkMeasurement>> measurements_;
  std::map<LinkId, sim::Bits> realtime_bits_;
  std::map<LinkId, sim::Rate> link_rates_;  ///< actual per-link rates
  std::map<LinkId, std::vector<net::FlowId>> link_flows_;  ///< active index
  std::vector<LinkId> link_order_;      ///< registration order
  std::size_t instrumented_upto_ = 0;   ///< links with tx hooks installed
  std::vector<std::unique_ptr<traffic::Source>> sources_;
  std::vector<std::unique_ptr<traffic::TcpSource>> tcp_sources_;
  std::vector<std::unique_ptr<traffic::TcpSink>> tcp_sinks_;
};

}  // namespace ispn::core
