#include "core/flowspec.h"

#include <sstream>

namespace ispn::core {

bool FlowSpec::valid() const {
  switch (service) {
    case net::ServiceClass::kGuaranteed:
      return guaranteed.has_value() && !predicted.has_value() &&
             guaranteed->clock_rate > 0;
    case net::ServiceClass::kPredicted:
      return predicted.has_value() && !guaranteed.has_value() &&
             predicted->bucket.rate > 0 && predicted->bucket.depth >= 0 &&
             predicted->target_delay > 0 && predicted->target_loss >= 0;
    case net::ServiceClass::kDatagram:
      return !guaranteed.has_value() && !predicted.has_value();
  }
  return false;
}

std::string describe(const FlowSpec& spec) {
  std::ostringstream out;
  out << "flow " << spec.flow << " ";
  switch (spec.service) {
    case net::ServiceClass::kGuaranteed:
      out << "Guaranteed r=" << spec.guaranteed->clock_rate / 1000.0
          << " kb/s";
      break;
    case net::ServiceClass::kPredicted:
      out << "Predicted (r=" << spec.predicted->bucket.rate / 1000.0
          << " kb/s, b=" << spec.predicted->bucket.depth / 1000.0
          << " kb) D=" << spec.predicted->target_delay * 1000.0
          << " ms L=" << spec.predicted->target_loss;
      break;
    case net::ServiceClass::kDatagram:
      out << "Datagram";
      break;
  }
  return out.str();
}

}  // namespace ispn::core
