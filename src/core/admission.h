// Admission control (paper §9).
//
// Two criteria gate every admission on every link of the flow's path:
//
//  (1) datagram quota: the flow's rate r plus the (measured or committed)
//      real-time utilisation ν̂ must leave at least a 10% share for
//      datagram traffic:   r + ν̂·μ < 0.9·μ ;
//  (2) delay protection: admitting a worst-case burst b must not push any
//      equal-or-lower-priority class j over its per-hop target D_j:
//          b < (D_j − d̂_j) · (μ − ν̂·μ − r).
//
// Guaranteed requests are "higher in priority than all levels", so (2) is
// evaluated against every predicted class; they additionally may not
// oversubscribe the WFQ clock rates past the quota.
//
// ν̂ and d̂_j come either from live measurement (LinkMeasurement — the
// paper's proposal) or from the sum of committed parameters (the
// traditional alternative the paper argues against; kept for the
// bench_utilization / bench_admission comparisons).

#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/flowspec.h"
#include "core/measurement.h"

namespace ispn::core {

/// A directed link (from, to).
using LinkId = std::pair<net::NodeId, net::NodeId>;

class AdmissionController {
 public:
  enum class Mode {
    kMeasurementBased,  ///< ν̂, d̂_j from LinkMeasurement (paper's design)
    kParameterBased,    ///< ν̂ = Σ committed rates, d̂_j = 0 (worst-case)
  };

  struct Config {
    Mode mode = Mode::kMeasurementBased;
    /// Fraction of each link reserved for datagram traffic (paper: 10%).
    double datagram_quota = 0.1;
  };

  explicit AdmissionController(Config config) : config_(config) {}

  /// Registers a directed link with its per-class per-hop delay targets
  /// D_0 < D_1 < ... (ascending: class 0 is the tightest/highest priority).
  /// `measurement` may be null (parameter-based mode only).
  void register_link(LinkId link, sim::Rate rate,
                     std::vector<sim::Duration> class_targets,
                     LinkMeasurement* measurement = nullptr);

  /// Decides admission of `spec` along `path` at time `now`; on success the
  /// flow's resources are committed on every link and the commitment
  /// describes the advertised bound and per-hop priority levels.
  ServiceCommitment request(const FlowSpec& spec,
                            const std::vector<LinkId>& path, sim::Time now);

  /// Releases a previously admitted flow's resources.  Idempotent: the
  /// rate, service class and path actually committed at request() time are
  /// looked up by flow id, so a release racing a reroute (teardown arrives
  /// after the flow already moved or was torn down) subtracts the right
  /// amounts from the right links exactly once.  Returns false — and
  /// touches nothing — when the flow holds no commitment (never admitted,
  /// datagram, or already released); `path` is accepted for call-site
  /// symmetry but the stored path is authoritative.
  bool release(const FlowSpec& spec, const std::vector<LinkId>& path);

  /// True while `flow` holds a committed reservation.
  [[nodiscard]] bool committed(net::FlowId flow) const {
    return committed_.contains(flow);
  }

  /// Committed guaranteed clock-rate sum on a link (diagnostic).
  [[nodiscard]] sim::Rate guaranteed_rate(LinkId link) const;
  /// Committed predicted token-rate sum on a link (diagnostic).
  [[nodiscard]] sim::Rate predicted_rate(LinkId link) const;

  /// Re-rates a registered link (capacity brown-out / restore): both
  /// criteria evaluate against the new μ from now on.  Commitments are
  /// NOT touched — the caller re-validates admitted flows against the
  /// reduced capacity and sheds the over-committed ones.
  void set_link_rate(LinkId link, sim::Rate rate);

  /// The rate a link is currently registered at (admission's μ).
  [[nodiscard]] sim::Rate link_rate(LinkId link) const;

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct LinkState {
    sim::Rate rate = 0;
    std::vector<sim::Duration> class_targets;
    LinkMeasurement* measurement = nullptr;
    sim::Rate guaranteed_rate = 0;
    sim::Rate predicted_rate = 0;
  };

  /// What request() actually committed for one flow — release() subtracts
  /// from this record, not from caller-supplied arguments, so stale
  /// teardowns (after a reroute changed the path) cannot double-release
  /// or release from the wrong links.
  struct Commitment {
    net::ServiceClass service = net::ServiceClass::kDatagram;
    sim::Rate rate = 0;
    std::vector<LinkId> path;
  };

  /// ν̂ for one link, as a fraction of link rate.
  [[nodiscard]] double utilization(LinkState& link, sim::Time now) const;
  /// d̂_j for one link (seconds).
  [[nodiscard]] sim::Duration class_delay(LinkState& link, int klass,
                                          sim::Time now) const;

  /// Checks both criteria for a rate-r, burst-b flow at priority `level`
  /// on `link`; fills `why` on failure.
  bool check(LinkState& link, sim::Rate r, sim::Bits b, int level,
             sim::Time now, std::string* why) const;

  Config config_;
  std::map<LinkId, LinkState> links_;
  std::map<net::FlowId, Commitment> committed_;
};

}  // namespace ispn::core
