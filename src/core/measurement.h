// Per-link measurement for measurement-based admission control (paper §9).
//
// "The key to making the predictive service commitments reliable is to
// choose appropriately conservative measures for ν̂ and d̂_j."
//
// LinkMeasurement tracks, per directed link:
//   * ν̂  — real-time utilisation: peak epoch rate of real-time bits over a
//          sliding window (RateMeter), divided by link speed;
//   * d̂_j — per-class maximal queueing delay over the window (WindowedMax).
//
// A safety factor (>= 1) scales both, providing the "consistently
// conservative estimate" knob the paper calls for.

#pragma once

#include <vector>

#include "net/packet.h"
#include "sim/units.h"
#include "stats/rate_meter.h"
#include "stats/windowed_max.h"

namespace ispn::core {

class LinkMeasurement {
 public:
  struct Config {
    sim::Rate link_rate = sim::paper::kLinkRate;
    int num_predicted_classes = 2;
    sim::Duration window = 10.0;   ///< measurement horizon (seconds)
    double safety_factor = 1.2;    ///< conservatism multiplier on ν̂ and d̂
  };

  explicit LinkMeasurement(Config config);

  /// Records a transmitted real-time (guaranteed or predicted) packet.
  void on_realtime_tx(sim::Bits bits, sim::Time now);

  /// Records a queueing-delay sample of predicted class `klass`
  /// (0..K-1; the datagram level K is tracked too but unused by admission).
  void on_class_wait(int klass, sim::Duration wait, sim::Time now);

  /// ν̂ : conservative measured real-time utilisation in [0, ...], already
  /// scaled by the safety factor.
  [[nodiscard]] double measured_utilization(sim::Time now);

  /// d̂_j : conservative measured maximal delay of class j (seconds).
  [[nodiscard]] sim::Duration measured_delay(int klass, sim::Time now);

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  Config config_;
  stats::RateMeter realtime_bits_;
  std::vector<stats::WindowedMax> class_delay_;  // K + 1 entries
};

}  // namespace ispn::core
