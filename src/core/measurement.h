// Per-link measurement for measurement-based admission control (paper §9).
//
// "The key to making the predictive service commitments reliable is to
// choose appropriately conservative measures for ν̂ and d̂_j."
//
// LinkMeasurement tracks, per directed link:
//   * ν̂  — real-time utilisation, from one of two estimators:
//       kPeakEpoch — peak epoch rate of real-time bits over a sliding
//                    window (RateMeter), the most conservative choice;
//       kEwma      — per-epoch EWMA of the epoch rate: each completed
//                    epoch folds its rate into avg <- avg + g·(rate − avg),
//                    and idle epochs fold zeros, so an idle interval of k
//                    epochs decays the estimate by (1 − g)^k — smoother
//                    under churny admission workloads, still deterministic;
//   * d̂_j — per-class maximal queueing delay over the window (WindowedMax).
//
// A safety factor (>= 1) scales both, providing the "consistently
// conservative estimate" knob the paper calls for.

#pragma once

#include <vector>

#include "net/packet.h"
#include "sim/units.h"
#include "stats/rate_meter.h"
#include "stats/windowed_max.h"

namespace ispn::core {

class LinkMeasurement {
 public:
  /// ν̂ estimator choice (both are always maintained; this selects which
  /// one measured_utilization() reports).
  enum class Estimator {
    kPeakEpoch,  ///< peak epoch rate over the window (default)
    kEwma,       ///< per-epoch EWMA with idle-epoch decay
  };

  struct Config {
    sim::Rate link_rate = sim::paper::kLinkRate;
    int num_predicted_classes = 2;
    sim::Duration window = 10.0;   ///< measurement horizon (seconds)
    double safety_factor = 1.2;    ///< conservatism multiplier on ν̂ and d̂
    Estimator estimator = Estimator::kPeakEpoch;
    /// Per-epoch EWMA gain g in (0, 1] (kEwma only).
    double ewma_gain = 0.25;
  };

  explicit LinkMeasurement(Config config);

  /// Records a transmitted real-time (guaranteed or predicted) packet.
  void on_realtime_tx(sim::Bits bits, sim::Time now);

  /// Records a queueing-delay sample of predicted class `klass`
  /// (0..K-1; the datagram level K is tracked too but unused by admission).
  void on_class_wait(int klass, sim::Duration wait, sim::Time now);

  /// ν̂ : conservative measured real-time utilisation in [0, ...], already
  /// scaled by the safety factor.
  [[nodiscard]] double measured_utilization(sim::Time now);

  /// d̂_j : conservative measured maximal delay of class j (seconds).
  [[nodiscard]] sim::Duration measured_delay(int klass, sim::Time now);

  /// The EWMA epoch-rate estimate (bits/s) with completed epochs settled
  /// up to `now`, unscaled.  Exposed for exact-value tests.
  [[nodiscard]] sim::Rate ewma_rate(sim::Time now);

  /// Re-rates the link (capacity brown-out / restore): ν̂ normalizes
  /// against the new μ from now on.  Raw bit meters are untouched — the
  /// same measured traffic is simply a larger fraction of a browned-out
  /// link, which is exactly the conservatism a degraded link needs.
  void set_link_rate(sim::Rate rate) { config_.link_rate = rate; }

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  /// Folds every epoch completed before `now` into the EWMA: the epoch in
  /// which traffic accumulated contributes bits/epoch_len, every idle
  /// epoch since contributes zero (the decay path).
  void settle_ewma(sim::Time now);

  Config config_;
  stats::RateMeter realtime_bits_;
  std::vector<stats::WindowedMax> class_delay_;  // K + 1 entries

  // kEwma state: bits of the current (incomplete) epoch plus the running
  // average over completed epochs.
  double epoch_len_;
  double epoch_bits_ = 0;
  long long ewma_epoch_ = 0;
  double ewma_bps_ = 0;
  bool ewma_primed_ = false;
};

}  // namespace ispn::core
