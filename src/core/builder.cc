#include "core/builder.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace ispn::core {

IspnNetwork::IspnNetwork(Config config)
    : config_(std::move(config)), admission_(config_.admission) {
  assert(!config_.class_targets.empty());
  assert(std::is_sorted(config_.class_targets.begin(),
                        config_.class_targets.end()));
}

net::ChainTopology IspnNetwork::build_chain(int num_switches) {
  net::ChainTopology topo;
  for (int i = 0; i < num_switches; ++i) {
    auto& sw = net_.add_switch("S-" + std::to_string(i + 1));
    topo.switches.push_back(sw.id());
    auto& host = net_.add_host("Host-" + std::to_string(i + 1));
    topo.hosts.push_back(host.id());
    net_.connect(host.id(), sw.id(), /*rate=*/0);
  }

  auto make_link = [this](net::NodeId from, net::NodeId to)
      -> std::unique_ptr<sched::Scheduler> {
    const LinkId link{from, to};
    auto measurement = std::make_unique<LinkMeasurement>(LinkMeasurement::Config{
        config_.link_rate, static_cast<int>(config_.class_targets.size()),
        config_.measurement_window, config_.measurement_safety});
    LinkMeasurement* meas = measurement.get();
    measurements_[link] = std::move(measurement);

    auto scheduler = std::make_unique<sched::UnifiedScheduler>(
        sched::UnifiedScheduler::Config{
            config_.link_rate, config_.buffer_pkts,
            static_cast<int>(config_.class_targets.size()),
            config_.fifo_plus_gain, config_.fifo_plus,
            config_.stale_offset_threshold});
    // Stale discards flow through the scheduler's DropSink like every
    // other loss, so the port's drop hook already folds them into the
    // per-flow net_drops counters — no side-channel wiring needed.
    scheduler->set_wait_observer(
        [meas](int klass, sim::Duration wait, sim::Time now) {
          meas->on_class_wait(klass, wait, now);
        });
    schedulers_[link] = scheduler.get();

    admission_.register_link(link, config_.link_rate, config_.class_targets,
                             meas);
    return scheduler;
  };

  for (int i = 0; i + 1 < num_switches; ++i) {
    const net::NodeId a = topo.switches[static_cast<std::size_t>(i)];
    const net::NodeId b = topo.switches[static_cast<std::size_t>(i + 1)];
    net_.connect(a, b, config_.link_rate,
                 net::DirectionalSchedulerFactory(make_link));
    // Feed the real-time utilisation meters from transmissions.
    for (const LinkId& link : {LinkId{a, b}, LinkId{b, a}}) {
      LinkMeasurement* meas = measurements_.at(link).get();
      sim::Bits* total = &realtime_bits_[link];
      net_.port(link.first, link.second)
          ->add_tx_hook([meas, total](const net::Packet& p, sim::Time now) {
            if (p.service != net::ServiceClass::kDatagram) {
              meas->on_realtime_tx(p.size_bits, now);
              *total += p.size_bits;
            }
          });
    }
  }
  net_.build_routes();
  return topo;
}

std::vector<LinkId> IspnNetwork::route_links(net::NodeId src,
                                             net::NodeId dst) const {
  std::vector<LinkId> links;
  const auto path = net_.route(src, dst);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    // Only inter-switch links queue; host attachments are infinitely fast.
    if (schedulers_.contains({path[i], path[i + 1]})) {
      links.emplace_back(path[i], path[i + 1]);
    }
  }
  return links;
}

IspnNetwork::FlowHandle IspnNetwork::open_flow(const FlowSpec& spec) {
  assert(spec.valid());
  FlowHandle handle;
  handle.spec = spec;
  handle.links = route_links(spec.src, spec.dst);
  handle.commitment =
      admission_.request(spec, handle.links, net_.sim().now());

  if (!handle.commitment.admitted) {
    if (config_.enforce_admission) {
      throw std::runtime_error("admission rejected " + describe(spec) + ": " +
                               handle.commitment.reason);
    }
    // Forced configuration (paper-style static experiments): pick the
    // cheapest adequate class exactly as admission would have.
    if (spec.service == net::ServiceClass::kPredicted) {
      const double per_hop = spec.predicted->target_delay /
                             static_cast<double>(handle.links.size());
      int chosen = 0;
      for (int j = static_cast<int>(config_.class_targets.size()) - 1; j >= 0;
           --j) {
        if (config_.class_targets[static_cast<std::size_t>(j)] <= per_hop) {
          chosen = j;
          break;
        }
      }
      handle.commitment.priority_per_hop.assign(handle.links.size(), chosen);
      handle.commitment.advertised_bound =
          static_cast<double>(handle.links.size()) *
          config_.class_targets[static_cast<std::size_t>(chosen)];
    }
  }

  // Configure the schedulers along the path.
  if (spec.service == net::ServiceClass::kGuaranteed) {
    for (const LinkId& link : handle.links) {
      schedulers_.at(link)->add_guaranteed(spec.flow,
                                           spec.guaranteed->clock_rate);
    }
  } else if (spec.service == net::ServiceClass::kPredicted) {
    assert(handle.commitment.priority_per_hop.size() == handle.links.size());
    for (std::size_t i = 0; i < handle.links.size(); ++i) {
      schedulers_.at(handle.links[i])
          ->set_predicted_priority(spec.flow,
                                   handle.commitment.priority_per_hop[i]);
    }
  }
  return handle;
}

void IspnNetwork::close_flow(const FlowHandle& handle) {
  const FlowSpec& spec = handle.spec;
  if (spec.service == net::ServiceClass::kGuaranteed) {
    for (const LinkId& link : handle.links) {
      schedulers_.at(link)->remove_guaranteed(spec.flow);
    }
  } else if (spec.service == net::ServiceClass::kPredicted) {
    for (const LinkId& link : handle.links) {
      schedulers_.at(link)->remove_predicted(spec.flow);
    }
  }
  if (handle.commitment.admitted) {
    admission_.release(spec, handle.links);
  }
}

traffic::OnOffSource& IspnNetwork::attach_onoff_source(
    const FlowHandle& handle, traffic::OnOffSource::Config config,
    std::uint64_t stream, std::optional<traffic::TokenBucketSpec> police) {
  const FlowSpec& spec = handle.spec;
  if (!police && spec.service == net::ServiceClass::kPredicted) {
    // Predicted flows are policed at the network edge with the declared
    // filter (paper §8); source-side dropping is equivalent in simulation
    // since host links are infinitely fast.
    police = spec.predicted->bucket;
  }
  net::Host& host = net_.host(spec.src);
  auto source = std::make_unique<traffic::OnOffSource>(
      net_.sim(), config, sim::Rng(config_.seed, stream), spec.flow, spec.src,
      spec.dst, [&host](net::PacketPtr p) { host.inject(std::move(p)); },
      &net_.stats(spec.flow), police);
  const std::uint8_t priority =
      handle.commitment.priority_per_hop.empty()
          ? 0
          : static_cast<std::uint8_t>(handle.commitment.priority_per_hop[0]);
  source->set_service(spec.service, priority);
  auto& ref = *source;
  sources_.push_back(std::move(source));
  return ref;
}

std::pair<traffic::TcpSource&, traffic::TcpSink&> IspnNetwork::attach_tcp(
    const FlowHandle& handle, traffic::TcpSource::Config config) {
  const FlowSpec& spec = handle.spec;
  assert(spec.service == net::ServiceClass::kDatagram);
  net::Host& src_host = net_.host(spec.src);
  net::Host& dst_host = net_.host(spec.dst);

  auto source = std::make_unique<traffic::TcpSource>(
      net_.sim(), config, spec.flow, spec.src, spec.dst,
      [&src_host](net::PacketPtr p) { src_host.inject(std::move(p)); },
      &net_.stats(spec.flow));
  auto sink = std::make_unique<traffic::TcpSink>(
      net_.sim(), config, spec.flow, spec.dst, spec.src,
      [&dst_host](net::PacketPtr p) { dst_host.inject(std::move(p)); });

  // ACKs arrive back at the source host; data arrives at the destination
  // behind the stats recorder.
  src_host.register_sink(spec.flow, source.get());
  net_.attach_stats_sink(spec.flow, spec.dst, sink.get());

  auto& src_ref = *source;
  auto& sink_ref = *sink;
  tcp_sources_.push_back(std::move(source));
  tcp_sinks_.push_back(std::move(sink));
  return {src_ref, sink_ref};
}

void IspnNetwork::attach_sink(const FlowHandle& handle, net::FlowSink* app) {
  net_.attach_stats_sink(handle.spec.flow, handle.spec.dst, app);
}

sim::Duration IspnNetwork::guaranteed_bound(
    const FlowHandle& handle, const traffic::TokenBucketSpec& bucket) const {
  assert(handle.spec.service == net::ServiceClass::kGuaranteed);
  return pg_paper_bound(bucket, handle.links.size(),
                        sim::paper::kPacketBits);
}

double IspnNetwork::link_utilization(LinkId link, sim::Time now) {
  return net_.port(link.first, link.second)->utilization(now);
}

double IspnNetwork::realtime_utilization(LinkId link, sim::Time now) const {
  if (now <= 0) return 0.0;
  auto it = realtime_bits_.find(link);
  if (it == realtime_bits_.end()) return 0.0;
  return it->second / (config_.link_rate * now);
}

}  // namespace ispn::core
