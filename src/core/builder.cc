#include "core/builder.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

namespace ispn::core {

IspnNetwork::IspnNetwork(Config config)
    : config_(std::move(config)),
      net_(config_.event_backend),
      admission_(config_.admission) {
  assert(!config_.class_targets.empty());
  assert(std::is_sorted(config_.class_targets.begin(),
                        config_.class_targets.end()));
  // Must precede topology construction: domains are created per switch.
  if (config_.sharded) net_.enable_sharding(config_.link_latency);
}

net::LinkSchedulerFactory IspnNetwork::qos_link_factory() {
  return [this](net::NodeId from, net::NodeId to,
                sim::Rate rate) -> std::unique_ptr<sched::Scheduler> {
    const LinkId link{from, to};
    auto measurement = std::make_unique<LinkMeasurement>(LinkMeasurement::Config{
        rate, static_cast<int>(config_.class_targets.size()),
        config_.measurement_window, config_.measurement_safety,
        config_.measurement_estimator, config_.measurement_ewma_gain});
    LinkMeasurement* meas = measurement.get();
    measurements_[link] = std::move(measurement);

    sched::UnifiedScheduler::Config sched_config{
        rate, config_.buffer_pkts,
        static_cast<int>(config_.class_targets.size()),
        config_.fifo_plus_gain, config_.fifo_plus,
        config_.stale_offset_threshold};
    sched_config.order_backend = config_.order_backend;
    sched_config.hierarchical = config_.hierarchical;
    sched_config.binary_feedback = config_.binary_feedback;
    sched_config.mark_threshold = config_.mark_threshold;
    auto scheduler = std::make_unique<sched::UnifiedScheduler>(sched_config);
    // Stale discards flow through the scheduler's DropSink like every
    // other loss, so the port's drop hook already folds them into the
    // per-flow net_drops counters — no side-channel wiring needed.
    scheduler->set_wait_observer(
        [meas](int klass, sim::Duration wait, sim::Time now) {
          meas->on_class_wait(klass, wait, now);
        });
    schedulers_[link] = scheduler.get();
    link_order_.push_back(link);
    link_rates_[link] = rate;

    admission_.register_link(link, rate, config_.class_targets, meas);
    return scheduler;
  };
}

void IspnNetwork::instrument_links() {
  // Feed the real-time utilisation meters from transmissions.  Ports exist
  // once the topology builder has connected the link, so instrumentation
  // runs as a second pass over everything registered since the last call.
  for (; instrumented_upto_ < link_order_.size(); ++instrumented_upto_) {
    const LinkId link = link_order_[instrumented_upto_];
    LinkMeasurement* meas = measurements_.at(link).get();
    sim::Bits* total = &realtime_bits_[link];
    net::Port* port = net_.port(link.first, link.second);
    assert(port != nullptr && "instrument_links before the link's port exists");
    port->add_tx_hook([meas, total](const net::Packet& p, sim::Time now) {
      if (p.service != net::ServiceClass::kDatagram) {
        meas->on_realtime_tx(p.size_bits, now);
        *total += p.size_bits;
      }
    });
  }
}

net::ChainTopology IspnNetwork::build_chain(int num_switches) {
  auto topo =
      net::build_chain(net_, num_switches, config_.link_rate, qos_link_factory());
  instrument_links();
  return topo;
}

net::FanTreeTopology IspnNetwork::build_fan_tree(
    int depth, int width, std::vector<sim::Rate> level_rates) {
  if (level_rates.empty()) {
    level_rates.assign(static_cast<std::size_t>(depth - 1), config_.link_rate);
  }
  auto topo =
      net::build_fan_tree(net_, depth, width, level_rates, qos_link_factory());
  instrument_links();
  return topo;
}

net::ParkingLotTopology IspnNetwork::build_parking_lot(
    int num_hops, std::vector<sim::Rate> hop_rates) {
  if (hop_rates.empty()) {
    hop_rates.assign(static_cast<std::size_t>(num_hops), config_.link_rate);
  }
  auto topo = net::build_parking_lot(net_, hop_rates, qos_link_factory());
  instrument_links();
  return topo;
}

net::MeshTopology IspnNetwork::build_mesh(int rows, int cols) {
  auto topo =
      net::build_mesh(net_, rows, cols, config_.link_rate, qos_link_factory());
  instrument_links();
  return topo;
}

net::RingTopology IspnNetwork::build_ring(int num_switches) {
  auto topo =
      net::build_ring(net_, num_switches, config_.link_rate, qos_link_factory());
  instrument_links();
  return topo;
}

net::ClosTopology IspnNetwork::build_clos(int spines, int leaves) {
  auto topo =
      net::build_clos(net_, spines, leaves, config_.link_rate, qos_link_factory());
  instrument_links();
  return topo;
}

std::vector<LinkId> IspnNetwork::route_links(net::NodeId src,
                                             net::NodeId dst) const {
  std::vector<LinkId> links;
  const auto path = net_.route(src, dst);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    // Only inter-switch links queue; host attachments are infinitely fast.
    if (schedulers_.contains({path[i], path[i + 1]})) {
      links.emplace_back(path[i], path[i + 1]);
    }
  }
  return links;
}

void IspnNetwork::index_add(const LinkId& link, net::FlowId flow) {
  auto& flows = link_flows_[link];
  if (std::find(flows.begin(), flows.end(), flow) == flows.end()) {
    flows.push_back(flow);
  }
}

void IspnNetwork::index_remove(const LinkId& link, net::FlowId flow) {
  auto it = link_flows_.find(link);
  if (it == link_flows_.end()) return;
  auto& flows = it->second;
  flows.erase(std::remove(flows.begin(), flows.end(), flow), flows.end());
}

std::vector<net::FlowId> IspnNetwork::flows_crossing(net::NodeId a,
                                                     net::NodeId b) const {
  std::vector<net::FlowId> out;
  for (const LinkId& dir : {LinkId{a, b}, LinkId{b, a}}) {
    auto it = link_flows_.find(dir);
    if (it == link_flows_.end()) continue;
    out.insert(out.end(), it->second.begin(), it->second.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

void IspnNetwork::configure_flow(const FlowHandle& handle) {
  const FlowSpec& spec = handle.spec;
  if (spec.service == net::ServiceClass::kGuaranteed) {
    for (const LinkId& link : handle.links) {
      schedulers_.at(link)->add_guaranteed(spec.flow,
                                           spec.guaranteed->clock_rate);
      index_add(link, spec.flow);
    }
  } else if (spec.service == net::ServiceClass::kPredicted) {
    assert(handle.commitment.priority_per_hop.size() == handle.links.size());
    for (std::size_t i = 0; i < handle.links.size(); ++i) {
      schedulers_.at(handle.links[i])
          ->set_predicted_priority(spec.flow,
                                   handle.commitment.priority_per_hop[i]);
      index_add(handle.links[i], spec.flow);
    }
  }
}

IspnNetwork::FlowHandle IspnNetwork::try_open_flow(const FlowSpec& spec) {
  assert(spec.valid());
  FlowHandle handle;
  handle.spec = spec;
  // A partitioned destination (crashed switch, failed links) yields an
  // EMPTY route; admission would vacuously accept the hop-less path and
  // commit to a service no packet can receive.  Refuse instead.
  if (net_.route(spec.src, spec.dst).empty()) {
    handle.commitment.reason = "unreachable";
    return handle;
  }
  handle.links = route_links(spec.src, spec.dst);
  handle.commitment =
      admission_.request(spec, handle.links, net_.sim().now());
  // A rejected flow configures nothing: every scheduler and ledger along
  // the path is exactly as if the request had never been made.
  if (handle.commitment.admitted) configure_flow(handle);
  return handle;
}

IspnNetwork::FlowHandle IspnNetwork::open_flow(const FlowSpec& spec) {
  assert(spec.valid());
  FlowHandle handle;
  handle.spec = spec;
  handle.links = route_links(spec.src, spec.dst);
  handle.commitment =
      admission_.request(spec, handle.links, net_.sim().now());

  if (!handle.commitment.admitted) {
    if (config_.enforce_admission) {
      throw std::runtime_error("admission rejected " + describe(spec) + ": " +
                               handle.commitment.reason);
    }
    // Forced configuration (paper-style static experiments): pick the
    // cheapest adequate class exactly as admission would have.
    if (spec.service == net::ServiceClass::kPredicted) {
      const double per_hop = spec.predicted->target_delay /
                             static_cast<double>(handle.links.size());
      int chosen = 0;
      for (int j = static_cast<int>(config_.class_targets.size()) - 1; j >= 0;
           --j) {
        if (config_.class_targets[static_cast<std::size_t>(j)] <= per_hop) {
          chosen = j;
          break;
        }
      }
      handle.commitment.priority_per_hop.assign(handle.links.size(), chosen);
      handle.commitment.advertised_bound =
          static_cast<double>(handle.links.size()) *
          config_.class_targets[static_cast<std::size_t>(chosen)];
    }
  }

  configure_flow(handle);
  return handle;
}

void IspnNetwork::close_flow(const FlowHandle& handle) {
  const FlowSpec& spec = handle.spec;
  if (spec.service == net::ServiceClass::kDatagram) return;
  if (handle.commitment.admitted &&
      !admission_.release(spec, handle.links)) {
    // The ledger shows no commitment: an earlier close or a reroute
    // already released this flow (and deregistered its schedulers).
    // Proceeding would hand the bandwidth back a second time.
    return;
  }
  if (spec.service == net::ServiceClass::kGuaranteed) {
    for (const LinkId& link : handle.links) {
      schedulers_.at(link)->remove_guaranteed(spec.flow);
      index_remove(link, spec.flow);
    }
  } else {
    for (const LinkId& link : handle.links) {
      schedulers_.at(link)->remove_predicted(spec.flow);
      index_remove(link, spec.flow);
    }
  }
}

IspnNetwork::RerouteOutcome IspnNetwork::reroute_flow(
    FlowHandle& handle, bool degrade_to_datagram) {
  FlowSpec& spec = handle.spec;
  assert(spec.service != net::ServiceClass::kDatagram &&
         "datagram flows follow the routing tables; nothing to re-offer");
  assert(handle.commitment.admitted && "reroute is for admitted flows");
  const sim::Time now = net_.sim().now();
  const std::vector<LinkId> old_links = handle.links;
  const std::vector<LinkId> new_links = route_links(spec.src, spec.dst);
  const bool reachable = !net_.route(spec.src, spec.dst).empty();

  // Removes this flow from one link's scheduler.  Guaranteed packets still
  // queued there are casualties of the path change — they would otherwise
  // pin a WFQ registration whose clock rate we are about to hand back.
  auto expel = [&](const LinkId& link) {
    if (spec.service == net::ServiceClass::kGuaranteed) {
      schedulers_.at(link)->expel_guaranteed(
          spec.flow, now, [this, &spec](net::PacketPtr, sim::Time) {
            ++net_.stats(spec.flow).failed_link_drops;
          });
    } else {
      schedulers_.at(link)->remove_predicted(spec.flow);
    }
    index_remove(link, spec.flow);
  };

  // Release first: the re-offer must compete against live state that no
  // longer counts this flow's own reservation.  Idempotent, so a racing
  // teardown cannot double-release.
  admission_.release(spec, old_links);

  if (!reachable) {
    for (const LinkId& link : old_links) expel(link);
    handle.links.clear();
    handle.commitment = ServiceCommitment{};
    return RerouteOutcome::kOrphaned;
  }

  ServiceCommitment fresh = admission_.request(spec, new_links, now);
  if (fresh.admitted) {
    if (spec.service == net::ServiceClass::kGuaranteed) {
      // Links on both the old and new path keep their registration and
      // their queued packets — only the divergence changes hands.
      for (const LinkId& link : old_links) {
        if (std::find(new_links.begin(), new_links.end(), link) ==
            new_links.end()) {
          expel(link);
        }
      }
      for (const LinkId& link : new_links) {
        if (std::find(old_links.begin(), old_links.end(), link) ==
            old_links.end()) {
          schedulers_.at(link)->add_guaranteed(spec.flow,
                                               spec.guaranteed->clock_rate);
          index_add(link, spec.flow);
        }
      }
    } else {
      for (const LinkId& link : old_links) {
        if (std::find(new_links.begin(), new_links.end(), link) ==
            new_links.end()) {
          schedulers_.at(link)->remove_predicted(spec.flow);
          index_remove(link, spec.flow);
        }
      }
      assert(fresh.priority_per_hop.size() == new_links.size());
      for (std::size_t i = 0; i < new_links.size(); ++i) {
        schedulers_.at(new_links[i])
            ->set_predicted_priority(spec.flow, fresh.priority_per_hop[i]);
        index_add(new_links[i], spec.flow);
      }
    }
    handle.links = new_links;
    handle.commitment = std::move(fresh);
    return RerouteOutcome::kRerouted;
  }

  // Refused on the new path: this flow's reservation is gone everywhere.
  for (const LinkId& link : old_links) expel(link);
  if (degrade_to_datagram) {
    spec.service = net::ServiceClass::kDatagram;
    spec.guaranteed.reset();
    spec.predicted.reset();
    handle.links = new_links;
    handle.commitment = ServiceCommitment{};
    handle.commitment.admitted = true;  // datagram service is never refused
    return RerouteOutcome::kDegraded;
  }
  handle.links.clear();
  handle.commitment = ServiceCommitment{};
  return RerouteOutcome::kClosed;
}

traffic::OnOffSource& IspnNetwork::attach_onoff_source(
    const FlowHandle& handle, traffic::OnOffSource::Config config,
    std::uint64_t stream, std::optional<traffic::TokenBucketSpec> police) {
  const FlowSpec& spec = handle.spec;
  if (!police && spec.service == net::ServiceClass::kPredicted) {
    // Predicted flows are policed at the network edge with the declared
    // filter (paper §8); source-side dropping is equivalent in simulation
    // since host links are infinitely fast.
    police = spec.predicted->bucket;
  }
  net::Host& host = net_.host(spec.src);
  auto source = std::make_unique<traffic::OnOffSource>(
      net_.sim_for(spec.src), config, sim::Rng(config_.seed, stream),
      spec.flow, spec.src, spec.dst,
      [&host](net::PacketPtr p) { host.inject(std::move(p)); },
      &net_.stats(spec.flow), police);
  const std::uint8_t priority =
      handle.commitment.priority_per_hop.empty()
          ? 0
          : static_cast<std::uint8_t>(handle.commitment.priority_per_hop[0]);
  source->set_service(spec.service, priority);
  if (net_.sharded()) source->set_pool(&net_.pool_for(spec.src));
  auto& ref = *source;
  sources_.push_back(std::move(source));
  return ref;
}

std::pair<traffic::TcpSource&, traffic::TcpSink&> IspnNetwork::attach_tcp(
    const FlowHandle& handle, traffic::TcpSource::Config config) {
  const FlowSpec& spec = handle.spec;
  assert(spec.service == net::ServiceClass::kDatagram);
  net::Host& src_host = net_.host(spec.src);
  net::Host& dst_host = net_.host(spec.dst);
  // Each endpoint lives on its own host's clock: in a sharded run that is
  // the owning domain's simulator and packet pool, classically the global
  // ones.
  sim::Simulator& src_sim =
      net_.sharded() ? net_.sim_for(spec.src) : net_.sim();
  sim::Simulator& dst_sim =
      net_.sharded() ? net_.sim_for(spec.dst) : net_.sim();

  auto source = std::make_unique<traffic::TcpSource>(
      src_sim, config, spec.flow, spec.src, spec.dst,
      [&src_host](net::PacketPtr p) { src_host.inject(std::move(p)); },
      &net_.stats(spec.flow));
  auto sink = std::make_unique<traffic::TcpSink>(
      dst_sim, config, spec.flow, spec.dst, spec.src,
      [&dst_host](net::PacketPtr p) { dst_host.inject(std::move(p)); });
  sink->set_stats(&net_.stats(spec.flow));
  if (net_.sharded()) {
    source->set_pool(&net_.pool_for(spec.src));
    sink->set_pool(&net_.pool_for(spec.dst));
  }

  // ACKs arrive back at the source host; data arrives at the destination
  // behind the stats recorder.
  src_host.register_sink(spec.flow, source.get());
  net_.attach_stats_sink(spec.flow, spec.dst, sink.get());

  auto& src_ref = *source;
  auto& sink_ref = *sink;
  tcp_sources_.push_back(std::move(source));
  tcp_sinks_.push_back(std::move(sink));
  return {src_ref, sink_ref};
}

void IspnNetwork::attach_sink(const FlowHandle& handle, net::FlowSink* app) {
  net_.attach_stats_sink(handle.spec.flow, handle.spec.dst, app);
}

sim::Duration IspnNetwork::guaranteed_bound(
    const FlowHandle& handle, const traffic::TokenBucketSpec& bucket,
    sim::Bits packet_bits) const {
  assert(handle.spec.service == net::ServiceClass::kGuaranteed);
  return pg_paper_bound(bucket, handle.links.size(), packet_bits);
}

double IspnNetwork::link_utilization(LinkId link, sim::Time now) {
  return net_.port(link.first, link.second)->utilization(now);
}

double IspnNetwork::realtime_utilization(LinkId link, sim::Time now) const {
  if (now <= 0) return 0.0;
  auto it = realtime_bits_.find(link);
  if (it == realtime_bits_.end()) return 0.0;
  return it->second / (link_rates_.at(link) * now);
}

}  // namespace ispn::core
