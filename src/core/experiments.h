// The paper's experiment configurations (Appendix + Tables 1-3), shared by
// benches, examples and integration tests.
//
// All parameters follow the Appendix: 1 Mbit/s inter-switch links, 1000-bit
// packets, 200-packet buffers, two-state Markov sources with A = 85 pkt/s,
// B = 5, P = 2A, (A, 50-packet) edge filters, 600 s runs.
//
// Flow layout (Figure 1, 22 flows): 12 of path length 1, 4 of length 2,
// 4 of length 3, 2 of length 4, all one-way, 10 flows per inter-switch
// link.  Table 3 roles are chosen so that every link carries exactly
// 2 Guaranteed-Peak, 1 Guaranteed-Average, 3 Predicted-High and
// 4 Predicted-Low flows (plus one TCP connection), and so that the sampled
// path lengths match the paper's rows (Peak 4/2, Average 3/1, High 4/2,
// Low 3/1).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/builder.h"
#include "sim/units.h"

namespace ispn::core {

/// Queueing discipline under test in Tables 1 and 2.
enum class SchedKind { kFifo, kWfq, kFifoPlus };

[[nodiscard]] const char* to_string(SchedKind kind);

/// Table 3 service roles.
enum class Table3Role {
  kGuaranteedPeak,     ///< guaranteed, clock rate = peak rate (2A)
  kGuaranteedAverage,  ///< guaranteed, clock rate = average rate (A)
  kPredictedHigh,      ///< predicted, high-priority class
  kPredictedLow,       ///< predicted, low-priority class
};

[[nodiscard]] const char* to_string(Table3Role role);

/// One real-time flow of the Figure-1 layout (0-based switch indices).
struct LayoutFlow {
  int src_sw;
  int dst_sw;
  Table3Role role;  ///< ignored by Table 2
  [[nodiscard]] int path_len() const { return dst_sw - src_sw; }
};

/// The 22-flow layout used by Tables 2 and 3.
[[nodiscard]] std::vector<LayoutFlow> paper_flow_layout();

/// ------------------------------------------------------------------ Table 1
struct SingleLinkResult {
  std::vector<double> mean_pkt;   ///< per-flow mean queueing delay (pkt times)
  std::vector<double> p999_pkt;   ///< per-flow 99.9th percentile
  double utilization = 0;         ///< bottleneck link utilisation
  double source_drop_rate = 0;    ///< edge-filter drop fraction (aggregate)
};

/// Runs `num_flows` paper sources over one 1 Mbit/s link under `kind`.
SingleLinkResult run_single_link(SchedKind kind, int num_flows,
                                 sim::Duration seconds, std::uint64_t seed);

/// ------------------------------------------------------------------ Table 2
struct ChainFlowResult {
  int flow = 0;
  int path_len = 0;
  double mean_pkt = 0;
  double p999_pkt = 0;
  double max_pkt = 0;
};
struct ChainResult {
  std::vector<ChainFlowResult> flows;
  std::vector<double> link_utilization;  ///< per inter-switch link
};

/// Runs the Figure-1 chain with all 22 flows under `kind`.
/// `fifo_plus_gain` tunes the FIFO+ class-average EWMA (ignored otherwise).
ChainResult run_chain(SchedKind kind, sim::Duration seconds,
                      std::uint64_t seed,
                      double fifo_plus_gain = 1.0 / 4096.0);

/// ------------------------------------------------------------------ Table 3
struct Table3FlowResult {
  int flow = 0;
  Table3Role role{};
  int path_len = 0;
  double mean_pkt = 0;
  double p999_pkt = 0;
  double max_pkt = 0;
  /// Parekh–Gallager a-priori bound (pkt times); guaranteed flows only.
  double pg_bound_pkt = 0;
};
struct Table3Result {
  std::vector<Table3FlowResult> flows;
  std::vector<double> link_utilization;       ///< total, per link
  std::vector<double> realtime_utilization;   ///< real-time only, per link
  double datagram_drop_rate = 0;              ///< TCP segment drop fraction
  std::uint64_t tcp_delivered = 0;            ///< segments across both TCPs
};

struct Table3Options {
  sim::Duration seconds = sim::paper::kRunSeconds;
  std::uint64_t seed = 1;
  /// Per-hop class targets D_i: {high, low}, order-of-magnitude spaced.
  std::vector<sim::Duration> class_targets = {0.016, 0.16};
  bool fifo_plus = true;       ///< ablation switch
  int num_tcp = 2;
};

/// Runs the unified-scheduler experiment (22 real-time flows + TCP load).
Table3Result run_table3(const Table3Options& options);

}  // namespace ispn::core
