// Parekh–Gallager delay bounds for guaranteed service (paper §4, §7).
//
// Fluid bound: a flow conforming to an (r, b) token bucket, given clock
// rate r at every switch with Σ clock rates ≤ link speed everywhere, sees
// queueing delay at most b/r — as if the whole network were one link of
// rate r.
//
// Table 3 advertises the packetized multi-hop form
//
//     D = b(r)/r + (K − 1) · p / r
//
// for a K-hop path with packet size p (verified against all four P–G
// values printed in the paper: 23.53, 11.76, 611.76 and 588.24 packet
// times).  We also provide the fuller packetized PGPS expression that adds
// the per-hop store-and-forward term Σ p/C_k for reference.

#pragma once

#include <vector>

#include "sim/units.h"
#include "traffic/token_bucket.h"

namespace ispn::core {

/// Fluid single-link bound b/r.
[[nodiscard]] sim::Duration pg_fluid_bound(const traffic::TokenBucketSpec& tb);

/// The paper's advertised bound: b/r + (hops-1)·p/r.
[[nodiscard]] sim::Duration pg_paper_bound(const traffic::TokenBucketSpec& tb,
                                           std::size_t hops,
                                           sim::Bits packet_bits);

/// Full packetized PGPS bound: b/r + (hops-1)·p/r + Σ_k p/C_k.
[[nodiscard]] sim::Duration pg_packetized_bound(
    const traffic::TokenBucketSpec& tb, sim::Bits packet_bits,
    const std::vector<sim::Rate>& link_rates);

/// b(r) needed so that pg_paper_bound(...) == target delay; useful for a
/// client choosing its clock rate ("to improve the worst case bound,
/// increase r").  Returns the bucket depth in bits.
[[nodiscard]] sim::Bits depth_for_bound(sim::Rate clock_rate,
                                        sim::Duration target,
                                        std::size_t hops,
                                        sim::Bits packet_bits);

}  // namespace ispn::core
