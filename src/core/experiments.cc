#include "core/experiments.h"

#include <cassert>
#include <memory>

#include "net/topology.h"
#include "sched/fifo.h"
#include "sched/fifo_plus.h"
#include "sched/wfq.h"
#include "traffic/onoff_source.h"

namespace ispn::core {

const char* to_string(SchedKind kind) {
  switch (kind) {
    case SchedKind::kFifo: return "FIFO";
    case SchedKind::kWfq: return "WFQ";
    case SchedKind::kFifoPlus: return "FIFO+";
  }
  return "?";
}

const char* to_string(Table3Role role) {
  switch (role) {
    case Table3Role::kGuaranteedPeak: return "Guaranteed-Peak";
    case Table3Role::kGuaranteedAverage: return "Guaranteed-Average";
    case Table3Role::kPredictedHigh: return "Predicted-High";
    case Table3Role::kPredictedLow: return "Predicted-Low";
  }
  return "?";
}

std::vector<LayoutFlow> paper_flow_layout() {
  using R = Table3Role;
  // See the header comment: 10 flows per link; per-link role mix
  // 2 GP + 1 GA + 3 PH + 4 PL; sampled path lengths match the paper's rows.
  return {
      {0, 4, R::kGuaranteedPeak},     // len 4
      {0, 4, R::kPredictedHigh},      // len 4
      {0, 3, R::kGuaranteedAverage},  // len 3
      {0, 3, R::kPredictedLow},       // len 3
      {1, 4, R::kPredictedLow},       // len 3
      {1, 4, R::kPredictedLow},       // len 3
      {0, 2, R::kGuaranteedPeak},     // len 2
      {0, 2, R::kPredictedHigh},      // len 2
      {2, 4, R::kGuaranteedPeak},     // len 2
      {2, 4, R::kPredictedHigh},      // len 2
      {0, 1, R::kPredictedHigh},      // len 1 on L1
      {0, 1, R::kPredictedLow},
      {0, 1, R::kPredictedLow},
      {0, 1, R::kPredictedLow},
      {1, 2, R::kPredictedHigh},      // len 1 on L2
      {1, 2, R::kPredictedLow},
      {2, 3, R::kPredictedHigh},      // len 1 on L3
      {2, 3, R::kPredictedLow},
      {3, 4, R::kGuaranteedAverage},  // len 1 on L4
      {3, 4, R::kPredictedHigh},
      {3, 4, R::kPredictedLow},
      {3, 4, R::kPredictedLow},
  };
}

namespace {

net::SchedulerFactory factory_for(SchedKind kind,
                                  double fifo_plus_gain = 1.0 / 4096.0) {
  switch (kind) {
    case SchedKind::kFifo:
      return [] {
        return std::make_unique<sched::FifoScheduler>(
            sim::paper::kBufferPackets);
      };
    case SchedKind::kWfq:
      return [] {
        // Equal clock rates (the paper's Tables 1/2 use an egalitarian WFQ).
        return std::make_unique<sched::WfqScheduler>(sched::WfqScheduler::Config{
            sim::paper::kLinkRate, sim::paper::kBufferPackets,
            /*default_weight=*/sim::paper::kLinkRate / 10.0});
      };
    case SchedKind::kFifoPlus:
      return [fifo_plus_gain] {
        return std::make_unique<sched::FifoPlusScheduler>(
            sched::FifoPlusScheduler::Config{sim::paper::kBufferPackets,
                                             fifo_plus_gain, true});
      };
  }
  return {};
}

traffic::OnOffSource::Config paper_source() { return {}; }  // all defaults

std::unique_ptr<traffic::OnOffSource> make_paper_source(
    net::Network& net, net::FlowId flow, net::NodeId src, net::NodeId dst,
    std::uint64_t seed, std::uint64_t stream) {
  auto config = paper_source();
  net::Host& host = net.host(src);
  auto source = std::make_unique<traffic::OnOffSource>(
      net.sim(), config, sim::Rng(seed, stream), flow, src, dst,
      [&host](net::PacketPtr p) { host.inject(std::move(p)); },
      &net.stats(flow), config.paper_filter());
  source->set_service(net::ServiceClass::kPredicted, 0);
  return source;
}

}  // namespace

SingleLinkResult run_single_link(SchedKind kind, int num_flows,
                                 sim::Duration seconds, std::uint64_t seed) {
  net::Network net;
  const auto topo = net::build_dumbbell(net, sim::paper::kLinkRate,
                                        factory_for(kind));

  std::vector<std::unique_ptr<traffic::OnOffSource>> sources;
  for (int f = 0; f < num_flows; ++f) {
    auto source = make_paper_source(net, f, topo.left_host, topo.right_host,
                                    seed, static_cast<std::uint64_t>(f));
    net.attach_stats_sink(f, topo.right_host);
    source->start(0);
    sources.push_back(std::move(source));
  }

  net.sim().run_until(seconds);

  SingleLinkResult result;
  std::uint64_t generated = 0;
  std::uint64_t dropped = 0;
  for (int f = 0; f < num_flows; ++f) {
    const auto& stats = net.stats(f);
    result.mean_pkt.push_back(stats.mean_qdelay_pkt());
    result.p999_pkt.push_back(stats.p999_qdelay_pkt());
    generated += stats.generated;
    dropped += stats.source_drops;
  }
  result.utilization =
      net.port(topo.left_switch, topo.right_switch)->utilization(seconds);
  result.source_drop_rate =
      generated == 0 ? 0.0
                     : static_cast<double>(dropped) /
                           static_cast<double>(generated);
  return result;
}

ChainResult run_chain(SchedKind kind, sim::Duration seconds,
                      std::uint64_t seed, double fifo_plus_gain) {
  net::Network net;
  const auto topo = net::build_chain(net, 5, sim::paper::kLinkRate,
                                     factory_for(kind, fifo_plus_gain));
  const auto layout = paper_flow_layout();

  std::vector<std::unique_ptr<traffic::OnOffSource>> sources;
  for (std::size_t f = 0; f < layout.size(); ++f) {
    const auto& lf = layout[f];
    auto source = make_paper_source(
        net, static_cast<net::FlowId>(f),
        topo.hosts[static_cast<std::size_t>(lf.src_sw)],
        topo.hosts[static_cast<std::size_t>(lf.dst_sw)], seed, f);
    net.attach_stats_sink(static_cast<net::FlowId>(f),
                          topo.hosts[static_cast<std::size_t>(lf.dst_sw)]);
    source->start(0);
    sources.push_back(std::move(source));
  }

  net.sim().run_until(seconds);

  ChainResult result;
  for (std::size_t f = 0; f < layout.size(); ++f) {
    const auto& stats = net.stats(static_cast<net::FlowId>(f));
    result.flows.push_back(ChainFlowResult{
        static_cast<int>(f), layout[f].path_len(), stats.mean_qdelay_pkt(),
        stats.p999_qdelay_pkt(), stats.max_qdelay_pkt()});
  }
  for (std::size_t i = 0; i + 1 < topo.switches.size(); ++i) {
    result.link_utilization.push_back(
        net.port(topo.switches[i], topo.switches[i + 1])
            ->utilization(seconds));
  }
  return result;
}

Table3Result run_table3(const Table3Options& options) {
  IspnNetwork::Config config;
  config.class_targets = options.class_targets;
  config.fifo_plus = options.fifo_plus;
  // The paper's static Table-3 load is preconfigured (its admission policy
  // was future work); we reproduce it verbatim rather than gate it.
  config.enforce_admission = false;
  config.seed = options.seed;
  IspnNetwork ispn(config);
  const auto topo = ispn.build_chain(5);
  const auto layout = paper_flow_layout();

  const traffic::OnOffSource::Config source_config;  // paper defaults
  const traffic::TokenBucketSpec edge_filter = source_config.paper_filter();

  Table3Result result;
  for (std::size_t f = 0; f < layout.size(); ++f) {
    const auto& lf = layout[f];
    FlowSpec spec;
    spec.flow = static_cast<net::FlowId>(f);
    spec.src = topo.hosts[static_cast<std::size_t>(lf.src_sw)];
    spec.dst = topo.hosts[static_cast<std::size_t>(lf.dst_sw)];

    const double hops = lf.path_len();
    traffic::TokenBucketSpec pg_bucket{};
    switch (lf.role) {
      case Table3Role::kGuaranteedPeak:
        spec.service = net::ServiceClass::kGuaranteed;
        spec.guaranteed = GuaranteedSpec{source_config.peak_bps()};
        // At clock = peak rate the effective bucket is one packet.
        pg_bucket = {source_config.peak_bps(), source_config.packet_bits};
        break;
      case Table3Role::kGuaranteedAverage:
        spec.service = net::ServiceClass::kGuaranteed;
        spec.guaranteed = GuaranteedSpec{source_config.avg_bps()};
        pg_bucket = edge_filter;  // (A, 50 packets)
        break;
      case Table3Role::kPredictedHigh:
        spec.service = net::ServiceClass::kPredicted;
        spec.predicted = PredictedSpec{
            edge_filter, options.class_targets.front() * hops, 0.01};
        break;
      case Table3Role::kPredictedLow:
        spec.service = net::ServiceClass::kPredicted;
        spec.predicted = PredictedSpec{
            edge_filter, options.class_targets.back() * hops, 0.01};
        break;
    }

    auto handle = ispn.open_flow(spec);
    // All real-time sources pass the paper's (A, 50) source-side filter.
    auto& source =
        ispn.attach_onoff_source(handle, source_config, f, edge_filter);
    ispn.attach_sink(handle);
    source.start(0);

    Table3FlowResult fr;
    fr.flow = static_cast<int>(f);
    fr.role = lf.role;
    fr.path_len = lf.path_len();
    if (spec.service == net::ServiceClass::kGuaranteed) {
      fr.pg_bound_pkt = ispn.guaranteed_bound(handle, pg_bucket) /
                        sim::paper::kPacketTime;
    }
    result.flows.push_back(fr);
  }

  // Datagram TCP load: one connection per pair of links.
  std::vector<std::pair<int, int>> tcp_paths = {{0, 2}, {2, 4}};
  std::vector<net::FlowId> tcp_flows;
  for (int t = 0; t < options.num_tcp && t < static_cast<int>(tcp_paths.size());
       ++t) {
    FlowSpec spec;
    spec.flow = static_cast<net::FlowId>(100 + t);
    spec.src = topo.hosts[static_cast<std::size_t>(tcp_paths[(std::size_t)t].first)];
    spec.dst = topo.hosts[static_cast<std::size_t>(tcp_paths[(std::size_t)t].second)];
    spec.service = net::ServiceClass::kDatagram;
    auto handle = ispn.open_flow(spec);
    auto [tcp_src, tcp_sink] = ispn.attach_tcp(handle);
    (void)tcp_sink;
    tcp_src.start(0);
    tcp_flows.push_back(spec.flow);
  }

  ispn.net().sim().run_until(options.seconds);

  for (auto& fr : result.flows) {
    const auto& stats = ispn.net().stats(fr.flow);
    fr.mean_pkt = stats.mean_qdelay_pkt();
    fr.p999_pkt = stats.p999_qdelay_pkt();
    fr.max_pkt = stats.max_qdelay_pkt();
  }

  std::uint64_t tcp_injected = 0;
  std::uint64_t tcp_drops = 0;
  for (net::FlowId f : tcp_flows) {
    const auto& stats = ispn.net().stats(f);
    tcp_injected += stats.injected;
    tcp_drops += stats.net_drops;
    result.tcp_delivered += stats.received;
  }
  result.datagram_drop_rate =
      tcp_injected == 0 ? 0.0
                        : static_cast<double>(tcp_drops) /
                              static_cast<double>(tcp_injected);

  for (std::size_t i = 0; i + 1 < topo.switches.size(); ++i) {
    const LinkId link{topo.switches[i], topo.switches[i + 1]};
    result.link_utilization.push_back(
        ispn.link_utilization(link, options.seconds));
    result.realtime_utilization.push_back(
        ispn.realtime_utilization(link, options.seconds));
  }
  return result;
}

}  // namespace ispn::core
