// The service interface (paper §8).
//
// Guaranteed service: the source specifies only its clock rate r; the
// network guarantees that rate through WFQ and the client computes its own
// worst-case delay from its known b(r).  No conformance check is performed
// — the client made no traffic commitment.
//
// Predicted service: the source declares a token-bucket filter (r, b) plus
// the service it needs: a delay target D and tolerable loss rate L.  The
// network maps (D, L) to a priority class at each switch and polices (r, b)
// at the network edge only.
//
// Datagram: no parameters, no commitment beyond "do not delay or drop
// unnecessarily" and the 10% bandwidth quota (§9).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"
#include "sim/units.h"
#include "traffic/token_bucket.h"

namespace ispn::core {

/// Guaranteed-service request: a WFQ clock rate (bits/s).
struct GuaranteedSpec {
  sim::Rate clock_rate = 0;
};

/// Predicted-service request: edge filter plus delay/loss targets.
struct PredictedSpec {
  traffic::TokenBucketSpec bucket;
  sim::Duration target_delay = 0;  ///< D: per-path delay target (seconds)
  double target_loss = 0;          ///< L: tolerable loss fraction
};

/// One flow's service request.
struct FlowSpec {
  net::FlowId flow = net::kNoFlow;
  net::NodeId src = net::kNoNode;
  net::NodeId dst = net::kNoNode;
  net::ServiceClass service = net::ServiceClass::kDatagram;
  std::optional<GuaranteedSpec> guaranteed;  ///< set iff service == kGuaranteed
  std::optional<PredictedSpec> predicted;    ///< set iff service == kPredicted

  /// True when the variant fields are consistent with `service`.
  [[nodiscard]] bool valid() const;
};

/// The network's answer to a service request.
struct ServiceCommitment {
  bool admitted = false;
  /// A-priori delay bound advertised to the client (seconds):
  /// Parekh–Gallager for guaranteed flows, the sum of per-hop class targets
  /// D_i for predicted flows, absent for datagram.
  std::optional<sim::Duration> advertised_bound;
  /// Priority level assigned at each hop (predicted flows only; the paper
  /// allows different levels per switch).
  std::vector<int> priority_per_hop;
  /// Human-readable reason when rejected.
  std::string reason;
  /// Index into the requested path of the link that refused the flow
  /// (-1 when admitted, or when the rejection is not tied to one hop).
  int rejected_hop = -1;
};

/// Renders a one-line description ("G r=170kb/s", "P (85kb/s,50kb) D=5ms
/// L=1e-2", "D") for logs and bench output.
[[nodiscard]] std::string describe(const FlowSpec& spec);

}  // namespace ispn::core
