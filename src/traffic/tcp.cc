#include "traffic/tcp.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace ispn::traffic {

namespace {

CcParams make_cc_params(const TcpSource::Config& c) {
  CcParams p;
  p.algo = c.cc;
  p.initial_cwnd = c.initial_cwnd;
  p.initial_ssthresh = c.initial_ssthresh;
  p.max_cwnd = c.max_cwnd;
  return p;
}

/// Power-of-two ring capacity strictly above the maximum window, so
/// outstanding segments never alias an index.
std::uint64_t ring_capacity(double max_cwnd) {
  const auto need = 2 * (static_cast<std::uint64_t>(max_cwnd) + 2);
  std::uint64_t cap = 2;
  while (cap < need) cap <<= 1;
  return cap;
}

}  // namespace

// ---------------------------------------------------------------- sender --

TcpSource::TcpSource(sim::Simulator& sim, Config config, net::FlowId flow,
                     net::NodeId src, net::NodeId dst, EmitFn emit,
                     net::FlowStats* stats)
    : Source(sim, flow, src, dst, std::move(emit), stats, std::nullopt),
      config_(config),
      cc_(make_cc_params(config)),
      sent_at_(ring_capacity(config.max_cwnd), 0.0),
      ring_mask_(sent_at_.size() - 1),
      rto_(config.initial_rto),
      rto_timer_(sim, [this] { on_rto(); }),
      pace_timer_(sim, [this] { on_pace(); }),
      reorder_timer_(sim, [this] { on_reorder(); }),
      fb_wnd_(config.max_cwnd),
      fb_round_len_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(config.initial_cwnd))) {}

void TcpSource::start(sim::Time at) {
  sim_.at(at, [this] {
    running_ = true;
    send_available();
  });
}

void TcpSource::stop() {
  running_ = false;
  rto_timer_.disarm();
  pace_timer_.disarm();
  reorder_timer_.disarm();
}

std::uint64_t TcpSource::window() const {
  double w = std::min(cc_.cwnd(), config_.max_cwnd);
  if (config_.binary_feedback) w = std::min(w, fb_wnd_);
  const auto iw = static_cast<std::uint64_t>(w);
  return iw == 0 ? 1 : iw;
}

void TcpSource::send_segment(std::uint64_t seq, bool is_retransmit) {
  const sim::Time now = sim_.now();
  auto p = pool() != nullptr
               ? net::make_packet(*pool(), flow(), seq, src(), dst(), now,
                                  config_.packet_bits)
               : net::make_packet(flow(), seq, src(), dst(), now,
                                  config_.packet_bits);
  p->service = service();
  p->priority = priority();
  p->path_epoch = epoch();
  if (stats() != nullptr) {
    ++stats()->generated;
    ++stats()->injected;
  }
  sent_at_[seq & ring_mask_] = now;
  ++sent_segments_;
  if (is_retransmit) {
    ++retransmits_;
    // Karn's rule: a retransmitted sequence must not produce an RTT sample.
    if (timing_ && timed_seq_ == seq) timing_ = false;
  } else if (!timing_) {
    timing_ = true;
    timed_seq_ = seq;
    timed_sent_at_ = now;
  }
  emit_packet(std::move(p));
}

void TcpSource::send_available() {
  if (!running_) return;
  if (cc_.paced() && cc_.pacing_rate() > 0) {
    schedule_pacing(sim_.now());
  } else {
    while (inflight() < window()) {
      send_segment(next_seq_, /*is_retransmit=*/false);
      ++next_seq_;
    }
  }
  if (inflight() > 0 && !rto_timer_.pending()) arm_rto();
}

void TcpSource::schedule_pacing(sim::Time now) {
  if (pace_timer_.pending()) return;
  if (inflight() >= window()) return;  // an ACK will reopen the spigot
  pace_timer_.arm_at(std::max(now, next_pace_time_));
}

void TcpSource::on_pace() {
  if (!running_) return;
  if (inflight() >= window()) return;  // re-scheduled from the next ACK
  send_segment(next_seq_, /*is_retransmit=*/false);
  ++next_seq_;
  const sim::Time now = sim_.now();
  const double rate = cc_.pacing_rate();
  if (rate > 0) {
    next_pace_time_ = std::max(now, next_pace_time_) + 1.0 / rate;
    if (inflight() < window()) pace_timer_.arm_at(next_pace_time_);
  } else if (inflight() < window()) {
    send_available();  // model went quiet: fall back to window release
  }
  if (inflight() > 0 && !rto_timer_.pending()) arm_rto();
}

void TcpSource::arm_rto() {
  // Anchor the timer at the EARLIEST outstanding transmission, not at now:
  // an ACK for newer data must not push the oldest segment's deadline out.
  // (The old `arm_after(rto_)` rule quietly granted the first un-acked
  // segment a fresh full RTO on every ACK; pinned by RtoRearm* in
  // test_tcp.)
  const sim::Time now = sim_.now();
  const sim::Time base =
      inflight() > 0 ? sent_at_[snd_una_ & ring_mask_] : now;
  rto_timer_.arm_at(std::max(now, base + rto_));
}

void TcpSource::on_rto() {
  if (!running_ || inflight() == 0) return;
  ++timeouts_;
  dup_acks_ = 0;
  in_recovery_ = false;
  cc_.on_rto();
  rto_ = std::min(rto_ * 2.0, config_.max_rto);  // exponential backoff
  timing_ = false;
  reorder_timer_.disarm();
  // Go-back-N from the first hole.
  next_seq_ = snd_una_;
  send_segment(next_seq_, /*is_retransmit=*/true);
  ++next_seq_;
  arm_rto();
}

void TcpSource::arm_reorder(sim::Time now) {
  if (reorder_timer_.pending()) return;
  // The earliest outstanding segment is declared lost once a full RTT plus
  // the reorder window has passed since it was (last) sent.
  const sim::Duration srtt_eff = srtt_ >= 0 ? srtt_ : rto_;
  const sim::Time deadline =
      sent_at_[snd_una_ & ring_mask_] + srtt_eff + cc_.reorder_window();
  reorder_armed_una_ = snd_una_;
  reorder_timer_.arm_at(std::max(now, deadline));
}

void TcpSource::on_reorder() {
  if (!running_ || in_recovery_ || inflight() == 0) return;
  // Progress since arming (or the dup evidence) cancels the verdict.
  if (snd_una_ != reorder_armed_una_ || dup_acks_ == 0) return;
  ++reorder_timeouts_;
  enter_recovery();
  send_segment(snd_una_, /*is_retransmit=*/true);
  send_available();
}

void TcpSource::enter_recovery() {
  recover_ = next_seq_;
  in_recovery_ = true;
  cc_.on_loss_event();
}

void TcpSource::update_rtt(sim::Duration sample) {
  if (srtt_ < 0) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(sample - srtt_);
    srtt_ = 0.875 * srtt_ + 0.125 * sample;
  }
  rto_ = std::clamp(srtt_ + 4.0 * rttvar_, config_.min_rto, config_.max_rto);
}

void TcpSource::note_feedback(bool echoed) {
  ++fb_acks_;
  if (echoed) ++fb_marked_;
  if (fb_acks_ < fb_round_len_) return;
  // One AIMD step per window-length round of ACKs (DEC-TR-506): decrease
  // multiplicatively when at least fb_fraction of the round was marked,
  // otherwise increase additively.
  if (static_cast<double>(fb_marked_) >=
      config_.fb_fraction * static_cast<double>(fb_acks_)) {
    fb_wnd_ = std::max(2.0, fb_wnd_ * config_.fb_decrease);
    ++fb_backoffs_;
  } else {
    fb_wnd_ = std::min(config_.max_cwnd, fb_wnd_ + 1.0);
  }
  fb_acks_ = 0;
  fb_marked_ = 0;
  fb_round_len_ = std::max<std::uint64_t>(1, window());
}

void TcpSource::on_packet(net::PacketPtr p, sim::Time now) {
  assert(p->is_ack);
  if (!running_) return;
  const std::uint64_t ack = p->ack_seq;  // next expected by the receiver
  if (p->cong_echo) ++echoes_received_;
  if (config_.binary_feedback) note_feedback(p->cong_echo);

  if (ack > snd_una_) {
    // New data acknowledged.
    const std::uint64_t newly = ack - snd_una_;
    sim::Duration sample = -1.0;
    if (timing_ && ack > timed_seq_) {
      sample = now - timed_sent_at_;
      update_rtt(sample);
      timing_ = false;
    }
    snd_una_ = ack;
    dup_acks_ = 0;
    reorder_timer_.disarm();  // the suspect was delivered after all
    const bool was_recovery = in_recovery_;
    bool partial = false;
    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;
        cc_.on_recovery_exit();
      } else {
        partial = true;  // NewReno: retransmit the next hole, stay in
      }
    }
    cc_.on_ack(newly, sample, snd_una_, next_seq_, now, was_recovery);
    if (partial) send_segment(snd_una_, /*is_retransmit=*/true);
    // Restart the retransmission timer for remaining data, anchored at
    // the (new) earliest outstanding transmission.
    if (inflight() > 0) {
      arm_rto();
    } else {
      rto_timer_.disarm();
    }
  } else if (ack == snd_una_ && inflight() > 0) {
    ++dup_acks_;
    if (!in_recovery_) {
      switch (cc_.on_dup_ack(dup_acks_)) {
        case CongestionControl::DupAckAction::kNone:
          break;
        case CongestionControl::DupAckAction::kFastRetransmit:
          enter_recovery();
          send_segment(snd_una_, /*is_retransmit=*/true);
          break;
        case CongestionControl::DupAckAction::kArmReorderTimer:
          arm_reorder(now);
          break;
      }
    } else {
      cc_.on_dup_ack_in_recovery();
    }
  }
  send_available();
}

// -------------------------------------------------------------- receiver --

TcpSink::TcpSink(sim::Simulator& sim, TcpSource::Config config,
                 net::FlowId flow, net::NodeId sink_host, net::NodeId peer,
                 EmitFn emit)
    : sim_(sim),
      config_(config),
      flow_(flow),
      host_(sink_host),
      peer_(peer),
      emit_(std::move(emit)),
      oo_bits_(ring_capacity(config.max_cwnd) / 64 + 1, 0),
      oo_mask_(ring_capacity(config.max_cwnd) - 1) {}

bool TcpSink::test_bit(std::uint64_t seq) const {
  const std::uint64_t i = seq & oo_mask_;
  return ((oo_bits_[i >> 6] >> (i & 63)) & 1u) != 0;
}

void TcpSink::set_bit(std::uint64_t seq) {
  const std::uint64_t i = seq & oo_mask_;
  oo_bits_[i >> 6] |= std::uint64_t{1} << (i & 63);
}

void TcpSink::clear_bit(std::uint64_t seq) {
  const std::uint64_t i = seq & oo_mask_;
  oo_bits_[i >> 6] &= ~(std::uint64_t{1} << (i & 63));
}

void TcpSink::on_packet(net::PacketPtr p, sim::Time now) {
  assert(!p->is_ack);
  const bool mark = p->cong_mark;
  if (p->seq == rcv_next_) {
    ++rcv_next_;
    // Drain any contiguous out-of-order segments from the bitmap ring.
    while (test_bit(rcv_next_)) {
      clear_bit(rcv_next_);
      ++rcv_next_;
    }
  } else if (p->seq > rcv_next_) {
    assert(p->seq - rcv_next_ <= oo_mask_ && "sender window exceeds ring");
    set_bit(p->seq);
  }  // else: duplicate of already-delivered data; still ACK cumulatively

  auto ack = pool_ != nullptr
                 ? net::make_packet(*pool_, flow_, p->seq, host_, peer_, now,
                                    config_.ack_bits)
                 : net::make_packet(flow_, p->seq, host_, peer_, now,
                                    config_.ack_bits);
  ack->service = net::ServiceClass::kDatagram;
  ack->is_ack = true;
  ack->ack_seq = rcv_next_;
  // DEC-TR-506: echo the congestion mark back to the source on the ACK.
  ack->cong_echo = mark;
  // The reverse path is real traffic: ledger it so conservation covers
  // ACKs that get dropped or are still queued at run end.
  if (stats_ != nullptr) {
    ++stats_->generated;
    ++stats_->injected;
  }
  ++acks_sent_;
  if (mark) ++echoes_sent_;
  emit_(std::move(ack));
}

}  // namespace ispn::traffic
