#include "traffic/tcp.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace ispn::traffic {

// ---------------------------------------------------------------- sender --

TcpSource::TcpSource(sim::Simulator& sim, Config config, net::FlowId flow,
                     net::NodeId src, net::NodeId dst, EmitFn emit,
                     net::FlowStats* stats)
    : sim_(sim),
      config_(config),
      flow_(flow),
      src_(src),
      dst_(dst),
      emit_(std::move(emit)),
      stats_(stats),
      cwnd_(config.initial_cwnd),
      ssthresh_(config.initial_ssthresh),
      rto_(config.initial_rto),
      rto_timer_(sim, [this] { on_rto(); }) {}

void TcpSource::start(sim::Time at) {
  sim_.at(at, [this] {
    running_ = true;
    send_available();
  });
}

void TcpSource::stop() {
  running_ = false;
  rto_timer_.disarm();
}

void TcpSource::send_segment(std::uint64_t seq, bool is_retransmit) {
  auto p = net::make_packet(flow_, seq, src_, dst_, sim_.now(),
                            config_.packet_bits);
  p->service = net::ServiceClass::kDatagram;
  if (stats_ != nullptr) {
    ++stats_->generated;
    ++stats_->injected;
  }
  ++sent_segments_;
  if (is_retransmit) {
    ++retransmits_;
    // Karn's rule: a retransmitted sequence must not produce an RTT sample.
    if (timing_ && timed_seq_ == seq) timing_ = false;
  } else if (!timing_) {
    timing_ = true;
    timed_seq_ = seq;
    timed_sent_at_ = sim_.now();
  }
  emit_(std::move(p));
}

void TcpSource::send_available() {
  if (!running_) return;
  const auto window = static_cast<std::uint64_t>(
      std::min(cwnd_, config_.max_cwnd));
  while (inflight() < window) {
    send_segment(next_seq_, /*is_retransmit=*/false);
    ++next_seq_;
  }
  if (inflight() > 0 && !rto_timer_.pending()) arm_rto();
}

void TcpSource::arm_rto() { rto_timer_.arm_after(rto_); }

void TcpSource::on_rto() {
  if (!running_ || inflight() == 0) return;
  ++timeouts_;
  // Collapse to slow start and back the timer off exponentially.
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 1.0;
  dup_acks_ = 0;
  in_recovery_ = false;
  rto_ = std::min(rto_ * 2.0, config_.max_rto);
  timing_ = false;
  // Go-back-N from the first hole.
  next_seq_ = snd_una_;
  send_segment(next_seq_, /*is_retransmit=*/true);
  ++next_seq_;
  arm_rto();
}

void TcpSource::update_rtt(sim::Duration sample) {
  if (srtt_ < 0) {
    srtt_ = sample;
    rttvar_ = sample / 2.0;
  } else {
    rttvar_ = 0.75 * rttvar_ + 0.25 * std::abs(sample - srtt_);
    srtt_ = 0.875 * srtt_ + 0.125 * sample;
  }
  rto_ = std::clamp(srtt_ + 4.0 * rttvar_, config_.min_rto, config_.max_rto);
}

void TcpSource::on_packet(net::PacketPtr p, sim::Time now) {
  assert(p->is_ack);
  if (!running_) return;
  const std::uint64_t ack = p->ack_seq;  // next expected by the receiver

  if (ack > snd_una_) {
    // New data acknowledged.
    if (timing_ && ack > timed_seq_) {
      update_rtt(now - timed_sent_at_);
      timing_ = false;
    }
    snd_una_ = ack;
    dup_acks_ = 0;
    if (in_recovery_) {
      if (ack >= recover_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;  // deflate
      } else {
        // Partial ACK (NewReno): retransmit the next hole, stay in recovery.
        send_segment(snd_una_, /*is_retransmit=*/true);
      }
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += 1.0;  // slow start
    } else {
      cwnd_ += 1.0 / cwnd_;  // congestion avoidance
    }
    // Restart the retransmission timer for remaining data: a re-arm
    // supersedes the pending one in place.
    if (inflight() > 0) {
      arm_rto();
    } else {
      rto_timer_.disarm();
    }
  } else if (ack == snd_una_ && inflight() > 0) {
    ++dup_acks_;
    if (!in_recovery_ && dup_acks_ == 3) {
      // Fast retransmit + fast recovery.
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      recover_ = next_seq_;
      in_recovery_ = true;
      cwnd_ = ssthresh_ + 3.0;
      send_segment(snd_una_, /*is_retransmit=*/true);
    } else if (in_recovery_) {
      cwnd_ += 1.0;  // window inflation per extra dup ACK
    }
  }
  send_available();
}

// -------------------------------------------------------------- receiver --

TcpSink::TcpSink(sim::Simulator& sim, TcpSource::Config config,
                 net::FlowId flow, net::NodeId sink_host, net::NodeId peer,
                 EmitFn emit)
    : sim_(sim),
      config_(config),
      flow_(flow),
      host_(sink_host),
      peer_(peer),
      emit_(std::move(emit)) {}

void TcpSink::on_packet(net::PacketPtr p, sim::Time now) {
  assert(!p->is_ack);
  if (p->seq == rcv_next_) {
    ++rcv_next_;
    // Drain any contiguous out-of-order segments.
    while (!out_of_order_.empty() && *out_of_order_.begin() == rcv_next_) {
      out_of_order_.erase(out_of_order_.begin());
      ++rcv_next_;
    }
  } else if (p->seq > rcv_next_) {
    out_of_order_.insert(p->seq);
  }  // else: duplicate of already-delivered data; still ACK cumulatively

  auto ack = net::make_packet(flow_, p->seq, host_, peer_, now,
                              config_.ack_bits);
  ack->service = net::ServiceClass::kDatagram;
  ack->is_ack = true;
  ack->ack_seq = rcv_next_;
  ++acks_sent_;
  emit_(std::move(ack));
}

}  // namespace ispn::traffic
