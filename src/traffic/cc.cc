#include "traffic/cc.h"

#include <algorithm>
#include <cassert>

namespace ispn::traffic {

const char* to_string(CcAlgo algo) {
  switch (algo) {
    case CcAlgo::kReno: return "reno";
    case CcAlgo::kBbr: return "bbr";
    case CcAlgo::kRack: return "rack";
  }
  return "?";
}

bool parse_cc_algo(const std::string& text, CcAlgo* out) {
  if (text == "reno") {
    *out = CcAlgo::kReno;
  } else if (text == "bbr") {
    *out = CcAlgo::kBbr;
  } else if (text == "rack") {
    *out = CcAlgo::kRack;
  } else {
    return false;
  }
  return true;
}

CongestionControl::CongestionControl(const CcParams& params)
    : params_(params),
      cwnd_(params.initial_cwnd),
      ssthresh_(params.initial_ssthresh) {
  assert(params_.bbr_bw_rounds >= 1 && params_.bbr_bw_rounds <= kMaxBwRounds);
}

double CongestionControl::pacing_rate() const {
  if (params_.algo != CcAlgo::kBbr || bw_ <= 0.0) return 0.0;
  return bbr_pacing_gain() * bw_;
}

void CongestionControl::on_ack(std::uint64_t newly_acked,
                               sim::Duration rtt_sample, std::uint64_t snd_una,
                               std::uint64_t next_seq, sim::Time now,
                               bool in_recovery) {
  if (rtt_sample >= 0) {
    min_rtt_ = min_rtt_ < 0 ? rtt_sample : std::min(min_rtt_, rtt_sample);
  }
  switch (params_.algo) {
    case CcAlgo::kReno:
    case CcAlgo::kRack:
      // Loss-window growth, one step per ACK (never during recovery: a
      // partial ACK retransmits the next hole, the exit ACK deflates).
      if (!in_recovery) {
        if (cwnd_ < ssthresh_) {
          cwnd_ += 1.0;  // slow start
        } else {
          cwnd_ += 1.0 / cwnd_;  // congestion avoidance
        }
      }
      break;
    case CcAlgo::kBbr:
      bbr_on_ack(newly_acked, snd_una, next_seq, now);
      break;
  }
}

CongestionControl::DupAckAction CongestionControl::on_dup_ack(
    int dup_count) const {
  switch (params_.algo) {
    case CcAlgo::kReno:
    case CcAlgo::kBbr:
      return dup_count == 3 ? DupAckAction::kFastRetransmit
                            : DupAckAction::kNone;
    case CcAlgo::kRack:
      // Never retransmit on a dup count: wait out the reorder window.
      return DupAckAction::kArmReorderTimer;
  }
  return DupAckAction::kNone;
}

void CongestionControl::on_dup_ack_in_recovery() {
  if (params_.algo == CcAlgo::kReno) cwnd_ += 1.0;  // window inflation
}

void CongestionControl::on_loss_event() {
  switch (params_.algo) {
    case CcAlgo::kReno:
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_ + 3.0;  // fast recovery inflation
      break;
    case CcAlgo::kRack:
      // Timer-based detection: clean halving, no dup-count inflation.
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_;
      break;
    case CcAlgo::kBbr:
      // The model, not the loss, owns the window.
      break;
  }
}

void CongestionControl::on_recovery_exit() {
  switch (params_.algo) {
    case CcAlgo::kReno:
    case CcAlgo::kRack:
      cwnd_ = ssthresh_;  // deflate
      break;
    case CcAlgo::kBbr:
      break;
  }
}

void CongestionControl::on_rto() {
  switch (params_.algo) {
    case CcAlgo::kReno:
    case CcAlgo::kRack:
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = 1.0;
      break;
    case CcAlgo::kBbr:
      // Packet conservation until the model's target is reached again;
      // the bandwidth filter and min-RTT survive the timeout.
      cwnd_ = 1.0;
      conservation_ = true;
      break;
  }
}

sim::Duration CongestionControl::reorder_window() const {
  if (min_rtt_ <= 0) return params_.rack_min_reo_wnd;
  return std::max(params_.rack_min_reo_wnd,
                  params_.rack_reo_wnd_frac * min_rtt_);
}

// ------------------------------------------------------------------- BBR --

void CongestionControl::bbr_on_ack(std::uint64_t newly_acked,
                                   std::uint64_t snd_una,
                                   std::uint64_t next_seq, sim::Time now) {
  delivered_ += newly_acked;
  if (round_start_time_ < 0) {
    // First ACK ever: open the first measurement round.
    round_start_time_ = now;
    round_start_delivered_ = delivered_;
    round_end_seq_ = next_seq;
  } else if (snd_una >= round_end_seq_) {
    bbr_round_done(now);
    round_start_time_ = now;
    round_start_delivered_ = delivered_;
    round_end_seq_ = next_seq;
  }
  // Drain exits as soon as inflight has fallen to the BDP, not just at a
  // round boundary — overshooting the drain defeats its purpose.
  if (mode_ == BbrMode::kDrain && bw_ > 0 &&
      static_cast<double>(next_seq - snd_una) <= bbr_bdp()) {
    mode_ = BbrMode::kProbeBw;
    cycle_index_ = 0;
  }

  const double target = bbr_target_cwnd();
  if (bw_ <= 0.0) {
    // No estimate yet: grow like slow start so the pipe fills and the
    // first round can measure something.
    cwnd_ = std::min(cwnd_ + static_cast<double>(newly_acked),
                     params_.max_cwnd);
    return;
  }
  if (cwnd_ < target) {
    cwnd_ = std::min(target, cwnd_ + static_cast<double>(newly_acked));
    if (conservation_ && cwnd_ >= target) conservation_ = false;
  } else {
    cwnd_ = target;
    conservation_ = false;
  }
}

void CongestionControl::bbr_round_done(sim::Time now) {
  const double duration = now - round_start_time_;
  if (duration > 0) {
    const double sample =
        static_cast<double>(delivered_ - round_start_delivered_) / duration;
    bbr_push_bw_sample(sample);
  }
  switch (mode_) {
    case BbrMode::kStartup:
      // Exit when the bandwidth filter stops growing >= 25% per round
      // three rounds in a row (the pipe is full).
      if (bw_ > 1.25 * full_bw_) {
        full_bw_ = bw_;
        full_bw_count_ = 0;
      } else if (++full_bw_count_ >= 3) {
        mode_ = BbrMode::kDrain;
      }
      break;
    case BbrMode::kDrain:
      break;  // exit checked per-ACK against the BDP
    case BbrMode::kProbeBw:
      cycle_index_ = (cycle_index_ + 1) % kCycleLen;
      break;
  }
}

void CongestionControl::bbr_push_bw_sample(double sample) {
  bw_ring_[bw_rounds_ % params_.bbr_bw_rounds] = sample;
  ++bw_rounds_;
  const int live = std::min(bw_rounds_, params_.bbr_bw_rounds);
  double best = 0.0;
  for (int i = 0; i < live; ++i) best = std::max(best, bw_ring_[i]);
  bw_ = best;
}

double CongestionControl::bbr_pacing_gain() const {
  switch (mode_) {
    case BbrMode::kStartup: return params_.bbr_startup_gain;
    case BbrMode::kDrain: return 1.0 / params_.bbr_startup_gain;
    case BbrMode::kProbeBw: {
      if (cycle_index_ == 0) return params_.bbr_probe_up;
      if (cycle_index_ == 1) return params_.bbr_probe_down;
      return 1.0;
    }
  }
  return 1.0;
}

double CongestionControl::bbr_bdp() const {
  if (bw_ <= 0 || min_rtt_ <= 0) return params_.max_cwnd;
  return bw_ * min_rtt_;
}

double CongestionControl::bbr_target_cwnd() const {
  if (bw_ <= 0 || min_rtt_ <= 0) return params_.max_cwnd;
  return std::max(4.0, params_.bbr_cwnd_gain * bbr_bdp());
}

}  // namespace ispn::traffic
