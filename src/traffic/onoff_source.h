// The paper's two-state Markov on/off source (Appendix).
//
// In each burst period a geometrically distributed number of packets (mean
// B) is generated at peak rate P; the source then idles for an
// exponentially distributed period of mean I.  The average rate A obeys
//
//     A^{-1} = I/B + 1/P.
//
// The paper fixes B = 5 and P = 2A (hence I = B/(2A)), characterising each
// source by A alone (85 pkt/s in all experiments), and polices each source
// with an (A, 50-packet) token bucket that drops ~2% of packets.

#pragma once

#include "sim/timer.h"
#include "traffic/source.h"

namespace ispn::traffic {

class OnOffSource final : public Source {
 public:
  struct Config {
    /// Average packet generation rate A (packets/second).
    double avg_rate_pps = sim::paper::kAvgPacketRate;
    /// Peak/average ratio (paper: 2).
    double peak_factor = sim::paper::kPeakFactor;
    /// Mean burst length B in packets (paper: 5).
    double mean_burst_pkts = sim::paper::kMeanBurst;
    /// Packet size in bits (paper: 1000).
    sim::Bits packet_bits = sim::paper::kPacketBits;

    /// Peak rate P in packets/second.
    [[nodiscard]] double peak_pps() const { return avg_rate_pps * peak_factor; }
    /// Mean idle period I = B·(1/A - 1/P).
    [[nodiscard]] double mean_idle() const {
      return mean_burst_pkts * (1.0 / avg_rate_pps - 1.0 / peak_pps());
    }
    /// Average bit rate A·packet_bits.
    [[nodiscard]] sim::Rate avg_bps() const {
      return avg_rate_pps * packet_bits;
    }
    /// Peak bit rate P·packet_bits.
    [[nodiscard]] sim::Rate peak_bps() const { return peak_pps() * packet_bits; }

    /// The paper's edge filter for this source: rate A, depth 50 packets.
    [[nodiscard]] TokenBucketSpec paper_filter() const {
      return {avg_bps(), sim::paper::kBucketPackets * packet_bits};
    }
  };

  OnOffSource(sim::Simulator& sim, Config config, sim::Rng rng,
              net::FlowId flow, net::NodeId src, net::NodeId dst, EmitFn emit,
              net::FlowStats* stats,
              std::optional<TokenBucketSpec> police);

  void start(sim::Time at) override;

  /// Stops generating after the current event chain unwinds.
  void stop() { stopped_ = true; }

  [[nodiscard]] const Config& config() const { return config_; }

 private:
  void emit_next();

  Config config_;
  sim::Rng rng_;
  /// The one generation event: fires at each emission instant; the burst
  /// countdown lives in remaining_ rather than in per-event closures.
  sim::Timer tick_;
  std::uint64_t remaining_ = 0;  ///< packets left in the current burst
  bool stopped_ = false;
};

}  // namespace ispn::traffic
