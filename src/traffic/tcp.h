// Responsive TCP bulk transfer — the paper's datagram workload, now with
// pluggable congestion control and DEC-TR-506 binary feedback.
//
// Table 3 adds "2 datagram TCP connections" as elastic best-effort load
// that pushes total link utilisation above 99% while the real-time classes
// keep their commitments.  The transport here owns sequencing, RTT
// estimation (Karn's rule), the retransmission/pacing/reorder timers and a
// per-segment send-time ring; the window-vs-rate response is delegated to
// a `CongestionControl` stack (traffic/cc.h): `reno` loss-window AIMD,
// `bbr`-style rate pacing, or `rack`-style time-based loss detection.
//
// Independent of the stack, the source can run the DEC-TR-506 binary
// feedback loop: schedulers set Packet::cong_mark when their average queue
// length exceeds a threshold, the receiver echoes the bit on the ACK
// (cong_echo), and the source applies additive-increase /
// multiplicative-decrease to a feedback window that caps the effective
// send window.  This is the ECN precursor — congestion response without
// packet loss.
//
// Segments are unit packets (1000 bits), matching the Appendix; ACKs are
// small and travel the reverse direction.  All timers are persistent
// sim::Timers re-armed in place: the steady-state send path (paced or
// window-released) performs zero allocation.

#pragma once

#include <cstdint>
#include <vector>

#include "net/flow.h"
#include "net/host.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "traffic/cc.h"
#include "traffic/source.h"

namespace ispn::traffic {

/// Responsive sender.  A traffic::Source (so the scenario layer manages it
/// uniformly: stop/set_service/set_pool/set_epoch) that is also registered
/// as the FlowSink for its own flow at the *source* host, where the ACK
/// stream arrives.
class TcpSource final : public Source, public net::FlowSink {
 public:
  struct Config {
    sim::Bits packet_bits = sim::paper::kPacketBits;
    sim::Bits ack_bits = 320;  ///< 40-byte ACKs
    double initial_cwnd = 1.0;
    double initial_ssthresh = 64.0;
    /// Receiver-window cap on cwnd, in packets.
    double max_cwnd = 64.0;
    sim::Duration min_rto = 0.2;
    sim::Duration max_rto = 10.0;
    sim::Duration initial_rto = 1.0;

    /// Congestion-control stack (reno | bbr | rack).
    CcAlgo cc = CcAlgo::kReno;

    /// DEC-TR-506 binary feedback: respond to echoed congestion marks
    /// with additive increase / multiplicative decrease on a feedback
    /// window that caps the effective send window.
    bool binary_feedback = false;
    double fb_decrease = 0.875;  ///< multiplicative-decrease factor
    double fb_fraction = 0.5;    ///< marked-ACK fraction triggering decrease
  };

  TcpSource(sim::Simulator& sim, Config config, net::FlowId flow,
            net::NodeId src, net::NodeId dst, EmitFn emit,
            net::FlowStats* stats = nullptr);

  /// Starts the bulk transfer at `at`.
  void start(sim::Time at) override;

  /// Stops sending new data (outstanding timers become no-ops).
  void stop() override;

  /// ACK arrival.
  void on_packet(net::PacketPtr p, sim::Time now) override;

  [[nodiscard]] CcAlgo algo() const { return cc_.algo(); }
  [[nodiscard]] double cwnd() const { return cc_.cwnd(); }
  [[nodiscard]] double ssthresh() const { return cc_.ssthresh(); }
  [[nodiscard]] sim::Duration rto() const { return rto_; }
  [[nodiscard]] sim::Duration srtt() const { return srtt_; }
  [[nodiscard]] std::uint64_t delivered() const { return snd_una_; }
  [[nodiscard]] std::uint64_t sent_segments() const { return sent_segments_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }
  /// Reorder-timer expirations that declared a loss (rack stack).
  [[nodiscard]] std::uint64_t reorder_timeouts() const {
    return reorder_timeouts_;
  }

  // Binary-feedback observability.
  [[nodiscard]] double fb_wnd() const { return fb_wnd_; }
  [[nodiscard]] std::uint64_t echoes_received() const {
    return echoes_received_;
  }
  [[nodiscard]] std::uint64_t fb_backoffs() const { return fb_backoffs_; }

  /// The pending RTO expiry instant (test hook for the re-arm rule).
  [[nodiscard]] sim::Time rto_expiry() const { return rto_timer_.expiry(); }
  [[nodiscard]] bool rto_pending() const { return rto_timer_.pending(); }
  /// Last transmission time of segment `seq` (only meaningful while the
  /// segment is outstanding).
  [[nodiscard]] sim::Time sent_at(std::uint64_t seq) const {
    return sent_at_[seq & ring_mask_];
  }

 private:
  void send_available();
  void send_segment(std::uint64_t seq, bool is_retransmit);
  void schedule_pacing(sim::Time now);
  void on_pace();
  void arm_rto();
  void on_rto();
  void arm_reorder(sim::Time now);
  void on_reorder();
  void enter_recovery();
  void update_rtt(sim::Duration sample);
  void note_feedback(bool echoed);
  [[nodiscard]] std::uint64_t inflight() const { return next_seq_ - snd_una_; }
  [[nodiscard]] std::uint64_t window() const;

  Config config_;
  CongestionControl cc_;

  // Sequencing.
  std::uint64_t next_seq_ = 0;  ///< next new sequence to send
  std::uint64_t snd_una_ = 0;   ///< lowest unacknowledged sequence
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;  ///< recovery exits when ack >= recover_

  /// Last transmission time per outstanding segment, a power-of-two ring
  /// indexed by seq & ring_mask_ (capacity > max_cwnd, so outstanding
  /// segments never alias).  Drives the RTO re-arm rule (earliest
  /// outstanding send time) and the RACK reorder deadline.
  std::vector<sim::Time> sent_at_;
  std::uint64_t ring_mask_;

  // RTT estimation (Karn: only fresh transmissions are timed).
  sim::Duration srtt_ = -1;
  sim::Duration rttvar_ = 0;
  sim::Duration rto_;
  std::uint64_t timed_seq_ = 0;
  sim::Time timed_sent_at_ = 0;
  bool timing_ = false;

  // Persistent timers, re-armed in place (no steady-state allocation).
  sim::Timer rto_timer_;
  sim::Timer pace_timer_;     ///< bbr: one segment per 1/pacing_rate
  sim::Timer reorder_timer_;  ///< rack: loss declared when it fires
  sim::Time next_pace_time_ = 0;
  std::uint64_t reorder_armed_una_ = 0;

  // DEC-TR-506 feedback window (AIMD on echoed marks, one step per
  // window-length round of ACKs).
  double fb_wnd_;
  std::uint64_t fb_acks_ = 0;
  std::uint64_t fb_marked_ = 0;
  std::uint64_t fb_round_len_;

  bool running_ = false;

  std::uint64_t sent_segments_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t reorder_timeouts_ = 0;
  std::uint64_t echoes_received_ = 0;
  std::uint64_t fb_backoffs_ = 0;
};

/// Cumulative-ACK receiver.  Registered (behind the stats sink) for the
/// flow at the *destination* host; echoes congestion marks onto ACKs.
class TcpSink final : public net::FlowSink {
 public:
  TcpSink(sim::Simulator& sim, TcpSource::Config config, net::FlowId flow,
          net::NodeId sink_host, net::NodeId peer, EmitFn emit);

  void on_packet(net::PacketPtr p, sim::Time now) override;

  /// Draws ACK storage from `pool` (sharded runs: the dst domain's pool).
  void set_pool(net::PacketPool* pool) { pool_ = pool; }
  /// Accounts emitted ACKs as generated/injected traffic of the flow so
  /// the conservation ledger covers the reverse path.  The fields written
  /// are Counters: the sink lives in the dst domain, the source in src.
  void set_stats(net::FlowStats* stats) { stats_ = stats; }

  [[nodiscard]] std::uint64_t rcv_next() const { return rcv_next_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }
  /// ACKs that carried an echoed congestion mark.
  [[nodiscard]] std::uint64_t echoes_sent() const { return echoes_sent_; }

 private:
  [[nodiscard]] bool test_bit(std::uint64_t seq) const;
  void set_bit(std::uint64_t seq);
  void clear_bit(std::uint64_t seq);

  sim::Simulator& sim_;
  TcpSource::Config config_;
  net::FlowId flow_;
  net::NodeId host_;
  net::NodeId peer_;
  EmitFn emit_;
  net::PacketPool* pool_ = nullptr;
  net::FlowStats* stats_ = nullptr;

  std::uint64_t rcv_next_ = 0;
  /// Out-of-order bookkeeping: a power-of-two bitmap ring covering the
  /// sender's maximum window ahead of rcv_next_ — bounded, allocation-free
  /// after construction (the old std::set allocated per insert).
  std::vector<std::uint64_t> oo_bits_;
  std::uint64_t oo_mask_;
  std::uint64_t acks_sent_ = 0;
  std::uint64_t echoes_sent_ = 0;
};

}  // namespace ispn::traffic
