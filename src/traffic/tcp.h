// Simplified TCP Reno bulk transfer — the paper's datagram workload.
//
// Table 3 adds "2 datagram TCP connections" as elastic best-effort load
// that pushes total link utilisation above 99% while the real-time classes
// keep their commitments.  We implement a classic loss-based Reno sender
// (slow start, congestion avoidance, fast retransmit/recovery, RTO with
// Karn's rule and exponential backoff) and a cumulative-ACK receiver.
// Segments are unit packets (1000 bits), matching the Appendix; ACKs are
// small and travel the reverse direction, which is idle in the paper's
// all-one-way topology.

#pragma once

#include <cstdint>
#include <set>

#include "net/host.h"
#include "net/flow.h"
#include "sim/simulator.h"
#include "sim/timer.h"
#include "traffic/source.h"

namespace ispn::traffic {

/// Reno sender.  Registered as the FlowSink for its own flow at the
/// *source* host, where the ACK stream arrives.
class TcpSource final : public net::FlowSink {
 public:
  struct Config {
    sim::Bits packet_bits = sim::paper::kPacketBits;
    sim::Bits ack_bits = 320;  ///< 40-byte ACKs
    double initial_cwnd = 1.0;
    double initial_ssthresh = 64.0;
    /// Receiver-window cap on cwnd, in packets.
    double max_cwnd = 64.0;
    sim::Duration min_rto = 0.2;
    sim::Duration max_rto = 10.0;
    sim::Duration initial_rto = 1.0;
  };

  TcpSource(sim::Simulator& sim, Config config, net::FlowId flow,
            net::NodeId src, net::NodeId dst, EmitFn emit,
            net::FlowStats* stats = nullptr);

  /// Starts the bulk transfer at `at`.
  void start(sim::Time at);

  /// Stops sending new data (outstanding timers become no-ops).
  void stop();

  /// ACK arrival.
  void on_packet(net::PacketPtr p, sim::Time now) override;

  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] double ssthresh() const { return ssthresh_; }
  [[nodiscard]] sim::Duration rto() const { return rto_; }
  [[nodiscard]] sim::Duration srtt() const { return srtt_; }
  [[nodiscard]] std::uint64_t delivered() const { return snd_una_; }
  [[nodiscard]] std::uint64_t sent_segments() const { return sent_segments_; }
  [[nodiscard]] std::uint64_t retransmits() const { return retransmits_; }
  [[nodiscard]] std::uint64_t timeouts() const { return timeouts_; }

 private:
  void send_available();
  void send_segment(std::uint64_t seq, bool is_retransmit);
  void arm_rto();
  void on_rto();
  void update_rtt(sim::Duration sample);
  [[nodiscard]] std::uint64_t inflight() const { return next_seq_ - snd_una_; }

  sim::Simulator& sim_;
  Config config_;
  net::FlowId flow_;
  net::NodeId src_;
  net::NodeId dst_;
  EmitFn emit_;
  net::FlowStats* stats_;

  // Congestion state.
  double cwnd_;
  double ssthresh_;
  std::uint64_t next_seq_ = 0;  ///< next new sequence to send
  std::uint64_t snd_una_ = 0;   ///< lowest unacknowledged sequence
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recover_ = 0;  ///< recovery exits when ack >= recover_

  // RTT estimation (Karn: only fresh transmissions are timed).
  sim::Duration srtt_ = -1;
  sim::Duration rttvar_ = 0;
  sim::Duration rto_;
  std::uint64_t timed_seq_ = 0;
  sim::Time timed_sent_at_ = 0;
  bool timing_ = false;

  sim::Timer rto_timer_;  ///< persistent retransmission timer, re-armed in place
  bool running_ = false;

  std::uint64_t sent_segments_ = 0;
  std::uint64_t retransmits_ = 0;
  std::uint64_t timeouts_ = 0;
};

/// Cumulative-ACK receiver.  Registered (behind the stats sink) for the
/// flow at the *destination* host.
class TcpSink final : public net::FlowSink {
 public:
  TcpSink(sim::Simulator& sim, TcpSource::Config config, net::FlowId flow,
          net::NodeId sink_host, net::NodeId peer, EmitFn emit);

  void on_packet(net::PacketPtr p, sim::Time now) override;

  [[nodiscard]] std::uint64_t rcv_next() const { return rcv_next_; }
  [[nodiscard]] std::uint64_t acks_sent() const { return acks_sent_; }

 private:
  sim::Simulator& sim_;
  TcpSource::Config config_;
  net::FlowId flow_;
  net::NodeId host_;
  net::NodeId peer_;
  EmitFn emit_;

  std::uint64_t rcv_next_ = 0;
  std::set<std::uint64_t> out_of_order_;
  std::uint64_t acks_sent_ = 0;
};

}  // namespace ispn::traffic
