// Fluid leaky-bucket shaper (paper §4's intuition for the P–G bound).
//
// Bits drain at a constant rate r; excess queues.  Given an arrival trace,
// the shaper computes per-packet departure times and the maximal shaping
// delay — which, for a trace conforming to an (r, b) token bucket, is
// bounded by b/r.  Used analytically (tests, bound validation); the network
// schedulers never shape.

#pragma once

#include <vector>

#include "sim/units.h"
#include "traffic/token_bucket.h"

namespace ispn::traffic {

/// Departure schedule of a trace through a rate-r fluid leaky bucket.
struct ShapedTrace {
  std::vector<sim::Time> departures;  ///< time the packet's last bit leaves
  sim::Duration max_delay = 0;        ///< max(departure - arrival)
};

/// Shapes `trace` through a leaky bucket of rate `rate`.
[[nodiscard]] ShapedTrace shape(const std::vector<TracePacket>& trace,
                                sim::Rate rate);

}  // namespace ispn::traffic
