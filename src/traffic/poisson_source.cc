// PoissonSource is header-only; this translation unit anchors the target.
#include "traffic/poisson_source.h"
