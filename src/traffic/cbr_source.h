// Constant-bit-rate source: one packet every 1/rate seconds.
//
// Used for rigid real-time clients and as a deterministic workload in
// tests (a CBR source at its own clock rate should see near-zero queueing
// under WFQ).

#pragma once

#include "sim/timer.h"
#include "traffic/source.h"

namespace ispn::traffic {

class CbrSource final : public Source {
 public:
  struct Config {
    double rate_pps = 100.0;  ///< packets per second
    sim::Bits packet_bits = sim::paper::kPacketBits;
    /// Stop after this many packets (0 = unlimited).
    std::uint64_t limit = 0;
  };

  CbrSource(sim::Simulator& sim, Config config, net::FlowId flow,
            net::NodeId src, net::NodeId dst, EmitFn emit,
            net::FlowStats* stats = nullptr,
            std::optional<TokenBucketSpec> police = std::nullopt)
      : Source(sim, flow, src, dst, std::move(emit), stats, police),
        config_(config),
        tick_(sim, [this] { tick(); }) {}

  void start(sim::Time at) override { tick_.arm_at(at); }

  void stop() { stopped_ = true; }

 private:
  void tick() {
    if (stopped_) return;
    if (config_.limit != 0 && sent_ >= config_.limit) return;
    generate(config_.packet_bits);
    ++sent_;
    tick_.arm_after(1.0 / config_.rate_pps);
  }

  Config config_;
  sim::Timer tick_;  ///< the one emission event, re-armed per packet
  std::uint64_t sent_ = 0;
  bool stopped_ = false;
};

}  // namespace ispn::traffic
