#include "traffic/leaky_bucket.h"

#include <algorithm>
#include <cassert>

namespace ispn::traffic {

ShapedTrace shape(const std::vector<TracePacket>& trace, sim::Rate rate) {
  assert(rate > 0);
  ShapedTrace out;
  out.departures.reserve(trace.size());
  double busy_until = trace.empty() ? 0.0 : trace.front().time;
  for (const auto& pkt : trace) {
    const double start = std::max(busy_until, pkt.time);
    const double done = start + pkt.bits / rate;
    out.departures.push_back(done);
    out.max_delay = std::max(out.max_delay, done - pkt.time);
    busy_until = done;
  }
  return out;
}

}  // namespace ispn::traffic
