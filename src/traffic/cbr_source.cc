// CbrSource is header-only; this translation unit anchors the target.
#include "traffic/cbr_source.h"
