#include "traffic/onoff_source.h"

#include <utility>

namespace ispn::traffic {

OnOffSource::OnOffSource(sim::Simulator& sim, Config config, sim::Rng rng,
                         net::FlowId flow, net::NodeId src, net::NodeId dst,
                         EmitFn emit, net::FlowStats* stats,
                         std::optional<TokenBucketSpec> police)
    : Source(sim, flow, src, dst, std::move(emit), stats, police),
      config_(config),
      rng_(rng),
      tick_(sim, [this] { emit_next(); }) {}

void OnOffSource::start(sim::Time at) {
  // Begin with an idle period so sources with different streams desynchronise.
  sim_.at(at, [this] {
    if (stopped_) return;
    tick_.arm_after(rng_.exponential(config_.mean_idle()));
  });
}

void OnOffSource::emit_next() {
  if (stopped_) return;
  if (remaining_ == 0) {
    // Start of a burst: draw its geometric length.
    remaining_ = rng_.geometric1(config_.mean_burst_pkts);
  }
  generate(config_.packet_bits);
  if (--remaining_ > 0) {
    tick_.arm_after(1.0 / config_.peak_pps());
  } else {
    // The last packet still occupies a 1/P slot before the idle period, so
    // that E[cycle] = B/P + I and the average rate is exactly A
    // (A^{-1} = I/B + 1/P).
    tick_.arm_after(1.0 / config_.peak_pps() +
                    rng_.exponential(config_.mean_idle()));
  }
}

}  // namespace ispn::traffic
