#include "traffic/onoff_source.h"

#include <utility>

namespace ispn::traffic {

OnOffSource::OnOffSource(sim::Simulator& sim, Config config, sim::Rng rng,
                         net::FlowId flow, net::NodeId src, net::NodeId dst,
                         EmitFn emit, net::FlowStats* stats,
                         std::optional<TokenBucketSpec> police)
    : Source(sim, flow, src, dst, std::move(emit), stats, police),
      config_(config),
      rng_(rng) {}

void OnOffSource::start(sim::Time at) {
  // Begin with an idle period so sources with different streams desynchronise.
  sim_.at(at, [this] {
    if (stopped_) return;
    sim_.after(rng_.exponential(config_.mean_idle()),
               [this] { begin_burst(); });
  });
}

void OnOffSource::begin_burst() {
  if (stopped_) return;
  const std::uint64_t burst = rng_.geometric1(config_.mean_burst_pkts);
  emit_next(burst);
}

void OnOffSource::emit_next(std::uint64_t remaining) {
  if (stopped_) return;
  generate(config_.packet_bits);
  if (remaining > 1) {
    sim_.after(1.0 / config_.peak_pps(),
               [this, remaining] { emit_next(remaining - 1); });
  } else {
    // The last packet still occupies a 1/P slot before the idle period, so
    // that E[cycle] = B/P + I and the average rate is exactly A
    // (A^{-1} = I/B + 1/P).
    sim_.after(1.0 / config_.peak_pps() + rng_.exponential(config_.mean_idle()),
               [this] { begin_burst(); });
  }
}

}  // namespace ispn::traffic
