// Pluggable congestion control — the policy seam behind TcpSource.
//
// A vtable-free stack selector in the style of OrderBackend / EventBackend /
// ShardSync: one enum (`CcAlgo`), one flat state object, switch dispatch.
// Three stacks share the seam:
//
//   * kReno — the original Tahoe/NewReno loss-window arithmetic: slow
//     start, AIMD congestion avoidance, fast retransmit on the third
//     duplicate ACK with window inflation, RTO collapse to one segment.
//   * kBbr — a rate-based model in the BBR style: per-round delivery-rate
//     samples through a windowed max filter plus a running min-RTT give a
//     bandwidth-delay product; a startup/drain/probe-bandwidth gain cycle
//     paces transmission (the transport drives a persistent sim::Timer at
//     pacing_rate()).  Loss does not collapse the window; an RTO falls
//     back to packet conservation until the model refills.  No randomness
//     anywhere: the probe cycle starts at a fixed phase, so runs are
//     byte-identical across backends and shard counts.
//   * kRack — time-based loss detection in the RACK style: duplicate ACKs
//     never trigger an immediate retransmit; instead the transport arms a
//     reorder timer for the earliest outstanding segment's send time plus
//     srtt plus a reorder window (a fraction of min-RTT), tolerating
//     reordering that would fool a 3-dup-ack rule.  The window response on
//     a confirmed loss is a clean halving (no +3 inflation — detection is
//     timer-based, not dup-count-based).
//
// All state is plain doubles and integers updated by deterministic event
// arithmetic; there is no allocation after construction.

#pragma once

#include <cstdint>
#include <string>

#include "sim/units.h"

namespace ispn::traffic {

/// Congestion-control stack selector.
enum class CcAlgo : std::uint8_t {
  kReno = 0,  ///< loss-window AIMD (the classic stack)
  kBbr = 1,   ///< rate-based pacing with bandwidth + RTT probing
  kRack = 2,  ///< time-based reordering-tolerant loss detection
};

/// Short lowercase label ("reno", "bbr", "rack").
[[nodiscard]] const char* to_string(CcAlgo algo);

/// Parses "reno" / "bbr" / "rack" (exact, lowercase).  Returns false and
/// leaves `out` untouched on unknown input.
bool parse_cc_algo(const std::string& text, CcAlgo* out);

/// Tuning knobs for the stacks.  Window values are in packets.
struct CcParams {
  CcAlgo algo = CcAlgo::kReno;
  double initial_cwnd = 1.0;
  double initial_ssthresh = 64.0;
  double max_cwnd = 64.0;

  // BBR-style stack.
  double bbr_startup_gain = 2.885;  ///< pacing gain while probing for bw
  double bbr_cwnd_gain = 2.0;       ///< cwnd cap as a multiple of the BDP
  int bbr_bw_rounds = 10;           ///< max-filter window, in rounds
  double bbr_probe_up = 1.25;       ///< probe_bw cycle up-gain
  double bbr_probe_down = 0.75;     ///< probe_bw cycle drain-gain

  // RACK-style loss detection.
  double rack_reo_wnd_frac = 0.25;      ///< reorder window / min-RTT
  sim::Duration rack_min_reo_wnd = 1e-4;  ///< floor when min-RTT unknown/tiny
};

/// Per-connection congestion state machine.  The transport (TcpSource)
/// owns sequencing, timers and retransmission; this object owns the
/// window/rate response.  Dispatch is a switch on the algo — no vtable.
class CongestionControl {
 public:
  /// What the transport should do about a duplicate ACK outside recovery.
  enum class DupAckAction : std::uint8_t {
    kNone = 0,
    kFastRetransmit = 1,   ///< enter recovery and retransmit now
    kArmReorderTimer = 2,  ///< wait out the reorder window first
  };

  explicit CongestionControl(const CcParams& params);

  [[nodiscard]] CcAlgo algo() const { return params_.algo; }

  /// Current congestion window in packets.  The transport additionally
  /// caps the effective window by max_cwnd and the binary-feedback window.
  [[nodiscard]] double cwnd() const { return cwnd_; }
  [[nodiscard]] double ssthresh() const { return ssthresh_; }

  /// True for stacks that release packets on a pacing clock.
  [[nodiscard]] bool paced() const { return params_.algo == CcAlgo::kBbr; }

  /// Packets per second the paced stack wants on the wire; 0 means "no
  /// estimate yet" and the transport falls back to window-release.
  [[nodiscard]] double pacing_rate() const;

  /// Delivery-rate estimate in packets/s (0 until the first round closes).
  [[nodiscard]] double bandwidth() const { return bw_; }
  /// Lowest RTT sample seen (< 0 until the first valid sample).
  [[nodiscard]] double min_rtt() const { return min_rtt_; }

  /// New cumulative ACK: `newly_acked` packets left the network.
  /// `rtt_sample` < 0 when Karn's rule suppressed the measurement.
  /// `in_recovery` is true when this ACK arrived during (or exited)
  /// loss recovery — the loss-window stacks do not grow on those.
  void on_ack(std::uint64_t newly_acked, sim::Duration rtt_sample,
              std::uint64_t snd_una, std::uint64_t next_seq, sim::Time now,
              bool in_recovery);

  /// Policy for the `dup_count`-th duplicate ACK outside recovery.
  [[nodiscard]] DupAckAction on_dup_ack(int dup_count) const;

  /// An extra duplicate ACK while already in recovery (Reno inflates).
  void on_dup_ack_in_recovery();

  /// A loss event was declared (fast retransmit or reorder timeout fired).
  void on_loss_event();

  /// Recovery completed (cumulative ACK reached the recover point).
  void on_recovery_exit();

  /// Retransmission timeout: collapse (reno/rack) or conserve (bbr).
  void on_rto();

  /// RACK reorder window in seconds, from the current min-RTT estimate.
  [[nodiscard]] sim::Duration reorder_window() const;

 private:
  // BBR internals.
  void bbr_on_ack(std::uint64_t newly_acked, std::uint64_t snd_una,
                  std::uint64_t next_seq, sim::Time now);
  void bbr_round_done(sim::Time now);
  void bbr_push_bw_sample(double sample);
  [[nodiscard]] double bbr_pacing_gain() const;
  [[nodiscard]] double bbr_bdp() const;
  [[nodiscard]] double bbr_target_cwnd() const;

  enum class BbrMode : std::uint8_t { kStartup, kDrain, kProbeBw };
  static constexpr int kCycleLen = 8;
  static constexpr int kMaxBwRounds = 16;  ///< filter ring capacity

  CcParams params_;
  double cwnd_;
  double ssthresh_;

  // Shared measurement state.
  double min_rtt_ = -1.0;

  // BBR model state.
  BbrMode mode_ = BbrMode::kStartup;
  double bw_ = 0.0;                    ///< max over the filter window
  double bw_ring_[kMaxBwRounds] = {};  ///< per-round delivery-rate samples
  int bw_rounds_ = 0;                  ///< samples pushed so far
  std::uint64_t delivered_ = 0;        ///< cumulative packets delivered
  std::uint64_t round_start_delivered_ = 0;
  std::uint64_t round_end_seq_ = 0;  ///< round closes when snd_una reaches it
  sim::Time round_start_time_ = -1.0;
  double full_bw_ = 0.0;  ///< startup-exit plateau detector
  int full_bw_count_ = 0;
  int cycle_index_ = 0;  ///< probe_bw gain-cycle phase (fixed start: 0)
  bool conservation_ = false;  ///< post-RTO: grow by acked until the model
};

}  // namespace ispn::traffic
