// Greedy (adversarial) source: keeps its token bucket empty.
//
// §4: the Parekh–Gallager bounds "are strict, in that they can be realized
// with a set of greedy sources which keep their token buckets empty".  A
// greedy source drains the full bucket as an instantaneous back-to-back
// burst at start, then sends at exactly the token rate — the worst case a
// conforming source can present.  Used by the P–G property tests and the
// guaranteed-service benches.

#pragma once

#include "sim/timer.h"
#include "traffic/source.h"

namespace ispn::traffic {

class GreedySource final : public Source {
 public:
  struct Config {
    TokenBucketSpec bucket;  ///< the (r, b) filter to saturate
    sim::Bits packet_bits = sim::paper::kPacketBits;
    std::uint64_t limit = 0;  ///< stop after this many packets (0 = none)
  };

  GreedySource(sim::Simulator& sim, Config config, net::FlowId flow,
               net::NodeId src, net::NodeId dst, EmitFn emit,
               net::FlowStats* stats = nullptr)
      // The greedy source polices itself by construction; installing the
      // same filter verifies conformance (a property test does exactly
      // that), so pass it through as the edge policer.
      : Source(sim, flow, src, dst, std::move(emit), stats, config.bucket),
        config_(config),
        tick_(sim, [this] { tick(); }) {}

  void start(sim::Time at) override {
    sim_.at(at, [this] {
      // Initial burst: floor(b/p) back-to-back packets.
      const auto burst = static_cast<std::uint64_t>(config_.bucket.depth /
                                                    config_.packet_bits);
      for (std::uint64_t i = 0; i < burst; ++i) {
        if (done()) return;
        generate(config_.packet_bits);
        ++sent_;
      }
      arm_next();
    });
  }

  void stop() { stopped_ = true; }

 private:
  [[nodiscard]] bool done() const {
    return stopped_ || (config_.limit != 0 && sent_ >= config_.limit);
  }

  /// After the burst, tokens accrue at rate r: one packet per p/r seconds.
  void arm_next() {
    if (done()) return;
    tick_.arm_after(config_.packet_bits / config_.bucket.rate);
  }

  void tick() {
    if (done()) return;
    generate(config_.packet_bits);
    ++sent_;
    arm_next();
  }

  Config config_;
  sim::Timer tick_;  ///< token-paced emission, re-armed per packet
  std::uint64_t sent_ = 0;
  bool stopped_ = false;
};

}  // namespace ispn::traffic
