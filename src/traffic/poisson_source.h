// Poisson source: exponential inter-packet gaps.
//
// Not used by the paper's tables (its sources are on/off Markov) but a
// standard comparison workload for datagram traffic and tests.

#pragma once

#include "sim/timer.h"
#include "traffic/source.h"

namespace ispn::traffic {

class PoissonSource final : public Source {
 public:
  struct Config {
    double rate_pps = 100.0;
    sim::Bits packet_bits = sim::paper::kPacketBits;
  };

  PoissonSource(sim::Simulator& sim, Config config, sim::Rng rng,
                net::FlowId flow, net::NodeId src, net::NodeId dst,
                EmitFn emit, net::FlowStats* stats = nullptr,
                std::optional<TokenBucketSpec> police = std::nullopt)
      : Source(sim, flow, src, dst, std::move(emit), stats, police),
        config_(config),
        rng_(rng),
        tick_(sim, [this] { tick(); }) {}

  void start(sim::Time at) override { tick_.arm_at(at); }

  void stop() { stopped_ = true; }

 private:
  void tick() {
    if (stopped_) return;
    generate(config_.packet_bits);
    tick_.arm_after(rng_.exponential(1.0 / config_.rate_pps));
  }

  Config config_;
  sim::Rng rng_;
  sim::Timer tick_;  ///< the one arrival event, re-armed per packet
  bool stopped_ = false;
};

}  // namespace ispn::traffic
