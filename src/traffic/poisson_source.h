// Poisson source: exponential inter-packet gaps.
//
// Not used by the paper's tables (its sources are on/off Markov) but a
// standard comparison workload for datagram traffic and tests.

#pragma once

#include "traffic/source.h"

namespace ispn::traffic {

class PoissonSource final : public Source {
 public:
  struct Config {
    double rate_pps = 100.0;
    sim::Bits packet_bits = sim::paper::kPacketBits;
  };

  PoissonSource(sim::Simulator& sim, Config config, sim::Rng rng,
                net::FlowId flow, net::NodeId src, net::NodeId dst,
                EmitFn emit, net::FlowStats* stats = nullptr,
                std::optional<TokenBucketSpec> police = std::nullopt)
      : Source(sim, flow, src, dst, std::move(emit), stats, police),
        config_(config),
        rng_(rng) {}

  void start(sim::Time at) override {
    sim_.at(at, [this] { tick(); });
  }

  void stop() { stopped_ = true; }

 private:
  void tick() {
    if (stopped_) return;
    generate(config_.packet_bits);
    sim_.after(rng_.exponential(1.0 / config_.rate_pps), [this] { tick(); });
  }

  Config config_;
  sim::Rng rng_;
  bool stopped_ = false;
};

}  // namespace ispn::traffic
