// Token-bucket traffic filter (paper §4).
//
// A bucket of depth b fills with tokens at rate r; a packet of size p
// conforms if p tokens are available when it is generated.  The paper's
// conformance recurrence (with n_0 = b):
//
//     n_i = MIN[b, n_{i-1} + (t_i - t_{i-1})·r - p_i],   conform iff n_i >= 0
//
// is implemented both as an online policer (try_consume) and as a batch
// checker over a trace (conforms()) used by tests and by b(r) estimation.

#pragma once

#include <vector>

#include "sim/units.h"

namespace ispn::traffic {

/// Parameters of an (r, b) filter, in bits/second and bits.
struct TokenBucketSpec {
  sim::Rate rate = 0;   ///< r: token fill rate (bits/s)
  sim::Bits depth = 0;  ///< b: bucket capacity (bits)
};

/// Online token-bucket policer.  Starts full (n_0 = b).
class TokenBucket {
 public:
  explicit TokenBucket(TokenBucketSpec spec, sim::Time start = 0);

  /// True and consumes `bits` if the packet conforms at time `now`;
  /// false (no state change beyond refill) otherwise.
  bool try_consume(sim::Bits bits, sim::Time now);

  /// Tokens available at `now` (refilled, capped at depth).
  [[nodiscard]] sim::Bits tokens(sim::Time now) const;

  [[nodiscard]] const TokenBucketSpec& spec() const { return spec_; }

 private:
  void refill(sim::Time now);

  TokenBucketSpec spec_;
  sim::Bits level_;
  sim::Time last_;
};

/// One packet of a recorded generation trace.
struct TracePacket {
  sim::Time time = 0;
  sim::Bits bits = 0;
};

/// Batch conformance check of a whole trace against (r, b), using the
/// paper's recurrence exactly.
[[nodiscard]] bool conforms(const std::vector<TracePacket>& trace,
                            const TokenBucketSpec& spec);

/// The paper's b(r): the minimal bucket depth such that `trace` conforms to
/// an (r, b(r)) filter.  Non-increasing in r.
[[nodiscard]] sim::Bits min_depth(const std::vector<TracePacket>& trace,
                                  sim::Rate rate);

}  // namespace ispn::traffic
